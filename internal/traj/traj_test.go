package traj

import (
	"math"
	"testing"
	"time"

	"trajmotif/internal/geo"
)

func linePoints(n int) []geo.Point {
	pts := make([]geo.Point, n)
	base := geo.Point{Lat: 39.9, Lng: 116.4}
	for i := range pts {
		pts[i] = geo.Offset(base, float64(i)*10, 0)
	}
	return pts
}

func timedLine(n int, gap time.Duration) *Trajectory {
	pts := linePoints(n)
	times := make([]time.Time, n)
	t0 := time.Date(2009, 4, 10, 7, 33, 0, 0, time.UTC)
	for i := range times {
		times[i] = t0.Add(time.Duration(i) * gap)
	}
	tr, err := New(pts, times)
	if err != nil {
		panic(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("empty trajectory should fail")
	}
	if _, err := New([]geo.Point{{Lat: 91}}, nil); err == nil {
		t.Error("invalid point should fail")
	}
	pts := linePoints(3)
	if _, err := New(pts, make([]time.Time, 2)); err == nil {
		t.Error("mismatched timestamp count should fail")
	}
	bad := []time.Time{time.Unix(10, 0), time.Unix(5, 0), time.Unix(20, 0)}
	if _, err := New(pts, bad); err == nil {
		t.Error("descending timestamps should fail")
	}
	equal := []time.Time{time.Unix(10, 0), time.Unix(10, 0), time.Unix(20, 0)}
	if _, err := New(pts, equal); err != nil {
		t.Errorf("non-decreasing timestamps should be allowed: %v", err)
	}
}

func TestSpan(t *testing.T) {
	s := Span{Start: 2, End: 7}
	if s.Len() != 6 || s.Steps() != 5 {
		t.Errorf("Len=%d Steps=%d, want 6,5", s.Len(), s.Steps())
	}
	if !s.Valid(8) || s.Valid(7) {
		t.Error("Valid boundary check failed")
	}
	if (Span{0, 0}).Valid(5) {
		t.Error("single-point span should be invalid")
	}
	if !s.Overlaps(Span{7, 9}) || s.Overlaps(Span{8, 9}) {
		t.Error("Overlaps boundary check failed")
	}
	if s.String() != "[2..7]" {
		t.Errorf("String = %q", s.String())
	}
}

func TestSubViews(t *testing.T) {
	tr := FromPoints(linePoints(10))
	sub := tr.Sub(2, 5)
	if len(sub) != 4 {
		t.Fatalf("Sub len = %d, want 4", len(sub))
	}
	if sub[0] != tr.Points[2] || sub[3] != tr.Points[5] {
		t.Error("Sub returned wrong window")
	}
	if got := tr.SubSpan(Span{2, 5}); len(got) != 4 || got[0] != sub[0] {
		t.Error("SubSpan mismatch")
	}
}

func TestTimeRange(t *testing.T) {
	tr := timedLine(10, time.Second)
	first, last, ok := tr.TimeRange(Span{1, 4})
	if !ok {
		t.Fatal("timed trajectory should report range")
	}
	if last.Sub(first) != 3*time.Second {
		t.Errorf("range = %v", last.Sub(first))
	}
	untimed := FromPoints(linePoints(3))
	if _, _, ok := untimed.TimeRange(Span{0, 1}); ok {
		t.Error("untimed trajectory should not report range")
	}
}

func TestConcat(t *testing.T) {
	a := timedLine(5, time.Second)
	b := timedLine(5, time.Second)
	// b starts at the same wall-clock time as a, so timestamps would go
	// backwards at the boundary; Concat must drop them, not fail.
	got, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 10 {
		t.Fatalf("Len = %d, want 10", got.Len())
	}
	if got.Times != nil {
		t.Error("non-monotonic boundary should drop timestamps")
	}

	// Shift b after a: timestamps survive.
	for i := range b.Times {
		b.Times[i] = b.Times[i].Add(time.Hour)
	}
	got, err = Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Times == nil || len(got.Times) != 10 {
		t.Error("monotonic concat should keep timestamps")
	}

	if _, err := Concat(); err == nil {
		t.Error("empty concat should fail")
	}
	if _, err := Concat(a, nil); err == nil {
		t.Error("nil part should fail")
	}
}

func TestClip(t *testing.T) {
	tr := timedLine(10, time.Second)
	c := tr.Clip(4)
	if c.Len() != 4 || len(c.Times) != 4 {
		t.Fatalf("Clip(4) len = %d/%d", c.Len(), len(c.Times))
	}
	c.Points[0].Lat = 0
	if tr.Points[0].Lat == 0 {
		t.Error("Clip must deep-copy")
	}
	if tr.Clip(99).Len() != 10 {
		t.Error("Clip beyond length should return all")
	}
}

func TestBoundingBoxAndPathLength(t *testing.T) {
	tr := FromPoints(linePoints(11)) // 10 steps of 10 m east
	sw, ne := tr.BoundingBox()
	if sw.Lat > ne.Lat || sw.Lng >= ne.Lng {
		t.Errorf("box corners wrong: %v %v", sw, ne)
	}
	gotLen := tr.PathLength(geo.Haversine)
	if math.Abs(gotLen-100) > 0.1 {
		t.Errorf("PathLength = %.2f, want ~100", gotLen)
	}
}

func TestSampling(t *testing.T) {
	tr := timedLine(100, 2*time.Second)
	st, ok := tr.Sampling()
	if !ok {
		t.Fatal("expected stats")
	}
	if st.MeanGap != 2*time.Second || st.Irregular || st.DropoutsOve != 0 {
		t.Errorf("uniform line stats wrong: %+v", st)
	}

	// Introduce a dropout.
	for i := 50; i < 100; i++ {
		tr.Times[i] = tr.Times[i].Add(5 * time.Minute)
	}
	st, _ = tr.Sampling()
	if !st.Irregular || st.DropoutsOve != 1 {
		t.Errorf("dropout not detected: %+v", st)
	}

	if _, ok := FromPoints(linePoints(3)).Sampling(); ok {
		t.Error("untimed trajectory should not have stats")
	}
}

func TestResample(t *testing.T) {
	tr := timedLine(10, time.Second)
	half := tr.Resample(func(i int) bool { return i%2 == 0 })
	if half.Len() != 6 { // indexes 0,2,4,6,8 plus forced last 9
		t.Fatalf("Resample len = %d, want 6", half.Len())
	}
	if half.Points[0] != tr.Points[0] || half.Points[half.Len()-1] != tr.Points[9] {
		t.Error("endpoints must be preserved")
	}
	if len(half.Times) != half.Len() {
		t.Error("times must follow points")
	}
}

func TestMotifConstraints(t *testing.T) {
	if err := MotifConstraints(Span{0, 6}, Span{7, 13}, 5); err != nil {
		t.Errorf("feasible pair rejected: %v", err)
	}
	if err := MotifConstraints(Span{0, 5}, Span{7, 13}, 5); err == nil {
		t.Error("short first leg accepted")
	}
	if err := MotifConstraints(Span{0, 6}, Span{7, 12}, 5); err == nil {
		t.Error("short second leg accepted")
	}
	if err := MotifConstraints(Span{0, 7}, Span{7, 14}, 5); err == nil {
		t.Error("overlapping legs accepted")
	}
}
