// Package traj defines the spatial trajectory model of the paper (§3,
// Definition 1): a trajectory is a sequence of lat/lng points with an
// optional sequence of ascending timestamps, and a subtrajectory S[i..ie]
// is a contiguous slice of it identified by inclusive start/end indexes.
package traj

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"trajmotif/internal/geo"
)

// Trajectory is a sequence of spatial samples. Times is either nil (no
// timestamps) or exactly as long as Points, with non-decreasing values.
// Timestamps may be non-uniform; the motif algorithms never assume a fixed
// sampling rate (that robustness is precisely why the paper adopts DFD).
type Trajectory struct {
	Points []geo.Point
	Times  []time.Time

	// proj caches the latest equirectangular projection of Points. A
	// geo.Frame's projection depends only on its quantized reference
	// latitude (RefKey), so frames covering nearby regions share one
	// cached entry; a single slot suffices because callers process one
	// query region at a time. Points must not be mutated after the
	// first ProjectedPoints call.
	proj atomic.Pointer[projCache]
}

type projCache struct {
	refKey int32
	pts    []geo.Projected
}

// ProjectedPoints returns Points projected through f, serving repeated
// calls with the same reference latitude from a per-trajectory cache.
// The returned slice is shared — callers must not modify it.
func (t *Trajectory) ProjectedPoints(f geo.Frame) []geo.Projected {
	key := f.RefKey()
	if c := t.proj.Load(); c != nil && c.refKey == key {
		return c.pts
	}
	pts := f.ProjectAll(t.Points)
	t.proj.Store(&projCache{refKey: key, pts: pts})
	return pts
}

// New validates points (and the optional timestamps) and returns a
// trajectory that shares the provided slices.
func New(points []geo.Point, times []time.Time) (*Trajectory, error) {
	if len(points) == 0 {
		return nil, errors.New("traj: empty trajectory")
	}
	for k, p := range points {
		if !p.Valid() {
			return nil, fmt.Errorf("traj: invalid point %v at index %d", p, k)
		}
	}
	if times != nil {
		if len(times) != len(points) {
			return nil, fmt.Errorf("traj: %d timestamps for %d points", len(times), len(points))
		}
		for k := 1; k < len(times); k++ {
			if times[k].Before(times[k-1]) {
				return nil, fmt.Errorf("traj: timestamps not ascending at index %d", k)
			}
		}
	}
	return &Trajectory{Points: points, Times: times}, nil
}

// FromPoints builds an untimed trajectory, panicking on invalid input.
// It is a convenience for tests and generators that construct points
// programmatically.
func FromPoints(points []geo.Point) *Trajectory {
	t, err := New(points, nil)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of samples n = |S|.
func (t *Trajectory) Len() int { return len(t.Points) }

// Span identifies the subtrajectory S[Start..End], both indexes inclusive,
// following the paper's S_{i,ie} notation.
type Span struct {
	Start, End int
}

// Len returns the number of points covered by the span.
func (s Span) Len() int { return s.End - s.Start + 1 }

// Steps returns the number of movement steps (edges), End-Start. The
// paper's minimum-length constraint "ie > i + ξ" is a constraint on steps.
func (s Span) Steps() int { return s.End - s.Start }

// Valid reports whether the span denotes a non-empty subtrajectory of a
// trajectory with n points.
func (s Span) Valid(n int) bool {
	return 0 <= s.Start && s.Start < s.End && s.End < n
}

// Overlaps reports whether two spans share any index.
func (s Span) Overlaps(o Span) bool {
	return s.Start <= o.End && o.Start <= s.End
}

func (s Span) String() string { return fmt.Sprintf("[%d..%d]", s.Start, s.End) }

// Sub returns the subtrajectory points S[i..ie] as a view (no copy).
// It panics when the span is invalid, mirroring slice semantics.
func (t *Trajectory) Sub(i, ie int) []geo.Point {
	return t.Points[i : ie+1]
}

// SubSpan returns the points covered by sp as a view.
func (t *Trajectory) SubSpan(sp Span) []geo.Point {
	return t.Points[sp.Start : sp.End+1]
}

// TimeRange returns the first and last timestamp of the span, or ok=false
// if the trajectory is untimed.
func (t *Trajectory) TimeRange(sp Span) (first, last time.Time, ok bool) {
	if t.Times == nil {
		return time.Time{}, time.Time{}, false
	}
	return t.Times[sp.Start], t.Times[sp.End], true
}

// Concat concatenates trajectories in order, sharing no state with the
// inputs. Timestamps are preserved only when every input is timed and the
// sequence remains non-decreasing across boundaries; otherwise the result
// is untimed. This mirrors the paper's evaluation setup, which concatenates
// raw trajectories to build longer ones (§6.1).
func Concat(parts ...*Trajectory) (*Trajectory, error) {
	if len(parts) == 0 {
		return nil, errors.New("traj: nothing to concatenate")
	}
	total := 0
	timed := true
	for _, p := range parts {
		if p == nil || p.Len() == 0 {
			return nil, errors.New("traj: nil or empty part")
		}
		total += p.Len()
		if p.Times == nil {
			timed = false
		}
	}
	points := make([]geo.Point, 0, total)
	var times []time.Time
	if timed {
		times = make([]time.Time, 0, total)
	}
	for _, p := range parts {
		points = append(points, p.Points...)
		if timed {
			if len(times) > 0 && p.Times[0].Before(times[len(times)-1]) {
				timed, times = false, nil
			} else {
				times = append(times, p.Times...)
			}
		}
	}
	return New(points, times)
}

// Clip returns a deep copy of the first n points (or the whole trajectory
// if n >= Len). It is used by the harness to sweep trajectory lengths.
func (t *Trajectory) Clip(n int) *Trajectory {
	if n > t.Len() {
		n = t.Len()
	}
	out := &Trajectory{Points: append([]geo.Point(nil), t.Points[:n]...)}
	if t.Times != nil {
		out.Times = append([]time.Time(nil), t.Times[:n]...)
	}
	return out
}

// BoundingBox returns the south-west and north-east corners of the
// trajectory's axis-aligned bounding box.
func (t *Trajectory) BoundingBox() (sw, ne geo.Point) {
	sw = geo.Point{Lat: math.Inf(1), Lng: math.Inf(1)}
	ne = geo.Point{Lat: math.Inf(-1), Lng: math.Inf(-1)}
	for _, p := range t.Points {
		sw.Lat = math.Min(sw.Lat, p.Lat)
		sw.Lng = math.Min(sw.Lng, p.Lng)
		ne.Lat = math.Max(ne.Lat, p.Lat)
		ne.Lng = math.Max(ne.Lng, p.Lng)
	}
	return sw, ne
}

// PathLength returns the total travelled distance under df.
func (t *Trajectory) PathLength(df geo.DistanceFunc) float64 {
	var sum float64
	for k := 1; k < len(t.Points); k++ {
		sum += df(t.Points[k-1], t.Points[k])
	}
	return sum
}

// SamplingStats summarizes the inter-sample time gaps of a timed
// trajectory. It quantifies the "non-uniform/varying sampling rate"
// property the paper highlights for real datasets (§1, §2).
type SamplingStats struct {
	Samples     int
	MinGap      time.Duration
	MaxGap      time.Duration
	MeanGap     time.Duration
	Gaps        int // number of gaps (Samples-1)
	Irregular   bool
	DropoutsOve int // gaps more than 5x the mean (missing-sample episodes)
}

// Sampling computes SamplingStats; ok is false for untimed or single-point
// trajectories.
func (t *Trajectory) Sampling() (SamplingStats, bool) {
	if t.Times == nil || t.Len() < 2 {
		return SamplingStats{}, false
	}
	st := SamplingStats{
		Samples: t.Len(),
		Gaps:    t.Len() - 1,
		MinGap:  time.Duration(math.MaxInt64),
	}
	var total time.Duration
	for k := 1; k < t.Len(); k++ {
		g := t.Times[k].Sub(t.Times[k-1])
		total += g
		if g < st.MinGap {
			st.MinGap = g
		}
		if g > st.MaxGap {
			st.MaxGap = g
		}
	}
	st.MeanGap = total / time.Duration(st.Gaps)
	if st.MeanGap > 0 {
		for k := 1; k < t.Len(); k++ {
			if t.Times[k].Sub(t.Times[k-1]) > 5*st.MeanGap {
				st.DropoutsOve++
			}
		}
	}
	st.Irregular = st.MaxGap > 2*st.MinGap
	return st, true
}

// Resample returns a copy of the trajectory keeping every point whose index
// the keep function accepts; the first and last points are always kept.
// It is used to build the non-uniform-sampling demonstrations of Figure 3.
func (t *Trajectory) Resample(keep func(i int) bool) *Trajectory {
	points := make([]geo.Point, 0, t.Len())
	var times []time.Time
	if t.Times != nil {
		times = make([]time.Time, 0, t.Len())
	}
	for k, p := range t.Points {
		if k == 0 || k == t.Len()-1 || keep(k) {
			points = append(points, p)
			if times != nil {
				times = append(times, t.Times[k])
			}
		}
	}
	return &Trajectory{Points: points, Times: times}
}

// MotifConstraints captures Problem 1's feasibility rules for a candidate
// pair of spans within a single trajectory: both legs strictly longer than
// ξ steps and temporally non-overlapping (i < ie < j < je).
func MotifConstraints(a, b Span, xi int) error {
	if a.Steps() <= xi {
		return fmt.Errorf("traj: first leg %v spans %d steps, need > %d", a, a.Steps(), xi)
	}
	if b.Steps() <= xi {
		return fmt.Errorf("traj: second leg %v spans %d steps, need > %d", b, b.Steps(), xi)
	}
	if a.End >= b.Start {
		return fmt.Errorf("traj: legs %v and %v overlap", a, b)
	}
	return nil
}
