// Package loadgen replays a mixed read/write workload against a running
// motifserve endpoint and reports what came back. It is the proving
// harness for the server's production-hardening invariants: under
// sustained concurrent traffic the server may shed load (429) and may
// evict trajectories (404 on a stale id), but it must never answer 5xx,
// and a capacity-capped registry must stay capped.
//
// The generator is deterministic: every worker derives its own
// rand.Source from Config.Seed, and the trajectory bodies come from the
// seeded datagen fixtures, so a failing run replays exactly.
package loadgen

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"trajmotif/internal/datagen"
)

// Config shapes one load run.
type Config struct {
	// BaseURL is the server under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Concurrency is the number of client workers issuing requests.
	Concurrency int
	// Requests is the total operation count across all workers.
	Requests int
	// Seed makes the op mix and bodies reproducible.
	Seed int64
	// Timeout bounds each request (default 30s).
	Timeout time.Duration
	// MaxP50, MaxP95 and MaxP99 are per-endpoint latency ceilings
	// enforced by Report.Check: a run whose p50/p95/p99 for any endpoint
	// exceeds the ceiling fails the gate. Zero disables that percentile's
	// check.
	MaxP50, MaxP95, MaxP99 time.Duration
}

// LatencyStats summarizes one endpoint's observed request latencies
// (transport failures excluded — they are failures outright).
type LatencyStats struct {
	Count         int
	P50, P95, P99 time.Duration
	Max           time.Duration
}

// Report is the outcome of a run. Status classes the harness considers
// legitimate under load — 2xx, 404 (an id evicted between operations)
// and 429 (admission shedding) — are tallied but are not failures;
// Check turns genuine violations into errors.
type Report struct {
	Ops             int
	ByOp            map[string]int
	ByStatus        map[int]int
	ServerErrors    int // 5xx responses
	TransportErrors int // connection/timeout failures
	FirstErrors     []string

	// Latency holds per-endpoint percentiles (nearest-rank over every
	// completed request of that op); the Max* ceilings echo the Config
	// so Check can enforce them.
	Latency                map[string]LatencyStats
	MaxP50, MaxP95, MaxP99 time.Duration

	// Scraped after the workers drain.
	FinalTrajectories int
	EvictedLRU        int64
	EvictedTTL        int64
	Rejected          int64
	MetricsSamples    int
	MetricsErr        string
}

// Check validates the hardening invariants: no 5xx, no transport
// failures, a parseable /metrics exposition, and — when the server's
// registry cap is known — a bounded registry. maxTrajectories <= 0
// skips the bound check.
func (r *Report) Check(maxTrajectories int) error {
	switch {
	case r.ServerErrors > 0:
		return fmt.Errorf("%d server errors (5xx): %s", r.ServerErrors, strings.Join(r.FirstErrors, "; "))
	case r.TransportErrors > 0:
		return fmt.Errorf("%d transport errors: %s", r.TransportErrors, strings.Join(r.FirstErrors, "; "))
	case r.MetricsErr != "":
		return fmt.Errorf("final /metrics scrape: %s", r.MetricsErr)
	case r.ByStatus[http.StatusOK] == 0:
		return fmt.Errorf("no request succeeded (statuses: %v)", r.ByStatus)
	case maxTrajectories > 0 && r.FinalTrajectories > maxTrajectories:
		return fmt.Errorf("registry holds %d trajectories past the cap of %d", r.FinalTrajectories, maxTrajectories)
	}
	return r.checkLatency()
}

// checkLatency enforces the configured percentile ceilings per endpoint,
// walking ops in sorted order so a multi-violation run reports the same
// offender every time.
func (r *Report) checkLatency() error {
	gates := []struct {
		name string
		lim  time.Duration
		pick func(LatencyStats) time.Duration
	}{
		{"p50", r.MaxP50, func(l LatencyStats) time.Duration { return l.P50 }},
		{"p95", r.MaxP95, func(l LatencyStats) time.Duration { return l.P95 }},
		{"p99", r.MaxP99, func(l LatencyStats) time.Duration { return l.P99 }},
	}
	ops := make([]string, 0, len(r.Latency))
	for op := range r.Latency {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, g := range gates {
		if g.lim <= 0 {
			continue
		}
		for _, op := range ops {
			if v := g.pick(r.Latency[op]); v > g.lim {
				return fmt.Errorf("%s %s latency %v exceeds ceiling %v", op, g.name, v, g.lim)
			}
		}
	}
	return nil
}

// percentiles reduces one op's samples by nearest rank: p(q) is the
// ceil(q·n)-th smallest sample.
func percentiles(ds []time.Duration) LatencyStats {
	sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
	at := func(q float64) time.Duration {
		k := int(math.Ceil(q*float64(len(ds)))) - 1
		if k < 0 {
			k = 0
		}
		return ds[k]
	}
	return LatencyStats{
		Count: len(ds),
		P50:   at(0.50),
		P95:   at(0.95),
		P99:   at(0.99),
		Max:   ds[len(ds)-1],
	}
}

// String renders the one-screen summary motifload prints.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ops %d", r.Ops)
	ops := make([]string, 0, len(r.ByOp))
	for op := range r.ByOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Fprintf(&b, " %s=%d", op, r.ByOp[op])
	}
	codes := make([]int, 0, len(r.ByStatus))
	for c := range r.ByStatus {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	b.WriteString("\nstatus")
	for _, c := range codes {
		fmt.Fprintf(&b, " %d=%d", c, r.ByStatus[c])
	}
	lops := make([]string, 0, len(r.Latency))
	for op := range r.Latency {
		lops = append(lops, op)
	}
	sort.Strings(lops)
	for _, op := range lops {
		l := r.Latency[op]
		fmt.Fprintf(&b, "\nlatency %s: p50=%v p95=%v p99=%v max=%v n=%d",
			op, l.P50.Round(time.Microsecond), l.P95.Round(time.Microsecond),
			l.P99.Round(time.Microsecond), l.Max.Round(time.Microsecond), l.Count)
	}
	fmt.Fprintf(&b, "\nfinal: trajectories=%d evictedLRU=%d evictedTTL=%d rejected=%d metricsSamples=%d",
		r.FinalTrajectories, r.EvictedLRU, r.EvictedTTL, r.Rejected, r.MetricsSamples)
	return b.String()
}

// fixturePool is how many distinct trajectory bodies the run cycles
// through — enough to churn a small registry cap, small enough that
// re-uploads exercise the dedup path too.
const fixturePool = 48

// Run replays the workload and scrapes the final server state. The only
// error returned is a setup failure (bad config, fixture generation);
// traffic-level failures land in the Report for Check to judge.
func Run(cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 4
	}
	if cfg.Requests < 1 {
		cfg.Requests = 200
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}

	bodies := make([][]byte, fixturePool)
	for k := range bodies {
		tr, err := datagen.Dataset(datagen.TruckName, datagen.Config{Seed: cfg.Seed + int64(k), N: 36})
		if err != nil {
			return nil, fmt.Errorf("loadgen: fixture %d: %w", k, err)
		}
		req := struct {
			Points [][2]float64 `json:"points"`
		}{Points: make([][2]float64, tr.Len())}
		for j, p := range tr.Points {
			req.Points[j] = [2]float64{p.Lat, p.Lng}
		}
		bodies[k], err = json.Marshal(req)
		if err != nil {
			return nil, err
		}
	}

	rep := &Report{
		ByOp: make(map[string]int), ByStatus: make(map[int]int),
		MaxP50: cfg.MaxP50, MaxP95: cfg.MaxP95, MaxP99: cfg.MaxP99,
	}
	var (
		mu   sync.Mutex // guards rep, ids and durs
		ids  []string   // ids this run has uploaded and not yet deleted
		durs = make(map[string][]time.Duration)
	)
	client := &http.Client{Timeout: cfg.Timeout}

	record := func(op string, status int, err error, d time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		rep.Ops++
		rep.ByOp[op]++
		if err != nil {
			rep.TransportErrors++
			if len(rep.FirstErrors) < 5 {
				rep.FirstErrors = append(rep.FirstErrors, fmt.Sprintf("%s: %v", op, err))
			}
			return
		}
		durs[op] = append(durs[op], d)
		rep.ByStatus[status]++
		if status >= 500 {
			rep.ServerErrors++
			if len(rep.FirstErrors) < 5 {
				rep.FirstErrors = append(rep.FirstErrors, fmt.Sprintf("%s: status %d", op, status))
			}
		}
	}
	randomID := func(rng *rand.Rand) (string, bool) {
		mu.Lock()
		defer mu.Unlock()
		if len(ids) == 0 {
			return "", false
		}
		return ids[rng.Intn(len(ids))], true
	}

	post := func(path string, body []byte) (*http.Response, error) {
		return client.Post(cfg.BaseURL+path, "application/json", bytes.NewReader(body))
	}
	// timed issues one request, times it wall-to-wall (including reading
	// the status), and records the outcome under op.
	timed := func(op string, fn func() (*http.Response, error)) {
		start := time.Now()
		resp, err := fn()
		if err == nil {
			resp.Body.Close()
			record(op, resp.StatusCode, nil, time.Since(start))
		} else {
			record(op, 0, err, 0)
		}
	}

	doUpload := func(rng *rand.Rand) {
		body := bodies[rng.Intn(len(bodies))]
		start := time.Now()
		resp, err := post("/trajectories", body)
		var id string
		if err == nil {
			var out struct {
				ID string `json:"id"`
			}
			if resp.StatusCode == http.StatusOK {
				_ = json.NewDecoder(resp.Body).Decode(&out)
				id = out.ID
			}
			resp.Body.Close()
			record("upload", resp.StatusCode, nil, time.Since(start))
		} else {
			record("upload", 0, err, 0)
		}
		if id != "" {
			mu.Lock()
			ids = append(ids, id)
			mu.Unlock()
		}
	}

	var wg sync.WaitGroup
	perWorker := cfg.Requests / cfg.Concurrency
	for w := 0; w < cfg.Concurrency; w++ {
		extra := 0
		if w < cfg.Requests%cfg.Concurrency {
			extra = 1
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(w)))
			for k := 0; k < n; k++ {
				p := rng.Float64()
				switch {
				case p < 0.30: // upload
					doUpload(rng)
				case p < 0.60: // discover on a known id
					id, ok := randomID(rng)
					if !ok { // nothing uploaded yet: seed the registry instead
						doUpload(rng)
						continue
					}
					b, _ := json.Marshal(map[string]any{"id": id, "xi": 6})
					timed("discover", func() (*http.Response, error) { return post("/discover", b) })
				case p < 0.72: // knn over the default dataset
					id, ok := randomID(rng)
					if !ok {
						doUpload(rng)
						continue
					}
					b, _ := json.Marshal(map[string]any{"query": id, "k": 2})
					timed("knn", func() (*http.Response, error) { return post("/knn", b) })
				case p < 0.80: // join over the default dataset
					b, _ := json.Marshal(map[string]any{"eps": 500.0})
					timed("join", func() (*http.Response, error) { return post("/join", b) })
				case p < 0.90: // delete a known id
					id, ok := randomID(rng)
					if !ok {
						doUpload(rng)
						continue
					}
					timed("delete", func() (*http.Response, error) {
						req, _ := http.NewRequest(http.MethodDelete, cfg.BaseURL+"/trajectories/"+id, nil)
						return client.Do(req)
					})
				default: // observability endpoints under traffic
					path := "/stats"
					if rng.Intn(2) == 0 {
						path = "/metrics"
					}
					timed("observe", func() (*http.Response, error) { return client.Get(cfg.BaseURL + path) })
				}
			}
		}(w, perWorker+extra)
	}
	wg.Wait()

	rep.Latency = make(map[string]LatencyStats, len(durs))
	for op, ds := range durs {
		rep.Latency[op] = percentiles(ds)
	}
	scrapeFinal(client, cfg.BaseURL, rep)
	return rep, nil
}

// scrapeFinal fills the Report's post-run server state: /stats for the
// registry size and eviction counters, /metrics for exposition health.
func scrapeFinal(client *http.Client, base string, rep *Report) {
	if resp, err := client.Get(base + "/stats"); err != nil {
		rep.MetricsErr = fmt.Sprintf("final /stats: %v", err)
	} else {
		var st struct {
			Trajectories int   `json:"trajectories"`
			EvictedLRU   int64 `json:"evictedLRU"`
			EvictedTTL   int64 `json:"evictedTTL"`
			Rejected     int64 `json:"rejected"`
		}
		err := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			rep.MetricsErr = fmt.Sprintf("final /stats decode: %v", err)
			return
		}
		rep.FinalTrajectories = st.Trajectories
		rep.EvictedLRU = st.EvictedLRU
		rep.EvictedTTL = st.EvictedTTL
		rep.Rejected = st.Rejected
	}

	resp, err := client.Get(base + "/metrics")
	if err != nil {
		rep.MetricsErr = fmt.Sprintf("final /metrics: %v", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		rep.MetricsErr = fmt.Sprintf("final /metrics: status %d", resp.StatusCode)
		return
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			rep.MetricsErr = fmt.Sprintf("unparseable metrics line %q", line)
			return
		}
		if _, err := strconv.ParseFloat(line[idx+1:], 64); err != nil {
			rep.MetricsErr = fmt.Sprintf("metrics line %q: %v", line, err)
			return
		}
		rep.MetricsSamples++
	}
	if err := sc.Err(); err != nil {
		rep.MetricsErr = fmt.Sprintf("reading /metrics: %v", err)
	} else if rep.MetricsSamples == 0 {
		rep.MetricsErr = "empty /metrics exposition"
	}
}
