package loadgen

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"trajmotif/internal/serve"
	"trajmotif/internal/store"
)

// TestRunAgainstCappedServer drives the mixed workload at an in-process
// server with a tight registry cap and admission enabled, then checks
// every hardening invariant the harness exists to prove. The CI race
// job runs this under -race, so the workload doubles as a
// client-plus-server concurrency shakeout.
func TestRunAgainstCappedServer(t *testing.T) {
	const cap = 8
	st := store.New(&store.Options{MaxTrajectories: cap})
	ts := httptest.NewServer(serve.New(st, &serve.Options{
		Workers:               1,
		MaxConcurrentSearches: 2,
	}))
	t.Cleanup(ts.Close)

	rep, err := Run(Config{BaseURL: ts.URL, Concurrency: 4, Requests: 160, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if err := rep.Check(cap); err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 160 {
		t.Errorf("ran %d ops, want 160", rep.Ops)
	}
	// The workload uploads ~30% of 160 ops over a cap of 8: the LRU
	// must have churned.
	if rep.EvictedLRU == 0 {
		t.Error("capped registry saw no LRU evictions under the upload mix")
	}
	if rep.ByOp["upload"] == 0 || rep.ByOp["discover"] == 0 {
		t.Errorf("op mix degenerate: %v", rep.ByOp)
	}
	// Latency percentiles cover every op that completed a request.
	for op, n := range rep.ByOp {
		l, ok := rep.Latency[op]
		if !ok || l.Count == 0 || l.Count > n || l.P50 <= 0 || l.P99 < l.P50 || l.Max < l.P99 {
			t.Errorf("latency for %s inconsistent: %+v (ops %d)", op, l, n)
		}
	}
}

// TestRunDeterministicMix: two runs with the same seed issue the same
// op sequence (transport-level results may differ; the generator side
// must not).
func TestRunDeterministicMix(t *testing.T) {
	mk := func() *Report {
		st := store.New(nil)
		ts := httptest.NewServer(serve.New(st, &serve.Options{Workers: 1}))
		defer ts.Close()
		rep, err := Run(Config{BaseURL: ts.URL, Concurrency: 2, Requests: 60, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := mk(), mk()
	for op, n := range a.ByOp {
		if b.ByOp[op] != n {
			t.Errorf("op %s: %d vs %d across identical seeds", op, n, b.ByOp[op])
		}
	}
}

// TestCheckRejectsViolations: the invariant checker actually fails on
// the failure classes it guards.
func TestCheckRejectsViolations(t *testing.T) {
	base := func() *Report {
		return &Report{ByStatus: map[int]int{200: 10}, MetricsSamples: 5}
	}
	if err := base().Check(0); err != nil {
		t.Errorf("clean report rejected: %v", err)
	}
	r := base()
	r.ServerErrors = 1
	if r.Check(0) == nil {
		t.Error("5xx not rejected")
	}
	r = base()
	r.TransportErrors = 2
	if r.Check(0) == nil {
		t.Error("transport errors not rejected")
	}
	r = base()
	r.MetricsErr = "boom"
	if r.Check(0) == nil {
		t.Error("metrics failure not rejected")
	}
	r = base()
	r.FinalTrajectories = 9
	if r.Check(8) == nil {
		t.Error("registry over cap not rejected")
	}
	if r.Check(0) != nil {
		t.Error("cap check should be skipped when the cap is unknown")
	}

	// Latency ceilings: each percentile gate fires independently, zero
	// disables it.
	r = base()
	r.Latency = map[string]LatencyStats{
		"join": {Count: 10, P50: 5 * time.Millisecond, P95: 40 * time.Millisecond, P99: 90 * time.Millisecond},
	}
	if r.Check(0) != nil {
		t.Error("latency without ceilings should pass")
	}
	r.MaxP50 = time.Millisecond
	if err := r.Check(0); err == nil || !strings.Contains(err.Error(), "p50") {
		t.Errorf("p50 blowup not rejected: %v", err)
	}
	r.MaxP50, r.MaxP95 = 0, 10*time.Millisecond
	if err := r.Check(0); err == nil || !strings.Contains(err.Error(), "p95") {
		t.Errorf("p95 blowup not rejected: %v", err)
	}
	r.MaxP95, r.MaxP99 = 0, 50*time.Millisecond
	if err := r.Check(0); err == nil || !strings.Contains(err.Error(), "p99") {
		t.Errorf("p99 blowup not rejected: %v", err)
	}
	r.MaxP99 = time.Second
	if err := r.Check(0); err != nil {
		t.Errorf("latencies under the ceilings rejected: %v", err)
	}
}

// TestPercentiles pins the nearest-rank reduction on a known sample set.
func TestPercentiles(t *testing.T) {
	ds := make([]time.Duration, 100)
	for i := range ds {
		ds[i] = time.Duration(100-i) * time.Millisecond // 1..100ms, reversed
	}
	l := percentiles(ds)
	if l.Count != 100 || l.P50 != 50*time.Millisecond || l.P95 != 95*time.Millisecond ||
		l.P99 != 99*time.Millisecond || l.Max != 100*time.Millisecond {
		t.Fatalf("percentiles = %+v", l)
	}
	one := percentiles([]time.Duration{7 * time.Millisecond})
	if one.P50 != 7*time.Millisecond || one.P99 != 7*time.Millisecond || one.Count != 1 {
		t.Fatalf("single-sample percentiles = %+v", one)
	}
}
