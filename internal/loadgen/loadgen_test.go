package loadgen

import (
	"net/http/httptest"
	"testing"

	"trajmotif/internal/serve"
	"trajmotif/internal/store"
)

// TestRunAgainstCappedServer drives the mixed workload at an in-process
// server with a tight registry cap and admission enabled, then checks
// every hardening invariant the harness exists to prove. The CI race
// job runs this under -race, so the workload doubles as a
// client-plus-server concurrency shakeout.
func TestRunAgainstCappedServer(t *testing.T) {
	const cap = 8
	st := store.New(&store.Options{MaxTrajectories: cap})
	ts := httptest.NewServer(serve.New(st, &serve.Options{
		Workers:               1,
		MaxConcurrentSearches: 2,
	}))
	t.Cleanup(ts.Close)

	rep, err := Run(Config{BaseURL: ts.URL, Concurrency: 4, Requests: 160, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if err := rep.Check(cap); err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 160 {
		t.Errorf("ran %d ops, want 160", rep.Ops)
	}
	// The workload uploads ~30% of 160 ops over a cap of 8: the LRU
	// must have churned.
	if rep.EvictedLRU == 0 {
		t.Error("capped registry saw no LRU evictions under the upload mix")
	}
	if rep.ByOp["upload"] == 0 || rep.ByOp["discover"] == 0 {
		t.Errorf("op mix degenerate: %v", rep.ByOp)
	}
}

// TestRunDeterministicMix: two runs with the same seed issue the same
// op sequence (transport-level results may differ; the generator side
// must not).
func TestRunDeterministicMix(t *testing.T) {
	mk := func() *Report {
		st := store.New(nil)
		ts := httptest.NewServer(serve.New(st, &serve.Options{Workers: 1}))
		defer ts.Close()
		rep, err := Run(Config{BaseURL: ts.URL, Concurrency: 2, Requests: 60, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := mk(), mk()
	for op, n := range a.ByOp {
		if b.ByOp[op] != n {
			t.Errorf("op %s: %d vs %d across identical seeds", op, n, b.ByOp[op])
		}
	}
}

// TestCheckRejectsViolations: the invariant checker actually fails on
// the failure classes it guards.
func TestCheckRejectsViolations(t *testing.T) {
	base := func() *Report {
		return &Report{ByStatus: map[int]int{200: 10}, MetricsSamples: 5}
	}
	if err := base().Check(0); err != nil {
		t.Errorf("clean report rejected: %v", err)
	}
	r := base()
	r.ServerErrors = 1
	if r.Check(0) == nil {
		t.Error("5xx not rejected")
	}
	r = base()
	r.TransportErrors = 2
	if r.Check(0) == nil {
		t.Error("transport errors not rejected")
	}
	r = base()
	r.MetricsErr = "boom"
	if r.Check(0) == nil {
		t.Error("metrics failure not rejected")
	}
	r = base()
	r.FinalTrajectories = 9
	if r.Check(8) == nil {
		t.Error("registry over cap not rejected")
	}
	if r.Check(0) != nil {
		t.Error("cap check should be skipped when the cap is unknown")
	}
}
