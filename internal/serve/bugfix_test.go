package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"trajmotif/internal/store"
)

// TestFlushReachesUnderlyingWriter: a handler's streaming flush must
// pass through the metrics statusRecorder to the real connection. The
// test mounts a flushing handler on the server's own mux and drives the
// full ServeHTTP path — recorder wrapping included — against an
// underlying writer that records flushes.
func TestFlushReachesUnderlyingWriter(t *testing.T) {
	srv := New(store.New(nil), &Options{Workers: 1})
	srv.mux.HandleFunc("GET /flushing", func(w http.ResponseWriter, r *http.Request) {
		if _, err := w.Write([]byte("chunk-1\n")); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := http.NewResponseController(w).Flush(); err != nil {
			t.Errorf("flush through the recorder failed: %v", err)
		}
		_, _ = w.Write([]byte("chunk-2\n"))
	})
	rec := httptest.NewRecorder() // implements http.Flusher
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/flushing", nil))
	if !rec.Flushed {
		t.Fatal("flush never reached the underlying ResponseWriter")
	}
	if got := rec.Body.String(); got != "chunk-1\nchunk-2\n" {
		t.Fatalf("body: %q", got)
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("status: %d", rec.Code)
	}
}

// TestFlushBeforeBodyCommitsHeaders: flushing before any write commits
// a 200 with the Server-Timing stamp, same as a body write would.
func TestFlushBeforeBodyCommitsHeaders(t *testing.T) {
	srv := New(store.New(nil), &Options{Workers: 1})
	srv.mux.HandleFunc("GET /headerflush", func(w http.ResponseWriter, r *http.Request) {
		if err := http.NewResponseController(w).Flush(); err != nil {
			t.Errorf("flush: %v", err)
		}
	})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/headerflush", nil))
	if !rec.Flushed || rec.Code != http.StatusOK {
		t.Fatalf("flushed=%v code=%d", rec.Flushed, rec.Code)
	}
	if !strings.HasPrefix(rec.Header().Get("Server-Timing"), "app;dur=") {
		t.Fatalf("Server-Timing not stamped on flush-first response: %q", rec.Header())
	}
}

// TestStatusRecorderUnwrap: http.ResponseController reaches the
// underlying writer's optional interfaces through Unwrap.
func TestStatusRecorderUnwrap(t *testing.T) {
	rec := httptest.NewRecorder()
	sr := &statusRecorder{ResponseWriter: rec, start: time.Now()}
	if sr.Unwrap() != http.ResponseWriter(rec) {
		t.Fatal("Unwrap does not expose the wrapped writer")
	}
}

// TestNegativeQueueWaitRejectsImmediately: QueueWait < 0 documents
// "never wait" — with the only slot held, the next request 429s at
// once instead of inheriting the 5-second default stall.
func TestNegativeQueueWaitRejectsImmediately(t *testing.T) {
	srv := New(store.New(nil), &Options{
		Workers:               1,
		MaxConcurrentSearches: 1,
		QueueWait:             -1,
	})
	charged, ok := srv.sem.acquire(1)
	if !ok {
		t.Fatal("setup acquire failed")
	}
	defer srv.sem.release(charged)

	start := time.Now()
	if _, ok := srv.sem.acquire(1); ok {
		t.Fatal("second acquire admitted past capacity")
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("never-wait acquire stalled %v", waited)
	}
}

// TestAdmissionZeroMaxWait pins the maxWait <= 0 semantics at the
// admission layer: immediate rejection, no timer race, and the fast
// path still admits when slots are free.
func TestAdmissionZeroMaxWait(t *testing.T) {
	for _, maxWait := range []time.Duration{0, -time.Second} {
		a := newAdmission(2, 8, maxWait)
		charged, ok := a.acquire(2)
		if !ok || charged != 2 {
			t.Fatalf("maxWait=%v: free-capacity acquire failed", maxWait)
		}
		if _, ok := a.acquire(1); ok {
			t.Fatalf("maxWait=%v: acquire waited despite never-wait", maxWait)
		}
		a.release(charged)
		if _, ok := a.acquire(1); !ok {
			t.Fatalf("maxWait=%v: acquire failed after release", maxWait)
		}
	}
}
