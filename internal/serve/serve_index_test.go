package serve

import (
	"math/rand"
	"net/http"
	"testing"

	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

// cityWalk builds a short trajectory around an arbitrary center, for
// corpora with real spatial spread (fixture's GeoLife walks all share
// Beijing, which the index cannot prune).
func cityWalk(t *testing.T, seed int64, n int, lat, lng float64) *traj.Trajectory {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	pts := make([]geo.Point, n)
	for i := range pts {
		lat += (r.Float64()*2 - 1) * 0.01
		lng += (r.Float64()*2 - 1) * 0.01
		pts[i] = geo.Point{Lat: lat, Lng: lng}
	}
	tr, err := traj.New(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestStatsSurfacesIndexCounters: /knn and /join consult the spatial
// index built from the registry's cached MBRs, their responses carry the
// new Stats fields, and GET /stats accumulates them across requests.
func TestStatsSurfacesIndexCounters(t *testing.T) {
	ts, _ := harness(t)
	query := upload(t, ts, cityWalk(t, 1, 25, 39.9, 116.4))
	upload(t, ts, cityWalk(t, 2, 25, 39.92, 116.42)) // near: the neighbor
	for i := int64(0); i < 6; i++ {                  // far: index fodder
		upload(t, ts, cityWalk(t, 10+i, 25, -33.8+float64(i), 151.2))
	}

	var knnOut knnResponse
	call(t, ts, "POST", "/knn", knnRequest{Query: query, K: 1}, &knnOut, http.StatusOK)
	if knnOut.Stats.IndexConsulted != 1 {
		t.Errorf("knn IndexConsulted = %d, want 1", knnOut.Stats.IndexConsulted)
	}
	if knnOut.Stats.IndexPruned == 0 {
		t.Error("knn never index-pruned the Sydney decoys")
	}

	var joinOut joinResponse
	call(t, ts, "POST", "/join", joinRequest{Eps: 50_000}, &joinOut, http.StatusOK)
	if joinOut.Stats.IndexConsulted == 0 || joinOut.Stats.IndexPruned == 0 {
		t.Errorf("join index counters: %+v", joinOut.Stats)
	}

	var st serverStats
	call(t, ts, "GET", "/stats", nil, &st, http.StatusOK)
	wantConsulted := knnOut.Stats.IndexConsulted + joinOut.Stats.IndexConsulted
	wantPruned := knnOut.Stats.IndexPruned + joinOut.Stats.IndexPruned
	if st.IndexConsulted != wantConsulted || st.IndexPruned != wantPruned {
		t.Errorf("/stats index counters = %d/%d, want %d/%d",
			st.IndexConsulted, st.IndexPruned, wantConsulted, wantPruned)
	}
}

// TestSpatialIndexDuringChurn extends the PR 5 DELETE churn regression
// to the maintained spatial index: while uploads and DELETEs race /knn
// and /join, the index must never yield a removed trajectory nor drop a
// live one (SpatialParity), and the handlers must keep answering. The CI
// race job runs this under -race.
func TestSpatialIndexDuringChurn(t *testing.T) {
	ts, srv := harness(t)
	query := upload(t, ts, cityWalk(t, 51, 20, 39.9, 116.4))
	upload(t, ts, cityWalk(t, 52, 20, 39.91, 116.41))

	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; k < 30; k++ {
			id := upload(t, ts, cityWalk(t, int64(100+k), 20, -33.8, 151.2))
			req, _ := http.NewRequest("DELETE", ts.URL+"/trajectories/"+string(id), nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}
	}()
	for k := 0; k < 30; k++ {
		var knnOut knnResponse
		call(t, ts, "POST", "/knn", knnRequest{Query: query, K: 1}, &knnOut, http.StatusOK)
		if len(knnOut.Neighbors) < 1 {
			t.Fatal("knn lost every neighbor mid-churn")
		}
		var joinOut joinResponse
		call(t, ts, "POST", "/join", joinRequest{Eps: 1e9}, &joinOut, http.StatusOK)
		if missing, stale := srv.Store().SpatialParity(); len(missing) != 0 || stale != 0 {
			t.Fatalf("churn %d: index missing=%v stale=%d", k, missing, stale)
		}
	}
	<-done
	if missing, stale := srv.Store().SpatialParity(); len(missing) != 0 || stale != 0 {
		t.Fatalf("final index parity: missing=%v stale=%d", missing, stale)
	}
}
