package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"trajmotif/internal/store"
)

// latencyBuckets are the request-duration histogram upper bounds in
// seconds. Chosen for a search server: sub-millisecond registry hits
// through multi-second cold grid builds.
var latencyBuckets = [...]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// metrics is the server's dependency-free Prometheus-text registry:
// per-endpoint request counters (by status code) and latency
// histograms, plus the in-flight gauge. Store/cache/index/eviction and
// admission counters are read live at scrape time, not duplicated here.
type metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
	inFlight  int64
}

// endpointMetrics accumulates one endpoint's counters. buckets[k]
// counts requests with duration <= latencyBuckets[k]; the implicit
// +Inf bucket is count.
type endpointMetrics struct {
	codes   map[int]int64
	buckets [len(latencyBuckets)]int64
	sum     float64
	count   int64
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*endpointMetrics)}
}

func (m *metrics) requestStarted() {
	m.mu.Lock()
	m.inFlight++
	m.mu.Unlock()
}

func (m *metrics) requestDone(endpoint string, code int, d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inFlight--
	e := m.endpoints[endpoint]
	if e == nil {
		e = &endpointMetrics{codes: make(map[int]int64)}
		m.endpoints[endpoint] = e
	}
	e.codes[code]++
	e.sum += secs
	e.count++
	for k, le := range latencyBuckets {
		if secs <= le {
			e.buckets[k]++
		}
	}
}

// liveCounters is everything /metrics reads at scrape time beyond the
// per-request accounting: the store snapshot and admission state.
type liveCounters struct {
	trajectories     int
	maxTrajectories  int
	trajectoryTTL    float64 // seconds; 0 = disabled
	artifacts        int
	cacheBytes       int64
	cacheBudget      int64
	built            int64
	reused           int64
	artifactEvicted  int64
	evictedManual    int64
	evictedLRU       int64
	evictedTTL       int64
	pairDistsBuilt   int64
	pairDistsReused  int64
	diskArtifacts    int
	diskBytes        int64
	diskWrites       int64
	diskReads        int64
	diskErrors       int64
	shards           int
	indexConsulted   int64
	indexPruned      int64
	admissionInUse   int64
	admissionQueued  int
	admissionReject  int64
	uptimeSeconds    float64
	workerCapacity   int64
	admissionEnabled bool
	// perShard carries one store snapshot per shard (nil for a plain
	// store backend), rendered as shard-labelled gauges.
	perShard []store.Stats
}

// render writes the Prometheus text exposition (version 0.0.4). Output
// is deterministic: endpoints and status codes are sorted.
func (m *metrics) render(w *strings.Builder, live liveCounters) {
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "# HELP motifserve_requests_total Requests served, by endpoint pattern and status code.\n")
	fmt.Fprintf(w, "# TYPE motifserve_requests_total counter\n")
	for _, name := range names {
		e := m.endpoints[name]
		codes := make([]int, 0, len(e.codes))
		for c := range e.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "motifserve_requests_total{endpoint=%q,code=\"%d\"} %d\n", name, c, e.codes[c])
		}
	}

	fmt.Fprintf(w, "# HELP motifserve_request_duration_seconds Request latency, by endpoint pattern.\n")
	fmt.Fprintf(w, "# TYPE motifserve_request_duration_seconds histogram\n")
	for _, name := range names {
		e := m.endpoints[name]
		for k, le := range latencyBuckets {
			fmt.Fprintf(w, "motifserve_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				name, strconv.FormatFloat(le, 'g', -1, 64), e.buckets[k])
		}
		fmt.Fprintf(w, "motifserve_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, e.count)
		fmt.Fprintf(w, "motifserve_request_duration_seconds_sum{endpoint=%q} %g\n", name, e.sum)
		fmt.Fprintf(w, "motifserve_request_duration_seconds_count{endpoint=%q} %d\n", name, e.count)
	}

	inFlight := m.inFlight
	m.mu.Unlock()

	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("motifserve_in_flight_requests", "Requests currently being served.", inFlight)
	gauge("motifserve_trajectories", "Trajectories resident in the registry.", live.trajectories)
	gauge("motifserve_trajectories_max", "Configured registry capacity (0 = unbounded).", live.maxTrajectories)
	gauge("motifserve_trajectory_ttl_seconds", "Configured registry idle TTL (0 = disabled).", strconv.FormatFloat(live.trajectoryTTL, 'f', 3, 64))
	gauge("motifserve_cache_artifacts", "Artifacts resident in the cache.", live.artifacts)
	gauge("motifserve_cache_bytes", "Bytes resident in the artifact cache.", live.cacheBytes)
	gauge("motifserve_cache_budget_bytes", "Configured artifact-cache byte budget.", live.cacheBudget)
	counter("motifserve_artifacts_built_total", "Artifact constructions performed.", live.built)
	counter("motifserve_artifacts_reused_total", "Artifact constructions skipped by cache reuse.", live.reused)
	counter("motifserve_artifact_evictions_total", "Artifacts dropped by the cache budget or registry purges.", live.artifactEvicted)

	fmt.Fprintf(w, "# HELP motifserve_trajectory_evictions_total Trajectories evicted from the registry, by cause.\n")
	fmt.Fprintf(w, "# TYPE motifserve_trajectory_evictions_total counter\n")
	fmt.Fprintf(w, "motifserve_trajectory_evictions_total{cause=\"manual\"} %d\n", live.evictedManual)
	fmt.Fprintf(w, "motifserve_trajectory_evictions_total{cause=\"lru\"} %d\n", live.evictedLRU)
	fmt.Fprintf(w, "motifserve_trajectory_evictions_total{cause=\"ttl\"} %d\n", live.evictedTTL)

	counter("motifserve_pair_dists_built_total", "Endpoint-distance memo tables built for /join.", live.pairDistsBuilt)
	counter("motifserve_pair_dists_reused_total", "Endpoint-distance memo tables served from cache.", live.pairDistsReused)
	counter("motifserve_index_consulted_total", "Spatial-index candidate checks across /knn and /join.", live.indexConsulted)
	counter("motifserve_index_pruned_total", "Candidates dismissed by the spatial index alone.", live.indexPruned)

	gauge("motifserve_disk_artifacts", "Artifacts resident in the disk tier (0 = tier disabled).", live.diskArtifacts)
	gauge("motifserve_disk_bytes", "Bytes resident in the disk artifact tier.", live.diskBytes)
	counter("motifserve_disk_writes_total", "Artifacts spilled to the disk tier.", live.diskWrites)
	counter("motifserve_disk_reads_total", "Artifacts promoted from the disk tier.", live.diskReads)
	counter("motifserve_disk_errors_total", "Disk-tier write failures plus torn artifacts healed on read.", live.diskErrors)
	gauge("motifserve_shards", "Store shards behind the server (1 = unsharded).", live.shards)
	renderPerShard(w, live.perShard)

	if live.admissionEnabled {
		gauge("motifserve_admission_worker_capacity", "Configured global search-worker capacity.", live.workerCapacity)
		gauge("motifserve_admission_workers_in_use", "Search-worker slots currently admitted.", live.admissionInUse)
		gauge("motifserve_admission_queued_requests", "Search requests waiting for admission.", live.admissionQueued)
	}
	counter("motifserve_admission_rejected_total", "Search requests rejected with 429 by admission control.", live.admissionReject)
	gauge("motifserve_uptime_seconds", "Seconds since the server started.", strconv.FormatFloat(live.uptimeSeconds, 'f', 3, 64))
}

// renderPerShard emits one shard-labelled series per store counter — the
// per-shard breakdown of the aggregate gauges above, for spotting a hot
// or failing shard. Every exported store.Stats field is represented, so
// a counter added to the store cannot silently vanish from the per-shard
// view (the statsmerge check enforces this).
func renderPerShard(w *strings.Builder, snaps []store.Stats) {
	if len(snaps) == 0 {
		return
	}
	series := []struct {
		name, help, typ string
		val             func(st store.Stats) string
	}{
		{"motifserve_shard_trajectories", "Trajectories registered on the shard.", "gauge",
			func(st store.Stats) string { return strconv.Itoa(st.Trajectories) }},
		{"motifserve_shard_trajectories_max", "Shard registry capacity (0 = unbounded).", "gauge",
			func(st store.Stats) string { return strconv.Itoa(st.MaxTrajectories) }},
		{"motifserve_shard_trajectory_ttl_seconds", "Shard registry idle TTL (0 = disabled).", "gauge",
			func(st store.Stats) string { return strconv.FormatFloat(st.TrajectoryTTL.Seconds(), 'f', 3, 64) }},
		{"motifserve_shard_cache_artifacts", "Artifacts resident in the shard's cache.", "gauge",
			func(st store.Stats) string { return strconv.Itoa(st.Artifacts) }},
		{"motifserve_shard_cache_bytes", "Bytes resident in the shard's cache.", "gauge",
			func(st store.Stats) string { return strconv.FormatInt(st.CacheBytes, 10) }},
		{"motifserve_shard_cache_budget_bytes", "Shard artifact-cache byte budget.", "gauge",
			func(st store.Stats) string { return strconv.FormatInt(st.CacheBudget, 10) }},
		{"motifserve_shard_artifacts_built_total", "Artifact constructions performed by the shard.", "counter",
			func(st store.Stats) string { return strconv.FormatInt(st.Built, 10) }},
		{"motifserve_shard_artifacts_reused_total", "Artifact constructions skipped by the shard's caches.", "counter",
			func(st store.Stats) string { return strconv.FormatInt(st.Reused, 10) }},
		{"motifserve_shard_artifact_evictions_total", "Artifacts dropped by the shard's budget or purges.", "counter",
			func(st store.Stats) string { return strconv.FormatInt(st.Evicted, 10) }},
		{"motifserve_shard_removed_total", "Trajectories manually removed from the shard.", "counter",
			func(st store.Stats) string { return strconv.FormatInt(st.Removed, 10) }},
		{"motifserve_shard_evicted_lru_total", "Trajectories LRU-evicted from the shard.", "counter",
			func(st store.Stats) string { return strconv.FormatInt(st.EvictedLRU, 10) }},
		{"motifserve_shard_evicted_ttl_total", "Trajectories TTL-expired from the shard.", "counter",
			func(st store.Stats) string { return strconv.FormatInt(st.EvictedTTL, 10) }},
		{"motifserve_shard_pair_dists_built_total", "Endpoint-distance memos built by the shard.", "counter",
			func(st store.Stats) string { return strconv.FormatInt(st.PairDistsBuilt, 10) }},
		{"motifserve_shard_pair_dists_reused_total", "Endpoint-distance memos served from the shard's caches.", "counter",
			func(st store.Stats) string { return strconv.FormatInt(st.PairDistsReused, 10) }},
		{"motifserve_shard_disk_artifacts", "Artifacts resident in the shard's disk tier.", "gauge",
			func(st store.Stats) string { return strconv.Itoa(st.DiskArtifacts) }},
		{"motifserve_shard_disk_bytes", "Bytes resident in the shard's disk tier.", "gauge",
			func(st store.Stats) string { return strconv.FormatInt(st.DiskBytes, 10) }},
		{"motifserve_shard_disk_writes_total", "Artifacts the shard spilled to disk.", "counter",
			func(st store.Stats) string { return strconv.FormatInt(st.DiskWrites, 10) }},
		{"motifserve_shard_disk_reads_total", "Artifacts the shard promoted from disk.", "counter",
			func(st store.Stats) string { return strconv.FormatInt(st.DiskReads, 10) }},
		{"motifserve_shard_disk_errors_total", "Shard disk-tier failures and healed torn artifacts.", "counter",
			func(st store.Stats) string { return strconv.FormatInt(st.DiskErrors, 10) }},
	}
	for _, s := range series {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", s.name, s.help, s.name, s.typ)
		for i, st := range snaps {
			fmt.Fprintf(w, "%s{shard=\"%d\"} %s\n", s.name, i, s.val(st))
		}
	}
}

// statusRecorder wraps a ResponseWriter to capture the status code and
// stamp a Server-Timing header with the time the handler spent before
// the response started (headers are immutable once written, so the
// compute duration — everything up to the first byte — is what a
// per-request timing header can carry).
type statusRecorder struct {
	http.ResponseWriter
	start time.Time
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.wrote = true
		r.code = code
		r.Header().Set("Server-Timing",
			fmt.Sprintf("app;dur=%.3f", float64(time.Since(r.start))/float64(time.Millisecond)))
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wrote {
		r.WriteHeader(http.StatusOK)
	}
	return r.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer to http.ResponseController, so
// handlers can reach Flush/SetWriteDeadline/Hijack through the recorder
// instead of finding a wrapper that silently supports none of them.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// Flush passes a streaming flush through (headers are stamped first, as
// a flush commits them exactly like a body write). Without this — and
// Unwrap above — wrapping the writer made every response unflushable:
// http.Flusher asserted against the recorder failed, and SSE or
// long-poll handlers would buffer until the handler returned.
func (r *statusRecorder) Flush() {
	if !r.wrote {
		r.WriteHeader(http.StatusOK)
	}
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// status returns the recorded status (200 when the handler wrote a body
// without an explicit WriteHeader; 200 also for empty-body successes).
func (r *statusRecorder) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}
