package serve

import (
	"trajmotif/internal/core"
	"trajmotif/internal/geo"
	"trajmotif/internal/spatial"
	"trajmotif/internal/store"
	"trajmotif/internal/traj"
)

// Backend is the state surface the HTTP layer serves from: the
// single-process *store.Store implements it directly, and the sharded
// coordinator (internal/shard) implements it over N stores — handlers
// cannot tell the difference, which is what makes the N-shard deployment
// byte-identical to the 1-shard one at the API.
type Backend interface {
	core.ArtifactSource

	// Registry surface.
	Add(t *traj.Trajectory) (store.ID, bool, error)
	Get(id store.ID) (*traj.Trajectory, bool)
	Remove(id store.ID) bool
	Len() int
	IDs() []store.ID

	// Search support surface.
	Dist() geo.DistanceFunc
	IndexFor(ids []store.ID, ts []*traj.Trajectory) *spatial.Index
	EndpointDists(ts []*traj.Trajectory) func(i, j int) (d0, dn float64, ok bool)
	PointDists(pts []geo.Point) func(i, j int) (float64, bool)

	// Observability surface.
	Stats() store.Stats
}

// ShardedBackend is the optional extension a sharded backend provides;
// /metrics surfaces per-shard gauges when the server's backend has it.
type ShardedBackend interface {
	Backend
	Shards() int
	PerShardStats() []store.Stats
}

var _ Backend = (*store.Store)(nil)
