package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"testing"

	"trajmotif/internal/cluster"
	"trajmotif/internal/geo"
)

// TestClusterEndpointMemoParity: /cluster routes its endpoint rejections
// through the store's point-distance memo. The response must be
// byte-identical to the unmemoized library call, repeat requests must be
// byte-identical to the first, and the reuse must be visible in /stats
// (PairDistsReused > 0) — the same bar /join's memo meets.
func TestClusterEndpointMemoParity(t *testing.T) {
	ts, srv := harness(t)
	tr := fixture(t, 9, 150)
	id := upload(t, ts, tr)

	post := func() []byte {
		body, err := json.Marshal(clusterRequest{ID: id, Window: 24, Eps: 800})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/cluster", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d err %v: %s", resp.StatusCode, err, raw)
		}
		return raw
	}

	first := post()
	second := post()
	if !bytes.Equal(first, second) {
		t.Fatalf("repeat /cluster diverged:\n%s\n%s", first, second)
	}

	// The memoized handler result must match the unmemoized library
	// call exactly — spans and membership alike.
	plain, err := cluster.Subtrajectories(tr, 24, 800, &cluster.Options{Dist: geo.Haversine})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]clusterResponse, len(plain))
	for k, c := range plain {
		want[k] = clusterResponse{Representative: spanJSON{c.Representative.Start, c.Representative.End}}
		for _, m := range c.Members {
			want[k].Members = append(want[k].Members, spanJSON{m.Start, m.End})
		}
	}
	var got []clusterResponse
	if err := json.Unmarshal(first, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("memoized /cluster differs from direct clustering:\n got %+v\nwant %+v", got, want)
	}

	st := srv.Backend().Stats()
	if st.PairDistsBuilt == 0 {
		t.Fatalf("memo never populated: %+v", st)
	}
	if st.PairDistsReused == 0 {
		t.Fatalf("repeat /cluster never hit the memo: %+v", st)
	}
}
