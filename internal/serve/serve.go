// Package serve implements the long-running motif server: a JSON-over-
// HTTP front end for every operation in the library, routed through one
// trajectory store (internal/store) so repeated and overlapping queries
// skip ground-distance grid construction entirely — the serve-mode
// prerequisite of the ROADMAP's "millions of users" north star.
//
// Endpoints:
//
//	POST /trajectories    register a trajectory; returns its content ID
//	POST /trajectories/bulk  stream-register an NDJSON corpus upload
//	DELETE /trajectories/{id}  remove a trajectory and its cached artifacts
//	POST /discover        motif in one trajectory, or between two (id2)
//	POST /discover/pairs  motifs between every pair of the given ids
//	POST /topk            k best mutually disjoint motifs
//	POST /knn             k nearest stored trajectories to a query
//	POST /join            all pairs within DFD eps
//	POST /cluster         subtrajectory clustering of one trajectory
//	GET  /healthz         liveness + uptime
//	GET  /stats           store and cache statistics, cumulative reuse
//	GET  /metrics         Prometheus text exposition of the same counters
//
// Every search runs with core.Options.Artifacts pointed at the store, so
// a repeated /discover computes zero new grids (visible per-response in
// stats.gridRebuildsAvoided and cumulatively in GET /stats). Cached
// answers are byte-identical to uncached library calls for every worker
// count; see internal/store for the argument.
//
// Resource bounds, the production-traffic story:
//
//   - Request bodies are capped (Options.MaxBodyBytes, default 64 MiB;
//     oversize bodies are 413s; bulk uploads decode record by record, so
//     they stream under the cap without buffering).
//   - The artifact cache is byte-budgeted, and the trajectory registry
//     itself is bounded by the store's MaxTrajectories/TrajectoryTTL
//     auto-eviction (touch on query; DELETE /trajectories/{id} remains
//     the manual primitive).
//   - Admission control bounds total in-flight search workers
//     (Options.MaxConcurrentSearches): a request beyond capacity queues
//     briefly and is otherwise rejected with 429 + Retry-After, so no
//     traffic level can oversubscribe the box. Admitted requests compute
//     exactly what they would alone — byte-identical determinism per
//     request is untouched; only aggregate load is shaped.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"trajmotif/internal/batch"
	"trajmotif/internal/cluster"
	"trajmotif/internal/core"
	"trajmotif/internal/geo"
	"trajmotif/internal/group"
	"trajmotif/internal/join"
	"trajmotif/internal/knn"
	"trajmotif/internal/store"
	"trajmotif/internal/traj"
	"trajmotif/internal/trajio"
)

// defaultTau is the GTM initial group size when a request omits it (the
// paper's τ = 32 default).
const defaultTau = 32

// DefaultMaxBodyBytes caps request bodies when Options.MaxBodyBytes is
// zero: 64 MiB, room for a multi-million-point trajectory upload.
const DefaultMaxBodyBytes = 64 << 20

// DefaultQueueWait bounds how long an admission-queued search request
// waits for worker slots before being rejected with 429.
const DefaultQueueWait = 5 * time.Second

// Options configures a server.
type Options struct {
	// Workers is the within-search worker count applied to requests that
	// do not specify their own; 0 selects GOMAXPROCS. Results are
	// byte-identical for every count.
	Workers int
	// MaxBodyBytes caps every request body (oversize bodies are
	// rejected with 413). Zero selects DefaultMaxBodyBytes; negative
	// disables the cap.
	MaxBodyBytes int64
	// MaxConcurrentSearches bounds the total search workers in flight
	// across all requests (a request running W workers holds W slots
	// for its duration), so every request can no longer spawn its own
	// GOMAXPROCS workers under load. Zero selects GOMAXPROCS; negative
	// disables admission control. Admission never changes what an
	// admitted request computes — responses stay byte-identical — it
	// only caps aggregate load.
	MaxConcurrentSearches int
	// MaxQueuedSearches bounds how many search requests may wait for
	// admission at once; beyond it requests are rejected immediately
	// with 429 + Retry-After. Zero selects 4 × MaxConcurrentSearches
	// with a floor of 16, so single-core hosts still absorb modest
	// bursts; negative disables queueing (reject as soon as slots are
	// short).
	MaxQueuedSearches int
	// QueueWait bounds how long one queued request waits before 429.
	// Zero selects DefaultQueueWait; negative means never wait — a
	// request that cannot be admitted immediately is rejected on the
	// spot, regardless of queue capacity.
	QueueWait time.Duration
}

// Server is the HTTP handler. Create with New; it is safe for concurrent
// requests (the store serializes cache access internally).
type Server struct {
	st       Backend
	workers  int
	maxBody  int64
	sem      *admission // nil: admission control disabled
	capacity int64
	mux      *http.ServeMux
	met      *metrics
	started  time.Time
	requests atomic.Int64
	rejected atomic.Int64
	// Cumulative spatial-index effort across /knn and /join requests,
	// surfaced in GET /stats next to the cache-reuse counters.
	indexConsulted atomic.Int64
	indexPruned    atomic.Int64
	// Cumulative projected-kernel fallbacks across /join requests:
	// decision cells the projection's certified error band could not
	// decide and the haversine answered instead.
	projectionFallbacks atomic.Int64
}

// New builds a server around a backend — a *store.Store, or the sharded
// coordinator. opt may be nil for defaults.
func New(st Backend, opt *Options) *Server {
	s := &Server{st: st, maxBody: DefaultMaxBodyBytes, met: newMetrics(), started: time.Now()}
	maxConc := 0
	maxQueue := 0
	queueWait := DefaultQueueWait
	if opt != nil {
		s.workers = opt.Workers
		if opt.MaxBodyBytes > 0 {
			s.maxBody = opt.MaxBodyBytes
		} else if opt.MaxBodyBytes < 0 {
			s.maxBody = 0
		}
		maxConc = opt.MaxConcurrentSearches
		maxQueue = opt.MaxQueuedSearches
		// Negative means "never wait" — it must not collapse into the
		// default the way zero does, or -queue-wait=-1 silently becomes
		// a 5-second stall before the 429.
		if opt.QueueWait != 0 {
			queueWait = opt.QueueWait
		}
	}
	if maxConc >= 0 {
		if maxConc == 0 {
			maxConc = runtime.GOMAXPROCS(0)
		}
		switch {
		case maxQueue == 0:
			maxQueue = max(4*maxConc, 16)
		case maxQueue < 0:
			maxQueue = 0
		}
		s.capacity = int64(maxConc)
		s.sem = newAdmission(int64(maxConc), maxQueue, queueWait)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /trajectories", s.handleTrajectories)
	s.mux.HandleFunc("POST /trajectories/bulk", s.handleTrajectoriesBulk)
	s.mux.HandleFunc("DELETE /trajectories/{id}", s.handleTrajectoryDelete)
	s.mux.HandleFunc("POST /discover", s.handleDiscover)
	s.mux.HandleFunc("POST /discover/pairs", s.handleDiscoverPairs)
	s.mux.HandleFunc("POST /topk", s.handleTopK)
	s.mux.HandleFunc("POST /knn", s.handleKNN)
	s.mux.HandleFunc("POST /join", s.handleJoin)
	s.mux.HandleFunc("POST /cluster", s.handleCluster)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler: body cap, then per-request
// accounting (in-flight gauge, per-endpoint counters and latency
// histogram, Server-Timing response header) around the mux dispatch.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.maxBody > 0 && r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	start := time.Now()
	s.met.requestStarted()
	rec := &statusRecorder{ResponseWriter: w, start: start}
	s.mux.ServeHTTP(rec, r)
	s.met.requestDone(endpointLabel(r), rec.status(), time.Since(start))
}

// endpointLabel maps a routed request to its metrics label: the mux
// pattern's path (bounded cardinality — "/trajectories/{id}", never the
// raw URL), or "unmatched" for 404/405 traffic.
func endpointLabel(r *http.Request) string {
	pat := r.Pattern
	if pat == "" {
		return "unmatched"
	}
	if _, path, ok := strings.Cut(pat, " "); ok {
		return path
	}
	return pat
}

// admit applies admission control for a search about to run with the
// request's within-search worker setting, writing the 429 (with
// Retry-After) when the server is at capacity. On success the returned
// release must be called when the search finishes.
func (s *Server) admit(w http.ResponseWriter, workers int) (release func(), ok bool) {
	return s.admitWeight(w, s.searchWeight(workers))
}

// admitWeight is admit with the worker count already resolved (the
// /discover/pairs pool sizes itself from the request alone, bypassing
// the server's within-search default).
func (s *Server) admitWeight(w http.ResponseWriter, weight int) (release func(), ok bool) {
	if s.sem == nil {
		return func() {}, true
	}
	charged, ok := s.sem.acquire(int64(weight))
	if !ok {
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"server at capacity: %d search workers in flight; retry shortly", s.capacity)
		return nil, false
	}
	return func() { s.sem.release(charged) }, true
}

// searchWeight is the worker count a request will actually run with —
// the admission weight (resolveWorkers leaves 0 for "GOMAXPROCS at
// search time", which is exactly GOMAXPROCS slots).
func (s *Server) searchWeight(workers int) int {
	if w := s.resolveWorkers(workers); w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// Store returns the trajectory store the server fronts, or nil when the
// backend is not a plain single store (use Backend for the general
// surface).
func (s *Server) Store() *store.Store {
	st, _ := s.st.(*store.Store)
	return st
}

// Backend returns the state backend the server fronts.
func (s *Server) Backend() Backend { return s.st }

func (s *Server) resolveWorkers(req int) int {
	if req > 0 {
		return req
	}
	return s.workers
}

// searchOptions builds the per-request search options: the store is the
// artifact source and its ground distance is pinned so cache keys match.
func (s *Server) searchOptions(workers int, epsilon float64) *core.Options {
	return &core.Options{
		Dist:      s.st.Dist(),
		Epsilon:   epsilon,
		Workers:   s.resolveWorkers(workers),
		Artifacts: s.st,
	}
}

// --- JSON shapes ---

type errorResponse struct {
	Error string `json:"error"`
}

type trajectoryRequest struct {
	// Points are [lat, lng] pairs in degrees.
	Points [][2]float64 `json:"points"`
	// Times are optional unix seconds (fractional allowed), one per point.
	Times []float64 `json:"times,omitempty"`
	// CSV is an alternative to Points: a whole file in the trajio CSV
	// format ("lat,lng[,unix]" with optional header).
	CSV string `json:"csv,omitempty"`
}

type trajectoryResponse struct {
	ID      store.ID `json:"id"`
	N       int      `json:"n"`
	Timed   bool     `json:"timed"`
	Created bool     `json:"created"`
}

type spanJSON struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

type statsJSON struct {
	N                   int     `json:"n"`
	M                   int     `json:"m"`
	Xi                  int     `json:"xi"`
	Subsets             int64   `json:"subsets"`
	SubsetsProcessed    int64   `json:"subsetsProcessed"`
	SubsetsAbandoned    int64   `json:"subsetsAbandoned"`
	DPCells             int64   `json:"dpCells"`
	GridRebuildsAvoided int64   `json:"gridRebuildsAvoided"`
	PrunedByCell        int64   `json:"prunedByCell"`
	PrunedByCross       int64   `json:"prunedByCross"`
	PrunedByBand        int64   `json:"prunedByBand"`
	PeakBytes           int64   `json:"peakBytes"`
	PrecomputeMS        float64 `json:"precomputeMs"`
	SearchMS            float64 `json:"searchMs"`
}

func statsOf(st core.Stats) statsJSON {
	return statsJSON{
		N: st.N, M: st.M, Xi: st.Xi,
		Subsets:             st.Subsets,
		SubsetsProcessed:    st.SubsetsProcessed,
		SubsetsAbandoned:    st.SubsetsAbandoned,
		DPCells:             st.DPCells,
		GridRebuildsAvoided: st.GridRebuildsAvoided,
		PrunedByCell:        st.PrunedByCell,
		PrunedByCross:       st.PrunedByCross,
		PrunedByBand:        st.PrunedByBand,
		PeakBytes:           st.PeakBytes,
		PrecomputeMS:        float64(st.Precompute) / float64(time.Millisecond),
		SearchMS:            float64(st.Search) / float64(time.Millisecond),
	}
}

type motifResponse struct {
	A        spanJSON  `json:"a"`
	B        spanJSON  `json:"b"`
	Distance float64   `json:"distance"`
	Stats    statsJSON `json:"stats"`
}

func motifOf(r *core.Result) motifResponse {
	return motifResponse{
		A:        spanJSON{r.A.Start, r.A.End},
		B:        spanJSON{r.B.Start, r.B.End},
		Distance: r.Distance,
		Stats:    statsOf(r.Stats),
	}
}

// --- helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		if isBodyTooLarge(err) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d byte limit", bodyLimit(err))
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	// A well-formed body is exactly one JSON value: trailing data (a
	// second concatenated object, stray tokens) is a malformed request,
	// not something to silently ignore.
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		if isBodyTooLarge(err) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d byte limit", bodyLimit(err))
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: trailing data after JSON value")
		return false
	}
	return true
}

// isBodyTooLarge reports whether err (possibly wrapped) is the body-cap
// trip from http.MaxBytesReader — a 413, not a generic 400.
func isBodyTooLarge(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

// bodyLimit extracts the cap that tripped, for the 413 message.
func bodyLimit(err error) int64 {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return mbe.Limit
	}
	return 0
}

// resolveDataset resolves the dataset of a /knn or /join request. With
// explicit reqIDs, every id must resolve (404 on a miss — the client
// named it). With reqIDs == nil the dataset defaults to everything
// stored except exclude; that snapshot races with concurrent DELETEs, so
// an id that vanished between IDs() and Get is skipped rather than
// failing a request that never named it.
func (s *Server) resolveDataset(w http.ResponseWriter, reqIDs []store.ID, exclude store.ID) ([]store.ID, []*traj.Trajectory, bool) {
	if reqIDs != nil {
		ts := make([]*traj.Trajectory, len(reqIDs))
		for k, id := range reqIDs {
			t, ok := s.lookup(w, id)
			if !ok {
				return nil, nil, false
			}
			ts[k] = t
		}
		return reqIDs, ts, true
	}
	var ids []store.ID
	var ts []*traj.Trajectory
	for _, id := range s.st.IDs() {
		if exclude != "" && id == exclude {
			continue
		}
		if t, ok := s.st.Get(id); ok {
			ids = append(ids, id)
			ts = append(ts, t)
		}
	}
	return ids, ts, true
}

// lookup resolves a trajectory id, writing a 404 on a miss.
func (s *Server) lookup(w http.ResponseWriter, id store.ID) (*traj.Trajectory, bool) {
	t, ok := s.st.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown trajectory %q", id)
	}
	return t, ok
}

// searchStatus maps library errors to HTTP statuses: infeasible inputs
// are the client's fault, everything else is a 500.
func searchStatus(err error) int {
	if errors.Is(err, core.ErrTooShort) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusInternalServerError
}

// --- handlers ---

func (s *Server) handleTrajectories(w http.ResponseWriter, r *http.Request) {
	var req trajectoryRequest
	if !decode(w, r, &req) {
		return
	}
	var t *traj.Trajectory
	var err error
	switch {
	case req.CSV != "" && len(req.Points) > 0:
		writeError(w, http.StatusBadRequest, "give points or csv, not both")
		return
	case req.CSV != "":
		t, err = trajio.ReadCSV(strings.NewReader(req.CSV))
	default:
		t, err = trajFromRequest(req)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id, created, err := s.st.Add(t)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, trajectoryResponse{
		ID: id, N: t.Len(), Timed: t.Times != nil, Created: created,
	})
}

// bulkRecord is the outcome of one NDJSON record of a bulk upload.
type bulkRecord struct {
	Index   int      `json:"index"`
	ID      store.ID `json:"id,omitempty"`
	N       int      `json:"n,omitempty"`
	Timed   bool     `json:"timed,omitempty"`
	Created bool     `json:"created,omitempty"`
	Error   string   `json:"error,omitempty"`
}

// maxBulkEcho caps the per-record outcomes echoed in a bulk response, so
// a multi-million-record upload cannot turn the streaming decode's memory
// savings into an unbounded response buffer. Counts stay exact;
// RecordsOmitted reports how many outcomes were dropped from the echo.
const maxBulkEcho = 4096

type bulkResponse struct {
	Records []bulkRecord `json:"records"`
	Stored  int          `json:"stored"`
	Failed  int          `json:"failed"`
	// RecordsOmitted counts per-record outcomes beyond the maxBulkEcho
	// echo cap (Stored/Failed still cover them).
	RecordsOmitted int `json:"recordsOmitted,omitempty"`
	// Error is set when the stream ended early (malformed JSON or the
	// body cap); records registered before the cut stand.
	Error string `json:"error,omitempty"`
}

// record appends one outcome under the echo cap.
func (r *bulkResponse) record(rec bulkRecord) {
	if len(r.Records) >= maxBulkEcho {
		r.RecordsOmitted++
		return
	}
	r.Records = append(r.Records, rec)
}

// handleTrajectoriesBulk registers a whole NDJSON stream of trajectories
// ({"points": [[lat,lng], ...], "times": [unix, ...]} per line), decoded
// record by record — the upload body is never buffered, so corpus-sized
// bulk loads decode in O(largest record) under the body cap (the
// registered trajectories themselves live in the store, and the response
// echoes at most maxBulkEcho per-record outcomes). A semantically
// invalid record is reported and skipped; malformed JSON ends the stream
// (earlier registrations stand — bulk upload is not transactional).
func (s *Server) handleTrajectoriesBulk(w http.ResponseWriter, r *http.Request) {
	sc := trajio.NewNDJSONScanner(r.Body)
	var resp bulkResponse
	// idx mirrors the scanner's internal record counter (RecordError
	// carries the authoritative index; successes advance in lockstep) —
	// if the scanner's counting rules ever change, change this too.
	idx := 0
	for {
		t, err := sc.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		var re *trajio.RecordError
		if errors.As(err, &re) {
			resp.record(bulkRecord{Index: re.Index, Error: re.Err.Error()})
			resp.Failed++
			idx = re.Index + 1
			continue
		}
		if err != nil {
			if resp.Stored == 0 && resp.Failed == 0 {
				// An oversize upload that never yielded a record is a 413
				// (the client must shrink or split it), not a generic 400.
				if isBodyTooLarge(err) {
					writeError(w, http.StatusRequestEntityTooLarge,
						"request body exceeds the %d byte limit", bodyLimit(err))
					return
				}
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
			resp.Error = err.Error()
			break
		}
		id, created, err := s.st.Add(t)
		if err != nil {
			resp.record(bulkRecord{Index: idx, Error: err.Error()})
			resp.Failed++
		} else {
			resp.record(bulkRecord{
				Index: idx, ID: id, N: t.Len(), Timed: t.Times != nil, Created: created,
			})
			resp.Stored++
		}
		idx++
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTrajectoryDelete removes a trajectory from the registry and
// purges its cached artifacts — the registry-eviction primitive. The
// /knn and /join dataset defaults ("everything stored") stop including
// it immediately.
func (s *Server) handleTrajectoryDelete(w http.ResponseWriter, r *http.Request) {
	id := store.ID(r.PathValue("id"))
	if !s.st.Remove(id) {
		writeError(w, http.StatusNotFound, "unknown trajectory %q", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "removed": true})
}

type discoverRequest struct {
	ID      store.ID `json:"id"`
	ID2     store.ID `json:"id2,omitempty"`
	Xi      int      `json:"xi"`
	Tau     int      `json:"tau,omitempty"`
	Algo    string   `json:"algo,omitempty"`
	Epsilon float64  `json:"epsilon,omitempty"`
	Workers int      `json:"workers,omitempty"`
}

func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	var req discoverRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Xi < 0 {
		writeError(w, http.StatusBadRequest, "negative minimum motif length %d", req.Xi)
		return
	}
	t, ok := s.lookup(w, req.ID)
	if !ok {
		return
	}
	var u *traj.Trajectory
	if req.ID2 != "" {
		if u, ok = s.lookup(w, req.ID2); !ok {
			return
		}
	}
	tau := req.Tau
	if tau <= 0 {
		tau = defaultTau
	}
	release, ok := s.admit(w, req.Workers)
	if !ok {
		return
	}
	defer release()
	opt := s.searchOptions(req.Workers, req.Epsilon)

	var res *core.Result
	var err error
	switch req.Algo {
	case "", "gtm", "gtmstar":
		var gr *group.Result
		star := req.Algo == "gtmstar"
		switch {
		case star && u == nil:
			gr, err = group.GTMStar(t, req.Xi, tau, opt)
		case star:
			gr, err = group.GTMStarCross(t, u, req.Xi, tau, opt)
		case u == nil:
			gr, err = group.GTM(t, req.Xi, tau, opt)
		default:
			gr, err = group.GTMCross(t, u, req.Xi, tau, opt)
		}
		if gr != nil {
			res = &gr.Result
		}
	case "btm":
		if u == nil {
			res, err = core.BTM(t, req.Xi, opt)
		} else {
			res, err = core.BTMCross(t, u, req.Xi, opt)
		}
	case "brutedp":
		if u == nil {
			res, err = core.BruteDP(t, req.Xi, opt)
		} else {
			res, err = core.BruteDPCross(t, u, req.Xi, opt)
		}
	default:
		writeError(w, http.StatusBadRequest, "unknown algorithm %q", req.Algo)
		return
	}
	if err != nil {
		writeError(w, searchStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, motifOf(res))
}

type discoverPairsRequest struct {
	IDs     []store.ID `json:"ids"`
	Xi      int        `json:"xi"`
	Tau     int        `json:"tau,omitempty"`
	Workers int        `json:"workers,omitempty"`
}

type pairResponse struct {
	I     int            `json:"i"`
	J     int            `json:"j"`
	IDA   store.ID       `json:"idA"`
	IDB   store.ID       `json:"idB"`
	Error string         `json:"error,omitempty"`
	Motif *motifResponse `json:"motif,omitempty"`
}

func (s *Server) handleDiscoverPairs(w http.ResponseWriter, r *http.Request) {
	var req discoverPairsRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.IDs) < 2 {
		writeError(w, http.StatusBadRequest, "need at least two ids, got %d", len(req.IDs))
		return
	}
	if req.Xi < 0 {
		writeError(w, http.StatusBadRequest, "negative minimum motif length %d", req.Xi)
		return
	}
	ts := make([]*traj.Trajectory, len(req.IDs))
	for k, id := range req.IDs {
		t, ok := s.lookup(w, id)
		if !ok {
			return
		}
		ts[k] = t
	}
	// The pair pool is the parallel dimension here (within-search stays
	// 1), so its width — req.Workers, 0 defaulting to GOMAXPROCS in the
	// batch pool — is the admission weight.
	poolWidth := req.Workers
	if poolWidth <= 0 {
		poolWidth = runtime.GOMAXPROCS(0)
	}
	release, ok := s.admitWeight(w, poolWidth)
	if !ok {
		return
	}
	defer release()
	items, err := batch.DiscoverAllPairs(ts, req.Xi, &batch.Options{
		Search:  s.searchOptions(1, 0), // within-search stays 1: the pair pool parallelizes
		Tau:     req.Tau,
		Workers: req.Workers,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := make([]pairResponse, len(items))
	for k, it := range items {
		out[k] = pairResponse{I: it.I, J: it.J, IDA: req.IDs[it.I], IDB: req.IDs[it.J]}
		if it.Err != nil {
			out[k].Error = it.Err.Error()
		} else {
			m := motifOf(&it.Result.Result)
			out[k].Motif = &m
		}
	}
	writeJSON(w, http.StatusOK, out)
}

type topkRequest struct {
	ID      store.ID `json:"id"`
	ID2     store.ID `json:"id2,omitempty"`
	Xi      int      `json:"xi"`
	K       int      `json:"k"`
	Workers int      `json:"workers,omitempty"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req topkRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Xi < 0 || req.K < 1 {
		writeError(w, http.StatusBadRequest, "need xi >= 0 and k >= 1, got xi=%d k=%d", req.Xi, req.K)
		return
	}
	t, ok := s.lookup(w, req.ID)
	if !ok {
		return
	}
	release, ok := s.admit(w, req.Workers)
	if !ok {
		return
	}
	defer release()
	opt := s.searchOptions(req.Workers, 0)
	var results []core.Result
	var err error
	if req.ID2 == "" {
		results, err = core.TopK(t, req.Xi, req.K, opt)
	} else {
		var u *traj.Trajectory
		if u, ok = s.lookup(w, req.ID2); !ok {
			return
		}
		results, err = core.TopKCross(t, u, req.Xi, req.K, opt)
	}
	if err != nil {
		writeError(w, searchStatus(err), "%v", err)
		return
	}
	out := make([]motifResponse, len(results))
	for k := range results {
		out[k] = motifOf(&results[k])
	}
	writeJSON(w, http.StatusOK, out)
}

type knnRequest struct {
	Query store.ID   `json:"query"`
	IDs   []store.ID `json:"ids,omitempty"` // default: all stored except the query
	K     int        `json:"k"`
}

type neighborResponse struct {
	ID       store.ID `json:"id"`
	Index    int      `json:"index"`
	Distance float64  `json:"distance"`
}

type knnResponse struct {
	Neighbors []neighborResponse `json:"neighbors"`
	Stats     knn.Stats          `json:"stats"`
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req knnRequest
	if !decode(w, r, &req) {
		return
	}
	q, ok := s.lookup(w, req.Query)
	if !ok {
		return
	}
	ids, ds, ok := s.resolveDataset(w, req.IDs, req.Query)
	if !ok {
		return
	}
	// k-NN runs single-threaded: one admission slot.
	release, ok := s.admit(w, 1)
	if !ok {
		return
	}
	defer release()
	// The per-request index reuses the registry's cached MBRs (one lock
	// acquisition); results and effort stats are byte-identical to the
	// index-free search — only IndexPruned work is saved.
	nbrs, st, err := knn.Nearest(q, ds, req.K, &knn.Options{
		Dist:  s.st.Dist(),
		Index: s.st.IndexFor(ids, ds),
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.indexConsulted.Add(st.IndexConsulted)
	s.indexPruned.Add(st.IndexPruned)
	out := knnResponse{Neighbors: make([]neighborResponse, len(nbrs)), Stats: st}
	for k, nb := range nbrs {
		out.Neighbors[k] = neighborResponse{ID: ids[nb.Index], Index: nb.Index, Distance: nb.Distance}
	}
	writeJSON(w, http.StatusOK, out)
}

type joinRequest struct {
	IDs   []store.ID `json:"ids,omitempty"` // default: all stored
	Eps   float64    `json:"eps"`
	Exact bool       `json:"exact,omitempty"`
}

type joinPairResponse struct {
	IDA      store.ID `json:"idA"`
	IDB      store.ID `json:"idB"`
	I        int      `json:"i"`
	J        int      `json:"j"`
	Distance float64  `json:"distance"`
}

type joinResponse struct {
	Pairs []joinPairResponse `json:"pairs"`
	Stats join.Stats         `json:"stats"`
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if !decode(w, r, &req) {
		return
	}
	ids, ts, ok := s.resolveDataset(w, req.IDs, "")
	if !ok {
		return
	}
	// Join runs single-threaded: one admission slot.
	release, ok := s.admit(w, 1)
	if !ok {
		return
	}
	defer release()
	// Projected is a no-op for non-haversine metrics, and the endpoint
	// memo serves the cascade the exact float64s it would compute — both
	// leave results and the shared counters byte-identical, so they are
	// always on.
	pairs, st, err := join.Join(ts, req.Eps, &join.Options{
		Dist:          s.st.Dist(),
		Exact:         req.Exact,
		Index:         s.st.IndexFor(ids, ts),
		Projected:     true,
		EndpointDists: s.st.EndpointDists(ts),
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.indexConsulted.Add(st.IndexConsulted)
	s.indexPruned.Add(st.IndexPruned)
	s.projectionFallbacks.Add(st.ProjectionFallbacks)
	out := joinResponse{Pairs: make([]joinPairResponse, len(pairs)), Stats: st}
	for k, p := range pairs {
		out.Pairs[k] = joinPairResponse{IDA: ids[p.I], IDB: ids[p.J], I: p.I, J: p.J, Distance: p.Distance}
	}
	writeJSON(w, http.StatusOK, out)
}

type clusterRequest struct {
	ID      store.ID `json:"id"`
	Window  int      `json:"window"`
	Eps     float64  `json:"eps"`
	Stride  int      `json:"stride,omitempty"`
	MinSize int      `json:"minSize,omitempty"`
}

type clusterResponse struct {
	Representative spanJSON   `json:"representative"`
	Members        []spanJSON `json:"members"`
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	var req clusterRequest
	if !decode(w, r, &req) {
		return
	}
	t, ok := s.lookup(w, req.ID)
	if !ok {
		return
	}
	// Clustering runs single-threaded: one admission slot.
	release, ok := s.admit(w, 1)
	if !ok {
		return
	}
	defer release()
	clusters, err := cluster.Subtrajectories(t, req.Window, req.Eps, &cluster.Options{
		Dist: s.st.Dist(), Stride: req.Stride, MinSize: req.MinSize,
		// Route the per-window endpoint rejections through the store's
		// point-distance memo — byte-identical values (HaversinePrepared
		// is bit-identical to Haversine), so repeat /cluster calls skip
		// the ground-distance evaluations without changing one byte.
		EndpointDists: s.st.PointDists(t.Points),
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := make([]clusterResponse, len(clusters))
	for k, c := range clusters {
		out[k] = clusterResponse{Representative: spanJSON{c.Representative.Start, c.Representative.End}}
		for _, m := range c.Members {
			out[k].Members = append(out[k].Members, spanJSON{m.Start, m.End})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":           true,
		"uptime":       time.Since(s.started).Round(time.Millisecond).String(),
		"trajectories": s.st.Len(),
	})
}

// serverStats is the GET /stats payload: the store snapshot plus request
// accounting. gridRebuildsAvoided is the cumulative cross-request reuse.
type serverStats struct {
	Trajectories        int    `json:"trajectories"`
	MaxTrajectories     int    `json:"maxTrajectories"`
	TrajectoryTTL       string `json:"trajectoryTTL"`
	Artifacts           int    `json:"artifacts"`
	CacheBytes          int64  `json:"cacheBytes"`
	CacheBudget         int64  `json:"cacheBudget"`
	Built               int64  `json:"built"`
	Reused              int64  `json:"reused"`
	Evicted             int64  `json:"evicted"`
	GridRebuildsAvoided int64  `json:"gridRebuildsAvoided"`
	Removed             int64  `json:"removed"`
	EvictedLRU          int64  `json:"evictedLRU"`
	EvictedTTL          int64  `json:"evictedTTL"`
	IndexConsulted      int64  `json:"indexConsulted"`
	IndexPruned         int64  `json:"indexPruned"`
	PairDistsBuilt      int64  `json:"pairDistsBuilt"`
	PairDistsReused     int64  `json:"pairDistsReused"`
	ProjectionFallbacks int64  `json:"projectionFallbacks"`
	DiskArtifacts       int    `json:"diskArtifacts"`
	DiskBytes           int64  `json:"diskBytes"`
	DiskWrites          int64  `json:"diskWrites"`
	DiskReads           int64  `json:"diskReads"`
	DiskErrors          int64  `json:"diskErrors"`
	Shards              int    `json:"shards"`
	Requests            int64  `json:"requests"`
	Rejected            int64  `json:"rejected"`
	Uptime              string `json:"uptime"`
}

// shardCount reports the backend's shard count: N for the coordinator,
// 1 for a plain store.
func (s *Server) shardCount() int {
	if sb, ok := s.st.(ShardedBackend); ok {
		return sb.Shards()
	}
	return 1
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.st.Stats()
	writeJSON(w, http.StatusOK, serverStats{
		Trajectories:        st.Trajectories,
		MaxTrajectories:     st.MaxTrajectories,
		TrajectoryTTL:       st.TrajectoryTTL.String(),
		Artifacts:           st.Artifacts,
		CacheBytes:          st.CacheBytes,
		CacheBudget:         st.CacheBudget,
		Built:               st.Built,
		Reused:              st.Reused,
		Evicted:             st.Evicted,
		GridRebuildsAvoided: st.GridRebuildsAvoided(),
		Removed:             st.Removed,
		EvictedLRU:          st.EvictedLRU,
		EvictedTTL:          st.EvictedTTL,
		IndexConsulted:      s.indexConsulted.Load(),
		IndexPruned:         s.indexPruned.Load(),
		PairDistsBuilt:      st.PairDistsBuilt,
		PairDistsReused:     st.PairDistsReused,
		ProjectionFallbacks: s.projectionFallbacks.Load(),
		DiskArtifacts:       st.DiskArtifacts,
		DiskBytes:           st.DiskBytes,
		DiskWrites:          st.DiskWrites,
		DiskReads:           st.DiskReads,
		DiskErrors:          st.DiskErrors,
		Shards:              s.shardCount(),
		Requests:            s.requests.Load(),
		Rejected:            s.rejected.Load(),
		Uptime:              time.Since(s.started).Round(time.Millisecond).String(),
	})
}

// handleMetrics serves the Prometheus text exposition: per-endpoint
// request counters and latency histograms, the in-flight gauge, and the
// store/cache/index/eviction/admission counters — the same numbers
// /stats reports as JSON, in the format a scraper ingests.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.st.Stats()
	live := liveCounters{
		trajectories:    st.Trajectories,
		maxTrajectories: st.MaxTrajectories,
		trajectoryTTL:   st.TrajectoryTTL.Seconds(),
		artifacts:       st.Artifacts,
		cacheBytes:      st.CacheBytes,
		cacheBudget:     st.CacheBudget,
		built:           st.Built,
		reused:          st.Reused,
		artifactEvicted: st.Evicted,
		evictedManual:   st.Removed,
		evictedLRU:      st.EvictedLRU,
		evictedTTL:      st.EvictedTTL,
		pairDistsBuilt:  st.PairDistsBuilt,
		pairDistsReused: st.PairDistsReused,
		diskArtifacts:   st.DiskArtifacts,
		diskBytes:       st.DiskBytes,
		diskWrites:      st.DiskWrites,
		diskReads:       st.DiskReads,
		diskErrors:      st.DiskErrors,
		shards:          s.shardCount(),
		indexConsulted:  s.indexConsulted.Load(),
		indexPruned:     s.indexPruned.Load(),
		admissionReject: s.rejected.Load(),
		uptimeSeconds:   time.Since(s.started).Seconds(),
	}
	if s.sem != nil {
		live.admissionEnabled = true
		live.workerCapacity = s.capacity
		live.admissionInUse, live.admissionQueued = s.sem.snapshot()
	}
	if sb, ok := s.st.(ShardedBackend); ok {
		live.perShard = sb.PerShardStats()
	}
	var b strings.Builder
	s.met.render(&b, live)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, b.String())
}

// trajFromRequest builds a trajectory from the points/times arrays.
func trajFromRequest(req trajectoryRequest) (*traj.Trajectory, error) {
	if len(req.Points) == 0 {
		return nil, errors.New("serve: empty points")
	}
	points := make([]geo.Point, len(req.Points))
	for k, p := range req.Points {
		points[k] = geo.Point{Lat: p[0], Lng: p[1]}
	}
	var times []time.Time
	if req.Times != nil {
		if len(req.Times) != len(points) {
			return nil, fmt.Errorf("serve: %d times for %d points", len(req.Times), len(points))
		}
		times = make([]time.Time, len(req.Times))
		for k, unix := range req.Times {
			sec := int64(unix)
			times[k] = time.Unix(sec, int64((unix-float64(sec))*1e9)).UTC()
		}
	}
	return traj.New(points, times)
}
