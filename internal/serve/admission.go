package serve

import (
	"container/list"
	"time"
)

// admission is the server's global admission controller: a FIFO
// weighted semaphore over search-worker slots. Every search request
// acquires weight equal to the worker count it will run with, so the
// total number of in-flight search workers — not merely requests — is
// bounded by the capacity regardless of per-request worker settings.
//
// Queueing is bounded two ways: at most maxQueue requests wait at once
// (beyond that, immediate rejection) and no request waits longer than
// maxWait (rejection on timeout). Rejected requests surface as 429 +
// Retry-After; admission never changes what an admitted request
// computes, so byte-identical determinism per request is preserved —
// only aggregate concurrency is shaped.
//
// The implementation is dependency-free by design (no golang.org/x/sync
// in the tree): a mutex-free channel handshake per waiter under one
// small critical section, FIFO so a heavy request cannot be starved by
// a stream of light ones slipping past it.
type admission struct {
	capacity int64
	maxQueue int
	maxWait  time.Duration

	mu      chMutex
	inUse   int64
	waiters list.List // of *waiter, front = oldest
}

// chMutex is a channel-based mutex: tiny, and select-friendly if this
// ever needs context cancellation.
type chMutex chan struct{}

func (m chMutex) lock()   { m <- struct{}{} }
func (m chMutex) unlock() { <-m }

// waiter is one queued acquisition. granted is closed by the releaser
// that admits it (the weight is already charged by then); elem lets a
// timed-out waiter remove itself.
type waiter struct {
	weight  int64
	granted chan struct{}
	elem    *list.Element
}

// newAdmission builds a controller admitting up to capacity worker
// slots, queueing at most maxQueue requests for at most maxWait each.
func newAdmission(capacity int64, maxQueue int, maxWait time.Duration) *admission {
	a := &admission{
		capacity: capacity,
		maxQueue: maxQueue,
		maxWait:  maxWait,
		mu:       make(chMutex, 1),
	}
	return a
}

// acquire blocks until weight worker slots are available, the queue
// overflows, or maxWait elapses. On success it returns the weight
// actually charged (a weight above the whole capacity is clamped — an
// oversized request admits alone rather than deadlocking) which the
// caller must hand back to release.
func (a *admission) acquire(weight int64) (charged int64, ok bool) {
	if weight < 1 {
		weight = 1
	}
	if weight > a.capacity {
		weight = a.capacity
	}
	a.mu.lock()
	// Fast path only when nobody is queued ahead — FIFO, not barging.
	if a.waiters.Len() == 0 && a.inUse+weight <= a.capacity {
		a.inUse += weight
		a.mu.unlock()
		return weight, true
	}
	if a.waiters.Len() >= a.maxQueue {
		a.mu.unlock()
		return 0, false
	}
	// maxWait <= 0 means never wait: reject immediately rather than
	// queueing with a zero (or negative) timer, which would race the
	// grant against an already-fired timer channel.
	if a.maxWait <= 0 {
		a.mu.unlock()
		return 0, false
	}
	w := &waiter{weight: weight, granted: make(chan struct{})}
	w.elem = a.waiters.PushBack(w)
	a.mu.unlock()

	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	select {
	case <-w.granted:
		return weight, true
	case <-timer.C:
	}
	a.mu.lock()
	select {
	case <-w.granted:
		// A release granted us between the timeout and the lock; the
		// weight is charged, so the admission stands.
		a.mu.unlock()
		return weight, true
	default:
	}
	a.waiters.Remove(w.elem)
	a.mu.unlock()
	return 0, false
}

// release returns weight slots and admits queued waiters in FIFO order
// while they fit. weight must be the charged value acquire returned.
func (a *admission) release(weight int64) {
	a.mu.lock()
	a.inUse -= weight
	for {
		front := a.waiters.Front()
		if front == nil {
			break
		}
		w := front.Value.(*waiter)
		if a.inUse+w.weight > a.capacity {
			break
		}
		a.waiters.Remove(front)
		a.inUse += w.weight
		close(w.granted)
	}
	a.mu.unlock()
}

// snapshot reports the in-use worker slots and queue depth (for
// /metrics gauges).
func (a *admission) snapshot() (inUse int64, queued int) {
	a.mu.lock()
	inUse, queued = a.inUse, a.waiters.Len()
	a.mu.unlock()
	return inUse, queued
}
