package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"trajmotif/internal/core"
	"trajmotif/internal/datagen"
	"trajmotif/internal/group"
	"trajmotif/internal/store"
	"trajmotif/internal/traj"
	"trajmotif/internal/trajio"
)

// harness spins up an httptest server around a fresh store.
func harness(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	srv := New(store.New(nil), &Options{Workers: 1})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv
}

// call POSTs (or GETs when body is nil) and decodes the JSON response
// into out, failing the test on transport errors or a status mismatch.
func call(t *testing.T, ts *httptest.Server, method, path string, body, out any, wantStatus int) {
	t.Helper()
	var req *http.Request
	var err error
	if body != nil {
		b, merr := json.Marshal(body)
		if merr != nil {
			t.Fatal(merr)
		}
		req, err = http.NewRequest(method, ts.URL+path, bytes.NewReader(b))
	} else {
		req, err = http.NewRequest(method, ts.URL+path, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("%s %s: status %d (want %d): %s", method, path, resp.StatusCode, wantStatus, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
}

func upload(t *testing.T, ts *httptest.Server, tr *traj.Trajectory) store.ID {
	t.Helper()
	req := trajectoryRequest{Points: make([][2]float64, tr.Len())}
	for k, p := range tr.Points {
		req.Points[k] = [2]float64{p.Lat, p.Lng}
	}
	if tr.Times != nil {
		req.Times = make([]float64, tr.Len())
		for k, ts := range tr.Times {
			req.Times[k] = float64(ts.Unix())
		}
	}
	var resp trajectoryResponse
	call(t, ts, "POST", "/trajectories", req, &resp, http.StatusOK)
	if resp.N != tr.Len() {
		t.Fatalf("upload echoed %d points, sent %d", resp.N, tr.Len())
	}
	return resp.ID
}

func fixture(t *testing.T, seed int64, n int) *traj.Trajectory {
	t.Helper()
	tr, err := datagen.Dataset(datagen.GeoLifeName, datagen.Config{Seed: seed, N: n})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTrajectoryUploadAndDedup(t *testing.T) {
	ts, srv := harness(t)
	tr := fixture(t, 1, 80)
	id := upload(t, ts, tr)
	id2 := upload(t, ts, tr)
	if id != id2 {
		t.Fatalf("re-upload changed id: %s vs %s", id, id2)
	}
	if srv.Store().Len() != 1 {
		t.Fatalf("store holds %d trajectories, want 1", srv.Store().Len())
	}

	// CSV body variant.
	var resp trajectoryResponse
	call(t, ts, "POST", "/trajectories",
		trajectoryRequest{CSV: "lat,lng\n39.9,116.4\n39.91,116.41\n"}, &resp, http.StatusOK)
	if resp.N != 2 || resp.Timed {
		t.Fatalf("csv upload: %+v", resp)
	}

	// Bad bodies.
	call(t, ts, "POST", "/trajectories", trajectoryRequest{}, nil, http.StatusBadRequest)
	call(t, ts, "POST", "/trajectories",
		trajectoryRequest{Points: [][2]float64{{91, 0}, {0, 0}}}, nil, http.StatusBadRequest)
}

// TestRepeatDiscoverSkipsGrids is the serve-mode acceptance criterion:
// the second identical /discover computes zero new grids — visible in
// the response's gridRebuildsAvoided and in GET /stats — and returns the
// identical motif.
func TestRepeatDiscoverSkipsGrids(t *testing.T) {
	ts, _ := harness(t)
	id := upload(t, ts, fixture(t, 2, 200))

	var first, second motifResponse
	req := discoverRequest{ID: id, Xi: 8}
	call(t, ts, "POST", "/discover", req, &first, http.StatusOK)

	var stats1 serverStats
	call(t, ts, "GET", "/stats", nil, &stats1, http.StatusOK)

	call(t, ts, "POST", "/discover", req, &second, http.StatusOK)

	var stats2 serverStats
	call(t, ts, "GET", "/stats", nil, &stats2, http.StatusOK)

	if second.Stats.GridRebuildsAvoided != 2 {
		t.Errorf("second discover gridRebuildsAvoided = %d, want 2", second.Stats.GridRebuildsAvoided)
	}
	if stats2.Built != stats1.Built {
		t.Errorf("second discover built %d new artifacts", stats2.Built-stats1.Built)
	}
	if stats2.GridRebuildsAvoided < 2 {
		t.Errorf("cumulative gridRebuildsAvoided = %d, want >= 2", stats2.GridRebuildsAvoided)
	}
	if first.Distance != second.Distance || first.A != second.A || first.B != second.B ||
		first.Stats.DPCells != second.Stats.DPCells || first.Stats.Subsets != second.Stats.Subsets {
		t.Errorf("cached discover differs: %+v vs %+v", first, second)
	}
}

// TestDiscoverMatchesLibrary: for workers 1 and 4, the served result —
// spans, distance bits, effort counters — equals the direct uncached
// library call.
func TestDiscoverMatchesLibrary(t *testing.T) {
	ts, _ := harness(t)
	tr := fixture(t, 3, 200)
	id := upload(t, ts, tr)

	for _, workers := range []int{1, 4} {
		want, err := group.GTM(tr, 8, 32, &core.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var got motifResponse
		call(t, ts, "POST", "/discover", discoverRequest{ID: id, Xi: 8, Workers: workers}, &got, http.StatusOK)
		if got.Distance != want.Distance ||
			got.A != (spanJSON{want.A.Start, want.A.End}) ||
			got.B != (spanJSON{want.B.Start, want.B.End}) ||
			got.Stats.Subsets != want.Stats.Subsets ||
			got.Stats.SubsetsProcessed != want.Stats.SubsetsProcessed ||
			got.Stats.SubsetsAbandoned != want.Stats.SubsetsAbandoned ||
			got.Stats.DPCells != want.Stats.DPCells {
			t.Errorf("workers=%d: served %+v, library %+v", workers, got, want)
		}
	}
}

func TestDiscoverAlgorithmsAgree(t *testing.T) {
	ts, _ := harness(t)
	id := upload(t, ts, fixture(t, 4, 160))
	var ref motifResponse
	call(t, ts, "POST", "/discover", discoverRequest{ID: id, Xi: 8, Algo: "gtm"}, &ref, http.StatusOK)
	for _, algo := range []string{"btm", "gtmstar", "brutedp"} {
		var got motifResponse
		call(t, ts, "POST", "/discover", discoverRequest{ID: id, Xi: 8, Algo: algo}, &got, http.StatusOK)
		if got.Distance != ref.Distance {
			t.Errorf("%s distance %v != gtm %v", algo, got.Distance, ref.Distance)
		}
	}
}

func TestDiscoverPairsAndCacheSharing(t *testing.T) {
	ts, _ := harness(t)
	a, b, err := datagen.Pair(datagen.TruckName, datagen.Config{Seed: 7, N: 120})
	if err != nil {
		t.Fatal(err)
	}
	c := fixture(t, 5, 120)
	ids := []store.ID{upload(t, ts, a), upload(t, ts, b), upload(t, ts, c)}

	var pairs []pairResponse
	call(t, ts, "POST", "/discover/pairs", discoverPairsRequest{IDs: ids, Xi: 6}, &pairs, http.StatusOK)
	if len(pairs) != 3 {
		t.Fatalf("got %d pairs, want 3", len(pairs))
	}
	for _, p := range pairs {
		if p.Error != "" || p.Motif == nil {
			t.Fatalf("pair (%d,%d) failed: %s", p.I, p.J, p.Error)
		}
	}

	var stats1 serverStats
	call(t, ts, "GET", "/stats", nil, &stats1, http.StatusOK)
	var again []pairResponse
	call(t, ts, "POST", "/discover/pairs", discoverPairsRequest{IDs: ids, Xi: 6}, &again, http.StatusOK)
	var stats2 serverStats
	call(t, ts, "GET", "/stats", nil, &stats2, http.StatusOK)
	if stats2.Built != stats1.Built {
		t.Errorf("repeated all-pairs built %d new artifacts", stats2.Built-stats1.Built)
	}
	for k := range pairs {
		if again[k].Motif.Distance != pairs[k].Motif.Distance || again[k].Motif.A != pairs[k].Motif.A || again[k].Motif.B != pairs[k].Motif.B {
			t.Errorf("pair %d changed on the cached run", k)
		}
	}
}

func TestTopKEndpoint(t *testing.T) {
	ts, _ := harness(t)
	id := upload(t, ts, fixture(t, 6, 200))
	var results []motifResponse
	call(t, ts, "POST", "/topk", topkRequest{ID: id, Xi: 8, K: 3}, &results, http.StatusOK)
	if len(results) == 0 {
		t.Fatal("no motifs")
	}
	for k := 1; k < len(results); k++ {
		if results[k].Distance < results[k-1].Distance {
			t.Errorf("top-k not ascending at %d", k)
		}
	}
}

func TestKNNJoinCluster(t *testing.T) {
	ts, _ := harness(t)
	var ids []store.ID
	for seed := int64(1); seed <= 4; seed++ {
		tr, err := datagen.Dataset(datagen.TruckName, datagen.Config{Seed: seed, N: 100})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, upload(t, ts, tr))
	}

	var knnOut knnResponse
	call(t, ts, "POST", "/knn", knnRequest{Query: ids[0], K: 2}, &knnOut, http.StatusOK)
	if len(knnOut.Neighbors) != 2 {
		t.Fatalf("knn returned %d neighbors", len(knnOut.Neighbors))
	}
	for _, nb := range knnOut.Neighbors {
		if nb.ID == ids[0] {
			t.Error("query trajectory returned as its own neighbor")
		}
	}

	var joinOut joinResponse
	call(t, ts, "POST", "/join", joinRequest{Eps: 1e9}, &joinOut, http.StatusOK)
	if len(joinOut.Pairs) != 6 { // C(4,2) under an everything-matches radius
		t.Errorf("join reported %d pairs, want 6", len(joinOut.Pairs))
	}

	var clusterOut []clusterResponse
	call(t, ts, "POST", "/cluster", clusterRequest{ID: ids[0], Window: 20, Eps: 1e9}, &clusterOut, http.StatusOK)
	if len(clusterOut) == 0 {
		t.Error("no clusters under an everything-matches radius")
	}
}

func TestErrorPaths(t *testing.T) {
	ts, _ := harness(t)
	id := upload(t, ts, fixture(t, 8, 60))

	call(t, ts, "POST", "/discover", discoverRequest{ID: "nope", Xi: 8}, nil, http.StatusNotFound)
	call(t, ts, "POST", "/discover", discoverRequest{ID: id, Xi: 8, Algo: "quantum"}, nil, http.StatusBadRequest)
	// xi too large for the trajectory: infeasible, the client's fault.
	call(t, ts, "POST", "/discover", discoverRequest{ID: id, Xi: 500}, nil, http.StatusUnprocessableEntity)
	call(t, ts, "POST", "/discover/pairs", discoverPairsRequest{IDs: []store.ID{id}, Xi: 8}, nil, http.StatusBadRequest)
	call(t, ts, "POST", "/knn", knnRequest{Query: id, K: 0}, nil, http.StatusBadRequest)
	// Parameter validation: client mistakes are 4xx, never 500.
	call(t, ts, "POST", "/discover", discoverRequest{ID: id, Xi: -1}, nil, http.StatusBadRequest)
	call(t, ts, "POST", "/topk", topkRequest{ID: id, Xi: 8, K: 0}, nil, http.StatusBadRequest)
	call(t, ts, "POST", "/topk", topkRequest{ID: id, Xi: -1, K: 2}, nil, http.StatusBadRequest)

	var health map[string]any
	call(t, ts, "GET", "/healthz", nil, &health, http.StatusOK)
	if health["ok"] != true {
		t.Errorf("healthz: %v", health)
	}

	// Method mismatch on a registered pattern.
	resp, err := http.Get(ts.URL + "/discover")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /discover = %d, want 405", resp.StatusCode)
	}
}

// TestBodyCap: a request body over MaxBodyBytes is rejected with 413
// Request Entity Too Large (it used to surface as a generic 400 "bad
// request body: http: request body too large") instead of being slurped
// into memory.
func TestBodyCap(t *testing.T) {
	srv := New(store.New(nil), &Options{Workers: 1, MaxBodyBytes: 512})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	big := trajectoryRequest{Points: make([][2]float64, 200)} // ~2 KB encoded
	for k := range big.Points {
		big.Points[k] = [2]float64{1, float64(k) / 1000}
	}
	call(t, ts, "POST", "/trajectories", big, nil, http.StatusRequestEntityTooLarge)

	small := trajectoryRequest{Points: [][2]float64{{1, 2}, {1.1, 2.1}}}
	call(t, ts, "POST", "/trajectories", small, nil, http.StatusOK)
}

// TestConcurrentDiscover hammers one trajectory from several goroutines:
// responses must all be identical and the run must be race-clean (the CI
// race job executes this test under -race).
func TestConcurrentDiscover(t *testing.T) {
	ts, _ := harness(t)
	id := upload(t, ts, fixture(t, 9, 160))

	var ref motifResponse
	call(t, ts, "POST", "/discover", discoverRequest{ID: id, Xi: 8}, &ref, http.StatusOK)

	const parallel = 8
	results := make([]motifResponse, parallel)
	errs := make(chan error, parallel)
	for k := 0; k < parallel; k++ {
		go func(k int) {
			b, _ := json.Marshal(discoverRequest{ID: id, Xi: 8})
			resp, err := http.Post(ts.URL+"/discover", "application/json", bytes.NewReader(b))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs <- json.NewDecoder(resp.Body).Decode(&results[k])
		}(k)
	}
	for k := 0; k < parallel; k++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for k := range results {
		if results[k].Distance != ref.Distance || results[k].A != ref.A || results[k].B != ref.B {
			t.Errorf("concurrent response %d differs: %+v vs %+v", k, results[k], ref)
		}
	}
}

// bulkCall POSTs a raw NDJSON body to /trajectories/bulk.
func bulkCall(t *testing.T, ts *httptest.Server, body string, out *bulkResponse, wantStatus int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/trajectories/bulk", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("bulk: status %d (want %d): %s", resp.StatusCode, wantStatus, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("bulk: decode: %v", err)
		}
	}
}

// TestBulkUpload: an NDJSON stream registers record by record, yielding
// the same content IDs as individual uploads, with per-record errors
// reported and skipped.
func TestBulkUpload(t *testing.T) {
	ts, srv := harness(t)
	trs := []*traj.Trajectory{
		fixture(t, 31, 50),
		fixture(t, 32, 60),
		fixture(t, 33, 70),
	}
	// Untimed copies: the upload helper encodes whole seconds while
	// WriteNDJSON keeps nanosecond fractions, so only the geometry (which
	// is what the content hash of an untimed trajectory covers) can be
	// compared across the two upload paths.
	for k, tr := range trs {
		c := tr.Clip(tr.Len())
		c.Times = nil
		trs[k] = c
	}
	var body bytes.Buffer
	if err := trajio.WriteNDJSON(&body, trs...); err != nil {
		t.Fatal(err)
	}

	var out bulkResponse
	bulkCall(t, ts, body.String(), &out, http.StatusOK)
	if out.Stored != 3 || out.Failed != 0 || out.Error != "" || len(out.Records) != 3 {
		t.Fatalf("bulk response: %+v", out)
	}
	for k, rec := range out.Records {
		if rec.Index != k || !rec.Created || rec.N != trs[k].Len() {
			t.Errorf("record %d: %+v", k, rec)
		}
		if _, ok := srv.Store().Get(rec.ID); !ok {
			t.Errorf("record %d id %s not registered", k, rec.ID)
		}
	}
	if srv.Store().Len() != 3 {
		t.Fatalf("store holds %d trajectories, want 3", srv.Store().Len())
	}

	// Bulk IDs match the content hashes of individual uploads.
	for k, tr := range trs {
		if id := upload(t, ts, tr); id != out.Records[k].ID {
			t.Errorf("record %d: bulk id %s != individual id %s", k, out.Records[k].ID, id)
		}
	}

	// A semantically bad record is reported and skipped; the rest lands.
	mixed := `{"points":[[1,2],[1.1,2.1]]}` + "\n" +
		`{"points":[[999,2],[1,2]]}` + "\n" +
		`{"points":[[3,4],[3.1,4.1]],"times":[5,6]}` + "\n"
	out = bulkResponse{}
	bulkCall(t, ts, mixed, &out, http.StatusOK)
	if out.Stored != 2 || out.Failed != 1 {
		t.Fatalf("mixed bulk: %+v", out)
	}
	if out.Records[1].Error == "" || out.Records[1].Index != 1 {
		t.Errorf("bad record not reported at index 1: %+v", out.Records[1])
	}
	if !out.Records[2].Timed {
		t.Error("timed record lost its timestamps")
	}

	// Malformed JSON after valid records: 200 with the stream error set
	// and the earlier registrations standing.
	before := srv.Store().Len()
	out = bulkResponse{}
	bulkCall(t, ts, `{"points":[[7,8],[7.1,8.1]]}`+"\n{garbage\n", &out, http.StatusOK)
	if out.Stored != 1 || out.Error == "" {
		t.Fatalf("truncated bulk: %+v", out)
	}
	if srv.Store().Len() != before+1 {
		t.Errorf("truncated bulk registered %d, want 1", srv.Store().Len()-before)
	}

	// Nothing decodable at all: a plain 400.
	bulkCall(t, ts, "{garbage\n", nil, http.StatusBadRequest)
	bulkCall(t, ts, "", nil, http.StatusBadRequest)
}

// TestBulkEchoCap: per-record outcomes beyond maxBulkEcho are dropped
// from the response echo, while the counts (and the registrations) stay
// exact — the response cannot grow without bound with the upload.
func TestBulkEchoCap(t *testing.T) {
	ts, srv := harness(t)
	n := maxBulkEcho + 5
	var body strings.Builder
	for k := 0; k < n; k++ {
		fmt.Fprintf(&body, `{"points":[[1,%d.001],[1.1,%d.002]]}`+"\n", k%180, k%180)
	}
	var out bulkResponse
	bulkCall(t, ts, body.String(), &out, http.StatusOK)
	if len(out.Records) != maxBulkEcho {
		t.Fatalf("echoed %d records, want the %d cap", len(out.Records), maxBulkEcho)
	}
	if out.RecordsOmitted != n-maxBulkEcho {
		t.Errorf("RecordsOmitted = %d, want %d", out.RecordsOmitted, n-maxBulkEcho)
	}
	if out.Stored+out.Failed != n {
		t.Errorf("counts cover %d records, want %d", out.Stored+out.Failed, n)
	}
	// Registrations are capped by content dedup (180 distinct), not echo.
	if srv.Store().Len() != 180 {
		t.Errorf("store holds %d distinct trajectories, want 180", srv.Store().Len())
	}
}

// TestBulkBodyCap: the cap applies to bulk uploads too, but records
// decoded before the cap trips are kept (the response reports the cut).
func TestBulkBodyCap(t *testing.T) {
	srv := New(store.New(nil), &Options{Workers: 1, MaxBodyBytes: 96})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	body := `{"points":[[1,2],[1.1,2.1]]}` + "\n" +
		`{"points":[[3,4],[3.1,4.1],[3.2,4.2],[3.3,4.3],[3.4,4.4],[3.5,4.5]]}` + "\n"
	var out bulkResponse
	bulkCall(t, ts, body, &out, http.StatusOK)
	if out.Stored != 1 || out.Error == "" {
		t.Fatalf("capped bulk: %+v", out)
	}
	if srv.Store().Len() != 1 {
		t.Errorf("store holds %d, want the 1 record decoded before the cap", srv.Store().Len())
	}
}

// TestDeleteTrajectory: the removal API, including the interaction with
// /knn and /join defaulting their dataset to "everything stored".
func TestDeleteTrajectory(t *testing.T) {
	ts, srv := harness(t)
	var ids []store.ID
	for seed := int64(41); seed <= 44; seed++ {
		tr, err := datagen.Dataset(datagen.TruckName, datagen.Config{Seed: seed, N: 80})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, upload(t, ts, tr))
	}

	// Warm the cache so the delete has artifacts to purge.
	call(t, ts, "POST", "/discover", discoverRequest{ID: ids[3], Xi: 4}, nil, http.StatusOK)

	var knnOut knnResponse
	call(t, ts, "POST", "/knn", knnRequest{Query: ids[0], K: 3}, &knnOut, http.StatusOK)
	if len(knnOut.Neighbors) != 3 {
		t.Fatalf("knn over 4 stored returned %d neighbors", len(knnOut.Neighbors))
	}
	var joinOut joinResponse
	call(t, ts, "POST", "/join", joinRequest{Eps: 1e9}, &joinOut, http.StatusOK)
	if len(joinOut.Pairs) != 6 {
		t.Fatalf("join over 4 stored reported %d pairs, want 6", len(joinOut.Pairs))
	}

	var del map[string]any
	call(t, ts, "DELETE", "/trajectories/"+string(ids[3]), nil, &del, http.StatusOK)
	if del["removed"] != true {
		t.Fatalf("delete response: %v", del)
	}
	call(t, ts, "DELETE", "/trajectories/"+string(ids[3]), nil, nil, http.StatusNotFound)
	call(t, ts, "DELETE", "/trajectories/nope", nil, nil, http.StatusNotFound)
	call(t, ts, "POST", "/discover", discoverRequest{ID: ids[3], Xi: 4}, nil, http.StatusNotFound)

	// The "everything stored" defaults shrink immediately.
	call(t, ts, "POST", "/knn", knnRequest{Query: ids[0], K: 3}, &knnOut, http.StatusOK)
	if len(knnOut.Neighbors) != 2 {
		t.Fatalf("knn after delete returned %d neighbors, want 2", len(knnOut.Neighbors))
	}
	for _, nb := range knnOut.Neighbors {
		if nb.ID == ids[3] {
			t.Error("deleted trajectory still appears as a neighbor")
		}
	}
	call(t, ts, "POST", "/join", joinRequest{Eps: 1e9}, &joinOut, http.StatusOK)
	if len(joinOut.Pairs) != 3 { // C(3,2)
		t.Errorf("join after delete reported %d pairs, want 3", len(joinOut.Pairs))
	}

	// Explicitly naming a deleted id is a 404, not a silent skip.
	call(t, ts, "POST", "/knn", knnRequest{Query: ids[0], IDs: []store.ID{ids[1], ids[3]}, K: 1}, nil, http.StatusNotFound)

	var st serverStats
	call(t, ts, "GET", "/stats", nil, &st, http.StatusOK)
	if st.Trajectories != 3 || st.Removed != 1 {
		t.Errorf("stats after delete: trajectories=%d removed=%d, want 3/1", st.Trajectories, st.Removed)
	}
	if srv.Store().Len() != 3 {
		t.Errorf("store holds %d, want 3", srv.Store().Len())
	}
}

// TestKNNDefaultDuringDelete: a /knn (or /join) request that names no ids
// must never 404 because a concurrent DELETE removed a trajectory between
// the IDs snapshot and its resolution — vanished ids are skipped. The CI
// race job runs this under -race.
func TestKNNDefaultDuringDelete(t *testing.T) {
	ts, _ := harness(t)
	query := upload(t, ts, fixture(t, 51, 40))
	keep := upload(t, ts, fixture(t, 52, 40))
	_ = keep

	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; k < 30; k++ {
			tr := fixture(t, int64(100+k), 40)
			id := upload(t, ts, tr)
			req, _ := http.NewRequest("DELETE", ts.URL+"/trajectories/"+string(id), nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}
	}()
	for k := 0; k < 30; k++ {
		var knnOut knnResponse
		call(t, ts, "POST", "/knn", knnRequest{Query: query, K: 1}, &knnOut, http.StatusOK)
		if len(knnOut.Neighbors) < 1 {
			t.Fatalf("knn defaults lost every neighbor mid-churn")
		}
		var joinOut joinResponse
		call(t, ts, "POST", "/join", joinRequest{Eps: 1e9}, &joinOut, http.StatusOK)
	}
	<-done
}
