package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"trajmotif/internal/core"
	"trajmotif/internal/datagen"
	"trajmotif/internal/group"
	"trajmotif/internal/store"
	"trajmotif/internal/traj"
)

// harness spins up an httptest server around a fresh store.
func harness(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	srv := New(store.New(nil), &Options{Workers: 1})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv
}

// call POSTs (or GETs when body is nil) and decodes the JSON response
// into out, failing the test on transport errors or a status mismatch.
func call(t *testing.T, ts *httptest.Server, method, path string, body, out any, wantStatus int) {
	t.Helper()
	var req *http.Request
	var err error
	if body != nil {
		b, merr := json.Marshal(body)
		if merr != nil {
			t.Fatal(merr)
		}
		req, err = http.NewRequest(method, ts.URL+path, bytes.NewReader(b))
	} else {
		req, err = http.NewRequest(method, ts.URL+path, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("%s %s: status %d (want %d): %s", method, path, resp.StatusCode, wantStatus, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
}

func upload(t *testing.T, ts *httptest.Server, tr *traj.Trajectory) store.ID {
	t.Helper()
	req := trajectoryRequest{Points: make([][2]float64, tr.Len())}
	for k, p := range tr.Points {
		req.Points[k] = [2]float64{p.Lat, p.Lng}
	}
	if tr.Times != nil {
		req.Times = make([]float64, tr.Len())
		for k, ts := range tr.Times {
			req.Times[k] = float64(ts.Unix())
		}
	}
	var resp trajectoryResponse
	call(t, ts, "POST", "/trajectories", req, &resp, http.StatusOK)
	if resp.N != tr.Len() {
		t.Fatalf("upload echoed %d points, sent %d", resp.N, tr.Len())
	}
	return resp.ID
}

func fixture(t *testing.T, seed int64, n int) *traj.Trajectory {
	t.Helper()
	tr, err := datagen.Dataset(datagen.GeoLifeName, datagen.Config{Seed: seed, N: n})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTrajectoryUploadAndDedup(t *testing.T) {
	ts, srv := harness(t)
	tr := fixture(t, 1, 80)
	id := upload(t, ts, tr)
	id2 := upload(t, ts, tr)
	if id != id2 {
		t.Fatalf("re-upload changed id: %s vs %s", id, id2)
	}
	if srv.Store().Len() != 1 {
		t.Fatalf("store holds %d trajectories, want 1", srv.Store().Len())
	}

	// CSV body variant.
	var resp trajectoryResponse
	call(t, ts, "POST", "/trajectories",
		trajectoryRequest{CSV: "lat,lng\n39.9,116.4\n39.91,116.41\n"}, &resp, http.StatusOK)
	if resp.N != 2 || resp.Timed {
		t.Fatalf("csv upload: %+v", resp)
	}

	// Bad bodies.
	call(t, ts, "POST", "/trajectories", trajectoryRequest{}, nil, http.StatusBadRequest)
	call(t, ts, "POST", "/trajectories",
		trajectoryRequest{Points: [][2]float64{{91, 0}, {0, 0}}}, nil, http.StatusBadRequest)
}

// TestRepeatDiscoverSkipsGrids is the serve-mode acceptance criterion:
// the second identical /discover computes zero new grids — visible in
// the response's gridRebuildsAvoided and in GET /stats — and returns the
// identical motif.
func TestRepeatDiscoverSkipsGrids(t *testing.T) {
	ts, _ := harness(t)
	id := upload(t, ts, fixture(t, 2, 200))

	var first, second motifResponse
	req := discoverRequest{ID: id, Xi: 8}
	call(t, ts, "POST", "/discover", req, &first, http.StatusOK)

	var stats1 serverStats
	call(t, ts, "GET", "/stats", nil, &stats1, http.StatusOK)

	call(t, ts, "POST", "/discover", req, &second, http.StatusOK)

	var stats2 serverStats
	call(t, ts, "GET", "/stats", nil, &stats2, http.StatusOK)

	if second.Stats.GridRebuildsAvoided != 2 {
		t.Errorf("second discover gridRebuildsAvoided = %d, want 2", second.Stats.GridRebuildsAvoided)
	}
	if stats2.Built != stats1.Built {
		t.Errorf("second discover built %d new artifacts", stats2.Built-stats1.Built)
	}
	if stats2.GridRebuildsAvoided < 2 {
		t.Errorf("cumulative gridRebuildsAvoided = %d, want >= 2", stats2.GridRebuildsAvoided)
	}
	if first.Distance != second.Distance || first.A != second.A || first.B != second.B ||
		first.Stats.DPCells != second.Stats.DPCells || first.Stats.Subsets != second.Stats.Subsets {
		t.Errorf("cached discover differs: %+v vs %+v", first, second)
	}
}

// TestDiscoverMatchesLibrary: for workers 1 and 4, the served result —
// spans, distance bits, effort counters — equals the direct uncached
// library call.
func TestDiscoverMatchesLibrary(t *testing.T) {
	ts, _ := harness(t)
	tr := fixture(t, 3, 200)
	id := upload(t, ts, tr)

	for _, workers := range []int{1, 4} {
		want, err := group.GTM(tr, 8, 32, &core.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var got motifResponse
		call(t, ts, "POST", "/discover", discoverRequest{ID: id, Xi: 8, Workers: workers}, &got, http.StatusOK)
		if got.Distance != want.Distance ||
			got.A != (spanJSON{want.A.Start, want.A.End}) ||
			got.B != (spanJSON{want.B.Start, want.B.End}) ||
			got.Stats.Subsets != want.Stats.Subsets ||
			got.Stats.SubsetsProcessed != want.Stats.SubsetsProcessed ||
			got.Stats.SubsetsAbandoned != want.Stats.SubsetsAbandoned ||
			got.Stats.DPCells != want.Stats.DPCells {
			t.Errorf("workers=%d: served %+v, library %+v", workers, got, want)
		}
	}
}

func TestDiscoverAlgorithmsAgree(t *testing.T) {
	ts, _ := harness(t)
	id := upload(t, ts, fixture(t, 4, 160))
	var ref motifResponse
	call(t, ts, "POST", "/discover", discoverRequest{ID: id, Xi: 8, Algo: "gtm"}, &ref, http.StatusOK)
	for _, algo := range []string{"btm", "gtmstar", "brutedp"} {
		var got motifResponse
		call(t, ts, "POST", "/discover", discoverRequest{ID: id, Xi: 8, Algo: algo}, &got, http.StatusOK)
		if got.Distance != ref.Distance {
			t.Errorf("%s distance %v != gtm %v", algo, got.Distance, ref.Distance)
		}
	}
}

func TestDiscoverPairsAndCacheSharing(t *testing.T) {
	ts, _ := harness(t)
	a, b, err := datagen.Pair(datagen.TruckName, datagen.Config{Seed: 7, N: 120})
	if err != nil {
		t.Fatal(err)
	}
	c := fixture(t, 5, 120)
	ids := []store.ID{upload(t, ts, a), upload(t, ts, b), upload(t, ts, c)}

	var pairs []pairResponse
	call(t, ts, "POST", "/discover/pairs", discoverPairsRequest{IDs: ids, Xi: 6}, &pairs, http.StatusOK)
	if len(pairs) != 3 {
		t.Fatalf("got %d pairs, want 3", len(pairs))
	}
	for _, p := range pairs {
		if p.Error != "" || p.Motif == nil {
			t.Fatalf("pair (%d,%d) failed: %s", p.I, p.J, p.Error)
		}
	}

	var stats1 serverStats
	call(t, ts, "GET", "/stats", nil, &stats1, http.StatusOK)
	var again []pairResponse
	call(t, ts, "POST", "/discover/pairs", discoverPairsRequest{IDs: ids, Xi: 6}, &again, http.StatusOK)
	var stats2 serverStats
	call(t, ts, "GET", "/stats", nil, &stats2, http.StatusOK)
	if stats2.Built != stats1.Built {
		t.Errorf("repeated all-pairs built %d new artifacts", stats2.Built-stats1.Built)
	}
	for k := range pairs {
		if again[k].Motif.Distance != pairs[k].Motif.Distance || again[k].Motif.A != pairs[k].Motif.A || again[k].Motif.B != pairs[k].Motif.B {
			t.Errorf("pair %d changed on the cached run", k)
		}
	}
}

func TestTopKEndpoint(t *testing.T) {
	ts, _ := harness(t)
	id := upload(t, ts, fixture(t, 6, 200))
	var results []motifResponse
	call(t, ts, "POST", "/topk", topkRequest{ID: id, Xi: 8, K: 3}, &results, http.StatusOK)
	if len(results) == 0 {
		t.Fatal("no motifs")
	}
	for k := 1; k < len(results); k++ {
		if results[k].Distance < results[k-1].Distance {
			t.Errorf("top-k not ascending at %d", k)
		}
	}
}

func TestKNNJoinCluster(t *testing.T) {
	ts, _ := harness(t)
	var ids []store.ID
	for seed := int64(1); seed <= 4; seed++ {
		tr, err := datagen.Dataset(datagen.TruckName, datagen.Config{Seed: seed, N: 100})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, upload(t, ts, tr))
	}

	var knnOut knnResponse
	call(t, ts, "POST", "/knn", knnRequest{Query: ids[0], K: 2}, &knnOut, http.StatusOK)
	if len(knnOut.Neighbors) != 2 {
		t.Fatalf("knn returned %d neighbors", len(knnOut.Neighbors))
	}
	for _, nb := range knnOut.Neighbors {
		if nb.ID == ids[0] {
			t.Error("query trajectory returned as its own neighbor")
		}
	}

	var joinOut joinResponse
	call(t, ts, "POST", "/join", joinRequest{Eps: 1e9}, &joinOut, http.StatusOK)
	if len(joinOut.Pairs) != 6 { // C(4,2) under an everything-matches radius
		t.Errorf("join reported %d pairs, want 6", len(joinOut.Pairs))
	}

	var clusterOut []clusterResponse
	call(t, ts, "POST", "/cluster", clusterRequest{ID: ids[0], Window: 20, Eps: 1e9}, &clusterOut, http.StatusOK)
	if len(clusterOut) == 0 {
		t.Error("no clusters under an everything-matches radius")
	}
}

func TestErrorPaths(t *testing.T) {
	ts, _ := harness(t)
	id := upload(t, ts, fixture(t, 8, 60))

	call(t, ts, "POST", "/discover", discoverRequest{ID: "nope", Xi: 8}, nil, http.StatusNotFound)
	call(t, ts, "POST", "/discover", discoverRequest{ID: id, Xi: 8, Algo: "quantum"}, nil, http.StatusBadRequest)
	// xi too large for the trajectory: infeasible, the client's fault.
	call(t, ts, "POST", "/discover", discoverRequest{ID: id, Xi: 500}, nil, http.StatusUnprocessableEntity)
	call(t, ts, "POST", "/discover/pairs", discoverPairsRequest{IDs: []store.ID{id}, Xi: 8}, nil, http.StatusBadRequest)
	call(t, ts, "POST", "/knn", knnRequest{Query: id, K: 0}, nil, http.StatusBadRequest)
	// Parameter validation: client mistakes are 4xx, never 500.
	call(t, ts, "POST", "/discover", discoverRequest{ID: id, Xi: -1}, nil, http.StatusBadRequest)
	call(t, ts, "POST", "/topk", topkRequest{ID: id, Xi: 8, K: 0}, nil, http.StatusBadRequest)
	call(t, ts, "POST", "/topk", topkRequest{ID: id, Xi: -1, K: 2}, nil, http.StatusBadRequest)

	var health map[string]any
	call(t, ts, "GET", "/healthz", nil, &health, http.StatusOK)
	if health["ok"] != true {
		t.Errorf("healthz: %v", health)
	}

	// Method mismatch on a registered pattern.
	resp, err := http.Get(ts.URL + "/discover")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /discover = %d, want 405", resp.StatusCode)
	}
}

// TestBodyCap: a request body over MaxBodyBytes fails the decode with a
// 400 instead of being slurped into memory.
func TestBodyCap(t *testing.T) {
	srv := New(store.New(nil), &Options{Workers: 1, MaxBodyBytes: 512})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	big := trajectoryRequest{Points: make([][2]float64, 200)} // ~2 KB encoded
	for k := range big.Points {
		big.Points[k] = [2]float64{1, float64(k) / 1000}
	}
	call(t, ts, "POST", "/trajectories", big, nil, http.StatusBadRequest)

	small := trajectoryRequest{Points: [][2]float64{{1, 2}, {1.1, 2.1}}}
	call(t, ts, "POST", "/trajectories", small, nil, http.StatusOK)
}

// TestConcurrentDiscover hammers one trajectory from several goroutines:
// responses must all be identical and the run must be race-clean (the CI
// race job executes this test under -race).
func TestConcurrentDiscover(t *testing.T) {
	ts, _ := harness(t)
	id := upload(t, ts, fixture(t, 9, 160))

	var ref motifResponse
	call(t, ts, "POST", "/discover", discoverRequest{ID: id, Xi: 8}, &ref, http.StatusOK)

	const parallel = 8
	results := make([]motifResponse, parallel)
	errs := make(chan error, parallel)
	for k := 0; k < parallel; k++ {
		go func(k int) {
			b, _ := json.Marshal(discoverRequest{ID: id, Xi: 8})
			resp, err := http.Post(ts.URL+"/discover", "application/json", bytes.NewReader(b))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs <- json.NewDecoder(resp.Body).Decode(&results[k])
		}(k)
	}
	for k := 0; k < parallel; k++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for k := range results {
		if results[k].Distance != ref.Distance || results[k].A != ref.A || results[k].B != ref.B {
			t.Errorf("concurrent response %d differs: %+v vs %+v", k, results[k], ref)
		}
	}
}
