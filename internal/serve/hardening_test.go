package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"trajmotif/internal/store"
)

// --- decode bugfixes ---

// TestTrailingGarbageRejected: a concatenated second JSON body used to
// be silently ignored — the decoder stopped at the first value. It is a
// malformed request and must be a 400.
func TestTrailingGarbageRejected(t *testing.T) {
	ts, _ := harness(t)
	id := upload(t, ts, fixture(t, 61, 60))

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/discover", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	// The issue's literal case: two concatenated objects.
	if code := post(`{"xi":3}{"xi":9}`); code != http.StatusBadRequest {
		t.Errorf("concatenated bodies: status %d, want 400", code)
	}
	if code := post(fmt.Sprintf(`{"id":%q,"xi":8} trailing`, id)); code != http.StatusBadRequest {
		t.Errorf("trailing token: status %d, want 400", code)
	}
	// Trailing whitespace/newlines are fine — that is how encoders emit.
	if code := post(fmt.Sprintf(`{"id":%q,"xi":8}`+"\n  \n", id)); code != http.StatusOK {
		t.Errorf("trailing whitespace: status %d, want 200", code)
	}
}

// TestBulkBodyCap413: an oversize bulk upload that never yields a
// record is a 413, matching the single-object decode path.
func TestBulkBodyCap413(t *testing.T) {
	srv := New(store.New(nil), &Options{Workers: 1, MaxBodyBytes: 24})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// One record far over the 24-byte cap: nothing decodes, 413.
	body := `{"points":[[1,2],[1.1,2.1],[1.2,2.2],[1.3,2.3]]}` + "\n"
	resp, err := http.Post(ts.URL+"/trajectories/bulk", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize bulk: status %d, want 413", resp.StatusCode)
	}
}

// --- admission control ---

// TestAdmissionSemaphore unit-tests the weighted FIFO semaphore.
func TestAdmissionSemaphore(t *testing.T) {
	a := newAdmission(4, 1, 50*time.Millisecond)

	w1, ok := a.acquire(3)
	if !ok || w1 != 3 {
		t.Fatalf("first acquire: charged %d ok %v", w1, ok)
	}
	// Oversized weight clamps to capacity instead of deadlocking.
	if charged, ok := a.acquire(99); ok || charged != 0 {
		t.Fatalf("oversized acquire with slots held should queue then time out, got ok=%v", ok)
	}
	// Queue bound: one waiter fits, the second is rejected immediately.
	done := make(chan bool, 2)
	go func() { _, ok := a.acquire(2); done <- ok }()
	for {
		if _, queued := a.snapshot(); queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := a.acquire(1); ok {
		t.Error("second waiter admitted past the queue bound")
	}
	// Releasing lets the queued waiter through.
	a.release(w1)
	if !<-done {
		t.Error("queued waiter was not admitted after release")
	}
	a.release(2)
	if inUse, queued := a.snapshot(); inUse != 0 || queued != 0 {
		t.Errorf("final snapshot: inUse=%d queued=%d", inUse, queued)
	}
}

// TestAdmissionClampAdmitsAlone: a request heavier than the whole
// capacity is clamped and admitted when the server is idle.
func TestAdmissionClampAdmitsAlone(t *testing.T) {
	a := newAdmission(2, 0, time.Millisecond)
	charged, ok := a.acquire(16)
	if !ok || charged != 2 {
		t.Fatalf("oversized request on an idle server: charged %d ok %v, want 2 true", charged, ok)
	}
	a.release(charged)
}

// TestSemaphoreOverflow429: with capacity held, a search request is
// rejected with 429 and a Retry-After header; releasing restores
// service. Deterministic — the test holds the semaphore directly.
func TestSemaphoreOverflow429(t *testing.T) {
	srv := New(store.New(nil), &Options{
		Workers:               1,
		MaxConcurrentSearches: 1,
		MaxQueuedSearches:     -1, // no queue: reject immediately
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	id := upload(t, ts, fixture(t, 62, 60))

	charged, ok := srv.sem.acquire(1)
	if !ok {
		t.Fatal("could not hold the semaphore")
	}
	b, _ := json.Marshal(discoverRequest{ID: id, Xi: 8})
	resp, err := http.Post(ts.URL+"/discover", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var e errorResponse
	_ = json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server: status %d, want 429 (%s)", resp.StatusCode, e.Error)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}

	// Non-search endpoints stay up while searches are saturated.
	call(t, ts, "GET", "/healthz", nil, nil, http.StatusOK)
	call(t, ts, "GET", "/stats", nil, nil, http.StatusOK)
	call(t, ts, "GET", "/metrics", nil, nil, http.StatusOK)

	srv.sem.release(charged)
	var m motifResponse
	call(t, ts, "POST", "/discover", discoverRequest{ID: id, Xi: 8}, &m, http.StatusOK)

	var st serverStats
	call(t, ts, "GET", "/stats", nil, &st, http.StatusOK)
	if st.Rejected != 1 {
		t.Errorf("stats.rejected = %d, want 1", st.Rejected)
	}
}

// TestAdmissionQueueDrains: capacity 1 with a deep queue serializes a
// concurrent burst — every request eventually succeeds with the
// identical byte-deterministic response, none is dropped.
func TestAdmissionQueueDrains(t *testing.T) {
	srv := New(store.New(nil), &Options{
		Workers:               1,
		MaxConcurrentSearches: 1,
		MaxQueuedSearches:     16,
		QueueWait:             30 * time.Second,
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	id := upload(t, ts, fixture(t, 63, 120))

	var ref motifResponse
	call(t, ts, "POST", "/discover", discoverRequest{ID: id, Xi: 8}, &ref, http.StatusOK)

	const burst = 8
	var wg sync.WaitGroup
	results := make([]motifResponse, burst)
	errs := make([]error, burst)
	for k := 0; k < burst; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			b, _ := json.Marshal(discoverRequest{ID: id, Xi: 8})
			resp, err := http.Post(ts.URL+"/discover", "application/json", bytes.NewReader(b))
			if err != nil {
				errs[k] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[k] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs[k] = json.NewDecoder(resp.Body).Decode(&results[k])
		}(k)
	}
	wg.Wait()
	for k := 0; k < burst; k++ {
		if errs[k] != nil {
			t.Fatalf("burst request %d: %v", k, errs[k])
		}
		if results[k].Distance != ref.Distance || results[k].A != ref.A || results[k].B != ref.B ||
			results[k].Stats.DPCells != ref.Stats.DPCells {
			t.Errorf("burst response %d differs under admission: %+v vs %+v", k, results[k], ref)
		}
	}
}

// --- /metrics ---

// parseMetrics parses the Prometheus text exposition into name{labels}
// -> value, failing on any syntactically invalid sample line.
func parseMetrics(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("metrics line without a value: %q", line)
		}
		key, valStr := line[:idx], line[idx+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("metrics line %q: bad value: %v", line, err)
		}
		if _, dup := out[key]; dup {
			t.Fatalf("duplicate metrics sample %q", key)
		}
		out[key] = val
	}
	return out
}

func scrape(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	var b strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return parseMetrics(t, b.String())
}

// TestMetricsEndpoint: request counters, latency histograms, gauges and
// eviction counters are exposed and internally consistent.
func TestMetricsEndpoint(t *testing.T) {
	st := store.New(&store.Options{MaxTrajectories: 2})
	srv := New(st, &Options{Workers: 1, MaxConcurrentSearches: 2})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// Three uploads against a cap of 2: one LRU eviction. Then two
	// discovers and one manual delete.
	var ids []store.ID
	for seed := int64(71); seed <= 73; seed++ {
		ids = append(ids, upload(t, ts, fixture(t, seed, 60)))
	}
	call(t, ts, "POST", "/discover", discoverRequest{ID: ids[2], Xi: 6}, nil, http.StatusOK)
	call(t, ts, "POST", "/discover", discoverRequest{ID: ids[2], Xi: 6}, nil, http.StatusOK)
	call(t, ts, "DELETE", "/trajectories/"+string(ids[2]), nil, nil, http.StatusOK)

	m := scrape(t, ts)

	expect := func(key string, want float64) {
		t.Helper()
		got, ok := m[key]
		if !ok {
			t.Errorf("metric %s missing", key)
			return
		}
		if got != want {
			t.Errorf("%s = %v, want %v", key, got, want)
		}
	}

	expect(`motifserve_requests_total{endpoint="/trajectories",code="200"}`, 3)
	expect(`motifserve_requests_total{endpoint="/discover",code="200"}`, 2)
	expect(`motifserve_requests_total{endpoint="/trajectories/{id}",code="200"}`, 1)
	expect(`motifserve_trajectory_evictions_total{cause="lru"}`, 1)
	expect(`motifserve_trajectory_evictions_total{cause="manual"}`, 1)
	expect(`motifserve_trajectory_evictions_total{cause="ttl"}`, 0)
	expect(`motifserve_trajectories`, 1)
	expect(`motifserve_artifacts_reused_total`, 2) // second discover reused grid+bounds
	expect(`motifserve_admission_worker_capacity`, 2)
	expect(`motifserve_admission_workers_in_use`, 0)
	expect(`motifserve_admission_rejected_total`, 0)

	// Histogram consistency per endpoint: +Inf bucket == count, buckets
	// monotone, sum non-negative.
	for _, ep := range []string{"/trajectories", "/discover"} {
		count := m[fmt.Sprintf(`motifserve_request_duration_seconds_count{endpoint=%q}`, ep)]
		inf := m[fmt.Sprintf(`motifserve_request_duration_seconds_bucket{endpoint=%q,le="+Inf"}`, ep)]
		if count == 0 || count != inf {
			t.Errorf("%s histogram: count %v, +Inf bucket %v", ep, count, inf)
		}
		prev := 0.0
		for _, le := range latencyBuckets {
			key := fmt.Sprintf(`motifserve_request_duration_seconds_bucket{endpoint=%q,le=%q}`,
				ep, strconv.FormatFloat(le, 'g', -1, 64))
			v, ok := m[key]
			if !ok {
				t.Fatalf("missing bucket %s", key)
			}
			if v < prev {
				t.Errorf("%s bucket le=%v not monotone: %v < %v", ep, le, v, prev)
			}
			prev = v
		}
		if m[fmt.Sprintf(`motifserve_request_duration_seconds_sum{endpoint=%q}`, ep)] < 0 {
			t.Errorf("%s histogram sum negative", ep)
		}
	}

	// The scrape itself shows up on the next scrape; the gauge set stays
	// parseable with in-flight traffic accounted.
	m2 := scrape(t, ts)
	if m2[`motifserve_requests_total{endpoint="/metrics",code="200"}`] < 1 {
		t.Error("the /metrics endpoint does not count itself")
	}
	if _, ok := m2[`motifserve_in_flight_requests`]; !ok {
		t.Error("in-flight gauge missing")
	}
}

// TestServerTimingHeader: every response carries the Server-Timing
// compute duration.
func TestServerTimingHeader(t *testing.T) {
	ts, _ := harness(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	stv := resp.Header.Get("Server-Timing")
	if !strings.HasPrefix(stv, "app;dur=") {
		t.Fatalf("Server-Timing = %q", stv)
	}
	if _, err := strconv.ParseFloat(strings.TrimPrefix(stv, "app;dur="), 64); err != nil {
		t.Errorf("Server-Timing duration unparsable: %q (%v)", stv, err)
	}
}

// --- auto-eviction through the serve tier ---

// TestServeAutoEviction: a MaxTrajectories-capped store behind the
// server keeps the registry bounded; evicted ids 404 like deleted ones
// and the /knn+/join defaults shrink, while queried (touched) ids stay.
func TestServeAutoEviction(t *testing.T) {
	st := store.New(&store.Options{MaxTrajectories: 3})
	srv := New(st, &Options{Workers: 1})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	var ids []store.ID
	for seed := int64(81); seed <= 83; seed++ {
		ids = append(ids, upload(t, ts, fixture(t, seed, 60)))
	}
	// Touch ids[0] so ids[1] is the LRU victim for the next upload.
	call(t, ts, "POST", "/discover", discoverRequest{ID: ids[0], Xi: 6}, nil, http.StatusOK)
	ids = append(ids, upload(t, ts, fixture(t, 84, 60)))

	call(t, ts, "POST", "/discover", discoverRequest{ID: ids[1], Xi: 6}, nil, http.StatusNotFound)
	call(t, ts, "POST", "/discover", discoverRequest{ID: ids[0], Xi: 6}, nil, http.StatusOK)

	var knnOut knnResponse
	call(t, ts, "POST", "/knn", knnRequest{Query: ids[0], K: 5}, &knnOut, http.StatusOK)
	if len(knnOut.Neighbors) != 2 { // 3 resident minus the query
		t.Errorf("knn default over capped registry: %d neighbors, want 2", len(knnOut.Neighbors))
	}
	for _, nb := range knnOut.Neighbors {
		if nb.ID == ids[1] {
			t.Error("evicted trajectory still in the knn default dataset")
		}
	}

	var stats serverStats
	call(t, ts, "GET", "/stats", nil, &stats, http.StatusOK)
	if stats.Trajectories != 3 || stats.EvictedLRU != 1 {
		t.Errorf("stats: trajectories=%d evictedLRU=%d, want 3/1", stats.Trajectories, stats.EvictedLRU)
	}
}

// TestKNNDefaultDuringAutoEviction is the PR 5 skip-not-404 churn
// regression re-run with *automatic* eviction as the removal driver: a
// tightly capped registry churns under concurrent uploads while /knn
// and /join default-dataset requests run against it. An id vanishing
// between the IDs snapshot and its resolution must be skipped, never a
// 404 or 500. (A 404 from /knn is still legitimate when the *query*
// trajectory itself was evicted — the LRU makes no promise to a cold
// id — so /join, which names no id, carries the strict invariant.)
// The CI race job runs this under -race.
func TestKNNDefaultDuringAutoEviction(t *testing.T) {
	st := store.New(&store.Options{MaxTrajectories: 3})
	srv := New(st, &Options{Workers: 1})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	query := upload(t, ts, fixture(t, 91, 40))

	bodies := make([][]byte, 30)
	for k := range bodies {
		tr := fixture(t, int64(200+k), 40)
		req := trajectoryRequest{Points: make([][2]float64, tr.Len())}
		for j, p := range tr.Points {
			req.Points[j] = [2]float64{p.Lat, p.Lng}
		}
		bodies[k], _ = json.Marshal(req)
	}
	done := make(chan error, 1)
	go func() {
		for k := range bodies {
			resp, err := http.Post(ts.URL+"/trajectories", "application/json", bytes.NewReader(bodies[k]))
			if err != nil {
				done <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				done <- fmt.Errorf("churn upload %d: status %d", k, resp.StatusCode)
				return
			}
		}
		done <- nil
	}()
	sawKNNOK := false
	for k := 0; k < 30; k++ {
		b, _ := json.Marshal(knnRequest{Query: query, K: 1})
		resp, err := http.Post(ts.URL+"/knn", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			sawKNNOK = true
		case http.StatusNotFound: // the query itself was evicted
		default:
			t.Fatalf("knn default mid-eviction-churn: status %d", resp.StatusCode)
		}
		b, _ = json.Marshal(joinRequest{Eps: 1e9})
		resp, err = http.Post(ts.URL+"/join", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("join default mid-eviction-churn: status %d", resp.StatusCode)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !sawKNNOK {
		t.Error("no knn request ever found its query — churn never overlapped")
	}

	if missing, stale := func() ([]store.ID, int) { return srv.Store().SpatialParity() }(); len(missing) != 0 || stale != 0 {
		t.Errorf("spatial parity after eviction churn: missing=%v stale=%d", missing, stale)
	}
	if n := srv.Store().Len(); n > 3 {
		t.Errorf("registry grew to %d past the cap", n)
	}
}

// TestServeTTLEviction: a TTL'd registry expires idle trajectories on
// the next access, visible through /stats and the evictions counter.
func TestServeTTLEviction(t *testing.T) {
	st := store.New(&store.Options{TrajectoryTTL: 30 * time.Millisecond})
	srv := New(st, &Options{Workers: 1})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	id := upload(t, ts, fixture(t, 95, 40))
	time.Sleep(60 * time.Millisecond)
	call(t, ts, "POST", "/discover", discoverRequest{ID: id, Xi: 6}, nil, http.StatusNotFound)

	var stats serverStats
	call(t, ts, "GET", "/stats", nil, &stats, http.StatusOK)
	if stats.Trajectories != 0 || stats.EvictedTTL != 1 {
		t.Errorf("stats after TTL expiry: trajectories=%d evictedTTL=%d, want 0/1",
			stats.Trajectories, stats.EvictedTTL)
	}
	m := scrape(t, ts)
	if m[`motifserve_trajectory_evictions_total{cause="ttl"}`] != 1 {
		t.Errorf("ttl eviction not in /metrics: %v", m[`motifserve_trajectory_evictions_total{cause="ttl"}`])
	}
}
