package dmatrix

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary codec for Matrix, used by the store's disk artifact tier. The
// encoding is exact: float64 values round-trip bit-for-bit (float32
// matrices store the 4-byte values), so a matrix read back from disk is
// indistinguishable from the one written — the property the disk tier's
// byte-identical restart parity rests on.
//
// Layout (all little-endian):
//
//	byte 0      storage mode: 0 = float64, 1 = float32
//	bytes 1-8   n (uint64)
//	bytes 9-16  m (uint64)
//	then n*m values, 8 or 4 bytes each by mode

const (
	matrixHeaderLen = 1 + 8 + 8
	modeFloat64     = 0
	modeFloat32     = 1
)

// Marshal encodes the matrix.
func (m *Matrix) Marshal() []byte {
	if m.vals32 != nil {
		out := make([]byte, matrixHeaderLen+4*len(m.vals32))
		out[0] = modeFloat32
		binary.LittleEndian.PutUint64(out[1:], uint64(m.n))
		binary.LittleEndian.PutUint64(out[9:], uint64(m.m))
		for k, v := range m.vals32 {
			binary.LittleEndian.PutUint32(out[matrixHeaderLen+4*k:], math.Float32bits(v))
		}
		return out
	}
	out := make([]byte, matrixHeaderLen+8*len(m.vals))
	out[0] = modeFloat64
	binary.LittleEndian.PutUint64(out[1:], uint64(m.n))
	binary.LittleEndian.PutUint64(out[9:], uint64(m.m))
	for k, v := range m.vals {
		binary.LittleEndian.PutUint64(out[matrixHeaderLen+8*k:], math.Float64bits(v))
	}
	return out
}

// Unmarshal decodes a matrix produced by Marshal, rejecting any size or
// mode inconsistency (the disk tier treats an error as a torn artifact).
func Unmarshal(data []byte) (*Matrix, error) {
	if len(data) < matrixHeaderLen {
		return nil, fmt.Errorf("dmatrix: %d bytes is shorter than the header", len(data))
	}
	mode := data[0]
	n := binary.LittleEndian.Uint64(data[1:])
	mm := binary.LittleEndian.Uint64(data[9:])
	cells := n * mm
	// Guard the multiplication and the allocation against a corrupt header.
	const maxCells = 1 << 40
	if (mm != 0 && cells/mm != n) || cells > maxCells {
		return nil, fmt.Errorf("dmatrix: implausible dimensions %dx%d", n, mm)
	}
	body := data[matrixHeaderLen:]
	switch mode {
	case modeFloat64:
		if uint64(len(body)) != 8*cells {
			return nil, fmt.Errorf("dmatrix: %d value bytes for %dx%d float64 grid", len(body), n, mm)
		}
		m := &Matrix{n: int(n), m: int(mm), vals: make([]float64, cells)}
		for k := range m.vals {
			m.vals[k] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*k:]))
		}
		return m, nil
	case modeFloat32:
		if uint64(len(body)) != 4*cells {
			return nil, fmt.Errorf("dmatrix: %d value bytes for %dx%d float32 grid", len(body), n, mm)
		}
		m := &Matrix{n: int(n), m: int(mm), vals32: make([]float32, cells)}
		for k := range m.vals32 {
			m.vals32[k] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*k:]))
		}
		return m, nil
	default:
		return nil, fmt.Errorf("dmatrix: unknown storage mode %d", mode)
	}
}
