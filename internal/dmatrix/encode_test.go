package dmatrix

import (
	"reflect"
	"testing"

	"trajmotif/internal/geo"
)

func codecPoints(n int, seed float64) []geo.Point {
	pts := make([]geo.Point, n)
	for k := range pts {
		pts[k] = geo.Point{Lat: 39 + seed*0.01 + float64(k)*0.001, Lng: 116 + float64(k%7)*0.002}
	}
	return pts
}

func TestMatrixMarshalRoundTrip(t *testing.T) {
	a := codecPoints(9, 1)
	b := codecPoints(7, 2)
	for _, tc := range []struct {
		name string
		m    *Matrix
	}{
		{"self", ComputeSelf(a, geo.Haversine)},
		{"cross", ComputeCross(a, b, geo.Haversine)},
		{"float32", ComputeCross(a, b, geo.Haversine).Compact32()},
		{"single", FromRows([][]float64{{42}})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Unmarshal(tc.m.Marshal())
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if !reflect.DeepEqual(got, tc.m) {
				t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, tc.m)
			}
			if got.Bytes() != tc.m.Bytes() {
				t.Fatalf("Bytes: got %d want %d", got.Bytes(), tc.m.Bytes())
			}
			if got.Float32() != tc.m.Float32() {
				t.Fatalf("Float32 mode lost")
			}
		})
	}
}

func TestMatrixUnmarshalRejectsCorruption(t *testing.T) {
	enc := ComputeSelf(codecPoints(5, 3), geo.Haversine).Marshal()
	// Every strict prefix must fail: the grid either loses header or
	// value bytes.
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Unmarshal(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// A bogus storage mode and an absurd dimension header must fail too.
	bad := append([]byte(nil), enc...)
	bad[0] = 7
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("unknown mode accepted")
	}
	bad = append([]byte(nil), enc...)
	for k := 1; k < 9; k++ {
		bad[k] = 0xff
	}
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("implausible dimensions accepted")
	}
}
