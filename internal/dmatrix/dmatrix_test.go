package dmatrix

import (
	"math"
	"testing"

	"trajmotif/internal/dist"
	"trajmotif/internal/geo"
)

func pts(xy ...float64) []geo.Point {
	out := make([]geo.Point, len(xy)/2)
	for i := range out {
		out[i] = geo.Point{Lng: xy[2*i], Lat: xy[2*i+1]}
	}
	return out
}

func TestComputeSelfSymmetric(t *testing.T) {
	p := pts(0, 0, 3, 4, 6, 8, 1, 1)
	m := ComputeSelf(p, geo.Euclidean)
	n, mm := m.Dims()
	if n != 4 || mm != 4 {
		t.Fatalf("Dims = %d,%d", n, mm)
	}
	for i := 0; i < 4; i++ {
		if m.At(i, i) != 0 {
			t.Errorf("diagonal At(%d,%d) = %g", i, i, m.At(i, i))
		}
		for j := 0; j < 4; j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Errorf("asymmetric at (%d,%d)", i, j)
			}
			want := geo.Euclidean(p[i], p[j])
			if math.Abs(m.At(i, j)-want) > 1e-12 {
				t.Errorf("At(%d,%d) = %g, want %g", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestComputeCross(t *testing.T) {
	a := pts(0, 0, 1, 0)
	b := pts(0, 3, 4, 0, 0, 0)
	m := ComputeCross(a, b, geo.Euclidean)
	n, mm := m.Dims()
	if n != 2 || mm != 3 {
		t.Fatalf("Dims = %d,%d", n, mm)
	}
	if m.At(0, 0) != 3 || m.At(0, 1) != 4 || m.At(0, 2) != 0 {
		t.Errorf("first row wrong: %g %g %g", m.At(0, 0), m.At(0, 1), m.At(0, 2))
	}
	if m.Bytes() != 6*8 {
		t.Errorf("Bytes = %d", m.Bytes())
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %g", m.At(1, 0))
	}
	defer func() {
		if recover() == nil {
			t.Error("ragged rows should panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFlyEquivalence(t *testing.T) {
	a := pts(0, 0, 1, 2, 3, 4)
	b := pts(5, 5, 6, 6)
	m := ComputeCross(a, b, geo.Euclidean)
	f := NewFlyCross(a, b, geo.Euclidean)
	fn, fm := f.Dims()
	if fn != 3 || fm != 2 {
		t.Fatalf("Fly dims = %d,%d", fn, fm)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if m.At(i, j) != f.At(i, j) {
				t.Errorf("mismatch at (%d,%d)", i, j)
			}
		}
	}
	fs := NewFlySelf(a, geo.Euclidean)
	if got := fs.At(1, 1); got != 0 {
		t.Errorf("self Fly diagonal = %g", got)
	}
}

// TestGridsFeedKernel pins the contract the searchers rely on: both grid
// implementations satisfy the canonical kernel's Grid interface as-is, and
// windows of a precomputed Matrix and an on-the-fly Fly grid produce the
// same DFD through dist.DFDFromGridCapped as the point-form kernel.
func TestGridsFeedKernel(t *testing.T) {
	a := pts(0, 0, 1, 0, 2, 1, 3, 1, 4, 0)
	b := pts(0, 1, 1, 1, 2, 2, 3, 0)
	m := ComputeCross(a, b, geo.Euclidean)
	f := NewFlyCross(a, b, geo.Euclidean)
	for i0 := 0; i0 < len(a); i0++ {
		for j0 := 0; j0 < len(b); j0++ {
			want := dist.DFD(a[i0:], b[j0:], geo.Euclidean)
			dm, ex := dist.DFDFromGridCapped(m, i0, len(a)-1, j0, len(b)-1, math.Inf(1))
			if ex || math.Abs(dm-want) > 1e-12 {
				t.Errorf("Matrix window (%d.., %d..) = %g (exceeded=%v), want %g", i0, j0, dm, ex, want)
			}
			df, ex := dist.DFDFromGridCapped(f, i0, len(a)-1, j0, len(b)-1, math.Inf(1))
			if ex || df != dm {
				t.Errorf("Fly window (%d.., %d..) = %g, Matrix %g", i0, j0, df, dm)
			}
		}
	}
}
