// Package dmatrix provides the ground-distance grid dG underlying every
// algorithm in the paper: dG(i,j) is the ground distance between the i-th
// point of the first leg's trajectory and the j-th point of the second
// leg's trajectory (§3). BruteDP, BTM and GTM precompute the full matrix
// for O(1) access (the paper's "precompute all pairs of ground distances"
// optimization); GTM* instead evaluates distances on the fly through the
// same Grid interface to achieve its O(n) space bound (§5.5, Idea i).
package dmatrix

import (
	"sync"

	"trajmotif/internal/geo"
)

// Grid is read-only access to ground distances between two point
// sequences. Dims returns (n, m): At accepts 0 <= i < n, 0 <= j < m.
type Grid interface {
	At(i, j int) float64
	Dims() (n, m int)
}

// Matrix is a fully materialized n x m ground-distance grid.
type Matrix struct {
	n, m int
	vals []float64
}

// ComputeCross materializes the grid between two trajectories' points.
func ComputeCross(a, b []geo.Point, df geo.DistanceFunc) *Matrix {
	return ComputeCrossParallel(a, b, df, 1)
}

// ComputeCrossParallel is ComputeCross with the row fill sharded across
// workers. Each cell is an independent df evaluation, so the result is
// bit-identical for every worker count; df must be safe for concurrent
// use when workers > 1.
func ComputeCrossParallel(a, b []geo.Point, df geo.DistanceFunc, workers int) *Matrix {
	m := &Matrix{n: len(a), m: len(b), vals: make([]float64, len(a)*len(b))}
	fillRows(workers, len(a), func(i int) {
		pa := a[i]
		row := m.vals[i*m.m : (i+1)*m.m]
		for j, pb := range b {
			row[j] = df(pa, pb)
		}
	})
	return m
}

// ComputeSelf materializes the symmetric grid of a single trajectory,
// computing each unordered pair once.
func ComputeSelf(pts []geo.Point, df geo.DistanceFunc) *Matrix {
	return ComputeSelfParallel(pts, df, 1)
}

// ComputeSelfParallel is ComputeSelf sharded across workers: the strict
// upper triangle is filled row-parallel (disjoint writes), then mirrored
// row-parallel after a barrier. Bit-identical for every worker count.
func ComputeSelfParallel(pts []geo.Point, df geo.DistanceFunc, workers int) *Matrix {
	n := len(pts)
	m := &Matrix{n: n, m: n, vals: make([]float64, n*n)}
	fillRows(workers, n, func(i int) {
		row := m.vals[i*n : (i+1)*n]
		for j := i + 1; j < n; j++ {
			row[j] = df(pts[i], pts[j])
		}
	})
	fillRows(workers, n, func(i int) {
		row := m.vals[i*n : (i+1)*n]
		for j := 0; j < i; j++ {
			row[j] = m.vals[j*n+i]
		}
	})
	return m
}

// fillRows runs fn(i) for every row 0 <= i < n, fanning the rows over a
// bounded worker pool in contiguous chunks. fn must write only its own
// row. workers <= 1 (or a trivial n) runs inline.
func fillRows(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// FromRows builds a matrix from explicit row data; rows must be rectangular.
// It backs unit tests that exercise hand-built grids.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return &Matrix{}
	}
	m := &Matrix{n: len(rows), m: len(rows[0]), vals: make([]float64, 0, len(rows)*len(rows[0]))}
	for _, r := range rows {
		if len(r) != m.m {
			panic("dmatrix: ragged rows")
		}
		m.vals = append(m.vals, r...)
	}
	return m
}

// At returns dG(i, j).
func (m *Matrix) At(i, j int) float64 { return m.vals[i*m.m+j] }

// Dims returns the grid dimensions.
func (m *Matrix) Dims() (int, int) { return m.n, m.m }

// Bytes returns the memory footprint of the value storage, used by the
// space-consumption experiment (Figure 19).
func (m *Matrix) Bytes() int64 { return int64(len(m.vals)) * 8 }

// Transposed materializes the transpose of m — the grid of (b, a) given
// the grid of (a, b) — by copying values instead of re-evaluating the
// ground distance per cell. Ground distances are symmetric (the
// geo.DistanceFunc contract), so the result is bit-identical to
// ComputeCross(b, a, df) at a fraction of the cost; the serve-mode store
// uses it to answer swapped-pair grid requests from one cached matrix.
func (m *Matrix) Transposed() *Matrix {
	t := &Matrix{n: m.m, m: m.n, vals: make([]float64, len(m.vals))}
	for i := 0; i < m.n; i++ {
		row := m.vals[i*m.m : (i+1)*m.m]
		for j, v := range row {
			t.vals[j*t.m+i] = v
		}
	}
	return t
}

// Fly evaluates ground distances on demand without storing them. It is the
// grid used by GTM* (§5.5, Idea i): each At call costs one ground-distance
// evaluation, trading CPU for the O(n^2) matrix memory.
type Fly struct {
	A, B []geo.Point
	DF   geo.DistanceFunc
}

// NewFlySelf returns an on-the-fly grid over a single trajectory.
func NewFlySelf(pts []geo.Point, df geo.DistanceFunc) *Fly {
	return &Fly{A: pts, B: pts, DF: df}
}

// NewFlyCross returns an on-the-fly grid between two trajectories.
func NewFlyCross(a, b []geo.Point, df geo.DistanceFunc) *Fly {
	return &Fly{A: a, B: b, DF: df}
}

// At computes dG(i, j) directly from the points.
func (f *Fly) At(i, j int) float64 { return f.DF(f.A[i], f.B[j]) }

// Dims returns the grid dimensions.
func (f *Fly) Dims() (int, int) { return len(f.A), len(f.B) }
