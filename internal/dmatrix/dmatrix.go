// Package dmatrix provides the ground-distance grid dG underlying every
// algorithm in the paper: dG(i,j) is the ground distance between the i-th
// point of the first leg's trajectory and the j-th point of the second
// leg's trajectory (§3). BruteDP, BTM and GTM precompute the full matrix
// for O(1) access (the paper's "precompute all pairs of ground distances"
// optimization); GTM* instead evaluates distances on the fly through the
// same Grid interface to achieve its O(n) space bound (§5.5, Idea i).
package dmatrix

import (
	"sync"

	"trajmotif/internal/geo"
)

// Grid is read-only access to ground distances between two point
// sequences. Dims returns (n, m): At accepts 0 <= i < n, 0 <= j < m.
type Grid interface {
	At(i, j int) float64
	Dims() (n, m int)
}

// Matrix is a fully materialized n x m ground-distance grid. Values are
// stored in float64 by default; Compact32 produces an opt-in float32
// variant that halves memory and cache traffic at ~1e-7 relative
// rounding (values are still computed in float64 and rounded once).
type Matrix struct {
	n, m   int
	vals   []float64
	vals32 []float32
}

// ComputeCross materializes the grid between two trajectories' points.
func ComputeCross(a, b []geo.Point, df geo.DistanceFunc) *Matrix {
	return ComputeCrossParallel(a, b, df, 1)
}

// ComputeCrossParallel is ComputeCross with the row fill sharded across
// workers. Each cell is an independent df evaluation, so the result is
// bit-identical for every worker count; df must be safe for concurrent
// use when workers > 1.
func ComputeCrossParallel(a, b []geo.Point, df geo.DistanceFunc, workers int) *Matrix {
	m := &Matrix{n: len(a), m: len(b), vals: make([]float64, len(a)*len(b))}
	if geo.IsHaversine(df) {
		// Hoist the cos(lat) factors: one per point instead of two per
		// cell. HaversinePrepared is bit-identical to Haversine.
		cosB := geo.CosLats(b)
		fillRows(workers, len(a), func(i int) {
			pa := a[i]
			ca := geo.CosLat(pa)
			row := m.vals[i*m.m : (i+1)*m.m]
			for j, pb := range b {
				row[j] = geo.HaversinePrepared(pa, pb, ca, cosB[j])
			}
		})
		return m
	}
	fillRows(workers, len(a), func(i int) {
		pa := a[i]
		row := m.vals[i*m.m : (i+1)*m.m]
		for j, pb := range b {
			row[j] = df(pa, pb)
		}
	})
	return m
}

// ComputeSelf materializes the symmetric grid of a single trajectory,
// computing each unordered pair once.
func ComputeSelf(pts []geo.Point, df geo.DistanceFunc) *Matrix {
	return ComputeSelfParallel(pts, df, 1)
}

// ComputeSelfParallel is ComputeSelf sharded across workers: the strict
// upper triangle is filled row-parallel (disjoint writes), then mirrored
// row-parallel after a barrier. Bit-identical for every worker count.
func ComputeSelfParallel(pts []geo.Point, df geo.DistanceFunc, workers int) *Matrix {
	n := len(pts)
	m := &Matrix{n: n, m: n, vals: make([]float64, n*n)}
	if geo.IsHaversine(df) {
		cos := geo.CosLats(pts)
		fillRows(workers, n, func(i int) {
			pi, ci := pts[i], cos[i]
			row := m.vals[i*n : (i+1)*n]
			for j := i + 1; j < n; j++ {
				row[j] = geo.HaversinePrepared(pi, pts[j], ci, cos[j])
			}
		})
	} else {
		fillRows(workers, n, func(i int) {
			row := m.vals[i*n : (i+1)*n]
			for j := i + 1; j < n; j++ {
				row[j] = df(pts[i], pts[j])
			}
		})
	}
	fillRows(workers, n, func(i int) {
		row := m.vals[i*n : (i+1)*n]
		for j := 0; j < i; j++ {
			row[j] = m.vals[j*n+i]
		}
	})
	return m
}

// fillRows runs fn(i) for every row 0 <= i < n, fanning the rows over a
// bounded worker pool in contiguous chunks. fn must write only its own
// row. workers <= 1 (or a trivial n) runs inline.
func fillRows(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// FromRows builds a matrix from explicit row data; rows must be rectangular.
// It backs unit tests that exercise hand-built grids.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return &Matrix{}
	}
	m := &Matrix{n: len(rows), m: len(rows[0]), vals: make([]float64, 0, len(rows)*len(rows[0]))}
	for _, r := range rows {
		if len(r) != m.m {
			panic("dmatrix: ragged rows")
		}
		m.vals = append(m.vals, r...)
	}
	return m
}

// At returns dG(i, j).
func (m *Matrix) At(i, j int) float64 {
	if m.vals32 != nil {
		return float64(m.vals32[i*m.m+j])
	}
	return m.vals[i*m.m+j]
}

// Dims returns the grid dimensions.
func (m *Matrix) Dims() (int, int) { return m.n, m.m }

// Float32 reports whether the matrix stores float32 values.
func (m *Matrix) Float32() bool { return m.vals32 != nil }

// Compact32 returns a float32-backed copy: every value computed in
// float64 and rounded once to the nearest float32 (≤ 2⁻²⁴ ≈ 6·10⁻⁸
// relative error for distances on Earth). Callers opt in explicitly —
// grids feed decision DPs through capped comparisons, so float32 grids
// yield float32-exact rather than float64-exact results and are gated
// by the equivalence suite, not the byte-parity suites.
func (m *Matrix) Compact32() *Matrix {
	if m.vals32 != nil {
		return m
	}
	t := &Matrix{n: m.n, m: m.m, vals32: make([]float32, len(m.vals))}
	for i, v := range m.vals {
		t.vals32[i] = float32(v)
	}
	return t
}

// Bytes returns the memory footprint of the value storage, used by the
// space-consumption experiment (Figure 19) and the store's byte budget.
func (m *Matrix) Bytes() int64 {
	if m.vals32 != nil {
		return int64(len(m.vals32)) * 4
	}
	return int64(len(m.vals)) * 8
}

// Transposed materializes the transpose of m — the grid of (b, a) given
// the grid of (a, b) — by copying values instead of re-evaluating the
// ground distance per cell. Ground distances are symmetric (the
// geo.DistanceFunc contract), so the result is bit-identical to
// ComputeCross(b, a, df) at a fraction of the cost; the serve-mode store
// uses it to answer swapped-pair grid requests from one cached matrix.
// A float32 matrix transposes to a float32 matrix.
func (m *Matrix) Transposed() *Matrix {
	if m.vals32 != nil {
		t := &Matrix{n: m.m, m: m.n, vals32: make([]float32, len(m.vals32))}
		for i := 0; i < m.n; i++ {
			row := m.vals32[i*m.m : (i+1)*m.m]
			for j, v := range row {
				t.vals32[j*t.m+i] = v
			}
		}
		return t
	}
	t := &Matrix{n: m.m, m: m.n, vals: make([]float64, len(m.vals))}
	for i := 0; i < m.n; i++ {
		row := m.vals[i*m.m : (i+1)*m.m]
		for j, v := range row {
			t.vals[j*t.m+i] = v
		}
	}
	return t
}

// Fly evaluates ground distances on demand without storing them. It is the
// grid used by GTM* (§5.5, Idea i): each At call costs one ground-distance
// evaluation, trading CPU for the O(n^2) matrix memory. The constructors
// detect the haversine metric and cache one cos(lat) per point, so each
// At pays two table lookups instead of two cos calls — bit-identical,
// since HaversinePrepared runs the same core.
type Fly struct {
	A, B []geo.Point
	DF   geo.DistanceFunc

	cosA, cosB []float64
}

// NewFlySelf returns an on-the-fly grid over a single trajectory.
func NewFlySelf(pts []geo.Point, df geo.DistanceFunc) *Fly {
	f := &Fly{A: pts, B: pts, DF: df}
	if geo.IsHaversine(df) {
		f.cosA = geo.CosLats(pts)
		f.cosB = f.cosA
	}
	return f
}

// NewFlyCross returns an on-the-fly grid between two trajectories.
func NewFlyCross(a, b []geo.Point, df geo.DistanceFunc) *Fly {
	f := &Fly{A: a, B: b, DF: df}
	if geo.IsHaversine(df) {
		f.cosA = geo.CosLats(a)
		f.cosB = geo.CosLats(b)
	}
	return f
}

// At computes dG(i, j) directly from the points.
func (f *Fly) At(i, j int) float64 {
	if f.cosA != nil {
		//lint:ignore preparedgate cosA is non-nil only when NewFlySelf/NewFlyCross saw geo.IsHaversine(df); the gate lives in the constructors
		return geo.HaversinePrepared(f.A[i], f.B[j], f.cosA[i], f.cosB[j])
	}
	return f.DF(f.A[i], f.B[j])
}

// Dims returns the grid dimensions.
func (f *Fly) Dims() (int, int) { return len(f.A), len(f.B) }
