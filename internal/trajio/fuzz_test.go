package trajio

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV parser never panics and that anything it
// accepts round-trips through the writer.
func FuzzReadCSV(f *testing.F) {
	f.Add("lat,lng\n39.9,116.4\n")
	f.Add("39.9,116.4,1000\n40.0,116.5,1010\n")
	f.Add("")
	f.Add("x\n")
	f.Add("1,2\n3,,\n")
	f.Add("91,0\n")
	f.Add("header,row,extra\n-5.5,12.25,99.5\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		// Accepted input must produce a valid, writable trajectory.
		if tr.Len() == 0 {
			t.Fatal("accepted an empty trajectory")
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip changed length: %d -> %d", tr.Len(), back.Len())
		}
	})
}

// FuzzScanner is the streaming parity oracle. The CSV/PLT legs are a
// tripwire, not an independent check: ReadCSV/ReadPLT ARE the scanners'
// first Next today, so they cannot diverge — these legs exist to fail
// loudly if anyone reintroduces a second parser or drive loop. The live
// assertions are the multi-record legs: NDJSON and multi-CSV streams
// must never panic, must terminate, and every yielded trajectory must be
// valid and writable.
func FuzzScanner(f *testing.F) {
	header := "a\r\nb\r\nc\r\nd\r\ne\r\nf\r\n"
	f.Add("lat,lng\n39.9,116.4\n39.91,116.41\n")
	f.Add("\uFEFF\n\nlat,lng\n39.9,116.4\n")
	f.Add("39.9,116.4,1000\n40.0,116.5,1010\n")
	f.Add(header + "39.9,116.4,0,0,0,2009-10-11,14:04:30\r\n")
	f.Add(header + "39.9,116.4,0,0,0,1899-12-30,00:00:00\r\n")
	f.Add("1,2\n1.1,2.1\n\n3,4\n3.1,4.1\n")
	f.Add(`{"points":[[1,2],[1.1,2.1]],"times":[5,6]}` + "\n")
	f.Add(`{"points":[[999,2]]}` + "\n" + `{"points":[[1,2]]}` + "\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		// CSV: acceptance and output must match ReadCSV exactly.
		slurped, serr := ReadCSV(strings.NewReader(in))
		streamed, terr := NewCSVScanner(strings.NewReader(in)).Next()
		if (serr == nil) != (terr == nil) {
			t.Fatalf("csv acceptance diverged: slurp err %v, stream err %v", serr, terr)
		}
		if serr == nil && !reflect.DeepEqual(slurped, streamed) {
			t.Fatalf("csv parity broken:\nslurp  %+v\nstream %+v", slurped, streamed)
		}

		// PLT: same oracle.
		slurped, serr = ReadPLT(strings.NewReader(in))
		streamed, terr = NewPLTScanner(strings.NewReader(in)).Next()
		if (serr == nil) != (terr == nil) {
			t.Fatalf("plt acceptance diverged: slurp err %v, stream err %v", serr, terr)
		}
		if serr == nil && !reflect.DeepEqual(slurped, streamed) {
			t.Fatalf("plt parity broken:\nslurp  %+v\nstream %+v", slurped, streamed)
		}

		// Multi-record streams: must never panic and must terminate; every
		// yielded trajectory must be valid and NDJSON-writable.
		for _, sc := range []Scanner{
			NewMultiCSVScanner(strings.NewReader(in)),
			NewNDJSONScanner(strings.NewReader(in)),
		} {
			for {
				tr, err := sc.Next()
				if err != nil {
					var re *RecordError
					if errors.As(err, &re) {
						continue // recoverable by contract
					}
					if !errors.Is(err, io.EOF) {
						// Terminal error: the stream must now be done.
						if _, err := sc.Next(); !errors.Is(err, io.EOF) {
							t.Fatalf("stream not done after terminal error, got %v", err)
						}
					}
					break
				}
				if tr.Len() == 0 {
					t.Fatal("scanner yielded an empty trajectory")
				}
				if err := WriteNDJSON(io.Discard, tr); err != nil {
					t.Fatalf("yielded trajectory not writable: %v", err)
				}
			}
		}
	})
}

// FuzzReadPLT asserts the GeoLife parser never panics on malformed files.
func FuzzReadPLT(f *testing.F) {
	header := "a\r\nb\r\nc\r\nd\r\ne\r\nf\r\n"
	f.Add(header + "39.9,116.4,0,0,0,2009-10-11,14:04:30\r\n")
	f.Add(header)
	f.Add("")
	f.Add(header + "39.9,116.4\r\n")
	f.Add(header + "nan,inf,0,0,0,2009-10-11,25:99:99\r\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadPLT(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, p := range tr.Points {
			if !p.Valid() {
				t.Fatalf("parser accepted invalid point %v", p)
			}
		}
	})
}
