package trajio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV parser never panics and that anything it
// accepts round-trips through the writer.
func FuzzReadCSV(f *testing.F) {
	f.Add("lat,lng\n39.9,116.4\n")
	f.Add("39.9,116.4,1000\n40.0,116.5,1010\n")
	f.Add("")
	f.Add("x\n")
	f.Add("1,2\n3,,\n")
	f.Add("91,0\n")
	f.Add("header,row,extra\n-5.5,12.25,99.5\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		// Accepted input must produce a valid, writable trajectory.
		if tr.Len() == 0 {
			t.Fatal("accepted an empty trajectory")
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip changed length: %d -> %d", tr.Len(), back.Len())
		}
	})
}

// FuzzReadPLT asserts the GeoLife parser never panics on malformed files.
func FuzzReadPLT(f *testing.F) {
	header := "a\r\nb\r\nc\r\nd\r\ne\r\nf\r\n"
	f.Add(header + "39.9,116.4,0,0,0,2009-10-11,14:04:30\r\n")
	f.Add(header)
	f.Add("")
	f.Add(header + "39.9,116.4\r\n")
	f.Add(header + "nan,inf,0,0,0,2009-10-11,25:99:99\r\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadPLT(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, p := range tr.Points {
			if !p.Valid() {
				t.Fatalf("parser accepted invalid point %v", p)
			}
		}
	})
}
