package trajio

// Parity property suite for the streaming subsystem: every scanner must
// be byte-identical to the slurp readers on the checked-in testdata
// corpus, and DirSource must equal the sorted per-file slurp.

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

// drain collects every trajectory of a scanner, failing on any error.
func drain(t *testing.T, sc Scanner) []*traj.Trajectory {
	t.Helper()
	var out []*traj.Trajectory
	for {
		tr, err := sc.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("scanner error after %d trajectories: %v", len(out), err)
		}
		out = append(out, tr)
	}
}

// corpusFiles lists the files of a testdata corpus in DirSource's
// deterministic (sorted path) order.
func corpusFiles(t *testing.T, dir string) []string {
	t.Helper()
	var paths []string
	err := filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			paths = append(paths, p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	return paths
}

// TestScannerParityCorpus: for every file in the corpus, the one-shot
// scanner's output is DeepEqual to the slurp reader's.
func TestScannerParityCorpus(t *testing.T) {
	for _, p := range corpusFiles(t, filepath.Join("testdata", "corpus")) {
		p := p
		t.Run(filepath.Base(p), func(t *testing.T) {
			want, err := ReadFile(p)
			if err != nil {
				t.Fatalf("slurp: %v", err)
			}
			f, err := os.Open(p)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			var sc Scanner
			if strings.EqualFold(filepath.Ext(p), ".plt") {
				sc = NewPLTScanner(f)
			} else {
				sc = NewCSVScanner(f)
			}
			got := drain(t, sc)
			if len(got) != 1 {
				t.Fatalf("scanner yielded %d trajectories, want 1", len(got))
			}
			if !reflect.DeepEqual(got[0], want) {
				t.Errorf("scanner output differs from slurp:\n got %+v\nwant %+v", got[0], want)
			}
		})
	}
}

// TestDirSourceEqualsSlurp: streaming the corpus directory equals slurping
// each file in sorted order, with Paths() aligned to the yields.
func TestDirSourceEqualsSlurp(t *testing.T) {
	dir := filepath.Join("testdata", "corpus")
	files := corpusFiles(t, dir)
	var want []*traj.Trajectory
	for _, p := range files {
		tr, err := ReadFile(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		want = append(want, tr)
	}

	ds, err := OpenDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if !reflect.DeepEqual(ds.Files(), files) {
		t.Fatalf("Files() = %v, want %v", ds.Files(), files)
	}
	got := drain(t, ds)
	if len(ds.Errs()) != 0 {
		t.Fatalf("unexpected file errors: %v", ds.Errs())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DirSource stream differs from sorted slurp (%d vs %d trajectories)", len(got), len(want))
	}
	if !reflect.DeepEqual(ds.Paths(), files) {
		t.Errorf("Paths() = %v, want %v", ds.Paths(), files)
	}

	// The uppercase-extension file must have been dispatched as PLT: it is
	// the untimed OLE-sentinel file, which parsed as CSV would fail (and
	// as PLT with fabricated times would come back timed).
	idx := sort.SearchStrings(files, filepath.Join(dir, "B_untimed.PLT"))
	if idx >= len(files) || !strings.HasSuffix(files[idx], "B_untimed.PLT") {
		t.Fatal("corpus is missing B_untimed.PLT")
	}
	if got[idx].Times != nil {
		t.Error("uppercase .PLT file was not recognized as an untimed PLT")
	}
}

// TestDirSourceGlob: filters are applied to base names case-insensitively.
func TestDirSourceGlob(t *testing.T) {
	dir := filepath.Join("testdata", "corpus")
	ds, err := OpenDir(dir, &DirOptions{Glob: []string{"*.PLT"}})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	files := ds.Files()
	if len(files) != 2 {
		t.Fatalf("glob *.PLT matched %v, want the two plt files", files)
	}
	for _, p := range files {
		if !strings.EqualFold(filepath.Ext(p), ".plt") {
			t.Errorf("glob matched non-plt file %s", p)
		}
	}
	if got := drain(t, ds); len(got) != 2 {
		t.Fatalf("yielded %d trajectories, want 2", len(got))
	}

	if _, err := OpenDir(dir, &DirOptions{Glob: []string{"[bad"}}); err == nil {
		t.Error("bad glob pattern should fail at OpenDir")
	}
}

// TestDirSourceErrorCapture: a bad file is recorded in Errs and the walk
// continues; FailFast surfaces it instead.
func TestDirSourceErrorCapture(t *testing.T) {
	dir := filepath.Join("testdata", "badcorpus")
	ds, err := OpenDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, ds)
	if len(got) != 1 {
		t.Fatalf("yielded %d trajectories, want 1 (the good file)", len(got))
	}
	errs := ds.Errs()
	if len(errs) != 1 || !strings.HasSuffix(errs[0].Path, "zbad.csv") {
		t.Fatalf("Errs() = %v, want one error for zbad.csv", errs)
	}
	if !strings.Contains(errs[0].Error(), "zbad.csv") {
		t.Errorf("FileError.Error() = %q, want the path included", errs[0].Error())
	}

	ff, err := OpenDir(dir, &DirOptions{FailFast: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ff.Next(); err != nil {
		t.Fatalf("good file should stream under FailFast: %v", err)
	}
	if _, err := ff.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("FailFast should surface the parse error, got %v", err)
	}
	// A surfaced error ends the stream (Scanner contract): a retrying
	// caller must get io.EOF, not silently-resumed later files.
	if _, err := ff.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("FailFast stream not done after its error, got %v", err)
	}
}

// TestDirSourceMultiRecord: multi-record files (.ndjson, .mcsv) yield
// each record, in order, interleaved correctly with single-record files.
func TestDirSourceMultiRecord(t *testing.T) {
	dir := filepath.Join("testdata", "ndcorpus")
	ds, err := OpenDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, ds)
	if len(got) != 6 {
		t.Fatalf("yielded %d trajectories, want 6 (3 ndjson + 1 csv + 2 mcsv)", len(got))
	}
	if got[0].Times != nil || got[1].Times == nil || got[2].Times != nil {
		t.Error("ndjson timed/untimed records decoded wrong")
	}
	paths := ds.Paths()
	for k := 0; k < 3; k++ {
		if !strings.HasSuffix(paths[k], "multi.ndjson") {
			t.Errorf("trajectory %d attributed to %s, want multi.ndjson", k, paths[k])
		}
	}
	if !strings.HasSuffix(paths[3], "solo.csv") {
		t.Errorf("trajectory 3 attributed to %s, want solo.csv", paths[3])
	}
	// The .mcsv file splits on its blank line into two trajectories —
	// unlike .csv, which is parsed exactly like ReadFile (blank lines
	// skipped, one trajectory per file).
	for k := 4; k < 6; k++ {
		if !strings.HasSuffix(paths[k], "two.mcsv") {
			t.Errorf("trajectory %d attributed to %s, want two.mcsv", k, paths[k])
		}
	}
	if got[4].Points[0].Lat != 39.99 || got[5].Points[0].Lat != 40.01 {
		t.Errorf("mcsv records split wrong: first points %v / %v", got[4].Points[0], got[5].Points[0])
	}
}

// TestMultiCSVScanner: blank-line-separated records, each with optional
// header; a single-record stream is DeepEqual to ReadCSV.
func TestMultiCSVScanner(t *testing.T) {
	in := "lat,lng,unix\n1,2,1000\n1.1,2.1,1010\n\nlat,lng\n3,4\n3.1,4.1\n\n\n5,6\n5.1,6.1\n"
	got := drain(t, NewMultiCSVScanner(strings.NewReader(in)))
	if len(got) != 3 {
		t.Fatalf("yielded %d records, want 3", len(got))
	}
	if got[0].Times == nil || got[0].Times[1].Unix() != 1010 {
		t.Errorf("record 0 lost its timestamps: %+v", got[0].Times)
	}
	if got[1].Times != nil || got[2].Times != nil {
		t.Error("untimed records came back timed")
	}
	if got[2].Points[0].Lat != 5 || got[2].Points[1].Lng != 6.1 {
		t.Errorf("record 2 = %+v", got[2].Points)
	}

	single := "lat,lng\n7,8\n7.1,8.1\n"
	want, err := ReadCSV(strings.NewReader(single))
	if err != nil {
		t.Fatal(err)
	}
	ms := drain(t, NewMultiCSVScanner(strings.NewReader(single)))
	if len(ms) != 1 || !reflect.DeepEqual(ms[0], want) {
		t.Errorf("single-record multi stream differs from ReadCSV")
	}

	if _, err := NewMultiCSVScanner(strings.NewReader("\n\n")).Next(); err == nil || errors.Is(err, io.EOF) {
		t.Error("empty multi-csv stream should error like ReadCSV, not EOF")
	}
	sc := NewMultiCSVScanner(strings.NewReader("1,2\n1.1,2.1\nx,y\n"))
	if _, err := sc.Next(); err == nil {
		t.Fatal("bad row should error")
	}
	if _, err := sc.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("multi-csv stream should be done after a parse error, got %v", err)
	}
}

// TestNDJSONScanner covers WriteNDJSON round trips, record-level recovery
// and terminal syntax errors.
func TestNDJSONScanner(t *testing.T) {
	timed, err := traj.New(
		[]geo.Point{{Lat: 1, Lng: 2}, {Lat: 1.1, Lng: 2.1}},
		[]time.Time{time.Unix(100, 0).UTC(), time.Unix(110, 0).UTC()},
	)
	if err != nil {
		t.Fatal(err)
	}
	untimed := traj.FromPoints([]geo.Point{{Lat: 3, Lng: 4}, {Lat: 3.1, Lng: 4.1}})

	var sb strings.Builder
	if err := WriteNDJSON(&sb, timed, untimed); err != nil {
		t.Fatal(err)
	}
	got := drain(t, NewNDJSONScanner(strings.NewReader(sb.String())))
	if len(got) != 2 {
		t.Fatalf("round trip yielded %d records, want 2", len(got))
	}
	if !reflect.DeepEqual(got[0], timed) || !reflect.DeepEqual(got[1], untimed) {
		t.Errorf("round trip not identity:\n got %+v / %+v\nwant %+v / %+v", got[0], got[1], timed, untimed)
	}

	// A semantically bad record is a *RecordError and the stream survives.
	in := `{"points":[[1,2],[1.1,2.1]]}` + "\n" +
		`{"points":[[999,2]]}` + "\n" +
		`{"points":[[3,4],[3.1,4.1]]}` + "\n"
	sc := NewNDJSONScanner(strings.NewReader(in))
	if _, err := sc.Next(); err != nil {
		t.Fatalf("record 0: %v", err)
	}
	_, err = sc.Next()
	var re *RecordError
	if !errors.As(err, &re) || re.Index != 1 {
		t.Fatalf("record 1: got %v, want *RecordError{Index: 1}", err)
	}
	if tr, err := sc.Next(); err != nil || tr.Points[0].Lat != 3 {
		t.Fatalf("stream did not survive the record error: %v", err)
	}
	if _, err := sc.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF at end, got %v", err)
	}

	// Wrong coordinate count is a RecordError, not silent zero-filling
	// (a fixed-size array decode would accept [[39.9]] as (39.9, 0)).
	sc = NewNDJSONScanner(strings.NewReader(`{"points":[[39.9],[39.91,116.41]]}` + "\n" + `{"points":[[1,2,3]]}` + "\n"))
	for k := 0; k < 2; k++ {
		_, err := sc.Next()
		if !errors.As(err, &re) || !strings.Contains(err.Error(), "coordinates") {
			t.Fatalf("record %d with wrong arity: got %v, want a coordinates RecordError", k, err)
		}
	}

	// JSON nulls are rejected, not zero-filled: a null coordinate or time
	// would otherwise register plausible-but-wrong geometry.
	sc = NewNDJSONScanner(strings.NewReader(
		`{"points":[[null,116.4],[39.9,116.4]]}` + "\n" +
			`{"points":[[1,2],[1.1,2.1]],"times":[null,5]}` + "\n"))
	for k, want := range []string{"null coordinate", "is null"} {
		_, err := sc.Next()
		if !errors.As(err, &re) || !strings.Contains(err.Error(), want) {
			t.Fatalf("null record %d: got %v, want a RecordError containing %q", k, err, want)
		}
	}

	// Malformed JSON is terminal.
	sc = NewNDJSONScanner(strings.NewReader(`{"points":[[1,2],[1.1,2.1]]}` + "\n{not json\n"))
	if _, err := sc.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Next(); err == nil || errors.As(err, &re) || errors.Is(err, io.EOF) {
		t.Fatalf("syntax error should be terminal and not a RecordError, got %v", err)
	}
	if _, err := sc.Next(); !errors.Is(err, io.EOF) {
		t.Error("stream should be done after a syntax error")
	}

	// Empty stream errors like the other readers.
	if _, err := NewNDJSONScanner(strings.NewReader("")).Next(); err == nil || errors.Is(err, io.EOF) {
		t.Error("empty ndjson stream should error, not EOF")
	}
}

// TestScannerEOFSticky: one-shot scanners keep returning io.EOF.
func TestScannerEOFSticky(t *testing.T) {
	sc := NewCSVScanner(strings.NewReader("1,2\n1.1,2.1\n"))
	if _, err := sc.Next(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if _, err := sc.Next(); !errors.Is(err, io.EOF) {
			t.Fatalf("call %d after end: %v, want io.EOF", k, err)
		}
	}
}
