// Package trajio reads and writes spatial trajectories in the formats
// relevant to the paper's evaluation: the GeoLife .plt logger format
// (so the harness runs unchanged on the real Microsoft dataset), a plain
// CSV format for the Truck/Wild-Baboon style exports, and writers for
// both. Parsers are strict about geometry (invalid coordinates are
// errors) but tolerant about optional fields.
package trajio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"trajmotif/internal/traj"
)

// pltEpoch is the origin of the GeoLife "days since" field
// (December 30, 1899 — the OLE automation epoch the dataset uses).
var pltEpoch = time.Date(1899, 12, 30, 0, 0, 0, 0, time.UTC)

// ReadPLT parses a GeoLife .plt file: six header lines, then records of
// the form
//
//	lat,lng,0,altitude,days,date,time
//
// e.g. "39.906631,116.385564,0,492,40097.5864583333,2009-10-11,14:04:30".
// Timestamps are taken from the date and time fields, with one exception:
// a file whose every record carries the OLE epoch itself (1899-12-30
// 00:00:00) is the WritePLT encoding of an untimed trajectory, and is
// returned with Times == nil rather than fabricating identical bogus
// timestamps.
// The slurp form IS the streaming form: the first Next of a one-shot
// scanner drives the whole stream, so ReadPLT and NewPLTScanner cannot
// diverge — they are literally the same code path.
func ReadPLT(r io.Reader) (*traj.Trajectory, error) {
	return NewPLTScanner(r).Next()
}

// WritePLT writes the trajectory in GeoLife .plt format, including the
// standard six-line preamble. An untimed trajectory is written with every
// timestamp equal to the OLE epoch (1899-12-30 00:00:00) — the format has
// no way to omit the time fields — which ReadPLT recognizes as the
// untimed sentinel, so a write→read round trip reproduces Times == nil
// instead of fabricating identical bogus timestamps.
func WritePLT(w io.Writer, t *traj.Trajectory) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "Geolife trajectory\r\nWGS 84\r\nAltitude is in Feet\r\nReserved 3\r\n")
	fmt.Fprint(bw, "0,2,255,My Track,0,0,2,8421376\r\n0\r\n")
	for k, p := range t.Points {
		ts := pltEpoch
		if t.Times != nil {
			ts = t.Times[k]
		}
		days := ts.Sub(pltEpoch).Hours() / 24
		fmt.Fprintf(bw, "%.6f,%.6f,0,0,%.10f,%s,%s\r\n",
			p.Lat, p.Lng, days, ts.Format("2006-01-02"), ts.Format("15:04:05"))
	}
	return bw.Flush()
}

// ReadCSV parses "lat,lng[,unix_seconds]" records. Leading blank lines
// and a UTF-8 byte-order mark are skipped, and the first non-empty row
// whose first field does not parse as a number is treated as a header —
// so "\uFEFF\n\nlat,lng\n39.9,116.4" parses the same as "39.9,116.4".
// Timestamps are kept only if present on every record.
func ReadCSV(r io.Reader) (*traj.Trajectory, error) {
	return NewCSVScanner(r).Next()
}

// WriteCSV writes "lat,lng[,unix_seconds]" records with a header line.
func WriteCSV(w io.Writer, t *traj.Trajectory) error {
	bw := bufio.NewWriter(w)
	if t.Times != nil {
		fmt.Fprintln(bw, "lat,lng,unix")
		for k, p := range t.Points {
			fmt.Fprintf(bw, "%.7f,%.7f,%d\n", p.Lat, p.Lng, t.Times[k].Unix())
		}
	} else {
		fmt.Fprintln(bw, "lat,lng")
		for _, p := range t.Points {
			fmt.Fprintf(bw, "%.7f,%.7f\n", p.Lat, p.Lng)
		}
	}
	return bw.Flush()
}

// ReadFile loads a trajectory, dispatching on the file extension:
// ".plt" for GeoLife, anything else as CSV.
func ReadFile(path string) (*traj.Trajectory, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.EqualFold(filepath.Ext(path), ".plt") {
		return ReadPLT(f)
	}
	return ReadCSV(f)
}

// WriteFile saves a trajectory, dispatching on the file extension like
// ReadFile.
func WriteFile(path string, t *traj.Trajectory) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if strings.EqualFold(filepath.Ext(path), ".plt") {
		werr = WritePLT(f, t)
	} else {
		werr = WriteCSV(f, t)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
