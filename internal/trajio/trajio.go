// Package trajio reads and writes spatial trajectories in the formats
// relevant to the paper's evaluation: the GeoLife .plt logger format
// (so the harness runs unchanged on the real Microsoft dataset), a plain
// CSV format for the Truck/Wild-Baboon style exports, and writers for
// both. Parsers are strict about geometry (invalid coordinates are
// errors) but tolerant about optional fields.
package trajio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

// pltEpoch is the origin of the GeoLife "days since" field
// (December 30, 1899 — the OLE automation epoch the dataset uses).
var pltEpoch = time.Date(1899, 12, 30, 0, 0, 0, 0, time.UTC)

// ReadPLT parses a GeoLife .plt file: six header lines, then records of
// the form
//
//	lat,lng,0,altitude,days,date,time
//
// e.g. "39.906631,116.385564,0,492,40097.5864583333,2009-10-11,14:04:30".
// Timestamps are taken from the date and time fields, with one exception:
// a file whose every record carries the OLE epoch itself (1899-12-30
// 00:00:00) is the WritePLT encoding of an untimed trajectory, and is
// returned with Times == nil rather than fabricating identical bogus
// timestamps.
func ReadPLT(r io.Reader) (*traj.Trajectory, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var points []geo.Point
	var times []time.Time
	line := 0
	for sc.Scan() {
		line++
		if line <= 6 {
			continue // fixed preamble
		}
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 7 {
			return nil, fmt.Errorf("trajio: plt line %d: %d fields, want 7", line, len(fields))
		}
		lat, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trajio: plt line %d: bad latitude: %w", line, err)
		}
		lng, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trajio: plt line %d: bad longitude: %w", line, err)
		}
		p := geo.Point{Lat: lat, Lng: lng}
		if !p.Valid() {
			return nil, fmt.Errorf("trajio: plt line %d: invalid point %v", line, p)
		}
		ts, err := time.Parse("2006-01-02 15:04:05", fields[5]+" "+fields[6])
		if err != nil {
			return nil, fmt.Errorf("trajio: plt line %d: bad timestamp: %w", line, err)
		}
		points = append(points, p)
		times = append(times, ts)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trajio: %w", err)
	}
	if len(points) == 0 {
		return nil, errors.New("trajio: plt file contains no records")
	}
	// WritePLT stamps every record of an untimed trajectory with the OLE
	// epoch; recognize that sentinel so the round trip is identity-
	// preserving. Real GPS logs never carry 1899 timestamps.
	allEpoch := true
	for _, ts := range times {
		if !ts.Equal(pltEpoch) {
			allEpoch = false
			break
		}
	}
	if allEpoch {
		times = nil
	}
	return traj.New(points, times)
}

// WritePLT writes the trajectory in GeoLife .plt format, including the
// standard six-line preamble. An untimed trajectory is written with every
// timestamp equal to the OLE epoch (1899-12-30 00:00:00) — the format has
// no way to omit the time fields — which ReadPLT recognizes as the
// untimed sentinel, so a write→read round trip reproduces Times == nil
// instead of fabricating identical bogus timestamps.
func WritePLT(w io.Writer, t *traj.Trajectory) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "Geolife trajectory\r\nWGS 84\r\nAltitude is in Feet\r\nReserved 3\r\n")
	fmt.Fprint(bw, "0,2,255,My Track,0,0,2,8421376\r\n0\r\n")
	for k, p := range t.Points {
		ts := pltEpoch
		if t.Times != nil {
			ts = t.Times[k]
		}
		days := ts.Sub(pltEpoch).Hours() / 24
		fmt.Fprintf(bw, "%.6f,%.6f,0,0,%.10f,%s,%s\r\n",
			p.Lat, p.Lng, days, ts.Format("2006-01-02"), ts.Format("15:04:05"))
	}
	return bw.Flush()
}

// ReadCSV parses "lat,lng[,unix_seconds]" records. Leading blank lines
// and a UTF-8 byte-order mark are skipped, and the first non-empty row
// whose first field does not parse as a number is treated as a header —
// so "\uFEFF\n\nlat,lng\n39.9,116.4" parses the same as "39.9,116.4".
// Timestamps are kept only if present on every record.
func ReadCSV(r io.Reader) (*traj.Trajectory, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var points []geo.Point
	var times []time.Time
	timed := true
	line := 0
	sawRow := false // a non-empty row (header or data) has been consumed
	for sc.Scan() {
		line++
		text := sc.Text()
		if !sawRow {
			text = strings.TrimPrefix(text, "\uFEFF")
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if !sawRow {
			sawRow = true
			if _, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64); err != nil {
				continue // header row
			}
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("trajio: csv line %d: %d fields, want at least 2", line, len(fields))
		}
		lat, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("trajio: csv line %d: bad latitude: %w", line, err)
		}
		lng, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("trajio: csv line %d: bad longitude: %w", line, err)
		}
		p := geo.Point{Lat: lat, Lng: lng}
		if !p.Valid() {
			return nil, fmt.Errorf("trajio: csv line %d: invalid point %v", line, p)
		}
		points = append(points, p)
		if len(fields) >= 3 && timed {
			unix, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
			if err != nil {
				return nil, fmt.Errorf("trajio: csv line %d: bad timestamp: %w", line, err)
			}
			sec := int64(unix)
			times = append(times, time.Unix(sec, int64((unix-float64(sec))*1e9)).UTC())
		} else {
			timed = false
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trajio: %w", err)
	}
	if len(points) == 0 {
		return nil, errors.New("trajio: csv file contains no records")
	}
	if !timed || len(times) != len(points) {
		times = nil
	}
	return traj.New(points, times)
}

// WriteCSV writes "lat,lng[,unix_seconds]" records with a header line.
func WriteCSV(w io.Writer, t *traj.Trajectory) error {
	bw := bufio.NewWriter(w)
	if t.Times != nil {
		fmt.Fprintln(bw, "lat,lng,unix")
		for k, p := range t.Points {
			fmt.Fprintf(bw, "%.7f,%.7f,%d\n", p.Lat, p.Lng, t.Times[k].Unix())
		}
	} else {
		fmt.Fprintln(bw, "lat,lng")
		for _, p := range t.Points {
			fmt.Fprintf(bw, "%.7f,%.7f\n", p.Lat, p.Lng)
		}
	}
	return bw.Flush()
}

// ReadFile loads a trajectory, dispatching on the file extension:
// ".plt" for GeoLife, anything else as CSV.
func ReadFile(path string) (*traj.Trajectory, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.EqualFold(filepath.Ext(path), ".plt") {
		return ReadPLT(f)
	}
	return ReadCSV(f)
}

// WriteFile saves a trajectory, dispatching on the file extension like
// ReadFile.
func WriteFile(path string, t *traj.Trajectory) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if strings.EqualFold(filepath.Ext(path), ".plt") {
		werr = WritePLT(f, t)
	} else {
		werr = WriteCSV(f, t)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
