// Streaming trajectory ingestion: iterator-style sources that yield
// trajectories one at a time without materializing a whole corpus. The
// slurp readers (ReadPLT, ReadCSV) and the scanners here drive the same
// incremental parsers, so streaming and slurping are byte-identical by
// construction — and the parity/fuzz suites pin it.
//
// Memory model: every scanner holds at most one trajectory under
// construction plus a fixed line buffer. DirSource additionally holds the
// sorted file list (names only) and keeps exactly one file open at a
// time, so a GeoLife-scale corpus streams in O(largest trajectory).
package trajio

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

// Scanner yields trajectories one at a time from an underlying stream.
// Next returns io.EOF after the final trajectory; any other error means a
// record could not be parsed. Unless documented otherwise (RecordError),
// a non-EOF error ends the stream and subsequent calls return io.EOF.
type Scanner interface {
	Next() (*traj.Trajectory, error)
}

// RecordError reports one semantically invalid record in a multi-record
// stream (NDJSON). The stream remains readable past it: calling Next
// again continues with the following record. Callers that cannot skip
// records should treat it as fatal.
type RecordError struct {
	// Index is the zero-based position of the bad record in the stream.
	Index int
	Err   error
}

func (e *RecordError) Error() string {
	return fmt.Sprintf("trajio: record %d: %v", e.Index, e.Err)
}

func (e *RecordError) Unwrap() error { return e.Err }

// FileError records a file that failed to parse during a DirSource scan.
type FileError struct {
	Path string
	Err  error
}

func (e FileError) Error() string { return e.Path + ": " + e.Err.Error() }

func (e FileError) Unwrap() error { return e.Err }

// newLineScanner wraps r with the line splitter and the 1 MiB line budget
// every trajio parser uses.
func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	return sc
}

// --- incremental parsers (shared by the slurp readers and the scanners) ---

// pltParser is the incremental core of ReadPLT: feed every line in order,
// then finish. Line numbering and error text match ReadPLT exactly.
type pltParser struct {
	line   int
	points []geo.Point
	times  []time.Time
}

func (p *pltParser) feed(text string) error {
	p.line++
	if p.line <= 6 {
		return nil // fixed preamble
	}
	text = strings.TrimSpace(text)
	if text == "" {
		return nil
	}
	fields := strings.Split(text, ",")
	if len(fields) < 7 {
		return fmt.Errorf("trajio: plt line %d: %d fields, want 7", p.line, len(fields))
	}
	lat, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return fmt.Errorf("trajio: plt line %d: bad latitude: %w", p.line, err)
	}
	lng, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return fmt.Errorf("trajio: plt line %d: bad longitude: %w", p.line, err)
	}
	pt := geo.Point{Lat: lat, Lng: lng}
	if !pt.Valid() {
		return fmt.Errorf("trajio: plt line %d: invalid point %v", p.line, pt)
	}
	ts, err := time.Parse("2006-01-02 15:04:05", fields[5]+" "+fields[6])
	if err != nil {
		return fmt.Errorf("trajio: plt line %d: bad timestamp: %w", p.line, err)
	}
	p.points = append(p.points, pt)
	p.times = append(p.times, ts)
	return nil
}

func (p *pltParser) finish() (*traj.Trajectory, error) {
	if len(p.points) == 0 {
		return nil, errors.New("trajio: plt file contains no records")
	}
	// WritePLT stamps every record of an untimed trajectory with the OLE
	// epoch; recognize that sentinel so the round trip is identity-
	// preserving. Real GPS logs never carry 1899 timestamps.
	times := p.times
	allEpoch := true
	for _, ts := range times {
		if !ts.Equal(pltEpoch) {
			allEpoch = false
			break
		}
	}
	if allEpoch {
		times = nil
	}
	return traj.New(p.points, times)
}

// csvParser is the incremental core of ReadCSV: feed every line in order
// (blank lines included, so line numbers in errors match the file), then
// finish. reset clears the trajectory under construction but keeps the
// line counter, for multi-record streams.
type csvParser struct {
	line   int
	points []geo.Point
	times  []time.Time
	timed  bool
	sawRow bool // a non-empty row (header or data) has been consumed
}

func newCSVParser() *csvParser { return &csvParser{timed: true} }

func (p *csvParser) reset() {
	p.points, p.times = nil, nil
	p.timed = true
	p.sawRow = false
}

func (p *csvParser) feed(text string) error {
	p.line++
	if !p.sawRow {
		text = strings.TrimPrefix(text, "\uFEFF")
	}
	text = strings.TrimSpace(text)
	if text == "" {
		return nil
	}
	fields := strings.Split(text, ",")
	if !p.sawRow {
		p.sawRow = true
		if _, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64); err != nil {
			return nil // header row
		}
	}
	if len(fields) < 2 {
		return fmt.Errorf("trajio: csv line %d: %d fields, want at least 2", p.line, len(fields))
	}
	lat, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
	if err != nil {
		return fmt.Errorf("trajio: csv line %d: bad latitude: %w", p.line, err)
	}
	lng, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
	if err != nil {
		return fmt.Errorf("trajio: csv line %d: bad longitude: %w", p.line, err)
	}
	pt := geo.Point{Lat: lat, Lng: lng}
	if !pt.Valid() {
		return fmt.Errorf("trajio: csv line %d: invalid point %v", p.line, pt)
	}
	p.points = append(p.points, pt)
	if len(fields) >= 3 && p.timed {
		unix, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
		if err != nil {
			return fmt.Errorf("trajio: csv line %d: bad timestamp: %w", p.line, err)
		}
		sec := int64(unix)
		p.times = append(p.times, time.Unix(sec, int64((unix-float64(sec))*1e9)).UTC())
	} else {
		p.timed = false
	}
	return nil
}

func (p *csvParser) finish() (*traj.Trajectory, error) {
	if len(p.points) == 0 {
		return nil, errors.New("trajio: csv file contains no records")
	}
	times := p.times
	if !p.timed || len(times) != len(p.points) {
		times = nil
	}
	return traj.New(p.points, times)
}

// --- one-shot scanners (single-trajectory formats) ---

// lineParser is the incremental contract the one-shot scanners drive.
type lineParser interface {
	feed(text string) error
	finish() (*traj.Trajectory, error)
}

// oneShot adapts a whole-file format to the Scanner interface: the first
// Next drives the stream line by line through the parser and yields the
// single trajectory; every later call returns io.EOF.
type oneShot struct {
	sc   *bufio.Scanner
	p    lineParser
	done bool
}

func (s *oneShot) Next() (*traj.Trajectory, error) {
	if s.done {
		return nil, io.EOF
	}
	s.done = true
	for s.sc.Scan() {
		if err := s.p.feed(s.sc.Text()); err != nil {
			return nil, err
		}
	}
	if err := s.sc.Err(); err != nil {
		return nil, fmt.Errorf("trajio: %w", err)
	}
	return s.p.finish()
}

// NewPLTScanner returns a Scanner over one GeoLife .plt stream: it yields
// the file's single trajectory (parsed line by line, identical to
// ReadPLT) and then io.EOF.
func NewPLTScanner(r io.Reader) Scanner {
	return &oneShot{sc: newLineScanner(r), p: &pltParser{}}
}

// NewCSVScanner returns a Scanner over one single-trajectory CSV stream,
// identical to ReadCSV (header/BOM/blank-line tolerance included).
func NewCSVScanner(r io.Reader) Scanner {
	return &oneShot{sc: newLineScanner(r), p: newCSVParser()}
}

// --- multi-record streams ---

// NewMultiCSVScanner returns a Scanner over a multi-trajectory CSV
// stream: records are "lat,lng[,unix]" blocks separated by one or more
// blank lines. Each block may open with its own header row; line numbers
// in errors are global to the stream. Note the framing difference from
// ReadCSV, which skips interior blank lines inside its single record.
func NewMultiCSVScanner(r io.Reader) Scanner {
	return &multiCSV{sc: newLineScanner(r), p: newCSVParser()}
}

type multiCSV struct {
	sc   *bufio.Scanner
	p    *csvParser
	rec  int // records yielded so far
	done bool
}

func (s *multiCSV) Next() (*traj.Trajectory, error) {
	if s.done {
		return nil, io.EOF
	}
	yield := func() (*traj.Trajectory, error) {
		t, err := s.p.finish()
		s.p.reset()
		if err != nil {
			s.done = true
			return nil, err
		}
		s.rec++
		return t, nil
	}
	for s.sc.Scan() {
		text := s.sc.Text()
		if strings.TrimSpace(text) == "" && len(s.p.points) > 0 {
			s.p.line++ // keep global numbering despite bypassing feed
			return yield()
		}
		if err := s.p.feed(text); err != nil {
			s.done = true
			return nil, err
		}
	}
	if err := s.sc.Err(); err != nil {
		s.done = true
		return nil, fmt.Errorf("trajio: %w", err)
	}
	if len(s.p.points) > 0 {
		return yield()
	}
	s.done = true
	if s.rec == 0 {
		return nil, errors.New("trajio: csv stream contains no records")
	}
	return nil, io.EOF
}

// ndjsonRecord is the NDJSON wire shape on the read side, mirroring the
// motif server's trajectory upload: [lat, lng] pairs plus optional
// unix-second times. Coordinates and times decode through pointers into
// free-length arrays so wrong arity AND JSON nulls are RecordErrors — a
// fixed [2]float64 would silently zero-fill short arrays, drop extras,
// and turn null into 0, storing corrupted geometry under a valid-looking
// content hash.
type ndjsonRecord struct {
	Points [][]*float64 `json:"points"`
	Times  []*float64   `json:"times,omitempty"`
}

// ndjsonWireRecord is the write-side shape (never-null by construction).
type ndjsonWireRecord struct {
	Points [][]float64 `json:"points"`
	Times  []float64   `json:"times,omitempty"`
}

// NewNDJSONScanner returns a Scanner over newline-delimited JSON records
// of the form {"points": [[lat,lng], ...], "times": [unix, ...]} — the
// body format of the server's POST /trajectories/bulk. Records are
// decoded one at a time (the whole stream is never buffered). A
// semantically invalid record yields a *RecordError and the stream
// continues; malformed JSON ends the stream.
func NewNDJSONScanner(r io.Reader) Scanner {
	return &ndjsonScanner{dec: json.NewDecoder(r)}
}

type ndjsonScanner struct {
	dec  *json.Decoder
	rec  int
	done bool
}

func (s *ndjsonScanner) Next() (*traj.Trajectory, error) {
	if s.done {
		return nil, io.EOF
	}
	var rec ndjsonRecord
	if err := s.dec.Decode(&rec); err != nil {
		s.done = true
		if err == io.EOF {
			if s.rec == 0 {
				return nil, errors.New("trajio: ndjson stream contains no records")
			}
			return nil, io.EOF
		}
		return nil, fmt.Errorf("trajio: ndjson record %d: %w", s.rec, err)
	}
	idx := s.rec
	s.rec++
	t, err := trajFromNDJSON(rec)
	if err != nil {
		return nil, &RecordError{Index: idx, Err: err}
	}
	return t, nil
}

func trajFromNDJSON(rec ndjsonRecord) (*traj.Trajectory, error) {
	if len(rec.Points) == 0 {
		return nil, errors.New("empty points")
	}
	points := make([]geo.Point, len(rec.Points))
	for k, p := range rec.Points {
		if len(p) != 2 {
			return nil, fmt.Errorf("point %d has %d coordinates, want 2", k, len(p))
		}
		if p[0] == nil || p[1] == nil {
			return nil, fmt.Errorf("point %d has a null coordinate", k)
		}
		points[k] = geo.Point{Lat: *p[0], Lng: *p[1]}
	}
	var times []time.Time
	if rec.Times != nil {
		if len(rec.Times) != len(points) {
			return nil, fmt.Errorf("%d times for %d points", len(rec.Times), len(points))
		}
		times = make([]time.Time, len(rec.Times))
		for k, unix := range rec.Times {
			if unix == nil {
				return nil, fmt.Errorf("time %d is null", k)
			}
			sec := int64(*unix)
			times[k] = time.Unix(sec, int64((*unix-float64(sec))*1e9)).UTC()
		}
	}
	return traj.New(points, times)
}

// WriteNDJSON appends the trajectories to w as newline-delimited JSON
// records, the NewNDJSONScanner / POST /trajectories/bulk format.
// Timestamps are encoded as (possibly fractional) unix seconds; whole
// seconds round-trip exactly.
func WriteNDJSON(w io.Writer, ts ...*traj.Trajectory) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, t := range ts {
		rec := ndjsonWireRecord{Points: make([][]float64, t.Len())}
		for k, p := range t.Points {
			rec.Points[k] = []float64{p.Lat, p.Lng}
		}
		if t.Times != nil {
			rec.Times = make([]float64, t.Len())
			for k, ts := range t.Times {
				rec.Times[k] = float64(ts.Unix()) + float64(ts.Nanosecond())/1e9
			}
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("trajio: %w", err)
		}
	}
	return bw.Flush()
}

// --- directory corpus source ---

// DirOptions configures OpenDir.
type DirOptions struct {
	// Glob filters files by base name, case-insensitively, with
	// path.Match syntax (e.g. "*.plt", "2009*.csv"). Empty selects every
	// file with a recognized extension: .plt, .csv, .mcsv, .ndjson,
	// .jsonl.
	Glob []string
	// FailFast makes Next surface the first file or record error instead
	// of capturing it in Errs and continuing with the next file.
	FailFast bool
}

// defaultGlobs matches the extensions DirSource knows how to parse.
var defaultGlobs = []string{"*.plt", "*.csv", "*.mcsv", "*.ndjson", "*.jsonl"}

// DirSource streams every trajectory under a directory tree — the lazy,
// bounded-memory corpus walk the GeoLife evaluation layout needs. Files
// are visited in deterministic lexicographic path order; exactly one is
// open at a time, and multi-record files (.ndjson/.jsonl) yield each
// record as its own trajectory. Parse failures do not abort the scan:
// they are captured per file (Errs) and the walk moves on, unless
// DirOptions.FailFast is set. DirSource is not safe for concurrent Next
// calls; the batch streamers drain it from a single producer.
type DirSource struct {
	paths    []string
	failFast bool

	idx     int
	f       *os.File
	cur     Scanner
	curPath string

	srcs []string
	errs []FileError
}

// OpenDir walks dir (recursively), collects the files matching opt.Glob
// in sorted order, and returns a DirSource over them. Only file names
// are collected up front; file contents stream one at a time through
// Next. opt may be nil for defaults.
func OpenDir(dir string, opt *DirOptions) (*DirSource, error) {
	globs := defaultGlobs
	failFast := false
	if opt != nil {
		if len(opt.Glob) > 0 {
			globs = opt.Glob
		}
		failFast = opt.FailFast
	}
	for _, g := range globs {
		if _, err := path.Match(g, "probe"); err != nil {
			return nil, fmt.Errorf("trajio: bad glob %q: %w", g, err)
		}
	}
	var paths []string
	err := filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		base := strings.ToLower(filepath.Base(p))
		for _, g := range globs {
			if ok, _ := path.Match(strings.ToLower(g), base); ok {
				paths = append(paths, p)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("trajio: %w", err)
	}
	sort.Strings(paths)
	return &DirSource{paths: paths, failFast: failFast}, nil
}

// scannerForPath picks the Scanner for a file by extension,
// case-insensitively: .plt is GeoLife, .ndjson/.jsonl are multi-record
// NDJSON, .mcsv is multi-record CSV, anything else is single-trajectory
// CSV parsed exactly like ReadFile — in particular, interior blank lines
// in a .csv are skipped, not record separators. Blank-line-separated
// multi-trajectory CSV must use the .mcsv extension (or an explicit
// NewMultiCSVScanner); fed to the .csv path it would silently merge into
// one trajectory.
func scannerForPath(p string, r io.Reader) Scanner {
	switch strings.ToLower(filepath.Ext(p)) {
	case ".plt":
		return NewPLTScanner(r)
	case ".ndjson", ".jsonl":
		return NewNDJSONScanner(r)
	case ".mcsv":
		return NewMultiCSVScanner(r)
	default:
		return NewCSVScanner(r)
	}
}

// Next yields the next trajectory of the corpus, opening files lazily.
// It returns io.EOF once every file is exhausted.
func (s *DirSource) Next() (*traj.Trajectory, error) {
	for {
		if s.cur == nil {
			if s.idx >= len(s.paths) {
				return nil, io.EOF
			}
			p := s.paths[s.idx]
			s.idx++
			f, err := os.Open(p)
			if err != nil {
				if s.failFast {
					s.idx = len(s.paths)
					return nil, err
				}
				s.errs = append(s.errs, FileError{Path: p, Err: err})
				continue
			}
			s.f, s.curPath = f, p
			s.cur = scannerForPath(p, f)
		}
		t, err := s.cur.Next()
		switch {
		case err == nil:
			s.srcs = append(s.srcs, s.curPath)
			return t, nil
		case errors.Is(err, io.EOF):
			s.closeCurrent()
		default:
			var re *RecordError
			if errors.As(err, &re) && !s.failFast {
				// The record stream survives a semantic error; keep
				// draining the same file.
				s.errs = append(s.errs, FileError{Path: s.curPath, Err: err})
				continue
			}
			p := s.curPath
			s.closeCurrent()
			if s.failFast {
				// Honor the Scanner contract: a surfaced error ends the
				// stream; a retrying caller must not silently skip files.
				s.idx = len(s.paths)
				return nil, fmt.Errorf("%s: %w", p, err)
			}
			s.errs = append(s.errs, FileError{Path: p, Err: err})
		}
	}
}

func (s *DirSource) closeCurrent() {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	s.cur, s.curPath = nil, ""
}

// Close releases the currently open file and ends the scan; subsequent
// Next calls return io.EOF.
func (s *DirSource) Close() error {
	var err error
	if s.f != nil {
		err = s.f.Close()
		s.f = nil
	}
	s.cur, s.curPath = nil, ""
	s.idx = len(s.paths)
	return err
}

// Files lists the corpus files the source will visit, in scan order.
func (s *DirSource) Files() []string { return append([]string(nil), s.paths...) }

// Paths returns the source file of every trajectory yielded so far, one
// entry per trajectory in yield order — index-aligned with the items of
// batch.DiscoverStream over this source.
func (s *DirSource) Paths() []string { return append([]string(nil), s.srcs...) }

// Errs returns the per-file failures captured so far (nil with FailFast).
func (s *DirSource) Errs() []FileError { return append([]FileError(nil), s.errs...) }
