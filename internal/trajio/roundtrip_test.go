package trajio

import (
	"bytes"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

// gridTrajectory generates a random trajectory whose coordinates lie on
// the writers' decimal grid (decimals fractional digits) and whose
// timestamps, when timed, are whole seconds — so a write→read round trip
// can be asserted as an exact identity rather than a tolerance.
func gridTrajectory(r *rand.Rand, n int, decimals int, timed bool) *traj.Trajectory {
	scale := 1.0
	for i := 0; i < decimals; i++ {
		scale *= 10
	}
	// Normalize each coordinate through format→parse so it is exactly the
	// value the writer's %.Nf emission will produce.
	norm := func(v float64) float64 {
		f, err := strconv.ParseFloat(strconv.FormatFloat(v, 'f', decimals, 64), 64)
		if err != nil {
			panic(err)
		}
		return f
	}
	pts := make([]geo.Point, n)
	for i := range pts {
		lat := float64(r.Intn(int(160*scale)))/scale - 80
		lng := float64(r.Intn(int(320*scale)))/scale - 160
		pts[i] = geo.Point{Lat: norm(lat), Lng: norm(lng)}
	}
	var times []time.Time
	if timed {
		times = make([]time.Time, n)
		ts := time.Date(2009, 10, 11, 14, 0, 0, 0, time.UTC).Add(time.Duration(r.Intn(1000)) * time.Second)
		for i := range times {
			times[i] = ts
			ts = ts.Add(time.Duration(1+r.Intn(90)) * time.Second)
		}
	}
	tr, err := traj.New(pts, times)
	if err != nil {
		panic(err)
	}
	return tr
}

// assertIdentical fails unless the round-tripped trajectory reproduces
// points and Times exactly, including the timed/untimed distinction.
func assertIdentical(t *testing.T, label string, orig, back *traj.Trajectory) {
	t.Helper()
	if back.Len() != orig.Len() {
		t.Fatalf("%s: length %d -> %d", label, orig.Len(), back.Len())
	}
	for k := range orig.Points {
		if orig.Points[k] != back.Points[k] {
			t.Fatalf("%s: point %d changed: %v -> %v", label, k, orig.Points[k], back.Points[k])
		}
	}
	if (orig.Times == nil) != (back.Times == nil) {
		t.Fatalf("%s: timedness changed: %v -> %v", label, orig.Times != nil, back.Times != nil)
	}
	for k := range orig.Times {
		if !orig.Times[k].Equal(back.Times[k]) {
			t.Fatalf("%s: time %d changed: %v -> %v", label, k, orig.Times[k], back.Times[k])
		}
	}
}

// TestCSVRoundTripProperty: WriteCSV→ReadCSV is the identity on
// trajectories representable in the CSV format (7-decimal coordinates,
// whole-second timestamps), timed and untimed.
func TestCSVRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		orig := gridTrajectory(r, 1+r.Intn(60), 7, trial%2 == 0)
		var buf bytes.Buffer
		if err := WriteCSV(&buf, orig); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertIdentical(t, "csv", orig, back)
	}
}

// TestPLTRoundTripProperty: WritePLT→ReadPLT is the identity on
// trajectories representable in the PLT format (6-decimal coordinates,
// whole-second timestamps), timed and untimed. The untimed leg is the
// regression for the OLE-epoch fabrication bug: an untimed trajectory
// used to come back timed, every timestamp equal to 1899-12-30.
func TestPLTRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		orig := gridTrajectory(r, 1+r.Intn(60), 6, trial%2 == 0)
		var buf bytes.Buffer
		if err := WritePLT(&buf, orig); err != nil {
			t.Fatal(err)
		}
		back, err := ReadPLT(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertIdentical(t, "plt", orig, back)
	}
}

// TestReadCSVFractionalSeconds: fractional unix timestamps parse to
// sub-second precision (the read side is finer than the write side, which
// truncates to whole seconds).
func TestReadCSVFractionalSeconds(t *testing.T) {
	tr, err := ReadCSV(strings.NewReader("39.9,116.4,1000.25\n39.901,116.401,1010.75\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Times == nil {
		t.Fatal("fractional-second csv parsed as untimed")
	}
	want0 := time.Unix(1000, 250_000_000).UTC()
	want1 := time.Unix(1010, 750_000_000).UTC()
	if !tr.Times[0].Equal(want0) || !tr.Times[1].Equal(want1) {
		t.Fatalf("times = %v, %v; want %v, %v", tr.Times[0], tr.Times[1], want0, want1)
	}
}

// TestReadCSVLeadingNoise is the regression for the header-detection bug:
// header recognition fired only on line == 1, so a blank line or a UTF-8
// BOM before the header made the parse fail with "bad latitude".
func TestReadCSVLeadingNoise(t *testing.T) {
	cases := map[string]string{
		"blank line before header":  "\nlat,lng\n39.9,116.4\n40.0,116.5\n",
		"blank lines before header": "\n\n\nlat,lng\n39.9,116.4\n40.0,116.5\n",
		"bom before header":         "\uFEFFlat,lng\n39.9,116.4\n40.0,116.5\n",
		"bom and blank line":        "\uFEFF\n\nlat,lng\n39.9,116.4\n40.0,116.5\n",
		"bom before data":           "\uFEFF39.9,116.4\n40.0,116.5\n",
		"one-field header":          "time\n39.9,116.4\n40.0,116.5\n",
	}
	for name, in := range cases {
		tr, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if tr.Len() != 2 || tr.Points[0].Lat != 39.9 || tr.Points[1].Lng != 116.5 {
			t.Errorf("%s: parsed %d points %v", name, tr.Len(), tr.Points)
		}
	}
}

// TestReadCSVHeaderOnlyFirstRow: the header tolerance covers only the
// first non-empty row; a later unparsable row is still an error, and a
// file that is only a header has no records.
func TestReadCSVHeaderOnlyFirstRow(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("39.9,116.4\nnot,a,row\n")); err == nil {
		t.Error("unparsable second row should error")
	}
	if _, err := ReadCSV(strings.NewReader("lat,lng\n")); err == nil {
		t.Error("header-only file should report no records")
	}
}

// TestReadPLTUntimedSentinel pins the epoch-sentinel contract from both
// directions: all-epoch files parse as untimed, while files with any
// genuine timestamp keep their times.
func TestReadPLTUntimedSentinel(t *testing.T) {
	untimed := traj.FromPoints([]geo.Point{{Lat: 1, Lng: 2}, {Lat: 1.1, Lng: 2.1}})
	var buf bytes.Buffer
	if err := WritePLT(&buf, untimed); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPLT(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Times != nil {
		t.Errorf("untimed plt came back timed: %v", back.Times)
	}

	// A real (non-epoch) timestamp on any record keeps the file timed.
	timed := strings.Repeat("h\r\n", 6) +
		"1.000000,2.000000,0,0,0.0,1899-12-30,00:00:00\r\n" +
		"1.100000,2.100000,0,0,40097.58,2009-10-11,14:04:30\r\n"
	got, err := ReadPLT(strings.NewReader(timed))
	if err != nil {
		t.Fatal(err)
	}
	if got.Times == nil {
		t.Error("file with a genuine timestamp parsed as untimed")
	}
}
