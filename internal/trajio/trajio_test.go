package trajio

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"trajmotif/internal/datagen"
	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

const samplePLT = "Geolife trajectory\r\nWGS 84\r\nAltitude is in Feet\r\nReserved 3\r\n" +
	"0,2,255,My Track,0,0,2,8421376\r\n0\r\n" +
	"39.906631,116.385564,0,492,40097.5864583333,2009-10-11,14:04:30\r\n" +
	"39.906554,116.385625,0,492,40097.5864930556,2009-10-11,14:04:33\r\n" +
	"39.906481,116.385683,0,492,40097.5865277778,2009-10-11,14:04:36\r\n"

func TestReadPLT(t *testing.T) {
	tr, err := ReadPLT(strings.NewReader(samplePLT))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if math.Abs(tr.Points[0].Lat-39.906631) > 1e-9 {
		t.Errorf("first lat = %v", tr.Points[0])
	}
	want := time.Date(2009, 10, 11, 14, 4, 30, 0, time.UTC)
	if !tr.Times[0].Equal(want) {
		t.Errorf("first timestamp = %v, want %v", tr.Times[0], want)
	}
	if tr.Times[2].Sub(tr.Times[0]) != 6*time.Second {
		t.Errorf("span = %v, want 6s", tr.Times[2].Sub(tr.Times[0]))
	}
}

func TestReadPLTErrors(t *testing.T) {
	header := strings.Repeat("h\n", 6)
	cases := map[string]string{
		"empty":      header,
		"few fields": header + "39.9,116.4,0\n",
		"bad lat":    header + "x,116.4,0,0,0,2009-10-11,14:04:30\n",
		"bad lng":    header + "39.9,x,0,0,0,2009-10-11,14:04:30\n",
		"bad time":   header + "39.9,116.4,0,0,0,2009-13-45,99:99:99\n",
		"bad range":  header + "99.9,116.4,0,0,0,2009-10-11,14:04:30\n",
	}
	for name, in := range cases {
		if _, err := ReadPLT(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestPLTRoundTrip(t *testing.T) {
	orig := datagen.GeoLife(datagen.Config{Seed: 4, N: 120})
	var buf bytes.Buffer
	if err := WritePLT(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPLT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("round trip length %d != %d", back.Len(), orig.Len())
	}
	for k := range orig.Points {
		if geo.Haversine(orig.Points[k], back.Points[k]) > 0.2 {
			t.Fatalf("point %d drifted: %v vs %v", k, orig.Points[k], back.Points[k])
		}
		if orig.Times[k].Truncate(time.Second) != back.Times[k] {
			t.Fatalf("time %d drifted: %v vs %v", k, orig.Times[k], back.Times[k])
		}
	}
}

func TestReadCSV(t *testing.T) {
	in := "lat,lng,unix\n39.9,116.4,1000\n39.901,116.401,1010\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 || tr.Times == nil {
		t.Fatalf("Len=%d timed=%v", tr.Len(), tr.Times != nil)
	}
	if tr.Times[1].Unix() != 1010 {
		t.Errorf("unix = %d", tr.Times[1].Unix())
	}
	// Untimed variant without header.
	tr, err = ReadCSV(strings.NewReader("39.9,116.4\n39.901,116.401\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Times != nil {
		t.Error("untimed csv should have nil times")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"one field": "39.9\n",
		"bad lat":   "x,116.4\n1,2\n", // header skip applies only to line 1; line 2 valid but first data line must parse
		"bad lng":   "39.9,x\n",
		"bad time":  "39.9,116.4,x\n",
		"bad range": "939.9,116.4\n",
	}
	for name, in := range cases {
		if name == "bad lat" {
			// Line 1 is treated as header; ensure remaining parses fine
			// and errors only come from genuinely bad data rows.
			if _, err := ReadCSV(strings.NewReader(in)); err != nil {
				t.Errorf("%s: header tolerance broken: %v", name, err)
			}
			continue
		}
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := datagen.Truck(datagen.Config{Seed: 4, N: 80})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("round trip length %d != %d", back.Len(), orig.Len())
	}
	for k := range orig.Points {
		if geo.Haversine(orig.Points[k], back.Points[k]) > 0.05 {
			t.Fatalf("point %d drifted", k)
		}
	}
}

func TestFileDispatch(t *testing.T) {
	dir := t.TempDir()
	tr := datagen.Baboon(datagen.Config{Seed: 4, N: 50})

	pltPath := filepath.Join(dir, "a.plt")
	if err := WriteFile(pltPath, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(pltPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 50 {
		t.Errorf("plt dispatch read %d points", got.Len())
	}

	csvPath := filepath.Join(dir, "b.csv")
	if err := WriteFile(csvPath, tr); err != nil {
		t.Fatal(err)
	}
	got, err = ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 50 {
		t.Errorf("csv dispatch read %d points", got.Len())
	}

	if _, err := ReadFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file should error")
	}
}

// TestFileDispatchCaseInsensitive locks extension sniffing to
// case-insensitive dispatch: GeoLife exports appear in the wild as .PLT
// and .Plt, and parsing those as CSV would silently mangle them (the
// six-line preamble would be taken as header/garbage rows). The same
// applies to the streaming layer's per-file dispatch (scannerForPath).
func TestFileDispatchCaseInsensitive(t *testing.T) {
	dir := t.TempDir()
	tr := datagen.Baboon(datagen.Config{Seed: 9, N: 40})
	for _, name := range []string{"upper.PLT", "mixed.Plt", "lower.plt"} {
		p := filepath.Join(dir, name)
		if err := WriteFile(p, tr); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(raw), "Geolife trajectory") {
			t.Fatalf("%s was not written in PLT format", name)
		}
		got, err := ReadFile(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Len() != tr.Len() {
			t.Errorf("%s: read %d points, want %d", name, got.Len(), tr.Len())
		}

		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		st, err := scannerForPath(p, f).Next()
		f.Close()
		if err != nil {
			t.Fatalf("%s: streaming dispatch: %v", name, err)
		}
		if !reflect.DeepEqual(st, got) {
			t.Errorf("%s: streaming dispatch differs from ReadFile", name)
		}
	}
}

func TestWriteUntimedPLT(t *testing.T) {
	tr := traj.FromPoints([]geo.Point{{Lat: 1, Lng: 2}, {Lat: 1.1, Lng: 2.1}})
	var buf bytes.Buffer
	if err := WritePLT(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPLT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Errorf("untimed plt round trip lost points")
	}
}
