// Package geojson exports trajectories and discovered motifs as GeoJSON
// FeatureCollections (RFC 7946) for inspection in any map viewer —
// the practical counterpart of the paper's Figure 1(b), which renders a
// discovered motif on a map.
package geojson

import (
	"encoding/json"
	"fmt"
	"io"

	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

// feature mirrors the GeoJSON Feature structure.
type feature struct {
	Type       string         `json:"type"`
	Properties map[string]any `json:"properties"`
	Geometry   geometry       `json:"geometry"`
}

type geometry struct {
	Type        string      `json:"type"`
	Coordinates [][]float64 `json:"coordinates"`
}

type collection struct {
	Type     string    `json:"type"`
	Features []feature `json:"features"`
}

func lineString(pts []geo.Point) geometry {
	coords := make([][]float64, len(pts))
	for k, p := range pts {
		coords[k] = []float64{p.Lng, p.Lat} // GeoJSON is lng-first
	}
	return geometry{Type: "LineString", Coordinates: coords}
}

// Leg names a highlighted subtrajectory in the export.
type Leg struct {
	Name string
	Span traj.Span
	// Color is a hint most viewers honor via simplestyle "stroke".
	Color string
}

// Write encodes the trajectory and any highlighted legs as a GeoJSON
// FeatureCollection: one muted LineString for the full track, one strongly
// colored LineString per leg.
func Write(w io.Writer, t *traj.Trajectory, legs ...Leg) error {
	if t == nil || t.Len() == 0 {
		return fmt.Errorf("geojson: empty trajectory")
	}
	col := collection{Type: "FeatureCollection"}
	col.Features = append(col.Features, feature{
		Type: "Feature",
		Properties: map[string]any{
			"name":   "trajectory",
			"stroke": "#9999aa",
		},
		Geometry: lineString(t.Points),
	})
	for k, leg := range legs {
		if !leg.Span.Valid(t.Len()) {
			return fmt.Errorf("geojson: leg %q has invalid span %v for %d points", leg.Name, leg.Span, t.Len())
		}
		color := leg.Color
		if color == "" {
			color = [...]string{"#e41a1c", "#377eb8", "#4daf4a", "#984ea3"}[k%4]
		}
		props := map[string]any{
			"name":         leg.Name,
			"stroke":       color,
			"stroke-width": 4,
			"start":        leg.Span.Start,
			"end":          leg.Span.End,
		}
		if first, last, ok := t.TimeRange(leg.Span); ok {
			props["from"] = first.Format("2006-01-02T15:04:05Z07:00")
			props["to"] = last.Format("2006-01-02T15:04:05Z07:00")
		}
		col.Features = append(col.Features, feature{
			Type:       "Feature",
			Properties: props,
			Geometry:   lineString(t.SubSpan(leg.Span)),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(col)
}

// WriteMotif is a convenience wrapper naming the two legs of a motif.
func WriteMotif(w io.Writer, t *traj.Trajectory, a, b traj.Span, distance float64) error {
	return Write(w, t,
		Leg{Name: fmt.Sprintf("motif leg A (DFD %.1f m)", distance), Span: a, Color: "#e41a1c"},
		Leg{Name: fmt.Sprintf("motif leg B (DFD %.1f m)", distance), Span: b, Color: "#377eb8"},
	)
}
