package geojson

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"trajmotif/internal/datagen"
	"trajmotif/internal/traj"
)

func TestWriteMotifValidGeoJSON(t *testing.T) {
	tr := datagen.GeoLife(datagen.Config{Seed: 3, N: 120})
	var buf bytes.Buffer
	err := WriteMotif(&buf, tr, traj.Span{Start: 5, End: 30}, traj.Span{Start: 60, End: 85}, 12.5)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc["type"] != "FeatureCollection" {
		t.Errorf("type = %v", doc["type"])
	}
	features := doc["features"].([]any)
	if len(features) != 3 { // track + two legs
		t.Fatalf("features = %d, want 3", len(features))
	}
	// Coordinates must be lng-first.
	first := features[0].(map[string]any)
	coords := first["geometry"].(map[string]any)["coordinates"].([]any)
	pt := coords[0].([]any)
	lng, lat := pt[0].(float64), pt[1].(float64)
	if lng < 100 || lat > 50 {
		t.Errorf("coordinates not lng-first: [%g, %g] (Beijing is ~[116, 40])", lng, lat)
	}
	// Timed trajectory exports leg time ranges.
	if !strings.Contains(buf.String(), `"from"`) {
		t.Error("leg time range missing")
	}
}

func TestWriteValidation(t *testing.T) {
	tr := datagen.Truck(datagen.Config{Seed: 3, N: 20})
	var buf bytes.Buffer
	if err := Write(&buf, nil); err == nil {
		t.Error("nil trajectory should error")
	}
	if err := Write(&buf, tr, Leg{Name: "bad", Span: traj.Span{Start: 5, End: 99}}); err == nil {
		t.Error("invalid span should error")
	}
	if err := Write(&buf, tr); err != nil {
		t.Errorf("no-legs export should work: %v", err)
	}
}

func TestDefaultColorsCycle(t *testing.T) {
	tr := datagen.Baboon(datagen.Config{Seed: 3, N: 60})
	var buf bytes.Buffer
	legs := []Leg{
		{Name: "a", Span: traj.Span{Start: 0, End: 10}},
		{Name: "b", Span: traj.Span{Start: 11, End: 21}},
		{Name: "c", Span: traj.Span{Start: 22, End: 32}},
	}
	if err := Write(&buf, tr, legs...); err != nil {
		t.Fatal(err)
	}
	for _, color := range []string{"#e41a1c", "#377eb8", "#4daf4a"} {
		if !strings.Contains(buf.String(), color) {
			t.Errorf("missing default color %s", color)
		}
	}
}
