// Package symbolic implements the symbolic motif-discovery baseline the
// paper's related work dismisses (§2, Figure 4): trajectories are
// partitioned into fragments, each fragment is mapped to a movement-
// pattern symbol (V vertical straight, H horizontal straight, L left
// turn, R right turn), and motifs are found by substring matching on the
// resulting strings.
//
// The package exists to reproduce the paper's criticism: because symbols
// discard absolute location, two trajectories in different cities can map
// to the same string (Figure 4's Beijing and Shenzhen Uber routes both
// become "RVLH") even though their ground distance is enormous — exactly
// the failure mode DFD-based discovery avoids.
package symbolic

import (
	"math"
	"strings"

	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

// Symbol is a pre-defined movement pattern (Figure 4a).
type Symbol byte

const (
	// Vertical is a long straight leg heading predominantly north/south.
	Vertical Symbol = 'V'
	// Horizontal is a long straight leg heading predominantly east/west.
	Horizontal Symbol = 'H'
	// Left is a left turn (counterclockwise heading change).
	Left Symbol = 'L'
	// Right is a right turn (clockwise heading change).
	Right Symbol = 'R'
)

// turnThresholdDeg separates "straight" fragments from turns.
const turnThresholdDeg = 35

// Classify maps one fragment of consecutive points to its symbol by
// comparing the entry and exit headings: small change means a straight
// (V or H by predominant direction), otherwise a turn by sign.
func Classify(fragment []geo.Point) Symbol {
	if len(fragment) < 3 {
		return classifyStraight(fragment)
	}
	mid := len(fragment) / 2
	hIn := geo.Bearing(fragment[0], fragment[mid])
	hOut := geo.Bearing(fragment[mid], fragment[len(fragment)-1])
	turn := normDeg(hOut - hIn)
	switch {
	case math.Abs(turn) <= turnThresholdDeg:
		return classifyStraight(fragment)
	case turn < 0:
		return Left
	default:
		return Right
	}
}

func classifyStraight(fragment []geo.Point) Symbol {
	if len(fragment) < 2 {
		return Vertical
	}
	b := geo.Bearing(fragment[0], fragment[len(fragment)-1])
	// North/south headings are within 45 degrees of 0 or 180.
	if math.Abs(normDeg(b)) <= 45 || math.Abs(normDeg(b-180)) <= 45 {
		return Vertical
	}
	return Horizontal
}

// normDeg maps an angle to (-180, 180].
func normDeg(d float64) float64 {
	for d > 180 {
		d -= 360
	}
	for d <= -180 {
		d += 360
	}
	return d
}

// Encode converts a trajectory into its symbol string using fragments of
// fragLen points (minimum 2). A trailing remainder forms its own final
// fragment unless it is shorter than two points, in which case it is
// folded into the previous one.
func Encode(t *traj.Trajectory, fragLen int) string {
	if fragLen < 2 {
		fragLen = 2
	}
	var sb strings.Builder
	n := t.Len()
	for start := 0; start+1 < n; start += fragLen {
		end := start + fragLen
		if end > n || n-end < 2 {
			end = n
		}
		sb.WriteByte(byte(Classify(t.Points[start:end])))
		if end == n {
			break
		}
	}
	return sb.String()
}

// Motif is a repeated symbol substring: two non-overlapping occurrences.
type Motif struct {
	Pattern        string
	First, Second  int // fragment offsets of the two occurrences
	FragmentLength int
}

// LongestRepeat finds the longest substring occurring at two
// non-overlapping positions of s, by suffix dynamic programming in O(k²).
// ok is false when no repeat of length >= 1 exists.
func LongestRepeat(s string) (pattern string, first, second int, ok bool) {
	k := len(s)
	if k < 2 {
		return "", 0, 0, false
	}
	// dp[i][j] = length of the common prefix of s[i:] and s[j:]. The
	// non-overlap cap (j - i) applies only when ranking a repeat, never
	// inside the recurrence — capping the table itself would truncate
	// longer matches that become non-overlapping at earlier offsets.
	prev := make([]int, k+1)
	cur := make([]int, k+1)
	bestLen := 0
	for i := k - 1; i >= 0; i-- {
		for j := k - 1; j > i; j-- {
			if s[i] == s[j] {
				cur[j] = prev[j+1] + 1
				usable := cur[j]
				if cap := j - i; usable > cap {
					usable = cap
				}
				if usable > bestLen {
					bestLen = usable
					first, second = i, j
				}
			} else {
				cur[j] = 0
			}
		}
		copy(prev, cur)
		for x := range cur {
			cur[x] = 0
		}
	}
	if bestLen == 0 {
		return "", 0, 0, false
	}
	return s[first : first+bestLen], first, second, true
}

// Discover runs the full symbolic pipeline on one trajectory: encode,
// then longest repeated substring. The returned fragment offsets convert
// to point spans via Span.
func Discover(t *traj.Trajectory, fragLen int) (Motif, bool) {
	s := Encode(t, fragLen)
	pattern, first, second, ok := LongestRepeat(s)
	if !ok {
		return Motif{}, false
	}
	return Motif{Pattern: pattern, First: first, Second: second, FragmentLength: fragLen}, true
}

// Span converts a fragment offset and the motif's pattern length into the
// corresponding point span on the original trajectory.
func (m Motif) Span(fragOffset int, trajLen int) traj.Span {
	start := fragOffset * m.FragmentLength
	end := (fragOffset + len(m.Pattern)) * m.FragmentLength
	if end > trajLen-1 {
		end = trajLen - 1
	}
	return traj.Span{Start: start, End: end}
}

// SameString reports whether two trajectories encode to the same symbol
// string — the Figure 4 failure mode check.
func SameString(a, b *traj.Trajectory, fragLen int) (string, string, bool) {
	sa, sb := Encode(a, fragLen), Encode(b, fragLen)
	return sa, sb, sa == sb
}
