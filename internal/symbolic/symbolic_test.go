package symbolic

import (
	"testing"

	"trajmotif/internal/dist"
	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

// gridRoute builds a route of straight legs from (lat,lng) moves, each leg
// sampled with `per` points, offset to a city center.
func gridRoute(center geo.Point, legs [][2]float64, per int) *traj.Trajectory {
	pts := []geo.Point{center}
	cur := center
	for _, leg := range legs {
		for k := 1; k <= per; k++ {
			pts = append(pts, geo.Offset(cur, leg[0]*float64(k)/float64(per), leg[1]*float64(k)/float64(per)))
		}
		cur = geo.Offset(cur, leg[0], leg[1])
	}
	return traj.FromPoints(pts)
}

func TestClassifyStraights(t *testing.T) {
	north := gridRoute(geo.Point{Lat: 39.9, Lng: 116.4}, [][2]float64{{0, 500}}, 6)
	if got := Classify(north.Points); got != Vertical {
		t.Errorf("north leg = %c, want V", got)
	}
	east := gridRoute(geo.Point{Lat: 39.9, Lng: 116.4}, [][2]float64{{500, 0}}, 6)
	if got := Classify(east.Points); got != Horizontal {
		t.Errorf("east leg = %c, want H", got)
	}
}

func TestClassifyTurns(t *testing.T) {
	// North then east: a right turn at the midpoint.
	right := gridRoute(geo.Point{Lat: 39.9, Lng: 116.4}, [][2]float64{{0, 300}, {300, 0}}, 4)
	if got := Classify(right.Points); got != Right {
		t.Errorf("N-then-E = %c, want R", got)
	}
	// North then west: a left turn.
	left := gridRoute(geo.Point{Lat: 39.9, Lng: 116.4}, [][2]float64{{0, 300}, {-300, 0}}, 4)
	if got := Classify(left.Points); got != Left {
		t.Errorf("N-then-W = %c, want L", got)
	}
	if got := Classify([]geo.Point{{Lat: 1, Lng: 1}}); got != Vertical {
		t.Errorf("degenerate fragment = %c, want V fallback", got)
	}
}

func TestLongestRepeat(t *testing.T) {
	cases := []struct {
		s       string
		pattern string
		ok      bool
	}{
		{"RVLHRVLH", "RVLH", true},
		{"VVVVVV", "VVV", true}, // capped so occurrences cannot overlap
		{"RVLH", "R", false},    // no repeated symbol at all? R,V,L,H unique
		{"", "", false},
		{"V", "", false},
		{"LRLRLR", "LR", true}, // "LRL" occurrences overlap; "LR" is longest non-overlapping
		{"LRLHLRL", "LRL", true},
	}
	for _, c := range cases {
		pattern, first, second, ok := LongestRepeat(c.s)
		if ok != c.ok {
			t.Errorf("%q: ok=%v, want %v", c.s, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if pattern != c.pattern {
			t.Errorf("%q: pattern=%q, want %q", c.s, pattern, c.pattern)
		}
		if second < first+len(pattern) {
			t.Errorf("%q: occurrences overlap: %d,%d len %d", c.s, first, second, len(pattern))
		}
		if c.s[first:first+len(pattern)] != pattern || c.s[second:second+len(pattern)] != pattern {
			t.Errorf("%q: offsets do not match pattern", c.s)
		}
	}
}

// TestFigure4FailureMode reproduces the paper's Figure 4: the same
// R-V-L-H street pattern driven in Beijing and in Shenzhen maps to the
// same symbol string although the trajectories are ~2000 km apart, so
// symbolic matching would wrongly report them as a motif. DFD exposes the
// true distance.
func TestFigure4FailureMode(t *testing.T) {
	// right turn, vertical, left turn, horizontal — one symbol per 2 legs.
	legs := [][2]float64{
		{0, 400}, {400, 0}, // N then E   -> R
		{0, 400}, {0, 400}, // N, N       -> V
		{0, 400}, {-400, 0}, // N then W  -> L
		{-400, 0}, {-400, 0}, // W, W     -> H
	}
	beijing := gridRoute(geo.Point{Lat: 39.9042, Lng: 116.4074}, legs, 3)
	shenzhen := gridRoute(geo.Point{Lat: 22.5431, Lng: 114.0579}, legs, 3)

	fragLen := 6 // two legs per fragment (3 points each)
	sa, sb, same := SameString(beijing, shenzhen, fragLen)
	if sa != "RVLH" {
		t.Errorf("beijing string = %q, want RVLH", sa)
	}
	if !same {
		t.Fatalf("strings differ: %q vs %q — Figure 4 requires identical encodings", sa, sb)
	}
	d := dist.DFD(beijing.Points, shenzhen.Points, geo.Haversine)
	if d < 1_000_000 {
		t.Errorf("DFD between cities = %.0f m, expected >1000 km", d)
	}
}

func TestDiscover(t *testing.T) {
	// A route that drives the same R-turn block twice with filler between.
	legs := [][2]float64{
		{0, 400}, {400, 0}, // R
		{0, 400}, {400, 0}, // R (immediate repeat)
	}
	tr := gridRoute(geo.Point{Lat: 37.98, Lng: 23.72}, legs, 3)
	m, ok := Discover(tr, 7)
	if !ok {
		t.Fatal("expected a symbolic motif")
	}
	if len(m.Pattern) < 1 {
		t.Errorf("empty pattern")
	}
	spanA := m.Span(m.First, tr.Len())
	spanB := m.Span(m.Second, tr.Len())
	if !spanA.Valid(tr.Len()) || !spanB.Valid(tr.Len()) {
		t.Errorf("invalid spans %v %v", spanA, spanB)
	}

	// A trajectory with no repeated structure yields no motif.
	single := gridRoute(geo.Point{Lat: 37.98, Lng: 23.72}, [][2]float64{{0, 400}, {400, 0}}, 3)
	if s := Encode(single, 7); len(s) > 1 {
		t.Fatalf("unexpected encoding %q", s)
	}
	if _, ok := Discover(single, 7); ok {
		t.Error("single-symbol trajectory should have no repeat")
	}
}

func TestEncodeShortTail(t *testing.T) {
	// 10 points with fragLen 4: fragments [0..3], [4..7], [8..9] — the
	// two-point tail stands alone; an 11-point input would fold its
	// one-point tail into the final fragment instead.
	pts := make([]geo.Point, 10)
	for k := range pts {
		pts[k] = geo.Offset(geo.Point{Lat: 10, Lng: 10}, 0, float64(k)*50)
	}
	s := Encode(traj.FromPoints(pts), 4)
	if s != "VVV" {
		t.Errorf("encoding = %q, want VVV", s)
	}
	pts = append(pts, geo.Offset(geo.Point{Lat: 10, Lng: 10}, 0, 500))
	if s := Encode(traj.FromPoints(pts), 4); s != "VVV" {
		t.Errorf("11-point encoding = %q, want VVV (tail folded)", s)
	}
}
