// Package bounds implements the paper's lower-bound suite for the discrete
// Fréchet distance (§4.2) and its O(1)-amortized relaxed variants (§4.3).
//
// All bounds rest on Observation 1: the DFD of a candidate subtrajectory
// pair equals the min-max value over monotone coupling paths in the ground
// distance grid, and such a path from start cell (i, j) to end cell
// (ie, je) visits every column in [i, ie] and every row in [j, je].
// Consequently:
//
//   - LBcell:  the path starts at (i, j), so dG(i, j) is a lower bound.
//   - LBcross: the path crosses column i+1 and row j+1; the minima of
//     those lines bound the DFD from below.
//   - LBband:  with the minimum motif length ξ the path crosses ξ columns
//     and ξ rows beyond the start; the max of per-line minima bounds DFD.
//   - LBendcross: symmetric reasoning at the end cell prunes expansions
//     inside a candidate subset.
//
// Tight bounds use the exact per-subset line ranges of Eqs. (2)-(8) and
// cost O(n) / O(ξn) per subset. Relaxed bounds replace the ranges with
// subset-independent supersets so per-line minima can be shared across all
// subsets (Cmin/Rmin arrays, Eqs. (10)-(15)); a superset minimum is never
// larger, so relaxed bounds stay valid (Lemma 2) while dropping to O(1)
// amortized.
//
// Range derivation (documented in DESIGN.md; the paper's printed ranges
// for Eqs. (10)-(11) are garbled): for the single-trajectory problem a
// candidate rooted at (i, j) satisfies i < ie < j < je, ie >= i+ξ+1,
// je >= j+ξ+1, hence
//
//   - crossings of column i+1 happen at rows j' >= j >= i+ξ+2
//     ⇒ Cmin[i]     = min over j' in [i+ξ+2, m-1] of dG(i+1, j')
//   - crossings of column i”+1 for the band (i” in [i, i+ξ-1]) happen at
//     rows j' >= j >= i”+3 ⇒ CminBand[i”] = min over j' in [i”+3, m-1]
//   - crossings of row j”+1 (j” >= j) happen at columns i' <= ie <= j-1
//     ⇒ Rmin[j”]   = min over i' in [0, j”-1] of dG(i', j”+1)
//
// For the two-trajectory variant there is no ordering constraint and all
// ranges extend to the full line. For group-level bounds (§5.2) the same
// construction is applied to the dminG grid with separations scaled by the
// group size; see internal/group.
package bounds

import (
	"math"

	"trajmotif/internal/dmatrix"
)

// NoBound is the sentinel for "no constraint available" (e.g. a line past
// the grid edge). It compares below every real distance, so max() with it
// is the identity and pruning tests never fire on it.
var NoBound = math.Inf(-1)

// Params selects the index-range discipline for a Relaxed bound set.
type Params struct {
	// Window is the band length: ξ at point level, floor((ξ+1)/τ) at group
	// level. Window <= 0 disables band bounds.
	Window int
	// CrossSep constrains the forward self-separation: column i+1 can only
	// be crossed at rows j' >= i + CrossSep. Points: ξ+2; groups:
	// floor((ξ+2)/τ). Ignored when Self is false.
	CrossSep int
	// BandSep is the forward separation used for band column minima:
	// column i''+1 can only be crossed at rows j' >= i'' + BandSep.
	// Points: 3; groups: CrossSep - Window + 1 (>= 0). Ignored when Self
	// is false.
	BandSep int
	// BackSep constrains the backward range: row j+1 can only be crossed
	// at columns i' <= j - BackSep. Points: 1; groups: 0. Ignored when
	// Self is false.
	BackSep int
	// Self selects the single-trajectory ranges above; when false, every
	// line minimum ranges over the full line (two-trajectory variant).
	Self bool
	// UseCross gates the start-cross bound. It must be disabled at group
	// level when a candidate may start and end in the same group
	// (floor((ξ+1)/τ) == 0), because then the path need not leave the
	// start cell's row or column.
	UseCross bool
}

// PointParams returns the standard point-level parameters for minimum
// motif length xi.
func PointParams(xi int, self bool) Params {
	return Params{
		Window:   xi,
		CrossSep: xi + 2,
		BandSep:  3,
		BackSep:  1,
		Self:     self,
		UseCross: true,
	}
}

// GroupParams returns the group-level parameters for group size tau
// (§5.2): separations shrink by the grouping factor and the cross bound is
// disabled when a leg can fit inside one group.
func GroupParams(xi, tau int, self bool) Params {
	window := (xi + 1) / tau
	crossSep := (xi + 2) / tau
	bandSep := crossSep - window + 1
	if bandSep < 0 {
		bandSep = 0
	}
	return Params{
		Window:   window,
		CrossSep: crossSep,
		BandSep:  bandSep,
		BackSep:  0,
		Self:     self,
		UseCross: window >= 1,
	}
}

// Relaxed holds the precomputed arrays behind the O(1)-amortized bounds of
// §4.3: per-line minima (Cmin, Rmin, CminBand) and their sliding-window
// maxima for the band bounds.
type Relaxed struct {
	p Params
	// Cmin[i] lower-bounds any crossing of column i+1 by a feasible path
	// of a subset rooted at column i. NoBound where undefined.
	Cmin []float64
	// Rmin[j] lower-bounds any crossing of row j+1.
	Rmin []float64
	// RowBand[j] = max over j'' in [j, j+Window-1] of Rmin[j''].
	RowBand []float64
	// ColBand[i] = max over i'' in [i, i+Window-1] of CminBand[i''].
	ColBand []float64
	// CminBand is Cmin recomputed with the looser BandSep separation,
	// valid for every column inside a band window. Aliases Cmin when the
	// separations coincide (cross-trajectory case).
	CminBand []float64
}

// NewRelaxed precomputes the relaxed bound arrays for grid g in O(n*m)
// time — amortized O(1) per candidate subset, matching Table 3.
func NewRelaxed(g dmatrix.Grid, p Params) *Relaxed {
	n, m := g.Dims()
	r := &Relaxed{p: p}

	// Cmin / CminBand: minima over rows j' of column line i+1.
	r.Cmin = make([]float64, n)
	sameSep := !p.Self // full ranges coincide in the cross variant
	if sameSep {
		r.CminBand = r.Cmin
	} else {
		r.CminBand = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		r.Cmin[i] = NoBound
		if !sameSep {
			r.CminBand[i] = NoBound
		}
		if i+1 >= n {
			continue
		}
		loCross, loBand := 0, 0
		if p.Self {
			loCross, loBand = max(0, i+p.CrossSep), max(0, i+p.BandSep)
		}
		minCross, minBand := math.Inf(1), math.Inf(1)
		for j := min(loCross, loBand); j < m; j++ {
			d := g.At(i+1, j)
			if j >= loBand && d < minBand {
				minBand = d
			}
			if j >= loCross && d < minCross {
				minCross = d
			}
		}
		if !math.IsInf(minCross, 1) {
			r.Cmin[i] = minCross
		}
		if !sameSep && !math.IsInf(minBand, 1) {
			r.CminBand[i] = minBand
		}
	}

	// Rmin: minima over columns i' of row line j+1.
	r.Rmin = make([]float64, m)
	for j := 0; j < m; j++ {
		r.Rmin[j] = NoBound
		if j+1 >= m {
			continue
		}
		hi := n - 1
		if p.Self {
			hi = j - p.BackSep
		}
		minRow := math.Inf(1)
		for i := 0; i <= hi && i < n; i++ {
			if d := g.At(i, j+1); d < minRow {
				minRow = d
			}
		}
		if !math.IsInf(minRow, 1) {
			r.Rmin[j] = minRow
		}
	}

	r.RowBand = slidingMax(r.Rmin, p.Window)
	r.ColBand = slidingMax(r.CminBand, p.Window)
	return r
}

// slidingMax computes out[k] = max(vals[k .. min(k+w-1, end)]) with a
// monotonic deque in O(len) total. w <= 1 returns vals itself (window of
// one is the identity).
func slidingMax(vals []float64, w int) []float64 {
	if w <= 1 {
		return vals
	}
	out := make([]float64, len(vals))
	deque := make([]int, 0, len(vals)) // indexes, values decreasing
	// Process right-to-left: window starts at k and extends right.
	for k := len(vals) - 1; k >= 0; k-- {
		for len(deque) > 0 && vals[deque[len(deque)-1]] <= vals[k] {
			deque = deque[:len(deque)-1]
		}
		deque = append(deque, k)
		if deque[0] > k+w-1 {
			deque = deque[1:]
		}
		out[k] = vals[deque[0]]
	}
	return out
}

// StartCross is rLB_start-cross(i, j) = max(Cmin[i], Rmin[j]) (Eq. 12).
func (r *Relaxed) StartCross(i, j int) float64 {
	return math.Max(r.Cmin[i], r.Rmin[j])
}

// EndCross is rLB_end-cross(ie, je) = max(Cmin[ie], Rmin[je]) (Eq. 13). It
// lower-bounds every candidate of the subset whose end cell lies strictly
// beyond (ie, je) in both coordinates.
func (r *Relaxed) EndCross(ie, je int) float64 {
	return math.Max(r.Cmin[ie], r.Rmin[je])
}

// EndRowMin exposes Rmin[je] for the end-cross cap inside a subset's DP: a
// candidate ending at any row beyond je must cross row je+1, so its DFD is
// at least Rmin[je].
func (r *Relaxed) EndRowMin(je int) float64 { return r.Rmin[je] }

// Band is max(rLB_row-band(j), rLB_col-band(i)) (Eqs. 14-15).
func (r *Relaxed) Band(i, j int) float64 {
	if r.p.Window <= 0 {
		return NoBound
	}
	return math.Max(r.RowBand[j], r.ColBand[i])
}

// SubsetLB combines all applicable relaxed bounds with the cell bound into
// CS_{i,j}.LB as in §4.4: max{LBcell, rLBcross, rLBband}.
func (r *Relaxed) SubsetLB(cell float64, i, j int) float64 {
	lb := cell
	if r.p.UseCross {
		if v := r.StartCross(i, j); v > lb {
			lb = v
		}
	}
	if v := r.Band(i, j); v > lb {
		lb = v
	}
	return lb
}

// Parts returns the three bound components separately (cell is passed
// through) for the pruning-breakdown accounting of Figure 15.
func (r *Relaxed) Parts(cell float64, i, j int) (cellLB, crossLB, bandLB float64) {
	crossLB, bandLB = NoBound, NoBound
	if r.p.UseCross {
		crossLB = r.StartCross(i, j)
	}
	bandLB = r.Band(i, j)
	return cell, crossLB, bandLB
}

// Tight evaluates the unrelaxed bounds of §4.2 with the paper's exact
// per-subset ranges. Every call walks grid lines: Cross is O(n), Band is
// O(ξn) — the costs of Table 3. Used by the tight-vs-relaxed experiments
// (Figures 13-14).
type Tight struct {
	g    dmatrix.Grid
	xi   int
	self bool
}

// NewTight wraps a grid for tight bound evaluation.
func NewTight(g dmatrix.Grid, xi int, self bool) *Tight {
	return &Tight{g: g, xi: xi, self: self}
}

// Cell is LBcell(i, j) = dG(i, j) (Eq. 1).
func (t *Tight) Cell(i, j int) float64 { return t.g.At(i, j) }

// Row is LBrow(i, j) = min over i' in [i, hi] of dG(i', j+1) (Eq. 2),
// where hi = j-1 for the single-trajectory problem and n-1 otherwise.
func (t *Tight) Row(i, j int) float64 {
	n, m := t.g.Dims()
	if j+1 >= m {
		return NoBound
	}
	hi := n - 1
	if t.self && j-1 < hi {
		hi = j - 1
	}
	minRow := math.Inf(1)
	for i2 := i; i2 <= hi; i2++ {
		if d := t.g.At(i2, j+1); d < minRow {
			minRow = d
		}
	}
	if math.IsInf(minRow, 1) {
		return NoBound
	}
	return minRow
}

// Col is LBcol(i, j) = min over j' in [j, m-1] of dG(i+1, j') (Eq. 3).
func (t *Tight) Col(i, j int) float64 {
	n, m := t.g.Dims()
	if i+1 >= n {
		return NoBound
	}
	minCol := math.Inf(1)
	for j2 := j; j2 < m; j2++ {
		if d := t.g.At(i+1, j2); d < minCol {
			minCol = d
		}
	}
	if math.IsInf(minCol, 1) {
		return NoBound
	}
	return minCol
}

// StartCross is LB_start-cross(i, j) = max(LBrow, LBcol) (Eq. 4).
func (t *Tight) StartCross(i, j int) float64 {
	return math.Max(t.Row(i, j), t.Col(i, j))
}

// RowBand is LB_row-band(i, j) = max over j' in [j, j+ξ-1] of
// LBrow(i, j') (Eq. 5). Windows reaching past the grid are clamped, which
// can only weaken the bound.
func (t *Tight) RowBand(i, j int) float64 {
	best := NoBound
	for j2 := j; j2 < j+t.xi; j2++ {
		if _, m := t.g.Dims(); j2 >= m {
			break
		}
		if v := t.Row(i, j2); v > best {
			best = v
		}
	}
	return best
}

// ColBand is LB_col-band(i, j) = max over i' in [i, i+ξ-1] of
// LBcol(i', j) (Eq. 6).
func (t *Tight) ColBand(i, j int) float64 {
	best := NoBound
	for i2 := i; i2 < i+t.xi; i2++ {
		if n, _ := t.g.Dims(); i2 >= n {
			break
		}
		if v := t.Col(i2, j); v > best {
			best = v
		}
	}
	return best
}

// SubsetLB combines cell, cross and band tight bounds, mirroring §4.4's
// combination rule but with the unrelaxed components.
func (t *Tight) SubsetLB(i, j int) float64 {
	lb := t.Cell(i, j)
	if v := t.StartCross(i, j); v > lb {
		lb = v
	}
	if v := t.RowBand(i, j); v > lb {
		lb = v
	}
	if v := t.ColBand(i, j); v > lb {
		lb = v
	}
	return lb
}

// Bytes reports the memory held by the relaxed arrays (Figure 19
// accounting).
func (r *Relaxed) Bytes() int64 {
	total := len(r.Cmin) + len(r.Rmin)
	if len(r.RowBand) > 0 && &r.RowBand[0] != &r.Rmin[0] {
		total += len(r.RowBand)
	}
	if len(r.CminBand) > 0 && &r.CminBand[0] != &r.Cmin[0] {
		total += len(r.CminBand)
	}
	if len(r.ColBand) > 0 && &r.ColBand[0] != &r.CminBand[0] {
		total += len(r.ColBand)
	}
	return int64(total) * 8
}
