package bounds

import (
	"reflect"
	"testing"

	"trajmotif/internal/dmatrix"
	"trajmotif/internal/geo"
)

func codecGrid(n int) dmatrix.Grid {
	pts := make([]geo.Point, n)
	for k := range pts {
		pts[k] = geo.Point{Lat: 39 + float64(k)*0.003, Lng: 116 + float64(k%5)*0.004}
	}
	return dmatrix.ComputeSelf(pts, geo.Haversine)
}

func TestRelaxedMarshalRoundTrip(t *testing.T) {
	g := codecGrid(14)
	for _, tc := range []struct {
		name string
		p    Params
	}{
		// Self point params: CminBand independent, bands windowed.
		{"self", PointParams(4, true)},
		// Cross params: CminBand aliases Cmin.
		{"cross", PointParams(4, false)},
		// Window 1: slidingMax returns its input, so RowBand aliases
		// Rmin and ColBand aliases CminBand (which aliases Cmin in the
		// cross case — a full alias chain).
		{"window1-cross", Params{Window: 1, Self: false, UseCross: true}},
		{"window0-self", Params{Window: 0, CrossSep: 5, BandSep: 3, BackSep: 1, Self: true}},
		{"group", GroupParams(9, 3, true)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRelaxed(g, tc.p)
			got, err := Unmarshal(r.Marshal())
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if !reflect.DeepEqual(got, r) {
				t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, r)
			}
			// The aliasing (and with it the byte accounting the cache
			// budget sees) must survive, not just the values.
			if got.Bytes() != r.Bytes() {
				t.Fatalf("Bytes: got %d want %d", got.Bytes(), r.Bytes())
			}
			if sameSlice(got.CminBand, got.Cmin) != sameSlice(r.CminBand, r.Cmin) {
				t.Fatal("CminBand aliasing lost")
			}
			if sameSlice(got.RowBand, got.Rmin) != sameSlice(r.RowBand, r.Rmin) {
				t.Fatal("RowBand aliasing lost")
			}
			if sameSlice(got.ColBand, got.CminBand) != sameSlice(r.ColBand, r.CminBand) {
				t.Fatal("ColBand aliasing lost")
			}
			// The decoded table must answer bound queries identically.
			n := len(r.Cmin)
			for i := 0; i < n; i++ {
				for j := 0; j < len(r.Rmin); j++ {
					if got.SubsetLB(0, i, j) != r.SubsetLB(0, i, j) {
						t.Fatalf("SubsetLB(%d,%d) diverged", i, j)
					}
				}
			}
		})
	}
}

func TestRelaxedUnmarshalRejectsCorruption(t *testing.T) {
	r := NewRelaxed(codecGrid(10), PointParams(3, true))
	enc := r.Marshal()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Unmarshal(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := Unmarshal(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}
