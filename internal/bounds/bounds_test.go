package bounds

import (
	"math"
	"math/rand"
	"testing"

	"trajmotif/internal/dist"
	"trajmotif/internal/dmatrix"
	"trajmotif/internal/geo"
)

func randPoints(r *rand.Rand, n int) []geo.Point {
	pts := make([]geo.Point, n)
	x, y := 0.0, 0.0
	for i := range pts {
		x += r.Float64()*2 - 1
		y += r.Float64()*2 - 1
		pts[i] = geo.Point{Lng: x, Lat: y}
	}
	return pts
}

// exactDFD computes the DFD of the candidate (i,ie,j,je) directly from the
// grid window — the canonical kernel's windowed form, no copy — serving as
// the ground truth for bound soundness tests.
func exactDFD(g dmatrix.Grid, i, ie, j, je int) float64 {
	d, _ := dist.DFDFromGridCapped(g, i, ie, j, je, math.Inf(1))
	return d
}

func TestSlidingMax(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	got := slidingMax(vals, 3)
	want := []float64{4, 4, 5, 9, 9, 9, 6, 6}
	for k := range want {
		if got[k] != want[k] {
			t.Errorf("slidingMax[%d] = %g, want %g", k, got[k], want[k])
		}
	}
	// Window 1 is the identity (same backing array).
	if id := slidingMax(vals, 1); &id[0] != &vals[0] {
		t.Error("window 1 should alias input")
	}
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(40)
		w := 1 + r.Intn(10)
		v := make([]float64, n)
		for i := range v {
			v[i] = r.Float64()
		}
		got := slidingMax(v, w)
		for k := 0; k < n; k++ {
			want := math.Inf(-1)
			for x := k; x < k+w && x < n; x++ {
				want = math.Max(want, v[x])
			}
			if got[k] != want {
				t.Fatalf("trial %d: slidingMax[%d] = %g, want %g (w=%d)", trial, k, got[k], want, w)
			}
		}
	}
}

func TestRelaxedArrayDefinitions(t *testing.T) {
	// Hand-checkable 6x6 self grid. Row r = point index of leg A; the grid
	// is symmetric with zero diagonal like a real self distance matrix.
	pts := randPoints(rand.New(rand.NewSource(42)), 6)
	g := dmatrix.ComputeSelf(pts, geo.Euclidean)
	xi := 1
	p := PointParams(xi, true)
	r := NewRelaxed(g, p)

	n, m := g.Dims()
	for i := 0; i < n; i++ {
		want := math.Inf(1)
		for j := i + p.CrossSep; j < m; j++ {
			want = math.Min(want, g.At(i+1, j))
		}
		if i+1 >= n || math.IsInf(want, 1) {
			if r.Cmin[i] != NoBound {
				t.Errorf("Cmin[%d] = %g, want NoBound", i, r.Cmin[i])
			}
		} else if math.Abs(r.Cmin[i]-want) > 1e-12 {
			t.Errorf("Cmin[%d] = %g, want %g", i, r.Cmin[i], want)
		}
	}
	for j := 0; j < m; j++ {
		want := math.Inf(1)
		for i := 0; i <= j-p.BackSep && i < n; i++ {
			want = math.Min(want, g.At(i, j+1))
		}
		if j+1 >= m || math.IsInf(want, 1) {
			if r.Rmin[j] != NoBound {
				t.Errorf("Rmin[%d] = %g, want NoBound", j, r.Rmin[j])
			}
		} else if math.Abs(r.Rmin[j]-want) > 1e-12 {
			t.Errorf("Rmin[%d] = %g, want %g", j, r.Rmin[j], want)
		}
	}
}

// TestBoundSoundnessSelf is the central property: for random self grids
// and every feasible candidate, relaxed LB <= tight LB components and
// every LB <= exact DFD (no false negatives, §4.3).
func TestBoundSoundnessSelf(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 25; trial++ {
		n := 14 + r.Intn(12)
		xi := 1 + r.Intn(3)
		pts := randPoints(r, n)
		g := dmatrix.ComputeSelf(pts, geo.Euclidean)
		rb := NewRelaxed(g, PointParams(xi, true))
		tb := NewTight(g, xi, true)

		for i := 0; i <= n-2*xi-4; i++ {
			for j := i + xi + 2; j <= n-xi-2; j++ {
				tightLB := tb.SubsetLB(i, j)
				relaxedLB := rb.SubsetLB(g.At(i, j), i, j)
				if relaxedLB > tightLB+1e-9 {
					t.Fatalf("n=%d xi=%d (%d,%d): relaxed %g > tight %g", n, xi, i, j, relaxedLB, tightLB)
				}
				// Check soundness against a few random feasible candidates.
				for k := 0; k < 3; k++ {
					ie := i + xi + 1 + r.Intn(j-i-xi-1)
					je := j + xi + 1 + r.Intn(n-j-xi-1)
					d := exactDFD(g, i, ie, j, je)
					if tightLB > d+1e-9 {
						t.Fatalf("tight LB %g > DFD %g for (%d,%d,%d,%d), n=%d xi=%d",
							tightLB, d, i, ie, j, je, n, xi)
					}
					if relaxedLB > d+1e-9 {
						t.Fatalf("relaxed LB %g > DFD %g for (%d,%d,%d,%d), n=%d xi=%d",
							relaxedLB, d, i, ie, j, je, n, xi)
					}
					// End-cross: candidates strictly beyond (ie, je) are
					// bounded by EndCross(ie', je') for any ie' < ie, je' < je
					// visited on the way. Spot-check the direct form.
					if ie > i+1 && je > j+1 {
						ec := rb.EndCross(ie-1, je-1)
						if ec > d+1e-9 {
							t.Fatalf("end-cross %g > DFD %g for (%d,%d,%d,%d)", ec, d, i, ie, j, je)
						}
					}
				}
			}
		}
	}
}

// TestBoundSoundnessCross repeats the soundness property for the
// two-trajectory variant, where no ordering constraint applies.
func TestBoundSoundnessCross(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n, m := 10+r.Intn(8), 10+r.Intn(8)
		xi := 1 + r.Intn(3)
		if n < xi+3 || m < xi+3 {
			continue
		}
		a, b := randPoints(r, n), randPoints(r, m)
		g := dmatrix.ComputeCross(a, b, geo.Euclidean)
		rb := NewRelaxed(g, PointParams(xi, false))
		tb := NewTight(g, xi, false)

		for i := 0; i <= n-xi-2; i++ {
			for j := 0; j <= m-xi-2; j++ {
				tightLB := tb.SubsetLB(i, j)
				relaxedLB := rb.SubsetLB(g.At(i, j), i, j)
				if relaxedLB > tightLB+1e-9 {
					t.Fatalf("(%d,%d): relaxed %g > tight %g", i, j, relaxedLB, tightLB)
				}
				ie := i + xi + 1 + r.Intn(n-i-xi-1)
				je := j + xi + 1 + r.Intn(m-j-xi-1)
				d := exactDFD(g, i, ie, j, je)
				if tightLB > d+1e-9 {
					t.Fatalf("tight LB %g > DFD %g for (%d,%d,%d,%d)", tightLB, d, i, ie, j, je)
				}
			}
		}
	}
}

// TestCellBoundIsStartDistance pins Eq. (1): LBcell is exactly the
// start-cell ground distance, the first value on every coupling path.
func TestCellBoundIsStartDistance(t *testing.T) {
	g := dmatrix.FromRows([][]float64{
		{0, 2, 8, 9, 7},
		{2, 0, 3, 8, 9},
		{8, 3, 0, 2, 7},
		{9, 8, 2, 0, 3},
		{7, 9, 7, 3, 0},
	})
	tb := NewTight(g, 1, true)
	if got := tb.Cell(0, 3); got != 9 {
		t.Errorf("Cell(0,3) = %g, want 9", got)
	}
	d := exactDFD(g, 0, 1, 3, 4)
	if d < 9 {
		t.Errorf("DFD %g below LBcell 9", d)
	}
}

func TestGroupParams(t *testing.T) {
	p := GroupParams(100, 32, true)
	if p.Window != 3 { // floor(101/32)
		t.Errorf("Window = %d, want 3", p.Window)
	}
	if p.CrossSep != 3 { // floor(102/32)
		t.Errorf("CrossSep = %d, want 3", p.CrossSep)
	}
	if !p.UseCross {
		t.Error("cross bound should be enabled when window >= 1")
	}
	// When a whole leg fits in one group, cross bounds must be disabled.
	p = GroupParams(5, 32, true)
	if p.UseCross || p.Window != 0 {
		t.Errorf("expected disabled cross/band for tau >> xi, got %+v", p)
	}
	if p.BandSep < 0 {
		t.Errorf("BandSep must be clamped at 0, got %d", p.BandSep)
	}
}

func TestFlyMatchesMatrix(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	pts := randPoints(r, 20)
	m := dmatrix.ComputeSelf(pts, geo.Euclidean)
	f := dmatrix.NewFlySelf(pts, geo.Euclidean)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if math.Abs(m.At(i, j)-f.At(i, j)) > 1e-12 {
				t.Fatalf("Fly and Matrix disagree at (%d,%d)", i, j)
			}
		}
	}
	// Relaxed bounds built on either grid must coincide.
	rm := NewRelaxed(m, PointParams(2, true))
	rf := NewRelaxed(f, PointParams(2, true))
	for i := range rm.Cmin {
		if math.Abs(rm.Cmin[i]-rf.Cmin[i]) > 1e-12 {
			t.Fatalf("Cmin[%d] differs between grids", i)
		}
	}
}

func TestSubsetLBNoBoundHandling(t *testing.T) {
	// A grid too small for any band/cross info must still return the cell
	// bound rather than a poisoned value.
	g := dmatrix.FromRows([][]float64{{0, 5}, {5, 0}})
	r := NewRelaxed(g, PointParams(3, true))
	if lb := r.SubsetLB(5, 0, 1); lb != 5 {
		t.Errorf("SubsetLB = %g, want 5 (cell only)", lb)
	}
}

func TestBytesAccounting(t *testing.T) {
	pts := randPoints(rand.New(rand.NewSource(9)), 50)
	g := dmatrix.ComputeSelf(pts, geo.Euclidean)
	if got, want := g.Bytes(), int64(50*50*8); got != want {
		t.Errorf("Matrix.Bytes = %d, want %d", got, want)
	}
	r := NewRelaxed(g, PointParams(4, true))
	if r.Bytes() <= 0 {
		t.Error("Relaxed.Bytes should be positive")
	}
}
