package bounds

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary codec for Relaxed, used by the store's disk artifact tier.
//
// Two properties matter beyond exact float64 round-tripping. First, the
// unexported Params must survive, because SubsetLB/Band consult them.
// Second, the slice aliasing NewRelaxed produces must survive: CminBand
// aliases Cmin when the separations coincide, and slidingMax returns its
// input for Window <= 1 (so RowBand can alias Rmin and ColBand can alias
// CminBand). Bytes() detects aliasing by backing-array identity to avoid
// double-counting, so a codec that always materialized five independent
// slices would inflate the decoded table's byte accounting — and with it
// the cache's eviction behaviour — relative to a freshly built one.
//
// Layout (little-endian): Window, CrossSep, BandSep, BackSep as int64;
// one byte each for Self and UseCross; one alias-flag byte (bit 0:
// CminBand==Cmin, bit 1: RowBand==Rmin, bit 2: ColBand==CminBand); then
// Cmin, Rmin, and each non-aliased slice of CminBand, RowBand, ColBand
// in that order, each as uint64 length + float64 bits.

const (
	aliasCminBand = 1 << 0
	aliasRowBand  = 1 << 1
	aliasColBand  = 1 << 2
)

// sameSlice reports whether two slices share one backing array — the
// aliasing predicate Bytes() uses.
func sameSlice(a, b []float64) bool {
	return len(a) > 0 && len(a) == len(b) && &a[0] == &b[0]
}

// Marshal encodes the relaxed bound set.
func (r *Relaxed) Marshal() []byte {
	flags := byte(0)
	if sameSlice(r.CminBand, r.Cmin) {
		flags |= aliasCminBand
	}
	if sameSlice(r.RowBand, r.Rmin) {
		flags |= aliasRowBand
	}
	if sameSlice(r.ColBand, r.CminBand) {
		flags |= aliasColBand
	}
	size := 4*8 + 2 + 1
	size += 8 + 8*len(r.Cmin)
	size += 8 + 8*len(r.Rmin)
	if flags&aliasCminBand == 0 {
		size += 8 + 8*len(r.CminBand)
	}
	if flags&aliasRowBand == 0 {
		size += 8 + 8*len(r.RowBand)
	}
	if flags&aliasColBand == 0 {
		size += 8 + 8*len(r.ColBand)
	}
	out := make([]byte, 0, size)
	putInt := func(v int) {
		out = binary.LittleEndian.AppendUint64(out, uint64(int64(v)))
	}
	putBool := func(v bool) {
		if v {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	putSlice := func(vals []float64) {
		out = binary.LittleEndian.AppendUint64(out, uint64(len(vals)))
		for _, v := range vals {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
	}
	putInt(r.p.Window)
	putInt(r.p.CrossSep)
	putInt(r.p.BandSep)
	putInt(r.p.BackSep)
	putBool(r.p.Self)
	putBool(r.p.UseCross)
	out = append(out, flags)
	putSlice(r.Cmin)
	putSlice(r.Rmin)
	if flags&aliasCminBand == 0 {
		putSlice(r.CminBand)
	}
	if flags&aliasRowBand == 0 {
		putSlice(r.RowBand)
	}
	if flags&aliasColBand == 0 {
		putSlice(r.ColBand)
	}
	return out
}

// Unmarshal decodes a bound set produced by Marshal, restoring the
// original slice aliasing. Any truncation or length inconsistency is an
// error (the disk tier treats it as a torn artifact).
func Unmarshal(data []byte) (*Relaxed, error) {
	var decodeErr error
	fail := func(format string, args ...any) {
		if decodeErr == nil {
			decodeErr = fmt.Errorf("bounds: "+format, args...)
		}
	}
	takeInt := func() int {
		if decodeErr != nil || len(data) < 8 {
			fail("truncated header")
			return 0
		}
		v := int64(binary.LittleEndian.Uint64(data))
		data = data[8:]
		return int(v)
	}
	takeByte := func() byte {
		if decodeErr != nil || len(data) < 1 {
			fail("truncated header")
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	takeSlice := func() []float64 {
		n := takeInt()
		if decodeErr != nil {
			return nil
		}
		// Bound the allocation by what the buffer can actually hold.
		if n < 0 || len(data) < 8*n {
			fail("slice length %d exceeds remaining %d bytes", n, len(data))
			return nil
		}
		vals := make([]float64, n)
		for k := range vals {
			vals[k] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*k:]))
		}
		data = data[8*n:]
		return vals
	}

	r := &Relaxed{}
	r.p.Window = takeInt()
	r.p.CrossSep = takeInt()
	r.p.BandSep = takeInt()
	r.p.BackSep = takeInt()
	r.p.Self = takeByte() != 0
	r.p.UseCross = takeByte() != 0
	flags := takeByte()
	r.Cmin = takeSlice()
	r.Rmin = takeSlice()
	if flags&aliasCminBand != 0 {
		r.CminBand = r.Cmin
	} else {
		r.CminBand = takeSlice()
	}
	if flags&aliasRowBand != 0 {
		r.RowBand = r.Rmin
	} else {
		r.RowBand = takeSlice()
	}
	if flags&aliasColBand != 0 {
		r.ColBand = r.CminBand
	} else {
		r.ColBand = takeSlice()
	}
	if decodeErr != nil {
		return nil, decodeErr
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("bounds: %d trailing bytes after bound set", len(data))
	}
	return r, nil
}
