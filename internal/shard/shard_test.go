package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"regexp"
	"testing"

	"trajmotif/internal/core"
	"trajmotif/internal/datagen"
	"trajmotif/internal/geo"
	"trajmotif/internal/serve"
	"trajmotif/internal/store"
	"trajmotif/internal/traj"
)

// artifactReq is the canonical self request the disk/restart checks
// drive the coordinator's ArtifactSource surface with.
func artifactReq(tr *traj.Trajectory, xi int) core.ArtifactRequest {
	return core.ArtifactRequest{
		A: tr.Points, Self: true, Xi: xi, WithBounds: true,
		Dist: geo.Haversine, Workers: 1,
	}
}

// The coordinator must satisfy the full serving surface, per-shard
// extension included, or serve.New cannot front it.
var (
	_ serve.Backend        = (*Coordinator)(nil)
	_ serve.ShardedBackend = (*Coordinator)(nil)
)

func fixture(t *testing.T, seed int64, n int) *traj.Trajectory {
	t.Helper()
	tr, err := datagen.Dataset(datagen.GeoLifeName, datagen.Config{Seed: seed, N: n})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// post sends one JSON request and returns status + raw body bytes — the
// parity suite compares bodies byte-for-byte, not decoded values.
func post(t *testing.T, url, method, path string, body any) (int, []byte) {
	t.Helper()
	var req *http.Request
	var err error
	if body != nil {
		b, merr := json.Marshal(body)
		if merr != nil {
			t.Fatal(merr)
		}
		req, err = http.NewRequest(method, url+path, bytes.NewReader(b))
	} else {
		req, err = http.NewRequest(method, url+path, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// scrubStats blanks the /stats fields that legitimately differ between
// a sharded and an unsharded deployment: wall-clock uptime and the
// shard count itself. Every other field — trajectories, cache and disk
// counters, built/reused effort, pair memos — must match byte-for-byte.
var scrubStats = regexp.MustCompile(`"(uptime|shards)":("[^"]*"|[0-9]+)`)

// scrubTimings blanks the wall-clock millisecond fields search responses
// embed. Every effort counter — subsets, dpCells, gridRebuildsAvoided,
// prunes — stays in the byte comparison.
var scrubTimings = regexp.MustCompile(`"(precomputeMs|searchMs)":[0-9.eE+-]+`)

// TestShardParityHTTP is the tentpole acceptance test for the sharded
// half: the same request stream against a 1-shard plain store and
// against 1-, 2- and 4-shard coordinators, at within-search workers 1
// and 4, yields byte-identical response bodies on every search endpoint
// — and byte-identical /stats effort counters.
func TestShardParityHTTP(t *testing.T) {
	type backendCase struct {
		name string
		mk   func(t *testing.T) serve.Backend
	}
	cases := []backendCase{
		{"store", func(t *testing.T) serve.Backend { return store.New(nil) }},
	}
	for _, n := range []int{1, 2, 4} {
		cases = append(cases, backendCase{fmt.Sprintf("shards%d", n), func(t *testing.T) serve.Backend {
			c, err := New(n, nil)
			if err != nil {
				t.Fatal(err)
			}
			return c
		}})
	}

	trs := []*traj.Trajectory{
		fixture(t, 41, 120), fixture(t, 42, 100), fixture(t, 43, 140), fixture(t, 44, 90),
	}

	for _, workers := range []int{1, 4} {
		// Drive the reference (plain store) first, recording every
		// response; then demand byte equality from each coordinator.
		type exchange struct {
			method, path string
			status       int
			body         []byte
		}
		var reference []exchange

		run := func(t *testing.T, bk serve.Backend, record bool) {
			srv := httptest.NewServer(serve.New(bk, &serve.Options{Workers: workers}))
			defer srv.Close()

			var ids []store.ID
			for _, tr := range trs {
				req := map[string]any{"points": pointsJSON(tr)}
				status, body := post(t, srv.URL, "POST", "/trajectories", req)
				if status != http.StatusOK {
					t.Fatalf("upload: %d %s", status, body)
				}
				var resp struct {
					ID store.ID `json:"id"`
				}
				if err := json.Unmarshal(body, &resp); err != nil {
					t.Fatal(err)
				}
				ids = append(ids, resp.ID)
			}

			requests := []struct {
				method, path string
				body         any
			}{
				{"POST", "/discover", map[string]any{"id": ids[0], "xi": 8}},
				{"POST", "/discover", map[string]any{"id": ids[0], "id2": ids[1], "xi": 6}},
				// The swapped orientation: single store transposes, shards
				// recompute — both count one build, identical bytes.
				{"POST", "/discover", map[string]any{"id": ids[1], "id2": ids[0], "xi": 6}},
				{"POST", "/discover/pairs", map[string]any{"ids": ids, "xi": 6}},
				{"POST", "/topk", map[string]any{"id": ids[2], "xi": 8, "k": 3}},
				{"POST", "/knn", map[string]any{"query": ids[0], "k": 3}},
				{"POST", "/join", map[string]any{"eps": 2000.0}},
				{"POST", "/join", map[string]any{"eps": 2000.0}}, // repeat: memo-hit path
				{"POST", "/cluster", map[string]any{"id": ids[3], "window": 20, "eps": 500.0}},
				{"POST", "/cluster", map[string]any{"id": ids[3], "window": 20, "eps": 500.0}},
				{"DELETE", "/trajectories/" + string(ids[3]), nil},
				{"POST", "/knn", map[string]any{"query": ids[0], "k": 3}}, // post-delete dataset
				{"GET", "/stats", nil},
			}
			for k, rq := range requests {
				status, body := post(t, srv.URL, rq.method, rq.path, rq.body)
				body = scrubTimings.ReplaceAll(body, []byte(`"$1":x`))
				if rq.path == "/stats" {
					body = scrubStats.ReplaceAll(body, []byte(`"$1":x`))
				}
				if record {
					reference = append(reference, exchange{rq.method, rq.path, status, body})
					continue
				}
				want := reference[k]
				if status != want.status || !bytes.Equal(body, want.body) {
					t.Fatalf("%s %s (request %d) diverges from the 1-shard store:\nwant %d %s\ngot  %d %s",
						rq.method, rq.path, k, want.status, want.body, status, body)
				}
			}
		}

		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			for i, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					run(t, tc.mk(t), i == 0)
				})
			}
		})
	}
}

func pointsJSON(tr *traj.Trajectory) [][2]float64 {
	out := make([][2]float64, tr.Len())
	for k, p := range tr.Points {
		out[k] = [2]float64{p.Lat, p.Lng}
	}
	return out
}

// TestCoordinatorRegistry: routing, insertion order, dedup, and Len
// across shard counts match the single store's registry semantics.
func TestCoordinatorRegistry(t *testing.T) {
	single := store.New(nil)
	c, err := New(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wantIDs []store.ID
	for seed := int64(1); seed <= 6; seed++ {
		tr := fixture(t, seed, 40)
		id1, created1, err1 := single.Add(tr)
		id2, created2, err2 := c.Add(tr)
		if err1 != nil || err2 != nil || id1 != id2 || created1 != created2 {
			t.Fatalf("Add diverges: (%v,%v,%v) vs (%v,%v,%v)", id1, created1, err1, id2, created2, err2)
		}
		wantIDs = append(wantIDs, id1)
	}
	// Duplicate content dedups identically.
	tr := fixture(t, 3, 40)
	if _, created, _ := c.Add(tr); created {
		t.Fatal("duplicate Add claimed creation")
	}
	if c.Len() != single.Len() {
		t.Fatalf("Len: %d vs %d", c.Len(), single.Len())
	}
	if got := c.IDs(); !reflect.DeepEqual(got, wantIDs) {
		t.Fatalf("IDs order diverges:\n got %v\nwant %v", got, wantIDs)
	}
	for _, id := range wantIDs {
		got, ok := c.Get(id)
		want, _ := single.Get(id)
		if !ok || got.Len() != want.Len() {
			t.Fatalf("Get(%s) diverges", id)
		}
	}
	// Remove drops from order and registry.
	if !c.Remove(wantIDs[2]) {
		t.Fatal("Remove missed a registered id")
	}
	if c.Remove(wantIDs[2]) {
		t.Fatal("double Remove succeeded")
	}
	rest := append(append([]store.ID(nil), wantIDs[:2]...), wantIDs[3:]...)
	if got := c.IDs(); !reflect.DeepEqual(got, rest) {
		t.Fatalf("post-Remove IDs: %v want %v", got, rest)
	}
	if c.Stats().Removed != 1 {
		t.Fatalf("Removed counter: %+v", c.Stats())
	}
}

// TestRemoveBroadcastsPurge: a pair memo lives on the shard owning the
// canonical (smaller) geometry ID — not necessarily a shard owning
// either trajectory — so Remove must purge on every shard.
func TestRemoveBroadcastsPurge(t *testing.T) {
	c, err := New(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := fixture(t, 51, 30), fixture(t, 52, 30)
	ida, _, _ := c.Add(a)
	if _, _, err := c.Add(b); err != nil {
		t.Fatal(err)
	}
	ts := []*traj.Trajectory{a, b}
	ed := c.EndpointDists(ts)
	if ed == nil {
		t.Fatal("EndpointDists nil with caching on")
	}
	ed(0, 1)
	if st := c.Stats(); st.PairDistsBuilt != 1 {
		t.Fatalf("pair memo not built: %+v", st)
	}
	if !c.Remove(ida) {
		t.Fatal("Remove failed")
	}
	// The purge must have reached the memo's shard, wherever it lives.
	if st := c.Stats(); st.Evicted != 1 {
		t.Fatalf("pair memo survived the broadcast purge: %+v", st)
	}
	// Rebuilt on next use, not served stale.
	ed2 := c.EndpointDists(ts)
	ed2(0, 1)
	if st := c.Stats(); st.PairDistsBuilt != 2 {
		t.Fatalf("memo not rebuilt after purge: %+v", st)
	}
}

// TestCoordinatorSnapshotAcrossShardCounts: a snapshot taken at one
// shard count restores at another — routing re-derives from content.
func TestCoordinatorSnapshotAcrossShardCounts(t *testing.T) {
	c2, err := New(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want []store.ID
	for seed := int64(61); seed <= 65; seed++ {
		id, _, err := c2.Add(fixture(t, seed, 35))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, id)
	}
	snap := filepath.Join(t.TempDir(), "registry.snap")
	if n, err := c2.Snapshot(snap); err != nil || n != 5 {
		t.Fatalf("Snapshot: n=%d err=%v", n, err)
	}
	c3, err := New(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := c3.Restore(snap); err != nil || n != 5 {
		t.Fatalf("Restore: n=%d err=%v", n, err)
	}
	if got := c3.IDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored IDs diverge:\n got %v\nwant %v", got, want)
	}
	// A missing snapshot restores as a clean first boot.
	if n, err := c3.Restore(filepath.Join(t.TempDir(), "absent.snap")); n != 0 || err != nil {
		t.Fatalf("missing snapshot: n=%d err=%v", n, err)
	}
	// Bad shard counts are rejected.
	if _, err := New(0, nil); err == nil {
		t.Fatal("New(0) accepted")
	}
}

// TestCoordinatorDiskTier: per-shard artifact directories spill and
// promote independently; a restarted coordinator over the same root
// comes back warm.
func TestCoordinatorDiskTier(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Coordinator {
		c, err := New(2, &store.Options{ArtifactDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1 := mk()
	trs := []*traj.Trajectory{fixture(t, 71, 50), fixture(t, 72, 60)}
	for _, tr := range trs {
		if _, _, err := c1.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range trs {
		c1.Artifacts(artifactReq(tr, 4))
	}
	st1 := c1.Stats()
	if st1.DiskWrites != 4 || st1.DiskArtifacts != 4 {
		t.Fatalf("spills missing: %+v", st1)
	}
	snap := filepath.Join(dir, "registry.snap")
	if _, err := c1.Snapshot(snap); err != nil {
		t.Fatal(err)
	}

	c2 := mk()
	if _, err := c2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for _, tr := range trs {
		if _, _, reused := c2.Artifacts(artifactReq(tr, 4)); reused != 2 {
			t.Fatalf("warm restart reused %d artifacts, want 2", reused)
		}
	}
	st2 := c2.Stats()
	if st2.Built != 0 || st2.DiskReads != 4 {
		t.Fatalf("restart rebuilt instead of promoting: %+v", st2)
	}
}
