// Package shard partitions the serve-mode trajectory store across N
// in-process shards behind one coordinator that implements the same
// serving surface (core.ArtifactSource plus the registry/retrieval
// methods internal/serve consumes), so the HTTP layer is oblivious to
// the shard count.
//
// Sharding happens at the state layer, not the search layer. Trajectory
// registrations route by registry content ID, artifacts by the geometry
// content ID their keys derive from; the searches themselves still run
// globally over the resolved dataset, pulling artifacts from whichever
// shard owns them. That placement is what makes an N-shard deployment
// byte-identical to the 1-shard store — results and effort counters
// alike: a per-shard partial kNN could merge result lists under the
// canonical (distance, id) order, but the paper's pruning cascade
// threads a globally sequential kth-best bound through the candidate
// walk, so independently searched shards would provably prune different
// counts and the /stats counters would diverge. Partitioning the state
// keeps every artifact built exactly once on exactly one shard (sums
// match the single store), while Add/Remove/IDs/Stats scatter-gather
// across shards concurrently and merge deterministically.
package shard

import (
	"fmt"
	"hash/fnv"
	"sync"

	"trajmotif/internal/bounds"
	"trajmotif/internal/core"
	"trajmotif/internal/dmatrix"
	"trajmotif/internal/geo"
	"trajmotif/internal/spatial"
	"trajmotif/internal/store"
	"trajmotif/internal/traj"
)

// Coordinator fronts N store shards. It is safe for concurrent use: its
// own mutex guards only the insertion-order bookkeeping; everything else
// delegates to the shards, which lock internally.
type Coordinator struct {
	shards []*store.Store
	df     geo.DistanceFunc

	mu      sync.Mutex
	order   []store.ID // coordinator-wide insertion order
	inOrder map[store.ID]bool
}

// New creates a coordinator over n shards. opt (may be nil) is the
// single-store configuration; the byte budget and registry cap are
// divided across shards so an N-shard deployment consumes the same
// resources the 1-shard store would, and ArtifactDir gets a per-shard
// "shard-<i>" subdirectory so shards never contend for files.
func New(n int, opt *store.Options) (*Coordinator, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	var base store.Options
	if opt != nil {
		base = *opt
	}
	c := &Coordinator{shards: make([]*store.Store, n), inOrder: make(map[store.ID]bool)}
	for i := range c.shards {
		so := base
		if so.CacheBytes == 0 {
			so.CacheBytes = store.DefaultCacheBytes
		}
		if so.CacheBytes > 0 {
			so.CacheBytes = max(so.CacheBytes/int64(n), 1)
		}
		if so.MaxTrajectories > 0 {
			// Ceiling division: N shards must hold at least the single
			// store's cap in aggregate.
			so.MaxTrajectories = (so.MaxTrajectories + n - 1) / n
		}
		if so.ArtifactDir != "" {
			so.ArtifactDir = fmt.Sprintf("%s/shard-%d", base.ArtifactDir, i)
		}
		c.shards[i] = store.New(&so)
	}
	c.df = c.shards[0].Dist()
	return c, nil
}

// Shards reports the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// shardFor routes a content ID to its owning shard: FNV-1a over the hex
// ID, mod N. Content IDs are already uniform SHA-256 output, so any
// stable cheap hash spreads them evenly.
func (c *Coordinator) shardFor(id store.ID) *store.Store {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	return c.shards[h.Sum64()%uint64(len(c.shards))]
}

// Add routes a trajectory to the shard its registry content ID hashes
// to and records coordinator-wide insertion order.
func (c *Coordinator) Add(t *traj.Trajectory) (store.ID, bool, error) {
	if t == nil || t.Len() == 0 {
		return "", false, fmt.Errorf("store: nil or empty trajectory")
	}
	id := store.IDFor(t)
	id2, created, err := c.shardFor(id).Add(t)
	if err != nil {
		return id2, created, err
	}
	if created {
		c.mu.Lock()
		if c.inOrder[id2] {
			// The shard evicted and re-admitted this content: it moves to
			// the end of the insertion order, matching the single store.
			c.dropFromOrderLocked(id2)
		}
		c.order = append(c.order, id2)
		c.inOrder[id2] = true
		c.mu.Unlock()
	}
	return id2, created, err
}

// dropFromOrderLocked removes one id from the coordinator order.
func (c *Coordinator) dropFromOrderLocked(id store.ID) {
	for k, oid := range c.order {
		if oid == id {
			c.order = append(c.order[:k], c.order[k+1:]...)
			break
		}
	}
	delete(c.inOrder, id)
}

// Get resolves an id on its owning shard ("touch on query" applies
// there, like the single store).
func (c *Coordinator) Get(id store.ID) (*traj.Trajectory, bool) {
	return c.shardFor(id).Get(id)
}

// Remove deletes a trajectory from its owning shard and broadcasts the
// artifact purge: the trajectory registers by registry ID but its
// artifacts key by geometry ID — and pair memos by canonical ID order —
// so derived artifacts can live on other shards.
func (c *Coordinator) Remove(id store.ID) bool {
	owner := c.shardFor(id)
	t, ok := owner.Get(id)
	if !ok {
		return false
	}
	pid := store.PointsID(t.Points)
	if !owner.Remove(id) {
		return false
	}
	var wg sync.WaitGroup
	for _, sh := range c.shards {
		if sh == owner {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh.PurgeArtifacts(pid)
		}()
	}
	wg.Wait()
	c.mu.Lock()
	c.dropFromOrderLocked(id)
	c.mu.Unlock()
	return true
}

// Len sums the shard registries (ids partition across shards, so the
// sum never double-counts).
func (c *Coordinator) Len() int {
	total := 0
	for _, n := range scatterInto(c.shards, func(sh *store.Store) int { return sh.Len() }) {
		total += n
	}
	return total
}

// IDs lists registered trajectories in coordinator-wide insertion order
// — the order the 1-shard store would report. Shard-local evictions
// (TTL, capacity) are reconciled lazily: membership scatters across the
// shards concurrently and the stale order entries are pruned here.
func (c *Coordinator) IDs() []store.ID {
	lists := scatterInto(c.shards, func(sh *store.Store) []store.ID { return sh.IDs() })
	live := make(map[store.ID]bool)
	for _, ids := range lists {
		for _, id := range ids {
			live[id] = true
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.order[:0]
	for _, id := range c.order {
		if live[id] {
			kept = append(kept, id)
		} else {
			delete(c.inOrder, id)
		}
	}
	c.order = kept
	return append([]store.ID(nil), c.order...)
}

// scatterInto fans one accessor out across every shard concurrently and
// gathers the results in shard order — deterministic regardless of
// completion order.
func scatterInto[T any](shards []*store.Store, f func(*store.Store) T) []T {
	out := make([]T, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = f(sh)
		}()
	}
	wg.Wait()
	return out
}

// Dist returns the ground distance every shard's artifacts are computed
// under (identical across shards by construction).
func (c *Coordinator) Dist() geo.DistanceFunc { return c.df }

// Stats merges the shard snapshots into one store.Stats with every
// counter summed — the numbers the 1-shard store would report.
// TrajectoryTTL is policy, identical across shards, taken from shard 0.
func (c *Coordinator) Stats() store.Stats {
	snaps := scatterInto(c.shards, func(sh *store.Store) store.Stats { return sh.Stats() })
	return mergeStats(snaps)
}

// PerShardStats snapshots each shard separately, in shard order — the
// /metrics per-shard gauges read these.
func (c *Coordinator) PerShardStats() []store.Stats {
	return scatterInto(c.shards, func(sh *store.Store) store.Stats { return sh.Stats() })
}

// mergeStats folds per-shard snapshots into the aggregate view: counters
// and capacities sum; TrajectoryTTL is a shared policy echo.
func mergeStats(snaps []store.Stats) store.Stats {
	var m store.Stats
	for i, s := range snaps {
		m.Trajectories += s.Trajectories
		m.Artifacts += s.Artifacts
		m.CacheBytes += s.CacheBytes
		m.CacheBudget += s.CacheBudget
		m.Built += s.Built
		m.Reused += s.Reused
		m.Evicted += s.Evicted
		m.Removed += s.Removed
		m.EvictedLRU += s.EvictedLRU
		m.EvictedTTL += s.EvictedTTL
		m.PairDistsBuilt += s.PairDistsBuilt
		m.PairDistsReused += s.PairDistsReused
		m.MaxTrajectories += s.MaxTrajectories
		m.DiskArtifacts += s.DiskArtifacts
		m.DiskBytes += s.DiskBytes
		m.DiskWrites += s.DiskWrites
		m.DiskReads += s.DiskReads
		m.DiskErrors += s.DiskErrors
		if i == 0 {
			m.TrajectoryTTL = s.TrajectoryTTL
		}
	}
	return m
}

// IndexFor builds a position-keyed spatial index over a resolved
// dataset. The single store serves cached MBRs here; the coordinator
// recomputes them — byte-identical by the SpatialParity invariant
// (trajectories are immutable, so a cached MBR always equals
// spatial.Bound of its points).
func (c *Coordinator) IndexFor(ids []store.ID, ts []*traj.Trajectory) *spatial.Index {
	ix := spatial.NewIndex(&spatial.IndexOptions{Dist: c.df})
	for k, t := range ts {
		ix.Insert(k, spatial.Bound(t.Points))
	}
	return ix
}

// Artifacts implements core.ArtifactSource: the request routes to the
// shard that owns the subject geometry (artifact keys derive from the A
// sequence's content hash), which serves it from its own RAM/disk tiers.
// One divergence from the single store is deliberate and invisible: a
// swapped cross pair (B, A) routes by B's geometry, so the (A, B) grid
// cached on A's shard is out of reach and the swapped grid is computed
// rather than transposed — both paths count as one build, bit-identical
// output, so results and counters still match.
func (c *Coordinator) Artifacts(req core.ArtifactRequest) (*dmatrix.Matrix, *bounds.Relaxed, int) {
	return c.shardFor(store.PointsID(req.A)).Artifacts(req)
}

// EndpointDists returns the memoizing per-pair endpoint-distance
// supplier, routing each pair to the shard owning the canonical
// (smaller) geometry ID — the same ID the memo key leads with, so a
// pair's memo lives on exactly one shard. Geometry IDs for the dataset
// are hashed lazily and memoized for the supplier's lifetime.
func (c *Coordinator) EndpointDists(ts []*traj.Trajectory) func(i, j int) (float64, float64, bool) {
	subs := scatterInto(c.shards, func(sh *store.Store) func(i, j int) (float64, float64, bool) {
		return sh.EndpointDists(ts)
	})
	for _, sub := range subs {
		if sub == nil {
			return nil // caching disabled; identical across shards
		}
	}
	pids := c.pidCache(len(ts), func(k int) []geo.Point { return ts[k].Points })
	shardIx := c.shardIndex()
	return func(i, j int) (float64, float64, bool) {
		a, b := pids(i), pids(j)
		if b < a {
			a = b
		}
		return subs[shardIx(a)](i, j)
	}
}

// PointDists returns the intra-trajectory point-distance supplier from
// the shard owning the geometry — one hash, then a straight delegate.
func (c *Coordinator) PointDists(pts []geo.Point) func(i, j int) (float64, bool) {
	if len(pts) == 0 {
		return nil
	}
	return c.shardFor(store.PointsID(pts)).PointDists(pts)
}

// pidCache returns a lazy, mutex-guarded position → geometry-ID memo.
func (c *Coordinator) pidCache(n int, pts func(int) []geo.Point) func(int) store.ID {
	var mu sync.Mutex
	ids := make(map[int]store.ID, n)
	return func(k int) store.ID {
		mu.Lock()
		defer mu.Unlock()
		if id, ok := ids[k]; ok {
			return id
		}
		id := store.PointsID(pts(k))
		ids[k] = id
		return id
	}
}

// shardIndex returns the ID → shard-ordinal routing function (the index
// variant of shardFor, for callers that hold per-shard slices).
func (c *Coordinator) shardIndex() func(store.ID) int {
	n := uint64(len(c.shards))
	return func(id store.ID) int {
		if n == 1 {
			return 0
		}
		h := fnv.New64a()
		h.Write([]byte(id))
		return int(h.Sum64() % n)
	}
}

// Snapshot writes every registered trajectory — coordinator insertion
// order, all shards — to one snapshot file, atomically.
func (c *Coordinator) Snapshot(path string) (int, error) {
	ids := c.IDs()
	ts := make([]*traj.Trajectory, 0, len(ids))
	for _, id := range ids {
		if t, ok := c.Get(id); ok {
			ts = append(ts, t)
		}
	}
	if err := store.WriteSnapshotFile(path, store.EncodeSnapshot(ts)); err != nil {
		return 0, err
	}
	return len(ts), nil
}

// Restore re-registers every trajectory from a snapshot file through
// coordinator routing — so a snapshot taken at one shard count restores
// correctly at any other. A missing file is a clean first boot.
func (c *Coordinator) Restore(path string) (int, error) {
	ts, err := store.ReadSnapshotFile(path)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, t := range ts {
		if _, created, err := c.Add(t); err != nil {
			return n, err
		} else if created {
			n++
		}
	}
	return n, nil
}
