package spatial_test

import (
	"math"
	"math/rand"
	"testing"

	"trajmotif/internal/geo"
	"trajmotif/internal/spatial"
	"trajmotif/internal/traj"
)

// randMBR draws a box within the given extents, degenerate with
// probability ~1/6 per axis (single-point trajectories are a satellite
// concern of this PR).
func randMBR(r *rand.Rand, latLim, lngLim float64) spatial.MBR {
	lat0 := (r.Float64()*2 - 1) * latLim
	lng0 := (r.Float64()*2 - 1) * lngLim
	dLat, dLng := r.Float64()*5, r.Float64()*5
	if r.Intn(6) == 0 {
		dLat = 0
	}
	if r.Intn(6) == 0 {
		dLng = 0
	}
	return spatial.MBR{
		MinLat: lat0, MaxLat: math.Min(lat0+dLat, 90),
		MinLng: lng0, MaxLng: math.Min(lng0+dLng, 180),
	}
}

// randPointIn samples a point of the box uniformly, biased to include
// the corners (where minima live).
func randPointIn(r *rand.Rand, m spatial.MBR) geo.Point {
	pick := func(lo, hi float64) float64 {
		switch r.Intn(4) {
		case 0:
			return lo
		case 1:
			return hi
		default:
			return lo + r.Float64()*(hi-lo)
		}
	}
	return geo.Point{Lat: pick(m.MinLat, m.MaxLat), Lng: pick(m.MinLng, m.MaxLng)}
}

// TestBoundFold pins Bound to the historical knn/join fold: running min
// and max per axis, empty input inverted.
func TestBoundFold(t *testing.T) {
	pts := []geo.Point{{Lat: 3, Lng: -7}, {Lat: -1, Lng: 4}, {Lat: 2, Lng: 0}}
	want := spatial.MBR{MinLat: -1, MaxLat: 3, MinLng: -7, MaxLng: 4}
	if got := spatial.Bound(pts); got != want {
		t.Fatalf("Bound = %+v, want %+v", got, want)
	}
	empty := spatial.Bound(nil)
	if !math.IsInf(empty.MinLat, 1) || !math.IsInf(empty.MaxLat, -1) {
		t.Fatalf("empty Bound not inverted: %+v", empty)
	}
}

// TestMinDistSoundness is the contract test: MinDist(a, b) never exceeds
// the ground distance between any sampled pair of box points, for both
// recognized metrics, including extreme latitudes where the clamp-based
// construction would be wrong.
func TestMinDistSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(601))
	metrics := []struct {
		name string
		df   geo.DistanceFunc
		md   spatial.MinDistFunc
	}{
		{"haversine", geo.Haversine, spatial.HaversineMinDist},
		{"euclidean", geo.Euclidean, spatial.EuclideanMinDist},
	}
	for _, m := range metrics {
		for trial := 0; trial < 2000; trial++ {
			latLim := 60.0
			if trial%5 == 0 {
				latLim = 89.9 // polar stress
			}
			a, b := randMBR(r, latLim, 175), randMBR(r, latLim, 175)
			lb := m.md(a, b)
			for s := 0; s < 12; s++ {
				p, q := randPointIn(r, a), randPointIn(r, b)
				if d := m.df(p, q); d < lb {
					t.Fatalf("%s trial %d: MinDist %.12g exceeds d(%v, %v) = %.12g\na=%+v b=%+v",
						m.name, trial, lb, p, q, d, a, b)
				}
			}
		}
	}
}

// TestMinDistClampCounterexample pins the reason MinDist avoids the
// clamp construction: at extreme latitudes the distance to the clamped
// point exceeds the distance to another box point, so clamping is not a
// lower bound — while MinDist stays below both.
func TestMinDistClampCounterexample(t *testing.T) {
	p := geo.Point{Lat: 0, Lng: 0}
	box := spatial.MBR{MinLat: 60, MaxLat: 80, MinLng: 100, MaxLng: 100}
	clamped := geo.Haversine(p, box.Clamp(p))
	far := geo.Haversine(p, geo.Point{Lat: 80, Lng: 100})
	if clamped <= far {
		t.Skipf("construction no longer demonstrates the clamp overshoot (%g <= %g)", clamped, far)
	}
	pb := spatial.Bound([]geo.Point{p})
	if lb := spatial.HaversineMinDist(pb, box); lb > far {
		t.Fatalf("HaversineMinDist %g exceeds a real box distance %g", lb, far)
	}
}

// TestCandidatesSuperset: every indexed id whose MinDist to the query is
// within the radius must appear among the candidates, across random
// boxes including polar and antimeridian-adjacent ones.
func TestCandidatesSuperset(t *testing.T) {
	r := rand.New(rand.NewSource(602))
	for trial := 0; trial < 300; trial++ {
		ix := spatial.NewIndex(nil) // haversine
		n := 5 + r.Intn(40)
		boxes := make([]spatial.MBR, n)
		for i := range boxes {
			boxes[i] = randMBR(r, 89.9, 179.9)
			ix.Insert(i, boxes[i])
		}
		q := randMBR(r, 89.9, 179.9)
		radius := math.Pow(10, 3+r.Float64()*4) // 1 km .. 10^7 m
		got := ix.Candidates(q, radius)
		seen := make(map[int]bool, len(got))
		for _, id := range got {
			seen[id] = true
		}
		for i, b := range boxes {
			if spatial.HaversineMinDist(q, b) <= radius && !seen[i] {
				t.Fatalf("trial %d: id %d (MinDist %.6g <= radius %.6g) missing from candidates\nq=%+v b=%+v",
					trial, i, spatial.HaversineMinDist(q, b), radius, q, b)
			}
		}
		for k := 1; k < len(got); k++ {
			if got[k-1] >= got[k] {
				t.Fatalf("trial %d: candidates not in ascending id order: %v", trial, got)
			}
		}
	}
}

// TestCandidatesEdges covers the degenerate radii and the unrecognized-
// metric fallback.
func TestCandidatesEdges(t *testing.T) {
	ix := spatial.NewIndex(nil)
	for i := 0; i < 5; i++ {
		ix.Insert(i, spatial.MBR{MinLat: float64(i), MaxLat: float64(i), MinLng: 0, MaxLng: 0})
	}
	q := spatial.MBR{MinLat: 0, MaxLat: 0, MinLng: 0, MaxLng: 0}
	if got := ix.Candidates(q, -1); got != nil {
		t.Errorf("negative radius returned %v", got)
	}
	if got := ix.Candidates(q, math.Inf(1)); len(got) != 5 {
		t.Errorf("infinite radius returned %d of 5", len(got))
	}
	if got := ix.Candidates(q, 0); len(got) == 0 {
		t.Error("zero radius dropped the touching box")
	}

	// Unrecognized metric: index stays consistent but never prunes.
	custom := func(p, q geo.Point) float64 { return geo.Haversine(p, q) * 2 }
	ix2 := spatial.NewIndex(&spatial.IndexOptions{Dist: custom})
	if ix2.Pruning() {
		t.Error("unrecognized metric claims pruning")
	}
	ix2.Insert(7, spatial.MBR{MinLat: 50, MaxLat: 51, MinLng: 50, MaxLng: 51})
	if got := ix2.Candidates(q, 1); len(got) != 1 || got[0] != 7 {
		t.Errorf("unrecognized metric must return everything, got %v", got)
	}
	if d := ix2.MinDist(q, spatial.MBR{MinLat: 80, MaxLat: 80, MinLng: 0, MaxLng: 0}); d != 0 {
		t.Errorf("unrecognized MinDist = %g, want 0", d)
	}
}

// TestInsertRemove exercises the incremental maintenance: removal
// deletes exactly one id, reinsertion replaces the box, polar and
// oversize boxes round-trip through the overflow list.
func TestInsertRemove(t *testing.T) {
	ix := spatial.NewIndex(nil)
	boxes := map[int]spatial.MBR{
		0: {MinLat: 10, MaxLat: 11, MinLng: 10, MaxLng: 11},
		1: {MinLat: 88, MaxLat: 89, MinLng: 0, MaxLng: 1},       // polar: overflow
		2: {MinLat: -60, MaxLat: 60, MinLng: -170, MaxLng: 170}, // oversize: overflow
		3: {MinLat: 10.2, MaxLat: 10.4, MinLng: 10.2, MaxLng: 10.4},
	}
	for id, b := range boxes {
		ix.Insert(id, b)
	}
	if ix.Len() != 4 {
		t.Fatalf("Len = %d, want 4", ix.Len())
	}
	all := ix.Candidates(spatial.MBR{MinLat: 10, MaxLat: 10, MinLng: 10, MaxLng: 10}, math.Inf(1))
	if len(all) != 4 {
		t.Fatalf("infinite-radius candidates = %v, want all 4", all)
	}
	if !ix.Remove(1) || ix.Remove(1) {
		t.Fatal("Remove(1) should succeed exactly once")
	}
	if _, ok := ix.MBROf(1); ok {
		t.Fatal("removed id still has an MBR")
	}
	for _, id := range ix.Candidates(spatial.MBR{MinLat: 88, MaxLat: 88, MinLng: 0, MaxLng: 0}, math.Inf(1)) {
		if id == 1 {
			t.Fatal("removed id still yielded by Candidates")
		}
	}
	// Replace id 0 with a faraway box; the old cells must not leak it.
	ix.Insert(0, spatial.MBR{MinLat: -40, MaxLat: -39, MinLng: -40, MaxLng: -39})
	near := ix.Candidates(spatial.MBR{MinLat: 10.3, MaxLat: 10.3, MinLng: 10.3, MaxLng: 10.3}, 1000)
	for _, id := range near {
		if id == 0 {
			t.Fatal("stale cells still yield a replaced id")
		}
	}
	found := false
	for _, id := range ix.Candidates(spatial.MBR{MinLat: -39.5, MaxLat: -39.5, MinLng: -39.5, MaxLng: -39.5}, 1000) {
		found = found || id == 0
	}
	if !found {
		t.Fatal("replaced id not found at its new location")
	}
}

// TestCandidatesAntimeridian: boxes on either side of ±180 are mutual
// candidates at small radii — the cyclic gap, not the coordinate gap,
// governs.
func TestCandidatesAntimeridian(t *testing.T) {
	ix := spatial.NewIndex(nil)
	east := spatial.MBR{MinLat: 0, MaxLat: 1, MinLng: 179.5, MaxLng: 179.9}
	west := spatial.MBR{MinLat: 0, MaxLat: 1, MinLng: -179.9, MaxLng: -179.5}
	ix.Insert(0, east)
	ix.Insert(1, west)
	gap := spatial.HaversineMinDist(east, west)
	if gap > 100_000 {
		t.Fatalf("antimeridian MinDist %.0f m treats the seam as far", gap)
	}
	got := ix.Candidates(west, gap+1000)
	if len(got) != 2 {
		t.Fatalf("west query near the seam found %v, want both ids", got)
	}
}

// TestBuildIndex validates the slice constructor and its rejection of
// nil/empty members.
func TestBuildIndex(t *testing.T) {
	ts := []*traj.Trajectory{
		traj.FromPoints([]geo.Point{{Lat: 1, Lng: 1}, {Lat: 2, Lng: 2}}),
		traj.FromPoints([]geo.Point{{Lat: 50, Lng: 50}}),
	}
	ix, err := spatial.BuildIndex(ts, geo.Haversine)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 2 {
		t.Fatalf("Len = %d", ix.Len())
	}
	mb, ok := ix.MBROf(0)
	if !ok || mb != spatial.Bound(ts[0].Points) {
		t.Fatalf("MBROf(0) = %+v, want the Bound fold", mb)
	}
	if _, err := spatial.BuildIndex([]*traj.Trajectory{nil}, nil); err == nil {
		t.Fatal("nil trajectory accepted")
	}
}
