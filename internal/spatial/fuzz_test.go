package spatial_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"trajmotif/internal/geo"
	"trajmotif/internal/join"
	"trajmotif/internal/knn"
	"trajmotif/internal/spatial"
	"trajmotif/internal/traj"
)

// fuzzCorpus derives a deterministic trajectory set from the fuzz seed:
// short random walks scattered over a seed-dependent extent, so some
// runs cluster everything into one cell and others spread across the
// grid, poles and antimeridian included.
func fuzzCorpus(seed int64, n int) []*traj.Trajectory {
	r := rand.New(rand.NewSource(seed))
	latLim := 30 + r.Float64()*59.9
	ts := make([]*traj.Trajectory, n)
	for i := range ts {
		lat := (r.Float64()*2 - 1) * latLim
		lng := (r.Float64()*2 - 1) * 179.9
		m := 1 + r.Intn(12)
		pts := make([]geo.Point, m)
		for k := range pts {
			lat = math.Max(-90, math.Min(90, lat+(r.Float64()*2-1)*0.05))
			lng += (r.Float64()*2 - 1) * 0.05
			if lng > 180 {
				lng -= 360
			} else if lng < -180 {
				lng += 360
			}
			pts[k] = geo.Point{Lat: lat, Lng: lng}
		}
		ts[i] = traj.FromPoints(pts)
	}
	return ts
}

// FuzzSpatialIndex drives the two oracles of the tentpole: Candidates is
// a superset of the brute-force MinDist filter, and indexed knn/join
// DeepEqual the unindexed searches — results and every shared stats
// field.
func FuzzSpatialIndex(f *testing.F) {
	f.Add(int64(1), uint8(8), 5000.0)
	f.Add(int64(42), uint8(20), 250000.0)
	f.Add(int64(-7), uint8(3), 0.0)
	f.Add(int64(99), uint8(1), 1e7)
	f.Fuzz(func(t *testing.T, seed int64, n uint8, radius float64) {
		count := int(n%24) + 1
		if math.IsNaN(radius) || math.IsInf(radius, 0) {
			radius = 1000
		}
		radius = math.Abs(radius)
		ts := fuzzCorpus(seed, count)
		ix, err := spatial.BuildIndex(ts, geo.Haversine)
		if err != nil {
			t.Fatal(err)
		}

		// Oracle 1: Candidates superset of the brute MinDist filter.
		q, _ := ix.MBROf(0)
		got := ix.Candidates(q, radius)
		seen := make(map[int]bool, len(got))
		for _, id := range got {
			seen[id] = true
		}
		for i := range ts {
			b, _ := ix.MBROf(i)
			if spatial.HaversineMinDist(q, b) <= radius && !seen[i] {
				t.Fatalf("candidate %d (MinDist %.6g <= %.6g) missing", i,
					spatial.HaversineMinDist(q, b), radius)
			}
		}

		// Oracle 2a: indexed knn == unindexed knn, stats included.
		k := int(n%5) + 1
		query, dataset := ts[0], ts[1:]
		if len(dataset) > 0 {
			ix2, err := spatial.BuildIndex(dataset, geo.Haversine)
			if err != nil {
				t.Fatal(err)
			}
			plain, pst, err1 := knn.Nearest(query, dataset, k, nil)
			fast, fst, err2 := knn.Nearest(query, dataset, k, &knn.Options{Index: ix2})
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("knn error mismatch: %v vs %v", err1, err2)
			}
			if err1 == nil {
				fst.IndexConsulted, fst.IndexPruned = 0, 0
				if !reflect.DeepEqual(plain, fast) || !reflect.DeepEqual(pst, fst) {
					t.Fatalf("knn parity broke:\nplain %+v %+v\nindexed %+v %+v", plain, pst, fast, fst)
				}
			}
		}

		// Oracle 2b: indexed join == unindexed join, stats included.
		plainP, pst, err1 := join.Join(ts, radius, nil)
		fastP, fst, err2 := join.Join(ts, radius, &join.Options{Index: ix})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("join error mismatch: %v vs %v", err1, err2)
		}
		if err1 == nil {
			fst.IndexConsulted, fst.IndexPruned = 0, 0
			if !reflect.DeepEqual(plainP, fastP) || !reflect.DeepEqual(pst, fst) {
				t.Fatalf("join parity broke:\nplain %+v %+v\nindexed %+v %+v", plainP, pst, fastP, fst)
			}
		}
	})
}
