// Package spatial implements the MBR-based candidate retrieval layer in
// front of the kNN, join and batch engines: a uniform-grid index over
// trajectory minimum bounding rectangles with a sound lower bound
// MinDist on the ground distance between boxes.
//
// Soundness is the whole contract. For any points p ∈ a, q ∈ b,
//
//	MinDist(a.MBR, b.MBR) ≤ dG(p, q) ≤ DFD(a, b)
//
// (the second inequality because the discrete Fréchet distance is a max
// over coupled ground distances), so rejecting a pair whose MinDist
// exceeds the current radius — an ε, a k-th best distance, or a motif
// cutoff — can never reject a pair the exact search would keep. The
// parity suites in internal/knn, internal/join and internal/batch prove
// the stronger property the repo's test archetype demands: indexed and
// linear-scan searches return byte-identical results and effort stats.
//
// MinDist is metric-aware: geo.Haversine and geo.Euclidean (recognized
// by function identity) get analytic box-to-box bounds; any other ground
// distance degrades to a zero bound — the index is still consulted but
// never prunes, which is sound and keeps callers branch-free. The
// haversine bound deliberately avoids the clamp-to-box construction the
// per-pair probe bounds use (clamping is not minimal on a sphere at
// extreme latitudes); it is the max of two independently sound terms:
//
//	latitude:  dG ≥ R·Δlat, with Δlat the gap between the lat intervals;
//	longitude: dG ≥ 2R·asin(√(cos·cos)·sin(Δlng/2)), with the cosines
//	           minimized over each box's lat interval and Δlng the
//	           cyclic gap between the lng intervals,
//
// shaved by a 1e-9 relative margin so ulp-level libm differences can
// never nudge the bound above a true distance.
package spatial

import (
	"fmt"
	"math"
	"reflect"
	"sort"

	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

// MBR is an axis-aligned minimum bounding rectangle in degrees. A single
// point has a degenerate MBR with Min == Max on both axes. Trajectories
// crossing the antimeridian get a wide (conservative, still sound) box.
type MBR struct {
	MinLat, MaxLat, MinLng, MaxLng float64
}

// Bound returns the MBR of a point sequence. The fold order matches the
// historical per-search bounding boxes in knn and join bit for bit, so
// index-cached and freshly computed boxes are interchangeable. Empty
// input yields an inverted (Inf) box; callers validate emptiness first.
func Bound(pts []geo.Point) MBR {
	b := MBR{MinLat: math.Inf(1), MaxLat: math.Inf(-1), MinLng: math.Inf(1), MaxLng: math.Inf(-1)}
	for _, p := range pts {
		b.MinLat = math.Min(b.MinLat, p.Lat)
		b.MaxLat = math.Max(b.MaxLat, p.Lat)
		b.MinLng = math.Min(b.MinLng, p.Lng)
		b.MaxLng = math.Max(b.MaxLng, p.Lng)
	}
	return b
}

// Clamp returns the point of the box closest to p in coordinate space.
// It is the probe-bound helper knn and join have always used; note that
// on a sphere the clamped point is not always the minimal-distance box
// point (MinDist's analytic bound is, and is used for index pruning).
func (m MBR) Clamp(p geo.Point) geo.Point {
	q := p
	if q.Lat < m.MinLat {
		q.Lat = m.MinLat
	} else if q.Lat > m.MaxLat {
		q.Lat = m.MaxLat
	}
	if q.Lng < m.MinLng {
		q.Lng = m.MinLng
	} else if q.Lng > m.MaxLng {
		q.Lng = m.MaxLng
	}
	return q
}

// soundnessShave is the relative margin MinDist bounds are shrunk by:
// large enough to swallow any ulp-level non-monotonicity in the libm
// sin/asin calls the bounds go through, small enough (≪ any meaningful
// pruning threshold) to cost nothing in pruning power.
const soundnessShave = 1e-9

// intervalGap returns the gap between [aLo,aHi] and [bLo,bHi] on a line
// (0 when they overlap).
func intervalGap(aLo, aHi, bLo, bHi float64) float64 {
	if g := bLo - aHi; g > 0 {
		return g
	}
	if g := aLo - bHi; g > 0 {
		return g
	}
	return 0
}

// cyclicGap returns the minimal angular separation in degrees between
// any lng in [aLo,aHi] and any in [bLo,bHi], treating longitude as a
// 360° circle. The result is in [0, 180].
func cyclicGap(aLo, aHi, bLo, bHi float64) float64 {
	switch {
	case bLo > aHi:
		return math.Min(bLo-aHi, aLo+360-bHi)
	case aLo > bHi:
		return math.Min(aLo-bHi, bLo+360-aHi)
	default:
		return 0
	}
}

// minCos returns the minimum of cos(lat) over the box's lat interval
// (attained at the endpoint of larger |lat|, since cos is unimodal on
// [-90°, 90°]), clamped at zero against rounding below the poles.
func minCos(m MBR) float64 {
	c := math.Min(math.Cos(m.MinLat*math.Pi/180), math.Cos(m.MaxLat*math.Pi/180))
	if c < 0 {
		c = 0
	}
	return c
}

// HaversineMinDist lower-bounds geo.Haversine between any point of a and
// any point of b, in meters. See the package comment for the derivation.
func HaversineMinDist(a, b MBR) float64 {
	latGap := intervalGap(a.MinLat, a.MaxLat, b.MinLat, b.MaxLat)
	lngGap := cyclicGap(a.MinLng, a.MaxLng, b.MinLng, b.MaxLng)
	latBound := geo.EarthRadiusMeters * latGap * math.Pi / 180
	s := math.Sqrt(minCos(a)*minCos(b)) * math.Sin(lngGap/2*math.Pi/180)
	if s > 1 {
		s = 1
	}
	lngBound := 2 * geo.EarthRadiusMeters * math.Asin(s)
	return math.Max(latBound, lngBound) * (1 - soundnessShave)
}

// EuclideanMinDist lower-bounds geo.Euclidean between any point of a and
// any point of b: the per-axis interval gaps realize the closest
// coordinate pair exactly, and float rounding is monotone, so no shave
// is needed.
func EuclideanMinDist(a, b MBR) float64 {
	gx := intervalGap(a.MinLng, a.MaxLng, b.MinLng, b.MaxLng)
	gy := intervalGap(a.MinLat, a.MaxLat, b.MinLat, b.MaxLat)
	return math.Sqrt(gx*gx + gy*gy)
}

// MinDistFunc lower-bounds a ground distance between two boxes.
type MinDistFunc func(a, b MBR) float64

// metric couples a recognized ground distance with its box bound and the
// cell-window inflation Candidates uses to stay a superset.
type metric struct {
	minDist MinDistFunc
	// window returns the lat/lng pads in degrees such that every MBR
	// with minDist(q, m) ≤ radius lies within pad of q on both axes
	// (lngPad ≥ 180 means the whole circle must be swept).
	window func(q MBR, radius float64) (latPad, lngPad float64)
}

// polarCutoffDeg bounds the latitudes the grid itself covers: an MBR
// reaching beyond ±polarCutoffDeg goes to the always-scanned overflow
// list, so the longitude window inflation can assume in-grid candidates
// have cos(lat) ≥ cos(polarCutoffDeg).
const polarCutoffDeg = 85

// padSlackDeg is added to both window pads: absolute slack (~1 µm of
// latitude) that swallows the soundness shave and any rounding in the
// pad arithmetic itself.
const padSlackDeg = 1e-7

func haversineWindow(q MBR, radius float64) (latPad, lngPad float64) {
	r := radius / (1 - 2*soundnessShave) // invert the MinDist shave
	latPad = r/geo.EarthRadiusMeters*180/math.Pi + padSlackDeg
	den := math.Sqrt(minCos(q) * math.Cos(polarCutoffDeg*math.Pi/180))
	s := math.Sin(math.Min(r/(2*geo.EarthRadiusMeters), math.Pi/2))
	if den <= 0 || s >= den {
		return latPad, 360
	}
	lngPad = 2*math.Asin(s/den)*180/math.Pi + padSlackDeg
	return latPad, lngPad
}

func euclideanWindow(q MBR, radius float64) (latPad, lngPad float64) {
	return radius + padSlackDeg, radius + padSlackDeg
}

var (
	haversineMetric = &metric{minDist: HaversineMinDist, window: haversineWindow}
	euclideanMetric = &metric{minDist: EuclideanMinDist, window: euclideanWindow}
)

// metricFor resolves a ground distance to its metric by function
// identity (the same trick internal/store uses), or nil when the
// distance is unrecognized and no sound box bound is known.
func metricFor(df geo.DistanceFunc) *metric {
	if df == nil {
		return haversineMetric
	}
	switch reflect.ValueOf(df).Pointer() {
	case reflect.ValueOf(geo.Haversine).Pointer():
		return haversineMetric
	case reflect.ValueOf(geo.Euclidean).Pointer():
		return euclideanMetric
	}
	return nil
}

// MinDistFor returns the sound box-to-box lower bound for a recognized
// ground distance (nil Dist selects haversine), or nil when none is
// known — callers then skip index pruning entirely.
func MinDistFor(df geo.DistanceFunc) MinDistFunc {
	m := metricFor(df)
	if m == nil {
		return nil
	}
	return m.minDist
}

// DefaultCell is the default grid cell edge in degrees: 0.05° ≈ 5.6 km
// of latitude, sized so a typical urban trajectory MBR covers O(1)
// cells (see DESIGN.md for the sizing argument).
const DefaultCell = 0.05

// DefaultMaxCover caps how many cells one MBR may occupy before it is
// moved to the always-scanned overflow list.
const DefaultMaxCover = 1024

// IndexOptions configures an Index; the zero value selects haversine,
// DefaultCell and DefaultMaxCover.
type IndexOptions struct {
	// Dist is the ground distance MinDist lower-bounds; nil selects
	// geo.Haversine. Unrecognized distances disable pruning (the index
	// stays consistent, Candidates returns everything).
	Dist geo.DistanceFunc
	// Cell is the grid cell edge in degrees (coordinate units for
	// Euclidean data); 0 selects DefaultCell.
	Cell float64
	// MaxCover caps cells per MBR before overflow; 0 selects
	// DefaultMaxCover.
	MaxCover int
}

type cellKey struct{ lat, lng int32 }

// Index is a uniform grid over MBRs keyed by small integer ids (slice
// positions for the per-request indexes knn and join consume, registry
// handles inside the store). It is not safe for concurrent use; the
// store serializes access under its own lock.
type Index struct {
	cell     float64
	maxCover int
	m        *metric
	mbrs     map[int]MBR
	cells    map[cellKey][]int
	over     map[int]struct{} // oversize or polar MBRs: always scanned
}

// NewIndex creates an empty index. opt may be nil for defaults.
func NewIndex(opt *IndexOptions) *Index {
	ix := &Index{
		cell:     DefaultCell,
		maxCover: DefaultMaxCover,
		mbrs:     make(map[int]MBR),
		cells:    make(map[cellKey][]int),
		over:     make(map[int]struct{}),
	}
	var df geo.DistanceFunc
	if opt != nil {
		df = opt.Dist
		if opt.Cell > 0 {
			ix.cell = opt.Cell
		}
		if opt.MaxCover > 0 {
			ix.maxCover = opt.MaxCover
		}
	}
	ix.m = metricFor(df)
	return ix
}

// BuildIndex indexes a trajectory slice by position — the shape knn and
// join consume. Nil or empty trajectories are rejected (the searches
// reject them anyway; an index must not silently drop them).
func BuildIndex(ts []*traj.Trajectory, df geo.DistanceFunc) (*Index, error) {
	ix := NewIndex(&IndexOptions{Dist: df})
	for i, t := range ts {
		if t == nil || t.Len() == 0 {
			return nil, fmt.Errorf("spatial: nil or empty trajectory at index %d", i)
		}
		ix.Insert(i, Bound(t.Points))
	}
	return ix, nil
}

// Len returns the number of indexed MBRs.
func (ix *Index) Len() int { return len(ix.mbrs) }

// MBROf returns the indexed MBR for id.
func (ix *Index) MBROf(id int) (MBR, bool) {
	m, ok := ix.mbrs[id]
	return m, ok
}

// IDs returns every indexed id in ascending order.
func (ix *Index) IDs() []int {
	out := make([]int, 0, len(ix.mbrs))
	for id := range ix.mbrs {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Pruning reports whether the index has a sound MinDist for its ground
// distance (false means Candidates returns everything and MinDist is 0).
func (ix *Index) Pruning() bool { return ix.m != nil }

// MinDist lower-bounds the index's ground distance between two boxes;
// zero (never prunes) when the distance is unrecognized.
func (ix *Index) MinDist(a, b MBR) float64 {
	if ix.m == nil {
		return 0
	}
	return ix.m.minDist(a, b)
}

// cellRange returns the inclusive cell coordinates covering [lo, hi].
func (ix *Index) cellRange(lo, hi float64) (int32, int32) {
	return int32(math.Floor(lo / ix.cell)), int32(math.Floor(hi / ix.cell))
}

// coverage enumerates the cells an MBR occupies; returns false when the
// MBR belongs in the overflow list (too many cells, polar, or non-finite).
func (ix *Index) coverage(m MBR, visit func(cellKey)) bool {
	if m.MinLat < -polarCutoffDeg || m.MaxLat > polarCutoffDeg ||
		math.IsInf(m.MinLat, 0) || math.IsInf(m.MaxLat, 0) ||
		math.IsInf(m.MinLng, 0) || math.IsInf(m.MaxLng, 0) ||
		m.MinLat != m.MinLat || m.MaxLat != m.MaxLat ||
		m.MinLng != m.MinLng || m.MaxLng != m.MaxLng {
		return false
	}
	la0, la1 := ix.cellRange(m.MinLat, m.MaxLat)
	lo0, lo1 := ix.cellRange(m.MinLng, m.MaxLng)
	if (int(la1-la0)+1)*(int(lo1-lo0)+1) > ix.maxCover {
		return false
	}
	for la := la0; la <= la1; la++ {
		for lo := lo0; lo <= lo1; lo++ {
			visit(cellKey{la, lo})
		}
	}
	return true
}

// Insert adds (or replaces) an MBR under id.
func (ix *Index) Insert(id int, m MBR) {
	if _, ok := ix.mbrs[id]; ok {
		ix.Remove(id)
	}
	ix.mbrs[id] = m
	if !ix.coverage(m, func(k cellKey) {
		ix.cells[k] = append(ix.cells[k], id)
	}) {
		ix.over[id] = struct{}{}
	}
}

// Remove deletes id from the index; it reports whether id was present.
func (ix *Index) Remove(id int) bool {
	m, ok := ix.mbrs[id]
	if !ok {
		return false
	}
	delete(ix.mbrs, id)
	if _, over := ix.over[id]; over {
		delete(ix.over, id)
		return true
	}
	ix.coverage(m, func(k cellKey) {
		ids := ix.cells[k]
		for i, v := range ids {
			if v == id {
				ids = append(ids[:i], ids[i+1:]...)
				break
			}
		}
		if len(ids) == 0 {
			delete(ix.cells, k)
		} else {
			ix.cells[k] = ids
		}
	})
	return true
}

// Candidates returns, in ascending id order, a superset of every indexed
// id whose MinDist to q is at most radius. A negative radius returns
// nil; a non-finite radius, an unrecognized ground distance, or a window
// larger than the resident cell set degrade to "every id" — still a
// correct superset, just unpruned.
func (ix *Index) Candidates(q MBR, radius float64) []int {
	if radius < 0 || len(ix.mbrs) == 0 {
		return nil
	}
	if ix.m == nil || math.IsInf(radius, 0) || radius != radius {
		return ix.IDs()
	}
	latPad, lngPad := ix.m.window(q, radius)
	if math.IsNaN(latPad) || math.IsNaN(lngPad) || math.IsInf(latPad, 0) {
		return ix.IDs()
	}

	la0, la1 := ix.cellRange(math.Max(q.MinLat-latPad, -90), math.Min(q.MaxLat+latPad, 90))
	// The longitude window wraps at ±180: split it into at most two plain
	// intervals over the stored coordinate range, in cell coordinates.
	parts := lngWindows(q.MinLng-lngPad, q.MaxLng+lngPad)
	var cellParts [][2]int32
	var window int64
	for _, p := range parts {
		lo0, lo1 := ix.cellRange(p[0], p[1])
		cellParts = append(cellParts, [2]int32{lo0, lo1})
		window += int64(la1-la0+1) * int64(lo1-lo0+1)
	}

	seen := make(map[int]struct{}, len(ix.over))
	collect := func(ids []int) {
		for _, id := range ids {
			seen[id] = struct{}{}
		}
	}

	// Visit window cells directly when that is cheaper than filtering
	// the whole resident cell set; both strategies produce the same set.
	if window > int64(len(ix.cells)) {
		for k, ids := range ix.cells {
			if k.lat < la0 || k.lat > la1 {
				continue
			}
			for _, cp := range cellParts {
				if k.lng >= cp[0] && k.lng <= cp[1] {
					collect(ids)
					break
				}
			}
		}
	} else {
		for la := la0; la <= la1; la++ {
			for _, cp := range cellParts {
				for lo := cp[0]; lo <= cp[1]; lo++ {
					collect(ix.cells[cellKey{la, lo}])
				}
			}
		}
	}
	for id := range ix.over {
		seen[id] = struct{}{}
	}

	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// lngWindows clips the (possibly wrapping) longitude window [lo, hi] to
// at most two intervals within the stored coordinate range [-180, 180].
func lngWindows(lo, hi float64) [][2]float64 {
	if hi-lo >= 360 {
		return [][2]float64{{-180, 180}}
	}
	switch {
	case lo < -180:
		return [][2]float64{{-180, hi}, {lo + 360, 180}}
	case hi > 180:
		return [][2]float64{{lo, 180}, {-180, hi - 360}}
	default:
		return [][2]float64{{lo, hi}}
	}
}
