package prep

import (
	"math"
	"testing"
	"time"

	"trajmotif/internal/core"
	"trajmotif/internal/datagen"
	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

func timedWalk(n int, stepMeters float64, gap time.Duration) *traj.Trajectory {
	pts := make([]geo.Point, n)
	times := make([]time.Time, n)
	base := geo.Point{Lat: 39.9, Lng: 116.4}
	t0 := time.Unix(1_000_000, 0).UTC()
	for i := range pts {
		pts[i] = geo.Offset(base, float64(i)*stepMeters, 0)
		times[i] = t0.Add(time.Duration(i) * gap)
	}
	tr, err := traj.New(pts, times)
	if err != nil {
		panic(err)
	}
	return tr
}

func TestRemoveSpeedSpikes(t *testing.T) {
	tr := timedWalk(20, 2, time.Second) // 2 m/s walk
	// Inject a 500 m spike at index 10.
	tr.Points[10] = geo.Offset(tr.Points[10], 500, 500)
	clean := RemoveSpeedSpikes(tr, 10, nil)
	if clean.Len() != 19 {
		t.Fatalf("expected 1 spike removed, got len %d", clean.Len())
	}
	for k := 1; k < clean.Len(); k++ {
		dt := clean.Times[k].Sub(clean.Times[k-1]).Seconds()
		v := geo.Haversine(clean.Points[k-1], clean.Points[k]) / dt
		if v > 10 {
			t.Errorf("residual speed %g m/s at %d", v, k)
		}
	}
	// Untimed input passes through untouched.
	untimed := traj.FromPoints(tr.Points)
	if RemoveSpeedSpikes(untimed, 10, nil) != untimed {
		t.Error("untimed trajectory should be returned unchanged")
	}
	// Duplicate-timestamp samples at the same spot collapse.
	dup := timedWalk(5, 2, time.Second)
	dup.Times[2] = dup.Times[1]
	dup.Points[2] = dup.Points[1]
	if got := RemoveSpeedSpikes(dup, 10, nil); got.Len() != 4 {
		t.Errorf("duplicate sample not collapsed: len %d", got.Len())
	}
}

func TestSimplifyStraightLineCollapses(t *testing.T) {
	tr := timedWalk(50, 5, time.Second)
	s := Simplify(tr, 1.0, nil)
	if s.Len() != 2 {
		t.Fatalf("straight line should simplify to endpoints, got %d", s.Len())
	}
	if s.Points[0] != tr.Points[0] || s.Points[1] != tr.Points[49] {
		t.Error("endpoints not preserved")
	}
	if len(s.Times) != 2 {
		t.Error("timestamps must follow points")
	}
}

func TestSimplifyKeepsCorners(t *testing.T) {
	// An L-shape: east 20 steps then north 20 steps.
	base := geo.Point{Lat: 39.9, Lng: 116.4}
	var pts []geo.Point
	for i := 0; i <= 20; i++ {
		pts = append(pts, geo.Offset(base, float64(i)*10, 0))
	}
	corner := pts[len(pts)-1]
	for i := 1; i <= 20; i++ {
		pts = append(pts, geo.Offset(corner, 0, float64(i)*10))
	}
	tr := traj.FromPoints(pts)
	s := Simplify(tr, 2.0, nil)
	if s.Len() != 3 {
		t.Fatalf("L-shape should keep 3 points, got %d", s.Len())
	}
	if geo.Haversine(s.Points[1], corner) > 1 {
		t.Errorf("corner not preserved: %v", s.Points[1])
	}
}

// TestSimplifyPerpendicularGuarantee verifies the Douglas-Peucker
// invariant: every removed point lies within tolerance of the segment
// joining its two nearest surviving points.
func TestSimplifyPerpendicularGuarantee(t *testing.T) {
	for _, name := range datagen.Names() {
		tr, _ := datagen.Dataset(name, datagen.Config{Seed: 17, N: 400})
		tol := 10.0
		s := Simplify(tr, tol, nil)
		if s.Len() >= tr.Len() {
			t.Errorf("%s: no simplification happened", name)
			continue
		}
		// Recover which original indexes survived (points are unique
		// enough per generator to match by value in order).
		survived := make([]int, 0, s.Len())
		next := 0
		for k, p := range tr.Points {
			if next < s.Len() && p == s.Points[next] {
				survived = append(survived, k)
				next++
			}
		}
		if next != s.Len() {
			t.Fatalf("%s: could not align simplified points", name)
		}
		for w := 1; w < len(survived); w++ {
			lo, hi := survived[w-1], survived[w]
			for k := lo + 1; k < hi; k++ {
				d := pointSegmentDistance(tr.Points[k], tr.Points[lo], tr.Points[hi], geo.Haversine)
				if d > tol*1.05 { // tangent-plane slack
					t.Fatalf("%s: removed point %d is %.2f m from its chord (> %g)", name, k, d, tol)
				}
			}
		}
	}
}

// TestSimplifyBothLegsPreservesMotifApprox simplifies a trajectory and
// checks the motif found on the simplified data stays within a few
// tolerances of the exact motif distance — the practical use pattern the
// Simplify doc describes.
func TestSimplifyBothLegsPreservesMotifApprox(t *testing.T) {
	tr := datagen.Baboon(datagen.Config{Seed: 18, N: 300})
	exact, err := core.BTM(tr, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	tol := 3.0
	s := Simplify(tr, tol, nil)
	if s.Len() < 30 {
		t.Skip("over-simplified for this seed")
	}
	xi := 12 * s.Len() / tr.Len()
	if xi < 4 {
		xi = 4
	}
	approx, err := core.BTM(s, xi, nil)
	if err != nil {
		t.Fatal(err)
	}
	if approx.Distance > exact.Distance+20*tol {
		t.Errorf("simplified motif %.2f m strays too far from exact %.2f m",
			approx.Distance, exact.Distance)
	}
}

func TestStayPoints(t *testing.T) {
	// Walk, dwell 5 minutes, walk again.
	base := geo.Point{Lat: 39.9, Lng: 116.4}
	var pts []geo.Point
	var times []time.Time
	t0 := time.Unix(2_000_000, 0).UTC()
	add := func(p geo.Point, at time.Duration) {
		pts = append(pts, p)
		times = append(times, t0.Add(at))
	}
	for i := 0; i < 10; i++ {
		add(geo.Offset(base, float64(i)*50, 0), time.Duration(i)*30*time.Second)
	}
	dwell := geo.Offset(base, 500, 0)
	for i := 0; i < 10; i++ {
		add(geo.Offset(dwell, float64(i%3), float64(i%2)), 5*time.Minute+time.Duration(i)*30*time.Second)
	}
	for i := 0; i < 10; i++ {
		add(geo.Offset(dwell, float64(i+1)*50, 0), 10*time.Minute+time.Duration(i)*30*time.Second)
	}
	tr, err := traj.New(pts, times)
	if err != nil {
		t.Fatal(err)
	}

	sps := StayPoints(tr, 20, 2*time.Minute, nil)
	if len(sps) != 1 {
		t.Fatalf("expected 1 stay point, got %d: %+v", len(sps), sps)
	}
	sp := sps[0]
	if sp.Span.Start != 10 || sp.Span.End != 19 {
		t.Errorf("stay span = %v, want [10..19]", sp.Span)
	}
	if geo.Haversine(sp.Center, dwell) > 10 {
		t.Errorf("stay center %v too far from dwell %v", sp.Center, dwell)
	}
	if sp.Duration < 4*time.Minute {
		t.Errorf("duration = %v", sp.Duration)
	}
	if got := StayPoints(traj.FromPoints(pts), 20, time.Minute, nil); got != nil {
		t.Error("untimed trajectory should yield no stay points")
	}
}

func TestSplitOnGaps(t *testing.T) {
	tr := timedWalk(30, 2, time.Second)
	// Create two gaps.
	for i := 10; i < 30; i++ {
		tr.Times[i] = tr.Times[i].Add(10 * time.Minute)
	}
	for i := 20; i < 30; i++ {
		tr.Times[i] = tr.Times[i].Add(20 * time.Minute)
	}
	segs := SplitOnGaps(tr, time.Minute, 2)
	if len(segs) != 3 {
		t.Fatalf("expected 3 segments, got %d", len(segs))
	}
	total := 0
	for _, s := range segs {
		total += s.Len()
		if st, ok := s.Sampling(); ok && st.MaxGap > time.Minute {
			t.Errorf("segment still contains a gap: %v", st.MaxGap)
		}
	}
	if total != 30 {
		t.Errorf("segments cover %d points, want 30", total)
	}
	// Min-points filter.
	segs = SplitOnGaps(tr, time.Minute, 15)
	if len(segs) != 0 {
		t.Errorf("min-points filter should drop all segments, got %d", len(segs))
	}
	// Untimed passthrough.
	un := traj.FromPoints(tr.Points)
	if got := SplitOnGaps(un, time.Minute, 2); len(got) != 1 || got[0] != un {
		t.Error("untimed trajectory should be returned whole")
	}
}

// TestPipelineOnGeoLife runs the full preprocessing chain on the
// synthetic GeoLife workload and checks motif discovery still works and
// speeds up on the simplified input.
func TestPipelineOnGeoLife(t *testing.T) {
	tr := datagen.GeoLife(datagen.Config{Seed: 19, N: 500})
	clean := RemoveSpeedSpikes(tr, 15, nil)
	if clean.Len() > tr.Len() {
		t.Fatal("filter added points?")
	}
	segs := SplitOnGaps(clean, 30*time.Minute, 50)
	if len(segs) == 0 {
		t.Fatal("splitting removed everything")
	}
	simp := Simplify(segs[0], 5, nil)
	if simp.Len() >= segs[0].Len() {
		t.Error("simplification had no effect")
	}
	if math.IsNaN(simp.PathLength(geo.Haversine)) {
		t.Error("invalid simplified trajectory")
	}
}
