// Package prep provides the GPS preprocessing steps that precede motif
// discovery on real trajectory data: spike (outlier) removal by speed
// gating, trajectory simplification by Douglas-Peucker, stay-point
// detection, and splitting on recording gaps.
//
// The paper evaluates on raw GPS datasets (GeoLife, Truck, Wild-Baboon)
// whose loggers produce exactly the artifacts these filters target; a
// production deployment of the motif engine runs them first. All
// functions are non-destructive: they return new trajectories and never
// mutate their input.
package prep

import (
	"fmt"
	"math"
	"time"

	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

// RemoveSpeedSpikes drops samples that would require travelling faster
// than maxSpeed (meters/second) from the previous kept sample — the
// standard filter for GPS multipath spikes. Untimed trajectories are
// returned unchanged (speed is undefined without timestamps).
func RemoveSpeedSpikes(t *traj.Trajectory, maxSpeed float64, df geo.DistanceFunc) *traj.Trajectory {
	if t.Times == nil || t.Len() < 2 || maxSpeed <= 0 {
		return t
	}
	if df == nil {
		df = geo.Haversine
	}
	points := []geo.Point{t.Points[0]}
	times := []time.Time{t.Times[0]}
	for k := 1; k < t.Len(); k++ {
		last := points[len(points)-1]
		dt := t.Times[k].Sub(times[len(times)-1]).Seconds()
		if dt <= 0 {
			// Identical timestamps: keep only if spatially identical too.
			if df(last, t.Points[k]) == 0 {
				continue
			}
			// Otherwise treat as a spike.
			continue
		}
		if df(last, t.Points[k])/dt > maxSpeed {
			continue
		}
		points = append(points, t.Points[k])
		times = append(times, t.Times[k])
	}
	out, err := traj.New(points, times)
	if err != nil {
		// Kept samples are a subsequence of a valid trajectory; this is
		// unreachable, but fail loudly rather than return a broken value.
		panic(fmt.Sprintf("prep: spike filter produced invalid trajectory: %v", err))
	}
	return out
}

// Simplify reduces the trajectory with the Douglas-Peucker algorithm:
// points farther than tolerance (meters) from the simplified chord are
// kept. Timestamps follow their points. The first and last points always
// survive.
//
// Guarantee: every removed point lies within tolerance of the segment
// joining its surviving neighbors, so the continuous shape drifts by at
// most the tolerance. Note this does NOT bound the *discrete* Fréchet
// distance between original and simplified point sequences — removed
// points must couple to the sparse surviving samples, which may be far
// away along-track — so simplify both trajectories (or both legs) with
// the same tolerance before comparing them, and treat the result as an
// approximation whose fidelity is the chosen tolerance.
func Simplify(t *traj.Trajectory, tolerance float64, df geo.DistanceFunc) *traj.Trajectory {
	if t.Len() <= 2 || tolerance <= 0 {
		return t
	}
	if df == nil {
		df = geo.Haversine
	}
	keep := make([]bool, t.Len())
	keep[0], keep[t.Len()-1] = true, true
	douglasPeucker(t.Points, 0, t.Len()-1, tolerance, df, keep)

	points := make([]geo.Point, 0, t.Len())
	var times []time.Time
	if t.Times != nil {
		times = make([]time.Time, 0, t.Len())
	}
	for k, kept := range keep {
		if !kept {
			continue
		}
		points = append(points, t.Points[k])
		if times != nil {
			times = append(times, t.Times[k])
		}
	}
	out, err := traj.New(points, times)
	if err != nil {
		panic(fmt.Sprintf("prep: simplify produced invalid trajectory: %v", err))
	}
	return out
}

func douglasPeucker(pts []geo.Point, lo, hi int, tol float64, df geo.DistanceFunc, keep []bool) {
	if hi <= lo+1 {
		return
	}
	maxDist, maxIdx := 0.0, -1
	for k := lo + 1; k < hi; k++ {
		if d := pointSegmentDistance(pts[k], pts[lo], pts[hi], df); d > maxDist {
			maxDist, maxIdx = d, k
		}
	}
	if maxDist > tol {
		keep[maxIdx] = true
		douglasPeucker(pts, lo, maxIdx, tol, df, keep)
		douglasPeucker(pts, maxIdx, hi, tol, df, keep)
	}
}

// pointSegmentDistance approximates the distance from p to segment ab by
// projecting in a local tangent plane — accurate to well under 1% for the
// sub-kilometer segments of sampled trajectories.
func pointSegmentDistance(p, a, b geo.Point, df geo.DistanceFunc) float64 {
	// Project into meters east/north of a.
	bx, by := localMeters(a, b)
	px, py := localMeters(a, p)
	segLen2 := bx*bx + by*by
	if segLen2 == 0 {
		return df(p, a)
	}
	u := (px*bx + py*by) / segLen2
	if u < 0 {
		return df(p, a)
	}
	if u > 1 {
		return df(p, b)
	}
	dx, dy := px-u*bx, py-u*by
	return math.Hypot(dx, dy)
}

func localMeters(origin, p geo.Point) (east, north float64) {
	const degToRad = math.Pi / 180
	north = (p.Lat - origin.Lat) * degToRad * geo.EarthRadiusMeters
	east = (p.Lng - origin.Lng) * degToRad * geo.EarthRadiusMeters * math.Cos(origin.Lat*degToRad)
	return east, north
}

// StayPoint is a dwell region: a maximal run of samples that stays within
// radius meters of its anchor for at least minDuration.
type StayPoint struct {
	// Span covers the dwelling samples.
	Span traj.Span
	// Center is the mean position of the dwell.
	Center geo.Point
	// Duration is the dwell's wall-clock extent.
	Duration time.Duration
}

// StayPoints detects dwell regions (Li et al.-style stay-point detection,
// used throughout the GeoLife literature): from each anchor, extend while
// samples remain within radius; report the run if it lasts minDuration.
// Requires timestamps.
func StayPoints(t *traj.Trajectory, radius float64, minDuration time.Duration, df geo.DistanceFunc) []StayPoint {
	if t.Times == nil || t.Len() < 2 {
		return nil
	}
	if df == nil {
		df = geo.Haversine
	}
	var out []StayPoint
	i := 0
	for i < t.Len()-1 {
		j := i + 1
		for j < t.Len() && df(t.Points[i], t.Points[j]) <= radius {
			j++
		}
		// Samples i..j-1 stay within radius of anchor i.
		dur := t.Times[j-1].Sub(t.Times[i])
		if j-1 > i && dur >= minDuration {
			var lat, lng float64
			for k := i; k < j; k++ {
				lat += t.Points[k].Lat
				lng += t.Points[k].Lng
			}
			cnt := float64(j - i)
			out = append(out, StayPoint{
				Span:     traj.Span{Start: i, End: j - 1},
				Center:   geo.Point{Lat: lat / cnt, Lng: lng / cnt},
				Duration: dur,
			})
			i = j
			continue
		}
		i++
	}
	return out
}

// SplitOnGaps cuts a timed trajectory wherever consecutive samples are
// separated by more than maxGap, returning the resulting segments (each
// with at least minPoints samples). Recording gaps are where GPS loggers
// lost fix; motifs should not couple across them.
func SplitOnGaps(t *traj.Trajectory, maxGap time.Duration, minPoints int) []*traj.Trajectory {
	if t.Times == nil {
		return []*traj.Trajectory{t}
	}
	if minPoints < 1 {
		minPoints = 1
	}
	var out []*traj.Trajectory
	start := 0
	emit := func(lo, hi int) {
		if hi-lo+1 < minPoints {
			return
		}
		seg, err := traj.New(
			append([]geo.Point(nil), t.Points[lo:hi+1]...),
			append([]time.Time(nil), t.Times[lo:hi+1]...),
		)
		if err != nil {
			panic(fmt.Sprintf("prep: gap split produced invalid segment: %v", err))
		}
		out = append(out, seg)
	}
	for k := 1; k < t.Len(); k++ {
		if t.Times[k].Sub(t.Times[k-1]) > maxGap {
			emit(start, k-1)
			start = k
		}
	}
	emit(start, t.Len()-1)
	return out
}
