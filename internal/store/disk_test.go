package store

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"trajmotif/internal/core"
	"trajmotif/internal/geo"
	"trajmotif/internal/group"
)

// diskReq is the canonical small artifact request the disk suite drives
// the store with — tiny points so the fault-injection sweep over every
// byte offset stays fast.
func diskReq(pts []geo.Point) core.ArtifactRequest {
	return core.ArtifactRequest{
		A:          pts,
		Self:       true,
		Xi:         3,
		WithBounds: true,
		Dist:       geo.Haversine,
		Workers:    1,
	}
}

func smallPoints(n int) []geo.Point {
	pts := make([]geo.Point, n)
	for k := range pts {
		pts[k] = geo.Point{Lat: 39.9 + float64(k)*0.002, Lng: 116.3 + float64(k%4)*0.003}
	}
	return pts
}

// TestDiskSpillAndPromote: artifacts built with an ArtifactDir land on
// disk; a brand-new store over the same directory serves them from disk
// — byte-identical artifacts, zero rebuilds, and the promotion counted
// as a reuse.
func TestDiskSpillAndPromote(t *testing.T) {
	dir := t.TempDir()
	pts := smallPoints(20)
	req := diskReq(pts)

	s1 := New(&Options{ArtifactDir: dir})
	g1, rb1, reused := s1.Artifacts(req)
	if reused != 0 {
		t.Fatalf("cold request claims %d reuses", reused)
	}
	st1 := s1.Stats()
	if st1.DiskWrites != 2 || st1.DiskArtifacts != 2 || st1.DiskBytes <= 0 {
		t.Fatalf("expected grid+bounds spilled: %+v", st1)
	}
	if st1.DiskErrors != 0 || st1.DiskReads != 0 {
		t.Fatalf("unexpected disk traffic: %+v", st1)
	}

	// Fresh process, same directory: the RAM cache is empty, so both
	// artifacts must come off disk — and count as reuses, which is the
	// warm-restart counter-parity argument.
	s2 := New(&Options{ArtifactDir: dir})
	if st := s2.Stats(); st.DiskArtifacts != 2 {
		t.Fatalf("startup scan missed the artifacts: %+v", st)
	}
	g2, rb2, reused := s2.Artifacts(req)
	if reused != 2 {
		t.Fatalf("warm-restart request reused %d artifacts, want 2", reused)
	}
	if !reflect.DeepEqual(g1, g2) || !reflect.DeepEqual(rb1, rb2) {
		t.Fatal("promoted artifacts differ from the originals")
	}
	st2 := s2.Stats()
	if st2.Built != 0 || st2.Reused != 2 || st2.DiskReads != 2 || st2.DiskErrors != 0 {
		t.Fatalf("promotion accounting off: %+v", st2)
	}
	// Promoted copies are now RAM-resident: the next request touches
	// neither disk nor the builders.
	if _, _, reused := s2.Artifacts(req); reused != 2 {
		t.Fatalf("post-promotion request reused %d", reused)
	}
	if st := s2.Stats(); st.DiskReads != 2 {
		t.Fatalf("RAM hit went back to disk: %+v", st)
	}
}

// TestDiskEvictionIsDemotion: a RAM eviction does not lose the artifact
// — the write-through copy stays on disk and the next request promotes
// instead of rebuilding.
func TestDiskEvictionIsDemotion(t *testing.T) {
	dir := t.TempDir()
	a, b := smallPoints(40), smallPoints(44)
	// One 40x40 grid is 12800 bytes; budget roughly one trajectory's
	// grid+bounds so the second trajectory evicts the first.
	s := New(&Options{ArtifactDir: dir, CacheBytes: 16_000})
	ga, _, _ := s.Artifacts(diskReq(a))
	s.Artifacts(diskReq(b))
	st := s.Stats()
	if st.Evicted == 0 {
		t.Fatalf("budget never forced an eviction: %+v", st)
	}
	if st.DiskArtifacts != 4 {
		t.Fatalf("disk lost a demoted artifact: %+v", st)
	}
	ga2, _, reused := s.Artifacts(diskReq(a))
	if reused == 0 {
		t.Fatalf("evicted artifact was rebuilt instead of promoted: %+v", s.Stats())
	}
	if !reflect.DeepEqual(ga, ga2) {
		t.Fatal("demoted-then-promoted grid differs")
	}
	if after := s.Stats(); after.DiskReads == 0 {
		t.Fatalf("promotion not counted: %+v", after)
	}
}

// TestDiskPurgeOnRemove: Remove purges disk copies alongside RAM ones,
// and a fresh store over the directory sees nothing to promote.
func TestDiskPurgeOnRemove(t *testing.T) {
	dir := t.TempDir()
	tr := fixture(t, 11, 30)
	s := New(&Options{ArtifactDir: dir})
	id, _, err := s.Add(tr)
	if err != nil {
		t.Fatal(err)
	}
	s.Artifacts(diskReq(tr.Points))
	if st := s.Stats(); st.DiskArtifacts != 2 {
		t.Fatalf("setup: %+v", st)
	}
	if !s.Remove(id) {
		t.Fatal("Remove reported absent id")
	}
	if st := s.Stats(); st.Artifacts != 0 || st.DiskArtifacts != 0 || st.DiskBytes != 0 {
		t.Fatalf("Remove left artifacts behind: %+v", st)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("Remove left %d files on disk", len(entries))
	}
}

// TestDiskFaultInjection kills the artifact write at every byte offset,
// in both crash shapes the rename protocol allows — a leftover temp file
// (the rename never happened) and a torn final file (simulating a
// corrupted disk) — and asserts the store never serves a torn artifact:
// every request returns the bit-exact artifacts, and the directory ends
// up healed with a valid rewrite.
func TestDiskFaultInjection(t *testing.T) {
	pts := smallPoints(12)
	req := diskReq(pts)

	// Reference artifacts and a pristine file image to truncate.
	refDir := t.TempDir()
	refStore := New(&Options{ArtifactDir: refDir})
	refG, refRB, _ := refStore.Artifacts(req)
	var artNames []string
	entries, err := os.ReadDir(refDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		artNames = append(artNames, e.Name())
	}
	if len(artNames) != 2 {
		t.Fatalf("expected 2 artifact files, got %v", artNames)
	}

	check := func(t *testing.T, dir string, wantErrors bool) {
		s := New(&Options{ArtifactDir: dir})
		g, rb, _ := s.Artifacts(req)
		if !reflect.DeepEqual(g, refG) || !reflect.DeepEqual(rb, refRB) {
			t.Fatal("store served a torn artifact")
		}
		if wantErrors && s.Stats().DiskErrors == 0 {
			t.Fatalf("corruption went uncounted: %+v", s.Stats())
		}
		// Self-heal: both artifacts valid on disk again.
		s2 := New(&Options{ArtifactDir: dir})
		g2, rb2, reused := s2.Artifacts(req)
		if reused != 2 || !reflect.DeepEqual(g2, refG) || !reflect.DeepEqual(rb2, refRB) {
			t.Fatalf("directory not healed: reused=%d", reused)
		}
	}

	for _, name := range artNames {
		data, err := os.ReadFile(filepath.Join(refDir, name))
		if err != nil {
			t.Fatal(err)
		}
		// Crash shape 1: the temp file was written to length cut and the
		// process died before the rename. The startup scan must discard it.
		t.Run("tmpfile/"+name, func(t *testing.T) {
			for cut := 0; cut <= len(data); cut += 97 {
				dir := t.TempDir()
				if err := os.WriteFile(filepath.Join(dir, artifactTmpPref+"art-killed"), data[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				s := New(&Options{ArtifactDir: dir})
				if st := s.Stats(); st.DiskErrors == 0 || st.DiskArtifacts != 0 {
					t.Fatalf("cut %d: temp leftover not healed: %+v", cut, st)
				}
				if _, err := os.Stat(filepath.Join(dir, artifactTmpPref+"art-killed")); !os.IsNotExist(err) {
					t.Fatalf("cut %d: temp leftover still present", cut)
				}
			}
		})
		// Crash shape 2: the final file exists but holds a strict prefix
		// (torn write / bad sector). Every cut must be detected on read,
		// deleted, recomputed, and rewritten.
		t.Run("torn/"+name, func(t *testing.T) {
			for cut := 0; cut < len(data); cut++ {
				dir := t.TempDir()
				if err := os.WriteFile(filepath.Join(dir, name), data[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				check(t, dir, true)
			}
		})
		// A flipped payload byte defeats length checks; the checksum must
		// catch it.
		t.Run("bitflip/"+name, func(t *testing.T) {
			for _, off := range []int{len(data) / 3, len(data) / 2, len(data) - 1} {
				dir := t.TempDir()
				mut := append([]byte(nil), data...)
				mut[off] ^= 0x40
				if err := os.WriteFile(filepath.Join(dir, name), mut, 0o644); err != nil {
					t.Fatal(err)
				}
				check(t, dir, true)
			}
		})
		// A valid artifact renamed to another key must not serve under
		// that key: the embedded name binds file to key.
		t.Run("renamed/"+name, func(t *testing.T) {
			dir := t.TempDir()
			wrong := strings.Replace(name, "-3-", "-4-", 1)
			if wrong == name {
				wrong = strings.Replace(name, "-0-", "-1-", 1)
			}
			if err := os.WriteFile(filepath.Join(dir, wrong), data, 0o644); err != nil {
				t.Fatal(err)
			}
			s := New(&Options{ArtifactDir: dir})
			g, rb, reused := s.Artifacts(req)
			if !reflect.DeepEqual(g, refG) || !reflect.DeepEqual(rb, refRB) {
				t.Fatal("artifacts diverged")
			}
			_ = reused
		})
	}

	// Unparseable .art files are removed by the startup scan.
	t.Run("foreign", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "not-an-artifact.art"), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
		s := New(&Options{ArtifactDir: dir})
		if st := s.Stats(); st.DiskErrors == 0 || st.DiskArtifacts != 0 {
			t.Fatalf("junk .art survived the scan: %+v", st)
		}
	})
}

// TestSnapshotRestartParity is the tentpole acceptance test: populate,
// snapshot, restart over the same artifact directory, and prove the
// restarted store is byte-identical to one that never restarted —
// results AND effort counters, GridRebuildsAvoided included.
func TestSnapshotRestartParity(t *testing.T) {
	trs := []*struct{ seed, n int }{{21, 90}, {22, 110}, {23, 70}}
	phase := func(s *Store) []*group.Result {
		var out []*group.Result
		for _, cfg := range trs {
			tr := fixture(t, int64(cfg.seed), cfg.n)
			if _, _, err := s.Add(tr); err != nil {
				t.Fatal(err)
			}
			r, err := group.GTM(tr, 6, 12, &core.Options{Workers: 2, Artifacts: s})
			if err != nil {
				t.Fatal(err)
			}
			// Scrub wall-clock timings only: every effort counter —
			// GridRebuildsAvoided included — stays in the comparison.
			r.Stats.Precompute, r.Stats.Search = 0, 0
			r.Group.Stats.Precompute, r.Group.Stats.Search = 0, 0
			out = append(out, r)
		}
		return out
	}

	// Control: one store, never restarted, runs both phases.
	ctlDir := t.TempDir()
	ctl := New(&Options{ArtifactDir: ctlDir})
	phase(ctl)
	ctlBefore := ctl.Stats()
	ctlPhase2 := phase(ctl)
	ctlAfter := ctl.Stats()

	// Subject: same phase 1, then snapshot + restart onto the same
	// artifact directory, then phase 2.
	subDir := t.TempDir()
	snap := filepath.Join(subDir, "registry.snap")
	sub1 := New(&Options{ArtifactDir: subDir})
	phase(sub1)
	if n, err := sub1.Snapshot(snap); err != nil || n != len(trs) {
		t.Fatalf("Snapshot: n=%d err=%v", n, err)
	}
	sub2 := New(&Options{ArtifactDir: subDir})
	if n, err := sub2.Restore(snap); err != nil || n != len(trs) {
		t.Fatalf("Restore: n=%d err=%v", n, err)
	}
	if got, want := sub2.IDs(), sub1.IDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored registry differs:\n got %v\nwant %v", got, want)
	}
	subBefore := sub2.Stats()
	subPhase2 := phase(sub2)
	subAfter := sub2.Stats()

	// Per-request results and effort counters — including
	// GridRebuildsAvoided, the counter a naive disk tier would skew —
	// must match the never-restarted control exactly.
	if !reflect.DeepEqual(ctlPhase2, subPhase2) {
		t.Fatalf("phase-2 results diverge after restart:\nctl %+v\nsub %+v", ctlPhase2, subPhase2)
	}
	// Store-wide construction effort across phase 2 must match too: the
	// control reuses from RAM, the subject promotes from disk, and both
	// motions count identically.
	ctlBuilt, ctlReused := ctlAfter.Built-ctlBefore.Built, ctlAfter.Reused-ctlBefore.Reused
	subBuilt, subReused := subAfter.Built-subBefore.Built, subAfter.Reused-subBefore.Reused
	if ctlBuilt != subBuilt || ctlReused != subReused {
		t.Fatalf("phase-2 effort diverges: ctl built=%d reused=%d, sub built=%d reused=%d",
			ctlBuilt, ctlReused, subBuilt, subReused)
	}
	if subAfter.DiskReads == 0 {
		t.Fatalf("restarted store never promoted from disk: %+v", subAfter)
	}
	if subBuilt != 0 {
		t.Fatalf("restarted store rebuilt %d artifacts it had on disk", subBuilt)
	}
}

// TestSnapshotRejectsCorruption: every strict prefix of a snapshot file
// fails to decode — a torn snapshot is rejected whole.
func TestSnapshotRejectsCorruption(t *testing.T) {
	s := New(nil)
	for _, seed := range []int64{31, 32} {
		if _, _, err := s.Add(fixture(t, seed, 25)); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	snap := filepath.Join(dir, "registry.snap")
	if _, err := s.Snapshot(snap); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := DecodeSnapshot(data)
	if err != nil || len(ts) != 2 {
		t.Fatalf("decode: %d trajectories, err=%v", len(ts), err)
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeSnapshot(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeSnapshot(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Restore of a missing file is a clean first boot, not an error.
	s2 := New(nil)
	if n, err := s2.Restore(filepath.Join(dir, "absent.snap")); n != 0 || err != nil {
		t.Fatalf("missing snapshot: n=%d err=%v", n, err)
	}
}

// TestPointDistsMemo: the intra-trajectory point-distance memo returns
// the exact direct evaluations, hits on repeats and symmetric queries,
// and spills/promotes through the disk tier like every other artifact.
func TestPointDistsMemo(t *testing.T) {
	dir := t.TempDir()
	pts := smallPoints(9)
	s := New(&Options{ArtifactDir: dir})
	pd := s.PointDists(pts)
	if pd == nil {
		t.Fatal("PointDists returned nil with caching on")
	}
	d, ok := pd(2, 7)
	if !ok || d != geo.Haversine(pts[2], pts[7]) {
		t.Fatalf("memo value %v differs from direct evaluation", d)
	}
	if d2, ok := pd(7, 2); !ok || d2 != d {
		t.Fatal("symmetric query missed the memo")
	}
	st := s.Stats()
	if st.PairDistsBuilt != 1 || st.PairDistsReused != 1 {
		t.Fatalf("memo accounting off: %+v", st)
	}
	if st.DiskWrites != 1 {
		t.Fatalf("point-dist memo never spilled: %+v", st)
	}

	// Fresh store, same dir: the memo promotes from disk.
	s2 := New(&Options{ArtifactDir: dir})
	pd2 := s2.PointDists(pts)
	if d2, ok := pd2(2, 7); !ok || d2 != d {
		t.Fatalf("promoted memo value %v differs", d2)
	}
	st2 := s2.Stats()
	if st2.DiskReads != 1 || st2.PairDistsReused != 1 || st2.PairDistsBuilt != 0 {
		t.Fatalf("promotion accounting off: %+v", st2)
	}

	// Out-of-range indexes report a miss rather than panicking.
	if _, ok := pd(-1, 3); ok {
		t.Fatal("negative index served")
	}
	if _, ok := pd(0, len(pts)); ok {
		t.Fatal("out-of-range index served")
	}
	// Disabled cache: nil supplier, as documented.
	if New(&Options{CacheBytes: -1}).PointDists(pts) != nil {
		t.Fatal("disabled cache returned a supplier")
	}
}
