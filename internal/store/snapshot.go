package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

// Registry snapshots: a single checksummed file holding every registered
// trajectory (points and timestamps), so a restart can re-Add the same
// content and — because IDs are content hashes and the disk artifact
// tier survives in place — come back warm: same IDs, same artifact keys,
// promotions instead of rebuilds.
//
// Layout: magic, uint64 trajectory count, then per trajectory a uint64
// point count, one hasTimes byte, the points as float64 lat/lng bits,
// and (when timestamped) int64 UnixNano per point — all little-endian —
// followed by a SHA-256 trailer over everything before it. Restore
// re-derives timestamps via time.Unix(0, nanos).UTC(), which round-trips
// hashTrajectory exactly (it hashes UnixNano).
//
// Snapshots are written with the same atomicity protocol as artifacts
// (temp file, fsync, rename, directory fsync), so a crash mid-snapshot
// leaves the previous snapshot intact.

const snapshotMagic = "TMSNAP1\n"

// EncodeSnapshot serializes trajectories into the snapshot format. The
// shard coordinator shares this codec: it snapshots the union of its
// shards into one file and re-routes on restore.
func EncodeSnapshot(ts []*traj.Trajectory) []byte {
	size := len(snapshotMagic) + 8 + sha256.Size
	for _, t := range ts {
		size += 8 + 1 + 16*len(t.Points)
		if t.Times != nil {
			size += 8 * len(t.Times)
		}
	}
	out := make([]byte, 0, size)
	out = append(out, snapshotMagic...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(ts)))
	for _, t := range ts {
		out = binary.LittleEndian.AppendUint64(out, uint64(len(t.Points)))
		if t.Times != nil {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		for _, p := range t.Points {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.Lat))
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.Lng))
		}
		if t.Times != nil {
			for _, tm := range t.Times {
				out = binary.LittleEndian.AppendUint64(out, uint64(tm.UnixNano()))
			}
		}
	}
	sum := sha256.Sum256(out)
	return append(out, sum[:]...)
}

// DecodeSnapshot parses a snapshot produced by EncodeSnapshot. Any
// truncation, trailing data, or checksum mismatch is an error — a torn
// snapshot is rejected whole rather than partially restored.
func DecodeSnapshot(data []byte) ([]*traj.Trajectory, error) {
	if len(data) < len(snapshotMagic)+8+sha256.Size {
		return nil, fmt.Errorf("store: snapshot truncated to %d bytes", len(data))
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("store: snapshot has a foreign header")
	}
	body, trailer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	sum := sha256.Sum256(body)
	if string(sum[:]) != string(trailer) {
		return nil, fmt.Errorf("store: snapshot fails its checksum")
	}
	body = body[len(snapshotMagic):]
	takeU64 := func() (uint64, error) {
		if len(body) < 8 {
			return 0, fmt.Errorf("store: snapshot truncated inside a record")
		}
		v := binary.LittleEndian.Uint64(body)
		body = body[8:]
		return v, nil
	}
	count, err := takeU64()
	if err != nil {
		return nil, err
	}
	// Each trajectory costs at least 9 bytes of header; bound the
	// allocation by what the buffer can actually hold.
	if count > uint64(len(body)/9) {
		return nil, fmt.Errorf("store: snapshot claims %d trajectories in %d bytes", count, len(body))
	}
	ts := make([]*traj.Trajectory, 0, count)
	for range count {
		n, err := takeU64()
		if err != nil {
			return nil, err
		}
		if len(body) < 1 {
			return nil, fmt.Errorf("store: snapshot truncated inside a record")
		}
		hasTimes := body[0] != 0
		body = body[1:]
		per := uint64(16)
		if hasTimes {
			per = 24
		}
		if n > uint64(len(body))/per {
			return nil, fmt.Errorf("store: snapshot record claims %d points in %d bytes", n, len(body))
		}
		t := &traj.Trajectory{Points: make([]geo.Point, n)}
		for k := range t.Points {
			t.Points[k].Lat = math.Float64frombits(binary.LittleEndian.Uint64(body[16*k:]))
			t.Points[k].Lng = math.Float64frombits(binary.LittleEndian.Uint64(body[16*k+8:]))
		}
		body = body[16*n:]
		if hasTimes {
			t.Times = make([]time.Time, n)
			for k := range t.Times {
				t.Times[k] = time.Unix(0, int64(binary.LittleEndian.Uint64(body[8*k:]))).UTC()
			}
			body = body[8*n:]
		}
		ts = append(ts, t)
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("store: %d trailing bytes after snapshot", len(body))
	}
	return ts, nil
}

// WriteSnapshotFile writes an encoded snapshot atomically: temp file in
// the destination directory, fsync, rename, directory fsync.
func WriteSnapshotFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, artifactTmpPref+"snap-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// Snapshot writes every registered trajectory (insertion order) to path,
// atomically, and reports how many were written.
func (s *Store) Snapshot(path string) (int, error) {
	s.mu.Lock()
	s.sweepLocked()
	ts := make([]*traj.Trajectory, 0, len(s.order))
	for _, id := range s.order {
		ts = append(ts, s.trajs[id])
	}
	s.mu.Unlock()
	if err := WriteSnapshotFile(path, EncodeSnapshot(ts)); err != nil {
		return 0, err
	}
	return len(ts), nil
}

// ReadSnapshotFile loads and decodes a snapshot file. A missing file is
// not an error — it is a first boot, reported as an empty snapshot — but
// a corrupt one is.
func ReadSnapshotFile(path string) ([]*traj.Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	return DecodeSnapshot(data)
}

// Restore re-registers every trajectory from a snapshot file, returning
// how many were added. A missing file is not an error (first boot); a
// corrupt one is. Content IDs re-derive from the data, so a restored
// registry matches the snapshotted one exactly, and artifacts already in
// the disk tier reattach to their keys without recomputation.
func (s *Store) Restore(path string) (int, error) {
	ts, err := ReadSnapshotFile(path)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, t := range ts {
		if _, created, err := s.Add(t); err != nil {
			return n, err
		} else if created {
			n++
		}
	}
	return n, nil
}
