package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The disk artifact tier (Options.ArtifactDir): a content-addressed
// directory of artifact files behind the RAM LRU. Every artifact the
// store builds is written through to disk, so a RAM eviction is a
// demotion for free (the disk copy already exists) and a cache miss
// checks disk before recomputing; a promotion counts as a reuse, which
// is what makes a warm restart byte-identical — results and
// GridRebuildsAvoided alike — to a store that never restarted.
//
// Crash safety is the rename protocol: artifacts are written to a
// temporary file in the same directory, fsync'd, renamed into place, and
// the directory fsync'd — a crash mid-write leaves either the old state
// or the new, never a torn final file. Every file additionally carries a
// magic header, its own canonical name (so a renamed file cannot serve
// under the wrong key), and a SHA-256 trailer; a read that fails any of
// those checks deletes the file and reports a miss, so the store
// self-heals by recomputing (counted in Stats.DiskErrors). Leftover
// temporary files are removed by the startup scan.
//
// File names encode the full artifact key —
//
//	<kind>-<a>-<b|"self">-<xi>-<f32|f64>.art
//
// with a and b the hex point-content hashes — so the startup scan
// rebuilds the index without opening a single file; contents are
// verified lazily on first read. The index and byte/thruput counters
// live on the Store and are guarded by Store.mu like every other
// mutable store structure (the *Locked methods below); file I/O for
// loads and spills happens outside the lock.

const (
	artifactExt     = ".art"
	artifactTmpPref = ".tmp-"
	artifactMagic   = "TMART1\n"
)

// diskTier is the on-disk artifact index: sizes by key, maintained under
// Store.mu. Nil when Options.ArtifactDir is unset or unusable.
type diskTier struct {
	dir   string
	index map[artifactKey]int64 // file size by key
	bytes int64
}

// kindNames is the filename vocabulary; parseArtifactName inverts it.
var kindNames = map[artifactKind]string{
	kindSelfGrid:    "selfgrid",
	kindCrossGrid:   "crossgrid",
	kindSelfBounds:  "selfbounds",
	kindCrossBounds: "crossbounds",
	kindPairDists:   "pairdists",
	kindPointDists:  "pointdists",
}

// artifactFileName is the canonical key → filename mapping.
func artifactFileName(k artifactKey) string {
	b := string(k.b)
	if b == "" {
		b = "self"
	}
	bits := "f64"
	if k.f32 {
		bits = "f32"
	}
	return fmt.Sprintf("%s-%s-%s-%d-%s%s", kindNames[k.kind], k.a, b, k.xi, bits, artifactExt)
}

// parseArtifactName inverts artifactFileName. IDs are hex, so the dash
// split is unambiguous.
func parseArtifactName(name string) (artifactKey, bool) {
	base, ok := strings.CutSuffix(name, artifactExt)
	if !ok {
		return artifactKey{}, false
	}
	parts := strings.Split(base, "-")
	if len(parts) != 5 {
		return artifactKey{}, false
	}
	var k artifactKey
	found := false
	for kind, kn := range kindNames {
		if kn == parts[0] {
			k.kind, found = kind, true
			break
		}
	}
	if !found {
		return artifactKey{}, false
	}
	k.a = ID(parts[1])
	if parts[2] != "self" {
		k.b = ID(parts[2])
	}
	xi, err := strconv.ParseInt(parts[3], 10, 64)
	if err != nil || xi < 0 {
		return artifactKey{}, false
	}
	k.xi = int(xi)
	switch parts[4] {
	case "f32":
		k.f32 = true
	case "f64":
	default:
		return artifactKey{}, false
	}
	return k, true
}

// newDiskTier opens (creating if needed) an artifact directory and scans
// it: leftover temporary files and unparseable .art files are removed,
// everything else is indexed by size without being opened. healed counts
// the removals, failed the I/O errors encountered.
func newDiskTier(dir string) (d *diskTier, healed, failed int64, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, 0, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, 0, err
	}
	d = &diskTier{dir: dir, index: make(map[artifactKey]int64)}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, artifactTmpPref):
			// A write that never reached its rename: harmless, remove.
			if os.Remove(filepath.Join(dir, name)) == nil {
				healed++
			} else {
				failed++
			}
		case strings.HasSuffix(name, artifactExt):
			key, ok := parseArtifactName(name)
			if !ok {
				if os.Remove(filepath.Join(dir, name)) == nil {
					healed++
				} else {
					failed++
				}
				continue
			}
			info, err := e.Info()
			if err != nil {
				failed++
				continue
			}
			d.index[key] = info.Size()
			d.bytes += info.Size()
		default:
			// Not ours (e.g. a registry snapshot); leave it alone.
		}
	}
	return d, healed, failed, nil
}

// writeArtifact writes one artifact file atomically: header + payload +
// SHA-256 trailer into a same-directory temp file, fsync, rename, fsync
// the directory. Returns the file size for the index.
func (d *diskTier) writeArtifact(k artifactKey, payload []byte) (int64, error) {
	name := artifactFileName(k)
	if len(name) > 1<<16-1 {
		return 0, fmt.Errorf("store: artifact name too long")
	}
	buf := make([]byte, 0, len(artifactMagic)+2+len(name)+len(payload)+sha256.Size)
	buf = append(buf, artifactMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
	buf = append(buf, name...)
	buf = append(buf, payload...)
	sum := sha256.Sum256(buf)
	buf = append(buf, sum[:]...)

	f, err := os.CreateTemp(d.dir, artifactTmpPref+"art-*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(d.dir, name))
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if dir, derr := os.Open(d.dir); derr == nil {
		_ = dir.Sync()
		_ = dir.Close()
	}
	return int64(len(buf)), nil
}

// readArtifact loads and verifies one artifact file, returning its
// payload. Any verification failure — truncation, bad magic, name
// mismatch, checksum mismatch — deletes the file (self-heal: the next
// access recomputes and rewrites it) and returns an error; the caller
// drops the index entry under the lock.
func (d *diskTier) readArtifact(k artifactKey) ([]byte, error) {
	name := artifactFileName(k)
	path := filepath.Join(d.dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := verifyArtifact(data, name)
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	return payload, nil
}

// verifyArtifact checks the container format and returns the payload.
func verifyArtifact(data []byte, name string) ([]byte, error) {
	headerMin := len(artifactMagic) + 2
	if len(data) < headerMin+sha256.Size {
		return nil, fmt.Errorf("store: artifact %s truncated to %d bytes", name, len(data))
	}
	if string(data[:len(artifactMagic)]) != artifactMagic {
		return nil, fmt.Errorf("store: artifact %s has a foreign header", name)
	}
	nameLen := int(binary.LittleEndian.Uint16(data[len(artifactMagic):]))
	if len(data) < headerMin+nameLen+sha256.Size {
		return nil, fmt.Errorf("store: artifact %s truncated inside the name", name)
	}
	if string(data[headerMin:headerMin+nameLen]) != name {
		return nil, fmt.Errorf("store: artifact %s carries the wrong key", name)
	}
	body, trailer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	sum := sha256.Sum256(body)
	if string(sum[:]) != string(trailer) {
		return nil, fmt.Errorf("store: artifact %s fails its checksum", name)
	}
	return body[headerMin+nameLen:], nil
}

// removeArtifact deletes one artifact file (trajectory purges).
func (d *diskTier) removeArtifact(k artifactKey) {
	os.Remove(filepath.Join(d.dir, artifactFileName(k)))
}

// encodeFloats / decodeFloats serialize the small fixed-arity memo
// payloads (pair endpoint distances, point-pair distances).
func encodeFloats(vals ...float64) []byte {
	out := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

func decodeFloats(data []byte, n int) ([]float64, error) {
	if len(data) != 8*n {
		return nil, fmt.Errorf("store: %d bytes for a %d-float payload", len(data), n)
	}
	out := make([]float64, n)
	for k := range out {
		out[k] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*k:]))
	}
	return out, nil
}

// --- Store-side index maintenance, under Store.mu ---

// diskHasLocked reports whether the key has an indexed disk copy.
func (s *Store) diskHasLocked(k artifactKey) bool {
	if s.disk == nil {
		return false
	}
	_, ok := s.disk.index[k]
	return ok
}

// diskRecordLocked indexes a freshly written artifact file.
func (s *Store) diskRecordLocked(k artifactKey, size int64) {
	if prev, ok := s.disk.index[k]; ok {
		// A concurrent identical spill landed first; the rename made the
		// last write win, so track the newer size.
		s.disk.bytes += size - prev
		s.disk.index[k] = size
		return
	}
	s.disk.index[k] = size
	s.disk.bytes += size
	s.diskWrites++
}

// diskDropLocked forgets a disk copy that failed verification (the file
// itself was already removed by the failed read).
func (s *Store) diskDropLocked(k artifactKey) {
	if size, ok := s.disk.index[k]; ok {
		delete(s.disk.index, k)
		s.disk.bytes -= size
	}
	s.diskErrors++
}

// diskPurgeLocked removes every disk artifact derived from the geometry
// pid, files included — the disk half of evictLocked's cache purge, so
// Remove and auto-eviction can never leave a stale artifact to be
// promoted later.
func (s *Store) diskPurgeLocked(pid ID) int {
	if s.disk == nil {
		return 0
	}
	n := 0
	for key, size := range s.disk.index {
		if key.a == pid || key.b == pid {
			s.disk.removeArtifact(key)
			delete(s.disk.index, key)
			s.disk.bytes -= size
			n++
		}
	}
	return n
}

// spill writes an artifact through to disk (outside the lock; the caller
// records success under the lock via diskRecordLocked). size < 0 reports
// a failed or skipped spill.
func (s *Store) spill(k artifactKey, payload []byte) int64 {
	if s.disk == nil {
		return -1
	}
	size, err := s.disk.writeArtifact(k, payload)
	if err != nil {
		return -1
	}
	return size
}
