package store

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"trajmotif/internal/geo"
	"trajmotif/internal/spatial"
	"trajmotif/internal/traj"
)

func walkAt(r *rand.Rand, n int, lat, lng float64) *traj.Trajectory {
	pts := make([]geo.Point, n)
	for i := range pts {
		lat += (r.Float64()*2 - 1) * 0.01
		lng += (r.Float64()*2 - 1) * 0.01
		pts[i] = geo.Point{Lat: lat, Lng: lng}
	}
	return traj.FromPoints(pts)
}

// TestSpatialMaintenance: the side-index tracks Add/Remove exactly —
// cached MBRs equal the Bound fold, candidates come back in insertion
// order, and removal drops the entry everywhere.
func TestSpatialMaintenance(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	s := New(nil)
	var ids []ID
	for i := 0; i < 8; i++ {
		tr := walkAt(r, 10+i, 40+float64(i), -74+float64(i))
		id, created, err := s.Add(tr)
		if err != nil || !created {
			t.Fatalf("add %d: %v created=%v", i, err, created)
		}
		ids = append(ids, id)
		if got := s.MBRFor(id, tr); got != spatial.Bound(tr.Points) {
			t.Fatalf("MBRFor(%d) = %+v, want the Bound fold", i, got)
		}
	}
	if missing, stale := s.SpatialParity(); len(missing) != 0 || stale != 0 {
		t.Fatalf("parity after adds: missing=%v stale=%d", missing, stale)
	}
	all := s.SpatialCandidates(spatial.MBR{MinLat: 40, MaxLat: 40, MinLng: -74, MaxLng: -74}, math.Inf(1))
	want := s.IDs()
	if len(all) != len(want) {
		t.Fatalf("candidates %d of %d", len(all), len(want))
	}
	for k := range all {
		if all[k] != want[k] {
			t.Fatalf("candidates out of insertion order at %d: %s vs %s", k, all[k], want[k])
		}
	}

	if !s.Remove(ids[3]) {
		t.Fatal("remove failed")
	}
	for _, id := range s.SpatialCandidates(spatial.MBR{MinLat: 43, MaxLat: 43, MinLng: -71, MaxLng: -71}, math.Inf(1)) {
		if id == ids[3] {
			t.Fatal("removed id still a spatial candidate")
		}
	}
	if missing, stale := s.SpatialParity(); len(missing) != 0 || stale != 0 {
		t.Fatalf("parity after remove: missing=%v stale=%d", missing, stale)
	}

	// IndexFor covers a dataset slice by position, including entries that
	// raced a Remove (pure recompute fallback).
	tr, _ := s.Get(ids[0])
	gone := walkAt(r, 9, 10, 10)
	ix := s.IndexFor([]ID{ids[0], "no-such-id"}, []*traj.Trajectory{tr, gone})
	if ix.Len() != 2 {
		t.Fatalf("IndexFor covered %d of 2", ix.Len())
	}
	if mb, _ := ix.MBROf(1); mb != spatial.Bound(gone.Points) {
		t.Fatalf("IndexFor fallback MBR = %+v", mb)
	}
}

// TestSpatialMaintenanceRace is the churn regression at the store layer:
// concurrent Add/Remove against SpatialCandidates, IndexFor and
// SpatialParity under -race. The parity probe must never see a live
// trajectory missing from the index or a dead entry lingering in it.
func TestSpatialMaintenanceRace(t *testing.T) {
	s := New(nil)
	r := rand.New(rand.NewSource(132))
	var seedIDs []ID
	for i := 0; i < 6; i++ {
		id, _, err := s.Add(walkAt(r, 12, 40+float64(i)*2, -74))
		if err != nil {
			t.Fatal(err)
		}
		seedIDs = append(seedIDs, id)
	}

	const churns = 150
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(133))
		for k := 0; k < churns; k++ {
			id, _, err := s.Add(walkAt(r, 10, -30+float64(k%20), 150))
			if err != nil {
				t.Error(err)
				return
			}
			s.Remove(id)
		}
	}()
	go func() {
		defer wg.Done()
		q := spatial.MBR{MinLat: 40, MaxLat: 52, MinLng: -74, MaxLng: -74}
		for k := 0; k < churns; k++ {
			for _, id := range s.SpatialCandidates(q, 1e6) {
				if _, ok := s.Get(id); !ok {
					// A raced Remove between Candidates and Get is fine; a
					// seed id vanishing is not (nothing removes them).
					for _, sid := range seedIDs {
						if id == sid {
							t.Errorf("live seed id %s missing from registry", id)
							return
						}
					}
				}
			}
			if missing, stale := s.SpatialParity(); len(missing) != 0 || stale != 0 {
				t.Errorf("churn parity: missing=%v stale=%d", missing, stale)
				return
			}
		}
	}()
	wg.Wait()
	if missing, stale := s.SpatialParity(); len(missing) != 0 || stale != 0 {
		t.Fatalf("final parity: missing=%v stale=%d", missing, stale)
	}
	if s.Len() != len(seedIDs) {
		t.Fatalf("registry holds %d, want the %d seeds", s.Len(), len(seedIDs))
	}
}
