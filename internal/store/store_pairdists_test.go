package store

import (
	"math"
	"testing"

	"trajmotif/internal/geo"
	"trajmotif/internal/join"
	"trajmotif/internal/traj"
)

// TestEndpointDistsMemo pins the pair-distance memo: first touch builds,
// repeats and the swapped orientation hit the same entry, values are the
// exact float64s direct evaluation produces, and eviction purges.
func TestEndpointDistsMemo(t *testing.T) {
	s := New(nil)
	ts := []*traj.Trajectory{fixture(t, 1, 40), fixture(t, 2, 30), fixture(t, 3, 20)}
	ids := make([]ID, len(ts))
	for k, tr := range ts {
		id, _, err := s.Add(tr)
		if err != nil {
			t.Fatal(err)
		}
		ids[k] = id
	}
	memo := s.EndpointDists(ts)
	if memo == nil {
		t.Fatal("EndpointDists returned nil with caching enabled")
	}
	check := func(i, j int, wantOK bool) {
		t.Helper()
		a, b := ts[i].Points, ts[j].Points
		d0, dn, ok := memo(i, j)
		if ok != wantOK {
			t.Fatalf("memo(%d,%d) ok=%v, want %v", i, j, ok, wantOK)
		}
		w0 := geo.Haversine(a[0], b[0])
		wn := geo.Haversine(a[len(a)-1], b[len(b)-1])
		if math.Float64bits(d0) != math.Float64bits(w0) || math.Float64bits(dn) != math.Float64bits(wn) {
			t.Fatalf("memo(%d,%d) = (%v, %v), want (%v, %v)", i, j, d0, dn, w0, wn)
		}
	}
	check(0, 1, true)
	check(0, 1, true)
	check(1, 0, true) // symmetric orientation shares the entry
	check(0, 2, true)
	st := s.Stats()
	if st.PairDistsBuilt != 2 || st.PairDistsReused != 2 {
		t.Fatalf("built=%d reused=%d, want 2/2", st.PairDistsBuilt, st.PairDistsReused)
	}

	// The memo plugs into the join without changing results or counters.
	want, wst, err := join.Join(ts, 5e5, &join.Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	got, gst, err := join.Join(ts, 5e5, &join.Options{Exact: true, EndpointDists: s.EndpointDists(ts)})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) || wst != gst {
		t.Fatalf("memoized join diverged: %+v %+v vs %+v %+v", want, wst, got, gst)
	}

	// Removing a trajectory purges its pair entries: the next touch
	// rebuilds instead of reusing.
	before := s.Stats().PairDistsBuilt
	s.Remove(ids[0])
	check(0, 1, true)
	if s.Stats().PairDistsBuilt != before+1 {
		t.Fatalf("pair entry survived eviction (built=%d, want %d)", s.Stats().PairDistsBuilt, before+1)
	}

	// Caching disabled: no memo.
	off := New(&Options{CacheBytes: -1})
	if off.EndpointDists(ts) != nil {
		t.Error("EndpointDists should be nil with caching disabled")
	}
}
