package store

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"trajmotif/internal/core"
	"trajmotif/internal/datagen"
	"trajmotif/internal/traj"
)

// evictFixture returns a small deterministic trajectory per seed.
func evictFixture(t *testing.T, seed int64) *traj.Trajectory {
	t.Helper()
	tr, err := datagen.Dataset(datagen.TruckName, datagen.Config{Seed: seed, N: 30})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// fakeClock is an injectable, manually-advanced clock for the TTL tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// warm routes one artifact request through the store so the cache holds
// the trajectory's self grid (eviction must purge it).
func warm(t *testing.T, s *Store, tr *traj.Trajectory) {
	t.Helper()
	g, _, _ := s.Artifacts(core.ArtifactRequest{A: tr.Points, Self: true, Dist: s.Dist(), Workers: 1})
	if g == nil {
		t.Fatal("warm: no grid")
	}
}

// TestMaxTrajectoriesLRU: adding beyond the cap evicts the
// least-recently-touched trajectory, and a Get refreshes recency so hot
// entries survive.
func TestMaxTrajectoriesLRU(t *testing.T) {
	s := New(&Options{MaxTrajectories: 2})
	a := evictFixture(t, 1)
	b := evictFixture(t, 2)
	c := evictFixture(t, 3)

	idA, _, _ := s.Add(a)
	idB, _, _ := s.Add(b)
	warm(t, s, a)

	// Touch A so B is the LRU victim when C arrives.
	if _, ok := s.Get(idA); !ok {
		t.Fatal("A vanished before the cap was hit")
	}
	idC, _, _ := s.Add(c)

	if _, ok := s.Get(idB); ok {
		t.Error("LRU victim B still registered")
	}
	if _, ok := s.Get(idA); !ok {
		t.Error("touched trajectory A was evicted")
	}
	if _, ok := s.Get(idC); !ok {
		t.Error("newest trajectory C was evicted")
	}
	st := s.Stats()
	if st.Trajectories != 2 || st.EvictedLRU != 1 || st.Removed != 0 || st.EvictedTTL != 0 {
		t.Errorf("stats after cap eviction: %+v", st)
	}
	if missing, stale := s.SpatialParity(); len(missing) != 0 || stale != 0 {
		t.Errorf("spatial index inconsistent after eviction: missing=%v stale=%d", missing, stale)
	}
}

// TestLRUEvictionPurgesArtifacts: a capacity eviction drops the victim's
// cached grids exactly like Remove — re-adding and querying rebuilds
// from scratch, it never serves a stale artifact silently.
func TestLRUEvictionPurgesArtifacts(t *testing.T) {
	s := New(&Options{MaxTrajectories: 1})
	a := evictFixture(t, 4)
	b := evictFixture(t, 5)

	s.Add(a)
	warm(t, s, a)
	if st := s.Stats(); st.Artifacts != 1 {
		t.Fatalf("warm cached %d artifacts, want 1", st.Artifacts)
	}
	s.Add(b) // evicts a and must purge its grid
	st := s.Stats()
	if st.Artifacts != 0 {
		t.Errorf("victim's artifacts survived eviction: %d resident", st.Artifacts)
	}
	if st.Evicted != 1 || st.EvictedLRU != 1 {
		t.Errorf("eviction counters: %+v", st)
	}
}

// TestTrajectoryTTL: entries idle past the TTL are swept on any registry
// access; a touch restarts the clock.
func TestTrajectoryTTL(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	s := New(&Options{TrajectoryTTL: time.Minute})
	s.clock = clk.Now

	a := evictFixture(t, 6)
	b := evictFixture(t, 7)
	idA, _, _ := s.Add(a)
	idB, _, _ := s.Add(b)
	warm(t, s, a)

	// Half a TTL later, touch A only.
	clk.Advance(30 * time.Second)
	if _, ok := s.Get(idA); !ok {
		t.Fatal("A expired early")
	}

	// 31s more: B (idle 61s) expires, A (idle 31s) lives.
	clk.Advance(31 * time.Second)
	if n := s.SweepExpired(); n != 1 {
		t.Fatalf("after sweep %d trajectories remain, want 1", n)
	}
	if _, ok := s.Get(idB); ok {
		t.Error("idle trajectory B survived its TTL")
	}
	if _, ok := s.Get(idA); !ok {
		t.Error("touched trajectory A expired")
	}
	st := s.Stats()
	if st.EvictedTTL != 1 || st.EvictedLRU != 0 || st.Removed != 0 {
		t.Errorf("TTL counters: %+v", st)
	}

	// Expiry is by-policy on every access path: IDs() excludes the dead.
	clk.Advance(2 * time.Minute)
	if ids := s.IDs(); len(ids) != 0 {
		t.Errorf("IDs() after full expiry: %v", ids)
	}
	if st := s.Stats(); st.Trajectories != 0 || st.EvictedTTL != 2 || st.Artifacts != 0 {
		t.Errorf("stats after full expiry: %+v", st)
	}
}

// TestAddTouchesExisting: re-adding identical content refreshes its
// recency instead of leaving the duplicate as the LRU victim.
func TestAddTouchesExisting(t *testing.T) {
	s := New(&Options{MaxTrajectories: 2})
	a := evictFixture(t, 8)
	b := evictFixture(t, 9)
	c := evictFixture(t, 10)

	idA, _, _ := s.Add(a)
	s.Add(b)
	if _, created, _ := s.Add(a); created {
		t.Fatal("re-add created a duplicate")
	}
	s.Add(c) // victim must be b, not the re-touched a
	if _, ok := s.Get(idA); !ok {
		t.Error("re-added trajectory was evicted as LRU")
	}
}

// TestEvictionChurnRace hammers Add/Get/Stats/SpatialParity concurrently
// against a tightly capped, short-TTL store: the registry stays bounded,
// the spatial index never disagrees with the registry, and the run is
// race-clean (CI executes this under -race).
func TestEvictionChurnRace(t *testing.T) {
	const cap = 4
	s := New(&Options{MaxTrajectories: cap, TrajectoryTTL: 50 * time.Millisecond})

	trs := make([]*traj.Trajectory, 12)
	ids := make([]ID, len(trs))
	for k := range trs {
		trs[k] = evictFixture(t, int64(100+k))
		ids[k] = hashTrajectory(trs[k])
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				switch (w + k) % 3 {
				case 0:
					// 5k + w is coprime with the iteration stride, so every
					// worker cycles through all 12 fixtures, not a cap-sized
					// subset.
					if _, _, err := s.Add(trs[(w+5*k)%len(trs)]); err != nil {
						t.Errorf("add: %v", err)
					}
				case 1:
					s.Get(ids[(w*5+k)%len(ids)]) // hit or miss both fine mid-churn
				default:
					if missing, stale := s.SpatialParity(); len(missing) != 0 || stale != 0 {
						t.Errorf("parity broke mid-churn: missing=%v stale=%d", missing, stale)
					}
				}
				if n := s.Len(); n > cap {
					t.Errorf("registry grew to %d past the %d cap", n, cap)
				}
			}
		}(w)
	}
	wg.Wait()

	if n := s.Len(); n > cap {
		t.Fatalf("final registry size %d exceeds cap %d", n, cap)
	}
	if missing, stale := s.SpatialParity(); len(missing) != 0 || stale != 0 {
		t.Fatalf("final parity: missing=%v stale=%d", missing, stale)
	}
	st := s.Stats()
	if st.EvictedLRU == 0 {
		t.Error("churn produced no LRU evictions — cap never exercised")
	}
	fmt.Printf("eviction churn: %d LRU + %d TTL evictions, %d resident\n",
		st.EvictedLRU, st.EvictedTTL, st.Trajectories)
}

// TestEvictedThenReadded: eviction then identical re-add yields the same
// content ID with artifacts rebuilt on demand — and the rebuilt grid is
// served, not a stale one.
func TestEvictedThenReadded(t *testing.T) {
	s := New(&Options{MaxTrajectories: 1})
	a := evictFixture(t, 11)
	b := evictFixture(t, 12)

	idA1, _, _ := s.Add(a)
	warm(t, s, a)
	builtBefore := s.Stats().Built

	s.Add(b) // evicts a
	idA2, created, _ := s.Add(a)
	if idA2 != idA1 || !created {
		t.Fatalf("re-add after eviction: id %s vs %s, created=%v", idA2, idA1, created)
	}
	warm(t, s, a)
	if built := s.Stats().Built; built <= builtBefore {
		t.Errorf("re-warm after eviction reused a purged artifact (built %d -> %d)", builtBefore, built)
	}
}
