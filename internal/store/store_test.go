package store

import (
	"reflect"
	"testing"

	"trajmotif/internal/core"
	"trajmotif/internal/datagen"
	"trajmotif/internal/geo"
	"trajmotif/internal/group"
	"trajmotif/internal/traj"
)

func fixture(t *testing.T, seed int64, n int) *traj.Trajectory {
	t.Helper()
	tr, err := datagen.Dataset(datagen.GeoLifeName, datagen.Config{Seed: seed, N: n})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAddGetDedup(t *testing.T) {
	s := New(nil)
	tr := fixture(t, 1, 50)
	id, created, err := s.Add(tr)
	if err != nil || !created {
		t.Fatalf("Add: created=%v err=%v", created, err)
	}
	id2, created2, err := s.Add(tr.Clip(tr.Len())) // deep copy, same content
	if err != nil || created2 {
		t.Fatalf("duplicate Add: created=%v err=%v", created2, err)
	}
	if id != id2 {
		t.Fatalf("content hash not stable: %s vs %s", id, id2)
	}
	got, ok := s.Get(id)
	if !ok || got.Len() != tr.Len() {
		t.Fatalf("Get(%s) = %v, %v", id, got, ok)
	}
	if s.Len() != 1 || len(s.IDs()) != 1 {
		t.Fatalf("Len=%d IDs=%v, want one entry", s.Len(), s.IDs())
	}
	if _, _, err := s.Add(nil); err == nil {
		t.Error("nil Add should error")
	}

	// Different timestamps, same geometry: distinct registry entries.
	timed := tr.Clip(tr.Len())
	timed.Times = nil
	other, _, err := s.Add(timed)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Times != nil && other == id {
		t.Error("untimed copy deduped against timed original")
	}
}

// TestRepeatSearchSkipsGrids is the core serve-mode guarantee: the second
// identical search through the store rebuilds nothing, and the reuse is
// visible both per-search (GridRebuildsAvoided) and store-wide.
func TestRepeatSearchSkipsGrids(t *testing.T) {
	s := New(nil)
	tr := fixture(t, 2, 200)
	if _, _, err := s.Add(tr); err != nil {
		t.Fatal(err)
	}
	opt := &core.Options{Workers: 1, Artifacts: s}

	r1, err := group.GTM(tr, 8, 16, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.GridRebuildsAvoided != 0 {
		t.Errorf("cold search claims reuse: %d", r1.Stats.GridRebuildsAvoided)
	}
	builtAfterFirst := s.Stats().Built

	r2, err := group.GTM(tr, 8, 16, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.GridRebuildsAvoided != 2 { // grid + bound table
		t.Errorf("warm search GridRebuildsAvoided = %d, want 2", r2.Stats.GridRebuildsAvoided)
	}
	st := s.Stats()
	if st.Built != builtAfterFirst {
		t.Errorf("warm search built %d new artifacts", st.Built-builtAfterFirst)
	}
	if st.Reused != 2 {
		t.Errorf("store Reused = %d, want 2", st.Reused)
	}
	if r1.Distance != r2.Distance || r1.A != r2.A || r1.B != r2.B {
		t.Errorf("cached result differs: %v vs %v", r1, r2)
	}
}

// TestCachedByteIdentical extends the PR 3 determinism suite to cached
// runs: for workers 1 and 4, a search fed from a cold store and from a
// warm store must be byte-identical — spans, distance bits, and every
// effort counter — to the plain uncached call. Only wall-clock durations
// and GridRebuildsAvoided (which counts the reuse itself) are scrubbed.
func TestCachedByteIdentical(t *testing.T) {
	tr := fixture(t, 3, 160)
	ca, cb, err := datagen.Pair(datagen.TruckName, datagen.Config{Seed: 7, N: 140})
	if err != nil {
		t.Fatal(err)
	}
	xi := 8

	scrubCore := func(st *core.Stats) {
		st.Precompute, st.Search = 0, 0
		st.GridRebuildsAvoided = 0
	}
	scrub := func(r any) any {
		switch v := r.(type) {
		case *core.Result:
			scrubCore(&v.Stats)
			return v
		case *group.Result:
			scrubCore(&v.Stats)
			scrubCore(&v.Group.Stats)
			return v
		case []core.Result:
			for k := range v {
				scrubCore(&v[k].Stats)
			}
			return v
		}
		t.Fatalf("unhandled result type %T", r)
		return nil
	}

	cases := []struct {
		name string
		run  func(opt *core.Options) (any, error)
	}{
		{"gtm/self", func(o *core.Options) (any, error) { return group.GTM(tr, xi, 16, o) }},
		{"btm/self", func(o *core.Options) (any, error) { return core.BTM(tr, xi, o) }},
		{"btm/cross", func(o *core.Options) (any, error) { return core.BTMCross(ca, cb, 6, o) }},
		{"btm/cross/swapped", func(o *core.Options) (any, error) { return core.BTMCross(cb, ca, 6, o) }},
		{"brutedp/self", func(o *core.Options) (any, error) { return core.BruteDP(tr.Clip(100), 6, o) }},
		{"topk3/self", func(o *core.Options) (any, error) { return core.TopK(tr, xi, 3, o) }},
		{"gtm/eps0.4", func(o *core.Options) (any, error) {
			o2 := *o
			o2.Epsilon = 0.4
			return group.GTM(tr, xi, 16, &o2)
		}},
	}

	for _, workers := range []int{1, 4} {
		st := New(nil) // one store across all cases: later cases hit warm entries
		for _, tc := range cases {
			plain, err := tc.run(&core.Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s/w%d plain: %v", tc.name, workers, err)
			}
			cold, err := tc.run(&core.Options{Workers: workers, Artifacts: New(nil)})
			if err != nil {
				t.Fatalf("%s/w%d cold: %v", tc.name, workers, err)
			}
			warm1, err := tc.run(&core.Options{Workers: workers, Artifacts: st})
			if err != nil {
				t.Fatalf("%s/w%d warm1: %v", tc.name, workers, err)
			}
			warm2, err := tc.run(&core.Options{Workers: workers, Artifacts: st})
			if err != nil {
				t.Fatalf("%s/w%d warm2: %v", tc.name, workers, err)
			}
			want := scrub(plain)
			for label, got := range map[string]any{"cold": scrub(cold), "warm1": scrub(warm1), "warm2": scrub(warm2)} {
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s/w%d %s differs from uncached:\nwant %+v\ngot  %+v", tc.name, workers, label, want, got)
				}
			}
		}
		if s := st.Stats(); s.Reused == 0 {
			t.Errorf("w%d: warm store never reused an artifact: %+v", workers, s)
		}
	}
}

// TestEviction: a budget big enough for exactly one self grid keeps the
// resident set within budget and evicts the older artifact, while every
// search still returns the uncached answer.
func TestEviction(t *testing.T) {
	a := fixture(t, 4, 120)
	b := fixture(t, 5, 120)
	// One 120x120 grid is 115200 bytes; bound tables a few KB. Budget for
	// roughly one grid + table, not two.
	s := New(&Options{CacheBytes: 130_000})
	opt := &core.Options{Workers: 1, Artifacts: s}

	if _, err := core.BTM(a, 8, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := core.BTM(b, 8, opt); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.CacheBytes > st.CacheBudget {
		t.Errorf("resident %d exceeds budget %d", st.CacheBytes, st.CacheBudget)
	}
	if st.Evicted == 0 {
		t.Errorf("no eviction under a one-grid budget: %+v", st)
	}

	// The survivor is b's artifacts: a third search on b reuses, on a
	// rebuilds.
	r, err := core.BTM(b, 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.GridRebuildsAvoided == 0 {
		t.Error("most recent trajectory was evicted")
	}
}

// TestCacheDisabled: a negative budget turns the store into a pure
// pass-through that still returns correct artifacts.
func TestCacheDisabled(t *testing.T) {
	tr := fixture(t, 6, 120)
	s := New(&Options{CacheBytes: -1})
	opt := &core.Options{Workers: 1, Artifacts: s}
	if _, err := core.BTM(tr, 8, opt); err != nil {
		t.Fatal(err)
	}
	r, err := core.BTM(tr, 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.GridRebuildsAvoided != 0 {
		t.Error("disabled cache claims reuse")
	}
	if st := s.Stats(); st.Artifacts != 0 || st.CacheBytes != 0 {
		t.Errorf("disabled cache retained artifacts: %+v", st)
	}
}

// TestDistMismatchBypass: a search under a different ground distance than
// the store's must neither read nor poison the cache, and must still be
// correct.
func TestDistMismatchBypass(t *testing.T) {
	tr := fixture(t, 7, 120)
	s := New(nil) // haversine
	// Warm the haversine entries.
	if _, err := core.BTM(tr, 8, &core.Options{Workers: 1, Artifacts: s}); err != nil {
		t.Fatal(err)
	}
	artifacts := s.Stats().Artifacts

	opt := &core.Options{Workers: 1, Artifacts: s, Dist: geo.Euclidean}
	got, err := core.BTM(tr, 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.BTM(tr, 8, &core.Options{Workers: 1, Dist: geo.Euclidean})
	if err != nil {
		t.Fatal(err)
	}
	if got.Distance != want.Distance || got.A != want.A || got.B != want.B {
		t.Errorf("mismatched-dist search wrong: %v vs %v", got, want)
	}
	if got.Stats.GridRebuildsAvoided != 0 {
		t.Error("mismatched-dist search claims reuse")
	}
	if st := s.Stats(); st.Artifacts != artifacts {
		t.Errorf("mismatched-dist search polluted the cache: %+v", st)
	}
}

// TestClosureDistBypass: closures created from the same function literal
// share a code pointer, so identity alone cannot tell them apart; the
// probe stage of distMatches must catch a different capture and bypass
// the cache instead of serving artifacts built under the wrong distance.
func TestClosureDistBypass(t *testing.T) {
	scaled := func(f float64) geo.DistanceFunc {
		return func(a, b geo.Point) float64 { return f * geo.Euclidean(a, b) }
	}
	tr := fixture(t, 10, 120)
	s := New(&Options{Dist: scaled(1)})
	if _, err := core.BTM(tr, 8, &core.Options{Workers: 1, Artifacts: s, Dist: scaled(1)}); err != nil {
		t.Fatal(err)
	}

	got, err := core.BTM(tr, 8, &core.Options{Workers: 1, Artifacts: s, Dist: scaled(2)})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.BTM(tr, 8, &core.Options{Workers: 1, Dist: scaled(2)})
	if err != nil {
		t.Fatal(err)
	}
	if got.Distance != want.Distance {
		t.Errorf("same-code-pointer closure served cached artifacts: %v, want %v", got.Distance, want.Distance)
	}
	if got.Stats.GridRebuildsAvoided != 0 {
		t.Error("mismatched closure claims reuse")
	}
}

// TestTopKReuseChargedOnce: an ArtifactSource cache hit happens once per
// TopK call and must be credited to the first round only, not replayed
// into every round's counter.
func TestTopKReuseChargedOnce(t *testing.T) {
	tr := fixture(t, 11, 200)
	s := New(nil)
	opt := &core.Options{Workers: 1, Artifacts: s}
	if _, err := core.BTM(tr, 8, opt); err != nil { // warm grid + bounds
		t.Fatal(err)
	}
	results, err := core.TopK(tr, 8, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Stats.GridRebuildsAvoided != 2 {
		t.Errorf("round 1 GridRebuildsAvoided = %d, want 2 (grid + bounds)", results[0].Stats.GridRebuildsAvoided)
	}
	for r := 1; r < len(results); r++ {
		if got := results[r].Stats.GridRebuildsAvoided; got != int64(r) {
			t.Errorf("round %d GridRebuildsAvoided = %d, want %d (round reuse only)", r+1, got, r)
		}
	}
}

// TestTransposeReuse: requesting the swapped pair serves the grid by
// transposition; the result must be bit-identical to a fresh build.
func TestTransposeReuse(t *testing.T) {
	ca, cb, err := datagen.Pair(datagen.TruckName, datagen.Config{Seed: 9, N: 100})
	if err != nil {
		t.Fatal(err)
	}
	s := New(nil)
	opt := &core.Options{Workers: 1, Artifacts: s}
	if _, err := core.BTMCross(ca, cb, 6, opt); err != nil {
		t.Fatal(err)
	}
	got, err := core.BTMCross(cb, ca, 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.BTMCross(cb, ca, 6, &core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Distance != want.Distance || got.A != want.A || got.B != want.B ||
		got.Stats.DPCells != want.Stats.DPCells {
		t.Errorf("transpose-served search differs: %+v vs %+v", got, want)
	}
}

// TestRemove: removal deregisters the trajectory, purges its cached
// artifacts (freeing cache bytes), and leaves re-adding working.
func TestRemove(t *testing.T) {
	s := New(nil)
	a, b := fixture(t, 20, 120), fixture(t, 21, 120)
	ida, _, err := s.Add(a)
	if err != nil {
		t.Fatal(err)
	}
	idb, _, err := s.Add(b)
	if err != nil {
		t.Fatal(err)
	}

	// Build artifacts for both (self grid + bound table each) plus the
	// cross grid, so the purge has self and cross entries to hit.
	opt := &core.Options{Workers: 1, Artifacts: s}
	if _, err := group.GTM(a, 8, 16, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := group.GTM(b, 8, 16, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := group.GTMCross(a, b, 8, 16, opt); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if before.Artifacts == 0 || before.CacheBytes == 0 {
		t.Fatalf("setup built no artifacts: %+v", before)
	}

	if s.Remove("nope") {
		t.Error("Remove of an unknown id reported true")
	}
	if !s.Remove(ida) {
		t.Fatal("Remove of a registered id reported false")
	}
	if s.Remove(ida) {
		t.Error("second Remove of the same id reported true")
	}

	st := s.Stats()
	if st.Trajectories != 1 || st.Removed != 1 {
		t.Errorf("after Remove: Trajectories=%d Removed=%d, want 1/1", st.Trajectories, st.Removed)
	}
	if got := s.IDs(); len(got) != 1 || got[0] != idb {
		t.Errorf("IDs() = %v, want [%s]", got, idb)
	}
	if _, ok := s.Get(ida); ok {
		t.Error("Get still resolves a removed id")
	}
	// Every artifact touching a's geometry is gone: a's self grid and
	// bound table plus the (a, b) cross artifacts — b's own survive.
	if purged := before.Artifacts - st.Artifacts; purged < 3 {
		t.Errorf("purged %d artifacts, want at least 3 (self grid, self bounds, cross grid)", purged)
	}
	if st.CacheBytes >= before.CacheBytes {
		t.Errorf("CacheBytes did not shrink: %d -> %d", before.CacheBytes, st.CacheBytes)
	}
	if st.Evicted == before.Evicted {
		t.Error("purged artifacts not accounted in Evicted")
	}

	// b is untouched: a warm search over b still reuses.
	reusedBefore := st.Reused
	if _, err := group.GTM(b, 8, 16, opt); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Reused <= reusedBefore {
		t.Error("surviving trajectory lost its cached artifacts")
	}

	// Re-adding identical content restores the same id, artifacts rebuild
	// on demand.
	back, created, err := s.Add(a)
	if err != nil || !created || back != ida {
		t.Fatalf("re-Add: id=%s created=%v err=%v, want %s/true", back, created, err, ida)
	}
	if _, err := group.GTM(a, 8, 16, opt); err != nil {
		t.Fatal(err)
	}
}
