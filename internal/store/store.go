// Package store implements the serve-mode trajectory store: a registry of
// trajectories keyed by content hash that memoizes the search artifacts
// the paper's algorithms precompute on every invocation — per-trajectory
// self-distance grids and relaxed bound tables, and per-pair cross grids
// — under one LRU cache with a byte-size budget.
//
// The store implements core.ArtifactSource, so any search handed a store
// through core.Options.Artifacts transparently skips grid construction
// when the artifacts are resident (ROADMAP: "distance-matrix
// caching/reuse" and the serve-mode prerequisite for the "millions of
// users" north star). Cached artifacts are bit-identical to a fresh
// computation — dmatrix's constructors are bit-identical for every
// worker count, and bound tables are pure functions of the grid — so
// cached and uncached searches return byte-identical results, spans,
// distance bits and effort counters alike (GridRebuildsAvoided, which
// counts the reuse itself, is the one deliberate exception).
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"reflect"
	"sync"
	"time"

	"trajmotif/internal/bounds"
	"trajmotif/internal/core"
	"trajmotif/internal/dmatrix"
	"trajmotif/internal/geo"
	"trajmotif/internal/spatial"
	"trajmotif/internal/traj"
)

// ID identifies a stored trajectory by content: the hex SHA-256 of its
// points and timestamps. Adding the same trajectory twice yields the
// same ID (and stores it once).
type ID string

// DefaultCacheBytes is the artifact-cache budget when Options.CacheBytes
// is zero: 256 MiB, roughly 160 self grids at n = 2000 points.
const DefaultCacheBytes = 256 << 20

// Options configures a store.
type Options struct {
	// Dist is the ground distance all cached artifacts are computed
	// under; nil selects geo.Haversine. A search routed through the
	// store with a different Options.Dist bypasses the cache (detected
	// by function identity plus probe evaluations; see distMatches)
	// rather than returning poisoned artifacts.
	Dist geo.DistanceFunc
	// CacheBytes budgets the artifact cache: least-recently-used
	// artifacts are evicted once the resident set exceeds it. Zero
	// selects DefaultCacheBytes; negative disables caching entirely
	// (every request computes, nothing is retained).
	CacheBytes int64
	// MaxTrajectories caps the registry itself: adding a trajectory
	// beyond the cap evicts the least-recently-used one (Add and Get
	// both count as use — "touch on query"), purging its cached
	// artifacts exactly like Remove. Zero or negative means unbounded.
	MaxTrajectories int
	// TrajectoryTTL expires registry entries that have not been touched
	// (added or queried) for the duration. Expired entries are swept on
	// every registry access — the check is O(1) when nothing expired —
	// and purge their artifacts like Remove. Zero or negative disables.
	TrajectoryTTL time.Duration
	// ArtifactDir enables the disk artifact tier: every artifact the
	// store builds is also written (atomically, checksummed) to a
	// content-addressed file under this directory, cache misses promote
	// from disk before recomputing, and trajectory evictions purge disk
	// copies alongside RAM ones. Empty disables the tier. A directory
	// that cannot be created or scanned disables it too, counted in
	// Stats.DiskErrors — callers that must fail fast should validate the
	// path themselves (cmd/motifserve does). See disk.go for the format
	// and the crash-safety protocol.
	ArtifactDir string
}

// EvictCause discriminates why a trajectory left the registry, for the
// Stats eviction counters and the serve tier's metrics by cause.
type EvictCause uint8

const (
	// EvictManual is an explicit Remove (DELETE /trajectories/{id}).
	EvictManual EvictCause = iota
	// EvictLRU is a capacity eviction under Options.MaxTrajectories.
	EvictLRU
	// EvictTTL is an idle-expiry eviction under Options.TrajectoryTTL.
	EvictTTL
)

// Stats is a snapshot of the store's registry and cache state.
type Stats struct {
	// Trajectories currently registered.
	Trajectories int
	// Artifacts resident in the cache and their total byte footprint.
	Artifacts  int
	CacheBytes int64
	// CacheBudget is the configured byte budget (<= 0: caching off).
	CacheBudget int64
	// Built counts artifact constructions performed (cache misses plus
	// uncacheable requests); Reused counts constructions skipped because
	// the artifact was resident — the cross-request extension of
	// core.Stats.GridRebuildsAvoided. Evicted counts artifacts dropped
	// by the LRU budget or purged by Remove.
	Built, Reused, Evicted int64
	// Removed counts trajectories deleted from the registry via Remove.
	Removed int64
	// EvictedLRU and EvictedTTL count trajectories auto-evicted from the
	// registry by the MaxTrajectories cap and the TrajectoryTTL expiry
	// respectively (Removed covers the manual cause).
	EvictedLRU, EvictedTTL int64
	// PairDistsBuilt and PairDistsReused count endpoint-distance memo
	// misses and hits (EndpointDists). A hit saves two ground-distance
	// evaluations in the join's filter cascade or cluster membership.
	PairDistsBuilt, PairDistsReused int64
	// MaxTrajectories and TrajectoryTTL echo the configured policy
	// (zero: unbounded / no expiry).
	MaxTrajectories int
	TrajectoryTTL   time.Duration
	// DiskArtifacts and DiskBytes describe the disk artifact tier
	// (Options.ArtifactDir): files resident and their total size.
	// Zero when the tier is disabled.
	DiskArtifacts int
	DiskBytes     int64
	// DiskWrites counts artifacts spilled to disk, DiskReads artifacts
	// promoted from disk (each promotion also counts as a Reused —
	// that is what makes a warm restart's counters match a store that
	// never restarted), and DiskErrors failed writes plus corrupt or
	// torn files detected and removed on read (the self-heal path).
	DiskWrites, DiskReads, DiskErrors int64
}

// GridRebuildsAvoided returns the cumulative constructions skipped by
// reuse, mirroring the per-search counter's name.
func (s Stats) GridRebuildsAvoided() int64 { return s.Reused }

// artifactKind discriminates the cache key space.
type artifactKind uint8

const (
	kindSelfGrid artifactKind = iota
	kindCrossGrid
	kindSelfBounds
	kindCrossBounds
	// kindPairDists memoizes the two endpoint ground distances of a
	// trajectory pair (first-to-first, last-to-last) — the values the
	// join's filter cascade recomputes for every candidate pair. 16
	// bytes against the same budget as the grids.
	kindPairDists
	// kindPointDists memoizes one ground distance between two points of
	// a single trajectory — the endpoint values cluster membership
	// tests recompute for every candidate window. The point indexes are
	// packed into the key's xi field (i<<32 | j, canonical i <= j).
	// 8 bytes against the same budget as the grids.
	kindPointDists
)

// artifactKey identifies one memoized artifact. b is empty for self
// artifacts; xi is zero for grids (bound tables depend on it); f32
// separates float32 grids and their bound tables from float64 ones —
// serving one storage mode to a request for the other would silently
// change results between cached and uncached runs.
type artifactKey struct {
	kind artifactKind
	a, b ID
	xi   int
	f32  bool
}

// entry is one cache resident.
type entry struct {
	key   artifactKey
	val   any
	bytes int64
	elem  *list.Element
}

// dataKey memoizes content hashes by slice identity: same backing array,
// start and length imply same content for the immutable slices the store
// sees. It lets repeated searches over the same trajectory skip
// re-hashing without risking collisions.
type dataKey struct {
	ptr *geo.Point
	n   int
}

// Store is a content-addressed trajectory registry with a memoizing
// artifact cache. It is safe for concurrent use; artifact construction
// happens outside the lock, so concurrent identical misses may compute
// the same artifact twice (one result is retained).
type Store struct {
	df      geo.DistanceFunc
	dfID    uintptr
	budget  int64
	maxTraj int
	ttl     time.Duration
	// clock is time.Now outside tests; the TTL suite injects a fake.
	clock func() time.Time

	mu       sync.Mutex
	trajs    map[ID]*traj.Trajectory
	order    []ID // insertion order, for deterministic listings
	hashMemo map[dataKey]ID

	// Registry recency list (front = most recently touched), driving
	// MaxTrajectories capacity evictions and TrajectoryTTL expiry.
	// Every registered id has exactly one element here.
	regLRU  *list.List
	regElem map[ID]*list.Element

	// Spatial side-index, maintained under the same mutex as the
	// registry so every snapshot the handlers take is consistent:
	// trajectories are immutable, so a cached MBR is always equal to
	// spatial.Bound of its points. The index keys by small integer
	// handles (spatial.Index wants ints; content IDs are 64-hex strings)
	// assigned in insertion order and never reused.
	mbrs       map[ID]spatial.MBR
	sindex     *spatial.Index
	handles    map[ID]int
	handleID   map[int]ID
	nextHandle int

	cache map[artifactKey]*entry
	lru   *list.List // front = most recently used
	bytes int64

	// disk is the artifact tier behind the LRU (nil: disabled). Its
	// index is guarded by mu; file I/O runs outside the lock except for
	// purges (see disk.go).
	disk *diskTier

	built, reused, evicted            int64
	removed                           int64
	evictedLRU, evictedTTL            int64
	pairsBuilt, pairsReused           int64
	diskWrites, diskReads, diskErrors int64
}

// regEntry is one registry-recency element: the id plus its last touch.
type regEntry struct {
	id   ID
	last time.Time
}

// New creates an empty store. opt may be nil for defaults (haversine,
// DefaultCacheBytes).
func New(opt *Options) *Store {
	df := geo.Haversine
	var budget int64 = DefaultCacheBytes
	maxTraj := 0
	var ttl time.Duration
	if opt != nil {
		if opt.Dist != nil {
			df = opt.Dist
		}
		if opt.CacheBytes > 0 {
			budget = opt.CacheBytes
		} else if opt.CacheBytes < 0 {
			budget = 0
		}
		if opt.MaxTrajectories > 0 {
			maxTraj = opt.MaxTrajectories
		}
		if opt.TrajectoryTTL > 0 {
			ttl = opt.TrajectoryTTL
		}
	}
	s := &Store{
		df:       df,
		dfID:     reflect.ValueOf(df).Pointer(),
		budget:   budget,
		maxTraj:  maxTraj,
		ttl:      ttl,
		clock:    time.Now,
		trajs:    make(map[ID]*traj.Trajectory),
		hashMemo: make(map[dataKey]ID),
		regLRU:   list.New(),
		regElem:  make(map[ID]*list.Element),
		mbrs:     make(map[ID]spatial.MBR),
		sindex:   spatial.NewIndex(&spatial.IndexOptions{Dist: df}),
		handles:  make(map[ID]int),
		handleID: make(map[int]ID),
		cache:    make(map[artifactKey]*entry),
		lru:      list.New(),
	}
	// The disk tier is pointless without a cache to promote into, so a
	// negative CacheBytes disables both.
	if opt != nil && opt.ArtifactDir != "" && budget > 0 {
		disk, healed, failed, err := newDiskTier(opt.ArtifactDir)
		if err != nil {
			s.diskErrors++
		} else {
			s.disk = disk
			s.diskErrors += healed + failed
		}
	}
	return s
}

// hashPoints returns the content ID of a point sequence. Artifact keys
// use it directly (grids depend only on points, never on timestamps).
func hashPoints(pts []geo.Point) ID {
	h := sha256.New()
	var buf [16]byte
	for _, p := range pts {
		binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(p.Lat))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(p.Lng))
		h.Write(buf[:])
	}
	return ID(hex.EncodeToString(h.Sum(nil)))
}

// hashTrajectory extends hashPoints with the timestamps, so trajectories
// with equal geometry but different times get distinct registry IDs.
func hashTrajectory(t *traj.Trajectory) ID {
	if t.Times == nil {
		return hashPoints(t.Points)
	}
	h := sha256.New()
	var buf [16]byte
	for k, p := range t.Points {
		binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(p.Lat))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(p.Lng))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:8], uint64(t.Times[k].UnixNano()))
		h.Write(buf[:8])
	}
	return ID(hex.EncodeToString(h.Sum(nil)))
}

// IDFor returns the registry content ID a trajectory would be stored
// under — the hash Add derives — without touching the store. The shard
// coordinator routes by it before deciding which shard's Add to call.
func IDFor(t *traj.Trajectory) ID { return hashTrajectory(t) }

// PointsID returns the geometry content ID of a point sequence — the
// hash artifact keys are derived from. Artifacts for a trajectory live
// on the shard its *points* hash routes to (grids ignore timestamps),
// which can differ from the shard its registry ID routes to.
func PointsID(pts []geo.Point) ID { return hashPoints(pts) }

// Add registers a trajectory and returns its content ID. created is
// false when an identical trajectory was already present (the existing
// copy is kept, so cached artifacts remain valid).
func (s *Store) Add(t *traj.Trajectory) (id ID, created bool, err error) {
	if t == nil || t.Len() == 0 {
		return "", false, fmt.Errorf("store: nil or empty trajectory")
	}
	id = hashTrajectory(t)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	if _, ok := s.trajs[id]; ok {
		s.touchLocked(id)
		return id, false, nil
	}
	s.trajs[id] = t
	s.order = append(s.order, id)
	s.memoLocked(t.Points)
	mbr := spatial.Bound(t.Points)
	s.mbrs[id] = mbr
	h := s.nextHandle
	s.nextHandle++
	s.handles[id] = h
	s.handleID[h] = id
	s.sindex.Insert(h, mbr)
	s.regElem[id] = s.regLRU.PushFront(&regEntry{id: id, last: s.clock()})
	// Capacity eviction: drop least-recently-touched entries until the
	// registry fits. The entry just added sits at the front, so with any
	// positive cap it is never its own victim.
	for s.maxTraj > 0 && len(s.trajs) > s.maxTraj {
		tail := s.regLRU.Back()
		if tail == nil || tail == s.regElem[id] {
			break
		}
		s.evictLocked(tail.Value.(*regEntry).id, EvictLRU)
	}
	return id, true, nil
}

// touchLocked refreshes an id's registry recency — Add and Get (the
// query paths resolve through Get) both count as use, so hot
// trajectories survive both the LRU cap and the TTL.
func (s *Store) touchLocked(id ID) {
	if e, ok := s.regElem[id]; ok {
		e.Value.(*regEntry).last = s.clock()
		s.regLRU.MoveToFront(e)
	}
}

// sweepLocked expires registry entries idle past TrajectoryTTL. Entries
// are checked from the recency tail, so the scan stops at the first
// live one — O(1) when nothing expired.
func (s *Store) sweepLocked() {
	if s.ttl <= 0 {
		return
	}
	deadline := s.clock().Add(-s.ttl)
	for {
		tail := s.regLRU.Back()
		if tail == nil {
			return
		}
		re := tail.Value.(*regEntry)
		if re.last.After(deadline) {
			return
		}
		s.evictLocked(re.id, EvictTTL)
	}
}

// SweepExpired applies the TTL policy immediately (it otherwise runs on
// every registry access) and reports how many trajectories currently
// remain — a hook for periodic janitors and tests.
func (s *Store) SweepExpired() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	return len(s.trajs)
}

// memoLocked records the points→content-ID association for a slice the
// store owns (a registered trajectory). Only Add calls it: memoizing
// transient caller slices would pin their backing arrays outside the
// cache budget for the store's lifetime.
func (s *Store) memoLocked(pts []geo.Point) ID {
	k := dataKey{ptr: &pts[0], n: len(pts)}
	if id, ok := s.hashMemo[k]; ok {
		return id
	}
	id := hashPoints(pts)
	s.hashMemo[k] = id
	return id
}

// idForLocked resolves a point slice to its content ID: a memo hit for
// registered trajectories, a fresh hash (O(n), trivial next to the
// O(n²) grids it keys) for transient slices — which are deliberately not
// memoized, so the store never retains references to caller data.
func (s *Store) idForLocked(pts []geo.Point) ID {
	if id, ok := s.hashMemo[dataKey{ptr: &pts[0], n: len(pts)}]; ok {
		return id
	}
	return hashPoints(pts)
}

// Remove deletes a registered trajectory and purges every cached
// artifact derived from its geometry, returning whether the id was
// present. This is the eviction primitive long-running deployments need:
// the registry otherwise grows forever, and /knn and /join default their
// dataset to "everything stored", so a removed trajectory stops
// appearing in those defaults immediately. Searches already holding the
// trajectory are unaffected (trajectory data is immutable), and
// re-adding identical content later yields the same ID with artifacts
// rebuilt on demand. If another registered trajectory shares the exact
// geometry (same points, different timestamps), its artifacts are purged
// too — a cache miss on its next query, never a wrong answer.
func (s *Store) Remove(id ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictLocked(id, EvictManual)
}

// evictLocked deletes a registered trajectory and purges every cached
// artifact derived from its geometry — the one purge path behind
// Remove, the MaxTrajectories cap, and the TrajectoryTTL sweep, so
// automatic eviction can never leave the spatial index or the artifact
// cache staler than a manual DELETE would.
func (s *Store) evictLocked(id ID, cause EvictCause) bool {
	t, ok := s.trajs[id]
	if !ok {
		return false
	}
	delete(s.trajs, id)
	for k, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:k], s.order[k+1:]...)
			break
		}
	}
	if e, ok := s.regElem[id]; ok {
		s.regLRU.Remove(e)
		delete(s.regElem, id)
	}
	if h, ok := s.handles[id]; ok {
		s.sindex.Remove(h)
		delete(s.handles, id)
		delete(s.handleID, h)
	}
	delete(s.mbrs, id)
	pid := s.idForLocked(t.Points)
	delete(s.hashMemo, dataKey{ptr: &t.Points[0], n: len(t.Points)})
	s.purgeArtifactsLocked(pid)
	switch cause {
	case EvictLRU:
		s.evictedLRU++
	case EvictTTL:
		s.evictedTTL++
	default:
		s.removed++
	}
	return true
}

// purgeArtifactsLocked drops every cached artifact — RAM and disk —
// derived from the geometry pid, returning how many were purged.
func (s *Store) purgeArtifactsLocked(pid ID) int {
	n := 0
	for key, e := range s.cache {
		if key.a == pid || key.b == pid {
			s.lru.Remove(e.elem)
			delete(s.cache, key)
			s.bytes -= e.bytes
			s.evicted++
			n++
		}
	}
	return n + s.diskPurgeLocked(pid)
}

// PurgeArtifacts drops every cached artifact derived from the geometry
// pid (a hashPoints/PointsID content hash) without touching the
// registry. The sharded coordinator needs it: a trajectory registers on
// the shard its registry ID hashes to, but its artifacts live on the
// shard its *points* hash routes to, so a Remove must broadcast the
// artifact purge to the other shards. Returns how many artifacts were
// purged across both tiers.
func (s *Store) PurgeArtifacts(pid ID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.purgeArtifactsLocked(pid)
}

// Get returns a registered trajectory, refreshing its recency ("touch
// on query"): resolving an id through Get protects it from the LRU cap
// and restarts its TTL. An entry already expired is gone before the
// lookup, so a TTL'd store never serves stale-by-policy data.
func (s *Store) Get(id ID) (*traj.Trajectory, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	t, ok := s.trajs[id]
	if ok {
		s.touchLocked(id)
	}
	return t, ok
}

// Len returns the number of registered trajectories (after the TTL
// sweep, like every registry accessor).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	return len(s.trajs)
}

// IDs lists the registered trajectories in insertion order. Expired
// entries are swept first, so the /knn and /join "everything stored"
// defaults never include a trajectory the TTL has retired.
func (s *Store) IDs() []ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	return append([]ID(nil), s.order...)
}

// Dist returns the ground distance the store's artifacts are computed
// under.
func (s *Store) Dist() geo.DistanceFunc { return s.df }

// MBRFor returns the bounding box of a trajectory, from the registry's
// cache when id is registered, recomputed otherwise (trajectories are
// immutable, so both are the identical spatial.Bound fold — a raced
// Remove can only cost the recompute, never yield a different box).
func (s *Store) MBRFor(id ID, t *traj.Trajectory) spatial.MBR {
	s.mu.Lock()
	mbr, ok := s.mbrs[id]
	s.mu.Unlock()
	if ok {
		return mbr
	}
	return spatial.Bound(t.Points)
}

// IndexFor builds a position-keyed spatial index over a resolved dataset
// — the shape knn.Options.Index and join.Options.Index consume — reusing
// the registry's cached MBRs under one lock acquisition. ids and ts are
// parallel slices; entries that raced a Remove fall back to a pure
// recompute, so the returned index always describes exactly the
// trajectories the caller is about to search.
func (s *Store) IndexFor(ids []ID, ts []*traj.Trajectory) *spatial.Index {
	ix := spatial.NewIndex(&spatial.IndexOptions{Dist: s.df})
	s.mu.Lock()
	for k, t := range ts {
		mbr, ok := s.mbrs[ids[k]]
		if !ok {
			mbr = spatial.Bound(t.Points)
		}
		ix.Insert(k, mbr)
	}
	s.mu.Unlock()
	return ix
}

// SpatialCandidates lists the registered trajectories whose MBRs lie
// within radius of q under the store's ground distance (a sound superset:
// MinDist lower-bounds every point-to-point distance), in insertion
// order. Radius semantics follow spatial.Index.Candidates.
func (s *Store) SpatialCandidates(q spatial.MBR, radius float64) []ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	hs := s.sindex.Candidates(q, radius)
	// Handles are assigned in insertion order and never reused, so the
	// sorted handles Candidates returns are already in insertion order.
	out := make([]ID, 0, len(hs))
	for _, h := range hs {
		if id, ok := s.handleID[h]; ok {
			out = append(out, id)
		}
	}
	return out
}

// SpatialParity cross-checks the maintained index against the registry
// under one lock acquisition: missing lists live trajectories the index
// lacks (or holds under a wrong box), stale counts index entries whose
// trajectory is gone. Both are always empty/zero — the churn regression
// test calls this while Add/Remove race the query handlers.
func (s *Store) SpatialParity() (missing []ID, stale int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.order {
		h, ok := s.handles[id]
		if !ok {
			missing = append(missing, id)
			continue
		}
		mbr, ok := s.sindex.MBROf(h)
		if !ok || mbr != spatial.Bound(s.trajs[id].Points) {
			missing = append(missing, id)
		}
	}
	for _, h := range s.sindex.IDs() {
		if _, ok := s.handleID[h]; !ok {
			stale++
		}
	}
	return missing, stale
}

// Stats snapshots the registry and cache state (TTL-expired entries are
// swept first, so Trajectories reflects the policy).
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	st := Stats{
		Trajectories:    len(s.trajs),
		Artifacts:       len(s.cache),
		CacheBytes:      s.bytes,
		CacheBudget:     s.budget,
		Built:           s.built,
		Reused:          s.reused,
		Evicted:         s.evicted,
		Removed:         s.removed,
		EvictedLRU:      s.evictedLRU,
		EvictedTTL:      s.evictedTTL,
		PairDistsBuilt:  s.pairsBuilt,
		PairDistsReused: s.pairsReused,
		MaxTrajectories: s.maxTraj,
		TrajectoryTTL:   s.ttl,
		DiskWrites:      s.diskWrites,
		DiskReads:       s.diskReads,
		DiskErrors:      s.diskErrors,
	}
	if s.disk != nil {
		st.DiskArtifacts = len(s.disk.index)
		st.DiskBytes = s.disk.bytes
	}
	return st
}

// Artifacts implements core.ArtifactSource: it serves the ground-distance
// grid (and, when requested, the relaxed bound tables) for the given
// point sequences from the cache, computing and inserting on a miss. A
// request under a different ground distance than the store's bypasses
// the cache entirely (correct, just uncached). A swapped cross pair is
// served by transposing the cached grid — cheaper than re-evaluating
// every ground distance — and the transpose is cached under its own key.
func (s *Store) Artifacts(req core.ArtifactRequest) (*dmatrix.Matrix, *bounds.Relaxed, int) {
	if !s.distMatches(req) || s.budget <= 0 {
		return s.compute(req)
	}

	s.mu.Lock()
	aid := s.idForLocked(req.A)
	var bid ID
	if !req.Self {
		bid = s.idForLocked(req.B)
	}
	gk, bk := keysFor(req, aid, bid)

	reused := 0
	var g *dmatrix.Matrix
	var rb *bounds.Relaxed
	if e, ok := s.cache[gk]; ok {
		g = e.val.(*dmatrix.Matrix)
		s.lru.MoveToFront(e.elem)
		s.reused++
		reused++
	}
	if req.WithBounds {
		if e, ok := s.cache[bk]; ok {
			rb = e.val.(*bounds.Relaxed)
			s.lru.MoveToFront(e.elem)
			s.reused++
			reused++
		}
	}
	// Swapped-pair fallback: the (B, A) grid transposes into the (A, B)
	// grid without touching the ground distance (a float32 grid
	// transposes to a float32 grid, so the storage mode is preserved).
	var swapped *dmatrix.Matrix
	if g == nil && !req.Self {
		if e, ok := s.cache[artifactKey{kind: kindCrossGrid, a: bid, b: aid, f32: req.Float32}]; ok {
			swapped = e.val.(*dmatrix.Matrix)
			s.lru.MoveToFront(e.elem)
		}
	}
	// Note what the disk tier can supply for the RAM misses; the reads
	// themselves run outside the lock. (The swapped-pair transpose beats
	// a disk decode, so it keeps priority — it counts as a build either
	// way, so the choice never shows up in a counter.)
	diskGrid := g == nil && swapped == nil && s.diskHasLocked(gk)
	diskBounds := req.WithBounds && rb == nil && s.diskHasLocked(bk)
	s.mu.Unlock()

	// Promote from disk outside the lock. A read failure means the file
	// was torn or corrupt: readArtifact already deleted it (self-heal),
	// the index entry is dropped below, and the artifact is recomputed.
	promotedGrid, promotedBounds := false, false
	var diskFailed []artifactKey
	if diskGrid {
		if payload, err := s.disk.readArtifact(gk); err == nil {
			if m, derr := dmatrix.Unmarshal(payload); derr == nil && m.Float32() == req.Float32 {
				g, promotedGrid = m, true
			} else {
				s.disk.removeArtifact(gk)
				diskFailed = append(diskFailed, gk)
			}
		} else {
			diskFailed = append(diskFailed, gk)
		}
	}
	if diskBounds {
		if payload, err := s.disk.readArtifact(bk); err == nil {
			if b, derr := bounds.Unmarshal(payload); derr == nil {
				rb, promotedBounds = b, true
			} else {
				s.disk.removeArtifact(bk)
				diskFailed = append(diskFailed, bk)
			}
		} else {
			diskFailed = append(diskFailed, bk)
		}
	}

	// Build what is still missing outside the lock.
	builtGrid, builtBounds := false, false
	if g == nil {
		if swapped != nil {
			g = swapped.Transposed()
		} else if req.Self {
			g = dmatrix.ComputeSelfParallel(req.A, s.df, req.Workers)
		} else {
			g = dmatrix.ComputeCrossParallel(req.A, req.B, s.df, req.Workers)
		}
		if req.Float32 && !g.Float32() {
			// Round before deriving bounds, matching the always-compute
			// source: bound tables and grid must agree.
			g = g.Compact32()
		}
		builtGrid = true
	}
	if req.WithBounds && rb == nil {
		rb = bounds.NewRelaxed(g, bounds.PointParams(req.Xi, req.Self))
		builtBounds = true
	}

	// Write fresh builds through to disk before indexing them, so every
	// RAM resident has a disk copy and LRU eviction is demotion for
	// free. size < 0 marks a failed (or disabled-tier) spill.
	var spilledGrid, spilledBounds int64 = -1, -1
	if builtGrid {
		spilledGrid = s.spill(gk, g.Marshal())
	}
	if builtBounds {
		spilledBounds = s.spill(bk, rb.Marshal())
	}

	s.mu.Lock()
	for _, k := range diskFailed {
		s.diskDropLocked(k)
	}
	if promotedGrid {
		// A promotion is a construction skipped, exactly like a RAM hit
		// — that equivalence is the warm-restart parity argument.
		s.reused++
		reused++
		s.diskReads++
		s.insertLocked(gk, g, g.Bytes())
	}
	if promotedBounds {
		s.reused++
		reused++
		s.diskReads++
		s.insertLocked(bk, rb, rb.Bytes())
	}
	if builtGrid {
		s.built++
		s.insertLocked(gk, g, g.Bytes())
		if spilledGrid >= 0 {
			s.diskRecordLocked(gk, spilledGrid)
		} else if s.disk != nil {
			s.diskErrors++
		}
	}
	if builtBounds {
		s.built++
		s.insertLocked(bk, rb, rb.Bytes())
		if spilledBounds >= 0 {
			s.diskRecordLocked(bk, spilledBounds)
		} else if s.disk != nil {
			s.diskErrors++
		}
	}
	s.mu.Unlock()
	return g, rb, reused
}

// EndpointDists returns a memoizing supplier of per-pair endpoint ground
// distances in the shape join.Options.EndpointDists consumes: given
// positions i, j into ts it returns df(a[0], b[0]) and
// df(a[n-1], b[m-1]), serving repeats from the artifact cache under the
// point-content pair key — the same key space evictLocked purges, in
// canonical ID order (the ground distance is symmetric, so both
// orientations share one entry). Cached values are the exact float64s
// direct evaluation produces, so join results and counters are
// byte-identical with or without the memo. Returns nil when caching is
// disabled.
func (s *Store) EndpointDists(ts []*traj.Trajectory) func(i, j int) (d0, dn float64, ok bool) {
	if s.budget <= 0 {
		return nil
	}
	return func(i, j int) (float64, float64, bool) {
		s.mu.Lock()
		aid := s.idForLocked(ts[i].Points)
		bid := s.idForLocked(ts[j].Points)
		if bid < aid {
			aid, bid = bid, aid
		}
		k := artifactKey{kind: kindPairDists, a: aid, b: bid}
		if e, ok := s.cache[k]; ok {
			d := e.val.([2]float64)
			s.lru.MoveToFront(e.elem)
			s.pairsReused++
			s.mu.Unlock()
			return d[0], d[1], true
		}
		onDisk := s.diskHasLocked(k)
		s.mu.Unlock()
		if onDisk {
			if d, ok := s.promotePair(k, 2); ok {
				return d[0], d[1], true
			}
		}
		a, b := ts[i].Points, ts[j].Points
		d0 := s.df(a[0], b[0])
		dn := s.df(a[len(a)-1], b[len(b)-1])
		size := s.spill(k, encodeFloats(d0, dn))
		s.mu.Lock()
		s.pairsBuilt++
		s.insertLocked(k, [2]float64{d0, dn}, 16)
		if size >= 0 {
			s.diskRecordLocked(k, size)
		} else if s.disk != nil {
			s.diskErrors++
		}
		s.mu.Unlock()
		return d0, dn, true
	}
}

// promotePair loads an n-float distance memo from the disk tier into the
// RAM cache, counting it as a pair-memo reuse (the same equivalence the
// grid promotion path relies on). A failed read or decode drops the
// index entry and reports a miss so the caller recomputes.
func (s *Store) promotePair(k artifactKey, n int) ([]float64, bool) {
	payload, err := s.disk.readArtifact(k)
	var vals []float64
	if err == nil {
		vals, err = decodeFloats(payload, n)
		if err != nil {
			s.disk.removeArtifact(k)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.diskDropLocked(k)
		return nil, false
	}
	s.pairsReused++
	s.diskReads++
	switch n {
	case 1:
		s.insertLocked(k, vals[0], 8)
	case 2:
		s.insertLocked(k, [2]float64{vals[0], vals[1]}, 16)
	}
	return vals, true
}

// PointDists returns a memoizing supplier of intra-trajectory point
// ground distances in the shape cluster.Options.EndpointDists consumes:
// given point indexes i, j into pts it returns df(pts[i], pts[j]),
// serving repeats from the artifact cache under the trajectory's
// point-content ID with the canonical (min, max) index pair packed into
// the key — the same key space evictLocked purges. Cached values are
// the exact float64s direct evaluation produces (HaversinePrepared is
// bit-identical to Haversine), so cluster results are byte-identical
// with or without the memo. Returns nil when caching is disabled.
func (s *Store) PointDists(pts []geo.Point) func(i, j int) (float64, bool) {
	if s.budget <= 0 || len(pts) == 0 {
		return nil
	}
	var once sync.Once
	var pid ID
	return func(i, j int) (float64, bool) {
		if i > j {
			i, j = j, i
		}
		if i < 0 || j >= len(pts) || j >= 1<<31 {
			// Out of range (caller bug) or unpackable into the key:
			// compute directly, uncached — correct, just unmemoized.
			if i < 0 || j >= len(pts) {
				return 0, false
			}
			return s.df(pts[i], pts[j]), true
		}
		once.Do(func() { pid = hashPoints(pts) })
		k := artifactKey{kind: kindPointDists, a: pid, xi: i<<32 | j}
		s.mu.Lock()
		if e, ok := s.cache[k]; ok {
			d := e.val.(float64)
			s.lru.MoveToFront(e.elem)
			s.pairsReused++
			s.mu.Unlock()
			return d, true
		}
		onDisk := s.diskHasLocked(k)
		s.mu.Unlock()
		if onDisk {
			if d, ok := s.promotePair(k, 1); ok {
				return d[0], true
			}
		}
		d := s.df(pts[i], pts[j])
		size := s.spill(k, encodeFloats(d))
		s.mu.Lock()
		s.pairsBuilt++
		s.insertLocked(k, d, 8)
		if size >= 0 {
			s.diskRecordLocked(k, size)
		} else if s.disk != nil {
			s.diskErrors++
		}
		s.mu.Unlock()
		return d, true
	}
}

// distMatches reports whether the request's ground distance is the
// store's. Function values cannot be compared in Go, so this is a
// two-stage heuristic: the code pointers must match, and because
// closures created from one function literal share a code pointer
// (different captures, same code), the two functions must also agree
// bit-for-bit on probe pairs drawn from the request's own points. A
// function passing both stages and still differing somewhere else is
// deliberately pathological; top-level functions like geo.Haversine are
// identified exactly.
func (s *Store) distMatches(req core.ArtifactRequest) bool {
	if reflect.ValueOf(req.Dist).Pointer() != s.dfID {
		return false
	}
	probe := func(p, q geo.Point) bool { return req.Dist(p, q) == s.df(p, q) }
	a := req.A
	if !probe(a[0], a[len(a)-1]) {
		return false
	}
	if len(a) > 2 && !probe(a[1], a[len(a)/2]) {
		return false
	}
	return true
}

// compute builds the requested artifacts without touching the cache (the
// distance-function-mismatch and caching-disabled paths), delegating to
// core's default always-compute source so the bypass path can never
// diverge from the uncached construction recipe.
func (s *Store) compute(req core.ArtifactRequest) (*dmatrix.Matrix, *bounds.Relaxed, int) {
	g, rb, _ := core.ResolveArtifacts(nil).Artifacts(req)
	s.mu.Lock()
	s.built++
	if req.WithBounds {
		s.built++
	}
	s.mu.Unlock()
	return g, rb, 0
}

func keysFor(req core.ArtifactRequest, aid, bid ID) (grid, bnds artifactKey) {
	if req.Self {
		return artifactKey{kind: kindSelfGrid, a: aid, f32: req.Float32},
			artifactKey{kind: kindSelfBounds, a: aid, xi: req.Xi, f32: req.Float32}
	}
	return artifactKey{kind: kindCrossGrid, a: aid, b: bid, f32: req.Float32},
		artifactKey{kind: kindCrossBounds, a: aid, b: bid, xi: req.Xi, f32: req.Float32}
}

// insertLocked adds an artifact and evicts from the LRU tail until the
// resident set fits the budget. An artifact larger than the whole budget
// is not cached at all (inserting it would evict everything for nothing).
func (s *Store) insertLocked(k artifactKey, val any, bytes int64) {
	if bytes > s.budget {
		return
	}
	if e, ok := s.cache[k]; ok {
		// A concurrent identical miss beat us to the insert; keep the
		// resident value (both are bit-identical).
		s.lru.MoveToFront(e.elem)
		return
	}
	e := &entry{key: k, val: val, bytes: bytes}
	e.elem = s.lru.PushFront(e)
	s.cache[k] = e
	s.bytes += bytes
	for s.bytes > s.budget {
		tail := s.lru.Back()
		if tail == nil || tail == e.elem {
			break
		}
		victim := tail.Value.(*entry)
		s.lru.Remove(tail)
		delete(s.cache, victim.key)
		s.bytes -= victim.bytes
		s.evicted++
	}
}
