package group

// Regression suite for the kernel swap: motif results on fixed synthetic
// workloads are pinned bit-for-bit (distances via math.Float64bits, spans
// exactly), all algorithms must agree with each other, and the
// kernel-level early abandoning must strictly reduce DP-cell counts while
// leaving results untouched.

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"trajmotif/internal/core"
	"trajmotif/internal/datagen"
	"trajmotif/internal/traj"
)

func fixture(t *testing.T, name datagen.Name, n int) *traj.Trajectory {
	t.Helper()
	tr, err := datagen.Dataset(name, datagen.Config{Seed: 42, N: n})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestKernelSwapGoldenResults pins BTM/GTM/GTMStar results on the worked
// synthetic fixtures to the values produced when the canonical kernel was
// introduced: distances are compared byte-identically and the witnessing
// spans exactly, so any later kernel change that perturbs the search —
// reassociated arithmetic, a changed tie, a lost candidate — fails loudly
// here.
func TestKernelSwapGoldenResults(t *testing.T) {
	cases := []struct {
		name     datagen.Name
		n, xi    int
		tau      int
		distBits uint64
		a, b     traj.Span
	}{
		{datagen.GeoLifeName, 160, 8, 8, 0x4042fbb200e729d4,
			traj.Span{Start: 96, End: 105}, traj.Span{Start: 106, End: 115}},
		{datagen.TruckName, 160, 8, 8, 0x405e3ac51691a948,
			traj.Span{Start: 59, End: 68}, traj.Span{Start: 125, End: 134}},
		{datagen.BaboonName, 160, 8, 8, 0x401188c7d998d180,
			traj.Span{Start: 42, End: 51}, traj.Span{Start: 52, End: 61}},
	}
	for _, c := range cases {
		tr := fixture(t, c.name, c.n)
		opt := &core.Options{}

		btm, err := core.BTM(tr, c.xi, opt)
		if err != nil {
			t.Fatalf("%s: BTM: %v", c.name, err)
		}
		gtm, err := GTM(tr, c.xi, c.tau, opt)
		if err != nil {
			t.Fatalf("%s: GTM: %v", c.name, err)
		}
		star, err := GTMStar(tr, c.xi, c.tau, opt)
		if err != nil {
			t.Fatalf("%s: GTM*: %v", c.name, err)
		}

		for alg, res := range map[string]*core.Result{"GTM": &gtm.Result, "GTM*": &star.Result} {
			if math.Float64bits(res.Distance) != math.Float64bits(btm.Distance) {
				t.Errorf("%s: %s distance %v != BTM %v", c.name, alg, res.Distance, btm.Distance)
			}
			if res.A != btm.A || res.B != btm.B {
				t.Errorf("%s: %s spans %v/%v != BTM %v/%v", c.name, alg, res.A, res.B, btm.A, btm.B)
			}
		}
		if math.Float64bits(btm.Distance) != c.distBits {
			t.Errorf("%s: golden distance bits %#x, got %#x (%v)",
				c.name, c.distBits, math.Float64bits(btm.Distance), btm.Distance)
		}
		if btm.A != c.a || btm.B != c.b {
			t.Errorf("%s: golden spans %+v/%+v, got %+v/%+v", c.name, c.a, c.b, btm.A, btm.B)
		}
	}
}

// TestEarlyAbandonReducesDPCells verifies the payoff the kernel swap was
// made for. Early abandoning bites exactly where hopeless subsets reach
// the DP: BruteDP (no bounds at all) and unsorted BTM (bounds consulted
// but in arrival order) must expand strictly fewer cells with abandoning
// on; sorted BTM with the full relaxed bound set already admits only
// essential subsets, so there it may only break even — never regress.
// Results must be byte-identical in every configuration.
func TestEarlyAbandonReducesDPCells(t *testing.T) {
	tr := fixture(t, datagen.GeoLifeName, 200)
	xi := 8

	check := func(name string, on, off *core.Result, strict bool) {
		t.Helper()
		if math.Float64bits(on.Distance) != math.Float64bits(off.Distance) ||
			on.A != off.A || on.B != off.B {
			t.Fatalf("%s: early abandoning changed the result: %v %v/%v vs %v %v/%v",
				name, on.Distance, on.A, on.B, off.Distance, off.A, off.B)
		}
		if strict && on.Stats.DPCells >= off.Stats.DPCells {
			t.Errorf("%s: early abandoning did not reduce DP cells: on=%d off=%d",
				name, on.Stats.DPCells, off.Stats.DPCells)
		}
		if on.Stats.DPCells > off.Stats.DPCells {
			t.Errorf("%s: early abandoning increased DP cells: on=%d off=%d",
				name, on.Stats.DPCells, off.Stats.DPCells)
		}
		if strict && on.Stats.SubsetsAbandoned == 0 {
			t.Errorf("%s: no subsets abandoned despite early abandoning on", name)
		}
		if off.Stats.SubsetsAbandoned != 0 {
			t.Errorf("%s: %d subsets abandoned with early abandoning off",
				name, off.Stats.SubsetsAbandoned)
		}
	}

	run := func(opt core.Options) *core.Result {
		t.Helper()
		res, err := core.BTM(tr, xi, &opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	check("btm-unsorted",
		run(core.Options{Unsorted: true}),
		run(core.Options{Unsorted: true, DisableEarlyAbandon: true}), true)
	check("btm-cellonly",
		run(core.Options{Bounds: core.BoundsCellOnly}),
		run(core.Options{Bounds: core.BoundsCellOnly, DisableEarlyAbandon: true}), true)
	check("btm-sorted", run(core.Options{}),
		run(core.Options{DisableEarlyAbandon: true}), false)

	clipped := tr.Clip(120)
	bon, err := core.BruteDP(clipped, 6, &core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	boff, err := core.BruteDP(clipped, 6, &core.Options{DisableEarlyAbandon: true})
	if err != nil {
		t.Fatal(err)
	}
	check("brutedp", bon, boff, true)

	// GTM feeds the same searcher through group-level pruning; abandoning
	// must never change its result or cost it cells.
	gon, err := GTM(tr, xi, 16, &core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	goff, err := GTM(tr, xi, 16, &core.Options{DisableEarlyAbandon: true})
	if err != nil {
		t.Fatal(err)
	}
	check("gtm", &gon.Result, &goff.Result, false)
}

// TestParallelDeterminism locks down the block-synchronous parallel
// engine: for every algorithm (BruteDP, BTM under every BoundSet and
// unsorted, GTM, GTM*), self and cross, with and without ε, runs at
// workers = 2, 4, 8 must be byte-identical to workers = 1 — distance
// bits, witness spans, AND every effort counter (only the wall-clock
// durations are scrubbed before comparison). Any scheduling dependence
// in pruning, abandoning, or witness merging fails loudly here.
func TestParallelDeterminism(t *testing.T) {
	tr := fixture(t, datagen.GeoLifeName, 200)
	clipped := tr.Clip(120)
	ca, cb, err := datagen.Pair(datagen.TruckName, datagen.Config{Seed: 7, N: 160})
	if err != nil {
		t.Fatal(err)
	}
	xi := 8

	// scrub zeroes the timing fields so reflect.DeepEqual compares only
	// deterministic content.
	scrubCore := func(r *core.Result) *core.Result {
		r.Stats.Precompute, r.Stats.Search = 0, 0
		return r
	}
	scrubGroup := func(r *Result) *Result {
		r.Stats.Precompute, r.Stats.Search = 0, 0
		r.Group.Stats.Precompute, r.Group.Stats.Search = 0, 0
		return r
	}

	cases := []struct {
		name string
		run  func(workers int) (any, error)
	}{
		{"brutedp/self", func(w int) (any, error) {
			r, err := core.BruteDP(clipped, 6, &core.Options{Workers: w})
			return r, err
		}},
		{"brutedp/cross", func(w int) (any, error) {
			r, err := core.BruteDPCross(ca, cb, 6, &core.Options{Workers: w})
			return r, err
		}},
		{"btm/unsorted", func(w int) (any, error) {
			r, err := core.BTM(tr, xi, &core.Options{Workers: w, Unsorted: true})
			return r, err
		}},
		{"btm/cross", func(w int) (any, error) {
			r, err := core.BTMCross(ca, cb, 6, &core.Options{Workers: w})
			return r, err
		}},
		{"btm/eps0.4", func(w int) (any, error) {
			r, err := core.BTM(tr, xi, &core.Options{Workers: w, Epsilon: 0.4})
			return r, err
		}},
		{"gtm/tau16", func(w int) (any, error) {
			r, err := GTM(tr, xi, 16, &core.Options{Workers: w})
			return r, err
		}},
		{"gtm/tau16/eps0.5", func(w int) (any, error) {
			r, err := GTM(tr, xi, 16, &core.Options{Workers: w, Epsilon: 0.5})
			return r, err
		}},
		{"gtmstar/tau16", func(w int) (any, error) {
			r, err := GTMStar(tr, xi, 16, &core.Options{Workers: w})
			return r, err
		}},
		{"gtm/cross", func(w int) (any, error) {
			r, err := GTMCross(ca, cb, 6, 8, &core.Options{Workers: w})
			return r, err
		}},
		{"gtmstar/cross/eps0.3", func(w int) (any, error) {
			r, err := GTMStarCross(ca, cb, 6, 8, &core.Options{Workers: w, Epsilon: 0.3})
			return r, err
		}},
		// TopK is the one parallel driver exercising the exclude
		// predicate (rounds >= 2 mask prior witnesses) and the shared
		// grid across rounds.
		{"topk3/self", func(w int) (any, error) {
			r, err := core.TopK(tr, xi, 3, &core.Options{Workers: w})
			return r, err
		}},
		{"topk2/cross", func(w int) (any, error) {
			r, err := core.TopKCross(ca, cb, 6, 2, &core.Options{Workers: w})
			return r, err
		}},
	}
	for _, bs := range []core.BoundSet{core.BoundsRelaxed, core.BoundsTight, core.BoundsCellOnly, core.BoundsCellCross} {
		bs := bs
		cases = append(cases, struct {
			name string
			run  func(workers int) (any, error)
		}{fmt.Sprintf("btm/%v", bs), func(w int) (any, error) {
			r, err := core.BTM(tr, xi, &core.Options{Workers: w, Bounds: bs})
			return r, err
		}})
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			scrub := func(v any) any {
				switch r := v.(type) {
				case *core.Result:
					return scrubCore(r)
				case *Result:
					return scrubGroup(r)
				case []core.Result:
					for k := range r {
						scrubCore(&r[k])
					}
					return r
				}
				t.Fatalf("unexpected result type %T", v)
				return nil
			}
			base, err := c.run(1)
			if err != nil {
				t.Fatalf("workers=1: %v", err)
			}
			base = scrub(base)
			for _, w := range []int{2, 4, 8} {
				got, err := c.run(w)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				got = scrub(got)
				if !reflect.DeepEqual(base, got) {
					t.Errorf("workers=%d diverged from workers=1:\n  w1: %+v\n  w%d: %+v", w, base, w, got)
				}
			}
		})
	}
}

// TestKernelSwapCrossGolden repeats the bit-identical pin for the
// two-trajectory variant.
func TestKernelSwapCrossGolden(t *testing.T) {
	a, b, err := datagen.Pair(datagen.TruckName, datagen.Config{Seed: 42, N: 120})
	if err != nil {
		t.Fatal(err)
	}
	btm, err := core.BTMCross(a, b, 6, &core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gtm, err := GTMCross(a, b, 6, 8, &core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(gtm.Distance) != math.Float64bits(btm.Distance) {
		t.Errorf("GTMCross %v != BTMCross %v", gtm.Distance, btm.Distance)
	}
	const wantBits = uint64(0x40628a40e1753326) // 148.32042000666223
	if math.Float64bits(btm.Distance) != wantBits {
		t.Errorf("golden cross distance bits %#x, got %#x (%v)",
			wantBits, math.Float64bits(btm.Distance), btm.Distance)
	}
	wantA := traj.Span{Start: 73, End: 80}
	wantB := traj.Span{Start: 49, End: 56}
	if btm.A != wantA || btm.B != wantB {
		t.Errorf("golden cross spans %+v/%+v, got %+v/%+v", wantA, wantB, btm.A, btm.B)
	}
}
