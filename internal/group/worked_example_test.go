package group

import (
	"math"
	"testing"

	"trajmotif/internal/dist"
	"trajmotif/internal/dmatrix"
)

// These tests pin the worked-example mechanics of the paper's §5 figures
// on a hand-built grid where every quantity can be checked by eye. (The
// literal numbers of Figures 10-12 are unrecoverable from the provided
// text — see DESIGN.md §1.5 — so the grid here is ours, but the relations
// it exercises are exactly the figures'.)
//
// Grid (8x8, symmetric, zero diagonal), tau = 2 -> four groups
// g0={0,1}, g1={2,3}, g2={4,5}, g3={6,7}.
var exampleRows = [][]float64{
	{0, 1, 4, 5, 9, 8, 3, 2},
	{1, 0, 3, 4, 8, 7, 2, 3},
	{4, 3, 0, 1, 5, 4, 6, 7},
	{5, 4, 1, 0, 4, 3, 7, 8},
	{9, 8, 5, 4, 0, 1, 9, 9},
	{8, 7, 4, 3, 1, 0, 8, 9},
	{3, 2, 6, 7, 9, 8, 0, 1},
	{2, 3, 7, 8, 9, 9, 1, 0},
}

func exampleLevel() (*Level, *dmatrix.Matrix) {
	g := dmatrix.FromRows(exampleRows)
	return BuildLevel(g, 2), g
}

// TestFigure10GroupDistances pins dminG/dmaxG (Eqs. 16-17) — the Step 1-2
// quantities of the Figure 10 walkthrough.
func TestFigure10GroupDistances(t *testing.T) {
	lv, _ := exampleLevel()
	// dminG(g0, g3) = min over {0,1}x{6,7} = min(3,2,2,3) = 2.
	if got := lv.Dmin(0, 3); got != 2 {
		t.Errorf("Dmin(0,3) = %g, want 2", got)
	}
	// dmaxG(g0, g3) = max(3,2,2,3) = 3.
	if got := lv.Dmax(0, 3); got != 3 {
		t.Errorf("Dmax(0,3) = %g, want 3", got)
	}
	// dminG(g0, g2) = min(9,8,8,7) = 7; dmaxG = 9.
	if got := lv.Dmin(0, 2); got != 7 {
		t.Errorf("Dmin(0,2) = %g, want 7", got)
	}
	if got := lv.Dmax(0, 2); got != 9 {
		t.Errorf("Dmax(0,2) = %g, want 9", got)
	}
}

// TestFigure12IntervalBracketing pins the Figure 12 relation: the interval
// DFD of full subtrajectory groups brackets the DFD of the concrete
// full-group pair.
func TestFigure12IntervalBracketing(t *testing.T) {
	lv, g := exampleLevel()
	n := 8
	// Pair of subtrajectory groups G_{0,0} vs G_{3,3} (points 0-1 vs 6-7).
	glb, gub := lv.DFDBounds(0, 3, 0, true, n, n)

	// The concrete pair S[0..1], S[6..7]: its DFD straight from the shared
	// grid window via the canonical kernel.
	d, _ := dist.DFDFromGridCapped(g, 0, 1, 6, 7, math.Inf(1))
	if glb > d+1e-12 {
		t.Errorf("GLB %g > concrete DFD %g", glb, d)
	}
	// gub minimizes over candidate end groups, so it may be tighter than
	// this particular pair's DFD, but never below the lower bound.
	if !math.IsInf(gub, 1) && glb > gub+1e-12 {
		t.Errorf("GLB %g > GUB %g", glb, gub)
	}
}

// TestHalvingRefinesBounds shows the multi-level idea of Figure 9/§5.4:
// at smaller tau, group bounds can only get tighter (dmin rises toward the
// true cell values, dmax falls).
func TestHalvingRefinesBounds(t *testing.T) {
	g := dmatrix.FromRows(exampleRows)
	lv4 := BuildLevel(g, 4) // two groups of 4
	lv2 := BuildLevel(g, 2) // four groups of 2
	// Every tau=2 pair nested inside a tau=4 pair must have
	// dmin >= parent's dmin and dmax <= parent's dmax.
	for u := 0; u < lv2.NA; u++ {
		for v := 0; v < lv2.NB; v++ {
			pu, pv := u/2, v/2
			if lv2.Dmin(u, v) < lv4.Dmin(pu, pv)-1e-12 {
				t.Errorf("child dmin(%d,%d)=%g below parent %g", u, v, lv2.Dmin(u, v), lv4.Dmin(pu, pv))
			}
			if lv2.Dmax(u, v) > lv4.Dmax(pu, pv)+1e-12 {
				t.Errorf("child dmax(%d,%d)=%g above parent %g", u, v, lv2.Dmax(u, v), lv4.Dmax(pu, pv))
			}
		}
	}
}
