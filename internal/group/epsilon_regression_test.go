package group

// Regression test for a witness-loss bug in ε-approximate search that the
// kernel-swap review surfaced (it predates the kernel): when a group
// upper bound (GUB_DFD) tightened bsf to the exact motif value with no
// materialized pair, the (1+ε)-relaxed Prunable threshold could discard
// every candidate matching bsf, ending the search with "no witnessed
// motif". Prunable now applies the relaxation only once a concrete
// witness is held, and early abandoning never applies it at all.

import (
	"testing"

	"trajmotif/internal/core"
	"trajmotif/internal/datagen"
)

func TestApproximateGTMAlwaysWitnesses(t *testing.T) {
	tr := fixture(t, datagen.GeoLifeName, 200)
	exact, err := core.BTM(tr, 8, &core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.1, 0.5, 1.0, 3.0} {
		for _, tau := range []int{4, 16, 64} {
			res, err := GTM(tr, 8, tau, &core.Options{Epsilon: eps})
			if err != nil {
				t.Fatalf("eps=%g tau=%d: %v", eps, tau, err)
			}
			if res.Distance > exact.Distance*(1+eps)+1e-9 {
				t.Fatalf("eps=%g tau=%d: %g violates the (1+eps) bound on %g",
					eps, tau, res.Distance, exact.Distance)
			}
			// Early abandoning is a pure work-saver: the approximate result
			// must be identical with it disabled.
			off, err := GTM(tr, 8, tau, &core.Options{Epsilon: eps, DisableEarlyAbandon: true})
			if err != nil {
				t.Fatalf("eps=%g tau=%d (abandon off): %v", eps, tau, err)
			}
			if res.Distance != off.Distance || res.A != off.A || res.B != off.B {
				t.Fatalf("eps=%g tau=%d: abandoning changed the approximate result: %g %v/%v vs %g %v/%v",
					eps, tau, res.Distance, res.A, res.B, off.Distance, off.A, off.B)
			}
		}
	}
}
