// Package group implements the paper's grouping-based solutions (§5): the
// multi-level GTM algorithm (Algorithm 3) and its space-efficient variant
// GTM* (§5.5).
//
// A trajectory is partitioned into groups of τ consecutive samples
// (Definition 4). For each pair of groups the minimum and maximum ground
// distances (dminG, dmaxG) bracket every point-pair distance between them
// (Corollary 1), which lifts the point-level lower bounds of §4 to group
// granularity (§5.2) and, through the interval DFD recurrence dFmin/dFmax
// (Definition 5, Lemma 3), yields a lower bound GLB_DFD that prunes whole
// group pairs and an upper bound GUB_DFD that tightens the best-so-far
// distance before any exact DFD is computed (§5.3, Lemma 4).
//
// GTM repeats grouping with halved τ on the surviving pairs until τ = 1,
// then finishes with the BTM search engine on the surviving candidate
// subsets. GTM* performs a single grouping pass and computes ground
// distances on the fly, bounding memory by O(max((n/τ)², n)).
//
// Both algorithms shard across core's worker pool (core.Options.Workers):
// level scans split by group row, the interval-DFD bound evaluations fan
// out per block of LB-sorted pairs with the tighten/prune bookkeeping
// replayed in canonical order, and the final point-level sweep runs on
// the block-synchronous core engine — so results and counters match the
// sequential run bit-for-bit at any worker count.
package group

import (
	"fmt"
	"math"
	"sort"
	"time"

	"trajmotif/internal/bounds"
	"trajmotif/internal/core"
	"trajmotif/internal/dist"
	"trajmotif/internal/dmatrix"
	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

// Level holds the τ-grouping of one ground-distance grid: for group pair
// (u, v), Dmin and Dmax are dminG(g_u, g_v) and dmaxG(g_u, g_v)
// (Eqs. 16-17).
type Level struct {
	Tau    int
	NA, NB int // group counts along each axis
	dmin   []float64
	dmax   []float64
}

// BuildLevel scans the grid once (O(n·m) distance evaluations) and folds
// every cell into its group pair's min/max.
func BuildLevel(g dmatrix.Grid, tau int) *Level {
	return buildLevel(g, tau, 1)
}

// buildLevel is BuildLevel with the scan sharded by group row: each
// worker owns a disjoint band of tau point rows, so the folds race on
// nothing, and min/max folding makes the result bit-identical for every
// worker count.
func buildLevel(g dmatrix.Grid, tau, workers int) *Level {
	n, m := g.Dims()
	lv := &Level{
		Tau: tau,
		NA:  (n + tau - 1) / tau,
		NB:  (m + tau - 1) / tau,
	}
	lv.dmin = make([]float64, lv.NA*lv.NB)
	lv.dmax = make([]float64, lv.NA*lv.NB)
	for k := range lv.dmin {
		lv.dmin[k] = math.Inf(1)
		lv.dmax[k] = math.Inf(-1)
	}
	core.ParallelFor(workers, lv.NA, func(gi int) {
		row := lv.dmin[gi*lv.NB : (gi+1)*lv.NB]
		rowMax := lv.dmax[gi*lv.NB : (gi+1)*lv.NB]
		iHi := min((gi+1)*tau, n)
		for i := gi * tau; i < iHi; i++ {
			for j := 0; j < m; j++ {
				d := g.At(i, j)
				gj := j / tau
				if d < row[gj] {
					row[gj] = d
				}
				if d > rowMax[gj] {
					rowMax[gj] = d
				}
			}
		}
	})
	return lv
}

// Dmin returns dminG(g_u, g_v).
func (lv *Level) Dmin(u, v int) float64 { return lv.dmin[u*lv.NB+v] }

// Dmax returns dmaxG(g_u, g_v).
func (lv *Level) Dmax(u, v int) float64 { return lv.dmax[u*lv.NB+v] }

// Bytes returns the level's storage footprint (Figure 19 accounting).
func (lv *Level) Bytes() int64 { return int64(len(lv.dmin)+len(lv.dmax)) * 8 }

// minGrid adapts the Dmin matrix to the bounds.Grid interface so the
// relaxed bound machinery of §4.3 runs unchanged at group granularity
// (§5.2, "relaxed lower bounds for groups").
type minGrid struct{ lv *Level }

func (g minGrid) At(u, v int) float64 { return g.lv.Dmin(u, v) }
func (g minGrid) Dims() (int, int)    { return g.lv.NA, g.lv.NB }

// maxGrid is the Dmax counterpart, feeding the interval DFD's upper
// recurrence through the same canonical kernel rows as the lower one.
type maxGrid struct{ lv *Level }

func (g maxGrid) At(u, v int) float64 { return g.lv.Dmax(u, v) }
func (g maxGrid) Dims() (int, int)    { return g.lv.NA, g.lv.NB }

// DFDBounds computes GLB_DFD(u, v) and GUB_DFD(u, v) (Eqs. 19-20) by the
// interval DFD dynamic program of Definition 5 — two runs of the canonical
// kernel's row recurrence, one over the dminG grid and one over dmaxG —
// with the early-termination rule of §5.3: once the minimum over the DP
// frontier row can no longer improve either bound, the computation stops.
//
// glb lower-bounds the DFD of every candidate rooted in (g_u, g_v)
// (subject to the minimum length ξ); gub, when finite, is the exact-DFD
// upper bound of a concrete feasible full-group pair and may therefore be
// used to tighten bsf. nPoints/mPoints are the underlying trajectory
// lengths, needed to honor length and overlap constraints on partial last
// groups.
func (lv *Level) DFDBounds(u, v, xi int, self bool, nPoints, mPoints int) (glb, gub float64) {
	gxi := (xi + 1) / lv.Tau
	ueHi := lv.NA - 1
	if self && v < ueHi {
		ueHi = v // the first leg ends before the second starts (ie < j)
	}
	veHi := lv.NB - 1

	glb, gub = math.Inf(1), math.Inf(1)
	width := veHi - v + 1
	prevMin := make([]float64, width)
	curMin := make([]float64, width)
	prevMax := make([]float64, width)
	curMax := make([]float64, width)

	// endIdx is the last point index of group x (last group may be short).
	endA := func(x int) int { return min((x+1)*lv.Tau-1, nPoints-1) }
	endB := func(x int) int { return min((x+1)*lv.Tau-1, mPoints-1) }

	// Boundary row ue = u: running max along ve.
	gmin, gmax := minGrid{lv}, maxGrid{lv}
	dist.DFDBoundaryRow(gmin, u, v, veHi, prevMin)
	dist.DFDBoundaryRow(gmax, u, v, veHi, prevMax)
	consider := func(ue, ve int, fmin, fmax float64) {
		if ue-u >= gxi && ve-v >= gxi && fmin < glb {
			glb = fmin
		}
		// GUB is valid only when the full-group pair is itself a feasible
		// candidate: both legs longer than ξ steps and, for Problem 1,
		// strictly ordered.
		if fmax < gub &&
			endA(ue)-u*lv.Tau > xi && endB(ve)-v*lv.Tau > xi &&
			(!self || endA(ue) < v*lv.Tau) {
			gub = fmax
		}
	}
	for ve := v; ve <= veHi; ve++ {
		consider(u, ve, prevMin[ve-v], prevMax[ve-v])
	}

	colMin, colMax := prevMin[0], prevMax[0]
	for ue := u + 1; ue <= ueHi; ue++ {
		colMin = math.Max(colMin, lv.Dmin(ue, v))
		colMax = math.Max(colMax, lv.Dmax(ue, v))
		curMin[0], curMax[0] = colMin, colMax
		frontier := dist.DFDRelaxRow(gmin, ue, v, veHi, prevMin, curMin)
		frontierMax := dist.DFDRelaxRow(gmax, ue, v, veHi, prevMax, curMax)
		for ve := v; ve <= veHi; ve++ {
			consider(ue, ve, curMin[ve-v], curMax[ve-v])
		}
		// Early termination: every later cell is at least the minimum of
		// this completed row (the kernel's row-crossing argument), so once
		// neither bound can improve, stop.
		if frontier >= glb && frontierMax >= gub {
			break
		}
		prevMin, curMin = curMin, prevMin
		prevMax, curMax = curMax, prevMax
	}
	return glb, gub
}

// pair is a candidate group pair with its pattern-bound LB.
type pair struct {
	lb   float64
	u, v int32
}

// Stats extends the core search statistics with grouping-phase counters.
type Stats struct {
	core.Stats
	// Levels actually executed (GTM halves τ; GTM* runs one).
	Levels int
	// GroupPairs evaluated across all levels; GroupPairsPruned were
	// eliminated by pattern bounds or GLB_DFD before reaching the next
	// level.
	GroupPairs       int64
	GroupPairsPruned int64
	// BsfTightenings counts successful GUB_DFD updates of bsf.
	BsfTightenings int64
	// PointCells that survived to the final point-level phase.
	PointCells int64
}

// Result bundles the motif with grouping statistics.
type Result struct {
	core.Result
	Group Stats
}

// GTM is Algorithm 3 on a single trajectory: multi-level group pruning
// with initial group size tau, then the BTM engine on the survivors.
func GTM(t *traj.Trajectory, xi, tau int, opt *core.Options) (*Result, error) {
	return gtm(t.Points, t.Points, xi, tau, true, opt, false)
}

// GTMCross is Algorithm 3 for the two-trajectory variant.
func GTMCross(t, u *traj.Trajectory, xi, tau int, opt *core.Options) (*Result, error) {
	return gtm(t.Points, u.Points, xi, tau, false, opt, false)
}

// GTMStar is the space-efficient variant (§5.5): ground distances on the
// fly, O(n)-space DFD rows, and a single grouping pass for the given τ.
func GTMStar(t *traj.Trajectory, xi, tau int, opt *core.Options) (*Result, error) {
	return gtm(t.Points, t.Points, xi, tau, true, opt, true)
}

// GTMStarCross is GTM* for the two-trajectory variant.
func GTMStarCross(t, u *traj.Trajectory, xi, tau int, opt *core.Options) (*Result, error) {
	return gtm(t.Points, u.Points, xi, tau, false, opt, true)
}

func gtm(a, b []geo.Point, xi, tau int, self bool, opt *core.Options, star bool) (*Result, error) {
	if xi < 0 {
		return nil, fmt.Errorf("group: negative minimum motif length %d", xi)
	}
	if tau < 1 {
		return nil, fmt.Errorf("group: group size %d must be at least 1", tau)
	}
	if opt == nil {
		opt = &core.Options{}
	}
	df := geo.Haversine
	if opt.Dist != nil {
		df = opt.Dist
	}
	// GTM halves τ level by level; normalize to a power of two so halving
	// lands exactly on 1.
	for tau&(tau-1) != 0 {
		tau &= tau - 1
	}

	workers := core.ResolveWorkers(opt.Workers)
	start := time.Now()
	var grid dmatrix.Grid
	var gridBytes int64
	var rbPoint *bounds.Relaxed
	var reused int
	if star {
		// GTM* never materializes the grid (§5.5, Idea i), so there is
		// nothing for an ArtifactSource to reuse.
		grid = dmatrix.NewFlyCross(a, b, df)
		rbPoint = bounds.NewRelaxed(grid, bounds.PointParams(xi, self))
	} else {
		var m *dmatrix.Matrix
		m, rbPoint, reused = core.ResolveArtifacts(opt.Artifacts).Artifacts(core.ArtifactRequest{
			A: a, B: b, Self: self, Xi: xi, WithBounds: true, Dist: df, Workers: workers,
			Float32: opt.Float32Grids,
		})
		grid = m
		gridBytes = m.Bytes()
	}

	s := core.NewSearcher(grid, xi, self, rbPoint, !opt.DisableEndCross)
	s.SetWorkers(workers)
	s.SetEpsilon(opt.Epsilon)
	s.SetEarlyAbandon(!opt.DisableEarlyAbandon)
	if !s.Feasible() {
		return nil, core.ErrTooShort
	}
	n, m := grid.Dims()
	gst := Stats{}
	st := s.Stats()
	st.N, st.M, st.Xi = n, m, xi
	st.GridRebuildsAvoided = int64(reused)
	st.PeakBytes = gridBytes + rbPoint.Bytes()

	// survivors tracks surviving group pairs at the current τ; nil means
	// "level not yet run" (enumerate everything feasible).
	var survivors []pair
	firstLevel := true

	for level := tau; level >= 2; level /= 2 {
		lv := buildLevel(grid, level, workers)
		grb := bounds.NewRelaxed(minGrid{lv}, bounds.GroupParams(xi, level, self))
		st.PeakBytes += lv.Bytes() + grb.Bytes()
		gst.Levels++

		var cand []pair
		if firstLevel {
			cand = enumerateFeasible(lv, s)
			firstLevel = false
		} else {
			cand = childPairs(survivors, lv, s)
		}
		for k := range cand {
			u, v := int(cand[k].u), int(cand[k].v)
			cand[k].lb = grb.SubsetLB(lv.Dmin(u, v), u, v)
		}
		sort.Slice(cand, func(x, y int) bool {
			if cand[x].lb != cand[y].lb {
				return cand[x].lb < cand[y].lb
			}
			if cand[x].u != cand[y].u {
				return cand[x].u < cand[y].u
			}
			return cand[x].v < cand[y].v
		})

		gst.GroupPairs += int64(len(cand))
		survivors = refineLevel(s, lv, cand, survivors[:0], &gst, xi, self, n, m)

		if star {
			break // GTM* executes the grouping loop once (§5.5, Idea iii)
		}
	}

	// Expand surviving group pairs to point-level candidate subsets. When
	// grouping never ran (tau == 1), fall back to every feasible cell.
	var cells []core.Entry
	lastTau := 2
	if star {
		lastTau = tau
	}
	if firstLevel {
		// No grouping level executed (tau == 1): enumerate all subsets.
		for i := 0; i <= s.IMax(); i++ {
			lo, hi := s.JRange(i)
			for j := lo; j <= hi; j++ {
				cells = append(cells, core.Entry{LB: rbPoint.SubsetLB(grid.At(i, j), i, j), I: int32(i), J: int32(j)})
			}
		}
	} else {
		// Distinct surviving pairs cover disjoint (i, j) regions, so no
		// dedup is needed when expanding to point cells.
		for _, pr := range survivors {
			iLo, iHi := int(pr.u)*lastTau, min((int(pr.u)+1)*lastTau-1, n-1)
			for i := iLo; i <= iHi && i <= s.IMax(); i++ {
				jLo, jHi := s.JRange(i)
				jLo = max(jLo, int(pr.v)*lastTau)
				jHi = min(jHi, (int(pr.v)+1)*lastTau-1)
				for j := jLo; j <= jHi; j++ {
					cells = append(cells, core.Entry{LB: rbPoint.SubsetLB(grid.At(i, j), i, j), I: int32(i), J: int32(j)})
				}
			}
		}
	}
	core.SortEntries(cells, workers)
	gst.PointCells = int64(len(cells))
	st.Subsets = int64(len(cells))
	st.PeakBytes += int64(len(cells)) * 16
	st.Precompute = time.Since(start)

	searchStart := time.Now()
	s.ProcessList(cells, true)
	st.Search = time.Since(searchStart)

	res, err := s.Result()
	if err != nil {
		return nil, err
	}
	gst.Stats = res.Stats
	return &Result{Result: *res, Group: gst}, nil
}

// pairBlock is the barrier interval of the group-pair feed. Like the
// core engine's listBlock it must not depend on the worker count: block
// boundaries define the deterministic snapshot sequence.
const pairBlock = 64

// refineLevel runs one grouping level's prune/refine pass over the
// LB-sorted candidate pairs: interval-DFD bounds (GLB_DFD/GUB_DFD) for
// every pair that survives its lower bound, GUB tightenings of bsf, and
// the sorted stopping rule. The expensive part — DFDBounds, a pure
// function of the pair — is fanned across the searcher's workers in
// blocks; the bookkeeping (tighten, prune, survive, the Figure-15-style
// counters) is then replayed sequentially in canonical order against the
// live bound, so the outcome, including every counter, is exactly the
// sequential algorithm's for any worker count.
func refineLevel(s *core.Searcher, lv *Level, cand, next []pair, gst *Stats, xi int, self bool, n, m int) []pair {
	type pairBounds struct{ glb, gub float64 }
	workers := s.Workers()
	for base := 0; base < len(cand); base += pairBlock {
		hi := min(base+pairBlock, len(cand))
		block := cand[base:hi]
		snap := s.Snapshot()

		// Speculatively evaluate the interval DFD for the block's
		// lb-survivors under the frozen snapshot. The replay below prunes
		// with the live (tighter or, in the ε corner after an unwitnessed
		// GUB tightening, differently-relaxed) bound, so it may use fewer
		// of these — or, rarely, need one the speculation skipped, which
		// it then computes inline.
		cut := sort.Search(len(block), func(k int) bool { return snap.Prunable(block[k].lb) })
		bnds := make([]pairBounds, cut)
		core.ParallelFor(workers, cut, func(k int) {
			bnds[k].glb, bnds[k].gub = lv.DFDBounds(int(block[k].u), int(block[k].v), xi, self, n, m)
		})

		// Replay Algorithm 3's bookkeeping in canonical order.
		for k, pr := range block {
			if s.Prunable(pr.lb) {
				gst.GroupPairsPruned += int64(len(cand) - (base + k))
				return next
			}
			var glb, gub float64
			if k < cut {
				glb, gub = bnds[k].glb, bnds[k].gub
			} else {
				glb, gub = lv.DFDBounds(int(pr.u), int(pr.v), xi, self, n, m)
			}
			if !math.IsInf(gub, 1) && gub < s.Bsf() {
				s.TightenBsf(gub)
				gst.BsfTightenings++
			}
			if s.Prunable(glb) {
				gst.GroupPairsPruned++
				continue
			}
			next = append(next, pair{u: pr.u, v: pr.v})
		}
	}
	return next
}

// enumerateFeasible lists every group pair that can contain a feasible
// candidate start cell.
func enumerateFeasible(lv *Level, s *core.Searcher) []pair {
	var out []pair
	for u := 0; u < lv.NA; u++ {
		iLo := u * lv.Tau
		if iLo > s.IMax() {
			break
		}
		jLo, jHi := s.JRange(iLo)
		vLo, vHi := jLo/lv.Tau, min(jHi/lv.Tau, lv.NB-1)
		for v := vLo; v <= vHi; v++ {
			out = append(out, pair{u: int32(u), v: int32(v)})
		}
	}
	return out
}

// childPairs splits each surviving pair at size 2τ into its up-to-four
// children at size τ, keeping those that still contain feasible starts.
func childPairs(parents []pair, lv *Level, s *core.Searcher) []pair {
	var out []pair
	seen := map[int64]bool{}
	for _, p := range parents {
		for du := 0; du < 2; du++ {
			for dv := 0; dv < 2; dv++ {
				u, v := 2*int(p.u)+du, 2*int(p.v)+dv
				if u >= lv.NA || v >= lv.NB {
					continue
				}
				iLo := u * lv.Tau
				if iLo > s.IMax() {
					continue
				}
				jLo, jHi := s.JRange(iLo)
				if (v+1)*lv.Tau-1 < jLo || v*lv.Tau > jHi {
					continue
				}
				key := int64(u)*int64(lv.NB) + int64(v)
				if seen[key] {
					continue
				}
				seen[key] = true
				out = append(out, pair{u: int32(u), v: int32(v)})
			}
		}
	}
	return out
}
