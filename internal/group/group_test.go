package group

import (
	"math"
	"math/rand"
	"testing"

	"trajmotif/internal/core"
	"trajmotif/internal/dist"
	"trajmotif/internal/dmatrix"
	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

func randTraj(r *rand.Rand, n int) *traj.Trajectory {
	pts := make([]geo.Point, n)
	x, y := 0.0, 0.0
	for i := range pts {
		x += r.Float64()*2 - 1
		y += r.Float64()*2 - 1
		pts[i] = geo.Point{Lng: x, Lat: y}
	}
	return traj.FromPoints(pts)
}

var euclid = &core.Options{Dist: geo.Euclidean}

func TestBuildLevelMinMax(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	tr := randTraj(r, 23) // deliberately not a multiple of tau
	g := dmatrix.ComputeSelf(tr.Points, geo.Euclidean)
	for _, tau := range []int{2, 4, 8} {
		lv := BuildLevel(g, tau)
		wantNA := (23 + tau - 1) / tau
		if lv.NA != wantNA || lv.NB != wantNA {
			t.Fatalf("tau=%d: NA=%d NB=%d, want %d", tau, lv.NA, lv.NB, wantNA)
		}
		// Corollary 1: dmin <= dG(i,j) <= dmax for every cell of the pair.
		for u := 0; u < lv.NA; u++ {
			for v := 0; v < lv.NB; v++ {
				lo, hi := lv.Dmin(u, v), lv.Dmax(u, v)
				if lo > hi {
					t.Fatalf("tau=%d (%d,%d): dmin %g > dmax %g", tau, u, v, lo, hi)
				}
				for i := u * tau; i <= (u+1)*tau-1 && i < 23; i++ {
					for j := v * tau; j <= (v+1)*tau-1 && j < 23; j++ {
						d := g.At(i, j)
						if d < lo-1e-12 || d > hi+1e-12 {
							t.Fatalf("tau=%d: dG(%d,%d)=%g outside [%g,%g]", tau, i, j, d, lo, hi)
						}
					}
				}
			}
		}
	}
}

// TestDFDBoundsBracket is Lemma 3/4: for random feasible candidates rooted
// in (g_u, g_v), GLB_DFD <= DFD <= (finite) GUB_DFD-of-the-full-group-pair.
func TestDFDBoundsBracket(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for trial := 0; trial < 20; trial++ {
		n := 24 + r.Intn(16)
		xi := 2 + r.Intn(3)
		tau := []int{2, 4}[r.Intn(2)]
		tr := randTraj(r, n)
		g := dmatrix.ComputeSelf(tr.Points, geo.Euclidean)
		lv := BuildLevel(g, tau)

		for u := 0; u < lv.NA; u++ {
			for v := u; v < lv.NB; v++ {
				glb, gub := lv.DFDBounds(u, v, xi, true, n, n)
				// Sample candidates rooted in this pair.
				for k := 0; k < 5; k++ {
					i := u*tau + r.Intn(tau)
					j := v*tau + r.Intn(tau)
					if i >= n || j >= n || j < i+xi+2 || j > n-xi-2 || i > n-2*xi-4 {
						continue
					}
					ie := i + xi + 1 + r.Intn(j-i-xi-1)
					je := j + xi + 1 + r.Intn(n-j-xi-1)
					d := dist.DFD(tr.Points[i:ie+1], tr.Points[j:je+1], geo.Euclidean)
					if glb > d+1e-9 {
						t.Fatalf("GLB %g > DFD %g for cand (%d,%d,%d,%d), tau=%d xi=%d n=%d",
							glb, d, i, ie, j, je, tau, xi, n)
					}
				}
				// GUB, when finite, must be at least the motif distance
				// (it is an upper bound of a concrete feasible pair).
				if !math.IsInf(gub, 1) {
					if glb > gub+1e-9 {
						t.Fatalf("GLB %g > GUB %g at (%d,%d)", glb, gub, u, v)
					}
				}
			}
		}
	}
}

// TestGUBIsAchievable verifies the GUB feasibility rules: whenever GUB is
// finite there exists a concrete feasible full-group pair whose DFD is at
// most GUB.
func TestGUBIsAchievable(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 15; trial++ {
		n := 28 + r.Intn(10)
		xi := 2
		tau := 2
		tr := randTraj(r, n)
		g := dmatrix.ComputeSelf(tr.Points, geo.Euclidean)
		lv := BuildLevel(g, tau)
		for u := 0; u < lv.NA; u++ {
			for v := u; v < lv.NB; v++ {
				_, gub := lv.DFDBounds(u, v, xi, true, n, n)
				if math.IsInf(gub, 1) {
					continue
				}
				// Search all full-group pairs for a feasible witness with
				// DFD <= gub.
				found := false
				for ue := u; ue <= v && !found; ue++ {
					for ve := v; ve < lv.NB && !found; ve++ {
						ie := min((ue+1)*tau-1, n-1)
						je := min((ve+1)*tau-1, n-1)
						i, j := u*tau, v*tau
						if ie-i <= xi || je-j <= xi || ie >= j {
							continue
						}
						d := dist.DFD(tr.Points[i:ie+1], tr.Points[j:je+1], geo.Euclidean)
						if d <= gub+1e-9 {
							found = true
						}
					}
				}
				if !found {
					t.Fatalf("GUB %g at (%d,%d) has no feasible witness (n=%d)", gub, u, v, n)
				}
			}
		}
	}
}

// TestFourWayEquivalence is the headline exactness property: BruteDP, BTM,
// GTM and GTM* agree on the optimal motif distance for random
// trajectories, across τ values including degenerate ones.
func TestFourWayEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	for trial := 0; trial < 10; trial++ {
		n := 20 + r.Intn(25)
		xi := 1 + r.Intn(3)
		tr := randTraj(r, n)
		want, err := core.BruteDP(tr, xi, euclid)
		if err != nil {
			t.Fatal(err)
		}
		btm, err := core.BTM(tr, xi, euclid)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(btm.Distance-want.Distance) > 1e-9 {
			t.Fatalf("BTM %g != BruteDP %g", btm.Distance, want.Distance)
		}
		for _, tau := range []int{1, 2, 4, 8, 64} {
			gt, err := GTM(tr, xi, tau, euclid)
			if err != nil {
				t.Fatalf("GTM tau=%d: %v", tau, err)
			}
			if math.Abs(gt.Distance-want.Distance) > 1e-9 {
				t.Fatalf("GTM tau=%d: %g != %g (n=%d xi=%d)", tau, gt.Distance, want.Distance, n, xi)
			}
			if err := traj.MotifConstraints(gt.A, gt.B, xi); err != nil {
				t.Fatalf("GTM tau=%d returned infeasible pair: %v", tau, err)
			}
			gs, err := GTMStar(tr, xi, tau, euclid)
			if err != nil {
				t.Fatalf("GTM* tau=%d: %v", tau, err)
			}
			if math.Abs(gs.Distance-want.Distance) > 1e-9 {
				t.Fatalf("GTM* tau=%d: %g != %g (n=%d xi=%d)", tau, gs.Distance, want.Distance, n, xi)
			}
		}
	}
}

// TestFourWayEquivalenceCross repeats equivalence for two trajectories.
func TestFourWayEquivalenceCross(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	for trial := 0; trial < 8; trial++ {
		n, m := 14+r.Intn(10), 14+r.Intn(10)
		xi := 1 + r.Intn(2)
		a, b := randTraj(r, n), randTraj(r, m)
		want, err := core.BruteDPCross(a, b, xi, euclid)
		if err != nil {
			t.Fatal(err)
		}
		for _, tau := range []int{2, 4} {
			gt, err := GTMCross(a, b, xi, tau, euclid)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(gt.Distance-want.Distance) > 1e-9 {
				t.Fatalf("GTMCross tau=%d: %g != %g", tau, gt.Distance, want.Distance)
			}
			gs, err := GTMStarCross(a, b, xi, tau, euclid)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(gs.Distance-want.Distance) > 1e-9 {
				t.Fatalf("GTM*Cross tau=%d: %g != %g", tau, gs.Distance, want.Distance)
			}
		}
	}
}

func TestGTMValidation(t *testing.T) {
	tr := randTraj(rand.New(rand.NewSource(36)), 30)
	if _, err := GTM(tr, -1, 4, euclid); err == nil {
		t.Error("negative xi should error")
	}
	if _, err := GTM(tr, 2, 0, euclid); err == nil {
		t.Error("zero tau should error")
	}
	short := randTraj(rand.New(rand.NewSource(37)), 6)
	if _, err := GTM(short, 5, 4, euclid); err != core.ErrTooShort {
		t.Errorf("want ErrTooShort, got %v", err)
	}
	// Non-power-of-two tau must be normalized, not rejected.
	if _, err := GTM(tr, 2, 5, euclid); err != nil {
		t.Errorf("tau=5 should be normalized: %v", err)
	}
}

func TestGTMStatsPopulated(t *testing.T) {
	r := rand.New(rand.NewSource(38))
	tr := randTraj(r, 80)
	res, err := GTM(tr, 4, 8, euclid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Group.Levels != 3 { // 8 -> 4 -> 2
		t.Errorf("Levels = %d, want 3", res.Group.Levels)
	}
	if res.Group.GroupPairs == 0 {
		t.Error("no group pairs counted")
	}
	if res.Group.PointCells == 0 {
		t.Error("no point cells counted")
	}
	star, err := GTMStar(tr, 4, 8, euclid)
	if err != nil {
		t.Fatal(err)
	}
	if star.Group.Levels != 1 {
		t.Errorf("GTM* Levels = %d, want 1", star.Group.Levels)
	}
	// GTM* must hold dramatically less memory than GTM (no dG matrix).
	if star.Stats.PeakBytes >= res.Stats.PeakBytes {
		t.Errorf("GTM* bytes %d >= GTM bytes %d", star.Stats.PeakBytes, res.Stats.PeakBytes)
	}
}

// TestGroupPruningReducesWork checks the motivation for §5: with a planted
// strong motif, GTM's point-level phase should touch far fewer candidate
// subsets than BTM processes in total enumeration terms.
func TestGroupPruningReducesWork(t *testing.T) {
	r := rand.New(rand.NewSource(39))
	// Trajectory with an exact repeat far apart.
	route := make([]geo.Point, 30)
	for k := range route {
		route[k] = geo.Point{Lng: float64(k) * 0.01, Lat: math.Sin(float64(k) / 3)}
	}
	var pts []geo.Point
	for k := 0; k < 60; k++ {
		pts = append(pts, geo.Point{Lng: 50 + r.Float64()*10, Lat: 50 + r.Float64()*10})
	}
	pts = append(pts, route...)
	for k := 0; k < 60; k++ {
		pts = append(pts, geo.Point{Lng: -50 - r.Float64()*10, Lat: -50 - r.Float64()*10})
	}
	for _, p := range route {
		pts = append(pts, geo.Point{Lng: p.Lng + 0.001, Lat: p.Lat + 0.001})
	}
	tr := traj.FromPoints(pts)

	btm, err := core.BTM(tr, 20, euclid)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := GTM(tr, 20, 16, euclid)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gt.Distance-btm.Distance) > 1e-9 {
		t.Fatalf("distances disagree: %g vs %g", gt.Distance, btm.Distance)
	}
	if gt.Group.PointCells >= btm.Stats.Subsets {
		t.Errorf("GTM point cells %d not reduced vs BTM subsets %d",
			gt.Group.PointCells, btm.Stats.Subsets)
	}
}
