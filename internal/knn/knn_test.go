package knn

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"trajmotif/internal/datagen"
	"trajmotif/internal/dist"
	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

func randWalk(r *rand.Rand, n int, cx, cy float64) *traj.Trajectory {
	pts := make([]geo.Point, n)
	x, y := cx, cy
	for i := range pts {
		x += r.Float64()*2 - 1
		y += r.Float64()*2 - 1
		pts[i] = geo.Point{Lng: x, Lat: y}
	}
	return traj.FromPoints(pts)
}

// TestNearestMatchesBruteForce is the correctness anchor: the pruned
// search returns exactly the brute-force k nearest for random datasets.
func TestNearestMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	for trial := 0; trial < 25; trial++ {
		query := randWalk(r, 10+r.Intn(15), 0, 0)
		var ds []*traj.Trajectory
		for i := 0; i < 12; i++ {
			ds = append(ds, randWalk(r, 8+r.Intn(15), r.Float64()*30-15, r.Float64()*30-15))
		}
		k := 1 + r.Intn(5)
		got, st, err := Nearest(query, ds, k, &Options{Dist: geo.Euclidean})
		if err != nil {
			t.Fatal(err)
		}
		// Brute force.
		type nd struct {
			idx int
			d   float64
		}
		var all []nd
		for i, tr := range ds {
			all = append(all, nd{i, dist.DFD(query.Points, tr.Points, geo.Euclidean)})
		}
		for x := 0; x < len(all); x++ {
			for y := x + 1; y < len(all); y++ {
				if all[y].d < all[x].d || (all[y].d == all[x].d && all[y].idx < all[x].idx) {
					all[x], all[y] = all[y], all[x]
				}
			}
		}
		if len(got) != k {
			t.Fatalf("returned %d, want %d", len(got), k)
		}
		for i := 0; i < k; i++ {
			if math.Abs(got[i].Distance-all[i].d) > 1e-9 {
				t.Fatalf("trial %d rank %d: got (%d, %g), want (%d, %g)",
					trial, i, got[i].Index, got[i].Distance, all[i].idx, all[i].d)
			}
		}
		if st.Exact+st.AbandonedEarly+st.SkippedByLB > st.Candidates {
			t.Errorf("stats overcount: %+v", st)
		}
	}
}

func TestNearestPruning(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	query := randWalk(r, 40, 0, 0)
	var ds []*traj.Trajectory
	// Three near twins, many far decoys.
	for i := 0; i < 3; i++ {
		pts := make([]geo.Point, query.Len())
		for k, p := range query.Points {
			pts[k] = geo.Point{Lng: p.Lng + r.Float64()*0.2, Lat: p.Lat + r.Float64()*0.2}
		}
		ds = append(ds, traj.FromPoints(pts))
	}
	for i := 0; i < 30; i++ {
		ds = append(ds, randWalk(r, 40, 100+r.Float64()*50, 60+r.Float64()*20))
	}
	got, st, err := Nearest(query, ds, 3, &Options{Dist: geo.Euclidean})
	if err != nil {
		t.Fatal(err)
	}
	for _, nb := range got {
		if nb.Index >= 3 {
			t.Errorf("decoy %d ranked in top-3", nb.Index)
		}
	}
	if st.SkippedByLB == 0 {
		t.Error("lower bounds never pruned a far decoy")
	}
	if st.Exact >= st.Candidates {
		t.Error("every candidate went through a full DFD")
	}
}

func TestNearestEdgeCases(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	q := randWalk(r, 10, 0, 0)
	ds := []*traj.Trajectory{randWalk(r, 10, 1, 1), randWalk(r, 10, 2, 2)}

	if _, _, err := Nearest(q, ds, 0, nil); err == nil {
		t.Error("k=0 should error")
	}
	if _, _, err := Nearest(nil, ds, 1, nil); err == nil {
		t.Error("nil query should error")
	}
	if _, _, err := Nearest(q, []*traj.Trajectory{nil}, 1, nil); err == nil {
		t.Error("nil candidate should error")
	}
	// k larger than dataset returns everything.
	got, _, err := Nearest(q, ds, 10, &Options{Dist: geo.Euclidean})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("k>len returned %d", len(got))
	}
	// Empty dataset returns empty result.
	got, _, err = Nearest(q, nil, 3, &Options{Dist: geo.Euclidean})
	if err != nil || len(got) != 0 {
		t.Errorf("empty dataset: %v, %d results", err, len(got))
	}
}

// TestDFDCapped pins the kernel contract the search relies on, now served
// by dist.DFDCapped: exceeded == false means the value is exact, and an
// abandoned computation returns a lower bound at or above the cap.
func TestDFDCapped(t *testing.T) {
	r := rand.New(rand.NewSource(84))
	for trial := 0; trial < 100; trial++ {
		a := randWalk(r, 5+r.Intn(10), 0, 0)
		b := randWalk(r, 5+r.Intn(10), r.Float64()*5, r.Float64()*5)
		exact := dist.DFD(a.Points, b.Points, geo.Euclidean)

		// Uncapped must match exactly.
		d, exceeded := dist.DFDCapped(a.Points, b.Points, geo.Euclidean, math.Inf(1))
		if exceeded || math.Abs(d-exact) > 1e-9 {
			t.Fatalf("uncapped: %g (exceeded=%v), want %g", d, exceeded, exact)
		}
		// Generous cap must also complete with the exact value.
		d, exceeded = dist.DFDCapped(a.Points, b.Points, geo.Euclidean, exact*2+1)
		if exceeded || math.Abs(d-exact) > 1e-9 {
			t.Fatalf("generous cap: %g (exceeded=%v), want %g", d, exceeded, exact)
		}
		// A cap below the true distance may abandon with a lower bound at
		// or above the cap, but must never report a wrong completed value.
		d, exceeded = dist.DFDCapped(a.Points, b.Points, geo.Euclidean, exact/2)
		if exceeded {
			if d > exact+1e-9 || d < exact/2 {
				t.Fatalf("abandoned value %g outside [cap %g, exact %g]", d, exact/2, exact)
			}
		} else if math.Abs(d-exact) > 1e-9 {
			t.Fatalf("tight cap completed with wrong value %g, want %g", d, exact)
		}
	}
}

// TestNearestTieBreakByIndex is the regression for the tie-breaking bug:
// a candidate whose exact distance equals the current k-th best could
// never displace a higher-index incumbent (replacement required d < kth,
// and the lb >= kth early break dropped it first), so the reported set
// was not the promised lexicographic top-k.
//
// Construction (planar Euclidean, 3-4-5 triangles so every distance is an
// exact float): both candidates are at DFD exactly 5 from the query, but
// candidate 1 has matching endpoints (lower bound 0) and is processed
// first, while candidate 0's lower bound equals the true distance — the
// old code broke before ever computing it.
func TestNearestTieBreakByIndex(t *testing.T) {
	q := traj.FromPoints([]geo.Point{{Lng: 0, Lat: 0}, {Lng: 6, Lat: 0}, {Lng: 12, Lat: 0}})
	a := traj.FromPoints([]geo.Point{{Lng: 0, Lat: 5}, {Lng: 6, Lat: 5}, {Lng: 12, Lat: 5}})
	b := traj.FromPoints([]geo.Point{{Lng: 0, Lat: 0}, {Lng: 3, Lat: 4}, {Lng: 6, Lat: 0}, {Lng: 12, Lat: 0}})
	da := dist.DFD(q.Points, a.Points, geo.Euclidean)
	db := dist.DFD(q.Points, b.Points, geo.Euclidean)
	if da != 5 || db != 5 {
		t.Fatalf("construction broken: DFD(q,a)=%v DFD(q,b)=%v, want exactly 5", da, db)
	}

	got, _, err := Nearest(q, []*traj.Trajectory{a, b}, 1, &Options{Dist: geo.Euclidean})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Index != 0 || got[0].Distance != 5 {
		t.Fatalf("got %+v, want the lower-index tie (index 0, distance 5)", got)
	}
}

// TestNearestLexicographicProperty: on duplicate-heavy datasets (ties
// everywhere) the reported set must equal the brute-force lexicographic
// (distance, index) top-k — indexes included, not just distances.
func TestNearestLexicographicProperty(t *testing.T) {
	r := rand.New(rand.NewSource(85))
	for trial := 0; trial < 30; trial++ {
		query := randWalk(r, 8+r.Intn(8), 0, 0)
		// A few base shapes, each repeated several times: equal distances
		// are the norm, so index tie-breaking decides most of the result.
		var ds []*traj.Trajectory
		var bases []*traj.Trajectory
		for i := 0; i < 4; i++ {
			bases = append(bases, randWalk(r, 8+r.Intn(8), r.Float64()*20-10, r.Float64()*20-10))
		}
		for i := 0; i < 12; i++ {
			ds = append(ds, bases[r.Intn(len(bases))])
		}
		k := 1 + r.Intn(6)
		got, _, err := Nearest(query, ds, k, &Options{Dist: geo.Euclidean})
		if err != nil {
			t.Fatal(err)
		}
		type nd struct {
			idx int
			d   float64
		}
		var all []nd
		for i, tr := range ds {
			all = append(all, nd{i, dist.DFD(query.Points, tr.Points, geo.Euclidean)})
		}
		sort.Slice(all, func(x, y int) bool {
			if all[x].d != all[y].d {
				return all[x].d < all[y].d
			}
			return all[x].idx < all[y].idx
		})
		if len(got) != k {
			t.Fatalf("trial %d: returned %d, want %d", trial, len(got), k)
		}
		for i := 0; i < k; i++ {
			if got[i].Index != all[i].idx || got[i].Distance != all[i].d {
				t.Fatalf("trial %d rank %d: got (%d, %g), want (%d, %g)",
					trial, i, got[i].Index, got[i].Distance, all[i].idx, all[i].d)
			}
		}
	}
}

func TestNearestOnFleet(t *testing.T) {
	// Ten trucks from the same depot; the query's nearest neighbours must
	// be trucks, never the baboon decoy.
	var ds []*traj.Trajectory
	for seed := int64(1); seed <= 10; seed++ {
		tr := datagen.Truck(datagen.Config{Seed: seed, N: 150})
		ds = append(ds, tr)
	}
	ds = append(ds, datagen.Baboon(datagen.Config{Seed: 1, N: 150}))
	query := datagen.Truck(datagen.Config{Seed: 99, N: 150})

	got, _, err := Nearest(query, ds, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, nb := range got {
		if nb.Index == 10 {
			t.Error("the Kenyan baboon is not a plausible Athens truck")
		}
	}
}
