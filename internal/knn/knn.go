// Package knn implements k-nearest-trajectory search under the discrete
// Fréchet distance — the "most similar trajectory search" operation of
// the paper's reference [9] (Frentzos et al., ICDE'07), rebuilt on the
// same lower-bound philosophy as the motif engine:
//
//  1. every candidate gets a cheap lower bound (endpoint distances and
//     bounding-box probes, both O(1) after one pass over the points);
//  2. candidates are visited in ascending lower-bound order;
//  3. the exact DFD dynamic program runs with an early-abandon cap equal
//     to the current k-th best distance, so hopeless candidates die after
//     a few rows;
//  4. the search stops as soon as the next lower bound exceeds the k-th
//     best — the remaining candidates cannot improve the result.
//
// With Options.Index set, a spatial MBR index supplies a free per-
// candidate pre-bound (spatial MinDist, pure arithmetic over cached
// boxes) that is itself a lower bound on the cheap lower bound above, so
// candidates are refined lazily: a candidate whose MinDist already
// exceeds the k-th best is skipped without a single ground-distance
// evaluation or point scan. Because refinement happens in the exact
// ascending (bound, index) order the linear scan would have used, the
// indexed search visits the same dynamic programs against the same caps
// in the same order — results and the pre-existing Stats counters are
// byte-identical with and without the index (proven by the parity suite
// in knn_parity_test.go); only IndexConsulted/IndexPruned differ.
package knn

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"trajmotif/internal/dist"
	"trajmotif/internal/geo"
	"trajmotif/internal/spatial"
	"trajmotif/internal/traj"
)

// Neighbor is one search result.
type Neighbor struct {
	// Index into the dataset slice.
	Index int
	// Distance is the exact DFD to the query.
	Distance float64
}

// Stats describes the pruning achieved by a search.
type Stats struct {
	Candidates     int64 // dataset size
	SkippedByLB    int64 // never reached the DP
	AbandonedEarly int64 // DP started but died against the cap
	Exact          int64 // full DFD computations that completed
	// IndexConsulted counts spatial-index consultations (one per indexed
	// search); IndexPruned counts candidates the index rejected before
	// any ground-distance work — a subset of SkippedByLB, which stays
	// byte-identical to the index-free scan.
	IndexConsulted int64
	IndexPruned    int64
}

// Options tunes the search; zero value uses haversine.
type Options struct {
	Dist geo.DistanceFunc
	// Index, when non-nil, enables MBR pre-bounding. It must be keyed by
	// dataset position with MBRs equal to spatial.Bound of each
	// trajectory's points (spatial.BuildIndex, or the store's cached
	// boxes), and built for the same ground distance as Dist. Results
	// and all non-Index Stats fields are unchanged by it.
	Index *spatial.Index
}

func (o *Options) dist() geo.DistanceFunc {
	if o == nil || o.Dist == nil {
		return geo.Haversine
	}
	return o.Dist
}

// Nearest returns the k trajectories of dataset most similar to query
// under DFD, ascending by distance (ties broken by index). Fewer than k
// are returned when the dataset is smaller.
func Nearest(query *traj.Trajectory, dataset []*traj.Trajectory, k int, opt *Options) ([]Neighbor, Stats, error) {
	if k < 1 {
		return nil, Stats{}, fmt.Errorf("knn: k must be at least 1, got %d", k)
	}
	if query == nil || query.Len() == 0 {
		return nil, Stats{}, fmt.Errorf("knn: empty query")
	}
	df := opt.dist()
	st := Stats{Candidates: int64(len(dataset))}
	for i, t := range dataset {
		if t == nil || t.Len() == 0 {
			return nil, Stats{}, fmt.Errorf("knn: nil or empty trajectory at index %d", i)
		}
	}

	q := query.Points
	qBox := spatial.Bound(q)

	// On the haversine metric the query side of every bound touches the
	// same few fixed points for all candidates, so their cos(lat) factors
	// are hoisted out of the per-candidate loop once (HaversinePrepared
	// is bit-identical to Haversine — same core arithmetic).
	hav := geo.IsHaversine(df)
	var qFirst, qLast geo.PreparedPoint
	var qProbes [3]geo.PreparedPoint
	if hav {
		qFirst = geo.Prepare(q[0])
		qLast = geo.Prepare(q[len(q)-1])
		for k, idx := range [...]int{0, len(q) / 2, len(q) - 1} {
			qProbes[k] = geo.Prepare(q[idx])
		}
	}

	// lowerBound is the cheap per-candidate bound of the package comment,
	// shared verbatim by both paths (pBox must be the candidate's MBR).
	lowerBound := func(i int, pBox spatial.MBR) float64 {
		p := dataset[i].Points
		var lb float64
		if hav {
			lb = math.Max(
				geo.HaversinePrepared(qFirst.P, p[0], qFirst.CosLat, geo.CosLat(p[0])),
				geo.HaversinePrepared(qLast.P, p[len(p)-1], qLast.CosLat, geo.CosLat(p[len(p)-1])))
			lb = math.Max(lb, probeBoundPrepared(qProbes[:], pBox))
		} else {
			lb = math.Max(df(q[0], p[0]), df(q[len(q)-1], p[len(p)-1]))
			lb = math.Max(lb, probeBound(q, pBox, df))
		}
		return math.Max(lb, probeBound(p, qBox, df))
	}

	// Max-heap of the best k neighbors found so far, ordered by
	// (distance, index) so the root is the lexicographically worst
	// incumbent. The cap and the early break must keep candidates with
	// d == kth alive: such a candidate still displaces a higher-index
	// incumbent under the promised tie-breaking, so only strictly worse
	// ones (lb > kth, or a DP proven >= nextafter(kth)) are dropped.
	h := &nbrHeap{}
	heap.Init(h)
	kth := math.Inf(1)
	// process runs the exact DP for one candidate against the current
	// cap; both paths call it for the same candidates in the same order.
	process := func(idx int) {
		capd := math.Inf(1)
		if h.Len() == k {
			capd = math.Nextafter(kth, math.Inf(1))
		}
		d, exceeded := dist.DFDCapped(q, dataset[idx].Points, df, capd)
		if exceeded {
			st.AbandonedEarly++
			return
		}
		st.Exact++
		nb := Neighbor{Index: idx, Distance: d}
		if h.Len() < k {
			heap.Push(h, nb)
		} else if nbrLess(nb, (*h)[0]) {
			(*h)[0] = nb
			heap.Fix(h, 0)
		}
		if h.Len() == k {
			kth = (*h)[0].Distance
		}
	}

	if opt != nil && opt.Index != nil {
		if err := nearestIndexed(dataset, qBox, opt.Index, k, h, &kth, &st, lowerBound, process); err != nil {
			return nil, Stats{}, err
		}
	} else {
		// Linear scan: cheap lower bounds for every candidate, visited in
		// ascending (lb, index) order.
		type cand struct {
			idx int
			lb  float64
		}
		cands := make([]cand, 0, len(dataset))
		for i, t := range dataset {
			cands = append(cands, cand{idx: i, lb: lowerBound(i, spatial.Bound(t.Points))})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].lb != cands[b].lb {
				return cands[a].lb < cands[b].lb
			}
			return cands[a].idx < cands[b].idx
		})
		for _, c := range cands {
			if h.Len() == k && c.lb > kth {
				break
			}
			process(c.idx)
		}
	}
	// Every candidate is either processed or skipped before its DP; the
	// identity holds on the break-free path too (the difference is 0).
	st.SkippedByLB = st.Candidates - st.AbandonedEarly - st.Exact

	out := make([]Neighbor, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Neighbor)
	}
	sort.Slice(out, func(a, b int) bool { return nbrLess(out[a], out[b]) })
	return out, st, nil
}

// nearestIndexed drains candidates through a lazy refinement heap keyed
// by (bound, index): every candidate enters under its spatial MinDist
// (≤ the endpoint distance, hence ≤ the full lower bound); popping an
// unrefined candidate upgrades it to the full lower bound and re-queues
// it. Refined candidates therefore pop in exactly the ascending
// (lb, index) order the linear scan sorts into, so the DP sequence, the
// cap evolution and every counter match the scan bit for bit; the gain
// is that candidates whose MinDist never drops below the k-th best are
// popped refined-less at the end — or not at all — and counted as
// IndexPruned without any point scan or ground-distance call.
func nearestIndexed(dataset []*traj.Trajectory, qBox spatial.MBR, ix *spatial.Index, k int,
	h *nbrHeap, kth *float64, st *Stats,
	lowerBound func(int, spatial.MBR) float64, process func(int)) error {

	st.IndexConsulted = 1
	lh := make(lazyHeap, 0, len(dataset))
	for i := range dataset {
		mb, ok := ix.MBROf(i)
		if !ok {
			return fmt.Errorf("knn: spatial index has no entry for candidate %d", i)
		}
		lh = append(lh, lazyCand{idx: i, mbr: mb, bound: ix.MinDist(qBox, mb)})
	}
	heap.Init(&lh)
	for lh.Len() > 0 {
		if h.Len() == k && lh[0].bound > *kth {
			// Everything left bounds above the k-th best: the linear scan
			// would have skipped it all too. Unrefined leftovers never
			// cost a ground-distance call — that is the index's win.
			break
		}
		c := heap.Pop(&lh).(lazyCand)
		if !c.refined {
			c.bound = lowerBound(c.idx, c.mbr)
			c.refined = true
			heap.Push(&lh, c)
			continue
		}
		process(c.idx)
	}
	for _, c := range lh {
		if !c.refined {
			st.IndexPruned++
		}
	}
	return nil
}

// lazyCand is one candidate in the indexed search: bound is the spatial
// MinDist until refined, then the full cheap lower bound.
type lazyCand struct {
	idx     int
	bound   float64
	refined bool
	mbr     spatial.MBR
}

// lazyHeap is a min-heap over (bound, idx) — a strict total order, so
// the pop sequence is deterministic.
type lazyHeap []lazyCand

func (h lazyHeap) Len() int { return len(h) }
func (h lazyHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].idx < h[j].idx
}
func (h lazyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *lazyHeap) Push(x any)   { *h = append(*h, x.(lazyCand)) }
func (h *lazyHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// nbrLess is the result order: ascending distance, ties broken by index.
func nbrLess(a, b Neighbor) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.Index < b.Index
}

type nbrHeap []Neighbor

func (h nbrHeap) Len() int           { return len(h) }
func (h nbrHeap) Less(i, j int) bool { return nbrLess(h[j], h[i]) } // max-heap on (distance, index)
func (h nbrHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nbrHeap) Push(x any)        { *h = append(*h, x.(Neighbor)) }
func (h *nbrHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// probeBoundPrepared is probeBound over pre-selected query probes with
// hoisted cos(lat) factors; only the clamp point's factor is computed per
// call. Bit-identical to probeBound on the same probes under haversine.
func probeBoundPrepared(probes []geo.PreparedPoint, bb spatial.MBR) float64 {
	lb := 0.0
	for _, pp := range probes {
		c := bb.Clamp(pp.P)
		if d := geo.HaversinePrepared(pp.P, c, pp.CosLat, geo.CosLat(c)); d > lb {
			lb = d
		}
	}
	return lb
}

// probeBound lower-bounds DFD(a, ·) for any trajectory inside bb: every
// coupling matches each probed point of a to some point in bb, so the
// max probe-to-box distance is a lower bound. Probes first, middle, last.
func probeBound(a []geo.Point, bb spatial.MBR, df geo.DistanceFunc) float64 {
	lb := 0.0
	for _, idx := range [...]int{0, len(a) / 2, len(a) - 1} {
		p := a[idx]
		if d := df(p, bb.Clamp(p)); d > lb {
			lb = d
		}
	}
	return lb
}
