// Package knn implements index-free k-nearest-trajectory search under the
// discrete Fréchet distance — the "most similar trajectory search" operation
// of the paper's reference [9] (Frentzos et al., ICDE'07), rebuilt on the
// same lower-bound philosophy as the motif engine:
//
//  1. every candidate gets a cheap lower bound (endpoint distances and
//     bounding-box probes, both O(1) after one pass over the points);
//  2. candidates are visited in ascending lower-bound order;
//  3. the exact DFD dynamic program runs with an early-abandon cap equal
//     to the current k-th best distance, so hopeless candidates die after
//     a few rows;
//  4. the search stops as soon as the next lower bound exceeds the k-th
//     best — the remaining candidates cannot improve the result.
package knn

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"trajmotif/internal/dist"
	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

// Neighbor is one search result.
type Neighbor struct {
	// Index into the dataset slice.
	Index int
	// Distance is the exact DFD to the query.
	Distance float64
}

// Stats describes the pruning achieved by a search.
type Stats struct {
	Candidates     int64 // dataset size
	SkippedByLB    int64 // never reached the DP
	AbandonedEarly int64 // DP started but died against the cap
	Exact          int64 // full DFD computations that completed
}

// Options tunes the search; zero value uses haversine.
type Options struct {
	Dist geo.DistanceFunc
}

func (o *Options) dist() geo.DistanceFunc {
	if o == nil || o.Dist == nil {
		return geo.Haversine
	}
	return o.Dist
}

// Nearest returns the k trajectories of dataset most similar to query
// under DFD, ascending by distance (ties broken by index). Fewer than k
// are returned when the dataset is smaller.
func Nearest(query *traj.Trajectory, dataset []*traj.Trajectory, k int, opt *Options) ([]Neighbor, Stats, error) {
	if k < 1 {
		return nil, Stats{}, fmt.Errorf("knn: k must be at least 1, got %d", k)
	}
	if query == nil || query.Len() == 0 {
		return nil, Stats{}, fmt.Errorf("knn: empty query")
	}
	df := opt.dist()
	st := Stats{Candidates: int64(len(dataset))}

	// Cheap lower bounds per candidate.
	type cand struct {
		idx int
		lb  float64
	}
	q := query.Points
	qBox := boundingBox(q)
	cands := make([]cand, 0, len(dataset))
	for i, t := range dataset {
		if t == nil || t.Len() == 0 {
			return nil, Stats{}, fmt.Errorf("knn: nil or empty trajectory at index %d", i)
		}
		p := t.Points
		lb := math.Max(df(q[0], p[0]), df(q[len(q)-1], p[len(p)-1]))
		lb = math.Max(lb, probeBound(q, boundingBox(p), df))
		lb = math.Max(lb, probeBound(p, qBox, df))
		cands = append(cands, cand{idx: i, lb: lb})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].lb != cands[b].lb {
			return cands[a].lb < cands[b].lb
		}
		return cands[a].idx < cands[b].idx
	})

	// Max-heap of the best k neighbors found so far, ordered by
	// (distance, index) so the root is the lexicographically worst
	// incumbent. The cap and the early break must keep candidates with
	// d == kth alive: such a candidate still displaces a higher-index
	// incumbent under the promised tie-breaking, so only strictly worse
	// ones (lb > kth, or a DP proven >= nextafter(kth)) are dropped.
	h := &nbrHeap{}
	heap.Init(h)
	kth := math.Inf(1)
	for ci, c := range cands {
		if h.Len() == k && c.lb > kth {
			st.SkippedByLB = int64(len(cands) - ci)
			break
		}
		capd := math.Inf(1)
		if h.Len() == k {
			capd = math.Nextafter(kth, math.Inf(1))
		}
		d, exceeded := dist.DFDCapped(q, dataset[c.idx].Points, df, capd)
		if exceeded {
			st.AbandonedEarly++
			continue
		}
		st.Exact++
		nb := Neighbor{Index: c.idx, Distance: d}
		if h.Len() < k {
			heap.Push(h, nb)
		} else if nbrLess(nb, (*h)[0]) {
			(*h)[0] = nb
			heap.Fix(h, 0)
		}
		if h.Len() == k {
			kth = (*h)[0].Distance
		}
	}

	out := make([]Neighbor, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Neighbor)
	}
	sort.Slice(out, func(a, b int) bool { return nbrLess(out[a], out[b]) })
	return out, st, nil
}

// nbrLess is the result order: ascending distance, ties broken by index.
func nbrLess(a, b Neighbor) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.Index < b.Index
}

type nbrHeap []Neighbor

func (h nbrHeap) Len() int           { return len(h) }
func (h nbrHeap) Less(i, j int) bool { return nbrLess(h[j], h[i]) } // max-heap on (distance, index)
func (h nbrHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nbrHeap) Push(x any)        { *h = append(*h, x.(Neighbor)) }
func (h *nbrHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type box struct {
	minLat, maxLat, minLng, maxLng float64
}

func boundingBox(pts []geo.Point) box {
	b := box{minLat: math.Inf(1), maxLat: math.Inf(-1), minLng: math.Inf(1), maxLng: math.Inf(-1)}
	for _, p := range pts {
		b.minLat = math.Min(b.minLat, p.Lat)
		b.maxLat = math.Max(b.maxLat, p.Lat)
		b.minLng = math.Min(b.minLng, p.Lng)
		b.maxLng = math.Max(b.maxLng, p.Lng)
	}
	return b
}

func clampToBox(p geo.Point, b box) geo.Point {
	q := p
	if q.Lat < b.minLat {
		q.Lat = b.minLat
	} else if q.Lat > b.maxLat {
		q.Lat = b.maxLat
	}
	if q.Lng < b.minLng {
		q.Lng = b.minLng
	} else if q.Lng > b.maxLng {
		q.Lng = b.maxLng
	}
	return q
}

func probeBound(a []geo.Point, bb box, df geo.DistanceFunc) float64 {
	lb := 0.0
	for _, idx := range [...]int{0, len(a) / 2, len(a) - 1} {
		p := a[idx]
		if d := df(p, clampToBox(p, bb)); d > lb {
			lb = d
		}
	}
	return lb
}
