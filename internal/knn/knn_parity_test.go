package knn

import (
	"math/rand"
	"reflect"
	"testing"

	"trajmotif/internal/geo"
	"trajmotif/internal/spatial"
	"trajmotif/internal/traj"
)

// geoWalk is randWalk on valid lat/lng coordinates (haversine-safe):
// a short noisy walk around a city-scale center.
func geoWalk(r *rand.Rand, n int, lat, lng float64) *traj.Trajectory {
	pts := make([]geo.Point, n)
	for i := range pts {
		lat += (r.Float64()*2 - 1) * 0.01
		lng += (r.Float64()*2 - 1) * 0.01
		pts[i] = geo.Point{Lat: lat, Lng: lng}
	}
	return traj.FromPoints(pts)
}

// parityDataset builds the corpus the tentpole's proof runs on: a few
// trajectories near the query's city and many in distant cities, so the
// index has real work (IndexPruned > 0) while twins keep the refinement
// order non-trivial. Includes single-point trajectories (degenerate
// MBRs), one per distant city.
func parityDataset(r *rand.Rand) (query *traj.Trajectory, ds []*traj.Trajectory) {
	centers := [][2]float64{{39.9, 116.4}, {37.97, 23.72}, {0.29, 36.9}, {48.85, 2.35}, {-33.87, 151.2}}
	query = geoWalk(r, 20+r.Intn(20), centers[0][0], centers[0][1])
	for i := 0; i < 6; i++ {
		ds = append(ds, geoWalk(r, 15+r.Intn(25), centers[0][0]+r.Float64()*0.05, centers[0][1]+r.Float64()*0.05))
	}
	for _, c := range centers[1:] {
		for i := 0; i < 5; i++ {
			ds = append(ds, geoWalk(r, 15+r.Intn(25), c[0]+r.Float64()*0.2, c[1]+r.Float64()*0.2))
		}
		ds = append(ds, traj.FromPoints([]geo.Point{{Lat: c[0], Lng: c[1]}}))
	}
	return query, ds
}

// TestNearestIndexParity is the tentpole proof for knn: across metrics,
// trials and k values (1 through beyond the dataset size), the indexed
// search returns results AND effort stats byte-identical to the linear
// scan, while actually pruning (cumulative IndexPruned > 0).
func TestNearestIndexParity(t *testing.T) {
	for _, df := range []geo.DistanceFunc{geo.Haversine, geo.Euclidean} {
		r := rand.New(rand.NewSource(71))
		var pruned int64
		for trial := 0; trial < 8; trial++ {
			query, ds := parityDataset(r)
			ix, err := spatial.BuildIndex(ds, df)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 3, 7, len(ds), len(ds) + 5} {
				plain, pst, err1 := Nearest(query, ds, k, &Options{Dist: df})
				fast, fst, err2 := Nearest(query, ds, k, &Options{Dist: df, Index: ix})
				if err1 != nil || err2 != nil {
					t.Fatalf("trial %d k=%d: errors %v / %v", trial, k, err1, err2)
				}
				if fst.IndexConsulted != 1 {
					t.Fatalf("trial %d k=%d: IndexConsulted = %d", trial, k, fst.IndexConsulted)
				}
				pruned += fst.IndexPruned
				fst.IndexConsulted, fst.IndexPruned = 0, 0
				if !reflect.DeepEqual(plain, fast) {
					t.Fatalf("trial %d k=%d: results differ\nplain %+v\nindexed %+v", trial, k, plain, fast)
				}
				if pst != fst {
					t.Fatalf("trial %d k=%d: stats differ\nplain %+v\nindexed %+v", trial, k, pst, fst)
				}
			}
		}
		if pruned == 0 {
			t.Error("index never pruned a candidate on the parity corpus")
		}
	}
}

// TestNearestIndexEdges covers the inputs a pre-filter can silently
// mishandle: k exceeding the dataset, k = 0, an empty dataset, and a
// stale index missing a candidate.
func TestNearestIndexEdges(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	q := geoWalk(r, 10, 40, -74)
	ds := []*traj.Trajectory{geoWalk(r, 10, 40.1, -74.1), geoWalk(r, 10, 51.5, 0)}
	ix, err := spatial.BuildIndex(ds, nil)
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := Nearest(q, ds, 0, &Options{Index: ix}); err == nil {
		t.Error("k=0 with index should error")
	}
	got, st, err := Nearest(q, ds, 10, &Options{Index: ix})
	if err != nil || len(got) != 2 {
		t.Errorf("k>len with index: %v, %d results", err, len(got))
	}
	if st.IndexPruned != 0 {
		t.Errorf("k>len pruned %d candidates it had to return", st.IndexPruned)
	}

	empty, err := spatial.BuildIndex(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err = Nearest(q, nil, 3, &Options{Index: empty})
	if err != nil || len(got) != 0 {
		t.Errorf("empty dataset with index: %v, %d results", err, len(got))
	}

	// An index that does not cover the dataset is a caller bug, not a
	// silent wrong answer.
	if _, _, err := Nearest(q, ds, 1, &Options{Index: empty}); err == nil {
		t.Error("index missing the dataset should error")
	}

	// Single-point query and candidates (degenerate MBRs everywhere).
	p1 := traj.FromPoints([]geo.Point{{Lat: 40, Lng: -74}})
	ones := []*traj.Trajectory{
		traj.FromPoints([]geo.Point{{Lat: 40.001, Lng: -74}}),
		traj.FromPoints([]geo.Point{{Lat: -33, Lng: 151}}),
	}
	ix1, err := spatial.BuildIndex(ones, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, pst, err1 := Nearest(p1, ones, 1, nil)
	fast, fst, err2 := Nearest(p1, ones, 1, &Options{Index: ix1})
	if err1 != nil || err2 != nil {
		t.Fatalf("single-point: %v / %v", err1, err2)
	}
	fst.IndexConsulted, fst.IndexPruned = 0, 0
	if !reflect.DeepEqual(plain, fast) || pst != fst {
		t.Fatalf("single-point parity broke: %+v %+v vs %+v %+v", plain, pst, fast, fst)
	}
	if plain[0].Index != 0 {
		t.Fatalf("nearest single point = %d, want 0", plain[0].Index)
	}
}
