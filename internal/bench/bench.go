// Package bench regenerates every table and figure of the paper's
// evaluation (§6) as text tables: workload generation, parameter sweeps,
// all four algorithms, and the pruning/space instrumentation. Each
// experiment is registered under the identifier used in DESIGN.md's
// per-experiment index (T1, F2, F13, ... F21) and is runnable through
// cmd/motifbench or the benchmarks in the repository root.
//
// Absolute numbers differ from the paper (Go on this machine vs the
// authors' C++/i7 testbed, synthetic stand-ins for the real datasets); the
// experiments reproduce the paper's *shapes*: which method wins, the
// relative factors, and where behaviour crosses over. EXPERIMENTS.md
// records paper-vs-measured for each artifact.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
	"unicode/utf8"

	"trajmotif/internal/core"
	"trajmotif/internal/datagen"
	"trajmotif/internal/traj"
)

// Scale selects experiment sizing.
type Scale string

const (
	// ScaleSmall completes the full suite in minutes on one core; the
	// default for CI and the root benchmarks.
	ScaleSmall Scale = "small"
	// ScaleFull approaches the paper's sizes (n up to 10000, ξ up to 400)
	// and can take hours, dominated by the tight-bound experiments.
	ScaleFull Scale = "full"
)

// Config parameterizes a harness run.
type Config struct {
	Scale Scale
	Seed  int64
	// BruteBudget caps each BruteDP invocation; beyond it the harness
	// reports "—", mirroring the paper's 2-hour truncation policy.
	BruteBudget time.Duration
	// Workers bounds within-search parallelism for every timed algorithm
	// run; 0 selects GOMAXPROCS. Worker count never changes results or
	// pruning counters, only wall-clock times.
	Workers int
	// Artifacts, when non-nil, is a shared grid/bound-table source (the
	// serve-mode store) threaded into every algorithm invocation: runs
	// over the same workload reuse one grid instead of rebuilding it.
	// Results are unchanged; precompute timings shrink to cache hits, so
	// leave it nil when measuring the paper's cold-start numbers.
	Artifacts core.ArtifactSource
	// CorpusDir, when set, points experiment C1 at a trajectory corpus
	// directory (.plt/.csv/.mcsv/.ndjson/.jsonl, streamed in bounded
	// memory); CorpusXi is its minimum motif length (0 selects
	// DefaultCorpusXi).
	CorpusDir string
	CorpusXi  int
	// Float32Grids threads core.Options.Float32Grids into every
	// algorithm invocation: float32 grid storage, float32-exact rather
	// than float64-exact results.
	Float32Grids bool
	// Projected routes the JSON workload's join through the projected
	// decision kernel (byte-identical, verified in-run against the
	// haversine oracle). DefaultConfig enables it.
	Projected bool
}

// opts stamps the run's worker count and artifact source onto o (nil o
// starts from the zero Options); every algorithm invocation in the
// harness routes through it.
func (c Config) opts(o *core.Options) *core.Options {
	if o == nil {
		o = &core.Options{}
	}
	o.Workers = c.Workers
	o.Artifacts = c.Artifacts
	o.Float32Grids = c.Float32Grids
	return o
}

// DefaultConfig returns the small-scale configuration.
func DefaultConfig() Config {
	return Config{Scale: ScaleSmall, Seed: 42, BruteBudget: 15 * time.Second, Projected: true}
}

func (c Config) lengths() []int {
	if c.Scale == ScaleFull {
		return []int{500, 1000, 5000, 10000}
	}
	return []int{100, 200, 400, 800}
}

func (c Config) xiFor(n int) int {
	// The paper fixes ξ=100 with n=5000 (ξ/n = 2%); keep the ratio.
	xi := n / 50
	if xi < 4 {
		xi = 4
	}
	return xi
}

func (c Config) xiSweep() (n int, xis []int) {
	if c.Scale == ScaleFull {
		return 5000, []int{100, 200, 300, 400}
	}
	return 400, []int{8, 16, 24, 32}
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string
	Paper string // which table/figure of the paper it regenerates
	Title string
	Run   func(cfg Config, w io.Writer) error
}

// Experiments returns the registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"T1", "Table 1", "similarity measures: robustness and cost", runTable1},
		{"F2", "Figure 2", "ED motif vs DFD motif on a pedestrian trajectory", runFigure2},
		{"F3", "Figure 3", "DTW vs DFD under non-uniform sampling", runFigure3},
		{"F4", "Figure 4", "symbolic baseline failure mode", runFigure4},
		{"T3", "Table 3", "lower bound computation cost, tight vs relaxed", runTable3},
		{"F13", "Figure 13", "BTM tight vs relaxed bounds, varying n", runFigure13},
		{"F14", "Figure 14", "BTM tight vs relaxed bounds, varying xi", runFigure14},
		{"F15", "Figure 15", "pruning ratio breakdown per bound", runFigure15},
		{"F16", "Figure 16", "cumulative bound variants, response time", runFigure16},
		{"F17", "Figure 17", "GTM sensitivity to group size tau", runFigure17},
		{"F18", "Figure 18", "response time vs n, all methods x datasets", runFigure18},
		{"F19", "Figure 19", "space consumption vs n", runFigure19},
		{"F20", "Figure 20", "response time vs minimum motif length xi", runFigure20},
		{"F21", "Figure 21", "two-trajectory variant, response time vs n", runFigure21},
		{"S1", "Abstract", "headline speedup: GTM vs BruteDP, measured and projected", runSpeedup},
		{"C1", "§6.1", "corpus-directory discovery via streaming ingestion", runCorpus},
	}
}

// Run executes one experiment by ID ("all" runs the whole registry).
func Run(id string, cfg Config, w io.Writer) error {
	if strings.EqualFold(id, "all") {
		for _, e := range Experiments() {
			if err := runOne(e, cfg, w); err != nil {
				return err
			}
		}
		return nil
	}
	for _, e := range Experiments() {
		if strings.EqualFold(e.ID, id) {
			return runOne(e, cfg, w)
		}
	}
	return fmt.Errorf("bench: unknown experiment %q (use one of %s or 'all')", id, idList())
}

func idList() string {
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	return strings.Join(ids, ", ")
}

func runOne(e Experiment, cfg Config, w io.Writer) error {
	fmt.Fprintf(w, "=== %s (%s): %s ===\n", e.ID, e.Paper, e.Title)
	start := time.Now()
	if err := e.Run(cfg, w); err != nil {
		return fmt.Errorf("bench %s: %w", e.ID, err)
	}
	fmt.Fprintf(w, "[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	return nil
}

// Table is a minimal aligned-text table writer.
type Table struct {
	Columns []string
	Rows    [][]string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for k, c := range t.Columns {
		widths[k] = utf8.RuneCountInString(c)
	}
	for _, row := range t.Rows {
		for k, cell := range row {
			if k < len(widths) && utf8.RuneCountInString(cell) > widths[k] {
				widths[k] = utf8.RuneCountInString(cell)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for k, cell := range cells {
			if k > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if k < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[k]-utf8.RuneCountInString(cell)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for k := range sep {
		sep[k] = strings.Repeat("-", widths[k])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// fmtDur renders a duration compactly for table cells.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// fmtBytes renders a byte count in MB like the paper's Figure 19.
func fmtBytes(b int64) string {
	return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
}

func fmtPct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

// dataset fetches one synthetic workload, cached per (name, n, seed).
var datasetCache = map[string]*traj.Trajectory{}

func dataset(name datagen.Name, n int, seed int64) *traj.Trajectory {
	key := fmt.Sprintf("%s/%d/%d", name, n, seed)
	if t, ok := datasetCache[key]; ok {
		return t
	}
	t, err := datagen.Dataset(name, datagen.Config{Seed: seed, N: n})
	if err != nil {
		panic(err) // names come from the fixed registry
	}
	datasetCache[key] = t
	return t
}

func datasetPair(name datagen.Name, n int, seed int64) (*traj.Trajectory, *traj.Trajectory) {
	a, b, err := datagen.Pair(name, datagen.Config{Seed: seed, N: n})
	if err != nil {
		panic(err)
	}
	return a, b
}

// checkAgreement asserts two algorithms returned the same optimal
// distance; every timing experiment doubles as an exactness test.
func checkAgreement(dists map[string]float64) error {
	var ref float64
	var refName string
	first := true
	for name, d := range dists {
		if math.IsNaN(d) {
			continue
		}
		if first {
			ref, refName, first = d, name, false
			continue
		}
		if math.Abs(d-ref) > 1e-6*(1+math.Abs(ref)) {
			return fmt.Errorf("algorithms disagree: %s=%g vs %s=%g", refName, ref, name, d)
		}
	}
	return nil
}

// sortedKeys returns map keys in deterministic order for table output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// timed measures one motif-discovery call, returning elapsed wall time.
func timed(f func() (*core.Result, error)) (time.Duration, *core.Result, error) {
	start := time.Now()
	res, err := f()
	return time.Since(start), res, err
}
