package bench

import (
	"math"
	"testing"

	"trajmotif/internal/dist"
	"trajmotif/internal/geo"
)

// TestMeasureRankingTable1Story pins the paper's Table 1 argument as a
// direct unit test (independent of the runTable1 harness): against a base
// curve, a geometrically closer but resampled/time-shifted copy must be
// ranked closer than a farther uniform curve by DFD, while ED, DTW and
// LCSS each mis-rank at least one of the probes.
func TestMeasureRankingTable1Story(t *testing.T) {
	curve := func(n int, offset float64) []geo.Point {
		pts := make([]geo.Point, n)
		for i := range pts {
			x := float64(i)
			pts[i] = geo.Point{Lng: x, Lat: math.Sin(x/8) + offset}
		}
		return pts
	}
	n := 64
	base := curve(n, 0)
	far := curve(n, 3) // uniform, parallel at distance 3

	// Resampled probe: follows base at offset 1, but with an oversampled
	// head and a sparse tail — same geometry, different sampling rate.
	var resampled []geo.Point
	for i := 0; i < 4*n; i++ {
		x := float64(i) * 6.0 / float64(4*n)
		resampled = append(resampled, geo.Point{Lng: x, Lat: math.Sin(x/8) + 1})
	}
	for x := 6.0; x < float64(n-1); x += 4 {
		resampled = append(resampled, geo.Point{Lng: x, Lat: math.Sin(x/8) + 1})
	}
	resampled = append(resampled, geo.Point{Lng: float64(n - 1), Lat: math.Sin(float64(n-1)/8) + 1})

	// Time-shifted probe: base with a momentary stall (five duplicated
	// samples) inserted at index 20 — geometrically identical to base.
	var shifted []geo.Point
	shifted = append(shifted, base[:20]...)
	for k := 0; k < 5; k++ {
		shifted = append(shifted, base[20])
	}
	shifted = append(shifted, base[20:]...)

	// An exact geometric twin of base, thinly sampled (every 8th point).
	var sparseTwin []geo.Point
	for i := 0; i < n; i += 8 {
		sparseTwin = append(sparseTwin, base[i])
	}
	sparseTwin = append(sparseTwin, base[n-1])

	// DFD ranks both probes correctly: the offset-1 resampled curve and
	// the distance-0 shifted copy both beat the distance-3 parallel.
	if !(dist.DFD(base, resampled, geo.Euclidean) < dist.DFD(base, far, geo.Euclidean)) {
		t.Error("DFD mis-ranked the resampled probe against the far curve")
	}
	if !(dist.DFD(base, shifted, geo.Euclidean) < dist.DFD(base, far, geo.Euclidean)) {
		t.Error("DFD mis-ranked the time-shifted probe against the far curve")
	}
	if d := dist.DFD(base, shifted, geo.Euclidean); d != 0 {
		t.Errorf("DFD(base, shifted) = %g, want 0: duplicates couple for free", d)
	}

	// ED mis-ranks both. Different lengths force truncation, which
	// misaligns everything; the stall shifts every later sample.
	ed := func(x, y []geo.Point) float64 {
		m := min(len(x), len(y))
		d, err := dist.ED(x[:m], y[:m], geo.Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if ed(base, resampled) < ed(base, far) {
		t.Error("ED unexpectedly ranked the resampled probe correctly")
	}
	if ed(base, shifted) < 0.2*ed(base, far) {
		t.Error("ED unexpectedly absorbed the time shift")
	}

	// DTW mis-ranks the resampled probe: the oversampled head contributes
	// hundreds of summed terms that swamp the geometry.
	if dist.DTW(base, resampled, geo.Euclidean) < dist.DTW(base, far, geo.Euclidean) {
		t.Error("DTW unexpectedly ranked the resampled probe correctly")
	}

	// LCSS mis-ranks by sampling density: the dense near-miss curve
	// outscores the exact but thinly sampled twin.
	if dist.LCSS(base, sparseTwin, geo.Euclidean, 1.2) >= dist.LCSS(base, resampled, geo.Euclidean, 1.2) {
		t.Error("LCSS unexpectedly preferred the exact sparse twin over the dense near-miss")
	}
}
