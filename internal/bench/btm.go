package bench

import (
	"fmt"
	"io"

	"trajmotif/internal/core"
	"trajmotif/internal/datagen"
	"trajmotif/internal/traj"
)

// tightLengths keeps the tight-bound sweeps tractable: every subset pays
// O(ξn) for its band bound, so tight BTM scales far worse than relaxed —
// which is the point of Figures 13-14, but must be sized accordingly.
func (c Config) tightLengths() []int {
	if c.Scale == ScaleFull {
		return []int{1000, 5000, 10000}
	}
	return []int{100, 200, 400}
}

// runFigure13 compares tight and relaxed bounds while varying n:
// pruning ratio (13a) and response time (13b).
func runFigure13(cfg Config, w io.Writer) error {
	tbl := &Table{Columns: []string{"n", "xi", "tight pruned", "relaxed pruned", "tight time", "relaxed time"}}
	for _, n := range cfg.tightLengths() {
		xi := cfg.xiFor(n)
		t := dataset(datagen.GeoLifeName, n, cfg.Seed)
		tightDur, tightRes, err := timed(func() (*core.Result, error) {
			return core.BTM(t, xi, cfg.opts(&core.Options{Bounds: core.BoundsTight}))
		})
		if err != nil {
			return err
		}
		relDur, relRes, err := timed(func() (*core.Result, error) {
			return core.BTM(t, xi, cfg.opts(nil))
		})
		if err != nil {
			return err
		}
		if err := checkAgreement(map[string]float64{"tight": tightRes.Distance, "relaxed": relRes.Distance}); err != nil {
			return err
		}
		tbl.Add(fmt.Sprint(n), fmt.Sprint(xi),
			fmtPct(tightRes.Stats.PruneRatio()), fmtPct(relRes.Stats.PruneRatio()),
			fmtDur(tightDur), fmtDur(relDur))
	}
	tbl.Render(w)
	fmt.Fprintln(w, "paper Figure 13: relaxed bounds prune almost as much as tight ones but compute orders of magnitude faster.")
	return nil
}

// runFigure14 repeats the tight-vs-relaxed comparison varying ξ at
// fixed n.
func runFigure14(cfg Config, w io.Writer) error {
	n := 300
	xis := []int{8, 16, 24}
	if cfg.Scale == ScaleFull {
		n, xis = 5000, []int{100, 200, 300}
	}
	t := dataset(datagen.GeoLifeName, n, cfg.Seed)
	tbl := &Table{Columns: []string{"xi", "tight pruned", "relaxed pruned", "tight time", "relaxed time"}}
	for _, xi := range xis {
		tightDur, tightRes, err := timed(func() (*core.Result, error) {
			return core.BTM(t, xi, cfg.opts(&core.Options{Bounds: core.BoundsTight}))
		})
		if err != nil {
			return err
		}
		relDur, relRes, err := timed(func() (*core.Result, error) {
			return core.BTM(t, xi, cfg.opts(nil))
		})
		if err != nil {
			return err
		}
		if err := checkAgreement(map[string]float64{"tight": tightRes.Distance, "relaxed": relRes.Distance}); err != nil {
			return err
		}
		tbl.Add(fmt.Sprint(xi),
			fmtPct(tightRes.Stats.PruneRatio()), fmtPct(relRes.Stats.PruneRatio()),
			fmtDur(tightDur), fmtDur(relDur))
	}
	tbl.Render(w)
	fmt.Fprintln(w, "paper Figure 14: larger ξ makes motifs rarer and bsf weaker; relaxed bounds stay ~10x faster end to end.")
	return nil
}

// runFigure15 prints the stacked-bar pruning breakdown: the fraction of
// candidate subsets eliminated by each bound, and the fraction needing
// exact DFD, varying n and ξ.
func runFigure15(cfg Config, w io.Writer) error {
	breakdown := func(t *traj.Trajectory, xi int) (*core.Result, error) {
		return core.BTM(t, xi, cfg.opts(&core.Options{CollectBreakdown: true}))
	}

	fmt.Fprintln(w, "(a) varying trajectory length n:")
	tblN := &Table{Columns: []string{"n", "xi", "LBcell", "rLBcross", "rLBband", "DFD (survivors)"}}
	for _, n := range cfg.lengths() {
		xi := cfg.xiFor(n)
		t := dataset(datagen.GeoLifeName, n, cfg.Seed)
		res, err := breakdown(t, xi)
		if err != nil {
			return err
		}
		addBreakdownRow(tblN, fmt.Sprint(n), fmt.Sprint(xi), res.Stats)
	}
	tblN.Render(w)

	fmt.Fprintln(w, "(b) varying minimum motif length xi:")
	n, xis := cfg.xiSweep()
	t := dataset(datagen.GeoLifeName, n, cfg.Seed)
	tblXi := &Table{Columns: []string{"n", "xi", "LBcell", "rLBcross", "rLBband", "DFD (survivors)"}}
	for _, xi := range xis {
		res, err := breakdown(t, xi)
		if err != nil {
			return err
		}
		addBreakdownRow(tblXi, fmt.Sprint(n), fmt.Sprint(xi), res.Stats)
	}
	tblXi.Render(w)
	fmt.Fprintln(w, "paper Figure 15: LBcell dominates; the bounds complement each other (rLBband strengthens as ξ grows while LBcell weakens).")
	return nil
}

func addBreakdownRow(tbl *Table, nCell, xiCell string, st core.Stats) {
	total := float64(st.Subsets)
	if total == 0 {
		total = 1
	}
	survivors := st.Subsets - st.PrunedByCell - st.PrunedByCross - st.PrunedByBand
	tbl.Add(nCell, xiCell,
		fmtPct(float64(st.PrunedByCell)/total),
		fmtPct(float64(st.PrunedByCross)/total),
		fmtPct(float64(st.PrunedByBand)/total),
		fmtPct(float64(survivors)/total))
}

// runFigure16 compares cumulative bound variants — cell only, cell+cross,
// cell+cross+band — on response time, varying n and ξ.
func runFigure16(cfg Config, w io.Writer) error {
	variants := []struct {
		name string
		set  core.BoundSet
	}{
		{"LBcell", core.BoundsCellOnly},
		{"LBcell+rLBcross", core.BoundsCellCross},
		{"LBcell+rLBcross+rLBband", core.BoundsRelaxed},
	}

	fmt.Fprintln(w, "(a) varying trajectory length n:")
	tblN := &Table{Columns: []string{"n", "xi", variants[0].name, variants[1].name, variants[2].name}}
	for _, n := range cfg.lengths() {
		xi := cfg.xiFor(n)
		t := dataset(datagen.GeoLifeName, n, cfg.Seed)
		row := []string{fmt.Sprint(n), fmt.Sprint(xi)}
		dists := map[string]float64{}
		for _, v := range variants {
			dur, res, err := timed(func() (*core.Result, error) {
				return core.BTM(t, xi, cfg.opts(&core.Options{Bounds: v.set}))
			})
			if err != nil {
				return err
			}
			dists[v.name] = res.Distance
			row = append(row, fmtDur(dur))
		}
		if err := checkAgreement(dists); err != nil {
			return err
		}
		tblN.Add(row...)
	}
	tblN.Render(w)

	fmt.Fprintln(w, "(b) varying minimum motif length xi:")
	n, xis := cfg.xiSweep()
	t := dataset(datagen.GeoLifeName, n, cfg.Seed)
	tblXi := &Table{Columns: []string{"xi", variants[0].name, variants[1].name, variants[2].name}}
	for _, xi := range xis {
		row := []string{fmt.Sprint(xi)}
		dists := map[string]float64{}
		for _, v := range variants {
			dur, res, err := timed(func() (*core.Result, error) {
				return core.BTM(t, xi, cfg.opts(&core.Options{Bounds: v.set}))
			})
			if err != nil {
				return err
			}
			dists[v.name] = res.Distance
			row = append(row, fmtDur(dur))
		}
		if err := checkAgreement(dists); err != nil {
			return err
		}
		tblXi.Add(row...)
	}
	tblXi.Render(w)
	fmt.Fprintln(w, "paper Figure 16: each added bound reduces response time; the gains are not attributable to a single bound.")
	return nil
}
