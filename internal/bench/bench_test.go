package bench

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fastConfig shrinks every sweep for unit testing; the real sizes run via
// cmd/motifbench and the root benchmarks.
func fastConfig() Config {
	return Config{Scale: ScaleSmall, Seed: 1, BruteBudget: 2 * time.Second}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "long-header"}}
	tbl.Add("1", "2")
	tbl.Add("333333", "4")
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a     ") {
		t.Errorf("column not padded: %q", lines[0])
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("F99", fastConfig(), &buf); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Paper == "" || e.Title == "" {
			t.Errorf("incomplete experiment %+v", e)
		}
	}
	if len(seen) != 16 {
		t.Errorf("registry has %d experiments, want 16", len(seen))
	}
}

// TestFastExperimentsRun executes the cheap demonstrations end to end;
// each Run both prints its table and asserts its paper-shape property.
func TestFastExperimentsRun(t *testing.T) {
	for _, id := range []string{"T1", "F3", "F4", "T3"} {
		var buf bytes.Buffer
		if err := Run(id, fastConfig(), &buf); err != nil {
			t.Fatalf("%s: %v\noutput:\n%s", id, err, buf.String())
		}
		if !strings.Contains(buf.String(), "===") || buf.Len() < 100 {
			t.Errorf("%s: implausibly small output:\n%s", id, buf.String())
		}
	}
}

// TestFigureShapesSmall runs the core sweeps at reduced size by invoking
// their Run functions with the small config. These are the expensive
// paths, so run only when not in -short mode.
func TestFigureShapesSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps skipped in -short mode")
	}
	cfg := fastConfig()
	for _, id := range []string{"F14", "F15", "F17"} {
		var buf bytes.Buffer
		if err := Run(id, cfg, &buf); err != nil {
			t.Fatalf("%s: %v\noutput:\n%s", id, err, buf.String())
		}
	}
}

// TestCorpusExperiment drives C1 over the shared streaming testdata
// corpus, and checks it degrades to an explicit skip without a directory.
func TestCorpusExperiment(t *testing.T) {
	var sb strings.Builder
	cfg := DefaultConfig()
	if err := Run("C1", cfg, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "skipped") {
		t.Errorf("C1 without a corpus should report a skip, got:\n%s", sb.String())
	}

	sb.Reset()
	cfg.CorpusDir = filepath.Join("..", "trajio", "testdata", "corpus")
	cfg.CorpusXi = 2
	cfg.Workers = 1
	if err := Run("C1", cfg, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "6/6 trajectories searched") {
		t.Errorf("C1 over the corpus did not search all 6 trajectories:\n%s", out)
	}
	if !strings.Contains(out, "a_timed.plt") || !strings.Contains(out, filepath.Join("sub", "f_nested.csv")) {
		t.Errorf("C1 table is missing corpus files:\n%s", out)
	}
	if strings.Contains(out, "error:") || strings.Contains(out, "unreadable:") {
		t.Errorf("C1 reported failures over a clean corpus:\n%s", out)
	}
}
