package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"trajmotif/internal/bounds"
	"trajmotif/internal/datagen"
	"trajmotif/internal/dist"
	"trajmotif/internal/dmatrix"
	"trajmotif/internal/geo"
	"trajmotif/internal/group"
	"trajmotif/internal/symbolic"
	"trajmotif/internal/traj"
)

// runTable1 regenerates Table 1: for each similarity measure, verify the
// robustness columns empirically and measure the cost exponent from a
// length doubling.
func runTable1(cfg Config, w io.Writer) error {
	// Probe A: a smooth curve, uniformly sampled.
	mkCurve := func(n int, offset, stretch float64) []geo.Point {
		pts := make([]geo.Point, n)
		for i := range pts {
			x := float64(i) * stretch
			pts[i] = geo.Point{Lng: x, Lat: math.Sin(x/8) + offset}
		}
		return pts
	}
	n := 64
	a := mkCurve(n, 0, 1)
	far := mkCurve(n, 3, 1) // parallel at distance 3

	// Non-uniform probes. nearNU follows a at offset 1 but with a densely
	// oversampled head and sparse tail; exactSparse is a itself resampled
	// to every 8th point (an exact geometric twin, thinly sampled).
	var nearNU []geo.Point
	for i := 0; i < 4*n; i++ {
		x := float64(i) * 6.0 / float64(4*n)
		nearNU = append(nearNU, geo.Point{Lng: x, Lat: math.Sin(x/8) + 1})
	}
	for x := 6.0; x < float64(n-1); x += 4 {
		nearNU = append(nearNU, geo.Point{Lng: x, Lat: math.Sin(x/8) + 1})
	}
	nearNU = append(nearNU, geo.Point{Lng: float64(n - 1), Lat: math.Sin(float64(n-1)/8) + 1})
	var exactSparse []geo.Point
	for i := 0; i < n; i += 8 {
		exactSparse = append(exactSparse, a[i])
	}
	exactSparse = append(exactSparse, a[n-1])

	// Local-time-shift probe: a momentary stall -- five duplicated samples
	// inserted mid-walk; the elastic measures absorb the duplicates while
	// lockstep ED is knocked off alignment for the rest of the walk.
	var shiftFull []geo.Point
	shiftFull = append(shiftFull, a[:20]...)
	for k := 0; k < 5; k++ {
		shiftFull = append(shiftFull, a[20])
	}
	shiftFull = append(shiftFull, a[20:]...)

	costExp := func(fn func(x, y []geo.Point) float64) string {
		l1, l2 := mkCurve(128, 0, 1), mkCurve(256, 0, 1)
		t1 := timeMeasure(func() { fn(l1, l1) })
		t2 := timeMeasure(func() { fn(l2, l2) })
		return fmt.Sprintf("%.1f", math.Log2(float64(t2)/float64(t1)))
	}

	tbl := &Table{Columns: []string{"measure", "non-uniform robust", "local time shifting", "cost exponent (~1 linear, ~2 quadratic)"}}

	// ED: lockstep; different-length non-uniform inputs only compare after
	// truncation, which misaligns everything, and the stall shifts every
	// later sample off by five positions.
	edFn := func(x, y []geo.Point) float64 {
		m := min(len(x), len(y))
		d, _ := dist.ED(x[:m], y[:m], geo.Euclidean)
		return d
	}
	edNU := edFn(a, nearNU) < edFn(a, far)
	edShift := edFn(a, shiftFull) < 0.2*edFn(a, far)
	tbl.Add("ED", yes(edNU), yes(edShift), costExp(edFn))

	// DTW: sums matched distances, so the oversampled head of nearNU
	// inflates its score past the geometrically farther curve.
	dtwFn := func(x, y []geo.Point) float64 { return dist.DTW(x, y, geo.Euclidean) }
	dtwNU := dtwFn(a, nearNU) < dtwFn(a, far)
	dtwShift := dtwFn(a, shiftFull) < 0.2*dtwFn(a, far)
	tbl.Add("DTW", yes(dtwNU), yes(dtwShift), costExp(dtwFn))

	// LCSS: similarity is a raw match count, so a dense near-miss curve
	// outscores an exact but sparsely sampled twin -- sampling density,
	// not geometry, decides the ranking.
	lcssSim := func(x, y []geo.Point) float64 { return float64(dist.LCSS(x, y, geo.Euclidean, 1.2)) }
	lcssNU := lcssSim(a, exactSparse) >= lcssSim(a, nearNU)
	lcssShift := dist.LCSSDistance(a, shiftFull, geo.Euclidean, 1.2) < 0.2
	tbl.Add("LCSS", yes(lcssNU), yes(lcssShift),
		costExp(func(x, y []geo.Point) float64 { return dist.LCSSDistance(x, y, geo.Euclidean, 1.2) }))

	// EDR: pays one edit per extra sample, so the oversampled twin's
	// length difference swamps its geometric fidelity.
	edrFn := func(x, y []geo.Point) float64 { return float64(dist.EDR(x, y, geo.Euclidean, 1.2)) }
	edrNU := edrFn(a, nearNU) < edrFn(a, far)
	edrShift := edrFn(a, shiftFull) < 0.2*edrFn(a, far)
	tbl.Add("EDR", yes(edrNU), yes(edrShift), costExp(edrFn))

	// DFD: bottleneck over the best coupling -- oversampling adds matches
	// at no cost and the stall couples to a single point exactly.
	dfdFn := func(x, y []geo.Point) float64 { return dist.DFD(x, y, geo.Euclidean) }
	dfdNU := dfdFn(a, nearNU) < dfdFn(a, far)
	dfdShift := dfdFn(a, shiftFull) < 0.2*dfdFn(a, far)
	tbl.Add("DFD", yes(dfdNU), yes(dfdShift), costExp(dfdFn))

	tbl.Render(w)
	fmt.Fprintln(w, "paper Table 1: only DFD carries both robustness properties; all elastic measures are O(l^2).")
	if !dfdNU || !dfdShift {
		return fmt.Errorf("table 1 shape violated: DFD failed a robustness probe")
	}
	if dtwNU || edNU || lcssNU {
		return fmt.Errorf("table 1 shape violated: a non-robust measure passed the non-uniform probe")
	}
	return nil
}

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func timeMeasure(f func()) time.Duration {
	// Repeat until the sample is long enough to be stable on this host.
	start := time.Now()
	reps := 0
	for time.Since(start) < 2*time.Millisecond {
		f()
		reps++
	}
	return time.Since(start) / time.Duration(reps)
}

// runFigure2 contrasts the most-similar pair under ED with the motif
// under DFD on a pedestrian trajectory, reporting both metrics for both
// pairs like Figure 2's captions.
func runFigure2(cfg Config, w io.Writer) error {
	n := 600
	if cfg.Scale == ScaleFull {
		n = 2000
	}
	t := dataset(datagen.GeoLifeName, n, cfg.Seed)
	xi := n / 25

	// DFD motif via GTM.
	res, err := group.GTM(t, xi, 16, cfg.opts(nil))
	if err != nil {
		return err
	}

	// ED "motif": best pair of equal-length windows (length xi+2) by mean
	// pointwise distance, the lockstep analogue.
	win := xi + 2
	bestED := math.Inf(1)
	var edA, edB traj.Span
	for i := 0; i+win-1 < n; i += 2 {
		for j := i + win; j+win-1 < n; j += 2 {
			d, _ := dist.ED(t.Points[i:i+win], t.Points[j:j+win], geo.Haversine)
			if d < bestED {
				bestED = d
				edA, edB = traj.Span{Start: i, End: i + win - 1}, traj.Span{Start: j, End: j + win - 1}
			}
		}
	}

	edPairDFD := dist.DFD(t.SubSpan(edA), t.SubSpan(edB), geo.Haversine)
	dfdPairED := math.NaN()
	if res.A.Len() == res.B.Len() {
		dfdPairED, _ = dist.ED(t.SubSpan(res.A), t.SubSpan(res.B), geo.Haversine)
	}

	tbl := &Table{Columns: []string{"selector", "pair", "ED (m)", "DFD (m)"}}
	tbl.Add("ED", fmt.Sprintf("%v/%v", edA, edB), fmt.Sprintf("%.2f", bestED), fmt.Sprintf("%.2f", edPairDFD))
	dfdED := "n/a (legs differ in length)"
	if !math.IsNaN(dfdPairED) {
		dfdED = fmt.Sprintf("%.2f", dfdPairED)
	}
	tbl.Add("DFD", fmt.Sprintf("%v/%v", res.A, res.B), dfdED, fmt.Sprintf("%.2f", res.Distance))
	tbl.Render(w)
	fmt.Fprintf(w, "paper Figure 2: the ED pair minimizes pointwise proximity but has larger DFD (%.2f vs %.2f here) — it ignores the movement pattern.\n",
		edPairDFD, res.Distance)
	if edPairDFD < res.Distance-1e-9 {
		return fmt.Errorf("figure 2 shape violated: ED pair has smaller DFD than the DFD motif")
	}
	return nil
}

// runFigure3 prints the non-uniform sampling demonstration: Sc (closer,
// non-uniform) vs Sb (farther, uniform) against Sa under DTW and DFD.
func runFigure3(cfg Config, w io.Writer) error {
	n := 60
	sa := make([]geo.Point, n)
	sb := make([]geo.Point, n)
	for i := 0; i < n; i++ {
		x := float64(i)
		sa[i] = geo.Point{Lng: x, Lat: math.Sin(x / 8)}
		sb[i] = geo.Point{Lng: x, Lat: math.Sin(x/8) + 3}
	}
	var sc []geo.Point
	for i := 0; i < 250; i++ {
		x := float64(i) * 6.0 / 250
		sc = append(sc, geo.Point{Lng: x, Lat: math.Sin(x/8) + 1})
	}
	for x := 6.0; x <= float64(n-1); x += 5 {
		sc = append(sc, geo.Point{Lng: x, Lat: math.Sin(x/8) + 1})
	}
	sc = append(sc, geo.Point{Lng: float64(n - 1), Lat: math.Sin(float64(n-1)/8) + 1})

	tbl := &Table{Columns: []string{"pair", "geometry", "DTW", "DFD"}}
	tbl.Add("Sa,Sb", "uniform, 3.0 apart",
		fmt.Sprintf("%.1f", dist.DTW(sa, sb, geo.Euclidean)),
		fmt.Sprintf("%.2f", dist.DFD(sa, sb, geo.Euclidean)))
	tbl.Add("Sa,Sc", "non-uniform, 1.0 apart",
		fmt.Sprintf("%.1f", dist.DTW(sa, sc, geo.Euclidean)),
		fmt.Sprintf("%.2f", dist.DFD(sa, sc, geo.Euclidean)))
	tbl.Render(w)

	dfdOK := dist.DFD(sa, sc, geo.Euclidean) < dist.DFD(sa, sb, geo.Euclidean)
	dtwFooled := dist.DTW(sa, sc, geo.Euclidean) > dist.DTW(sa, sb, geo.Euclidean)
	fmt.Fprintf(w, "paper Figure 3: DFD ranks the geometrically closer Sc first (%v); DTW inverts the ranking under oversampling (%v).\n", dfdOK, dtwFooled)
	if !dfdOK || !dtwFooled {
		return fmt.Errorf("figure 3 shape violated")
	}
	return nil
}

// runFigure4 shows the symbolic baseline mapping far-apart trajectories
// to the same string.
func runFigure4(cfg Config, w io.Writer) error {
	legs := [][2]float64{
		{0, 400}, {400, 0},
		{0, 400}, {0, 400},
		{0, 400}, {-400, 0},
		{-400, 0}, {-400, 0},
	}
	mk := func(center geo.Point) *traj.Trajectory {
		pts := []geo.Point{center}
		cur := center
		for _, leg := range legs {
			for k := 1; k <= 3; k++ {
				pts = append(pts, geo.Offset(cur, leg[0]*float64(k)/3, leg[1]*float64(k)/3))
			}
			cur = geo.Offset(cur, leg[0], leg[1])
		}
		return traj.FromPoints(pts)
	}
	beijing := mk(geo.Point{Lat: 39.9042, Lng: 116.4074})
	shenzhen := mk(geo.Point{Lat: 22.5431, Lng: 114.0579})
	sa, sb, same := symbolic.SameString(beijing, shenzhen, 6)
	d := dist.DFD(beijing.Points, shenzhen.Points, geo.Haversine)

	tbl := &Table{Columns: []string{"trajectory", "symbol string", "DFD to the other (km)"}}
	tbl.Add("Beijing route", sa, fmt.Sprintf("%.0f", d/1000))
	tbl.Add("Shenzhen route", sb, fmt.Sprintf("%.0f", d/1000))
	tbl.Render(w)
	fmt.Fprintf(w, "paper Figure 4: identical strings (%v) for trajectories ~%.0f km apart — the symbolic approach cannot capture spatial distance.\n", same, d/1000)
	if !same {
		return fmt.Errorf("figure 4 shape violated: strings differ")
	}
	return nil
}

// runTable3 measures per-bound computation cost: tight bounds evaluated
// per subset (O(n), O(ξn)) versus relaxed bounds amortized over all
// subsets (O(1)).
func runTable3(cfg Config, w io.Writer) error {
	n := 400
	xi := cfg.xiFor(n)
	if cfg.Scale == ScaleFull {
		n, xi = 2000, 100
	}
	t := dataset(datagen.GeoLifeName, n, cfg.Seed)
	g := dmatrix.ComputeSelf(t.Points, geo.Haversine)
	tight := bounds.NewTight(g, xi, true)

	// Relaxed: total precompute time divided by the number of subsets.
	subsets := 0
	for i := 0; i <= n-2*xi-4; i++ {
		subsets += (n - xi - 2) - (i + xi + 2) + 1
	}
	relaxStart := time.Now()
	rb := bounds.NewRelaxed(g, bounds.PointParams(xi, true))
	relaxTotal := time.Since(relaxStart)
	perSubsetRelaxed := relaxTotal / time.Duration(subsets)

	i, j := n/4, n/4+xi+10
	cellT := timeMeasure(func() { tight.Cell(i, j) })
	crossT := timeMeasure(func() { tight.StartCross(i, j) })
	bandT := timeMeasure(func() { _ = math.Max(tight.RowBand(i, j), tight.ColBand(i, j)) })
	relCellT := timeMeasure(func() { _ = g.At(i, j) })
	relCrossT := timeMeasure(func() { rb.StartCross(i, j) })
	relBandT := timeMeasure(func() { rb.Band(i, j) })

	tbl := &Table{Columns: []string{"bound", "tight per-subset", "relaxed per-subset", "relaxed query"}}
	tbl.Add("LBcell", fmtDur(cellT), fmtDur(perSubsetRelaxed), fmtDur(relCellT))
	tbl.Add("LBcross", fmtDur(crossT), fmtDur(perSubsetRelaxed), fmtDur(relCrossT))
	tbl.Add("LBband", fmtDur(bandT), fmtDur(perSubsetRelaxed), fmtDur(relBandT))
	tbl.Render(w)
	fmt.Fprintf(w, "paper Table 3: tight cross is O(n), tight band O(ξn); relaxed variants amortize to O(1) per subset (total precompute %v over %d subsets).\n",
		relaxTotal.Round(time.Microsecond), subsets)
	if bandT < crossT {
		fmt.Fprintln(w, "note: band cheaper than cross on this host run — timing noise at microsecond scale.")
	}
	return nil
}
