package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"trajmotif/internal/core"
	"trajmotif/internal/datagen"
	"trajmotif/internal/group"
)

// runSpeedup reproduces the abstract's headline claim — "our approach is 3
// orders of magnitude faster than a baseline solution" — by measuring
// BruteDP against GTM on each dataset at the largest size the BruteDP
// budget allows, and extrapolating BruteDP's O(n⁴) growth to the paper's
// n=5000 operating point for the projected factor there.
func runSpeedup(cfg Config, w io.Writer) error {
	tbl := &Table{Columns: []string{
		"dataset", "n", "xi", "BruteDP", "GTM", "measured speedup",
		"projected @n=5000 (BruteDP ~ n^4)",
	}}
	worst := math.Inf(1)
	for _, name := range datagen.Names() {
		// Grow n until BruteDP exhausts its budget.
		n := 200
		var lastBrute, lastGTM time.Duration
		var lastN, lastXi int
		for {
			xi := cfg.xiFor(n)
			t := dataset(name, n, cfg.Seed)
			bruteDur, bruteRes, err := timed(func() (*core.Result, error) {
				return core.BruteDP(t, xi, cfg.opts(nil))
			})
			if err != nil {
				return err
			}
			gtmStart := time.Now()
			gtmRes, err := group.GTM(t, xi, defaultTau, cfg.opts(nil))
			if err != nil {
				return err
			}
			gtmDur := time.Since(gtmStart)
			if err := checkAgreement(map[string]float64{
				"BruteDP": bruteRes.Distance, "GTM": gtmRes.Distance,
			}); err != nil {
				return err
			}
			lastBrute, lastGTM, lastN, lastXi = bruteDur, gtmDur, n, xi
			if bruteDur > cfg.BruteBudget || n >= 3200 {
				break
			}
			n *= 2
		}
		measured := float64(lastBrute) / float64(lastGTM)
		// O(n^4) extrapolation of BruteDP to n=5000; GTM response is
		// assumed to scale like its measured trend, conservatively linear
		// in the grid (n^2).
		scale := 5000.0 / float64(lastN)
		projBrute := float64(lastBrute) * math.Pow(scale, 4)
		projGTM := float64(lastGTM) * scale * scale
		projected := projBrute / projGTM
		worst = math.Min(worst, projected)
		tbl.Add(string(name), fmt.Sprint(lastN), fmt.Sprint(lastXi),
			fmtDur(lastBrute), fmtDur(lastGTM),
			fmt.Sprintf("%.0fx", measured),
			fmt.Sprintf("%.0fx", projected))
	}
	tbl.Render(w)
	fmt.Fprintln(w, "paper abstract: the grouping-based solution is over 3 orders of magnitude faster than the baseline at the paper's operating point.")
	if worst < 1000 {
		return fmt.Errorf("speedup shape violated: projected factor %.0fx below 3 orders of magnitude", worst)
	}
	return nil
}
