package bench

import (
	"fmt"
	"io"
	"time"

	"trajmotif/internal/core"
	"trajmotif/internal/datagen"
	"trajmotif/internal/group"
	"trajmotif/internal/traj"
)

// defaultTau mirrors the paper's §6.2.3 choice.
const defaultTau = 32

// runFigure17 sweeps the initial group size τ for GTM across trajectory
// lengths.
func runFigure17(cfg Config, w io.Writer) error {
	taus := []int{8, 16, 32, 64, 128}
	tbl := &Table{Columns: append([]string{"n \\ tau"}, mapToStrings(taus)...)}
	for _, n := range cfg.lengths()[1:] { // smallest length is noise-dominated
		xi := cfg.xiFor(n)
		t := dataset(datagen.GeoLifeName, n, cfg.Seed)
		row := []string{fmt.Sprint(n)}
		dists := map[string]float64{}
		for _, tau := range taus {
			dur, res, err := timedGroup(func() (*group.Result, error) {
				return group.GTM(t, xi, tau, cfg.opts(nil))
			})
			if err != nil {
				return err
			}
			dists[fmt.Sprint(tau)] = res.Distance
			row = append(row, fmtDur(dur))
		}
		if err := checkAgreement(dists); err != nil {
			return err
		}
		tbl.Add(row...)
	}
	tbl.Render(w)
	fmt.Fprintln(w, "paper Figure 17: response time is not overly sensitive to tau; tau=32 works well across lengths.")
	return nil
}

// methodRunner abstracts one algorithm for the method-comparison sweeps.
type methodRunner struct {
	name string
	self func(t *traj.Trajectory, xi int) (*core.Result, core.Stats, error)
	pair func(t, u *traj.Trajectory, xi int) (*core.Result, core.Stats, error)
}

func methods(cfg Config) []methodRunner {
	wrap := func(r *core.Result, err error) (*core.Result, core.Stats, error) {
		if err != nil {
			return nil, core.Stats{}, err
		}
		return r, r.Stats, nil
	}
	wrapG := func(r *group.Result, err error) (*core.Result, core.Stats, error) {
		if err != nil {
			return nil, core.Stats{}, err
		}
		return &r.Result, r.Stats, nil
	}
	return []methodRunner{
		{
			name: "BruteDP",
			self: func(t *traj.Trajectory, xi int) (*core.Result, core.Stats, error) {
				return wrap(core.BruteDP(t, xi, cfg.opts(nil)))
			},
			pair: func(t, u *traj.Trajectory, xi int) (*core.Result, core.Stats, error) {
				return wrap(core.BruteDPCross(t, u, xi, cfg.opts(nil)))
			},
		},
		{
			name: "BTM",
			self: func(t *traj.Trajectory, xi int) (*core.Result, core.Stats, error) {
				return wrap(core.BTM(t, xi, cfg.opts(nil)))
			},
			pair: func(t, u *traj.Trajectory, xi int) (*core.Result, core.Stats, error) {
				return wrap(core.BTMCross(t, u, xi, cfg.opts(nil)))
			},
		},
		{
			name: "GTM",
			self: func(t *traj.Trajectory, xi int) (*core.Result, core.Stats, error) {
				return wrapG(group.GTM(t, xi, defaultTau, cfg.opts(nil)))
			},
			pair: func(t, u *traj.Trajectory, xi int) (*core.Result, core.Stats, error) {
				return wrapG(group.GTMCross(t, u, xi, defaultTau, cfg.opts(nil)))
			},
		},
		{
			name: "GTM*",
			self: func(t *traj.Trajectory, xi int) (*core.Result, core.Stats, error) {
				return wrapG(group.GTMStar(t, xi, defaultTau, cfg.opts(nil)))
			},
			pair: func(t, u *traj.Trajectory, xi int) (*core.Result, core.Stats, error) {
				return wrapG(group.GTMStarCross(t, u, xi, defaultTau, cfg.opts(nil)))
			},
		},
	}
}

// runFigure18 is the headline comparison: response time vs n for all four
// methods on all three datasets, with BruteDP truncated beyond its
// budget like the paper's 2-hour cut-off.
func runFigure18(cfg Config, w io.Writer) error {
	bruteAllowed := true
	for _, name := range datagen.Names() {
		fmt.Fprintf(w, "dataset: %s\n", name)
		tbl := &Table{Columns: []string{"n", "xi", "BruteDP", "BTM", "GTM", "GTM*", "motif DFD (m)"}}
		bruteAllowed = true
		for _, n := range cfg.lengths() {
			xi := cfg.xiFor(n)
			t := dataset(name, n, cfg.Seed)
			row := []string{fmt.Sprint(n), fmt.Sprint(xi)}
			dists := map[string]float64{}
			var motif float64
			for _, m := range methods(cfg) {
				if m.name == "BruteDP" && !bruteAllowed {
					row = append(row, "— (budget)")
					continue
				}
				start := time.Now()
				res, _, err := m.self(t, xi)
				dur := time.Since(start)
				if err != nil {
					return fmt.Errorf("%s n=%d: %w", m.name, n, err)
				}
				dists[m.name] = res.Distance
				motif = res.Distance
				row = append(row, fmtDur(dur))
				if m.name == "BruteDP" && dur > cfg.BruteBudget {
					bruteAllowed = false // truncation policy (§6.3)
				}
			}
			if err := checkAgreement(dists); err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.2f", motif))
			tbl.Add(row...)
		}
		tbl.Render(w)
	}
	fmt.Fprintln(w, "paper Figure 18: GTM fastest, GTM* runner-up, both far ahead of BruteDP (truncated once over budget, like the paper's 2h cut-off).")
	return nil
}

// runFigure19 reports the principal memory of BTM, GTM and GTM* across
// trajectory lengths.
func runFigure19(cfg Config, w io.Writer) error {
	for _, name := range datagen.Names() {
		fmt.Fprintf(w, "dataset: %s\n", name)
		tbl := &Table{Columns: []string{"n", "BTM", "GTM", "GTM*"}}
		for _, n := range cfg.lengths() {
			xi := cfg.xiFor(n)
			t := dataset(name, n, cfg.Seed)
			btmRes, err := core.BTM(t, xi, cfg.opts(nil))
			if err != nil {
				return err
			}
			gtmRes, err := group.GTM(t, xi, defaultTau, cfg.opts(nil))
			if err != nil {
				return err
			}
			starRes, err := group.GTMStar(t, xi, defaultTau, cfg.opts(nil))
			if err != nil {
				return err
			}
			tbl.Add(fmt.Sprint(n),
				fmtBytes(btmRes.Stats.PeakBytes),
				fmtBytes(gtmRes.Stats.PeakBytes),
				fmtBytes(starRes.Stats.PeakBytes))
		}
		tbl.Render(w)
	}
	fmt.Fprintln(w, "paper Figure 19: BTM/GTM grow O(n^2); GTM* stays near-linear, the method of choice for very long trajectories.")
	return nil
}

// runFigure20 sweeps the minimum motif length ξ for BTM, GTM and GTM*.
func runFigure20(cfg Config, w io.Writer) error {
	n, xis := cfg.xiSweep()
	for _, name := range datagen.Names() {
		fmt.Fprintf(w, "dataset: %s (n=%d)\n", name, n)
		t := dataset(name, n, cfg.Seed)
		tbl := &Table{Columns: []string{"xi", "BTM", "GTM", "GTM*"}}
		for _, xi := range xis {
			row := []string{fmt.Sprint(xi)}
			dists := map[string]float64{}
			for _, m := range methods(cfg)[1:] { // skip BruteDP
				start := time.Now()
				res, _, err := m.self(t, xi)
				dur := time.Since(start)
				if err != nil {
					return err
				}
				dists[m.name] = res.Distance
				row = append(row, fmtDur(dur))
			}
			if err := checkAgreement(dists); err != nil {
				return err
			}
			tbl.Add(row...)
		}
		tbl.Render(w)
	}
	fmt.Fprintln(w, "paper Figure 20: response time grows with ξ — long minimum lengths disqualify short, tight motifs, weakening early bsf pruning.")
	return nil
}

// runFigure21 evaluates the two-trajectory variant: response time vs n on
// pairs of trajectories from each dataset.
func runFigure21(cfg Config, w io.Writer) error {
	for _, name := range datagen.Names() {
		fmt.Fprintf(w, "dataset: %s (two input trajectories)\n", name)
		tbl := &Table{Columns: []string{"n", "xi", "BTM", "GTM", "GTM*", "motif DFD (m)"}}
		for _, n := range cfg.lengths() {
			xi := cfg.xiFor(n)
			a, b := datasetPair(name, n, cfg.Seed)
			row := []string{fmt.Sprint(n), fmt.Sprint(xi)}
			dists := map[string]float64{}
			var motif float64
			for _, m := range methods(cfg)[1:] {
				start := time.Now()
				res, _, err := m.pair(a, b, xi)
				dur := time.Since(start)
				if err != nil {
					return err
				}
				dists[m.name] = res.Distance
				motif = res.Distance
				row = append(row, fmtDur(dur))
			}
			if err := checkAgreement(dists); err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.2f", motif))
			tbl.Add(row...)
		}
		tbl.Render(w)
	}
	fmt.Fprintln(w, "paper Figure 21: performance on two input trajectories closely tracks the single-trajectory case.")
	return nil
}

func timedGroup(f func() (*group.Result, error)) (time.Duration, *group.Result, error) {
	start := time.Now()
	res, err := f()
	return time.Since(start), res, err
}

func mapToStrings(xs []int) []string {
	out := make([]string, len(xs))
	for k, x := range xs {
		out[k] = fmt.Sprint(x)
	}
	return out
}
