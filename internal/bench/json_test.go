package bench

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// TestBenchJSONDeterministic: two emissions of the same config agree on
// every counter (wall-clock excluded), and the headline index counters
// are actually exercised by the fixed workload.
func TestBenchJSONDeterministic(t *testing.T) {
	a, err := BuildJSONReport(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildJSONReport(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if diffs := diffReports(toTree(t, a), toTree(t, b)); len(diffs) != 0 {
		t.Fatalf("back-to-back reports differ:\n%s", strings.Join(diffs, "\n"))
	}
	if a.KNN.IndexPruned == 0 || a.Join.IndexPruned == 0 || a.Stream.Pruned == 0 {
		t.Errorf("fixed workload never pruned: knn=%d join=%d stream=%d",
			a.KNN.IndexPruned, a.Join.IndexPruned, a.Stream.Pruned)
	}
	if a.Reuse.GridRebuildsAvoided == 0 {
		t.Error("store-backed rerun avoided no grid rebuilds")
	}
	if len(a.Motif) == 0 || a.Motif[0].DPCells == 0 {
		t.Errorf("motif runs carry no DP effort: %+v", a.Motif)
	}
	if len(a.Kernel) != 2 || a.Kernel[0].Variant != "float64" || a.Kernel[1].Variant != "float32" {
		t.Fatalf("kernel variants missing: %+v", a.Kernel)
	}
	if a.Kernel[0].DPCells == 0 || a.Kernel[1].Distance == 0 {
		t.Errorf("kernel variant runs degenerate: %+v", a.Kernel)
	}
	if rel := math.Abs(a.Kernel[1].Distance-a.Kernel[0].Distance) / a.Kernel[0].Distance; rel > 1e-6 {
		t.Errorf("float32 kernel distance drifted %v relative from float64", rel)
	}
}

// TestBenchJSONBaseline is the CI counter diff: re-run the workload with
// the checked-in BENCH_*.json's own config and require every non-timing
// field to match exactly (floats at 1e-9 relative). The first PR to ship
// a baseline seeds it; later PRs fail here if a counter drifts.
func TestBenchJSONBaseline(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Skip("no BENCH_*.json baseline checked in yet")
	}
	sort.Strings(files)
	baseline := files[len(files)-1]
	raw, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	var want JSONReport
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("%s: %v", baseline, err)
	}
	if want.Config.Schema != JSONSchema {
		t.Skipf("%s is schema %d, current is %d: regenerate with motifbench -json",
			baseline, want.Config.Schema, JSONSchema)
	}

	cfg := DefaultConfig()
	cfg.Seed = want.Config.Seed
	got, err := BuildJSONReport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := diffReports(toTree(t, &want), toTree(t, got)); len(diffs) != 0 {
		t.Errorf("counters drifted from %s — if intended, regenerate it with motifbench -json:\n%s",
			baseline, strings.Join(diffs, "\n"))
	}
}

// toTree round-trips a report through JSON into generic maps so the diff
// can walk it structurally.
func toTree(t *testing.T, rep *JSONReport) any {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(rep); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		t.Fatal(err)
	}
	return tree
}

// diffReports walks two JSON trees and reports every mismatch, skipping
// keys with the _ms suffix (wall clock) and comparing numbers at 1e-9
// relative tolerance (counters are integers and must match exactly at
// that tolerance; distances absorb cross-arch libm ulps).
func diffReports(want, got any) []string {
	var diffs []string
	walkDiff("", want, got, &diffs)
	return diffs
}

func walkDiff(path string, want, got any, diffs *[]string) {
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			*diffs = append(*diffs, path+": object vs non-object")
			return
		}
		keys := make(map[string]bool, len(w)+len(g))
		for k := range w {
			keys[k] = true
		}
		for k := range g {
			keys[k] = true
		}
		for k := range keys {
			if strings.HasSuffix(k, "_ms") {
				continue
			}
			wv, wok := w[k]
			gv, gok := g[k]
			if !wok || !gok {
				*diffs = append(*diffs, path+"/"+k+": present on one side only")
				continue
			}
			walkDiff(path+"/"+k, wv, gv, diffs)
		}
	case []any:
		g, ok := got.([]any)
		if !ok || len(g) != len(w) {
			*diffs = append(*diffs, path+": array shape differs")
			return
		}
		for i := range w {
			walkDiff(path+"["+strconv.Itoa(i)+"]", w[i], g[i], diffs)
		}
	case json.Number:
		g, ok := got.(json.Number)
		if !ok {
			*diffs = append(*diffs, path+": number vs non-number")
			return
		}
		wf, _ := w.Float64()
		gf, _ := g.Float64()
		tol := 1e-9 * math.Max(math.Abs(wf), math.Abs(gf))
		if math.Abs(wf-gf) > tol {
			*diffs = append(*diffs, path+": "+w.String()+" vs "+g.String())
		}
	default:
		if want != got {
			*diffs = append(*diffs, path+": values differ")
		}
	}
}
