// Corpus-directory mode: the streaming-ingestion counterpart of the
// synthetic experiments. Instead of generated workloads, experiment C1
// walks a real corpus directory (GeoLife-style .plt trees, CSV exports,
// NDJSON bundles) through trajio.DirSource and batch.DiscoverStream, so
// the harness runs against on-disk data in bounded memory.

package bench

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"trajmotif/internal/batch"
	"trajmotif/internal/core"
	"trajmotif/internal/trajio"
)

// DefaultCorpusXi is the minimum motif length used by the corpus
// experiment when Config.CorpusXi is zero. Corpus files are arbitrary, so
// unlike the synthetic experiments ξ cannot be derived from a known n; 8
// is small enough for short exports while still excluding trivial legs.
const DefaultCorpusXi = 8

func (c Config) corpusXi() int {
	if c.CorpusXi > 0 {
		return c.CorpusXi
	}
	return DefaultCorpusXi
}

// runCorpus streams every trajectory under Config.CorpusDir through GTM
// discovery and tabulates the per-trajectory motifs. Without a corpus
// directory it reports itself skipped (so `-exp all` stays runnable).
func runCorpus(cfg Config, w io.Writer) error {
	if cfg.CorpusDir == "" {
		fmt.Fprintln(w, "skipped: no corpus directory (rerun with -corpus DIR)")
		return nil
	}
	ds, err := trajio.OpenDir(cfg.CorpusDir, nil)
	if err != nil {
		return err
	}
	defer ds.Close()
	fmt.Fprintf(w, "corpus %s: %d files, xi=%d, streaming via DirSource (bounded memory)\n",
		cfg.CorpusDir, len(ds.Files()), cfg.corpusXi())

	// Config.Workers bounds TOTAL concurrency here: it sizes the
	// across-trajectory pool while each search stays single-worker, so
	// -workers 1 is a genuinely serial, contention-free timing run and
	// -workers N never oversubscribes to N×GOMAXPROCS. cfg.opts is
	// deliberately not used: it would stamp Workers onto the search
	// options too; only the shared artifact source carries over.
	start := time.Now()
	items, err := batch.DiscoverStream(ds, cfg.corpusXi(), &batch.Options{
		Workers: cfg.Workers,
		Search:  &core.Options{Artifacts: cfg.Artifacts},
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	paths := ds.Paths()
	tbl := &Table{Columns: []string{"file", "n", "motif DFD", "leg A", "leg B", "DP cells"}}
	ok := 0
	for _, it := range items {
		rel, rerr := filepath.Rel(cfg.CorpusDir, paths[it.Index])
		if rerr != nil {
			rel = paths[it.Index]
		}
		if it.Err != nil {
			tbl.Add(rel, "—", "error: "+it.Err.Error(), "", "", "")
			continue
		}
		ok++
		st := it.Result.Stats
		tbl.Add(rel,
			fmt.Sprintf("%d", st.N),
			fmt.Sprintf("%.2fm", it.Result.Distance),
			it.Result.A.String(), it.Result.B.String(),
			fmt.Sprintf("%d", st.DPCells))
	}
	tbl.Render(w)
	for _, fe := range ds.Errs() {
		fmt.Fprintf(w, "unreadable: %v\n", fe)
	}
	fmt.Fprintf(w, "%d/%d trajectories searched in %v (%d read errors)\n",
		ok, len(items), elapsed.Round(time.Millisecond), len(ds.Errs()))
	return nil
}
