// Machine-readable benchmark emission: the -json mode of cmd/motifbench
// runs a fixed, fully deterministic workload over the synthetic corpus
// and writes one JSON report (checked in as BENCH_<pr>.json at the repo
// root). Every counter in the report is effort, not time — DP cells,
// subsets processed, grids avoided, index-pruned candidates — and is
// byte-identical across machines and worker counts (the PR 3 guarantee),
// so CI can diff reports exactly; wall-clock fields are carried for
// humans and excluded from the diff (the *_ms suffix marks them).
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"time"

	"trajmotif/internal/batch"
	"trajmotif/internal/core"
	"trajmotif/internal/datagen"
	"trajmotif/internal/group"
	"trajmotif/internal/join"
	"trajmotif/internal/knn"
	"trajmotif/internal/spatial"
	"trajmotif/internal/store"
	"trajmotif/internal/traj"
)

// JSONSchema versions the report layout; bump it when fields change
// meaning so the baseline diff fails loudly instead of silently.
// Schema 2 adds the projected-join fallback counter and the kernel
// variant section.
const JSONSchema = 2

// JSONConfig pins everything the workload depends on, so a later PR can
// regenerate the identical run from the checked-in file alone.
type JSONConfig struct {
	Schema      int     `json:"schema"`
	Seed        int64   `json:"seed"`
	MotifN      int     `json:"motifN"`
	MotifXi     int     `json:"motifXi"`
	Tau         int     `json:"tau"`
	CorpusN     int     `json:"corpusN"`
	CorpusEach  int     `json:"corpusEach"`
	KNNK        int     `json:"knnK"`
	JoinEps     float64 `json:"joinEps"`
	MaxDistance float64 `json:"maxDistance"`
	StreamXi    int     `json:"streamXi"`
}

// JSONMotifRun is one single-trajectory discovery: the §4/§5 effort
// counters for GTM and BTM on one synthetic dataset.
type JSONMotifRun struct {
	Dataset          string  `json:"dataset"`
	Algo             string  `json:"algo"`
	Distance         float64 `json:"distance"`
	Subsets          int64   `json:"subsets"`
	SubsetsProcessed int64   `json:"subsetsProcessed"`
	SubsetsAbandoned int64   `json:"subsetsAbandoned"`
	DPCells          int64   `json:"dpCells"`
	WallMS           float64 `json:"wall_ms"`
}

// JSONKNNRun is the indexed k-nearest search over the mixed corpus.
type JSONKNNRun struct {
	Candidates     int64     `json:"candidates"`
	SkippedByLB    int64     `json:"skippedByLB"`
	AbandonedEarly int64     `json:"abandonedEarly"`
	Exact          int64     `json:"exact"`
	IndexPruned    int64     `json:"indexPruned"`
	Distances      []float64 `json:"distances"`
	WallMS         float64   `json:"wall_ms"`
}

// JSONJoinRun is the indexed similarity join over the mixed corpus. The
// join runs through the projected decision kernel with the unprojected
// join as in-process oracle (BuildJSONReport errors on any divergence),
// so ProjectionFallbacks — cells the certified error band could not
// decide — is itself a pinned counter.
type JSONJoinRun struct {
	Pairs               int64   `json:"pairs"`
	EndpointPruned      int64   `json:"endpointPruned"`
	BoxPruned           int64   `json:"boxPruned"`
	DecisionRejected    int64   `json:"decisionRejected"`
	Reported            int64   `json:"reported"`
	IndexPruned         int64   `json:"indexPruned"`
	ProjectionFallbacks int64   `json:"projectionFallbacks"`
	WallMS              float64 `json:"wall_ms"`
}

// JSONKernelRun compares the grid storage variants on one BTM discovery:
// float64 (the byte-parity reference) and float32 (half the grid memory,
// gated by the equivalence suite — its distance may differ in the last
// bits but is deterministic, so it diffs exactly).
type JSONKernelRun struct {
	Variant  string  `json:"variant"`
	Distance float64 `json:"distance"`
	DPCells  int64   `json:"dpCells"`
	WallMS   float64 `json:"wall_ms"`
}

// JSONStreamRun is the prefiltered all-pairs streaming discovery.
type JSONStreamRun struct {
	Consulted int64   `json:"consulted"`
	Pruned    int64   `json:"pruned"`
	Items     int     `json:"items"`
	Errors    int     `json:"errors"`
	WallMS    float64 `json:"wall_ms"`
}

// JSONReuseRun is the store-backed rerun proving cross-request grid
// reuse (the serve-mode memoization).
type JSONReuseRun struct {
	GridRebuildsAvoided int64   `json:"gridRebuildsAvoided"`
	WallMS              float64 `json:"wall_ms"`
}

// JSONReport is the whole emission.
type JSONReport struct {
	Config JSONConfig      `json:"config"`
	Motif  []JSONMotifRun  `json:"motif"`
	KNN    JSONKNNRun      `json:"knn"`
	Join   JSONJoinRun     `json:"join"`
	Kernel []JSONKernelRun `json:"kernel"`
	Stream JSONStreamRun   `json:"stream"`
	Reuse  JSONReuseRun    `json:"reuse"`
}

// jsonConfig fixes the workload. Only Seed is taken from the caller's
// Config; sizes are pinned so reports across PRs stay comparable.
func jsonConfig(cfg Config) JSONConfig {
	return JSONConfig{
		Schema:      JSONSchema,
		Seed:        cfg.Seed,
		MotifN:      200,
		MotifXi:     8,
		Tau:         32,
		CorpusN:     80,
		CorpusEach:  4,
		KNNK:        3,
		JoinEps:     100_000,
		MaxDistance: 50_000,
		StreamXi:    4,
	}
}

// jsonCorpus builds the mixed-city corpus the retrieval experiments run
// on: CorpusEach trajectories from each generator (Beijing, Athens,
// Mpala), so cross-city candidates are exactly what a sound spatial
// index must prune.
func jsonCorpus(jc JSONConfig) ([]*traj.Trajectory, error) {
	var ts []*traj.Trajectory
	for _, name := range datagen.Names() {
		for i := 0; i < jc.CorpusEach; i++ {
			t, err := datagen.Dataset(name, datagen.Config{Seed: jc.Seed + int64(i), N: jc.CorpusN})
			if err != nil {
				return nil, err
			}
			ts = append(ts, t)
		}
	}
	return ts, nil
}

// BuildJSONReport runs the fixed workload and assembles the report.
func BuildJSONReport(cfg Config) (*JSONReport, error) {
	jc := jsonConfig(cfg)
	rep := &JSONReport{Config: jc}

	// Motif discovery counters: GTM and BTM on each dataset, serial
	// workers (counters are worker-independent; serial keeps CI cheap).
	sopt := &core.Options{Workers: 1}
	for _, name := range datagen.Names() {
		t, err := datagen.Dataset(name, datagen.Config{Seed: jc.Seed, N: jc.MotifN})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		gr, err := group.GTM(t, jc.MotifXi, jc.Tau, sopt)
		if err != nil {
			return nil, fmt.Errorf("bench json: GTM on %s: %w", name, err)
		}
		rep.Motif = append(rep.Motif, motifRun(string(name), "gtm", &gr.Result, time.Since(start)))
		start = time.Now()
		br, err := core.BTM(t, jc.MotifXi, sopt)
		if err != nil {
			return nil, fmt.Errorf("bench json: BTM on %s: %w", name, err)
		}
		rep.Motif = append(rep.Motif, motifRun(string(name), "btm", br, time.Since(start)))
	}

	ts, err := jsonCorpus(jc)
	if err != nil {
		return nil, err
	}
	ix, err := spatial.BuildIndex(ts, nil)
	if err != nil {
		return nil, err
	}

	// Indexed kNN: a fresh GeoLife walk queries the mixed corpus; the
	// Athens and Mpala members are index fodder.
	query, err := datagen.Dataset(datagen.GeoLifeName, datagen.Config{Seed: jc.Seed + 100, N: jc.CorpusN})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	nbrs, kst, err := knn.Nearest(query, ts, jc.KNNK, &knn.Options{Index: ix})
	if err != nil {
		return nil, err
	}
	rep.KNN = JSONKNNRun{
		Candidates:     kst.Candidates,
		SkippedByLB:    kst.SkippedByLB,
		AbandonedEarly: kst.AbandonedEarly,
		Exact:          kst.Exact,
		IndexPruned:    kst.IndexPruned,
		WallMS:         ms(time.Since(start)),
	}
	for _, nb := range nbrs {
		rep.KNN.Distances = append(rep.KNN.Distances, nb.Distance)
	}

	// Indexed join at city radius, through the projected kernel with the
	// unprojected join as oracle: pairs and shared counters must agree
	// byte for byte, and the fallback count is pinned in the report.
	// cfg.Projected=false (motifbench -projected=false) skips the
	// projected leg and reports the oracle alone.
	plainPairs, jst, err := join.Join(ts, jc.JoinEps, &join.Options{Index: ix})
	if err != nil {
		return nil, err
	}
	wall := time.Duration(0)
	var fallbacks int64
	if cfg.Projected {
		start = time.Now()
		projPairs, pst, err := join.Join(ts, jc.JoinEps, &join.Options{Index: ix, Projected: true})
		if err != nil {
			return nil, err
		}
		wall = time.Since(start)
		fallbacks = pst.ProjectionFallbacks
		pst.ProjectionFallbacks = 0
		if !reflect.DeepEqual(plainPairs, projPairs) || jst != pst {
			return nil, fmt.Errorf("bench json: projected join diverged from haversine oracle")
		}
	}
	rep.Join = JSONJoinRun{
		Pairs:               jst.Pairs,
		EndpointPruned:      jst.EndpointPruned,
		BoxPruned:           jst.BoxPruned,
		DecisionRejected:    jst.DecisionRejected,
		Reported:            jst.Reported,
		IndexPruned:         jst.IndexPruned,
		ProjectionFallbacks: fallbacks,
		WallMS:              ms(wall),
	}

	// Kernel variants: one BTM discovery per grid storage mode.
	kt, err := datagen.Dataset(datagen.GeoLifeName, datagen.Config{Seed: jc.Seed, N: jc.MotifN})
	if err != nil {
		return nil, err
	}
	for _, variant := range []struct {
		name string
		f32  bool
	}{{"float64", false}, {"float32", true}} {
		start = time.Now()
		kr, err := core.BTM(kt, jc.MotifXi, &core.Options{Workers: 1, Float32Grids: variant.f32})
		if err != nil {
			return nil, fmt.Errorf("bench json: BTM %s: %w", variant.name, err)
		}
		rep.Kernel = append(rep.Kernel, JSONKernelRun{
			Variant:  variant.name,
			Distance: kr.Distance,
			DPCells:  kr.Stats.DPCells,
			WallMS:   ms(time.Since(start)),
		})
	}

	// Prefiltered streaming all-pairs discovery.
	var ixs batch.IndexStats
	start = time.Now()
	items, err := batch.DiscoverAllPairsStream(batch.SliceSource(ts), jc.StreamXi, 0, &batch.Options{
		Workers: 1, MaxDistance: jc.MaxDistance, SpatialPrefilter: true, IndexStats: &ixs,
	})
	if err != nil {
		return nil, err
	}
	errs := 0
	for _, it := range items {
		if it.Err != nil {
			errs++
		}
	}
	rep.Stream = JSONStreamRun{
		Consulted: ixs.Consulted,
		Pruned:    ixs.Pruned,
		Items:     len(items),
		Errors:    errs,
		WallMS:    ms(time.Since(start)),
	}

	// Store-backed rerun: the second identical search reuses the grid.
	st := store.New(nil)
	t0, err := datagen.Dataset(datagen.GeoLifeName, datagen.Config{Seed: jc.Seed, N: jc.MotifN})
	if err != nil {
		return nil, err
	}
	ropt := &core.Options{Workers: 1, Artifacts: st}
	if _, err := group.GTM(t0, jc.MotifXi, jc.Tau, ropt); err != nil {
		return nil, err
	}
	start = time.Now()
	warm, err := group.GTM(t0, jc.MotifXi, jc.Tau, ropt)
	if err != nil {
		return nil, err
	}
	rep.Reuse = JSONReuseRun{
		GridRebuildsAvoided: warm.Stats.GridRebuildsAvoided,
		WallMS:              ms(time.Since(start)),
	}
	return rep, nil
}

// RunJSON emits the report as indented JSON.
func RunJSON(cfg Config, w io.Writer) error {
	rep, err := BuildJSONReport(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func motifRun(dataset, algo string, r *core.Result, d time.Duration) JSONMotifRun {
	return JSONMotifRun{
		Dataset:          dataset,
		Algo:             algo,
		Distance:         r.Distance,
		Subsets:          r.Stats.Subsets,
		SubsetsProcessed: r.Stats.SubsetsProcessed,
		SubsetsAbandoned: r.Stats.SubsetsAbandoned,
		DPCells:          r.Stats.DPCells,
		WallMS:           ms(d),
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
