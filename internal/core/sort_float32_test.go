package core

// Parity suites for the two kernel-speed changes that live in core: the
// parallel multiway merge behind SortEntries and the float32 grid mode.

import (
	"math"
	"math/rand"
	"testing"

	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

// TestSortEntriesMultiwayBitIdentical pins the parallel multiway merge
// against the sequential sort for workers 1/2/4/8 on feeds above the
// parallel threshold, with heavily duplicated LB values so the (I, J)
// tiebreak is what actually orders large runs.
func TestSortEntriesMultiwayBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sizes := []int{1 << 14, 1<<14 + 1, 1<<16 + 777}
	for _, n := range sizes {
		base := make([]Entry, n)
		seen := make(map[[2]int32]bool, n)
		for i := range base {
			var ij [2]int32
			for {
				ij = [2]int32{int32(rng.Intn(1 << 12)), int32(rng.Intn(1 << 12))}
				if !seen[ij] {
					seen[ij] = true
					break
				}
			}
			// Only 17 distinct LBs: long runs of ties.
			base[i] = Entry{LB: float64(rng.Intn(17)), I: ij[0], J: ij[1]}
		}
		want := append([]Entry(nil), base...)
		SortEntries(want, 1)
		for i := 1; i < len(want); i++ {
			if !entryLess(want[i-1], want[i]) {
				t.Fatalf("n=%d: sequential reference not strictly increasing at %d", n, i)
			}
		}
		for _, workers := range []int{2, 4, 8} {
			got := append([]Entry(nil), base...)
			SortEntries(got, workers)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d workers=%d: entry %d = %+v, want %+v", n, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSortEntriesSmallAndDegenerate keeps the below-threshold path and
// empty/single-entry feeds honest.
func TestSortEntriesSmallAndDegenerate(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100} {
		list := make([]Entry, n)
		for i := range list {
			list[i] = Entry{LB: float64(n - i), I: int32(i), J: int32(i)}
		}
		SortEntries(list, 8)
		for i := 1; i < len(list); i++ {
			if entryLess(list[i], list[i-1]) {
				t.Fatalf("n=%d: out of order at %d", n, i)
			}
		}
	}
}

// TestFloat32GridEquivalence is the gate for Options.Float32Grids: on
// haversine workloads the float32 search must agree with the float64
// search to float32 rounding (the grid values differ by ≤ 2⁻²⁴
// relative, and the reported motif distance is always some grid cell's
// value), and the spans must coincide on these well-separated inputs.
func TestFloat32GridEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	hav := func(r *rand.Rand, n int) []geo.Point {
		pts := make([]geo.Point, n)
		p := geo.Point{Lat: 39.9, Lng: 116.4}
		for i := range pts {
			p.Lat += (r.Float64() - 0.5) * 0.004
			p.Lng += (r.Float64() - 0.5) * 0.004
			pts[i] = p
		}
		return pts
	}
	for trial := 0; trial < 6; trial++ {
		tr := traj.FromPoints(hav(rng, 60+10*trial))
		xi := 6
		want, err := BTM(tr, xi, &Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := BTM(tr, xi, &Options{Float32Grids: true})
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got.Distance-want.Distance) / math.Max(want.Distance, 1); rel > 1e-6 {
			t.Fatalf("trial %d: float32 distance %v vs float64 %v (rel %v)", trial, got.Distance, want.Distance, rel)
		}
		if got.A != want.A || got.B != want.B {
			t.Fatalf("trial %d: float32 spans %v/%v vs float64 %v/%v", trial, got.A, got.B, want.A, want.B)
		}
		// Float32 runs are themselves deterministic across worker counts.
		got4, err := BTM(tr, xi, &Options{Float32Grids: true, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got4.Distance) != math.Float64bits(got.Distance) || got4.A != got.A || got4.B != got.B {
			t.Fatalf("trial %d: float32 workers=4 diverged from workers=1", trial)
		}
	}
}
