// Parallel search engine: the Searcher split into a shared best-so-far
// bound (coordinator-owned between block barriers) and per-worker sweep
// engines owning the rolling DP rows, so one subset feed can be drained
// by N workers while every worker prunes against a single tightening
// bound.
//
// # Determinism
//
// Parallel search must return byte-identical Results — distance bits,
// witness spans, and effort counters — for every worker count, or the
// golden regression suite (and any caller comparing runs) becomes
// scheduling-dependent. The design that guarantees this is
// block-synchronous:
//
//   - The ordered candidate list is consumed in fixed-size blocks
//     (listBlock entries) whose boundaries do not depend on the worker
//     count.
//   - Every subset in a block is prune-tested against the same Snapshot
//     of the shared bound, taken at the block boundary. Within a block
//     the shared bound is frozen: a subset's entire DP outcome — cells
//     expanded, rows abandoned, candidates accepted — is a pure function
//     of (subset, snapshot), so it does not matter which worker runs it
//     or in what wall-clock order.
//   - At the block barrier the per-worker witnesses and stats merge into
//     the shared state. The winning witness is chosen by the canonical
//     total order (smaller distance, then smaller position in the feed),
//     which is what the sequential scan computes implicitly; merging is
//     therefore commutative and schedule-free.
//
// Pruning soundness is unaffected by sharing: the shared bound only ever
// tightens, and a bound valid at a block boundary remains valid (if
// conservative) for every subset of the block. The price of determinism
// is that a worker cannot use a sibling's mid-block discovery to prune —
// the bound is at most one block stale — which costs a bounded amount of
// extra DP work and buys bit-reproducibility, including under
// (1+ε)-approximate pruning where a scheduling-dependent bound would
// change not just effort but the returned motif.
package core

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"trajmotif/internal/bounds"
	"trajmotif/internal/dist"
	"trajmotif/internal/traj"
)

// listBlock is the barrier interval of the subset feed. It must not
// depend on the worker count (block boundaries define the deterministic
// snapshot sequence); 256 keeps the shared bound at most a few hundred
// subsets stale while giving each barrier enough work to amortize the
// fork-join.
const listBlock = 256

// Entry is one candidate subset CS_{i,j} with its combined lower bound,
// the unit of work fed to ProcessList.
type Entry struct {
	LB   float64
	I, J int32
}

// Snapshot is an immutable view of the shared best-so-far state at a
// block boundary. All pruning decisions inside the block consult it (and
// only it), which is what makes parallel runs deterministic.
type Snapshot struct {
	bsf          float64
	known        bool // a concrete witnessing pair backs bsf
	approxFactor float64
}

// Bsf returns the snapshot's best-so-far distance.
func (sn Snapshot) Bsf() float64 { return sn.bsf }

// Witnessed reports whether the snapshot's bound is backed by a concrete
// candidate pair (as opposed to a group upper bound, GUB_DFD).
func (sn Snapshot) Witnessed() bool { return sn.known }

// prunable is the single pruning predicate every layer consults —
// Searcher.Prunable (live bound), Snapshot.Prunable (frozen block
// bound), and the within-subset bound chain in processSubset. While the
// bound is unwitnessed only strictly-worse candidate sets are pruned
// (the ε-witness-loss rule of PR 2: relaxed pruning before a concrete
// pair exists could discard every candidate matching the bound); the
// (1+ε) relaxation applies only once a witness is held.
func prunable(lb, bsf float64, known bool, approxFactor float64) bool {
	if !known {
		return lb > bsf
	}
	threshold := bsf
	if approxFactor > 1 && !math.IsInf(threshold, 1) {
		threshold /= approxFactor
	}
	return lb >= threshold
}

// Prunable mirrors Searcher.Prunable against the frozen snapshot.
func (sn Snapshot) Prunable(lb float64) bool {
	return prunable(lb, sn.bsf, sn.known, sn.approxFactor)
}

// witness is a candidate pair found by a worker, tagged with the
// position of its subset in the feed so ties resolve canonically.
type witness struct {
	ok   bool
	dist float64
	a, b traj.Span
	pos  int64
}

// better reports whether w precedes o in the canonical total order:
// smaller distance first, then smaller feed position. This is the order
// the sequential scan realizes implicitly (it keeps the first candidate
// attaining the final optimum), so merging per-worker witnesses with it
// reproduces the sequential answer.
func (w witness) better(o witness) bool {
	if !w.ok {
		return false
	}
	if !o.ok {
		return true
	}
	if w.dist != o.dist {
		return w.dist < o.dist
	}
	return w.pos < o.pos
}

// engine is one worker's sweep state: the rolling DP rows and scratch
// plus per-block accumulators. Everything it shares with its siblings —
// the grid, the bound arrays, the exclude predicate — is read-only for
// the duration of a block.
type engine struct {
	p            *problem
	rb           *bounds.Relaxed
	endCross     bool
	earlyAbandon bool
	approxFactor float64
	exclude      func(a, b traj.Span) bool

	snap  Snapshot
	best  witness
	stats Stats

	prev, cur []float64
}

func newEngine(s *Searcher) *engine {
	return &engine{
		p:    &s.p,
		prev: make([]float64, s.p.m),
		cur:  make([]float64, s.p.m),
	}
}

// reset re-syncs the engine with the searcher's configuration (the
// setters may run between searches), clears the per-block accumulators,
// and installs the block snapshot.
func (e *engine) reset(s *Searcher, snap Snapshot) {
	e.rb = s.rb
	e.endCross = s.endCross
	e.earlyAbandon = s.earlyAbandon
	e.approxFactor = s.approxFactor
	e.exclude = s.exclude
	e.snap = snap
	e.best = witness{}
	e.stats = Stats{}
}

// abandonable reports whether a DP row minimum proves that no remaining
// cell of the current subset can change the search outcome. It mirrors
// the candidate-acceptance predicate exactly and deliberately does not
// apply Prunable's (1+ε) relaxation: early abandoning is a pure
// work-saver and must never change results, even in approximate mode.
func abandonable(rowMin, bsf float64, known bool) bool {
	if known {
		return rowMin >= bsf
	}
	return rowMin > bsf
}

// processSubset expands candidate subset CS_{i,j} at feed position pos:
// one dynamic program over all end cells (ie, je). The effective bound
// starts at the block snapshot and tightens only with candidates found
// inside this subset, keeping the outcome a pure function of
// (subset, snapshot) — see the package comment on determinism. The two
// subset-level cuts of the sequential engine are preserved:
//
//   - end-cross cap: every candidate ending at a row beyond je must cross
//     row je+1, so its DFD is at least Rmin[je]; once that disqualifies,
//     the row horizon shrinks (relaxed Eq. 9/13; Alg. 2 lines 12-13);
//   - early abandoning: the kernel row minimum lower-bounds every cell of
//     all later rows, so once it is prunable against the bound the whole
//     rest of the subset's DP is skipped.
func (e *engine) processSubset(pos int64, i, j int) {
	p := e.p
	ieHi := p.ieMax(j)
	jmax := p.m - 1
	e.stats.SubsetsProcessed++

	// Within-subset effective bound: snapshot + this subset's own finds.
	eb, eknown := e.snap.bsf, e.snap.known
	prunableEff := func(lb float64) bool {
		return prunable(lb, eb, eknown, e.approxFactor)
	}

	// Boundary row (ie = i): dF[i][je] is the running max of dG(i, j..je),
	// the DFD of the single-point prefix against the growing second leg.
	dist.DFDBoundaryRow(p.g, i, j, jmax, e.prev)

	// colMax tracks the boundary column dF[ie][j] = max dG(i..ie, j).
	colMax := e.prev[0]
	cells := int64(0)
	for ie := i + 1; ie <= ieHi; ie++ {
		// End-cross cap, re-evaluated per row as the bound tightens.
		if e.endCross {
			for je := j; je < jmax; je++ {
				if prunableEff(e.rb.EndRowMin(je)) {
					jmax = je
					break
				}
			}
		}

		if d := p.g.At(ie, j); d > colMax {
			colMax = d
		}
		e.cur[0] = colMax
		rowMin := dist.DFDRelaxRow(p.g, ie, j, jmax, e.prev, e.cur)
		cells += int64(jmax-j) + 1

		// Candidate scan: cells with both legs longer than ξ steps.
		if ie >= i+p.xi+1 {
			for je := j + p.xi + 1; je <= jmax; je++ {
				v := e.cur[je-j]
				if v < eb || (!eknown && v <= eb) {
					a := traj.Span{Start: i, End: ie}
					b := traj.Span{Start: j, End: je}
					if e.exclude == nil || !e.exclude(a, b) {
						eb, eknown = v, true
						if w := (witness{ok: true, dist: v, a: a, b: b, pos: pos}); w.better(e.best) {
							e.best = w
						}
					}
				}
			}
		}

		if e.earlyAbandon && abandonable(rowMin, eb, eknown) {
			if ie < ieHi {
				e.stats.SubsetsAbandoned++
			}
			break
		}
		e.prev, e.cur = e.cur, e.prev
	}
	e.stats.DPCells += cells
}

// engineFor returns the k-th cached worker engine, creating it (and any
// missing predecessors) on demand. Engines persist across blocks so the
// DP row scratch is allocated once per worker per search.
func (s *Searcher) engineFor(k int) *engine {
	for len(s.engines) <= k {
		s.engines = append(s.engines, newEngine(s))
	}
	return s.engines[k]
}

// mergeWitness folds a worker's best candidate into the shared state at
// a block barrier, preserving the sequential acceptance semantics: a
// strictly better distance always wins; an equal distance wins only over
// an unwitnessed bound (the GUB_DFD equality case) or, canonically, over
// a witness later in the feed.
func (s *Searcher) mergeWitness(w witness) {
	switch {
	case !w.ok:
		return
	case w.dist < s.bsf, !s.bestKnown && w.dist <= s.bsf:
		s.bsf = w.dist
	case s.bestKnown && w.dist == s.best.Distance && w.pos < s.bestPos:
		// Equal-distance witness earlier in canonical order: adopt the
		// canonical one; the bound itself is unchanged.
	default:
		return
	}
	s.bestKnown = true
	s.best.A, s.best.B, s.best.Distance = w.a, w.b, w.dist
	s.bestPos = w.pos
}

// mergeEffort folds a worker's per-block effort counters into the shared
// stats. Every exported Stats field must either be folded here or appear
// in the exempt directive below — motiflint's statsmerge analyzer fails
// the build otherwise, so a new per-worker counter cannot be forgotten.
//
//statsmerge:exempt N M Xi Subsets GridRebuildsAvoided PrunedByCell PrunedByCross PrunedByBand PeakBytes Precompute Search -- coordinator-owned: set once per search on the shared Stats (sizing, precompute pruning, wall time); workers only ever increment the three folded counters
func (st *Stats) mergeEffort(o *Stats) {
	st.SubsetsProcessed += o.SubsetsProcessed
	st.SubsetsAbandoned += o.SubsetsAbandoned
	st.DPCells += o.DPCells
}

// ProcessList drains an ordered candidate-subset feed across the
// searcher's workers, block-synchronously (see the package comment).
// With sorted=true the feed must be in ascending-LB order; once a block
// boundary proves the next bound prunable, the remainder of the feed is
// skipped (Alg. 2's stopping rule). With sorted=false every entry is
// prune-tested individually. Results, including effort counters, are
// identical for every worker count.
func (s *Searcher) ProcessList(list []Entry, sorted bool) {
	for base := 0; base < len(list); base += listBlock {
		hi := min(base+listBlock, len(list))
		block := list[base:hi]
		snap := s.Snapshot()

		// Survivors of the block under the frozen snapshot.
		var surv []int // offsets into block
		if sorted {
			cut := sort.Search(len(block), func(k int) bool { return snap.Prunable(block[k].LB) })
			if cut == 0 {
				break // ascending LBs: everything remaining is prunable
			}
			surv = s.survScratch[:0]
			for k := 0; k < cut; k++ {
				surv = append(surv, k)
			}
		} else {
			surv = s.survScratch[:0]
			for k := range block {
				if !snap.Prunable(block[k].LB) {
					surv = append(surv, k)
				}
			}
		}
		s.survScratch = surv[:0]
		if len(surv) == 0 {
			continue
		}
		s.runBlock(block, int64(base), surv, snap)
	}
	s.seq += int64(len(list))
}

// ParallelFor runs fn(k) for every 0 <= k < n over a bounded worker
// pool. Each fn(k) must be independent of the others (outputs land in
// per-k slots), which keeps the result schedule-free. workers <= 1 runs
// inline.
func ParallelFor(workers, n int, fn func(k int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for k := 0; k < n; k++ {
			fn(k)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= n {
					return
				}
				fn(k)
			}
		}()
	}
	wg.Wait()
}

// entryLess is the canonical feed order: ascending lower bound, ties
// broken by start cell. It is a total order, so every sorting strategy —
// the stdlib's unstable sort, the parallel merge sort below, any future
// replacement — produces the identical feed, and with it the identical
// block/snapshot sequence for the deterministic search.
func entryLess(a, b Entry) bool {
	if a.LB != b.LB {
		return a.LB < b.LB
	}
	if a.I != b.I {
		return a.I < b.I
	}
	return a.J < b.J
}

// SortEntries orders a candidate feed canonically (see entryLess). With
// workers > 1 and a large list it chunk-sorts in parallel and then runs
// one parallel multiway merge: the output is partitioned into one
// equal-rank range per worker, and each worker tournament-merges its
// fragment of every chunk into its range. Unlike pairwise merge rounds
// — whose last round is a single-threaded merge of the whole list —
// every worker stays busy through the entire merge tail. The feed is a
// strict total order ((I, J) pairs are unique, see entryLess), so the
// sorted permutation is unique and the result is bit-identical to the
// sequential sort for every worker count.
func SortEntries(list []Entry, workers int) {
	const parallelSortMin = 1 << 14
	if workers <= 1 || len(list) < parallelSortMin {
		sort.Slice(list, func(x, y int) bool { return entryLess(list[x], list[y]) })
		return
	}

	// Chunk-sort: contiguous slices, one per worker.
	bounds := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		bounds[w] = w * len(list) / workers
	}
	ParallelFor(workers, workers, func(w int) {
		c := list[bounds[w]:bounds[w+1]]
		sort.Slice(c, func(x, y int) bool { return entryLess(c[x], c[y]) })
	})
	chunks := make([][]Entry, workers)
	for w := range chunks {
		chunks[w] = list[bounds[w]:bounds[w+1]]
	}

	// Partition the output by global rank: cuts[r][c] is how many
	// entries of chunk c rank among the r*len/workers smallest overall,
	// so worker w owns exactly the fragments between cuts[w] and
	// cuts[w+1] and they land in dst[w*len/workers:(w+1)*len/workers].
	cuts := make([][]int, workers+1)
	cuts[0] = make([]int, workers)
	cuts[workers] = make([]int, workers)
	for c := range chunks {
		cuts[workers][c] = len(chunks[c])
	}
	ParallelFor(workers, workers-1, func(r int) {
		cuts[r+1] = splitAtRank(chunks, (r+1)*len(list)/workers)
	})

	dst := make([]Entry, len(list))
	ParallelFor(workers, workers, func(w int) {
		kWayMerge(chunks, cuts[w], cuts[w+1], dst[w*len(list)/workers:(w+1)*len(list)/workers])
	})
	copy(list, dst)
}

// splitAtRank returns, per sorted chunk, how many of its entries rank
// among the k smallest across all chunks. The order is strict, so the
// k-smallest set is unique, each chunk contributes a unique prefix, and
// the returned counts sum to exactly k. An entry's global rank (the
// count of entries below it) is found by binary search in every chunk;
// the prefix length by binary search over the chunk's own entries —
// O(workers·log²) per chunk, negligible against the merge itself.
func splitAtRank(chunks [][]Entry, k int) []int {
	cut := make([]int, len(chunks))
	for c, ch := range chunks {
		cut[c] = sort.Search(len(ch), func(x int) bool {
			r := 0
			for _, other := range chunks {
				e := ch[x]
				r += sort.Search(len(other), func(y int) bool { return !entryLess(other[y], e) })
			}
			return r >= k
		})
	}
	return cut
}

// kWayMerge tournament-merges the per-chunk fragments [lo[c], hi[c])
// into out (whose length must equal the fragments' total): a binary
// heap over the fragment heads pops the least entry and advances its
// fragment, lg(chunks) comparisons per element. The strict total order
// means no ties, so the pop sequence is the unique sorted order.
func kWayMerge(chunks [][]Entry, lo, hi []int, out []Entry) {
	type head struct{ c, idx int }
	h := make([]head, 0, len(chunks))
	less := func(x, y head) bool { return entryLess(chunks[x.c][x.idx], chunks[y.c][y.idx]) }
	siftDown := func(i int) {
		for {
			l := 2*i + 1
			if l >= len(h) {
				return
			}
			least := l
			if r := l + 1; r < len(h) && less(h[r], h[l]) {
				least = r
			}
			if !less(h[least], h[i]) {
				return
			}
			h[i], h[least] = h[least], h[i]
			i = least
		}
	}
	for c := range chunks {
		if lo[c] < hi[c] {
			h = append(h, head{c, lo[c]})
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for o := range out {
		top := h[0]
		out[o] = chunks[top.c][top.idx]
		top.idx++
		if top.idx < hi[top.c] {
			h[0] = top
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		siftDown(0)
	}
}

// BuildEntries enumerates every feasible start cell in canonical (i, j)
// order and computes each entry's lower bound with lb, sharding the rows
// across workers. lb must be pure and safe for concurrent use; the
// output is identical for every worker count.
func (s *Searcher) BuildEntries(lb func(i, j int) float64, workers int) []Entry {
	iMax := s.p.iMax()
	if iMax < 0 {
		return nil
	}
	offs := make([]int, iMax+2)
	for i := 0; i <= iMax; i++ {
		lo, hi := s.p.jRange(i)
		cnt := hi - lo + 1
		if cnt < 0 {
			cnt = 0
		}
		offs[i+1] = offs[i] + cnt
	}
	list := make([]Entry, offs[iMax+1])
	ParallelFor(workers, iMax+1, func(i int) {
		lo, hi := s.p.jRange(i)
		out := list[offs[i]:offs[i+1]]
		for j := lo; j <= hi; j++ {
			out[j-lo] = Entry{LB: lb(i, j), I: int32(i), J: int32(j)}
		}
	})
	return list
}

// runBlock expands the surviving subsets of one block across the worker
// pool and merges the outcomes at the barrier.
func (s *Searcher) runBlock(block []Entry, base int64, surv []int, snap Snapshot) {
	w := s.workers
	if w > len(surv) {
		w = len(surv)
	}
	if w <= 1 {
		e := s.engineFor(0)
		e.reset(s, snap)
		for _, k := range surv {
			e.processSubset(s.seq+base+int64(k), int(block[k].I), int(block[k].J))
		}
		s.mergeWitness(e.best)
		s.stats.mergeEffort(&e.stats)
		return
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		e := s.engineFor(wi)
		e.reset(s, snap)
		wg.Add(1)
		go func(e *engine) {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(surv) {
					return
				}
				off := surv[k]
				e.processSubset(s.seq+base+int64(off), int(block[off].I), int(block[off].J))
			}
		}(e)
	}
	wg.Wait()
	// Merge in fixed engine order; the canonical witness order makes the
	// outcome independent of both this order and the work assignment.
	for wi := 0; wi < w; wi++ {
		s.mergeWitness(s.engines[wi].best)
		s.stats.mergeEffort(&s.engines[wi].stats)
	}
}
