package core

import (
	"math"
	"math/rand"
	"testing"

	"trajmotif/internal/dist"
	"trajmotif/internal/dmatrix"
	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

func randTraj(r *rand.Rand, n int) *traj.Trajectory {
	pts := make([]geo.Point, n)
	x, y := 0.0, 0.0
	for i := range pts {
		x += r.Float64()*2 - 1
		y += r.Float64()*2 - 1
		pts[i] = geo.Point{Lng: x, Lat: y}
	}
	return traj.FromPoints(pts)
}

// naiveSelf enumerates every feasible candidate pair and computes its DFD
// independently (via internal/dist): the ground truth for tiny instances.
func naiveSelf(t *traj.Trajectory, xi int) (best float64, a, b traj.Span) {
	n := t.Len()
	best = math.Inf(1)
	for i := 0; i <= n-2*xi-4; i++ {
		for ie := i + xi + 1; ie < n; ie++ {
			for j := ie + 1; j <= n-xi-2; j++ {
				for je := j + xi + 1; je < n; je++ {
					d := dist.DFD(t.Points[i:ie+1], t.Points[j:je+1], geo.Euclidean)
					if d < best {
						best, a, b = d, traj.Span{Start: i, End: ie}, traj.Span{Start: j, End: je}
					}
				}
			}
		}
	}
	return best, a, b
}

func naiveCross(t, u *traj.Trajectory, xi int) float64 {
	best := math.Inf(1)
	for i := 0; i+xi+1 < t.Len(); i++ {
		for ie := i + xi + 1; ie < t.Len(); ie++ {
			for j := 0; j+xi+1 < u.Len(); j++ {
				for je := j + xi + 1; je < u.Len(); je++ {
					d := dist.DFD(t.Points[i:ie+1], u.Points[j:je+1], geo.Euclidean)
					if d < best {
						best = d
					}
				}
			}
		}
	}
	return best
}

var euclid = &Options{Dist: geo.Euclidean}

func optVariants() map[string]*Options {
	return map[string]*Options{
		"relaxed":     {Dist: geo.Euclidean},
		"tight":       {Dist: geo.Euclidean, Bounds: BoundsTight},
		"cellOnly":    {Dist: geo.Euclidean, Bounds: BoundsCellOnly},
		"cellCross":   {Dist: geo.Euclidean, Bounds: BoundsCellCross},
		"unsorted":    {Dist: geo.Euclidean, Unsorted: true},
		"noEndCross":  {Dist: geo.Euclidean, DisableEndCross: true},
		"noEndCrossU": {Dist: geo.Euclidean, DisableEndCross: true, Unsorted: true},
	}
}

// TestBruteDPMatchesNaive pins Algorithm 1 against the independent
// candidate-by-candidate enumeration.
func TestBruteDPMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 12; trial++ {
		n := 12 + r.Intn(8)
		xi := 1 + r.Intn(2)
		tr := randTraj(r, n)
		want, _, _ := naiveSelf(tr, xi)
		got, err := BruteDP(tr, xi, euclid)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Distance-want) > 1e-9 {
			t.Fatalf("n=%d xi=%d: BruteDP %g, naive %g", n, xi, got.Distance, want)
		}
		// The returned pair must witness the distance and be feasible.
		if err := traj.MotifConstraints(got.A, got.B, xi); err != nil {
			t.Fatalf("infeasible result: %v", err)
		}
		d := dist.DFD(tr.SubSpan(got.A), tr.SubSpan(got.B), geo.Euclidean)
		if math.Abs(d-got.Distance) > 1e-9 {
			t.Fatalf("result pair DFD %g != reported %g", d, got.Distance)
		}
	}
}

// TestBTMEquivalence is the central exactness property: BTM under every
// bound configuration returns the same optimal distance as BruteDP
// (Problem 1, single trajectory).
func TestBTMEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		n := 14 + r.Intn(12)
		xi := 1 + r.Intn(3)
		tr := randTraj(r, n)
		want, err := BruteDP(tr, xi, euclid)
		if err != nil {
			t.Fatal(err)
		}
		for name, opt := range optVariants() {
			got, err := BTM(tr, xi, opt)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if math.Abs(got.Distance-want.Distance) > 1e-9 {
				t.Fatalf("%s: BTM %g != BruteDP %g (n=%d xi=%d)",
					name, got.Distance, want.Distance, n, xi)
			}
			if err := traj.MotifConstraints(got.A, got.B, xi); err != nil {
				t.Fatalf("%s: infeasible result: %v", name, err)
			}
		}
	}
}

// TestBTMCrossEquivalence repeats exactness for the two-trajectory variant.
func TestBTMCrossEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 8; trial++ {
		n, m := 10+r.Intn(6), 10+r.Intn(6)
		xi := 1 + r.Intn(2)
		a, b := randTraj(r, n), randTraj(r, m)
		want := naiveCross(a, b, xi)
		brute, err := BruteDPCross(a, b, xi, euclid)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(brute.Distance-want) > 1e-9 {
			t.Fatalf("BruteDPCross %g != naive %g", brute.Distance, want)
		}
		for name, opt := range optVariants() {
			got, err := BTMCross(a, b, xi, opt)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if math.Abs(got.Distance-want) > 1e-9 {
				t.Fatalf("%s: BTMCross %g != naive %g", name, got.Distance, want)
			}
			// Cross-variant legs may overlap in index space (they live on
			// different trajectories) but must satisfy the length rule.
			if got.A.Steps() <= xi || got.B.Steps() <= xi {
				t.Fatalf("%s: leg too short: %v %v", name, got.A, got.B)
			}
		}
	}
}

// TestPlantedMotif embeds two nearly identical far-apart copies of a route
// inside noise and checks that discovery locates them.
func TestPlantedMotif(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	route := make([]geo.Point, 12)
	for k := range route {
		route[k] = geo.Point{Lng: float64(k), Lat: math.Sin(float64(k) / 2)}
	}
	mk := func(offset geo.Point, jitter float64) []geo.Point {
		out := make([]geo.Point, len(route))
		for k, p := range route {
			out[k] = geo.Point{
				Lng: p.Lng + offset.Lng + r.Float64()*jitter,
				Lat: p.Lat + offset.Lat + r.Float64()*jitter,
			}
		}
		return out
	}
	noise := func(n int, cx, cy float64) []geo.Point {
		out := make([]geo.Point, n)
		for k := range out {
			out[k] = geo.Point{Lng: cx + r.Float64()*20, Lat: cy + r.Float64()*20}
		}
		return out
	}
	var pts []geo.Point
	pts = append(pts, noise(10, 100, 40)...)
	copy1Start := len(pts)
	pts = append(pts, mk(geo.Point{}, 0.01)...)
	pts = append(pts, noise(10, -100, -40)...)
	copy2Start := len(pts)
	pts = append(pts, mk(geo.Point{Lng: 0.05, Lat: 0.05}, 0.01)...)
	pts = append(pts, noise(8, 140, 60)...)

	tr := traj.FromPoints(pts)
	xi := 8
	got, err := BTM(tr, xi, euclid)
	if err != nil {
		t.Fatal(err)
	}
	if got.A.Start < copy1Start-2 || got.A.End >= copy1Start+len(route)+2 {
		t.Errorf("first leg %v not inside planted copy at %d", got.A, copy1Start)
	}
	if got.B.Start < copy2Start-2 || got.B.End >= copy2Start+len(route)+2 {
		t.Errorf("second leg %v not inside planted copy at %d", got.B, copy2Start)
	}
	if got.Distance > 1 {
		t.Errorf("planted motif distance %g too large", got.Distance)
	}
}

func TestTooShort(t *testing.T) {
	tr := randTraj(rand.New(rand.NewSource(25)), 10)
	if _, err := BTM(tr, 4, euclid); err != ErrTooShort {
		t.Errorf("want ErrTooShort, got %v", err)
	}
	if _, err := BruteDP(tr, 4, euclid); err != ErrTooShort {
		t.Errorf("want ErrTooShort, got %v", err)
	}
	short := randTraj(rand.New(rand.NewSource(26)), 4)
	if _, err := BTMCross(short, short, 4, euclid); err != ErrTooShort {
		t.Errorf("cross: want ErrTooShort, got %v", err)
	}
	if _, err := BTM(tr, -1, euclid); err == nil {
		t.Error("negative xi should error")
	}
}

// TestNonMonotonicity reproduces Lemma 1: the DFD of contained
// subtrajectory pairs is neither monotone increasing nor decreasing. We
// build a trajectory where extending a leg first lowers, then raises the
// DFD against a fixed second leg.
func TestNonMonotonicity(t *testing.T) {
	// Leg B is two points at y=0, x in {100, 101}. Leg A grows from
	// (100,5): adding (101,1) improves the coupling; then adding (150,40)
	// ruins it.
	a := []geo.Point{{Lat: 5, Lng: 100}, {Lat: 1, Lng: 101}, {Lat: 40, Lng: 150}}
	b := []geo.Point{{Lat: 0, Lng: 100}, {Lat: 0, Lng: 101}}
	d1 := dist.DFD(a[:1], b, geo.Euclidean)
	d2 := dist.DFD(a[:2], b, geo.Euclidean)
	d3 := dist.DFD(a[:3], b, geo.Euclidean)
	if !(d2 < d1 && d3 > d2) {
		t.Fatalf("expected non-monotone sequence, got %g, %g, %g", d1, d2, d3)
	}
}

func TestStatsAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(27))
	tr := randTraj(r, 40)
	opt := &Options{Dist: geo.Euclidean, CollectBreakdown: true}
	got, err := BTM(tr, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	st := got.Stats
	if st.Subsets <= 0 || st.SubsetsProcessed <= 0 || st.DPCells <= 0 {
		t.Errorf("implausible stats: %+v", st)
	}
	if st.SubsetsProcessed > st.Subsets {
		t.Errorf("processed %d > subsets %d", st.SubsetsProcessed, st.Subsets)
	}
	pruned := st.PrunedByCell + st.PrunedByCross + st.PrunedByBand
	if pruned > st.Subsets {
		t.Errorf("breakdown pruned %d > subsets %d", pruned, st.Subsets)
	}
	if ratio := st.PruneRatio(); ratio < 0 || ratio > 1 {
		t.Errorf("prune ratio %g out of range", ratio)
	}
	if st.PeakBytes < int64(tr.Len()*tr.Len())*8 {
		t.Errorf("peak bytes %d below grid size", st.PeakBytes)
	}
}

// TestSortedBeatsUnsortedOnWork verifies the best-first claim of §4.4:
// ascending-LB order should not process more subsets than natural order.
func TestSortedBeatsUnsortedOnWork(t *testing.T) {
	r := rand.New(rand.NewSource(28))
	var sortedWork, unsortedWork int64
	for trial := 0; trial < 6; trial++ {
		tr := randTraj(r, 60)
		a, err := BTM(tr, 4, &Options{Dist: geo.Euclidean})
		if err != nil {
			t.Fatal(err)
		}
		b, err := BTM(tr, 4, &Options{Dist: geo.Euclidean, Unsorted: true})
		if err != nil {
			t.Fatal(err)
		}
		sortedWork += a.Stats.SubsetsProcessed
		unsortedWork += b.Stats.SubsetsProcessed
	}
	if sortedWork > unsortedWork {
		t.Errorf("sorted processed %d subsets, unsorted %d — best-first should win",
			sortedWork, unsortedWork)
	}
}

// TestSearcherTightenBsfEquality exercises the bestKnown corner: when bsf
// is pre-tightened to exactly the motif distance (as a group upper bound
// can do), the search must still materialize the witnessing pair.
func TestSearcherTightenBsfEquality(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	tr := randTraj(r, 30)
	xi := 2
	want, err := BruteDP(tr, xi, euclid)
	if err != nil {
		t.Fatal(err)
	}

	g := dmatrix.ComputeSelf(tr.Points, geo.Euclidean)
	s := NewSearcher(g, xi, true, nil, false)
	s.TightenBsf(want.Distance) // exact motif value, no witness
	for i := 0; i <= s.IMax(); i++ {
		lo, hi := s.JRange(i)
		for j := lo; j <= hi; j++ {
			if !s.Prunable(g.At(i, j)) {
				s.ProcessSubset(i, j)
			}
		}
	}
	got, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Distance-want.Distance) > 1e-9 {
		t.Fatalf("equality search found %g, want %g", got.Distance, want.Distance)
	}
}

func TestBoundSetString(t *testing.T) {
	names := map[BoundSet]string{
		BoundsRelaxed:   "cell+rcross+rband",
		BoundsTight:     "tight",
		BoundsCellOnly:  "cell",
		BoundsCellCross: "cell+rcross",
		BoundSet(99):    "BoundSet(99)",
	}
	for b, want := range names {
		if got := b.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(b), got, want)
		}
	}
}
