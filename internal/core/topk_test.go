package core

import (
	"math"
	"math/rand"
	"testing"

	"trajmotif/internal/dist"
	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

func TestTopKFirstEqualsMotif(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 6; trial++ {
		tr := randTraj(r, 40)
		xi := 2
		want, err := BTM(tr, xi, euclid)
		if err != nil {
			t.Fatal(err)
		}
		got, err := TopK(tr, xi, 3, euclid)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			t.Fatal("no motifs returned")
		}
		if math.Abs(got[0].Distance-want.Distance) > 1e-9 {
			t.Fatalf("top-1 %g != motif %g", got[0].Distance, want.Distance)
		}
	}
}

func TestTopKDisjointAndOrdered(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	tr := randTraj(r, 80)
	xi := 3
	got, err := TopK(tr, xi, 4, euclid)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 2 {
		t.Fatalf("expected several motifs, got %d", len(got))
	}
	var legs []traj.Span
	for k, res := range got {
		if k > 0 && res.Distance < got[k-1].Distance-1e-9 {
			t.Errorf("distances not ascending: %g after %g", res.Distance, got[k-1].Distance)
		}
		if err := traj.MotifConstraints(res.A, res.B, xi); err != nil {
			t.Errorf("motif %d infeasible: %v", k, err)
		}
		for _, l := range legs {
			if res.A.Overlaps(l) || res.B.Overlaps(l) {
				t.Errorf("motif %d overlaps earlier legs: %v %v vs %v", k, res.A, res.B, l)
			}
		}
		legs = append(legs, res.A, res.B)
	}
}

// TestTopKSecondIsOptimalAmongDisjoint verifies the greedy definition: the
// second motif is the best pair disjoint from the first, cross-checked by
// exhaustive enumeration.
func TestTopKSecondIsOptimalAmongDisjoint(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for trial := 0; trial < 4; trial++ {
		tr := randTraj(r, 26)
		xi := 1
		got, err := TopK(tr, xi, 2, euclid)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) < 2 {
			continue // trajectory too packed for a disjoint second motif
		}
		first := got[0]
		n := tr.Len()
		best := math.Inf(1)
		for i := 0; i <= n-2*xi-4; i++ {
			for ie := i + xi + 1; ie < n; ie++ {
				for j := ie + 1; j <= n-xi-2; j++ {
					for je := j + xi + 1; je < n; je++ {
						a := traj.Span{Start: i, End: ie}
						b := traj.Span{Start: j, End: je}
						if a.Overlaps(first.A) || a.Overlaps(first.B) ||
							b.Overlaps(first.A) || b.Overlaps(first.B) {
							continue
						}
						d := exactPairDFD(tr, a, b)
						if d < best {
							best = d
						}
					}
				}
			}
		}
		if math.Abs(got[1].Distance-best) > 1e-9 {
			t.Fatalf("second motif %g, exhaustive disjoint best %g", got[1].Distance, best)
		}
	}
}

// exactPairDFD recomputes a reported pair's distance through the
// full-table form (dist.DFDMatrix), an implementation independent of the
// rolling-row kernel the searcher consumes.
func exactPairDFD(tr *traj.Trajectory, a, b traj.Span) float64 {
	dp := dist.DFDMatrix(tr.SubSpan(a), tr.SubSpan(b), geo.Euclidean)
	return dp[len(dp)-1][len(dp[0])-1]
}

func TestTopKValidation(t *testing.T) {
	tr := randTraj(rand.New(rand.NewSource(54)), 30)
	if _, err := TopK(tr, 2, 0, euclid); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := TopK(tr, -1, 2, euclid); err == nil {
		t.Error("negative xi should error")
	}
	short := randTraj(rand.New(rand.NewSource(55)), 6)
	if _, err := TopK(short, 5, 2, euclid); err != ErrTooShort {
		t.Errorf("want ErrTooShort, got %v", err)
	}
}

func TestTopKCrossDisjoint(t *testing.T) {
	r := rand.New(rand.NewSource(56))
	a, b := randTraj(r, 30), randTraj(r, 30)
	got, err := TopKCross(a, b, 2, 3, euclid)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < len(got); x++ {
		for y := x + 1; y < len(got); y++ {
			if got[x].A.Overlaps(got[y].A) || got[x].B.Overlaps(got[y].B) {
				t.Errorf("cross motifs %d and %d overlap", x, y)
			}
		}
	}
}

// TestApproximateDiscovery verifies the (1+ε) guarantee of the §7
// future-work extension and that larger ε prunes at least as much.
func TestApproximateDiscovery(t *testing.T) {
	r := rand.New(rand.NewSource(57))
	for trial := 0; trial < 8; trial++ {
		tr := randTraj(r, 50)
		xi := 3
		exact, err := BTM(tr, xi, euclid)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0.1, 0.5, 2.0} {
			approx, err := BTM(tr, xi, &Options{Dist: geo.Euclidean, Epsilon: eps})
			if err != nil {
				t.Fatal(err)
			}
			if approx.Distance < exact.Distance-1e-9 {
				t.Fatalf("approximate result %g below optimum %g", approx.Distance, exact.Distance)
			}
			if approx.Distance > exact.Distance*(1+eps)+1e-9 {
				t.Fatalf("eps=%g: result %g violates (1+ε) bound on optimum %g",
					eps, approx.Distance, exact.Distance)
			}
			if approx.Stats.SubsetsProcessed > exact.Stats.SubsetsProcessed {
				t.Errorf("eps=%g processed more subsets (%d) than exact (%d)",
					eps, approx.Stats.SubsetsProcessed, exact.Stats.SubsetsProcessed)
			}
		}
	}
}

func TestApproximateNegativeEpsilonIsExact(t *testing.T) {
	r := rand.New(rand.NewSource(58))
	tr := randTraj(r, 40)
	exact, _ := BTM(tr, 2, euclid)
	neg, err := BTM(tr, 2, &Options{Dist: geo.Euclidean, Epsilon: -5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(neg.Distance-exact.Distance) > 1e-9 {
		t.Errorf("negative epsilon should be exact: %g vs %g", neg.Distance, exact.Distance)
	}
}
