// Package core implements the paper's primary contribution: exact
// trajectory motif discovery under the discrete Fréchet distance.
//
// It provides the baseline BruteDP (Algorithm 1) and the bounding-based
// BTM (Algorithm 2) for both problem variants — the motif within a single
// trajectory (Problem 1, with the non-overlap constraint i < ie < j < je)
// and the motif between two trajectories. The grouping-based GTM and GTM*
// algorithms in internal/group drive the same search engine through the
// exported Searcher type.
//
// The shared engine exploits the paper's observation that all candidates
// of a candidate subset CS_{i,j} (same start cell) share one dynamic
// program: dF[ie][je] = max(dG(ie,je), min of the three predecessors),
// swept once per subset with two rolling rows (O(n) working space).
//
// The search is parallel within a single discovery: the Searcher is a
// shared context (best-so-far bound with its witness, ε state, exclude
// predicate, merged statistics) coordinating per-worker sweep engines
// that drain one subset feed block-synchronously. Results and effort
// counters are byte-identical for every worker count; see engine.go for
// the determinism argument and Options.Workers for the knob.
package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"trajmotif/internal/bounds"
	"trajmotif/internal/dmatrix"
	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

// BoundSet selects which lower bounds BTM uses, enabling the bound
// ablations of Figures 13-16.
type BoundSet int

const (
	// BoundsRelaxed is the paper's default configuration: LBcell plus the
	// relaxed O(1)-amortized cross and band bounds (§4.3-4.4).
	BoundsRelaxed BoundSet = iota
	// BoundsTight uses the unrelaxed per-subset bounds of §4.2 (O(n) and
	// O(ξn) per subset). Exponentially more expensive to evaluate over all
	// subsets; used by the tight-vs-relaxed study (Figures 13-14).
	BoundsTight
	// BoundsCellOnly uses only LBcell (Figure 16's first variant).
	BoundsCellOnly
	// BoundsCellCross uses LBcell + relaxed cross (Figure 16's second
	// variant).
	BoundsCellCross
)

func (b BoundSet) String() string {
	switch b {
	case BoundsRelaxed:
		return "cell+rcross+rband"
	case BoundsTight:
		return "tight"
	case BoundsCellOnly:
		return "cell"
	case BoundsCellCross:
		return "cell+rcross"
	}
	return fmt.Sprintf("BoundSet(%d)", int(b))
}

// Options tunes the search; the zero value requests the paper's defaults.
type Options struct {
	// Dist is the ground distance; nil selects geo.Haversine (§3).
	Dist geo.DistanceFunc
	// Bounds selects the bound configuration for BTM.
	Bounds BoundSet
	// Unsorted disables the ascending-LB processing order of §4.4
	// ("prioritizing search order"), for the search-order ablation.
	Unsorted bool
	// DisableEndCross disables the within-subset end-cross cap
	// (Alg. 2 lines 12-13), for ablation.
	DisableEndCross bool
	// CollectBreakdown computes the per-bound pruning attribution used by
	// Figure 15 after the search completes. Costs one extra O(n²) pass.
	CollectBreakdown bool
	// DisableEarlyAbandon turns off the kernel-level early abandoning of
	// subset dynamic programs against the best-so-far bound (on by
	// default), for the early-abandoning ablation. Never changes results,
	// only the number of DP cells expanded.
	DisableEarlyAbandon bool
	// Epsilon enables (1+ε)-approximate discovery, the future-work
	// direction of the paper's §7: a candidate set is pruned once its
	// lower bound reaches bsf/(1+ε), so the returned distance is at most
	// (1+ε) times the optimum. Zero keeps the search exact.
	Epsilon float64
	// Workers bounds within-search parallelism: the candidate-subset feed
	// is sharded across this many sweep engines draining one shared
	// best-so-far bound (see engine.go). Zero selects GOMAXPROCS; results
	// — including effort counters — are byte-identical for every worker
	// count. A custom Dist must be safe for concurrent use when more than
	// one worker runs.
	Workers int
	// Artifacts, when non-nil, supplies the ground-distance grid and the
	// relaxed bound tables instead of computing them from scratch — the
	// serve-mode trajectory store plugs in here so repeated queries skip
	// grid construction entirely. Reuse is credited to
	// Stats.GridRebuildsAvoided; results are unaffected because a
	// conforming source returns artifacts bit-identical to a fresh
	// computation. Ignored by GTM* (its on-the-fly grid is never
	// materialized, so there is nothing to reuse).
	Artifacts ArtifactSource
	// Float32Grids stores the ground-distance grid in float32: values
	// are computed in float64 and rounded once, halving grid memory and
	// cache traffic. Results are exact with respect to the rounded grid
	// (the bound tables derive from the same grid, so the search stays
	// internally consistent), which means distances can differ from the
	// float64 run by ≤ 2⁻²⁴ relative — this mode is gated by the
	// float32 equivalence suite, not the byte-parity suites. Ignored by
	// GTM*.
	Float32Grids bool
}

// ArtifactRequest describes the precomputed inputs of one search
// instance: the ground-distance grid between point sequences A and B (B
// aliases A for the single-trajectory problem) and, when WithBounds is
// set, the point-level relaxed bound tables for minimum motif length Xi.
type ArtifactRequest struct {
	A, B       []geo.Point
	Self       bool
	Xi         int
	WithBounds bool
	Dist       geo.DistanceFunc
	Workers    int
	// Float32 requests float32 grid storage (see Options.Float32Grids).
	// Sources must key float32 artifacts separately from float64 ones:
	// serving one to a request for the other would silently change
	// results between cached and uncached runs.
	Float32 bool
}

// ArtifactSource supplies search artifacts, possibly memoized across
// searches (the serve-mode store). Implementations must be safe for
// concurrent use and must return artifacts bit-identical to a fresh
// computation — sound across worker counts because dmatrix's parallel
// constructors are themselves bit-identical for every worker count.
// reused counts the constructions served from a cache instead of built
// (a grid and a bound table count one each); searches credit it to
// Stats.GridRebuildsAvoided.
type ArtifactSource interface {
	Artifacts(req ArtifactRequest) (g *dmatrix.Matrix, rb *bounds.Relaxed, reused int)
}

// computeArtifacts is the default source: always build, never cache.
type computeArtifacts struct{}

func (computeArtifacts) Artifacts(req ArtifactRequest) (*dmatrix.Matrix, *bounds.Relaxed, int) {
	var g *dmatrix.Matrix
	if req.Self {
		g = dmatrix.ComputeSelfParallel(req.A, req.Dist, req.Workers)
	} else {
		g = dmatrix.ComputeCrossParallel(req.A, req.B, req.Dist, req.Workers)
	}
	if req.Float32 {
		// Round before deriving bounds so bound tables and grid agree.
		g = g.Compact32()
	}
	var rb *bounds.Relaxed
	if req.WithBounds {
		rb = bounds.NewRelaxed(g, bounds.PointParams(req.Xi, req.Self))
	}
	return g, rb, 0
}

// ResolveArtifacts maps the Options.Artifacts convention to a concrete
// source: nil selects the always-compute default. Exported for the
// drivers outside this package (group's GTM) that resolve artifacts
// themselves.
func ResolveArtifacts(src ArtifactSource) ArtifactSource {
	if src == nil {
		return computeArtifacts{}
	}
	return src
}

func (o *Options) artifacts() ArtifactSource {
	if o == nil {
		return computeArtifacts{}
	}
	return ResolveArtifacts(o.Artifacts)
}

func (o *Options) dist() geo.DistanceFunc {
	if o == nil || o.Dist == nil {
		return geo.Haversine
	}
	return o.Dist
}

// Stats reports search effort and memory, feeding Figures 13-16 and 19.
type Stats struct {
	N, M, Xi int

	// Subsets is the number of feasible candidate subsets CS_{i,j}.
	Subsets int64
	// SubsetsProcessed survived every lower bound and had their DP run.
	SubsetsProcessed int64
	// SubsetsAbandoned counts processed subsets whose DP was cut short by
	// the kernel's early abandoning: a completed row's minimum proved no
	// remaining candidate could beat the best-so-far bound.
	SubsetsAbandoned int64
	// DPCells is the number of dynamic-programming cells expanded.
	DPCells int64
	// GridRebuildsAvoided counts ground-distance grid (and bound-array)
	// constructions skipped by reuse: top-k rounds after the first share
	// the first round's grid instead of recomputing it, and searches fed
	// from a memoizing ArtifactSource (the serve-mode store) credit every
	// cache hit here — extending the accounting across requests.
	GridRebuildsAvoided int64

	// Pruning attribution (filled when Options.CollectBreakdown is set):
	// each pruned subset is credited to the first bound that disqualifies
	// it, evaluated in the order cell, cross, band — the accounting of
	// Figure 15.
	PrunedByCell, PrunedByCross, PrunedByBand int64

	// Approximate principal memory: grid + bound arrays + candidate list.
	PeakBytes int64

	Precompute time.Duration
	Search     time.Duration
}

// PruneRatio returns the fraction of candidate subsets eliminated without
// a DFD computation.
func (s Stats) PruneRatio() float64 {
	if s.Subsets == 0 {
		return 0
	}
	return 1 - float64(s.SubsetsProcessed)/float64(s.Subsets)
}

// Result is a discovered motif: the two subtrajectory legs and their
// discrete Fréchet distance.
type Result struct {
	// A is the first leg S_{i,ie}; B is the second leg S_{j,je} (of the
	// same trajectory for Problem 1, of the second trajectory for the
	// two-trajectory variant).
	A, B traj.Span
	// Distance is the exact DFD of the pair, in the ground distance's
	// unit (meters under haversine).
	Distance float64
	Stats    Stats
}

// ErrTooShort is returned when no feasible candidate pair exists for the
// given trajectory length(s) and ξ.
var ErrTooShort = errors.New("core: trajectory too short for the requested minimum motif length")

// problem captures one search instance over a ground-distance grid.
type problem struct {
	g    dmatrix.Grid
	n, m int
	xi   int
	self bool
}

func (p problem) feasible() bool {
	if p.self {
		return p.n >= 2*p.xi+4
	}
	return p.n >= p.xi+2 && p.m >= p.xi+2
}

// CrossFeasible reports whether a two-trajectory instance with lengths n
// and m admits any candidate pair at minimum motif length xi — the exact
// condition under which the cross searches return ErrTooShort instead of
// a result. Pre-filters in front of the search (the spatial index ahead
// of batch.DiscoverAllPairsStream) must dispatch infeasible pairs anyway
// so their error items match the unfiltered path byte for byte.
func CrossFeasible(n, m, xi int) bool {
	return problem{n: n, m: m, xi: xi}.feasible()
}

// startRanges yields the feasible start-cell ranges. For Problem 1 a
// subset (i, j) is feasible iff some candidate i < ie < j < je with both
// legs longer than ξ steps exists: j in [i+ξ+2, n-ξ-2]. For the
// two-trajectory variant the legs are independent.
func (p problem) iMax() int {
	if p.self {
		return p.n - 2*p.xi - 4
	}
	return p.n - p.xi - 2
}

func (p problem) jRange(i int) (lo, hi int) {
	if p.self {
		return i + p.xi + 2, p.n - p.xi - 2
	}
	return 0, p.m - p.xi - 2
}

// ieMax returns the largest candidate end index of the first leg for a
// subset rooted at (i, j).
func (p problem) ieMax(j int) int {
	if p.self {
		return j - 1
	}
	return p.n - 1
}

// Searcher is the shared search context: it owns the problem geometry,
// the best-so-far motif bound (bsf) with its witness, the ε state, the
// exclude predicate, and the merged statistics, and it coordinates a pool
// of per-worker sweep engines (engine.go) that run the candidate-subset
// dynamic programs. It is shared by BTM (which feeds it every feasible
// subset in LB order) and by GTM/GTM* (which feed it only the subsets
// surviving group-level pruning, with a bsf possibly pre-tightened by
// group upper bounds).
type Searcher struct {
	p  problem
	rb *bounds.Relaxed // nil disables end-cross capping (BruteDP)

	bsf float64
	// bestKnown records whether bsf is witnessed by a concrete pair. Group
	// upper bounds (GUB_DFD, §5.3) may tighten bsf to the exact motif
	// value before any pair is materialized; in that state candidates
	// matching bsf exactly must still be accepted and subsets with
	// LB == bsf must still be expanded, or the motif would be lost.
	bestKnown bool
	best      Result
	// bestPos is the feed position of the witnessing subset, the
	// tie-breaking component of the canonical witness order (engine.go).
	bestPos int64
	// seq numbers consumed feed positions across ProcessList/ProcessSubset
	// calls so canonical positions stay globally ordered.
	seq int64

	endCross bool
	// earlyAbandon stops a subset's DP once a completed row's minimum —
	// a lower bound on every later cell (the kernel's row-crossing
	// argument) — can no longer beat bsf. On by default.
	earlyAbandon bool
	stats        Stats

	// approxFactor is 1+ε; Prunable compares bounds against
	// bsf/approxFactor, which yields a (1+ε)-approximation (see
	// Options.Epsilon). Exactly 1 for exact search.
	approxFactor float64

	// exclude, when non-nil, rejects candidate pairs during bsf updates;
	// used by top-k discovery to mask already-reported motifs.
	exclude func(a, b traj.Span) bool

	// workers is the sweep-engine pool size; engines are created lazily
	// and persist across blocks so DP scratch allocates once per worker.
	workers     int
	engines     []*engine
	survScratch []int
}

// NewSearcher builds a search engine over grid g. rb may be nil to forgo
// end-cross capping. For the single-trajectory problem, pass self=true.
// The searcher starts single-worker; see SetWorkers.
func NewSearcher(g dmatrix.Grid, xi int, self bool, rb *bounds.Relaxed, endCross bool) *Searcher {
	n, m := g.Dims()
	return &Searcher{
		p:            problem{g: g, n: n, m: m, xi: xi, self: self},
		rb:           rb,
		bsf:          math.Inf(1),
		endCross:     endCross && rb != nil,
		earlyAbandon: true,
		approxFactor: 1,
		workers:      1,
	}
}

// ResolveWorkers maps the Options.Workers convention to a concrete pool
// size: non-positive selects GOMAXPROCS.
func ResolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// SetWorkers sizes the sweep-engine pool (non-positive selects
// GOMAXPROCS). The worker count never changes results or effort counters
// — see engine.go on determinism — only wall-clock time.
func (s *Searcher) SetWorkers(w int) { s.workers = ResolveWorkers(w) }

// Workers returns the resolved sweep-engine pool size.
func (s *Searcher) Workers() int { return s.workers }

// SetEarlyAbandon toggles the kernel-level early abandoning of subset DPs
// against the best-so-far bound. It is on by default; disabling it only
// increases the number of DP cells expanded, never changes results.
func (s *Searcher) SetEarlyAbandon(on bool) { s.earlyAbandon = on }

// SetEpsilon switches the searcher to (1+eps)-approximate pruning.
// Negative values are treated as zero (exact).
func (s *Searcher) SetEpsilon(eps float64) {
	if eps < 0 {
		eps = 0
	}
	s.approxFactor = 1 + eps
}

// SetExclude installs a candidate filter consulted before bsf updates;
// pairs the filter rejects are never reported (top-k support). Pass nil
// to clear.
func (s *Searcher) SetExclude(f func(a, b traj.Span) bool) { s.exclude = f }

// Snapshot freezes the current shared bound for a block of work; all
// pruning within the block consults the snapshot so the block's outcome
// is schedule-free.
func (s *Searcher) Snapshot() Snapshot {
	return Snapshot{bsf: s.bsf, known: s.bestKnown, approxFactor: s.approxFactor}
}

// Bsf returns the current best-so-far distance.
func (s *Searcher) Bsf() float64 { return s.bsf }

// TightenBsf lowers bsf to ub when ub is smaller. ub must be a valid upper
// bound on the motif distance (e.g. GUB_DFD of a feasible group pair); the
// concrete witnessing pair is left unknown.
func (s *Searcher) TightenBsf(ub float64) {
	if ub < s.bsf {
		s.bsf = ub
		s.bestKnown = false
	}
}

// Prunable reports whether a candidate set with lower bound lb can be
// skipped without losing the motif (or, with ε-approximation enabled,
// without losing the (1+ε) guarantee). The relaxation applies only once a
// concrete witness is held: while bsf rests on an unwitnessed group upper
// bound (GUB_DFD), relaxed pruning could discard every candidate matching
// bsf and end the search without a materialized pair, so until then only
// strictly-worse subsets are pruned. Loosening pruning can only process
// more subsets, so the (1+ε) guarantee is unaffected.
func (s *Searcher) Prunable(lb float64) bool {
	return prunable(lb, s.bsf, s.bestKnown, s.approxFactor)
}

// ProcessSubset expands candidate subset CS_{i,j}: one dynamic program
// over all end cells (ie, je), updating bsf whenever a feasible candidate
// improves it. This is the shared-DP insight of Algorithm 1 lines 4-13 and
// Algorithm 2 lines 6-11, run on a single sweep engine with the live
// shared bound as its snapshot and merged immediately — exactly the
// sequential semantics. Drivers with a whole feed of subsets should use
// ProcessList, which shards the feed across the worker pool.
func (s *Searcher) ProcessSubset(i, j int) {
	e := s.engineFor(0)
	e.reset(s, s.Snapshot())
	e.processSubset(s.seq, i, j)
	s.seq++
	s.mergeWitness(e.best)
	s.stats.mergeEffort(&e.stats)
}

// result finalizes the Result, verifying a witness exists.
func (s *Searcher) result() (*Result, error) {
	if !s.bestKnown {
		return nil, errors.New("core: internal error: search ended without a witnessed motif")
	}
	r := s.best
	r.Stats = s.stats
	return &r, nil
}

// Result finalizes and returns the search outcome; it errors if no
// concrete motif pair was witnessed (which, for a feasible instance fed
// every unpruned subset, indicates a driver bug).
func (s *Searcher) Result() (*Result, error) { return s.result() }

// Stats exposes the mutable search statistics for external drivers
// (GTM/GTM* account their grouping phases here).
func (s *Searcher) Stats() *Stats { return &s.stats }

// Feasible reports whether any candidate pair exists for this instance.
func (s *Searcher) Feasible() bool { return s.p.feasible() }

// IMax returns the largest feasible first-leg start index.
func (s *Searcher) IMax() int { return s.p.iMax() }

// JRange returns the feasible second-leg start range for first start i.
func (s *Searcher) JRange(i int) (lo, hi int) { return s.p.jRange(i) }

// BruteDP is Algorithm 1: enumerate every feasible start pair (i, j) and
// run the shared dynamic program, with all-pair ground distances
// precomputed. O(n⁴) time, O(n²) space.
func BruteDP(t *traj.Trajectory, xi int, opt *Options) (*Result, error) {
	return bruteDP(t.Points, t.Points, xi, true, opt)
}

// BruteDPCross is Algorithm 1 adapted to the two-trajectory variant (§3):
// the second leg ranges over trajectory u, without ordering constraints.
func BruteDPCross(t, u *traj.Trajectory, xi int, opt *Options) (*Result, error) {
	return bruteDP(t.Points, u.Points, xi, false, opt)
}

func bruteDP(a, b []geo.Point, xi int, self bool, opt *Options) (*Result, error) {
	if xi < 0 {
		return nil, fmt.Errorf("core: negative minimum motif length %d", xi)
	}
	workers := ResolveWorkers(optWorkers(opt))
	start := time.Now()
	g, _, reused := opt.artifacts().Artifacts(ArtifactRequest{
		A: a, B: b, Self: self, Dist: opt.dist(), Workers: workers,
		Float32: opt != nil && opt.Float32Grids,
	})
	s := NewSearcher(g, xi, self, nil, false)
	s.SetWorkers(workers)
	s.SetEarlyAbandon(opt == nil || !opt.DisableEarlyAbandon)
	if !s.p.feasible() {
		return nil, ErrTooShort
	}
	s.stats.N, s.stats.M, s.stats.Xi = s.p.n, s.p.m, xi
	s.stats.GridRebuildsAvoided = int64(reused)

	// Algorithm 1 has no bounds: feed every feasible subset with a
	// never-prunable LB, in start-cell order.
	neverPrune := math.Inf(-1)
	list := s.BuildEntries(func(i, j int) float64 { return neverPrune }, workers)
	s.stats.Subsets = int64(len(list))
	s.stats.PeakBytes = g.Bytes() + int64(len(list))*16
	s.stats.Precompute = time.Since(start)

	searchStart := time.Now()
	s.ProcessList(list, false)
	s.stats.Search = time.Since(searchStart)
	return s.result()
}

func optWorkers(opt *Options) int {
	if opt == nil {
		return 0
	}
	return opt.Workers
}

// BTM is Algorithm 2: compute lower bounds for every candidate subset,
// process subsets in ascending LB order, and stop as soon as the next
// bound reaches bsf. Worst case O(n⁴), typically orders of magnitude less.
func BTM(t *traj.Trajectory, xi int, opt *Options) (*Result, error) {
	return btm(t.Points, t.Points, xi, true, opt)
}

// BTMCross is Algorithm 2 for the two-trajectory variant.
func BTMCross(t, u *traj.Trajectory, xi int, opt *Options) (*Result, error) {
	return btm(t.Points, u.Points, xi, false, opt)
}

func btm(a, b []geo.Point, xi int, self bool, opt *Options) (*Result, error) {
	if xi < 0 {
		return nil, fmt.Errorf("core: negative minimum motif length %d", xi)
	}
	if opt == nil {
		opt = &Options{}
	}
	workers := ResolveWorkers(opt.Workers)
	start := time.Now()
	// Relaxed arrays are always requested: even in tight mode they back the
	// end-cross cap, whose relaxed form is what Alg. 2 uses at line 12.
	g, rb, reused := opt.artifacts().Artifacts(ArtifactRequest{
		A: a, B: b, Self: self, Xi: xi, WithBounds: true, Dist: opt.dist(), Workers: workers,
		Float32: opt != nil && opt.Float32Grids,
	})
	var tb *bounds.Tight
	if opt.Bounds == BoundsTight {
		tb = bounds.NewTight(g, xi, self)
	}

	s := NewSearcher(g, xi, self, rb, !opt.DisableEndCross)
	s.SetWorkers(workers)
	s.SetEpsilon(opt.Epsilon)
	s.SetEarlyAbandon(!opt.DisableEarlyAbandon)
	if !s.p.feasible() {
		return nil, ErrTooShort
	}
	s.stats.N, s.stats.M, s.stats.Xi = s.p.n, s.p.m, xi
	s.stats.GridRebuildsAvoided = int64(reused)

	subsetLB := func(i, j int) float64 {
		cell := g.At(i, j)
		switch opt.Bounds {
		case BoundsTight:
			return tb.SubsetLB(i, j)
		case BoundsCellOnly:
			return cell
		case BoundsCellCross:
			return math.Max(cell, rb.StartCross(i, j))
		default:
			return rb.SubsetLB(cell, i, j)
		}
	}

	// Build the candidate-subset list (Alg. 2 line 3) and order it
	// canonically — both sharded across the workers.
	list := s.BuildEntries(subsetLB, workers)
	s.stats.Subsets = int64(len(list))
	if !opt.Unsorted {
		SortEntries(list, workers)
	}
	s.stats.PeakBytes = g.Bytes() + rb.Bytes() + int64(len(list))*16
	s.stats.Precompute = time.Since(start)

	searchStart := time.Now()
	s.ProcessList(list, !opt.Unsorted)
	s.stats.Search = time.Since(searchStart)

	if opt.CollectBreakdown {
		collectBreakdown(&s.stats, g, rb, s.p, s.bsf)
	}
	return s.result()
}

// collectBreakdown attributes each pruned subset to the first bound that
// disqualifies it against the final bsf, evaluated cell → cross → band —
// the stacked-bar accounting of Figure 15. Subsets no bound eliminates are
// the ones whose exact DFD work was unavoidable.
func collectBreakdown(st *Stats, g dmatrix.Grid, rb *bounds.Relaxed, p problem, bsf float64) {
	st.PrunedByCell, st.PrunedByCross, st.PrunedByBand = 0, 0, 0
	var survived int64
	for i := 0; i <= p.iMax(); i++ {
		lo, hi := p.jRange(i)
		for j := lo; j <= hi; j++ {
			cell, cross, band := rb.Parts(g.At(i, j), i, j)
			switch {
			case cell >= bsf:
				st.PrunedByCell++
			case cross >= bsf:
				st.PrunedByCross++
			case band >= bsf:
				st.PrunedByBand++
			default:
				survived++
			}
		}
	}
	_ = survived // Subsets - pruned = survivors; derivable by callers
}
