// Package core implements the paper's primary contribution: exact
// trajectory motif discovery under the discrete Fréchet distance.
//
// It provides the baseline BruteDP (Algorithm 1) and the bounding-based
// BTM (Algorithm 2) for both problem variants — the motif within a single
// trajectory (Problem 1, with the non-overlap constraint i < ie < j < je)
// and the motif between two trajectories. The grouping-based GTM and GTM*
// algorithms in internal/group drive the same search engine through the
// exported Searcher type.
//
// The shared engine exploits the paper's observation that all candidates
// of a candidate subset CS_{i,j} (same start cell) share one dynamic
// program: dF[ie][je] = max(dG(ie,je), min of the three predecessors),
// swept once per subset with two rolling rows (O(n) working space).
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"trajmotif/internal/bounds"
	"trajmotif/internal/dist"
	"trajmotif/internal/dmatrix"
	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

// BoundSet selects which lower bounds BTM uses, enabling the bound
// ablations of Figures 13-16.
type BoundSet int

const (
	// BoundsRelaxed is the paper's default configuration: LBcell plus the
	// relaxed O(1)-amortized cross and band bounds (§4.3-4.4).
	BoundsRelaxed BoundSet = iota
	// BoundsTight uses the unrelaxed per-subset bounds of §4.2 (O(n) and
	// O(ξn) per subset). Exponentially more expensive to evaluate over all
	// subsets; used by the tight-vs-relaxed study (Figures 13-14).
	BoundsTight
	// BoundsCellOnly uses only LBcell (Figure 16's first variant).
	BoundsCellOnly
	// BoundsCellCross uses LBcell + relaxed cross (Figure 16's second
	// variant).
	BoundsCellCross
)

func (b BoundSet) String() string {
	switch b {
	case BoundsRelaxed:
		return "cell+rcross+rband"
	case BoundsTight:
		return "tight"
	case BoundsCellOnly:
		return "cell"
	case BoundsCellCross:
		return "cell+rcross"
	}
	return fmt.Sprintf("BoundSet(%d)", int(b))
}

// Options tunes the search; the zero value requests the paper's defaults.
type Options struct {
	// Dist is the ground distance; nil selects geo.Haversine (§3).
	Dist geo.DistanceFunc
	// Bounds selects the bound configuration for BTM.
	Bounds BoundSet
	// Unsorted disables the ascending-LB processing order of §4.4
	// ("prioritizing search order"), for the search-order ablation.
	Unsorted bool
	// DisableEndCross disables the within-subset end-cross cap
	// (Alg. 2 lines 12-13), for ablation.
	DisableEndCross bool
	// CollectBreakdown computes the per-bound pruning attribution used by
	// Figure 15 after the search completes. Costs one extra O(n²) pass.
	CollectBreakdown bool
	// DisableEarlyAbandon turns off the kernel-level early abandoning of
	// subset dynamic programs against the best-so-far bound (on by
	// default), for the early-abandoning ablation. Never changes results,
	// only the number of DP cells expanded.
	DisableEarlyAbandon bool
	// Epsilon enables (1+ε)-approximate discovery, the future-work
	// direction of the paper's §7: a candidate set is pruned once its
	// lower bound reaches bsf/(1+ε), so the returned distance is at most
	// (1+ε) times the optimum. Zero keeps the search exact.
	Epsilon float64
}

func (o *Options) dist() geo.DistanceFunc {
	if o == nil || o.Dist == nil {
		return geo.Haversine
	}
	return o.Dist
}

// Stats reports search effort and memory, feeding Figures 13-16 and 19.
type Stats struct {
	N, M, Xi int

	// Subsets is the number of feasible candidate subsets CS_{i,j}.
	Subsets int64
	// SubsetsProcessed survived every lower bound and had their DP run.
	SubsetsProcessed int64
	// SubsetsAbandoned counts processed subsets whose DP was cut short by
	// the kernel's early abandoning: a completed row's minimum proved no
	// remaining candidate could beat the best-so-far bound.
	SubsetsAbandoned int64
	// DPCells is the number of dynamic-programming cells expanded.
	DPCells int64

	// Pruning attribution (filled when Options.CollectBreakdown is set):
	// each pruned subset is credited to the first bound that disqualifies
	// it, evaluated in the order cell, cross, band — the accounting of
	// Figure 15.
	PrunedByCell, PrunedByCross, PrunedByBand int64

	// Approximate principal memory: grid + bound arrays + candidate list.
	PeakBytes int64

	Precompute time.Duration
	Search     time.Duration
}

// PruneRatio returns the fraction of candidate subsets eliminated without
// a DFD computation.
func (s Stats) PruneRatio() float64 {
	if s.Subsets == 0 {
		return 0
	}
	return 1 - float64(s.SubsetsProcessed)/float64(s.Subsets)
}

// Result is a discovered motif: the two subtrajectory legs and their
// discrete Fréchet distance.
type Result struct {
	// A is the first leg S_{i,ie}; B is the second leg S_{j,je} (of the
	// same trajectory for Problem 1, of the second trajectory for the
	// two-trajectory variant).
	A, B traj.Span
	// Distance is the exact DFD of the pair, in the ground distance's
	// unit (meters under haversine).
	Distance float64
	Stats    Stats
}

// ErrTooShort is returned when no feasible candidate pair exists for the
// given trajectory length(s) and ξ.
var ErrTooShort = errors.New("core: trajectory too short for the requested minimum motif length")

// problem captures one search instance over a ground-distance grid.
type problem struct {
	g    dmatrix.Grid
	n, m int
	xi   int
	self bool
}

func (p problem) feasible() bool {
	if p.self {
		return p.n >= 2*p.xi+4
	}
	return p.n >= p.xi+2 && p.m >= p.xi+2
}

// startRanges yields the feasible start-cell ranges. For Problem 1 a
// subset (i, j) is feasible iff some candidate i < ie < j < je with both
// legs longer than ξ steps exists: j in [i+ξ+2, n-ξ-2]. For the
// two-trajectory variant the legs are independent.
func (p problem) iMax() int {
	if p.self {
		return p.n - 2*p.xi - 4
	}
	return p.n - p.xi - 2
}

func (p problem) jRange(i int) (lo, hi int) {
	if p.self {
		return i + p.xi + 2, p.n - p.xi - 2
	}
	return 0, p.m - p.xi - 2
}

// ieMax returns the largest candidate end index of the first leg for a
// subset rooted at (i, j).
func (p problem) ieMax(j int) int {
	if p.self {
		return j - 1
	}
	return p.n - 1
}

// Searcher runs candidate-subset dynamic programs while maintaining the
// best-so-far motif (bsf). It is shared by BTM (which feeds it every
// feasible subset in LB order) and by GTM/GTM* (which feed it only the
// subsets surviving group-level pruning, with a bsf possibly pre-tightened
// by group upper bounds).
type Searcher struct {
	p  problem
	rb *bounds.Relaxed // nil disables end-cross capping (BruteDP)

	bsf float64
	// bestKnown records whether bsf is witnessed by a concrete pair. Group
	// upper bounds (GUB_DFD, §5.3) may tighten bsf to the exact motif
	// value before any pair is materialized; in that state candidates
	// matching bsf exactly must still be accepted and subsets with
	// LB == bsf must still be expanded, or the motif would be lost.
	bestKnown bool
	best      Result

	endCross bool
	// earlyAbandon stops a subset's DP once a completed row's minimum —
	// a lower bound on every later cell (the kernel's row-crossing
	// argument) — can no longer beat bsf. On by default.
	earlyAbandon bool
	stats        Stats

	// approxFactor is 1+ε; Prunable compares bounds against
	// bsf/approxFactor, which yields a (1+ε)-approximation (see
	// Options.Epsilon). Exactly 1 for exact search.
	approxFactor float64

	// exclude, when non-nil, rejects candidate pairs during bsf updates;
	// used by top-k discovery to mask already-reported motifs.
	exclude func(a, b traj.Span) bool

	// reusable DP rows, indexed by je - j.
	prev, cur []float64
}

// NewSearcher builds a search engine over grid g. rb may be nil to forgo
// end-cross capping. For the single-trajectory problem, pass self=true.
func NewSearcher(g dmatrix.Grid, xi int, self bool, rb *bounds.Relaxed, endCross bool) *Searcher {
	n, m := g.Dims()
	return &Searcher{
		p:            problem{g: g, n: n, m: m, xi: xi, self: self},
		rb:           rb,
		bsf:          math.Inf(1),
		endCross:     endCross && rb != nil,
		earlyAbandon: true,
		approxFactor: 1,
		prev:         make([]float64, m),
		cur:          make([]float64, m),
	}
}

// SetEarlyAbandon toggles the kernel-level early abandoning of subset DPs
// against the best-so-far bound. It is on by default; disabling it only
// increases the number of DP cells expanded, never changes results.
func (s *Searcher) SetEarlyAbandon(on bool) { s.earlyAbandon = on }

// SetEpsilon switches the searcher to (1+eps)-approximate pruning.
// Negative values are treated as zero (exact).
func (s *Searcher) SetEpsilon(eps float64) {
	if eps < 0 {
		eps = 0
	}
	s.approxFactor = 1 + eps
}

// SetExclude installs a candidate filter consulted before bsf updates;
// pairs the filter rejects are never reported (top-k support). Pass nil
// to clear.
func (s *Searcher) SetExclude(f func(a, b traj.Span) bool) { s.exclude = f }

// Bsf returns the current best-so-far distance.
func (s *Searcher) Bsf() float64 { return s.bsf }

// TightenBsf lowers bsf to ub when ub is smaller. ub must be a valid upper
// bound on the motif distance (e.g. GUB_DFD of a feasible group pair); the
// concrete witnessing pair is left unknown.
func (s *Searcher) TightenBsf(ub float64) {
	if ub < s.bsf {
		s.bsf = ub
		s.bestKnown = false
	}
}

// abandonable reports whether a DP row minimum proves that no remaining
// cell of the current subset can change the search outcome. It mirrors
// the candidate-acceptance predicate exactly — every later cell is at
// least rowMin, so none can pass `v < bsf` (or `v <= bsf` while the best
// is unwitnessed) — and deliberately does not apply Prunable's (1+ε)
// relaxation: early abandoning is a pure work-saver and must never change
// results, even in approximate mode.
func (s *Searcher) abandonable(rowMin float64) bool {
	if s.bestKnown {
		return rowMin >= s.bsf
	}
	return rowMin > s.bsf
}

// Prunable reports whether a candidate set with lower bound lb can be
// skipped without losing the motif (or, with ε-approximation enabled,
// without losing the (1+ε) guarantee). The relaxation applies only once a
// concrete witness is held: while bsf rests on an unwitnessed group upper
// bound (GUB_DFD), relaxed pruning could discard every candidate matching
// bsf and end the search without a materialized pair, so until then only
// strictly-worse subsets are pruned. Loosening pruning can only process
// more subsets, so the (1+ε) guarantee is unaffected.
func (s *Searcher) Prunable(lb float64) bool {
	if !s.bestKnown {
		return lb > s.bsf
	}
	threshold := s.bsf
	if s.approxFactor > 1 && !math.IsInf(threshold, 1) {
		threshold /= s.approxFactor
	}
	return lb >= threshold
}

// ProcessSubset expands candidate subset CS_{i,j}: one dynamic program
// over all end cells (ie, je), updating bsf whenever a feasible candidate
// improves it. This is the shared-DP insight of Algorithm 1 lines 4-13 and
// Algorithm 2 lines 6-11, with the end-cross cap of lines 12-13 applied
// per subset (see DESIGN.md §1.2). The recurrence itself is the canonical
// kernel's row primitives (dist.DFDBoundaryRow / dist.DFDRelaxRow); this
// method contributes the candidate accounting and two subset-level cuts:
//
//   - end-cross cap: every candidate ending at a row beyond je must cross
//     row je+1, so its DFD is at least Rmin[je]; once that disqualifies,
//     the row horizon shrinks (relaxed Eq. 9/13; Alg. 2 lines 12-13);
//   - early abandoning: the kernel row minimum lower-bounds every cell of
//     all later rows, so once it is prunable against bsf the whole rest of
//     the subset's DP is skipped.
func (s *Searcher) ProcessSubset(i, j int) {
	p := &s.p
	ieHi := p.ieMax(j)
	jmax := p.m - 1
	s.stats.SubsetsProcessed++

	// Boundary row (ie = i): dF[i][je] is the running max of dG(i, j..je),
	// the DFD of the single-point prefix against the growing second leg.
	dist.DFDBoundaryRow(p.g, i, j, jmax, s.prev)

	// colMax tracks the boundary column dF[ie][j] = max dG(i..ie, j).
	colMax := s.prev[0]
	cells := int64(0)
	for ie := i + 1; ie <= ieHi; ie++ {
		// End-cross cap, re-evaluated per row as bsf tightens.
		if s.endCross {
			for je := j; je < jmax; je++ {
				if s.Prunable(s.rb.EndRowMin(je)) {
					jmax = je
					break
				}
			}
		}

		if d := p.g.At(ie, j); d > colMax {
			colMax = d
		}
		s.cur[0] = colMax
		rowMin := dist.DFDRelaxRow(p.g, ie, j, jmax, s.prev, s.cur)
		cells += int64(jmax-j) + 1

		// Candidate scan: cells with both legs longer than ξ steps.
		if ie >= i+p.xi+1 {
			for je := j + p.xi + 1; je <= jmax; je++ {
				v := s.cur[je-j]
				if v < s.bsf || (!s.bestKnown && v <= s.bsf) {
					a := traj.Span{Start: i, End: ie}
					b := traj.Span{Start: j, End: je}
					if s.exclude == nil || !s.exclude(a, b) {
						s.bsf = v
						s.bestKnown = true
						s.best.A, s.best.B = a, b
						s.best.Distance = v
					}
				}
			}
		}

		if s.earlyAbandon && s.abandonable(rowMin) {
			if ie < ieHi {
				s.stats.SubsetsAbandoned++
			}
			break
		}
		s.prev, s.cur = s.cur, s.prev
	}
	s.stats.DPCells += cells
}

// result finalizes the Result, verifying a witness exists.
func (s *Searcher) result() (*Result, error) {
	if !s.bestKnown {
		return nil, errors.New("core: internal error: search ended without a witnessed motif")
	}
	r := s.best
	r.Stats = s.stats
	return &r, nil
}

// Result finalizes and returns the search outcome; it errors if no
// concrete motif pair was witnessed (which, for a feasible instance fed
// every unpruned subset, indicates a driver bug).
func (s *Searcher) Result() (*Result, error) { return s.result() }

// Stats exposes the mutable search statistics for external drivers
// (GTM/GTM* account their grouping phases here).
func (s *Searcher) Stats() *Stats { return &s.stats }

// Feasible reports whether any candidate pair exists for this instance.
func (s *Searcher) Feasible() bool { return s.p.feasible() }

// IMax returns the largest feasible first-leg start index.
func (s *Searcher) IMax() int { return s.p.iMax() }

// JRange returns the feasible second-leg start range for first start i.
func (s *Searcher) JRange(i int) (lo, hi int) { return s.p.jRange(i) }

// BruteDP is Algorithm 1: enumerate every feasible start pair (i, j) and
// run the shared dynamic program, with all-pair ground distances
// precomputed. O(n⁴) time, O(n²) space.
func BruteDP(t *traj.Trajectory, xi int, opt *Options) (*Result, error) {
	return bruteDP(t.Points, t.Points, xi, true, opt)
}

// BruteDPCross is Algorithm 1 adapted to the two-trajectory variant (§3):
// the second leg ranges over trajectory u, without ordering constraints.
func BruteDPCross(t, u *traj.Trajectory, xi int, opt *Options) (*Result, error) {
	return bruteDP(t.Points, u.Points, xi, false, opt)
}

func bruteDP(a, b []geo.Point, xi int, self bool, opt *Options) (*Result, error) {
	if xi < 0 {
		return nil, fmt.Errorf("core: negative minimum motif length %d", xi)
	}
	start := time.Now()
	var g *dmatrix.Matrix
	if self {
		g = dmatrix.ComputeSelf(a, opt.dist())
	} else {
		g = dmatrix.ComputeCross(a, b, opt.dist())
	}
	s := NewSearcher(g, xi, self, nil, false)
	s.SetEarlyAbandon(opt == nil || !opt.DisableEarlyAbandon)
	if !s.p.feasible() {
		return nil, ErrTooShort
	}
	s.stats.N, s.stats.M, s.stats.Xi = s.p.n, s.p.m, xi
	s.stats.PeakBytes = g.Bytes()
	s.stats.Precompute = time.Since(start)

	searchStart := time.Now()
	for i := 0; i <= s.p.iMax(); i++ {
		lo, hi := s.p.jRange(i)
		for j := lo; j <= hi; j++ {
			s.stats.Subsets++
			s.ProcessSubset(i, j)
		}
	}
	s.stats.Search = time.Since(searchStart)
	return s.result()
}

// entry is one candidate subset with its combined lower bound.
type entry struct {
	lb   float64
	i, j int32
}

// BTM is Algorithm 2: compute lower bounds for every candidate subset,
// process subsets in ascending LB order, and stop as soon as the next
// bound reaches bsf. Worst case O(n⁴), typically orders of magnitude less.
func BTM(t *traj.Trajectory, xi int, opt *Options) (*Result, error) {
	return btm(t.Points, t.Points, xi, true, opt)
}

// BTMCross is Algorithm 2 for the two-trajectory variant.
func BTMCross(t, u *traj.Trajectory, xi int, opt *Options) (*Result, error) {
	return btm(t.Points, u.Points, xi, false, opt)
}

func btm(a, b []geo.Point, xi int, self bool, opt *Options) (*Result, error) {
	if xi < 0 {
		return nil, fmt.Errorf("core: negative minimum motif length %d", xi)
	}
	if opt == nil {
		opt = &Options{}
	}
	start := time.Now()
	var g *dmatrix.Matrix
	if self {
		g = dmatrix.ComputeSelf(a, opt.dist())
	} else {
		g = dmatrix.ComputeCross(a, b, opt.dist())
	}

	// Relaxed arrays are always built: even in tight mode they back the
	// end-cross cap, whose relaxed form is what Alg. 2 uses at line 12.
	rb := bounds.NewRelaxed(g, bounds.PointParams(xi, self))
	var tb *bounds.Tight
	if opt.Bounds == BoundsTight {
		tb = bounds.NewTight(g, xi, self)
	}

	s := NewSearcher(g, xi, self, rb, !opt.DisableEndCross)
	s.SetEpsilon(opt.Epsilon)
	s.SetEarlyAbandon(!opt.DisableEarlyAbandon)
	if !s.p.feasible() {
		return nil, ErrTooShort
	}
	s.stats.N, s.stats.M, s.stats.Xi = s.p.n, s.p.m, xi

	subsetLB := func(i, j int) float64 {
		cell := g.At(i, j)
		switch opt.Bounds {
		case BoundsTight:
			return tb.SubsetLB(i, j)
		case BoundsCellOnly:
			return cell
		case BoundsCellCross:
			return math.Max(cell, rb.StartCross(i, j))
		default:
			return rb.SubsetLB(cell, i, j)
		}
	}

	// Build the candidate-subset list (Alg. 2 line 3).
	var list []entry
	for i := 0; i <= s.p.iMax(); i++ {
		lo, hi := s.p.jRange(i)
		for j := lo; j <= hi; j++ {
			list = append(list, entry{lb: subsetLB(i, j), i: int32(i), j: int32(j)})
		}
	}
	s.stats.Subsets = int64(len(list))
	if !opt.Unsorted {
		sort.Slice(list, func(x, y int) bool { return list[x].lb < list[y].lb })
	}
	s.stats.PeakBytes = g.Bytes() + rb.Bytes() + int64(len(list))*16
	s.stats.Precompute = time.Since(start)

	searchStart := time.Now()
	for _, e := range list {
		if s.Prunable(e.lb) {
			if opt.Unsorted {
				continue // later entries may still qualify
			}
			break // sorted: every remaining bound is at least as large
		}
		s.ProcessSubset(int(e.i), int(e.j))
	}
	s.stats.Search = time.Since(searchStart)

	if opt.CollectBreakdown {
		collectBreakdown(&s.stats, g, rb, s.p, s.bsf)
	}
	return s.result()
}

// collectBreakdown attributes each pruned subset to the first bound that
// disqualifies it against the final bsf, evaluated cell → cross → band —
// the stacked-bar accounting of Figure 15. Subsets no bound eliminates are
// the ones whose exact DFD work was unavoidable.
func collectBreakdown(st *Stats, g dmatrix.Grid, rb *bounds.Relaxed, p problem, bsf float64) {
	st.PrunedByCell, st.PrunedByCross, st.PrunedByBand = 0, 0, 0
	var survived int64
	for i := 0; i <= p.iMax(); i++ {
		lo, hi := p.jRange(i)
		for j := lo; j <= hi; j++ {
			cell, cross, band := rb.Parts(g.At(i, j), i, j)
			switch {
			case cell >= bsf:
				st.PrunedByCell++
			case cross >= bsf:
				st.PrunedByCross++
			case band >= bsf:
				st.PrunedByBand++
			default:
				survived++
			}
		}
	}
	_ = survived // Subsets - pruned = survivors; derivable by callers
}
