// Top-k motif discovery: an extension beyond the paper's Problem 1 in the
// spirit of its trajectory-mining applications (§1), returning the k best
// mutually disjoint motifs instead of only the single best pair.
//
// Definition: motif 1 is the optimal pair of Problem 1; motif r (r > 1) is
// the optimal pair among candidates whose legs are both index-disjoint
// from every leg of motifs 1..r-1. Disjointness keeps the answers
// informative — without it, the next-best pairs are one-sample shifts of
// the best pair.
//
// The implementation runs the BTM engine k times with an exclusion filter;
// every round reuses the grid and bound arrays, so rounds after the first
// cost only the (heavily pruned) search.

package core

import (
	"fmt"
	"time"

	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

// TopK returns up to k disjoint motifs of t in ascending distance order.
// Fewer than k results are returned when the trajectory runs out of
// disjoint candidate regions (that is not an error).
func TopK(t *traj.Trajectory, xi, k int, opt *Options) ([]Result, error) {
	return topK(t.Points, t.Points, xi, k, true, opt)
}

// TopKCross is TopK for the two-trajectory variant: leg A spans are
// disjoint within t, leg B spans within u.
func TopKCross(t, u *traj.Trajectory, xi, k int, opt *Options) ([]Result, error) {
	return topK(t.Points, u.Points, xi, k, false, opt)
}

func topK(a, b []geo.Point, xi, k int, self bool, opt *Options) ([]Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: top-k requires k >= 1, got %d", k)
	}
	if xi < 0 {
		return nil, fmt.Errorf("core: negative minimum motif length %d", xi)
	}
	if opt == nil {
		opt = &Options{}
	}

	workers := ResolveWorkers(opt.Workers)
	start := time.Now()
	g, rb, reused := opt.artifacts().Artifacts(ArtifactRequest{
		A: a, B: b, Self: self, Xi: xi, WithBounds: true, Dist: opt.dist(), Workers: workers,
	})
	probe := NewSearcher(g, xi, self, rb, !opt.DisableEndCross)
	if !probe.Feasible() {
		return nil, ErrTooShort
	}
	precompute := time.Since(start)

	// The grid, bound arrays and candidate-subset list are built once and
	// shared across all k rounds; rounds after the first pay only the
	// (heavily pruned) search. Stats.GridRebuildsAvoided accounts the
	// constructions this reuse skips.
	list := probe.BuildEntries(func(i, j int) float64 {
		return rb.SubsetLB(g.At(i, j), i, j)
	}, workers)
	SortEntries(list, workers)

	var found []Result
	overlapsAny := func(sp traj.Span, legs []traj.Span) bool {
		for _, l := range legs {
			if sp.Overlaps(l) {
				return true
			}
		}
		return false
	}
	var legsA, legsB []traj.Span // reported legs per trajectory

	for round := 0; round < k; round++ {
		s := NewSearcher(g, xi, self, rb, !opt.DisableEndCross)
		s.SetWorkers(workers)
		s.SetEpsilon(opt.Epsilon)
		s.SetEarlyAbandon(!opt.DisableEarlyAbandon)
		s.SetExclude(func(pa, pb traj.Span) bool {
			if self {
				all := append(append([]traj.Span{}, legsA...), legsB...)
				return overlapsAny(pa, all) || overlapsAny(pb, all)
			}
			return overlapsAny(pa, legsA) || overlapsAny(pb, legsB)
		})
		// A subset whose start cell already lies inside an excluded region
		// can still host candidates ending elsewhere only if its legs
		// escape the region — the exclusion filter decides per candidate,
		// so subsets are only skipped by the distance bounds.
		s.ProcessList(list, true)
		res, err := s.Result()
		if err != nil {
			break // no disjoint candidate remains
		}
		res.Stats.N, res.Stats.M, res.Stats.Xi = len(a), len(b), xi
		res.Stats.Precompute = precompute
		// Rounds after the first reuse the round-1 grid and bound arrays;
		// reuse from an ArtifactSource is charged, like Precompute, to the
		// first round only — each hit happened exactly once.
		res.Stats.GridRebuildsAvoided = int64(round) + int64(reused)
		precompute, reused = 0, 0
		found = append(found, *res)
		legsA = append(legsA, res.A)
		legsB = append(legsB, res.B)
	}
	if len(found) == 0 {
		return nil, ErrTooShort
	}
	return found, nil
}
