// Streaming batch discovery: the out-of-core counterparts of Discover
// and DiscoverAllPairs. Instead of a materialized []*traj.Trajectory,
// they drain a Source — an iterator yielding one trajectory at a time —
// and bound how many trajectories are resident, so a GeoLife-scale
// corpus directory streams through discovery in O(window) memory while
// results stay byte-identical to the slurp-based calls.

package batch

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"trajmotif/internal/core"
	"trajmotif/internal/geo"
	"trajmotif/internal/group"
	"trajmotif/internal/spatial"
	"trajmotif/internal/traj"
)

// Source yields trajectories one at a time; Next returns io.EOF after
// the last one. trajio.Scanner and *trajio.DirSource satisfy it (the
// interface is redeclared here so the batch layer stays independent of
// file formats). Sources are drained from a single goroutine; they need
// not be safe for concurrent Next calls. Any non-EOF error is terminal
// for the batch streamers — compose sources that capture per-file or
// per-record errors (like DirSource) when the stream should survive bad
// inputs.
type Source interface {
	Next() (*traj.Trajectory, error)
}

// SliceSource adapts an in-memory collection to Source, for symmetry
// and tests.
func SliceSource(ts []*traj.Trajectory) Source { return &sliceSource{ts: ts} }

type sliceSource struct {
	ts  []*traj.Trajectory
	idx int
}

func (s *sliceSource) Next() (*traj.Trajectory, error) {
	if s.idx >= len(s.ts) {
		return nil, io.EOF
	}
	t := s.ts[s.idx]
	s.idx++
	return t, nil
}

// DiscoverStream is Discover over a Source: GTM motif discovery on every
// trajectory the source yields, fanned over the worker pool, with at
// most Workers+1 trajectories resident at any moment (each is released
// to the collector as soon as its search finishes). Items come back in
// stream order and are identical to Discover over the slurped slice.
// A source error ends the stream: the items dispatched so far complete
// and are returned together with the error.
func DiscoverStream(src Source, xi int, opt *Options) ([]Item, error) {
	if xi < 0 {
		return nil, fmt.Errorf("batch: negative minimum motif length %d", xi)
	}
	type job struct {
		idx int
		t   *traj.Trajectory
	}
	var (
		mu    sync.Mutex
		items []Item
	)
	jobs := make(chan job) // unbuffered: residency = in-flight searches
	var wg sync.WaitGroup
	for w := 0; w < opt.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				res, err := group.GTM(jb.t, xi, opt.tau(), opt.search())
				mu.Lock()
				items[jb.idx] = Item{Index: jb.idx, Result: res, Err: err}
				mu.Unlock()
			}
		}()
	}

	var srcErr error
	for idx := 0; ; idx++ {
		t, err := src.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				srcErr = err
			}
			break
		}
		mu.Lock()
		items = append(items, Item{Index: idx}) // slot; worker fills it in
		mu.Unlock()
		if t == nil || t.Len() == 0 {
			mu.Lock()
			items[idx] = Item{Index: idx, Err: fmt.Errorf("batch: nil or empty trajectory at %d", idx)}
			mu.Unlock()
			continue
		}
		jobs <- job{idx: idx, t: t}
	}
	close(jobs)
	wg.Wait()
	return items, srcErr
}

// DiscoverAllPairsStream is DiscoverAllPairs over a Source with a
// residency window: each incoming trajectory is paired with the window-1
// most recent ones before it, so at most window trajectories (plus
// in-flight searches) are resident. window <= 0 retains everything and
// reproduces DiscoverAllPairs exactly; window == 1 pairs nothing. Pairs
// are returned in (i, j) lexicographic order over stream positions.
// Unlike DiscoverStream, a nil or empty trajectory is a terminal error
// (matching DiscoverAllPairs' up-front validation).
//
// With Options.MaxDistance set, only pairs whose motif distance is within
// it are returned (error items always survive); with SpatialPrefilter
// additionally set, pairs whose MBRs are provably farther apart than
// MaxDistance skip the search entirely — see Options for the soundness
// argument.
func DiscoverAllPairsStream(src Source, xi, window int, opt *Options) ([]PairItem, error) {
	if xi < 0 {
		return nil, fmt.Errorf("batch: negative minimum motif length %d", xi)
	}
	var maxd float64
	var ixStats IndexStats
	var minDist spatial.MinDistFunc
	if opt != nil && opt.MaxDistance > 0 {
		maxd = opt.MaxDistance
		if opt.SpatialPrefilter {
			df := opt.search().Dist
			if df == nil {
				df = geo.Haversine
			}
			minDist = spatial.MinDistFor(df) // nil for unknown metrics: no prefilter
		}
	}
	type job struct {
		i, j, slot int
		a, b       *traj.Trajectory
	}
	var (
		mu    sync.Mutex
		items []PairItem
	)
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < opt.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				res, err := group.GTMCross(jb.a, jb.b, xi, opt.tau(), opt.search())
				mu.Lock()
				items[jb.slot] = PairItem{I: jb.i, J: jb.j, Result: res, Err: err}
				mu.Unlock()
			}
		}()
	}

	type retainedT struct {
		idx int
		t   *traj.Trajectory
		mbr spatial.MBR
	}
	var retained []retainedT
	var srcErr error
	for j := 0; ; j++ {
		t, err := src.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				srcErr = err
			}
			break
		}
		if t == nil || t.Len() == 0 {
			srcErr = fmt.Errorf("batch: nil or empty trajectory at %d", j)
			break
		}
		var mbr spatial.MBR
		if minDist != nil {
			mbr = spatial.Bound(t.Points)
		}
		for _, r := range retained {
			if minDist != nil {
				ixStats.Consulted++
				// Too-short pairs must still run so their ErrTooShort
				// items match the unfiltered stream byte for byte.
				if core.CrossFeasible(r.t.Len(), t.Len(), xi) && minDist(r.mbr, mbr) > maxd {
					ixStats.Pruned++
					continue
				}
			}
			mu.Lock()
			slot := len(items)
			items = append(items, PairItem{I: r.idx, J: j})
			mu.Unlock()
			jobs <- job{i: r.idx, j: j, slot: slot, a: r.t, b: t}
		}
		retained = append(retained, retainedT{idx: j, t: t, mbr: mbr})
		if window > 0 {
			for len(retained) > window-1 {
				retained[0] = retainedT{} // release the reference
				retained = retained[1:]
			}
		}
	}
	close(jobs)
	wg.Wait()
	if maxd > 0 {
		// The range post-filter; the spatial pre-filter only ever skips
		// pairs this line would have dropped, which is why the two
		// configurations return identical items.
		kept := items[:0]
		for _, it := range items {
			if it.Err != nil || (it.Result != nil && it.Result.Distance <= maxd) {
				kept = append(kept, it)
			}
		}
		items = kept
	}
	if opt != nil && opt.IndexStats != nil {
		*opt.IndexStats = ixStats
	}
	// Dispatch order is j-major; DiscoverAllPairs returns (i, j)
	// lexicographic. The sort is over result metadata only, so the memory
	// bound on trajectories is untouched.
	sort.Slice(items, func(a, b int) bool {
		if items[a].I != items[b].I {
			return items[a].I < items[b].I
		}
		return items[a].J < items[b].J
	})
	return items, srcErr
}
