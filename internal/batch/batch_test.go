package batch

import (
	"math"
	"testing"

	"trajmotif/internal/core"
	"trajmotif/internal/datagen"
	"trajmotif/internal/group"
	"trajmotif/internal/traj"
)

func fleet(n, points int) []*traj.Trajectory {
	var out []*traj.Trajectory
	for seed := int64(1); seed <= int64(n); seed++ {
		t, err := datagen.Dataset(datagen.TruckName, datagen.Config{Seed: seed, N: points})
		if err != nil {
			panic(err)
		}
		out = append(out, t)
	}
	return out
}

// TestDiscoverMatchesSequential verifies the parallel batch returns
// exactly the sequential per-trajectory results, in input order, across
// worker counts.
func TestDiscoverMatchesSequential(t *testing.T) {
	ts := fleet(6, 150)
	xi := 8
	want := make([]float64, len(ts))
	for k, tr := range ts {
		res, err := group.GTM(tr, xi, 32, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = res.Distance
	}
	for _, workers := range []int{1, 2, 8} {
		items, err := Discover(ts, xi, &Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != len(ts) {
			t.Fatalf("workers=%d: %d items", workers, len(items))
		}
		for k, it := range items {
			if it.Err != nil {
				t.Fatalf("workers=%d item %d: %v", workers, k, it.Err)
			}
			if it.Index != k {
				t.Fatalf("workers=%d: item %d has index %d", workers, k, it.Index)
			}
			if math.Abs(it.Result.Distance-want[k]) > 1e-9 {
				t.Fatalf("workers=%d item %d: %g != sequential %g",
					workers, k, it.Result.Distance, want[k])
			}
		}
	}
}

func TestDiscoverPerItemErrors(t *testing.T) {
	ts := fleet(2, 150)
	short, _ := datagen.Dataset(datagen.TruckName, datagen.Config{Seed: 9, N: 10})
	ts = append(ts, short, nil)
	items, err := Discover(ts, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Err != nil || items[1].Err != nil {
		t.Error("healthy items errored")
	}
	if items[2].Err != core.ErrTooShort {
		t.Errorf("short trajectory: want ErrTooShort, got %v", items[2].Err)
	}
	if items[3].Err == nil {
		t.Error("nil trajectory should carry an error")
	}
	if _, err := Discover(ts, -1, nil); err == nil {
		t.Error("negative xi should fail the whole batch")
	}
}

func TestDiscoverAllPairs(t *testing.T) {
	ts := fleet(4, 120)
	xi := 8
	items, err := DiscoverAllPairs(ts, xi, &Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 6 { // C(4,2)
		t.Fatalf("%d pairs, want 6", len(items))
	}
	// Lexicographic order and sequential agreement.
	slot := 0
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			it := items[slot]
			slot++
			if it.I != i || it.J != j {
				t.Fatalf("slot %d: pair (%d,%d), want (%d,%d)", slot-1, it.I, it.J, i, j)
			}
			if it.Err != nil {
				t.Fatal(it.Err)
			}
			seq, err := group.GTMCross(ts[i], ts[j], xi, 32, nil)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(it.Result.Distance-seq.Distance) > 1e-9 {
				t.Fatalf("pair (%d,%d): %g != %g", i, j, it.Result.Distance, seq.Distance)
			}
		}
	}

	if _, err := DiscoverAllPairs([]*traj.Trajectory{nil}, xi, nil); err == nil {
		t.Error("nil input should fail pair batch upfront")
	}
	if _, err := DiscoverAllPairs(ts, -2, nil); err == nil {
		t.Error("negative xi should fail")
	}
}

func TestOptionDefaults(t *testing.T) {
	var o *Options
	if o.tau() != 32 {
		t.Errorf("nil options tau = %d", o.tau())
	}
	if o.workers() < 1 {
		t.Errorf("nil options workers = %d", o.workers())
	}
	if s := o.search(); s == nil || s.Workers != 1 {
		t.Errorf("nil options search = %+v, want within-search workers pinned to 1", s)
	}
	o = &Options{Tau: 8, Workers: 3}
	if o.tau() != 8 || o.workers() != 3 {
		t.Error("explicit options ignored")
	}
	o = &Options{SearchWorkers: 2}
	if s := o.search(); s.Workers != 2 {
		t.Errorf("SearchWorkers not threaded: got %d", s.Workers)
	}
	o = &Options{SearchWorkers: 2, Search: &core.Options{Workers: 5}}
	if s := o.search(); s.Workers != 5 {
		t.Errorf("explicit Search.Workers should win: got %d", s.Workers)
	}
}
