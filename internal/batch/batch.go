// Package batch runs motif discovery over collections of trajectories
// with bounded concurrency. Fleets, troops and multi-day archives are
// embarrassingly parallel *across* trajectories, so this package fans
// independent discoveries out over a worker pool; each individual search
// returns results identical to the sequential one.
//
// Parallelism is split in two layers: Workers bounds across-trajectory
// concurrency (this package's pool), and SearchWorkers bounds
// within-search concurrency (internal/core's sharded subset sweep).
// Inside a batch the within-search default is 1 — with many independent
// trajectories the outer pool already saturates the cores and avoids
// oversubscription — and should be raised only when the batch is smaller
// than the machine (few trajectories, many cores).
package batch

import (
	"fmt"
	"runtime"
	"sync"

	"trajmotif/internal/core"
	"trajmotif/internal/group"
	"trajmotif/internal/traj"
)

// Item is the discovery outcome for one input trajectory.
type Item struct {
	// Index identifies the input.
	Index int
	// Result is nil when Err is set.
	Result *group.Result
	// Err records a per-trajectory failure (e.g. core.ErrTooShort);
	// one failing input does not abort the batch.
	Err error
}

// Options tunes a batch run.
type Options struct {
	// Search options applied to every trajectory.
	Search *core.Options
	// Tau is the GTM initial group size; 0 selects 32 (the paper's
	// default).
	Tau int
	// Workers bounds across-trajectory concurrency; 0 selects GOMAXPROCS.
	Workers int
	// SearchWorkers bounds within-search concurrency for each individual
	// discovery; 0 selects 1 (see the package comment on the split). It
	// overrides Search.Workers unless that is set explicitly.
	SearchWorkers int
	// MaxDistance, when positive, drops pair results whose motif distance
	// exceeds it from DiscoverAllPairsStream's output (error items are
	// always kept) — the "pairs within range" workload that makes a
	// spatial pre-filter meaningful.
	MaxDistance float64
	// SpatialPrefilter lets DiscoverAllPairsStream skip dispatching pairs
	// whose MBR MinDist already exceeds MaxDistance: any motif between
	// them is at least that far apart, so the post-filter would drop the
	// result anyway. Pairs too short to yield any candidate are still
	// dispatched so their error items match the unfiltered run. Output is
	// byte-identical with the flag on or off (stream_parity_test.go).
	// Inactive unless MaxDistance > 0 and the ground distance has a known
	// MBR bound (spatial.MinDistFor).
	SpatialPrefilter bool
	// IndexStats, when non-nil, receives the prefilter's effort counters
	// after DiscoverAllPairsStream returns.
	IndexStats *IndexStats
}

// IndexStats counts spatial-prefilter activity in a streaming all-pairs
// run: Consulted is the number of pairs the pre-filter examined, Pruned
// how many it skipped before dispatch.
type IndexStats struct {
	Consulted int64
	Pruned    int64
}

func (o *Options) tau() int {
	if o == nil || o.Tau <= 0 {
		return 32
	}
	return o.Tau
}

func (o *Options) workers() int {
	if o == nil || o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// search resolves the per-search options: a private copy of Search with
// the within-search worker count pinned, so the zero Workers value does
// not fall through to core's GOMAXPROCS default and oversubscribe the
// batch pool.
func (o *Options) search() *core.Options {
	var c core.Options
	if o != nil && o.Search != nil {
		c = *o.Search
	}
	if c.Workers <= 0 {
		c.Workers = 1
		if o != nil && o.SearchWorkers > 0 {
			c.Workers = o.SearchWorkers
		}
	}
	return &c
}

// Discover runs GTM motif discovery on every trajectory, fanning the
// independent searches over a bounded worker pool. Results are returned
// in input order; per-trajectory errors are carried in the items.
func Discover(ts []*traj.Trajectory, xi int, opt *Options) ([]Item, error) {
	if xi < 0 {
		return nil, fmt.Errorf("batch: negative minimum motif length %d", xi)
	}
	items := make([]Item, len(ts))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opt.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				t := ts[idx]
				if t == nil || t.Len() == 0 {
					items[idx] = Item{Index: idx, Err: fmt.Errorf("batch: nil or empty trajectory at %d", idx)}
					continue
				}
				res, err := group.GTM(t, xi, opt.tau(), opt.search())
				items[idx] = Item{Index: idx, Result: res, Err: err}
			}
		}()
	}
	for idx := range ts {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	return items, nil
}

// PairItem is the outcome for one trajectory pair.
type PairItem struct {
	I, J   int
	Result *group.Result
	Err    error
}

// DiscoverAllPairs runs the two-trajectory motif discovery on every
// unordered pair of the inputs — the batched form of the paper's Figure 21
// workload — over a bounded worker pool. Pairs are returned in (i, j)
// lexicographic order.
func DiscoverAllPairs(ts []*traj.Trajectory, xi int, opt *Options) ([]PairItem, error) {
	if xi < 0 {
		return nil, fmt.Errorf("batch: negative minimum motif length %d", xi)
	}
	for k, t := range ts {
		if t == nil || t.Len() == 0 {
			return nil, fmt.Errorf("batch: nil or empty trajectory at %d", k)
		}
	}
	type job struct{ i, j, slot int }
	var jobList []job
	for i := 0; i < len(ts); i++ {
		for j := i + 1; j < len(ts); j++ {
			jobList = append(jobList, job{i: i, j: j, slot: len(jobList)})
		}
	}
	items := make([]PairItem, len(jobList))
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < opt.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				res, err := group.GTMCross(ts[jb.i], ts[jb.j], xi, opt.tau(), opt.search())
				items[jb.slot] = PairItem{I: jb.i, J: jb.j, Result: res, Err: err}
			}
		}()
	}
	for _, jb := range jobList {
		jobs <- jb
	}
	close(jobs)
	wg.Wait()
	return items, nil
}
