package batch

import (
	"math/rand"
	"reflect"
	"testing"

	"trajmotif/internal/core"
	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

// prefilterCorpus scatters trajectory clusters across distant cities —
// near pairs carry motifs within range, far pairs are index fodder — and
// plants too-short members whose ErrTooShort items must survive both
// configurations identically.
func prefilterCorpus(r *rand.Rand) []*traj.Trajectory {
	centers := [][2]float64{{39.9, 116.4}, {37.97, 23.72}, {-33.87, 151.2}}
	var ts []*traj.Trajectory
	for _, c := range centers {
		for i := 0; i < 3; i++ {
			lat, lng := c[0]+r.Float64()*0.03, c[1]+r.Float64()*0.03
			pts := make([]geo.Point, 20+r.Intn(15))
			for k := range pts {
				lat += (r.Float64()*2 - 1) * 0.005
				lng += (r.Float64()*2 - 1) * 0.005
				pts[k] = geo.Point{Lat: lat, Lng: lng}
			}
			ts = append(ts, traj.FromPoints(pts))
		}
		// Too short for xi=4 (needs >= xi+2 = 6 points): pairs with it
		// return ErrTooShort, prefiltered or not.
		ts = append(ts, traj.FromPoints([]geo.Point{
			{Lat: c[0], Lng: c[1]}, {Lat: c[0] + 0.001, Lng: c[1]}, {Lat: c[0], Lng: c[1] + 0.001},
		}))
	}
	return ts
}

// TestAllPairsStreamPrefilterParity is the tentpole proof for batch:
// with a MaxDistance cutoff, the spatially prefiltered stream returns
// items byte-identical to the unfiltered stream for workers 1 and 4 and
// windows 0/4, while the prefilter actually skips searches.
func TestAllPairsStreamPrefilterParity(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	ts := prefilterCorpus(r)
	const xi, maxDist = 4, 50_000.0 // within-city motifs pass, cross-city pairs cannot

	var prunedTotal int64
	for _, workers := range []int{1, 4} {
		for _, window := range []int{0, 4} {
			base := &Options{Workers: workers, MaxDistance: maxDist}
			want, err := DiscoverAllPairsStream(SliceSource(ts), xi, window, base)
			if err != nil {
				t.Fatal(err)
			}
			var ixs IndexStats
			pre := &Options{Workers: workers, MaxDistance: maxDist, SpatialPrefilter: true, IndexStats: &ixs}
			got, err := DiscoverAllPairsStream(SliceSource(ts), xi, window, pre)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(scrubPairs(got), scrubPairs(want)) {
				t.Errorf("workers=%d window=%d: prefiltered items differ from unfiltered", workers, window)
			}
			if ixs.Consulted == 0 {
				t.Errorf("workers=%d window=%d: prefilter never consulted", workers, window)
			}
			prunedTotal += ixs.Pruned
			if window == 0 && ixs.Pruned == 0 {
				t.Errorf("workers=%d window=0: cross-city pairs not pruned (consulted %d)", workers, ixs.Consulted)
			}
			// Every ErrTooShort pair must be present despite the prefilter.
			for _, it := range got {
				if it.Err == nil && it.Result == nil {
					t.Fatalf("workers=%d window=%d: empty item %+v", workers, window, it)
				}
			}
		}
	}
	if prunedTotal == 0 {
		t.Error("prefilter never pruned a pair")
	}

	// MaxDistance without the prefilter still post-filters: no result
	// beyond the cutoff survives.
	items, err := DiscoverAllPairsStream(SliceSource(ts), xi, 0, &Options{MaxDistance: maxDist})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if it.Err == nil && it.Result.Distance > maxDist {
			t.Fatalf("post-filter leaked a %.0f m pair past the %.0f m cutoff", it.Result.Distance, maxDist)
		}
	}
}

// TestAllPairsStreamPrefilterInactive pins the degraded modes: zero
// MaxDistance means no filtering at all, and an unrecognized ground
// distance disables the prefilter (sound, never wrong) while the range
// post-filter still applies.
func TestAllPairsStreamPrefilterInactive(t *testing.T) {
	r := rand.New(rand.NewSource(112))
	ts := prefilterCorpus(r)

	plain, err := DiscoverAllPairsStream(SliceSource(ts), 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ixs IndexStats
	noCut, err := DiscoverAllPairsStream(SliceSource(ts), 4, 0, &Options{SpatialPrefilter: true, IndexStats: &ixs})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scrubPairs(noCut), scrubPairs(plain)) {
		t.Error("SpatialPrefilter without MaxDistance changed the output")
	}
	if ixs.Consulted != 0 {
		t.Errorf("prefilter consulted %d pairs with no cutoff", ixs.Consulted)
	}

	custom := func(p, q geo.Point) float64 { return geo.Haversine(p, q) }
	var ixs2 IndexStats
	opts := &Options{MaxDistance: 50_000, SpatialPrefilter: true, IndexStats: &ixs2}
	opts.Search = &core.Options{Dist: custom}
	got, err := DiscoverAllPairsStream(SliceSource(ts), 4, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ixs2.Consulted != 0 {
		t.Errorf("unrecognized metric consulted the prefilter %d times", ixs2.Consulted)
	}
	for _, it := range got {
		if it.Err == nil && it.Result.Distance > 50_000 {
			t.Fatal("post-filter inactive under an unrecognized metric")
		}
	}
}
