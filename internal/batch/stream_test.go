package batch

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"trajmotif/internal/datagen"
	"trajmotif/internal/traj"
	"trajmotif/internal/trajio"
)

// corpusDir is the shared streaming testdata corpus.
var corpusDir = filepath.Join("..", "trajio", "testdata", "corpus")

// scrubItems zeroes the wall-clock timing fields so reflect.DeepEqual
// compares only deterministic content (spans, distance bits, effort
// counters) — the same convention as the parallel-determinism suites.
func scrubItems(items []Item) []Item {
	for _, it := range items {
		if it.Result != nil {
			it.Result.Stats.Precompute, it.Result.Stats.Search = 0, 0
			it.Result.Group.Stats.Precompute, it.Result.Group.Stats.Search = 0, 0
		}
	}
	return items
}

func scrubPairs(items []PairItem) []PairItem {
	for _, it := range items {
		if it.Result != nil {
			it.Result.Stats.Precompute, it.Result.Stats.Search = 0, 0
			it.Result.Group.Stats.Precompute, it.Result.Group.Stats.Search = 0, 0
		}
	}
	return items
}

// slurpCorpus loads every corpus file in DirSource's sorted order.
func slurpCorpus(t *testing.T) []*traj.Trajectory {
	t.Helper()
	var paths []string
	err := filepath.WalkDir(corpusDir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			paths = append(paths, p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	ts := make([]*traj.Trajectory, len(paths))
	for k, p := range paths {
		if ts[k], err = trajio.ReadFile(p); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
	return ts
}

// TestDiscoverStreamCorpusParity is the PR's acceptance criterion:
// streaming the testdata corpus through DiscoverStream returns results
// byte-identical to slurping every file and calling Discover, for
// worker counts 1 and 4.
func TestDiscoverStreamCorpusParity(t *testing.T) {
	ts := slurpCorpus(t)
	const xi = 2
	for _, workers := range []int{1, 4} {
		opt := &Options{Workers: workers}
		want, err := Discover(ts, xi, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range want {
			if it.Err != nil {
				t.Fatalf("corpus trajectory %d infeasible (fix the corpus): %v", it.Index, it.Err)
			}
		}

		ds, err := trajio.OpenDir(corpusDir, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DiscoverStream(ds, xi, opt)
		if err != nil {
			t.Fatal(err)
		}
		if errs := ds.Errs(); len(errs) != 0 {
			t.Fatalf("workers=%d: corpus errors: %v", workers, errs)
		}
		if !reflect.DeepEqual(scrubItems(got), scrubItems(want)) {
			t.Errorf("workers=%d: DiscoverStream differs from Discover over the slurped corpus", workers)
		}
	}
}

// TestDiscoverStreamMatchesDiscover checks parity on synthetic inputs,
// including the nil/empty item error convention.
func TestDiscoverStreamMatchesDiscover(t *testing.T) {
	ts := []*traj.Trajectory{
		datagen.GeoLife(datagen.Config{Seed: 1, N: 80}),
		nil,
		datagen.Truck(datagen.Config{Seed: 2, N: 80}),
		datagen.Baboon(datagen.Config{Seed: 3, N: 80}),
	}
	for _, workers := range []int{1, 4} {
		opt := &Options{Workers: workers}
		want, err := Discover(ts, 4, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DiscoverStream(SliceSource(ts), 4, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(scrubItems(got), scrubItems(want)) {
			t.Errorf("workers=%d: stream items differ from slurp items", workers)
		}
	}

	if _, err := DiscoverStream(SliceSource(nil), -1, nil); err == nil {
		t.Error("negative xi should error")
	}
}

// errSource yields n trajectories then fails.
type errSource struct {
	ts  []*traj.Trajectory
	idx int
}

func (s *errSource) Next() (*traj.Trajectory, error) {
	if s.idx >= len(s.ts) {
		return nil, fmt.Errorf("backing store exploded")
	}
	t := s.ts[s.idx]
	s.idx++
	return t, nil
}

// TestDiscoverStreamSourceError: a mid-stream source failure returns the
// completed items plus the error.
func TestDiscoverStreamSourceError(t *testing.T) {
	ts := []*traj.Trajectory{
		datagen.GeoLife(datagen.Config{Seed: 1, N: 60}),
		datagen.Truck(datagen.Config{Seed: 2, N: 60}),
	}
	items, err := DiscoverStream(&errSource{ts: ts}, 4, &Options{Workers: 2})
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("want the source error, got %v", err)
	}
	if len(items) != 2 {
		t.Fatalf("got %d items before the failure, want 2", len(items))
	}
	for _, it := range items {
		if it.Err != nil || it.Result == nil {
			t.Errorf("item %d incomplete despite being dispatched before the failure", it.Index)
		}
	}
}

// TestDiscoverAllPairsStreamParity: an unbounded window reproduces
// DiscoverAllPairs exactly; a bounded window yields exactly the pairs
// within it.
func TestDiscoverAllPairsStreamParity(t *testing.T) {
	ts := []*traj.Trajectory{
		datagen.GeoLife(datagen.Config{Seed: 1, N: 60}),
		datagen.Truck(datagen.Config{Seed: 2, N: 60}),
		datagen.Baboon(datagen.Config{Seed: 3, N: 60}),
		datagen.GeoLife(datagen.Config{Seed: 4, N: 60}),
	}
	for _, workers := range []int{1, 4} {
		opt := &Options{Workers: workers}
		want, err := DiscoverAllPairs(ts, 4, opt)
		if err != nil {
			t.Fatal(err)
		}
		scrubPairs(want)
		for _, window := range []int{0, len(ts), len(ts) + 3} {
			got, err := DiscoverAllPairsStream(SliceSource(ts), 4, window, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(scrubPairs(got), want) {
				t.Errorf("workers=%d window=%d: stream pairs differ from DiscoverAllPairs", workers, window)
			}
		}

		// window=2: only consecutive pairs, each identical to the
		// corresponding slurp pair.
		got, err := DiscoverAllPairsStream(SliceSource(ts), 4, 2, opt)
		if err != nil {
			t.Fatal(err)
		}
		scrubPairs(got)
		if len(got) != len(ts)-1 {
			t.Fatalf("window=2 yielded %d pairs, want %d", len(got), len(ts)-1)
		}
		for k, p := range got {
			if p.I != k || p.J != k+1 {
				t.Fatalf("window=2 pair %d is (%d,%d), want (%d,%d)", k, p.I, p.J, k, k+1)
			}
			var ref PairItem
			for _, wp := range want {
				if wp.I == p.I && wp.J == p.J {
					ref = wp
					break
				}
			}
			if !reflect.DeepEqual(p, ref) {
				t.Errorf("window=2 pair (%d,%d) differs from the slurp result", p.I, p.J)
			}
		}

		// window=1 retains nothing and pairs nothing.
		got, err = DiscoverAllPairsStream(SliceSource(ts), 4, 1, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Errorf("window=1 yielded %d pairs, want 0", len(got))
		}
	}

	// A nil trajectory is terminal, mirroring DiscoverAllPairs.
	if _, err := DiscoverAllPairsStream(SliceSource([]*traj.Trajectory{ts[0], nil}), 4, 0, nil); err == nil {
		t.Error("nil trajectory should be a terminal error")
	}
}
