// Package geo provides geographic primitives used throughout trajmotif:
// latitude/longitude points, ground-distance functions (great-circle and
// planar Euclidean), and small navigation helpers used by the synthetic
// dataset generators.
//
// The paper (§3) measures the ground distance dG between trajectory points
// as the great-circle distance on Earth computed with the haversine formula
// [Sinnott 1984], and notes the methods apply unchanged to other ground
// distances such as Euclidean. Both are provided here behind DistanceFunc.
package geo

import "math"

// EarthRadiusMeters is the mean Earth radius used by the haversine formula.
const EarthRadiusMeters = 6371008.8

// Point is a geographic location in degrees. Lat is latitude in [-90, 90],
// Lng is longitude in [-180, 180). The zero value is the Gulf of Guinea
// origin (0, 0), which is a valid point.
type Point struct {
	Lat float64
	Lng float64
}

// Valid reports whether p lies within the conventional coordinate ranges.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 &&
		p.Lng >= -180 && p.Lng <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lng)
}

// DistanceFunc is a ground distance between two points, in meters.
// Implementations must be symmetric, non-negative, and zero for identical
// points; the motif algorithms rely on those properties but not on the
// triangle inequality.
type DistanceFunc func(a, b Point) float64

// Haversine returns the great-circle distance between a and b in meters,
// using the haversine formulation which is numerically stable for the
// small separations typical of trajectory samples.
func Haversine(a, b Point) float64 {
	return haversineFrom(a, b, math.Cos(a.Lat*math.Pi/180), math.Cos(b.Lat*math.Pi/180))
}

// haversineFrom is the one haversine core: ca and cb must equal
// math.Cos(lat·π/180) of a and b. Haversine and HaversinePrepared are
// both thin wrappers over this function, so the prepared fast path —
// which hoists the cos(lat) factors out of inner loops — executes the
// identical compiled arithmetic and is bit-identical by construction.
func haversineFrom(a, b Point, ca, cb float64) float64 {
	if a == b {
		return 0
	}
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLng := (b.Lng - a.Lng) * math.Pi / 180

	sLat := math.Sin(dLat / 2)
	sLng := math.Sin(dLng / 2)
	h := sLat*sLat + ca*cb*sLng*sLng
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(h))
}

// Euclidean treats (Lng, Lat) as planar (x, y) coordinates in meters and
// returns their straight-line distance. It is intended for synthetic or
// projected data; for real GPS data use Haversine.
func Euclidean(a, b Point) float64 {
	dx := a.Lng - b.Lng
	dy := a.Lat - b.Lat
	return math.Sqrt(dx*dx + dy*dy)
}

// EquirectangularMeters approximates the ground distance between nearby
// lat/lng points by projecting onto a local tangent plane. It is within
// ~0.1% of Haversine for separations below a few kilometers and roughly
// twice as fast; the benchmark harness uses it for very large sweeps.
func EquirectangularMeters(a, b Point) float64 {
	latRad := (a.Lat + b.Lat) / 2 * math.Pi / 180
	dx := (b.Lng - a.Lng) * math.Pi / 180 * math.Cos(latRad) * EarthRadiusMeters
	dy := (b.Lat - a.Lat) * math.Pi / 180 * EarthRadiusMeters
	return math.Sqrt(dx*dx + dy*dy)
}

// Destination returns the point reached by travelling distMeters from start
// along the given initial bearing (degrees clockwise from north), following
// a great circle. It is the inverse of the haversine distance in the sense
// that Haversine(start, Destination(start, b, d)) ≈ d.
func Destination(start Point, bearingDeg, distMeters float64) Point {
	lat1 := start.Lat * math.Pi / 180
	lng1 := start.Lng * math.Pi / 180
	brg := bearingDeg * math.Pi / 180
	ad := distMeters / EarthRadiusMeters

	sinLat2 := math.Sin(lat1)*math.Cos(ad) + math.Cos(lat1)*math.Sin(ad)*math.Cos(brg)
	lat2 := math.Asin(clamp(sinLat2, -1, 1))
	y := math.Sin(brg) * math.Sin(ad) * math.Cos(lat1)
	x := math.Cos(ad) - math.Sin(lat1)*sinLat2
	lng2 := lng1 + math.Atan2(y, x)

	return Point{
		Lat: lat2 * 180 / math.Pi,
		Lng: normalizeLng(lng2 * 180 / math.Pi),
	}
}

// Bearing returns the initial great-circle bearing from a to b in degrees
// clockwise from north, in [0, 360).
func Bearing(a, b Point) float64 {
	la1 := a.Lat * math.Pi / 180
	la2 := b.Lat * math.Pi / 180
	dLng := (b.Lng - a.Lng) * math.Pi / 180
	y := math.Sin(dLng) * math.Cos(la2)
	x := math.Cos(la1)*math.Sin(la2) - math.Sin(la1)*math.Cos(la2)*math.Cos(dLng)
	deg := math.Atan2(y, x) * 180 / math.Pi
	if deg < 0 {
		deg += 360
	}
	return deg
}

// Midpoint returns the great-circle midpoint of a and b.
func Midpoint(a, b Point) Point {
	return Destination(a, Bearing(a, b), Haversine(a, b)/2)
}

// Offset shifts p by the given local east/north displacements in meters.
// It is a small-displacement approximation used by the synthetic
// generators, accurate to well under a millimeter for sub-kilometer moves.
func Offset(p Point, eastMeters, northMeters float64) Point {
	dLat := northMeters / EarthRadiusMeters * 180 / math.Pi
	dLng := eastMeters / (EarthRadiusMeters * math.Cos(p.Lat*math.Pi/180)) * 180 / math.Pi
	return Point{Lat: p.Lat + dLat, Lng: normalizeLng(p.Lng + dLng)}
}

func normalizeLng(lng float64) float64 {
	for lng >= 180 {
		lng -= 360
	}
	for lng < -180 {
		lng += 360
	}
	return lng
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
