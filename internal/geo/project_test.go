package geo

import (
	"math"
	"math/rand"
	"testing"
)

// TestHaversinePreparedBitIdentical pins the tentpole's foundation: the
// prepared form with hoisted cosines returns the bit-identical float64
// for every point pair, including poles, the antimeridian, and
// identical points.
func TestHaversinePreparedBitIdentical(t *testing.T) {
	pts := []Point{
		{0, 0}, {0, 180}, {0, -180}, {90, 0}, {-90, 45},
		{89.9999, 12}, {-89.9999, -170}, {39.9, 116.4}, {39.90001, 116.40001},
		{51.5, -0.1}, {-33.9, 151.2}, {0.0001, -179.9999},
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		pts = append(pts, Point{rng.Float64()*180 - 90, rng.Float64()*360 - 180})
	}
	for _, a := range pts {
		ca := CosLat(a)
		for _, b := range pts {
			want := Haversine(a, b)
			got := HaversinePrepared(a, b, ca, CosLat(b))
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("HaversinePrepared(%v, %v) = %v, Haversine = %v (bits differ)", a, b, got, want)
			}
		}
	}
	p := Prepare(pts[7])
	if p.CosLat != CosLat(pts[7]) || p.P != pts[7] {
		t.Fatalf("Prepare(%v) = %+v", pts[7], p)
	}
}

func TestIsHaversine(t *testing.T) {
	if !IsHaversine(Haversine) {
		t.Fatal("IsHaversine(Haversine) = false")
	}
	wrapped := func(a, b Point) float64 { return Haversine(a, b) }
	if IsHaversine(wrapped) {
		t.Fatal("IsHaversine(closure over Haversine) = true; must be false (unknown code)")
	}
	if IsHaversine(Euclidean) || IsHaversine(nil) {
		t.Fatal("IsHaversine(Euclidean or nil) = true")
	}
}

// TestFrameForRejects pins the failure modes that must force the
// haversine fallback: poles, antimeridian-size longitude spans, empty
// and non-finite regions.
func TestFrameForRejects(t *testing.T) {
	bad := []struct {
		name                           string
		minLat, maxLat, minLng, maxLng float64
	}{
		{"past north cutoff", 80, 86, 0, 1},
		{"past south cutoff", -89, -80, 0, 1},
		{"wide longitude", 0, 1, -50, 50},
		{"antimeridian unwrapped", 0, 1, -179, 179},
		{"inverted lat", 5, 4, 0, 1},
		{"inverted lng", 0, 1, 5, 4},
		{"nan", math.NaN(), 1, 0, 1},
		{"inf lng", 0, 1, math.Inf(-1), math.Inf(1)},
	}
	for _, tc := range bad {
		if f := FrameFor(tc.minLat, tc.maxLat, tc.minLng, tc.maxLng); f.OK() {
			t.Errorf("%s: FrameFor(%v,%v,%v,%v).OK() = true, want false",
				tc.name, tc.minLat, tc.maxLat, tc.minLng, tc.maxLng)
		}
	}
	if f := FrameFor(39.8, 40.1, 116.2, 116.6); !f.OK() {
		t.Fatal("typical urban region rejected")
	}
}

// TestFrameErrorBound samples random regions and point pairs and
// asserts the certified band: p·lo ≤ haversine ≤ p·hi, and that the
// Thresholds decisions never contradict the haversine truth. Regions
// sweep latitude spans from street scale to tens of degrees, which is
// the documented error-bound-vs-latitude-span behaviour.
func TestFrameErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	spans := []float64{0.0005, 0.01, 0.2, 1, 5, 20, 60}
	for _, span := range spans {
		var worstLo, worstHi float64 = 1, 1
		for trial := 0; trial < 200; trial++ {
			lat0 := rng.Float64()*160 - 80
			lng0 := rng.Float64()*300 - 150
			latSpan := span * (0.5 + rng.Float64())
			lngSpan := span * (0.5 + rng.Float64())
			f := FrameFor(lat0, lat0+latSpan, lng0, lng0+lngSpan)
			if !f.OK() {
				continue // clipped by the pole/width gates; fine
			}
			lo, hi := f.Factors()
			if !(lo > 0 && hi >= lo) {
				t.Fatalf("span %v: degenerate factors lo=%v hi=%v", span, lo, hi)
			}
			for k := 0; k < 50; k++ {
				a := Point{lat0 + rng.Float64()*latSpan, lng0 + rng.Float64()*lngSpan}
				b := Point{lat0 + rng.Float64()*latSpan, lng0 + rng.Float64()*lngSpan}
				pa, pb := f.Project(a), f.Project(b)
				dx, dy := pa.X-pb.X, pa.Y-pb.Y
				p := math.Sqrt(dx*dx + dy*dy)
				h := Haversine(a, b)
				if h < p*lo-projSlack || h > p*hi+projSlack {
					t.Fatalf("span %v: band violated: h=%v p=%v lo=%v hi=%v (a=%v b=%v)",
						span, h, p, lo, hi, a, b)
				}
				if p > 0 {
					if r := h / p; r < worstLo {
						worstLo = r
					} else if r > worstHi {
						worstHi = r
					}
				}
				// Decision soundness at an eps near the pair's distance.
				eps := h * (0.9 + 0.2*rng.Float64())
				within2, beyond2 := f.Thresholds(eps)
				d2 := dx*dx + dy*dy
				if d2 <= within2 && !(h <= eps) {
					t.Fatalf("span %v: certified-within but h=%v > eps=%v", span, h, eps)
				}
				if d2 > beyond2 && !(h > eps) {
					t.Fatalf("span %v: certified-beyond but h=%v <= eps=%v", span, h, eps)
				}
			}
		}
		t.Logf("span %6.4f°: observed h/p ∈ [%.9f, %.9f]", span, worstLo, worstHi)
	}
}

// TestFrameBoundTightensWithSpan pins the documented property that the
// certified band is a function of the region's angular span: a
// street-scale region certifies within ~tan(lat)·Δφ ≈ parts in 10⁵,
// while a tens-of-degrees region is visibly looser.
func TestFrameBoundTightensWithSpan(t *testing.T) {
	width := func(latSpan, lngSpan float64) float64 {
		f := FrameFor(40, 40+latSpan, 116, 116+lngSpan)
		if !f.OK() {
			t.Fatalf("FrameFor(40..%v) rejected", 40+latSpan)
		}
		lo, hi := f.Factors()
		return hi/lo - 1
	}
	small := width(0.001, 0.001)
	mid := width(1, 1)
	big := width(30, 30)
	if !(small < mid && mid < big) {
		t.Fatalf("band width not increasing with span: %v, %v, %v", small, mid, big)
	}
	if small > 1e-4 {
		t.Fatalf("street-scale band too loose: %v", small)
	}
	if mid > 0.05 {
		t.Fatalf("1° band too loose: %v", mid)
	}
}

// TestFrameProjectionSharedByRefKey pins the cacheability contract:
// frames with equal RefKey project identically.
func TestFrameProjectionSharedByRefKey(t *testing.T) {
	f1 := FrameFor(39.8, 40.1, 116.2, 116.6)
	f2 := FrameFor(39.9, 40.2, 117.0, 117.4)
	if !f1.OK() || !f2.OK() {
		t.Fatal("frames rejected")
	}
	if f1.RefKey() != f2.RefKey() {
		t.Fatalf("RefKey %d != %d for neighbouring regions", f1.RefKey(), f2.RefKey())
	}
	p := Point{39.95, 116.5}
	if f1.Project(p) != f2.Project(p) {
		t.Fatal("equal RefKey but different projections")
	}
}

// TestThresholdsDegenerate pins the tiny-eps corner: when eps is inside
// the slack, nothing is certified within and everything lands in the
// fallback band or beyond.
func TestThresholdsDegenerate(t *testing.T) {
	f := FrameFor(39.8, 40.1, 116.2, 116.6)
	within2, beyond2 := f.Thresholds(1e-6)
	if within2 >= 0 {
		t.Fatalf("within2 = %v for sub-slack eps, want negative sentinel", within2)
	}
	if !(beyond2 > 0) {
		t.Fatalf("beyond2 = %v", beyond2)
	}
}
