package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Well-known city coordinates used in distance sanity checks.
var (
	beijing   = Point{Lat: 39.9042, Lng: 116.4074}
	shenzhen  = Point{Lat: 22.5431, Lng: 114.0579}
	athens    = Point{Lat: 37.9838, Lng: 23.7275}
	singapore = Point{Lat: 1.3521, Lng: 103.8198}
)

func TestHaversineIdentity(t *testing.T) {
	for _, p := range []Point{beijing, athens, {}, {Lat: -90}, {Lat: 90, Lng: 179.9}} {
		if d := Haversine(p, p); d != 0 {
			t.Errorf("Haversine(%v,%v) = %g, want 0", p, p, d)
		}
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64 // meters
		tol  float64 // relative
	}{
		{beijing, shenzhen, 1943e3, 0.01},
		{athens, singapore, 9120e3, 0.01},
		// One degree of latitude is ~111.2 km everywhere.
		{Point{0, 0}, Point{1, 0}, 111195, 0.001},
		// One degree of longitude at 60N is half that at the equator.
		{Point{60, 0}, Point{60, 1}, 55597, 0.001},
	}
	for _, c := range cases {
		got := Haversine(c.a, c.b)
		if rel := math.Abs(got-c.want) / c.want; rel > c.tol {
			t.Errorf("Haversine(%v,%v) = %.0f m, want %.0f m (±%.1f%%)", c.a, c.b, got, c.want, c.tol*100)
		}
	}
}

func TestHaversineAntipodal(t *testing.T) {
	a := Point{Lat: 0, Lng: 0}
	b := Point{Lat: 0, Lng: 180}
	want := math.Pi * EarthRadiusMeters
	if got := Haversine(a, b); math.Abs(got-want) > 1 {
		t.Errorf("antipodal distance = %.1f, want %.1f", got, want)
	}
}

func randomPoint(r *rand.Rand) Point {
	return Point{Lat: r.Float64()*170 - 85, Lng: r.Float64()*360 - 180}
}

func TestHaversineProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	symmetric := func(_ int) bool {
		a, b := randomPoint(r), randomPoint(r)
		d1, d2 := Haversine(a, b), Haversine(b, a)
		return math.Abs(d1-d2) < 1e-6 && d1 >= 0
	}
	if err := quick.Check(symmetric, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	triangle := func(_ int) bool {
		a, b, c := randomPoint(r), randomPoint(r), randomPoint(r)
		return Haversine(a, c) <= Haversine(a, b)+Haversine(b, c)+1e-6
	}
	if err := quick.Check(triangle, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEuclidean(t *testing.T) {
	a := Point{Lat: 3, Lng: 0}
	b := Point{Lat: 0, Lng: 4}
	if got := Euclidean(a, b); math.Abs(got-5) > 1e-12 {
		t.Errorf("Euclidean = %g, want 5", got)
	}
	if got := Euclidean(a, a); got != 0 {
		t.Errorf("Euclidean identity = %g, want 0", got)
	}
}

func TestEquirectangularApproximatesHaversineNearby(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		base := randomPoint(r)
		if math.Abs(base.Lat) > 80 {
			continue // projection degenerates near poles
		}
		near := Offset(base, r.Float64()*2000-1000, r.Float64()*2000-1000)
		h := Haversine(base, near)
		e := EquirectangularMeters(base, near)
		if h > 1 && math.Abs(h-e)/h > 0.005 {
			t.Fatalf("equirectangular error %.3f%% at %v -> %v (h=%f e=%f)",
				100*math.Abs(h-e)/h, base, near, h, e)
		}
	}
}

func TestDestinationInvertsHaversine(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		start := randomPoint(r)
		brg := r.Float64() * 360
		dist := r.Float64() * 100000 // up to 100 km
		end := Destination(start, brg, dist)
		if !end.Valid() {
			t.Fatalf("Destination produced invalid point %v", end)
		}
		got := Haversine(start, end)
		if math.Abs(got-dist) > 0.5 {
			t.Fatalf("Destination round-trip: want %.2f m, got %.2f m", dist, got)
		}
	}
}

func TestBearingCardinal(t *testing.T) {
	origin := Point{Lat: 0, Lng: 0}
	cases := []struct {
		to   Point
		want float64
	}{
		{Point{1, 0}, 0},    // north
		{Point{0, 1}, 90},   // east
		{Point{-1, 0}, 180}, // south
		{Point{0, -1}, 270}, // west
	}
	for _, c := range cases {
		if got := Bearing(origin, c.to); math.Abs(got-c.want) > 0.01 {
			t.Errorf("Bearing(origin, %v) = %.2f, want %.2f", c.to, got, c.want)
		}
	}
}

func TestMidpoint(t *testing.T) {
	a := Point{Lat: 0, Lng: 0}
	b := Point{Lat: 0, Lng: 10}
	m := Midpoint(a, b)
	if math.Abs(m.Lng-5) > 0.01 || math.Abs(m.Lat) > 0.01 {
		t.Errorf("Midpoint = %v, want ~(0,5)", m)
	}
	da, db := Haversine(a, m), Haversine(m, b)
	if math.Abs(da-db) > 1 {
		t.Errorf("midpoint not equidistant: %f vs %f", da, db)
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		base := Point{Lat: r.Float64()*120 - 60, Lng: r.Float64()*360 - 180}
		east := r.Float64()*1000 - 500
		north := r.Float64()*1000 - 500
		moved := Offset(base, east, north)
		want := math.Sqrt(east*east + north*north)
		got := Haversine(base, moved)
		if want > 1 && math.Abs(got-want)/want > 0.001 {
			t.Fatalf("Offset distance: want %.3f, got %.3f at %v", want, got, base)
		}
	}
}

func TestPointValid(t *testing.T) {
	valid := []Point{{}, {90, 180}, {-90, -180}, beijing}
	for _, p := range valid {
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	invalid := []Point{{91, 0}, {0, 181}, {-91, 0}, {math.NaN(), 0}, {0, math.NaN()}}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}

func TestNormalizeLngWrap(t *testing.T) {
	p := Destination(Point{Lat: 0, Lng: 179.9}, 90, 50000)
	if p.Lng > 180 || p.Lng < -180 {
		t.Errorf("longitude not normalized: %v", p)
	}
}

func BenchmarkHaversine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Haversine(beijing, shenzhen)
	}
}

func BenchmarkEquirectangular(b *testing.B) {
	for i := 0; i < b.N; i++ {
		EquirectangularMeters(beijing, shenzhen)
	}
}
