package geo

// Prepared haversine and the per-region equirectangular projection that
// lets hot loops trade trig for multiply-adds without changing results.
//
// Two distinct mechanisms live here, with different guarantees:
//
//   - HaversinePrepared hoists the cos(lat) factors out of Haversine.
//     It is bit-identical to Haversine (both are wrappers over the same
//     haversineFrom core), so value-producing DPs may use it freely.
//   - Frame projects a bounded lat/lng region onto a plane and carries
//     a certified two-sided error band: for any two points of the
//     region, haversine ∈ [p·LoFactor, p·HiFactor] where p is the
//     planar distance of their projections. That decides *threshold*
//     comparisons (is the distance ≤ eps?) exactly whenever p falls
//     outside the narrow uncertain band, with a haversine fallback for
//     the band itself — so decision DPs stay byte-identical while the
//     common case becomes two subtractions, two multiplies and an add.
//
// DESIGN.md §4 derives the error band and records the shave constants.

import (
	"math"
	"reflect"
)

// CosLat returns math.Cos(lat·π/180) of p — the exact factor Haversine
// computes internally, suitable for HaversinePrepared.
func CosLat(p Point) float64 { return math.Cos(p.Lat * math.Pi / 180) }

// CosLats returns CosLat of every point.
func CosLats(pts []Point) []float64 {
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = CosLat(p)
	}
	return out
}

// PreparedPoint bundles a point with its cached latitude cosine for the
// fixed-point-vs-many pattern (kNN lower bounds, join's endpoint
// cascade).
type PreparedPoint struct {
	P      Point
	CosLat float64
}

// Prepare caches p's latitude cosine.
func Prepare(p Point) PreparedPoint { return PreparedPoint{P: p, CosLat: CosLat(p)} }

// HaversinePrepared is Haversine with both cos(lat) factors supplied by
// the caller. ca and cb must equal CosLat(a) and CosLat(b); given that,
// the result is bit-identical to Haversine(a, b) because both run the
// same haversineFrom core.
func HaversinePrepared(a, b Point, ca, cb float64) float64 {
	return haversineFrom(a, b, ca, cb)
}

var haversinePtr = reflect.ValueOf(Haversine).Pointer()

// IsHaversine reports whether df is this package's Haversine function.
// Callers use it to switch onto the prepared/projected fast paths only
// when the ground distance is known exactly; a wrapper closure around
// Haversine has its own code pointer and (safely) reports false.
func IsHaversine(df DistanceFunc) bool {
	return df != nil && reflect.ValueOf(df).Pointer() == haversinePtr
}

// Projected is a point in a Frame's planar coordinates, in meters.
type Projected struct {
	X, Y float64
}

const (
	// frameMaxAbsLat is the polar cutoff: beyond ±85° the cos(lat)
	// geometry degenerates (same constant the spatial index uses) and
	// the frame refuses the region, forcing the haversine fallback.
	frameMaxAbsLat = 85.0
	// frameMaxLngSpan rejects regions spanning ≥ 90° of longitude.
	// This keeps the small-angle bounds tight and rejects raw
	// antimeridian-crossing boxes outright (their unwrapped span is
	// near 360°), again forcing the fallback.
	frameMaxLngSpan = 90.0
	// frameShave is the relative slack folded into the error factors so
	// float rounding in their own computation can never tighten the
	// certified band below the truth (same role as spatial.MinDist's
	// soundness shave).
	frameShave = 1e-9
	// projSlack is the absolute planar slack (meters) subtracted from /
	// added to the decision thresholds. Projected coordinates reach
	// ~2·10⁷ m, so a coordinate carries ≤ ~5·10⁻⁹ m of rounding error;
	// 10⁻⁴ m dominates that by five orders of magnitude while staying
	// negligible against any physical eps.
	projSlack = 1e-4
)

// Frame is an equirectangular projection of a bounded lat/lng region:
// X = lng·cos(lat₀)·R, Y = lat·R (angles in radians), with the
// reference latitude lat₀ quantized to a whole degree so projections
// are shareable between frames built over the same neighbourhood (see
// (*traj.Trajectory).ProjectedPoints). The zero Frame is invalid.
type Frame struct {
	cosRef float64 // cos of the quantized reference latitude
	refKey int32   // quantized reference latitude, degrees
	loF    float64 // certified haversine ∈ [p·loF, p·hiF]
	hiF    float64
	ok     bool
}

// FrameFor builds a frame covering the closed region
// [minLat, maxLat] × [minLng, maxLng] (degrees, no antimeridian wrap:
// minLng ≤ maxLng). The frame is invalid — OK() == false, meaning every
// decision must use haversine — when the region reaches beyond ±85°
// latitude, spans ≥ 90° of longitude, is empty, or has a non-finite
// corner.
func FrameFor(minLat, maxLat, minLng, maxLng float64) Frame {
	if !(minLat <= maxLat) || !(minLng <= maxLng) { // also rejects NaN
		return Frame{}
	}
	if !(minLat >= -frameMaxAbsLat) || !(maxLat <= frameMaxAbsLat) {
		return Frame{}
	}
	if !(maxLng-minLng < frameMaxLngSpan) || math.IsInf(minLng, 0) {
		return Frame{}
	}

	refDeg := math.Round((minLat + maxLat) / 2)
	cosRef := math.Cos(refDeg * math.Pi / 180)

	// Maximum angular separations within the region, radians.
	dPhi := (maxLat - minLat) * math.Pi / 180
	dLam := (maxLng - minLng) * math.Pi / 180

	// cos(lat) band over the region's latitudes.
	aLo, aHi := math.Abs(minLat), math.Abs(maxLat)
	if aLo > aHi {
		aLo, aHi = aHi, aLo
	}
	cLo := math.Cos(aHi * math.Pi / 180)
	cHi := math.Cos(aLo * math.Pi / 180)
	if minLat <= 0 && maxLat >= 0 {
		cHi = 1
	}

	// Chord vs planar: per-component ratios bounded by sinc of the
	// half-separations and the cos band; the ratio of sums is bounded
	// by the extreme component ratios (mediant inequality).
	s1 := sinc(dPhi / 2)
	s2 := sinc(dLam / 2)
	rLo := math.Min(s1, s2*cLo/cosRef)
	rHi := math.Max(1, cHi/cosRef)

	// Arc vs chord: h = c·(θ/2)/sin(θ/2) with the central angle θ
	// bounded by the meridian+parallel path, capped at π.
	theta := math.Min(dPhi+dLam, math.Pi)
	arc := 1 / sinc(theta/2)

	return Frame{
		cosRef: cosRef,
		refKey: int32(refDeg),
		loF:    rLo * (1 - frameShave),
		hiF:    rHi * arc * (1 + frameShave),
		ok:     true,
	}
}

// sinc is sin(x)/x, continuously 1 at zero.
func sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	return math.Sin(x) / x
}

// OK reports whether the frame covers its region with a certified error
// band; an invalid frame must not be used to decide anything.
func (f Frame) OK() bool { return f.ok }

// RefKey identifies the projection itself (the quantized reference
// latitude): two frames with equal RefKey project every point to
// identical coordinates, which is what makes per-trajectory projection
// caches shareable across the frames of its pairs.
func (f Frame) RefKey() int32 { return f.refKey }

// Factors returns the certified band: for any two region points with
// planar projected distance p, haversine ∈ [p·lo, p·hi].
func (f Frame) Factors() (lo, hi float64) { return f.loF, f.hiF }

// Project maps p into the frame's planar coordinates. Only RefKey
// determines the mapping, so results may be cached per (point, RefKey).
func (f Frame) Project(p Point) Projected {
	return Projected{
		X: p.Lng * (math.Pi / 180) * EarthRadiusMeters * f.cosRef,
		Y: p.Lat * (math.Pi / 180) * EarthRadiusMeters,
	}
}

// ProjectAll maps every point into the frame's planar coordinates.
func (f Frame) ProjectAll(pts []Point) []Projected {
	out := make([]Projected, len(pts))
	for i, p := range pts {
		out[i] = f.Project(p)
	}
	return out
}

// Thresholds converts a haversine threshold eps into squared planar
// cutoffs: d² ≤ within2 certifies haversine ≤ eps, d² > beyond2
// certifies haversine > eps, and the band between must fall back to
// haversine. Requires a valid frame and eps ≥ 0.
func (f Frame) Thresholds(eps float64) (within2, beyond2 float64) {
	within := eps/f.hiF - projSlack
	if within < 0 {
		within2 = -1 // d² ≥ 0: certifies nothing
	} else {
		within2 = within * within
	}
	beyond := eps/f.loF + projSlack
	beyond2 = beyond * beyond
	return within2, beyond2
}
