package join

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"trajmotif/internal/dist"
	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

// joinParity runs the plain and projected joins side by side and fails
// unless pairs and all shared stats are byte-identical; it returns the
// projected run's fallback count.
func joinParity(t *testing.T, ts []*traj.Trajectory, eps float64, exact bool) int64 {
	t.Helper()
	plain, pst, err1 := Join(ts, eps, &Options{Exact: exact})
	proj, jst, err2 := Join(ts, eps, &Options{Exact: exact, Projected: true})
	if err1 != nil || err2 != nil {
		t.Fatalf("eps=%g: errors %v / %v", eps, err1, err2)
	}
	fallbacks := jst.ProjectionFallbacks
	jst.ProjectionFallbacks = 0
	if !reflect.DeepEqual(plain, proj) {
		t.Fatalf("eps=%g exact=%v: pairs differ\nplain %+v\nprojected %+v", eps, exact, plain, proj)
	}
	if pst != jst {
		t.Fatalf("eps=%g exact=%v: stats differ\nplain %+v\nprojected %+v", eps, exact, pst, jst)
	}
	return fallbacks
}

// TestJoinProjectedParity pins the projected decision kernel against the
// haversine join on the standard parity corpus, with radii bracketing a
// true pair distance from both ulp sides — exactly where a certified
// error band is forced to fall back — plus zero and corpus-scale radii.
func TestJoinProjectedParity(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	var fallbacks int64
	for trial := 0; trial < 6; trial++ {
		ts := parityCorpus(r)
		d := dist.DFD(ts[0].Points, ts[1].Points, geo.Haversine)
		for _, eps := range []float64{0, math.Nextafter(d, 0), d, math.Nextafter(d, math.Inf(1)), 5000, 2e7} {
			for _, exact := range []bool{false, true} {
				fallbacks += joinParity(t, ts, eps, exact)
			}
		}
	}
	if fallbacks == 0 {
		t.Error("bracketing radii never forced a projection fallback")
	}
}

// TestJoinProjectedPoleFallback: pole-adjacent trajectories are outside
// the frame's certified latitude range, so the whole pair falls back to
// the haversine decision — counted, with byte-identical results.
func TestJoinProjectedPoleFallback(t *testing.T) {
	r := rand.New(rand.NewSource(94))
	polar := geoWalk(r, 16, 87.5, 10)
	ts := []*traj.Trajectory{
		polar,
		geoWalk(r, 16, 87.5, 10.02),
		geoWalk(r, 16, 88.9, -120),
		polar, // duplicate: survives filters 1–2 even at eps = 0
	}
	for _, eps := range []float64{0, 2000, 50000, 2e7} {
		if fb := joinParity(t, ts, eps, true); fb == 0 {
			t.Fatalf("eps=%g: polar pairs reported no projection fallbacks", eps)
		}
	}
}

// TestJoinProjectedAntimeridianFallback: a trajectory straddling the
// ±180° meridian has an unwrapped longitude box spanning nearly 360°,
// which the frame gate rejects; the pair falls back with identical
// results.
func TestJoinProjectedAntimeridianFallback(t *testing.T) {
	cross := func(base float64) *traj.Trajectory {
		pts := make([]geo.Point, 12)
		for i := range pts {
			lng := 179.95 + 0.01*float64(i)
			if lng > 180 {
				lng -= 360
			}
			pts[i] = geo.Point{Lat: base + 0.001*float64(i), Lng: lng}
		}
		return traj.FromPoints(pts)
	}
	a := cross(10)
	// The duplicate keeps a pair alive through filters 1–2 even at
	// eps = 0, so the decision DP (and its fallback) is always reached.
	ts := []*traj.Trajectory{a, cross(10.01), cross(-5), a}
	for _, eps := range []float64{0, 5000, 2e7} {
		if fb := joinParity(t, ts, eps, false); fb == 0 {
			t.Fatalf("eps=%g: antimeridian pairs reported no projection fallbacks", eps)
		}
	}
}

// TestJoinEndpointDistsMemo: a memo hook feeding back bit-identical
// endpoint distances leaves pairs and stats unchanged, and ok=false
// degrades to direct evaluation.
func TestJoinEndpointDistsMemo(t *testing.T) {
	r := rand.New(rand.NewSource(95))
	ts := parityCorpus(r)
	eps := 5000.0
	want, wst, err := Join(ts, eps, nil)
	if err != nil {
		t.Fatal(err)
	}
	var hits, misses int
	memo := func(i, j int) (float64, float64, bool) {
		a, b := ts[i].Points, ts[j].Points
		if (i+j)%3 == 0 {
			misses++
			return 0, 0, false
		}
		hits++
		return geo.Haversine(a[0], b[0]), geo.Haversine(a[len(a)-1], b[len(b)-1]), true
	}
	got, gst, err := Join(ts, eps, &Options{EndpointDists: memo})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) || wst != gst {
		t.Fatalf("memo hook changed results:\nplain %+v %+v\nmemo  %+v %+v", want, wst, got, gst)
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("memo exercised unevenly: hits=%d misses=%d", hits, misses)
	}
}
