package join

import (
	"math"
	"math/rand"
	"testing"

	"trajmotif/internal/datagen"
	"trajmotif/internal/dist"
	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

func randWalk(r *rand.Rand, n int, cx, cy float64) *traj.Trajectory {
	pts := make([]geo.Point, n)
	x, y := cx, cy
	for i := range pts {
		x += r.Float64()*2 - 1
		y += r.Float64()*2 - 1
		pts[i] = geo.Point{Lng: x, Lat: y}
	}
	return traj.FromPoints(pts)
}

// TestDFDWithinMatchesExact cross-checks the decision procedure against
// exact DFD over random pairs and radii, including boundary radii.
func TestDFDWithinMatchesExact(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		a := randWalk(r, 3+r.Intn(15), 0, 0)
		b := randWalk(r, 3+r.Intn(15), r.Float64()*4, r.Float64()*4)
		d := dist.DFD(a.Points, b.Points, geo.Euclidean)
		for _, eps := range []float64{d * 0.5, d - 1e-9, d, d + 1e-9, d * 1.5} {
			want := d <= eps
			if got := DFDWithin(a.Points, b.Points, geo.Euclidean, eps); got != want {
				t.Fatalf("DFDWithin(eps=%g) = %v, exact DFD %g", eps, got, d)
			}
		}
	}
	if DFDWithin(nil, nil, geo.Euclidean, 1) {
		t.Error("empty sequences should be rejected")
	}
}

func TestJoinFindsExactlyTheClosePairs(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	// Three clusters of noisy copies plus two loners.
	var ts []*traj.Trajectory
	base := randWalk(r, 25, 0, 0)
	for k := 0; k < 3; k++ {
		pts := make([]geo.Point, base.Len())
		for i, p := range base.Points {
			pts[i] = geo.Point{Lng: p.Lng + r.Float64()*0.1, Lat: p.Lat + r.Float64()*0.1}
		}
		ts = append(ts, traj.FromPoints(pts))
	}
	ts = append(ts, randWalk(r, 25, 120, 70), randWalk(r, 25, -120, 50))

	eps := 1.0
	pairs, st, err := Join(ts, eps, &Options{Dist: geo.Euclidean, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth by brute force.
	truth := map[[2]int]float64{}
	for i := 0; i < len(ts); i++ {
		for j := i + 1; j < len(ts); j++ {
			if d := dist.DFD(ts[i].Points, ts[j].Points, geo.Euclidean); d <= eps {
				truth[[2]int{i, j}] = d
			}
		}
	}
	if len(pairs) != len(truth) {
		t.Fatalf("join found %d pairs, truth %d", len(pairs), len(truth))
	}
	for _, p := range pairs {
		want, ok := truth[[2]int{p.I, p.J}]
		if !ok {
			t.Fatalf("spurious pair (%d,%d)", p.I, p.J)
		}
		if math.Abs(p.Distance-want) > 1e-9 {
			t.Errorf("pair (%d,%d) distance %g, want %g", p.I, p.J, p.Distance, want)
		}
	}
	if st.Reported != int64(len(pairs)) || st.Pairs != 10 {
		t.Errorf("stats wrong: %+v", st)
	}
	// The far-away loners must have been rejected by cheap filters, not
	// the DP.
	if st.EndpointPruned+st.BoxPruned == 0 {
		t.Error("cheap filters never fired")
	}
}

func TestJoinFilterSoundness(t *testing.T) {
	// Random instances: the filter cascade must never lose a true pair.
	r := rand.New(rand.NewSource(63))
	for trial := 0; trial < 20; trial++ {
		var ts []*traj.Trajectory
		for k := 0; k < 6; k++ {
			ts = append(ts, randWalk(r, 8+r.Intn(10), r.Float64()*20, r.Float64()*20))
		}
		eps := 5 + r.Float64()*10
		pairs, _, err := Join(ts, eps, &Options{Dist: geo.Euclidean})
		if err != nil {
			t.Fatal(err)
		}
		found := map[[2]int]bool{}
		for _, p := range pairs {
			found[[2]int{p.I, p.J}] = true
		}
		for i := 0; i < len(ts); i++ {
			for j := i + 1; j < len(ts); j++ {
				want := dist.DFD(ts[i].Points, ts[j].Points, geo.Euclidean) <= eps
				if want != found[[2]int{i, j}] {
					t.Fatalf("pair (%d,%d): join=%v exact=%v (eps=%g)", i, j, found[[2]int{i, j}], want, eps)
				}
			}
		}
	}
}

func TestJoinValidation(t *testing.T) {
	if _, _, err := Join(nil, -1, nil); err == nil {
		t.Error("negative eps should error")
	}
	if _, _, err := Join([]*traj.Trajectory{nil}, 1, nil); err == nil {
		t.Error("nil trajectory should error")
	}
}

func TestJoinOnSyntheticFleet(t *testing.T) {
	// Trucks sharing a depot should join at a generous radius; different
	// datasets should not.
	a, b, err := datagen.Pair(datagen.TruckName, datagen.Config{Seed: 9, N: 120})
	if err != nil {
		t.Fatal(err)
	}
	baboon := datagen.Baboon(datagen.Config{Seed: 9, N: 120})
	pairs, _, err := Join([]*traj.Trajectory{a, b, baboon}, 20000, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if p.J == 2 || p.I == 2 {
			t.Errorf("baboon (Kenya) joined a truck (Athens): %+v", p)
		}
	}
}

func BenchmarkDFDWithinVsExact(b *testing.B) {
	r := rand.New(rand.NewSource(64))
	x := randWalk(r, 300, 0, 0)
	y := randWalk(r, 300, 50, 0) // far apart: early abandon should win
	b.Run("decision", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			DFDWithin(x.Points, y.Points, geo.Euclidean, 10)
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dist.DFD(x.Points, y.Points, geo.Euclidean)
		}
	})
}
