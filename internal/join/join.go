// Package join implements a discrete-Fréchet similarity join over sets of
// trajectories — one of the paper's stated future-work targets (§7:
// "apply similar optimizations in order to accelerate other trajectory
// analysis operations that rely on DFD, such as similarity join").
//
// Given trajectories T1..Tm and a radius eps, the join reports every pair
// (i, j) with DFD(Ti, Tj) <= eps. The same bounding philosophy as motif
// discovery applies, adapted to whole-trajectory pairs:
//
//  1. endpoint bound — every coupling matches first points to first
//     points and last to last, so DFD >= max(dG(a0,b0), dG(an,bm));
//  2. bounding-box bound — every point of A is matched to some point of
//     B, so DFD >= the minimal distance from any A point to B's bounding
//     box; probing a few A points costs O(1);
//  3. decision procedure — DFDWithin answers "DFD <= eps?" by a pruned
//     dynamic program that abandons as soon as a full row dies, usually
//     long before the O(l^2) table is complete.
package join

import (
	"fmt"
	"math"

	"trajmotif/internal/dist"
	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

// Pair is one join result.
type Pair struct {
	I, J int // indexes into the input slice, I < J
	// Distance is the exact DFD when Exact was requested, otherwise an
	// upper bound of eps (the decision procedure stops at yes/no).
	Distance float64
}

// Options tunes the join.
type Options struct {
	// Dist is the ground distance; nil selects haversine.
	Dist geo.DistanceFunc
	// Exact computes the exact DFD for reported pairs (one extra O(l^2)
	// pass per reported pair); otherwise Distance is set to eps.
	Exact bool
}

func (o *Options) dist() geo.DistanceFunc {
	if o == nil || o.Dist == nil {
		return geo.Haversine
	}
	return o.Dist
}

// Stats counts the filter cascade's effectiveness.
type Stats struct {
	Pairs            int64 // candidate pairs considered
	EndpointPruned   int64
	BoxPruned        int64
	DecisionRejected int64
	Reported         int64
}

// Join reports all pairs of trajectories within DFD eps of each other.
func Join(ts []*traj.Trajectory, eps float64, opt *Options) ([]Pair, Stats, error) {
	if eps < 0 {
		return nil, Stats{}, fmt.Errorf("join: negative radius %g", eps)
	}
	df := opt.dist()
	exact := opt != nil && opt.Exact

	boxes := make([]box, len(ts))
	for k, t := range ts {
		if t == nil || t.Len() == 0 {
			return nil, Stats{}, fmt.Errorf("join: nil or empty trajectory at index %d", k)
		}
		boxes[k] = boundingBox(t.Points)
	}

	var out []Pair
	var st Stats
	for i := 0; i < len(ts); i++ {
		for j := i + 1; j < len(ts); j++ {
			st.Pairs++
			a, b := ts[i].Points, ts[j].Points

			// Filter 1: endpoint bound.
			if df(a[0], b[0]) > eps || df(a[len(a)-1], b[len(b)-1]) > eps {
				st.EndpointPruned++
				continue
			}
			// Filter 2: box probes in both directions.
			if probeBound(a, boxes[j], df) > eps || probeBound(b, boxes[i], df) > eps {
				st.BoxPruned++
				continue
			}
			// Filter 3: decision DP.
			if !DFDWithin(a, b, df, eps) {
				st.DecisionRejected++
				continue
			}
			p := Pair{I: i, J: j, Distance: eps}
			if exact {
				p.Distance = dist.DFD(a, b, df)
			}
			out = append(out, p)
			st.Reported++
		}
	}
	return out, st, nil
}

// DFDWithin decides whether DFD(a, b) <= eps without computing the full
// distance, by the canonical decision kernel (dist.DFDDecision): cells
// whose value would exceed eps are dead and the DP abandons as soon as a
// row has no live cell. O(l^2) worst case, O(min l) space. Empty inputs
// are never within any radius (the join rejects them up front).
func DFDWithin(a, b []geo.Point, df geo.DistanceFunc, eps float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	return dist.DFDDecision(a, b, df, eps)
}

type box struct {
	minLat, maxLat, minLng, maxLng float64
}

func boundingBox(pts []geo.Point) box {
	b := box{minLat: math.Inf(1), maxLat: math.Inf(-1), minLng: math.Inf(1), maxLng: math.Inf(-1)}
	for _, p := range pts {
		b.minLat = math.Min(b.minLat, p.Lat)
		b.maxLat = math.Max(b.maxLat, p.Lat)
		b.minLng = math.Min(b.minLng, p.Lng)
		b.maxLng = math.Max(b.maxLng, p.Lng)
	}
	return b
}

// clampToBox returns the point of the box closest to p (in coordinate
// space), whose ground distance to p lower-bounds p's distance to every
// point inside the box.
func clampToBox(p geo.Point, b box) geo.Point {
	q := p
	if q.Lat < b.minLat {
		q.Lat = b.minLat
	} else if q.Lat > b.maxLat {
		q.Lat = b.maxLat
	}
	if q.Lng < b.minLng {
		q.Lng = b.minLng
	} else if q.Lng > b.maxLng {
		q.Lng = b.maxLng
	}
	return q
}

// probeBound lower-bounds DFD(a, ·) for any trajectory inside bb: every
// coupling matches each probed point of a to some point in bb, so the
// max probe-to-box distance is a lower bound. Probes first, middle, last.
func probeBound(a []geo.Point, bb box, df geo.DistanceFunc) float64 {
	lb := 0.0
	for _, idx := range [...]int{0, len(a) / 2, len(a) - 1} {
		p := a[idx]
		if d := df(p, clampToBox(p, bb)); d > lb {
			lb = d
		}
	}
	return lb
}
