// Package join implements a discrete-Fréchet similarity join over sets of
// trajectories — one of the paper's stated future-work targets (§7:
// "apply similar optimizations in order to accelerate other trajectory
// analysis operations that rely on DFD, such as similarity join").
//
// Given trajectories T1..Tm and a radius eps, the join reports every pair
// (i, j) with DFD(Ti, Tj) <= eps. The same bounding philosophy as motif
// discovery applies, adapted to whole-trajectory pairs:
//
//  1. endpoint bound — every coupling matches first points to first
//     points and last to last, so DFD >= max(dG(a0,b0), dG(an,bm));
//  2. bounding-box bound — every point of A is matched to some point of
//     B, so DFD >= the minimal distance from any A point to B's bounding
//     box; probing a few A points costs O(1);
//  3. decision procedure — DFDWithin answers "DFD <= eps?" by a pruned
//     dynamic program that abandons as soon as a full row dies, usually
//     long before the O(l^2) table is complete.
//
// With Options.Index set, a spatial MBR index retrieves the candidate
// pairs with MinDist(MBR_i, MBR_j) <= eps and rejects the rest without
// touching their points. MinDist lower-bounds the endpoint distance
// df(a0, b0) (both endpoints lie inside their boxes), so every pair the
// index rejects is exactly one filter 1 would have rejected — the
// surviving pairs run the unchanged cascade in the same (i, j) order,
// making results and all pre-existing Stats counters byte-identical to
// the linear scan (join_parity_test.go proves it).
package join

import (
	"fmt"
	"math"
	"sort"

	"trajmotif/internal/dist"
	"trajmotif/internal/geo"
	"trajmotif/internal/spatial"
	"trajmotif/internal/traj"
)

// Pair is one join result.
type Pair struct {
	I, J int // indexes into the input slice, I < J
	// Distance is the exact DFD when Exact was requested, otherwise an
	// upper bound of eps (the decision procedure stops at yes/no).
	Distance float64
}

// Options tunes the join.
type Options struct {
	// Dist is the ground distance; nil selects haversine.
	Dist geo.DistanceFunc
	// Exact computes the exact DFD for reported pairs (one extra O(l^2)
	// pass per reported pair); otherwise Distance is set to eps.
	Exact bool
	// Index, when non-nil, retrieves candidate pairs spatially instead of
	// enumerating all n(n-1)/2. It must be keyed by position into ts with
	// MBRs equal to spatial.Bound of each trajectory's points, and built
	// for the same ground distance as Dist. Results and all non-Index
	// Stats fields are unchanged by it.
	Index *spatial.Index
	// Projected routes the decision DP (filter 3) through the
	// equirectangular projected kernel when Dist is haversine: cells the
	// per-pair frame's certified error band can decide skip the haversine
	// entirely, and undecidable cells fall back per cell (counted in
	// Stats.ProjectionFallbacks). Results and every other Stats counter
	// are byte-identical to the unprojected join; ignored for non-
	// haversine metrics.
	Projected bool
	// EndpointDists, when non-nil, supplies the endpoint ground distances
	// df(a[0], b[0]) and df(a[n-1], b[m-1]) for the pair (i, j) — e.g.
	// from a store-level memo. Returned values must be bit-identical to
	// direct evaluation; ok=false falls back to computing them.
	EndpointDists func(i, j int) (d0, dn float64, ok bool)
}

func (o *Options) dist() geo.DistanceFunc {
	if o == nil || o.Dist == nil {
		return geo.Haversine
	}
	return o.Dist
}

// Stats counts the filter cascade's effectiveness.
type Stats struct {
	Pairs            int64 // candidate pairs considered
	EndpointPruned   int64
	BoxPruned        int64
	DecisionRejected int64
	Reported         int64
	// IndexConsulted counts spatial-index retrievals (one per input
	// trajectory on the indexed path); IndexPruned counts pairs the index
	// rejected without touching their points. Index rejections are a
	// subset of filter 1's, so they are credited to EndpointPruned too,
	// keeping that counter byte-identical to the index-free join.
	IndexConsulted int64
	IndexPruned    int64
	// ProjectionFallbacks counts decision-DP cells (or whole pairs, when
	// no valid frame exists) where the projected kernel's error band
	// could not certify the comparison and the haversine was consulted.
	// Zero unless Options.Projected is in effect.
	ProjectionFallbacks int64
}

// Join reports all pairs of trajectories within DFD eps of each other.
func Join(ts []*traj.Trajectory, eps float64, opt *Options) ([]Pair, Stats, error) {
	if eps < 0 {
		return nil, Stats{}, fmt.Errorf("join: negative radius %g", eps)
	}
	df := opt.dist()
	exact := opt != nil && opt.Exact

	boxes := make([]spatial.MBR, len(ts))
	for k, t := range ts {
		if t == nil || t.Len() == 0 {
			return nil, Stats{}, fmt.Errorf("join: nil or empty trajectory at index %d", k)
		}
		boxes[k] = spatial.Bound(t.Points)
	}

	var st Stats
	// survivors yields the (i, j) pairs (i < j, lexicographic order) that
	// reach the filter cascade; the indexed path rejects MinDist > eps
	// pairs up front and books them as EndpointPruned — the filter that
	// would have caught every one of them (MinDist <= df(a0, b0)).
	var survivors func(yield func(i, j int))
	if opt != nil && opt.Index != nil {
		ix := opt.Index
		for k := range ts {
			if mb, ok := ix.MBROf(k); !ok {
				return nil, Stats{}, fmt.Errorf("join: spatial index has no entry for trajectory %d", k)
			} else {
				boxes[k] = mb
			}
		}
		n := int64(len(ts))
		st.Pairs = n * (n - 1) / 2
		st.IndexConsulted = n
		survivors = func(yield func(i, j int)) {
			var kept int64
			for i := 0; i < len(ts); i++ {
				cand := ix.Candidates(boxes[i], eps)
				sort.Ints(cand)
				for _, j := range cand {
					if j <= i || ix.MinDist(boxes[i], boxes[j]) > eps {
						continue
					}
					kept++
					yield(i, j)
				}
			}
			st.IndexPruned = st.Pairs - kept
			st.EndpointPruned += st.IndexPruned
		}
	} else {
		survivors = func(yield func(i, j int)) {
			for i := 0; i < len(ts); i++ {
				for j := i + 1; j < len(ts); j++ {
					st.Pairs++
					yield(i, j)
				}
			}
		}
	}

	hav := geo.IsHaversine(df)
	// Hoist cos(lat) for the endpoint cascade: filter 1 touches each
	// trajectory's first/last point once per candidate pair, so the four
	// cos calls per pair become four table lookups (bit-identical —
	// HaversinePrepared runs the same core as Haversine).
	var cosFirst, cosLast []float64
	if hav {
		cosFirst = make([]float64, len(ts))
		cosLast = make([]float64, len(ts))
		for k, t := range ts {
			cosFirst[k] = geo.CosLat(t.Points[0])
			cosLast[k] = geo.CosLat(t.Points[len(t.Points)-1])
		}
	}
	endpointDists := func(i, j int) (d0, dn float64) {
		if opt != nil && opt.EndpointDists != nil {
			if m0, mn, ok := opt.EndpointDists(i, j); ok {
				return m0, mn
			}
		}
		a, b := ts[i].Points, ts[j].Points
		if hav {
			return geo.HaversinePrepared(a[0], b[0], cosFirst[i], cosFirst[j]),
				geo.HaversinePrepared(a[len(a)-1], b[len(b)-1], cosLast[i], cosLast[j])
		}
		return df(a[0], b[0]), df(a[len(a)-1], b[len(b)-1])
	}
	projected := hav && opt != nil && opt.Projected

	var out []Pair
	survivors(func(i, j int) {
		a, b := ts[i].Points, ts[j].Points

		// Filter 1: endpoint bound.
		if d0, dn := endpointDists(i, j); d0 > eps || dn > eps {
			st.EndpointPruned++
			return
		}
		// Filter 2: box probes in both directions.
		if probeBound(a, boxes[j], df) > eps || probeBound(b, boxes[i], df) > eps {
			st.BoxPruned++
			return
		}
		// Filter 3: decision DP, optionally through the projected kernel
		// (same boolean, cell-level haversine fallback where the frame's
		// error band cannot certify the comparison).
		var within bool
		if projected {
			f := pairFrame(boxes[i], boxes[j])
			var pa, pb []geo.Projected
			if f.OK() {
				pa = ts[i].ProjectedPoints(f)
				pb = ts[j].ProjectedPoints(f)
			}
			within = dist.DFDDecisionProjected(a, b, pa, pb, f, eps, &st.ProjectionFallbacks)
		} else {
			within = DFDWithin(a, b, df, eps)
		}
		if !within {
			st.DecisionRejected++
			return
		}
		p := Pair{I: i, J: j, Distance: eps}
		if exact {
			p.Distance = dist.DFD(a, b, df)
		}
		out = append(out, p)
		st.Reported++
	})
	return out, st, nil
}

// DFDWithin decides whether DFD(a, b) <= eps without computing the full
// distance, by the canonical decision kernel (dist.DFDDecision): cells
// whose value would exceed eps are dead and the DP abandons as soon as a
// row has no live cell. O(l^2) worst case, O(min l) space. Empty inputs
// are never within any radius (the join rejects them up front).
func DFDWithin(a, b []geo.Point, df geo.DistanceFunc, eps float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	return dist.DFDDecision(a, b, df, eps)
}

// pairFrame builds the shared projection frame for a candidate pair from
// the union of the two trajectories' bounding boxes. The zero Frame (not
// OK) is returned for regions the certified error band cannot cover —
// pole-adjacent, antimeridian-spanning, or very wide boxes — and the
// caller falls back to the haversine decision for the whole pair.
func pairFrame(a, b spatial.MBR) geo.Frame {
	return geo.FrameFor(
		math.Min(a.MinLat, b.MinLat), math.Max(a.MaxLat, b.MaxLat),
		math.Min(a.MinLng, b.MinLng), math.Max(a.MaxLng, b.MaxLng),
	)
}

// probeBound lower-bounds DFD(a, ·) for any trajectory inside bb: every
// coupling matches each probed point of a to some point in bb, so the
// max probe-to-box distance is a lower bound. Probes first, middle, last.
func probeBound(a []geo.Point, bb spatial.MBR, df geo.DistanceFunc) float64 {
	lb := 0.0
	for _, idx := range [...]int{0, len(a) / 2, len(a) - 1} {
		p := a[idx]
		if d := df(p, bb.Clamp(p)); d > lb {
			lb = d
		}
	}
	return lb
}
