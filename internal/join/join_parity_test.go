package join

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"trajmotif/internal/dist"
	"trajmotif/internal/geo"
	"trajmotif/internal/spatial"
	"trajmotif/internal/traj"
)

// geoWalk is a short noisy walk around a city-scale center on valid
// lat/lng coordinates.
func geoWalk(r *rand.Rand, n int, lat, lng float64) *traj.Trajectory {
	pts := make([]geo.Point, n)
	for i := range pts {
		lat += (r.Float64()*2 - 1) * 0.01
		lng += (r.Float64()*2 - 1) * 0.01
		pts[i] = geo.Point{Lat: lat, Lng: lng}
	}
	return traj.FromPoints(pts)
}

// parityCorpus clusters trajectories in distant cities — near pairs the
// join must report, far pairs the index must reject — plus duplicate and
// single-point members for the degenerate edges.
func parityCorpus(r *rand.Rand) []*traj.Trajectory {
	centers := [][2]float64{{39.9, 116.4}, {37.97, 23.72}, {48.85, 2.35}, {-33.87, 151.2}}
	var ts []*traj.Trajectory
	for _, c := range centers {
		for i := 0; i < 4; i++ {
			ts = append(ts, geoWalk(r, 12+r.Intn(18), c[0]+r.Float64()*0.05, c[1]+r.Float64()*0.05))
		}
		ts = append(ts, traj.FromPoints([]geo.Point{{Lat: c[0], Lng: c[1]}}))
	}
	ts = append(ts, ts[0]) // exact duplicate: a distance-0 pair
	return ts
}

// TestJoinIndexParity is the tentpole proof for the join: for radii
// bracketing a true pair distance from both sides (±ε in the ulp sense),
// zero, and corpus-scale values, the indexed join returns pairs AND the
// full filter-cascade stats byte-identical to the all-pairs scan, while
// IndexPruned > 0 overall.
func TestJoinIndexParity(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	var pruned int64
	for trial := 0; trial < 6; trial++ {
		ts := parityCorpus(r)
		// A true distance to bracket: two members of the first cluster.
		d := dist.DFD(ts[0].Points, ts[1].Points, geo.Haversine)
		radii := []float64{0, math.Nextafter(d, 0), d, math.Nextafter(d, math.Inf(1)), 5000, 2e7}
		ix, err := spatial.BuildIndex(ts, geo.Haversine)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range radii {
			for _, exact := range []bool{false, true} {
				plain, pst, err1 := Join(ts, eps, &Options{Exact: exact})
				fast, fst, err2 := Join(ts, eps, &Options{Exact: exact, Index: ix})
				if err1 != nil || err2 != nil {
					t.Fatalf("trial %d eps=%g: errors %v / %v", trial, eps, err1, err2)
				}
				if fst.IndexConsulted != int64(len(ts)) {
					t.Fatalf("trial %d eps=%g: IndexConsulted = %d, want %d", trial, eps, fst.IndexConsulted, len(ts))
				}
				pruned += fst.IndexPruned
				fst.IndexConsulted, fst.IndexPruned = 0, 0
				if !reflect.DeepEqual(plain, fast) {
					t.Fatalf("trial %d eps=%g exact=%v: pairs differ\nplain %+v\nindexed %+v",
						trial, eps, exact, plain, fast)
				}
				if pst != fst {
					t.Fatalf("trial %d eps=%g exact=%v: stats differ\nplain %+v\nindexed %+v",
						trial, eps, exact, pst, fst)
				}
			}
		}
	}
	if pruned == 0 {
		t.Error("index never pruned a pair on the parity corpus")
	}
}

// TestJoinIndexEdges covers eps = 0 (duplicates must still pair),
// empty input, the one-trajectory join, single-point trajectories, and
// a stale index.
func TestJoinIndexEdges(t *testing.T) {
	r := rand.New(rand.NewSource(92))

	// eps = 0 with an exact duplicate: the pair is reported at distance 0.
	a := geoWalk(r, 10, 40, -74)
	ts := []*traj.Trajectory{a, geoWalk(r, 10, 51.5, 0), a}
	ix, err := spatial.BuildIndex(ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	pairs, st, err := Join(ts, 0, &Options{Exact: true, Index: ix})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].I != 0 || pairs[0].J != 2 || pairs[0].Distance != 0 {
		t.Fatalf("eps=0 duplicates: %+v", pairs)
	}
	if st.Pairs != 3 {
		t.Fatalf("eps=0 Pairs = %d, want 3", st.Pairs)
	}

	// Empty and singleton inputs: no pairs, no error.
	for _, in := range [][]*traj.Trajectory{nil, {a}} {
		ixn, err := spatial.BuildIndex(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		pairs, st, err := Join(in, 100, &Options{Index: ixn})
		if err != nil || len(pairs) != 0 || st.Pairs != 0 {
			t.Fatalf("degenerate input %d: %v %+v %+v", len(in), err, pairs, st)
		}
	}

	// Single-point trajectories: DFD is the point distance; parity holds.
	ones := []*traj.Trajectory{
		traj.FromPoints([]geo.Point{{Lat: 40, Lng: -74}}),
		traj.FromPoints([]geo.Point{{Lat: 40.0001, Lng: -74}}),
		traj.FromPoints([]geo.Point{{Lat: -33, Lng: 151}}),
	}
	ix1, err := spatial.BuildIndex(ones, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, pst, err1 := Join(ones, 100, nil)
	fast, fst, err2 := Join(ones, 100, &Options{Index: ix1})
	if err1 != nil || err2 != nil {
		t.Fatalf("single-point: %v / %v", err1, err2)
	}
	fst.IndexConsulted, fst.IndexPruned = 0, 0
	if !reflect.DeepEqual(plain, fast) || pst != fst {
		t.Fatalf("single-point parity broke: %+v %+v vs %+v %+v", plain, pst, fast, fst)
	}
	if len(plain) != 1 || plain[0].I != 0 || plain[0].J != 1 {
		t.Fatalf("single-point join: %+v", plain)
	}

	// An index that does not cover the input errors instead of guessing.
	empty, err := spatial.BuildIndex(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Join(ones, 100, &Options{Index: empty}); err == nil {
		t.Error("index missing the input should error")
	}

	// Negative radius still rejected on the indexed path.
	if _, _, err := Join(ones, -1, &Options{Index: ix1}); err == nil {
		t.Error("negative radius with index should error")
	}
}
