package dist

import (
	"fmt"
	"math"

	"trajmotif/internal/geo"
)

// DFD returns the discrete Fréchet distance between point sequences a and
// b under the ground distance df, in df's unit.
//
// DFD is the bottleneck cost of the cheapest order-preserving coupling:
// both sequences are traversed front to back, each step advancing one or
// both cursors, and the cost of a traversal is the largest ground distance
// between paired points; DFD minimizes that cost over all traversals
// (Eiter & Mannila 1994). The recurrence is
//
//	dp[i][j] = max(df(a[i], b[j]), min(dp[i-1][j], dp[i][j-1], dp[i-1][j-1]))
//
// computed by the canonical kernel (kernel.go) with two rolling rows over
// the shorter sequence and the ground distance fused into the DP loop, so
// the cost is O(n·m) time and O(min(n,m)) working space (§5.5, Idea ii).
//
// Two empty sequences are at distance 0; an empty sequence is infinitely
// far from a non-empty one (no coupling exists).
func DFD(a, b []geo.Point, df geo.DistanceFunc) float64 {
	d, _ := DFDCapped(a, b, df, math.Inf(1))
	return d
}

// DFDMatrix returns the full len(a)×len(b) dynamic-programming table of
// the discrete Fréchet recurrence; the distance itself is the final cell
// dp[len(a)-1][len(b)-1]. Callers that only need the distance should use
// DFD, which runs the identical recurrence in O(min(n,m)) space; the full
// table exists for inspecting intermediate couplings and for the
// space-ablation benchmarks. Returns nil if either sequence is empty.
func DFDMatrix(a, b []geo.Point, df geo.DistanceFunc) [][]float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	dp := make([][]float64, len(a))
	for i := range dp {
		dp[i] = make([]float64, len(b))
	}
	dp[0][0] = df(a[0], b[0])
	for j := 1; j < len(b); j++ {
		dp[0][j] = math.Max(dp[0][j-1], df(a[0], b[j]))
	}
	for i := 1; i < len(a); i++ {
		dp[i][0] = math.Max(dp[i-1][0], df(a[i], b[0]))
		for j := 1; j < len(b); j++ {
			reach := math.Min(dp[i-1][j], math.Min(dp[i][j-1], dp[i-1][j-1]))
			dp[i][j] = math.Max(reach, df(a[i], b[j]))
		}
	}
	return dp
}

// DFDFromGrid returns the discrete Fréchet distance given a precomputed
// ground-distance grid: g[i][j] must hold df(a[i], b[j]) for the two
// sequences being compared. All rows must have equal length. Degenerate
// grids follow DFD's conventions: a grid with no rows (two empty
// sequences) is at distance 0, and a grid with rows but no columns (one
// empty sequence) is infinitely far. For evaluating a sub-window of a
// shared matrix without copying it out, use DFDFromGridCapped.
func DFDFromGrid(g [][]float64) float64 {
	if len(g) == 0 {
		return 0
	}
	if len(g[0]) == 0 {
		return math.Inf(1)
	}
	d, _ := windowCapped(rowsGrid(g), 0, len(g)-1, 0, len(g[0])-1, math.Inf(1))
	return d
}

// DTW returns the dynamic time warping distance between a and b under df:
// the minimal sum of ground distances over all order-preserving couplings.
// Unlike DFD's bottleneck objective, DTW accumulates a cost for every
// matched pair, which is why an oversampled segment inflates it (paper
// Figure 3) — each extra sample adds another term to the sum. O(n·m) time,
// O(min(n,m)) space.
//
// Two empty sequences are at distance 0; an empty sequence is infinitely
// far from a non-empty one.
func DTW(a, b []geo.Point, df geo.DistanceFunc) float64 {
	if len(a) == 0 || len(b) == 0 {
		if len(a) == len(b) {
			return 0
		}
		return math.Inf(1)
	}
	if len(b) > len(a) {
		a, b = b, a
	}
	m := len(b)
	prev := make([]float64, m)
	cur := make([]float64, m)

	prev[0] = df(a[0], b[0])
	for j := 1; j < m; j++ {
		prev[j] = prev[j-1] + df(a[0], b[j])
	}
	for i := 1; i < len(a); i++ {
		cur[0] = prev[0] + df(a[i], b[0])
		for j := 1; j < m; j++ {
			reach := math.Min(prev[j], math.Min(cur[j-1], prev[j-1]))
			cur[j] = reach + df(a[i], b[j])
		}
		prev, cur = cur, prev
	}
	return prev[m-1]
}

// ED returns the lock-step Euclidean-style distance between two
// equal-length sequences: the mean ground distance between positionally
// paired points, in df's unit. It errors when the lengths differ — the
// measure has no alignment freedom, which is exactly the fragility Table 1
// records: it cannot compare sequences sampled at different rates, and a
// single stall misaligns every subsequent pair. Two empty sequences are at
// distance 0.
func ED(a, b []geo.Point, df geo.DistanceFunc) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("dist: ED requires equal-length sequences, got %d and %d points", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i := range a {
		sum += df(a[i], b[i])
	}
	return sum / float64(len(a)), nil
}

// EDR returns the edit distance on real sequences (Chen, Özsu & Oria
// 2005) between a and b: the minimal number of insert, delete and
// substitute operations turning one sequence into the other, where two
// points match for free when their ground distance is at most eps. It is
// Levenshtein distance with the eps-ball as the character-equality test.
// The result lies in [|len(a)-len(b)|, max(len(a), len(b))]. O(n·m) time,
// O(min(n,m)) space.
func EDR(a, b []geo.Point, df geo.DistanceFunc, eps float64) int {
	if len(b) > len(a) {
		a, b = b, a
	}
	m := len(b)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			sub := prev[j-1]
			if df(a[i-1], b[j-1]) > eps {
				sub++
			}
			cur[j] = min(sub, min(prev[j]+1, cur[j-1]+1))
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// LCSS returns the length of the longest common subsequence of a and b,
// where two points are considered equal when their ground distance is at
// most eps (Vlachos, Kollios & Gunopulos 2002). The result is a
// similarity in [0, min(len(a), len(b))] — larger is more alike. Because
// it is a raw match count, densely sampled near-misses outscore exact but
// thinly sampled twins (Table 1's non-uniform-sampling failure); use
// LCSSDistance for the normalized dissimilarity. O(n·m) time, O(min(n,m))
// space.
func LCSS(a, b []geo.Point, df geo.DistanceFunc, eps float64) int {
	if len(b) > len(a) {
		a, b = b, a
	}
	m := len(b)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= m; j++ {
			if df(a[i-1], b[j-1]) <= eps {
				cur[j] = prev[j-1] + 1
			} else {
				cur[j] = max(prev[j], cur[j-1])
			}
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// LCSSDistance returns the normalized LCSS dissimilarity
// 1 − LCSS(a, b)/min(len(a), len(b)), in [0, 1]: 0 when the shorter
// sequence matches entirely inside the longer, 1 when nothing matches.
// Two empty sequences are at distance 0; one empty sequence is at the
// maximal distance 1 from a non-empty one.
func LCSSDistance(a, b []geo.Point, df geo.DistanceFunc, eps float64) float64 {
	n := min(len(a), len(b))
	if n == 0 {
		if len(a) == len(b) {
			return 0
		}
		return 1
	}
	return 1 - float64(LCSS(a, b, df, eps))/float64(n)
}
