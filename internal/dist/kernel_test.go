package dist_test

// Cross-package equivalence and property tests for the canonical DFD
// kernel: every public entry point — point form, capped form, decision
// form, grid and windowed-grid forms, and the row primitives that
// internal/core and internal/group compose — must agree on the same
// inputs. This suite is what pins every caller in the tree to one
// recurrence.

import (
	"math"
	"math/rand"
	"testing"

	"trajmotif/internal/dist"
	"trajmotif/internal/dmatrix"
	"trajmotif/internal/geo"
)

// grid materializes the ground-distance table of two point sequences.
func grid(a, b []geo.Point) [][]float64 {
	g := make([][]float64, len(a))
	for i := range g {
		g[i] = make([]float64, len(b))
		for j := range g[i] {
			g[i][j] = geo.Euclidean(a[i], b[j])
		}
	}
	return g
}

// TestKernelCrossPackageEquivalence asserts that all exact entry points
// compute the same value to 1e-12 on randomized trajectories: the fused
// point kernel, the full-table oracle, the [][]float64 grid form, the
// windowed form over a dmatrix.Matrix (the shape internal/bounds and
// internal/group consume), and the capped form with an infinite cap.
func TestKernelCrossPackageEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		a := randWalk(r, 1+r.Intn(14), 0, 0)
		b := randWalk(r, 1+r.Intn(14), r.Float64()*4, r.Float64()*4)

		want := dist.DFD(a, b, geo.Euclidean)

		dp := dist.DFDMatrix(a, b, geo.Euclidean)
		if got := dp[len(a)-1][len(b)-1]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("DFDMatrix = %g, DFD = %g", got, want)
		}
		if got := dist.DFDFromGrid(grid(a, b)); math.Abs(got-want) > 1e-12 {
			t.Fatalf("DFDFromGrid = %g, DFD = %g", got, want)
		}
		m := dmatrix.ComputeCross(a, b, geo.Euclidean)
		got, exceeded := dist.DFDFromGridCapped(m, 0, len(a)-1, 0, len(b)-1, math.Inf(1))
		if exceeded || math.Abs(got-want) > 1e-12 {
			t.Fatalf("DFDFromGridCapped = %g (exceeded=%v), DFD = %g", got, exceeded, want)
		}
		got, exceeded = dist.DFDCapped(a, b, geo.Euclidean, math.Inf(1))
		if exceeded || math.Abs(got-want) > 1e-12 {
			t.Fatalf("DFDCapped(+Inf) = %g (exceeded=%v), DFD = %g", got, exceeded, want)
		}
	}
}

// TestDFDDecisionEquivalence sweeps eps across and around the exact
// distance — including the exact boundary value, where DFD <= eps flips —
// and requires DFDDecision to agree with the exact comparison everywhere.
func TestDFDDecisionEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	for trial := 0; trial < 200; trial++ {
		a := randWalk(r, 1+r.Intn(12), 0, 0)
		b := randWalk(r, 1+r.Intn(12), r.Float64()*4, r.Float64()*4)
		d := dist.DFD(a, b, geo.Euclidean)

		sweep := []float64{
			0, d * 0.25, d * 0.5, math.Nextafter(d, 0), d,
			math.Nextafter(d, math.Inf(1)), d * 1.5, d * 4, -1,
		}
		for _, eps := range sweep {
			want := d <= eps
			if got := dist.DFDDecision(a, b, geo.Euclidean, eps); got != want {
				t.Fatalf("DFDDecision(eps=%g) = %v, want %v (DFD=%g, n=%d, m=%d)",
					eps, got, want, d, len(a), len(b))
			}
		}
	}
}

// TestDFDCappedProperties pins the capped contract:
//   - exceeded == false means the value equals the exact DFD;
//   - exceeded == true means the value is a valid lower bound on the
//     exact DFD and is at least the cap;
//   - a +Inf cap degrades to the exact computation;
//   - a cap strictly above the distance never abandons.
func TestDFDCappedProperties(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	for trial := 0; trial < 200; trial++ {
		a := randWalk(r, 1+r.Intn(12), 0, 0)
		b := randWalk(r, 1+r.Intn(12), r.Float64()*5, r.Float64()*5)
		exact := dist.DFD(a, b, geo.Euclidean)

		if d, ex := dist.DFDCapped(a, b, geo.Euclidean, math.Inf(1)); ex || d != exact {
			t.Fatalf("+Inf cap: got %g (exceeded=%v), want exact %g", d, ex, exact)
		}
		if d, ex := dist.DFDCapped(a, b, geo.Euclidean, exact*1.5+1); ex || d != exact {
			t.Fatalf("loose cap: got %g (exceeded=%v), want exact %g", d, ex, exact)
		}
		for _, cap := range []float64{0, exact * 0.25, exact * 0.75, exact} {
			d, ex := dist.DFDCapped(a, b, geo.Euclidean, cap)
			if ex {
				if d < cap {
					t.Fatalf("cap %g: abandoned below the cap with %g", cap, d)
				}
				if d > exact {
					t.Fatalf("cap %g: partial %g is not a lower bound on %g", cap, d, exact)
				}
			} else if d != exact {
				t.Fatalf("cap %g: completed with %g, want exact %g", cap, d, exact)
			}
		}
	}
}

// TestDFDFromGridCappedWindows pins the windowed form's indexing: every
// random sub-window of a shared matrix must match the DFD of the copied
// sub-grid and of the corresponding point slices.
func TestDFDFromGridCappedWindows(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	a := randWalk(r, 14, 0, 0)
	b := randWalk(r, 11, 1, 1)
	m := dmatrix.ComputeCross(a, b, geo.Euclidean)
	for trial := 0; trial < 200; trial++ {
		i0 := r.Intn(len(a))
		i1 := i0 + r.Intn(len(a)-i0)
		j0 := r.Intn(len(b))
		j1 := j0 + r.Intn(len(b)-j0)

		got, exceeded := dist.DFDFromGridCapped(m, i0, i1, j0, j1, math.Inf(1))
		if exceeded {
			t.Fatalf("window (%d..%d)x(%d..%d) exceeded an infinite cap", i0, i1, j0, j1)
		}
		want := dist.DFD(a[i0:i1+1], b[j0:j1+1], geo.Euclidean)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("window (%d..%d)x(%d..%d) = %g, point form %g", i0, i1, j0, j1, got, want)
		}
	}
}

// TestDFDRowPrimitivesCompose drives the exported row primitives the way
// internal/core's subset sweep does — boundary row, then per-row boundary
// column + relax — and requires the composition to reproduce DFD and its
// row-minimum lower-bound guarantee.
func TestDFDRowPrimitivesCompose(t *testing.T) {
	r := rand.New(rand.NewSource(65))
	for trial := 0; trial < 100; trial++ {
		a := randWalk(r, 2+r.Intn(10), 0, 0)
		b := randWalk(r, 2+r.Intn(10), r.Float64()*3, r.Float64()*3)
		g := dmatrix.ComputeCross(a, b, geo.Euclidean)
		n, m := g.Dims()

		want := dist.DFD(a, b, geo.Euclidean)
		prev := make([]float64, m)
		cur := make([]float64, m)
		dist.DFDBoundaryRow(g, 0, 0, m-1, prev)
		colMax := prev[0]
		for i := 1; i < n; i++ {
			if d := g.At(i, 0); d > colMax {
				colMax = d
			}
			cur[0] = colMax
			rowMin := dist.DFDRelaxRow(g, i, 0, m-1, prev, cur)
			if rowMin > want+1e-12 {
				t.Fatalf("row %d minimum %g exceeds final DFD %g", i, rowMin, want)
			}
			prev, cur = cur, prev
		}
		if got := prev[m-1]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("composed primitives = %g, DFD = %g", got, want)
		}
	}
}

// TestKernelDegenerateConventions pins the empty-input conventions of the
// new entry points against DFD's.
func TestKernelDegenerateConventions(t *testing.T) {
	var empty []geo.Point
	one := []geo.Point{{Lng: 1}}

	if d, ex := dist.DFDCapped(empty, empty, geo.Euclidean, 5); d != 0 || ex {
		t.Errorf("DFDCapped(empty, empty) = %g, %v; want 0, false", d, ex)
	}
	if d, ex := dist.DFDCapped(empty, one, geo.Euclidean, 5); !math.IsInf(d, 1) || ex {
		t.Errorf("DFDCapped(empty, a) = %g, %v; want +Inf, false", d, ex)
	}
	if !dist.DFDDecision(empty, empty, geo.Euclidean, 0) {
		t.Error("DFDDecision(empty, empty, 0) = false, want true (distance 0)")
	}
	if dist.DFDDecision(empty, empty, geo.Euclidean, -1) {
		t.Error("DFDDecision(empty, empty, -1) = true, want false")
	}
	if dist.DFDDecision(empty, one, geo.Euclidean, 100) {
		t.Error("DFDDecision(empty, a) = true, want false")
	}
	// Windowed degenerate conventions mirror the grid form's.
	m := dmatrix.ComputeCross(one, one, geo.Euclidean)
	if d, _ := dist.DFDFromGridCapped(m, 1, 0, 1, 0, math.Inf(1)); d != 0 {
		t.Errorf("empty-by-empty window = %g, want 0", d)
	}
	if d, _ := dist.DFDFromGridCapped(m, 0, 0, 1, 0, math.Inf(1)); !math.IsInf(d, 1) {
		t.Errorf("rows-by-no-columns window = %g, want +Inf", d)
	}
}
