package dist_test

import (
	"encoding/binary"
	"math"
	"testing"

	"trajmotif/internal/dist"
	"trajmotif/internal/geo"
)

// fuzzCoord decodes 8 bytes into a finite coordinate, mapping NaN and
// infinities to large finite values and clamping the magnitude so squared
// Euclidean terms stay representable — the kernel's contract assumes
// NaN-free ground distances, and the clamp still exercises extreme
// (1e150-scale) coordinates.
func fuzzCoord(b []byte) float64 {
	v := math.Float64frombits(binary.LittleEndian.Uint64(b))
	if math.IsNaN(v) {
		return 0
	}
	const lim = 1e150
	if v > lim {
		return lim
	}
	if v < -lim {
		return -lim
	}
	return v
}

// FuzzDFDKernel feeds the kernel degenerate and adversarial inputs —
// empty and single-point sequences, extreme but NaN-free coordinates,
// arbitrary caps and radii — and asserts that nothing panics and that the
// exact, capped, decision and full-table forms stay mutually consistent.
func FuzzDFDKernel(f *testing.F) {
	f.Add([]byte{}, 0, 1.0)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 0, 0.0)
	f.Add(make([]byte, 96), 2, 2.5)
	f.Add(make([]byte, 160), 4, -1.0)
	f.Fuzz(func(t *testing.T, data []byte, split int, eps float64) {
		// Decode consecutive 16-byte chunks into points, splitting the
		// sequence at the fuzzed index.
		var pts []geo.Point
		for len(data) >= 16 {
			pts = append(pts, geo.Point{
				Lat: fuzzCoord(data[:8]),
				Lng: fuzzCoord(data[8:16]),
			})
			data = data[16:]
		}
		if split < 0 {
			split = 0
		}
		if split > len(pts) {
			split = len(pts)
		}
		a, b := pts[:split], pts[split:]
		if math.IsNaN(eps) || math.IsInf(eps, 0) {
			eps = 0
		}

		d := dist.DFD(a, b, geo.Euclidean)
		if math.IsNaN(d) {
			t.Fatalf("DFD returned NaN for finite coordinates")
		}

		// Decision and exact agreement, including at the boundary.
		for _, e := range []float64{eps, d} {
			if math.IsInf(e, 0) {
				continue
			}
			want := d <= e
			if got := dist.DFDDecision(a, b, geo.Euclidean, e); got != want {
				t.Fatalf("DFDDecision(eps=%g) = %v, DFD = %g wants %v (lens %d, %d)",
					e, got, d, want, len(a), len(b))
			}
		}

		// Capped agreement: +Inf cap is exact; a fuzzed cap either
		// completes exactly or abandons with a lower bound at or above it.
		if dc, ex := dist.DFDCapped(a, b, geo.Euclidean, math.Inf(1)); ex || dc != d {
			t.Fatalf("DFDCapped(+Inf) = %g (exceeded=%v), DFD = %g", dc, ex, d)
		}
		dc, ex := dist.DFDCapped(a, b, geo.Euclidean, eps)
		if ex {
			if dc < eps || dc > d {
				t.Fatalf("abandoned value %g outside [cap %g, DFD %g]", dc, eps, d)
			}
		} else if dc != d {
			t.Fatalf("DFDCapped(%g) completed with %g, DFD = %g", eps, dc, d)
		}

		// The full-table oracle agrees cell-for-cell at the corner.
		if len(a) > 0 && len(b) > 0 {
			dp := dist.DFDMatrix(a, b, geo.Euclidean)
			if got := dp[len(a)-1][len(b)-1]; got != d {
				t.Fatalf("DFDMatrix corner = %g, DFD = %g", got, d)
			}
		}
	})
}
