package dist

// White-box parity tests and benchmarks for the kernel fast paths:
// the prepared (hoisted-cos) haversine grid, the tiled uncapped sweep,
// and the projected decision DP. These live in package dist so the
// benchmark can pin individual variants (windowCapped vs windowTiled,
// pointGrid vs preparedGrid) against each other directly.

import (
	"math"
	"math/rand"
	"testing"

	"trajmotif/internal/geo"
)

// speedTrack builds a random-walk trajectory around a base point, the
// shape the datagen workloads produce (street-scale steps, city-scale
// extent).
func speedTrack(rng *rand.Rand, base geo.Point, n int, stepDeg float64) []geo.Point {
	pts := make([]geo.Point, n)
	p := base
	for i := range pts {
		p.Lat += (rng.Float64() - 0.5) * stepDeg
		p.Lng += (rng.Float64() - 0.5) * stepDeg
		pts[i] = p
	}
	return pts
}

// wrappedHaversine defeats geo.IsHaversine, forcing the generic
// pointGrid path, while computing the identical distance.
func wrappedHaversine(a, b geo.Point) float64 { return geo.Haversine(a, b) }

// TestPreparedKernelBitIdentical pins DFDCapped and DFDDecision on the
// prepared fast path against the generic path over the same haversine
// values: results must be bit-identical for exact, capped, and decision
// sweeps.
func TestPreparedKernelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		na, nb := 2+rng.Intn(60), 2+rng.Intn(60)
		a := speedTrack(rng, geo.Point{Lat: 39.9, Lng: 116.4}, na, 0.01)
		b := speedTrack(rng, geo.Point{Lat: 39.91, Lng: 116.41}, nb, 0.01)

		wantD, wantEx := DFDCapped(a, b, wrappedHaversine, math.Inf(1))
		gotD, gotEx := DFDCapped(a, b, geo.Haversine, math.Inf(1))
		if math.Float64bits(wantD) != math.Float64bits(gotD) || wantEx != gotEx {
			t.Fatalf("trial %d: exact DFD differs: prepared (%v, %v) vs generic (%v, %v)",
				trial, gotD, gotEx, wantD, wantEx)
		}
		for _, capFrac := range []float64{0.25, 0.5, 1, 2} {
			cap := wantD * capFrac
			wd, we := DFDCapped(a, b, wrappedHaversine, cap)
			gd, ge := DFDCapped(a, b, geo.Haversine, cap)
			if math.Float64bits(wd) != math.Float64bits(gd) || we != ge {
				t.Fatalf("trial %d cap %v: capped DFD differs: prepared (%v, %v) vs generic (%v, %v)",
					trial, cap, gd, ge, wd, we)
			}
		}
		for _, epsFrac := range []float64{0.5, 0.99, 1, 1.01} {
			eps := wantD * epsFrac
			if DFDDecision(a, b, wrappedHaversine, eps) != DFDDecision(a, b, geo.Haversine, eps) {
				t.Fatalf("trial %d eps %v: decision differs between prepared and generic", trial, eps)
			}
		}
	}
}

// TestTiledSweepBitIdentical pins the tiled uncapped sweep against the
// plain rolling sweep on windows wide enough to tile, including widths
// that are not multiples of the strip, both grid orientations, and a
// non-haversine metric.
func TestTiledSweepBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	widths := []int{tileThreshold, tileThreshold + 1, tileThreshold + tileW - 1, tileThreshold + tileW/3}
	for _, w := range widths {
		for _, rows := range []int{2, 3, 17} {
			a := speedTrack(rng, geo.Point{Lat: 40, Lng: 116}, rows, 0.02)
			b := speedTrack(rng, geo.Point{Lat: 40.01, Lng: 116.01}, w, 0.02)
			for _, df := range []geo.DistanceFunc{geo.Haversine, geo.Euclidean} {
				g := pointGrid{a, b, df}
				// A huge finite cap keeps windowCapped on the untiled
				// path and never abandons: an exact reference.
				want, ex := windowCapped(g, 0, rows-1, 0, w-1, math.MaxFloat64)
				if ex {
					t.Fatal("reference sweep abandoned")
				}
				got := windowTiled(g, 0, rows-1, 0, w-1)
				if math.Float64bits(want) != math.Float64bits(got) {
					t.Fatalf("w=%d rows=%d: tiled %v != plain %v", w, rows, got, want)
				}
				// And via the public entry point (auto-routed to tiled;
				// b is the longer side, so it becomes the row axis).
				pubD, pubEx := DFDCapped(a, b, df, math.Inf(1))
				if math.Float64bits(pubD) != math.Float64bits(want) || pubEx {
					t.Fatalf("w=%d rows=%d: DFDCapped +Inf = (%v, %v), want (%v, false)", w, rows, pubD, pubEx, want)
				}
			}
		}
	}
}

// TestProjectedDecisionParity sweeps eps through and around the
// interesting range on random city-scale pairs and asserts the
// projected decision equals the haversine decision everywhere, with
// certified cells doing the bulk of the work.
func TestProjectedDecisionParity(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var totalFallbacks, totalDecisions int64
	for trial := 0; trial < 60; trial++ {
		a := speedTrack(rng, geo.Point{Lat: 39.9, Lng: 116.4}, 2+rng.Intn(50), 0.01)
		b := speedTrack(rng, geo.Point{Lat: 39.91, Lng: 116.41}, 2+rng.Intn(50), 0.01)
		minLat, maxLat, minLng, maxLng := bounds2(a, b)
		f := geo.FrameFor(minLat, maxLat, minLng, maxLng)
		if !f.OK() {
			t.Fatal("city-scale frame rejected")
		}
		pa, pb := f.ProjectAll(a), f.ProjectAll(b)
		d, _ := DFDCapped(a, b, geo.Haversine, math.Inf(1))
		for _, eps := range []float64{0, d * 0.3, d * 0.999999, d, d * 1.000001, d * 3} {
			want := DFDDecision(a, b, geo.Haversine, eps)
			got := DFDDecisionProjected(a, b, pa, pb, f, eps, &totalFallbacks)
			if want != got {
				t.Fatalf("trial %d eps %v: projected %v != haversine %v", trial, eps, got, want)
			}
			totalDecisions++
		}
	}
	t.Logf("fallbacks %d across %d decisions", totalFallbacks, totalDecisions)
}

// TestProjectedDecisionFallbacks forces the uncertain band: a frame
// over a tens-of-degrees region has a percent-scale error band, so an
// eps in the middle of the pair distances must take per-cell haversine
// fallbacks — and still agree with the haversine decision exactly.
func TestProjectedDecisionFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	var fallbacks int64
	agree := 0
	for trial := 0; trial < 30; trial++ {
		a := speedTrack(rng, geo.Point{Lat: 20, Lng: 10}, 30, 1.2)
		b := speedTrack(rng, geo.Point{Lat: 21, Lng: 11}, 30, 1.2)
		minLat, maxLat, minLng, maxLng := bounds2(a, b)
		f := geo.FrameFor(minLat, maxLat, minLng, maxLng)
		if !f.OK() {
			continue
		}
		pa, pb := f.ProjectAll(a), f.ProjectAll(b)
		// eps at each cell distance lands many cells inside the band.
		for i := 0; i < len(a); i += 7 {
			eps := geo.Haversine(a[i], b[i])
			want := DFDDecision(a, b, geo.Haversine, eps)
			got := DFDDecisionProjected(a, b, pa, pb, f, eps, &fallbacks)
			if want != got {
				t.Fatalf("trial %d: projected %v != haversine %v", trial, got, want)
			}
			agree++
		}
	}
	if fallbacks == 0 {
		t.Fatal("loose-frame sweep took no fallbacks; band thresholds suspiciously certain")
	}
	t.Logf("%d fallbacks across %d agreeing decisions", fallbacks, agree)
}

// TestProjectedDecisionInvalidFrame pins the whole-pair fallback: an
// invalid frame must count one fallback and still answer exactly.
func TestProjectedDecisionInvalidFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	a := speedTrack(rng, geo.Point{Lat: 88, Lng: 0}, 10, 0.01) // polar: no frame
	b := speedTrack(rng, geo.Point{Lat: 88, Lng: 0.1}, 10, 0.01)
	var f geo.Frame
	var n int64
	eps := 5000.0
	want := DFDDecision(a, b, geo.Haversine, eps)
	if got := DFDDecisionProjected(a, b, nil, nil, f, eps, &n); got != want {
		t.Fatalf("invalid frame: projected %v != haversine %v", got, want)
	}
	if n != 1 {
		t.Fatalf("invalid frame counted %d fallbacks, want 1", n)
	}
	// nil counter must not panic.
	if got := DFDDecisionProjected(a, b, nil, nil, f, eps, nil); got != want {
		t.Fatal("nil fallback counter changed the answer")
	}
}

func bounds2(a, b []geo.Point) (minLat, maxLat, minLng, maxLng float64) {
	minLat, maxLat = math.Inf(1), math.Inf(-1)
	minLng, maxLng = math.Inf(1), math.Inf(-1)
	for _, pts := range [][]geo.Point{a, b} {
		for _, p := range pts {
			minLat = math.Min(minLat, p.Lat)
			maxLat = math.Max(maxLat, p.Lat)
			minLng = math.Min(minLng, p.Lng)
			maxLng = math.Max(maxLng, p.Lng)
		}
	}
	return minLat, maxLat, minLng, maxLng
}

// FuzzProjectedDecision cross-checks the projected decision against the
// haversine decision on fuzz-chosen geometry and eps: any divergence is
// a soundness bug in the frame's certified band.
func FuzzProjectedDecision(f *testing.F) {
	f.Add(int64(1), 39.9, 116.4, 0.01, 500.0)
	f.Add(int64(2), 84.9, 179.0, 0.4, 20000.0)
	f.Add(int64(3), -30.0, -179.99, 2.0, 150000.0)
	f.Add(int64(4), 0.0, 0.0, 0.0001, 3.0)
	f.Fuzz(func(t *testing.T, seed int64, lat, lng, step, eps float64) {
		if math.IsNaN(lat) || math.IsNaN(lng) || math.IsNaN(step) || math.IsNaN(eps) {
			t.Skip()
		}
		lat = math.Mod(lat, 90)
		lng = math.Mod(lng, 180)
		step = math.Mod(math.Abs(step), 3)
		eps = math.Mod(math.Abs(eps), 2e7)
		rng := rand.New(rand.NewSource(seed))
		a := speedTrack(rng, geo.Point{Lat: lat, Lng: lng}, 2+rng.Intn(20), step)
		b := speedTrack(rng, geo.Point{Lat: lat, Lng: lng}, 2+rng.Intn(20), step)
		minLat, maxLat, minLng, maxLng := bounds2(a, b)
		fr := geo.FrameFor(minLat, maxLat, minLng, maxLng)
		var pa, pb []geo.Projected
		if fr.OK() {
			pa, pb = fr.ProjectAll(a), fr.ProjectAll(b)
		}
		want := DFDDecision(a, b, geo.Haversine, eps)
		var n int64
		if got := DFDDecisionProjected(a, b, pa, pb, fr, eps, &n); got != want {
			t.Fatalf("projected %v != haversine %v (frame ok=%v, fallbacks=%d, eps=%v)",
				got, want, fr.OK(), n, eps)
		}
	})
}

// BenchmarkKernelVariants measures per-DP-cell cost of each ground-
// distance strategy on a fixed workload; CHANGES.md quotes the result.
// "generic" is the pre-optimization path (haversine behind an opaque
// DistanceFunc), "prepared" hoists the cosines, "tiled" adds the
// strip sweep on a wide uncapped window, and the decision pair compares
// the haversine decision DP against the projected tri-state DP.
func BenchmarkKernelVariants(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const n = 512
	ta := speedTrack(rng, geo.Point{Lat: 39.9, Lng: 116.4}, n, 0.01)
	tb := speedTrack(rng, geo.Point{Lat: 39.91, Lng: 116.41}, n, 0.01)
	cells := float64(n) * float64(n)

	b.Run("value-generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			windowCapped(pointGrid{ta, tb, wrappedHaversine}, 0, n-1, 0, n-1, math.MaxFloat64)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/cells, "ns/cell")
	})
	b.Run("value-prepared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			windowCapped(newPreparedGrid(ta, tb), 0, n-1, 0, n-1, math.MaxFloat64)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/cells, "ns/cell")
	})

	const wide = 4096
	wa := speedTrack(rng, geo.Point{Lat: 40, Lng: 116}, 64, 0.01)
	wb := speedTrack(rng, geo.Point{Lat: 40.01, Lng: 116.01}, wide, 0.01)
	wideCells := float64(64) * float64(wide)
	b.Run("wide-prepared-plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			windowCapped(newPreparedGrid(wa, wb), 0, 63, 0, wide-1, math.MaxFloat64)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/wideCells, "ns/cell")
	})
	b.Run("wide-prepared-tiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			windowTiled(newPreparedGrid(wa, wb), 0, 63, 0, wide-1)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/wideCells, "ns/cell")
	})

	d, _ := DFDCapped(ta, tb, geo.Haversine, math.Inf(1))
	eps := d * 0.9 // a decision that sweeps most of the table
	minLat, maxLat, minLng, maxLng := bounds2(ta, tb)
	fr := geo.FrameFor(minLat, maxLat, minLng, maxLng)
	pa, pb := fr.ProjectAll(ta), fr.ProjectAll(tb)
	b.Run("decision-haversine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			DFDDecision(ta, tb, wrappedHaversine, eps)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/cells, "ns/cell")
	})
	b.Run("decision-projected", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			DFDDecisionProjected(ta, tb, pa, pb, fr, eps, nil)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/cells, "ns/cell")
	})
}
