// Package dist implements the trajectory similarity measures compared in
// §2 of Tang, Yiu, Mouratidis and Wang, "Efficient Motif Discovery in
// Spatial Trajectories Using Discrete Fréchet Distance" (EDBT 2017): the discrete Fréchet distance (DFD) that the
// paper builds on, and the four classical measures its Table 1 rejects —
// lock-step Euclidean distance (ED), dynamic time warping (DTW), the
// longest common subsequence model (LCSS), and edit distance on real
// sequences (EDR).
//
// Every measure is parameterized by a geo.DistanceFunc ground distance,
// so the same code serves GPS data (geo.Haversine, the paper's dG) and
// planar or synthetic data (geo.Euclidean). Results are in the ground
// distance's unit — meters under Haversine.
//
// # Why DFD
//
// A trajectory measure for motif discovery must tolerate two artifacts of
// real GPS recordings (paper §2, Table 1):
//
//   - non-uniform sampling rates — the same path recorded at 1 Hz and at
//     0.2 Hz should still be recognized as the same path;
//   - local time shifting — a momentary stall that duplicates a few
//     samples should not misalign everything recorded after it.
//
// ED fails both: it compares positions index by index, so it is undefined
// across lengths and a single stall knocks every later sample off its
// partner. DTW and EDR absorb time shifts but sum (respectively count)
// per-sample costs, so an oversampled segment contributes many terms and
// outweighs geometry. LCSS rewards dense sampling for the mirror reason:
// its similarity is a raw match count. DFD is the bottleneck cost of the
// best order-preserving coupling — the classic "dog walker" metaphor: the
// shortest leash such that dog and owner can each walk their trajectory
// without backing up. Extra samples merely extend a coupling with cheap
// repeats, and a stall couples to a single point at no cost, so DFD
// carries both robustness properties while staying a metric-like bottleneck
// quantity in ground-distance units. That choice is what the lower bounds
// in internal/bounds and the grouping search in internal/group exploit.
//
// # The canonical DFD kernel
//
// This package is the single source of truth for the discrete Fréchet
// recurrence: the one row-relaxation loop in kernel.go (fused with the
// ground-distance evaluation, two rolling rows, O(min(n,m)) space — the
// §5.5 "Idea ii" layout) backs every DFD computation in the repository.
// Its entry points are
//
//   - DFD — the exact distance;
//   - DFDCapped — early-abandoning exact verification: stops as soon as a
//     completed DP row proves the distance is at least the cap, returning
//     a lower bound instead of burning the full O(n·m) table;
//   - DFDDecision — the "DFD <= eps?" decision DP, which kills cells
//     above eps and abandons when a row dies;
//   - DFDFromGrid / DFDFromGridCapped — the same kernels over a
//     precomputed ground-distance grid or a sub-window of one, without
//     copying the window out of the shared matrix;
//   - DFDBoundaryRow / DFDRelaxRow — the row primitives from which
//     internal/core and internal/group compose their shared
//     candidate-subset sweeps and interval (dminG/dmaxG) DPs.
//
// No other package carries a Fréchet recurrence; internal/join,
// internal/knn, internal/core, internal/group and internal/bounds all
// route through these entry points, so an optimization here speeds every
// caller. The cross-package equivalence suite (kernel_test.go) and the
// FuzzDFDKernel fuzz target pin all forms to each other.
//
// DTW, EDR and LCSS share the same O(n·m) skeleton with their own cost
// models and rolling rows; DFDMatrix materializes the full table as an
// independently-coded oracle for tests and coupling inspection.
package dist
