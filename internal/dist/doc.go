// Package dist implements the trajectory similarity measures compared in
// §2 of Tang, Yiu, Mouratidis and Wang, "Efficient Motif Discovery in
// Spatial Trajectories Using Discrete Fréchet Distance" (EDBT 2017): the discrete Fréchet distance (DFD) that the
// paper builds on, and the four classical measures its Table 1 rejects —
// lock-step Euclidean distance (ED), dynamic time warping (DTW), the
// longest common subsequence model (LCSS), and edit distance on real
// sequences (EDR).
//
// Every measure is parameterized by a geo.DistanceFunc ground distance,
// so the same code serves GPS data (geo.Haversine, the paper's dG) and
// planar or synthetic data (geo.Euclidean). Results are in the ground
// distance's unit — meters under Haversine.
//
// # Why DFD
//
// A trajectory measure for motif discovery must tolerate two artifacts of
// real GPS recordings (paper §2, Table 1):
//
//   - non-uniform sampling rates — the same path recorded at 1 Hz and at
//     0.2 Hz should still be recognized as the same path;
//   - local time shifting — a momentary stall that duplicates a few
//     samples should not misalign everything recorded after it.
//
// ED fails both: it compares positions index by index, so it is undefined
// across lengths and a single stall knocks every later sample off its
// partner. DTW and EDR absorb time shifts but sum (respectively count)
// per-sample costs, so an oversampled segment contributes many terms and
// outweighs geometry. LCSS rewards dense sampling for the mirror reason:
// its similarity is a raw match count. DFD is the bottleneck cost of the
// best order-preserving coupling — the classic "dog walker" metaphor: the
// shortest leash such that dog and owner can each walk their trajectory
// without backing up. Extra samples merely extend a coupling with cheap
// repeats, and a stall couples to a single point at no cost, so DFD
// carries both robustness properties while staying a metric-like bottleneck
// quantity in ground-distance units. That choice is what the lower bounds
// in internal/bounds and the grouping search in internal/group exploit.
//
// # Implementations
//
// All five measures share the same O(n·m) dynamic-programming skeleton.
// DFD, DTW, EDR and LCSS keep only two rolling rows, for O(min(n,m))
// working space (the §5.5 "Idea ii" layout); DFDMatrix materializes the
// full table for callers that need to inspect intermediate couplings, and
// DFDFromGrid runs the recurrence over an externally computed ground
// distance grid (how the internal/bounds and internal/group test suites
// verify their window bounds against exact sub-grid DFDs).
package dist
