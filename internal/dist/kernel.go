package dist

// This file is the canonical discrete Fréchet kernel: every DFD dynamic
// program in the repository — exact, early-abandoning (capped), decision,
// and grid-windowed — reduces to the two row primitives below, written
// once and instantiated generically. internal/join, internal/knn,
// internal/core and internal/group all route through these entry points;
// no other package carries its own Fréchet recurrence, so an optimization
// here speeds every caller (ROADMAP: "Unify and optimize the DFD kernel").
//
// The recurrence (Eiter & Mannila 1994) over a ground-distance source g is
//
//	dF[i][j] = max(g(i, j), min(dF[i-1][j], dF[i][j-1], dF[i-1][j-1]))
//
// swept with two rolling rows in O(n·m) time and O(m) working space. Two
// facts about the table back the capped variants:
//
//   - row crossing: every coupling advances the first cursor one row at a
//     time, so any path to the final cell passes through every row; table
//     values are non-decreasing along a path, hence the minimum of any
//     completed row lower-bounds the final value. Once a row's minimum
//     reaches the cap, no coupling can finish below it (early abandoning).
//   - the same holds per column, which the decision DP exploits by killing
//     cells above eps and abandoning when a whole row is dead.

import (
	"math"

	"trajmotif/internal/geo"
)

// Grid is read-only access to a ground-distance grid: At(i, j) for
// 0 <= i < n, 0 <= j < m with (n, m) = Dims(). It is structurally
// identical to dmatrix.Grid, redeclared here so the kernel package stays
// dependency-free; dmatrix.Matrix and dmatrix.Fly satisfy it as-is.
type Grid interface {
	At(i, j int) float64
	Dims() (n, m int)
}

// pointGrid adapts two point sequences and a ground distance to the grid
// shape. Instantiating the generic kernel with this concrete type fuses
// the ground-distance evaluation into the DP loop — no intermediate
// distance row is materialized beyond the rolling pair.
type pointGrid struct {
	a, b []geo.Point
	df   geo.DistanceFunc
}

func (g pointGrid) At(i, j int) float64 { return g.df(g.a[i], g.b[j]) }
func (g pointGrid) Dims() (int, int)    { return len(g.a), len(g.b) }

// preparedGrid is pointGrid specialized to geo.Haversine with the
// cos(lat) factors hoisted out of the inner loop: the column cosines
// are computed once up front and the row cosine is refreshed when the
// sweep first touches a row (the kernels visit rows monotonically, so
// this is one cos per row instead of two per cell). Bit-identical to
// pointGrid over geo.Haversine because geo.HaversinePrepared runs the
// same core.
type preparedGrid struct {
	a, b   []geo.Point
	cosB   []float64
	rowI   int
	rowCos float64
}

func newPreparedGrid(a, b []geo.Point) *preparedGrid {
	return &preparedGrid{a: a, b: b, cosB: geo.CosLats(b), rowI: -1}
}

func (g *preparedGrid) At(i, j int) float64 {
	if i != g.rowI {
		g.rowI = i
		g.rowCos = geo.CosLat(g.a[i])
	}
	return geo.HaversinePrepared(g.a[i], g.b[j], g.rowCos, g.cosB[j])
}
func (g *preparedGrid) Dims() (int, int) { return len(g.a), len(g.b) }

// projDecGrid adapts a projected point pair to the decision DP's
// "At(i, j) <= eps" comparisons as a tri-state: a squared planar
// distance inside the frame's certified band returns a sentinel that
// compares the same way the true haversine would (-1 for certainly
// within, +Inf for certainly beyond), and only the narrow uncertain
// band pays a real haversine call, counted in *fallbacks. Requires
// eps >= 0 so the -1 sentinel always satisfies "<= eps".
type projDecGrid struct {
	a, b             []geo.Point
	pa, pb           []geo.Projected
	within2, beyond2 float64
	fallbacks        *int64
}

func (g *projDecGrid) At(i, j int) float64 {
	dx := g.pa[i].X - g.pb[j].X
	dy := g.pa[i].Y - g.pb[j].Y
	d2 := dx*dx + dy*dy
	if d2 <= g.within2 {
		return -1
	}
	if d2 > g.beyond2 {
		return math.Inf(1)
	}
	*g.fallbacks++
	return geo.Haversine(g.a[i], g.b[j])
}
func (g *projDecGrid) Dims() (int, int) { return len(g.a), len(g.b) }

// rowsGrid adapts an explicit [][]float64 table (the DFDFromGrid input
// shape) to the grid interface.
type rowsGrid [][]float64

func (g rowsGrid) At(i, j int) float64 { return g[i][j] }
func (g rowsGrid) Dims() (int, int) {
	if len(g) == 0 {
		return 0, 0
	}
	return len(g), len(g[0])
}

// boundaryRow fills dp[0..j1-j0] with the DP's first row over grid row i0,
// columns j0..j1: the running maximum of ground distances, which is the
// DFD of the single-point first leg against the growing second leg.
func boundaryRow[G Grid](g G, i0, j0, j1 int, dp []float64) {
	run := math.Inf(-1)
	for je := j0; je <= j1; je++ {
		if d := g.At(i0, je); d > run {
			run = d
		}
		dp[je-j0] = run
	}
}

// relaxRow advances the recurrence by one row over grid row ie, columns
// j0..j1. prev holds the previous row and cur[0] must already hold this
// row's boundary value dF[ie][j0] (the running column maximum); the
// remaining cells follow the recurrence. Returns the minimum over
// cur[0..j1-j0], which lower-bounds every cell of all later rows.
func relaxRow[G Grid](g G, ie, j0, j1 int, prev, cur []float64) float64 {
	left := cur[0]
	rowMin := left
	for je := j0 + 1; je <= j1; je++ {
		k := je - j0
		reach := prev[k]
		if v := prev[k-1]; v < reach {
			reach = v
		}
		if left < reach {
			reach = left
		}
		v := g.At(ie, je)
		if reach > v {
			v = reach
		}
		cur[k] = v
		left = v
		if v < rowMin {
			rowMin = v
		}
	}
	return rowMin
}

// windowCapped is the shared exact/early-abandoning kernel over the
// inclusive grid window rows i0..i1, columns j0..j1. It returns the exact
// DFD of the window with exceeded == false, unless a completed row's
// minimum reaches cap first, in which case it returns that minimum — a
// valid lower bound on the window's DFD, itself >= cap — with
// exceeded == true. A +Inf cap never abandons, so the result is exact.
func windowCapped[G Grid](g G, i0, i1, j0, j1 int, cap float64) (d float64, exceeded bool) {
	w := j1 - j0 + 1
	capped := !math.IsInf(cap, 1)
	if !capped && w >= tileThreshold && i1 > i0 {
		// Only the uncapped sweep tiles: tiling the capped sweep would
		// move its abandon points and change effort counters.
		return windowTiled(g, i0, i1, j0, j1), false
	}
	prev := make([]float64, w)
	cur := make([]float64, w)

	boundaryRow(g, i0, j0, j1, prev)
	// The boundary row is a running maximum, so its minimum is its first
	// cell.
	if capped && prev[0] >= cap {
		return prev[0], true
	}
	colMax := prev[0]
	for ie := i0 + 1; ie <= i1; ie++ {
		if v := g.At(ie, j0); v > colMax {
			colMax = v
		}
		cur[0] = colMax
		rowMin := relaxRow(g, ie, j0, j1, prev, cur)
		if capped && rowMin >= cap {
			return rowMin, true
		}
		prev, cur = cur, prev
	}
	return prev[w-1], false
}

const (
	// tileW is the column-strip width of the uncapped tiled sweep: wide
	// enough to amortize the per-strip row bookkeeping, narrow enough
	// that a strip's rolling rows, points, and cached cosines stay in
	// L1 while the sweep walks thousands of rows over them.
	tileW = 256
	// tileThreshold gates tiling to windows wide enough that the
	// rolling rows no longer fit cache; below it the plain sweep's
	// simpler inner loop wins.
	tileThreshold = 4 * tileW
)

// windowTiled computes the exact (uncapped) window DFD in column strips
// of tileW. The recurrence per cell is the one windowCapped applies —
// max/min selection over the same three neighbours and the same grid
// value, with no other floating-point arithmetic — so only the
// traversal order changes and the result is bit-identical. edge carries
// the column of values just left of the current strip (dF[·][js-1]),
// which is all a strip needs from its predecessor.
func windowTiled[G Grid](g G, i0, i1, j0, j1 int) float64 {
	rows := i1 - i0 + 1
	edge := make([]float64, rows)
	prev := make([]float64, tileW)
	cur := make([]float64, tileW)

	var last float64
	colMax := math.Inf(-1) // running max of column j0; first strip only
	for js := j0; js <= j1; js += tileW {
		je := js + tileW - 1
		if je > j1 {
			je = j1
		}
		w := je - js + 1
		first := js == j0

		// Row i0 of this strip: the boundary running maximum, continued
		// from the previous strip's edge.
		run := math.Inf(-1)
		if !first {
			run = edge[0]
		}
		for jj := js; jj <= je; jj++ {
			if d := g.At(i0, jj); d > run {
				run = d
			}
			prev[jj-js] = run
		}
		if first {
			colMax = prev[0]
		}
		diag := edge[0] // dF[i0][js-1], read before overwrite
		edge[0] = prev[w-1]

		for r := 1; r < rows; r++ {
			ie := i0 + r
			var left float64
			if first {
				if v := g.At(ie, j0); v > colMax {
					colMax = v
				}
				cur[0] = colMax
				left = colMax
			} else {
				reach := prev[0] // up
				if diag < reach {
					reach = diag
				}
				if e := edge[r]; e < reach { // left, from the previous strip
					reach = e
				}
				v := g.At(ie, js)
				if reach > v {
					v = reach
				}
				cur[0] = v
				left = v
			}
			for jj := js + 1; jj <= je; jj++ {
				k := jj - js
				reach := prev[k]
				if v := prev[k-1]; v < reach {
					reach = v
				}
				if left < reach {
					reach = left
				}
				v := g.At(ie, jj)
				if reach > v {
					v = reach
				}
				cur[k] = v
				left = v
			}
			diag = edge[r]
			edge[r] = cur[w-1]
			prev, cur = cur, prev
		}
		last = prev[w-1]
	}
	return last
}

// decision answers dF[n-1][m-1] <= eps over a boolean live-cell DP: a cell
// is live when some coupling reaches it with every pair within eps. The DP
// abandons as soon as a full row dies, usually long before the O(n·m)
// table is complete.
func decision[G Grid](g G, n, m int, eps float64) bool {
	prev := make([]bool, m)
	cur := make([]bool, m)

	if !(g.At(0, 0) <= eps) {
		return false // endpoint rule: (0, 0) is on every coupling
	}
	prev[0] = true
	for j := 1; j < m; j++ {
		prev[j] = prev[j-1] && g.At(0, j) <= eps
	}
	for i := 1; i < n; i++ {
		cur[0] = prev[0] && g.At(i, 0) <= eps
		alive := cur[0]
		for j := 1; j < m; j++ {
			if (prev[j] || prev[j-1] || cur[j-1]) && g.At(i, j) <= eps {
				cur[j] = true
				alive = true
			} else {
				cur[j] = false
			}
		}
		if !alive {
			return false // no coupling can continue past this row
		}
		prev, cur = cur, prev
	}
	return prev[m-1]
}

// DFDCapped computes the discrete Fréchet distance with early abandoning:
// it returns the exact DFD with exceeded == false, unless it can prove
// DFD(a, b) >= cap partway through, in which case it stops and returns a
// partial value with exceeded == true. The partial value is a valid lower
// bound on the true distance and is itself >= cap. A cap of +Inf never
// abandons, so DFDCapped(a, b, df, +Inf) equals DFD(a, b, df) exactly.
// When the DP completes, the returned distance is exact and may exceed a
// finite cap only if the final cell alone does.
//
// Searchers use this to verify candidates against a best-so-far bound:
// hopeless candidates die after a few rows instead of O(n·m) cells.
// Empty-sequence conventions follow DFD, with exceeded == false.
func DFDCapped(a, b []geo.Point, df geo.DistanceFunc, cap float64) (d float64, exceeded bool) {
	if len(a) == 0 || len(b) == 0 {
		if len(a) == len(b) {
			return 0, false
		}
		return math.Inf(1), false
	}
	if len(b) > len(a) {
		a, b = b, a // roll rows over the shorter sequence: O(min(n,m)) space
	}
	if geo.IsHaversine(df) {
		return windowCapped(newPreparedGrid(a, b), 0, len(a)-1, 0, len(b)-1, cap)
	}
	return windowCapped(pointGrid{a, b, df}, 0, len(a)-1, 0, len(b)-1, cap)
}

// DFDDecision decides DFD(a, b) <= eps without computing the distance,
// abandoning as soon as no coupling within eps can continue. For finite
// eps it agrees exactly with DFD(a, b, df) <= eps, including at boundary
// values: two empty sequences (distance 0) are within any eps >= 0, and an
// empty sequence is within no finite radius of a non-empty one.
func DFDDecision(a, b []geo.Point, df geo.DistanceFunc, eps float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return len(a) == len(b) && eps >= 0
	}
	if len(b) > len(a) {
		a, b = b, a
	}
	if geo.IsHaversine(df) {
		return decision(newPreparedGrid(a, b), len(a), len(b), eps)
	}
	return decision(pointGrid{a, b, df}, len(a), len(b), eps)
}

// DFDDecisionProjected decides DFD(a, b) <= eps for the haversine
// ground distance using planar squared distances in frame f for the
// per-cell comparisons, falling back to a real haversine evaluation for
// the cells the frame's certified band cannot decide (each fallback
// increments *fallbacks; nil is allowed). Every per-cell boolean equals
// the haversine comparison, so the result is byte-identical to
// DFDDecision(a, b, geo.Haversine, eps) by construction. pa and pb must
// be a's and b's points projected in f (or any frame with the same
// RefKey); an invalid frame or a negative eps routes the whole pair to
// DFDDecision, counted as one fallback.
func DFDDecisionProjected(a, b []geo.Point, pa, pb []geo.Projected, f geo.Frame, eps float64, fallbacks *int64) bool {
	if len(a) == 0 || len(b) == 0 {
		return len(a) == len(b) && eps >= 0
	}
	var scratch int64
	if fallbacks == nil {
		fallbacks = &scratch
	}
	if !f.OK() || !(eps >= 0) {
		*fallbacks++
		return DFDDecision(a, b, geo.Haversine, eps)
	}
	within2, beyond2 := f.Thresholds(eps)
	if len(b) > len(a) {
		a, b = b, a
		pa, pb = pb, pa
	}
	g := &projDecGrid{a: a, b: b, pa: pa, pb: pb, within2: within2, beyond2: beyond2, fallbacks: fallbacks}
	return decision(g, len(a), len(b), eps)
}

// DFDFromGridCapped runs the capped kernel over the inclusive sub-window
// rows i0..i1, columns j0..j1 of a precomputed ground-distance grid, with
// DFDCapped's cap semantics. This is how callers verify a candidate
// sub-grid against a searcher's best-so-far bound without copying the
// window out of the shared matrix. Degenerate windows follow the DFD
// conventions: both ranges empty is distance 0, exactly one empty is +Inf.
func DFDFromGridCapped(g Grid, i0, i1, j0, j1 int, cap float64) (d float64, exceeded bool) {
	if i1 < i0 || j1 < j0 {
		if i1 < i0 && j1 < j0 {
			return 0, false
		}
		return math.Inf(1), false
	}
	return windowCapped[Grid](g, i0, i1, j0, j1, cap)
}

// DFDBoundaryRow exposes the kernel's first-row primitive: it fills
// dp[0..j1-j0] with the running maximum of grid row i0 over columns
// j0..j1, the DP boundary dF[i0][j0..j1]. internal/core and
// internal/group build their shared candidate-subset sweeps from this and
// DFDRelaxRow instead of carrying their own recurrences.
func DFDBoundaryRow(g Grid, i0, j0, j1 int, dp []float64) {
	boundaryRow[Grid](g, i0, j0, j1, dp)
}

// DFDRelaxRow exposes the kernel's row-advance primitive: given the
// previous DP row in prev and this row's boundary value dF[ie][j0] already
// stored in cur[0], it fills cur[1..j1-j0] by the recurrence and returns
// the row minimum — a lower bound on every cell of all later rows, which
// callers compare against a best-so-far bound to abandon early.
func DFDRelaxRow(g Grid, ie, j0, j1 int, prev, cur []float64) (rowMin float64) {
	return relaxRow[Grid](g, ie, j0, j1, prev, cur)
}
