package dist_test

import (
	"math"
	"math/rand"
	"testing"

	"trajmotif/internal/dist"
	"trajmotif/internal/geo"
)

// randWalk produces a jittery planar walk starting near (x0, y0), the same
// shape the join and knn tests use for randomized cross-checks.
func randWalk(r *rand.Rand, n int, x0, y0 float64) []geo.Point {
	pts := make([]geo.Point, n)
	x, y := x0, y0
	for i := range pts {
		x += r.Float64()*2 - 1
		y += r.Float64()*2 - 1
		pts[i] = geo.Point{Lng: x, Lat: y}
	}
	return pts
}

// Golden pair: a is four collinear points on the x-axis, b runs parallel
// at height 1 except for a spike to height 2 at x=2. Every coupling must
// match the spike to some a point, all of which are at least 2 away, and
// the diagonal coupling achieves exactly max(1,1,2,1) = 2.
var (
	goldenA = []geo.Point{{Lng: 0}, {Lng: 1}, {Lng: 2}, {Lng: 3}}
	goldenB = []geo.Point{{Lng: 0, Lat: 1}, {Lng: 1, Lat: 1}, {Lng: 2, Lat: 2}, {Lng: 3, Lat: 1}}
)

func TestDFDGolden(t *testing.T) {
	if d := dist.DFD(goldenA, goldenB, geo.Euclidean); math.Abs(d-2) > 1e-12 {
		t.Errorf("DFD = %g, want 2", d)
	}
	// Identical sequences are at distance 0.
	if d := dist.DFD(goldenA, goldenA, geo.Euclidean); d != 0 {
		t.Errorf("DFD(a, a) = %g, want 0", d)
	}
	// Single points reduce to the ground distance.
	if d := dist.DFD(goldenA[:1], goldenB[:1], geo.Euclidean); math.Abs(d-1) > 1e-12 {
		t.Errorf("DFD of single points = %g, want 1", d)
	}
}

func TestDTWGolden(t *testing.T) {
	// Diagonal coupling sums 1+1+2+1 = 5; every coupling has at least four
	// pairs each >= 1 with the spike pair >= 2, so 5 is optimal.
	if d := dist.DTW(goldenA, goldenB, geo.Euclidean); math.Abs(d-5) > 1e-12 {
		t.Errorf("DTW = %g, want 5", d)
	}
	if d := dist.DTW(goldenA, goldenA, geo.Euclidean); d != 0 {
		t.Errorf("DTW(a, a) = %g, want 0", d)
	}
}

func TestEDGolden(t *testing.T) {
	// Lock-step distances are 1, 1, 2, 1; the mean is 1.25.
	d, err := dist.ED(goldenA, goldenB, geo.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1.25) > 1e-12 {
		t.Errorf("ED = %g, want 1.25", d)
	}
	if _, err := dist.ED(goldenA, goldenB[:3], geo.Euclidean); err == nil {
		t.Error("ED must error on a length mismatch")
	}
}

func TestEDRGolden(t *testing.T) {
	a := []geo.Point{{Lng: 0}, {Lng: 1}, {Lng: 2}}
	b := []geo.Point{{Lng: 0}, {Lng: 5}}
	// a[0] matches b[0]; (5,0) matches nothing, so one substitution plus
	// one deletion turns a into b.
	if got := dist.EDR(a, b, geo.Euclidean, 0.5); got != 2 {
		t.Errorf("EDR = %d, want 2", got)
	}
	if got := dist.EDR(a, a, geo.Euclidean, 0); got != 0 {
		t.Errorf("EDR(a, a) = %d, want 0", got)
	}
}

func TestLCSSGolden(t *testing.T) {
	a := []geo.Point{{Lng: 0}, {Lng: 1}, {Lng: 2}}
	b := []geo.Point{{Lng: 0}, {Lng: 5}}
	if got := dist.LCSS(a, b, geo.Euclidean, 0.5); got != 1 {
		t.Errorf("LCSS = %d, want 1", got)
	}
	if got := dist.LCSSDistance(a, b, geo.Euclidean, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("LCSSDistance = %g, want 0.5", got)
	}
	if got := dist.LCSS(a, a, geo.Euclidean, 0); got != len(a) {
		t.Errorf("LCSS(a, a) = %d, want %d", got, len(a))
	}
	if got := dist.LCSSDistance(a, a, geo.Euclidean, 0); got != 0 {
		t.Errorf("LCSSDistance(a, a) = %g, want 0", got)
	}
}

func TestEmptySequenceConventions(t *testing.T) {
	var empty []geo.Point
	if d := dist.DFD(empty, empty, geo.Euclidean); d != 0 {
		t.Errorf("DFD(empty, empty) = %g, want 0", d)
	}
	if d := dist.DFD(empty, goldenA, geo.Euclidean); !math.IsInf(d, 1) {
		t.Errorf("DFD(empty, a) = %g, want +Inf", d)
	}
	if d := dist.DTW(goldenA, empty, geo.Euclidean); !math.IsInf(d, 1) {
		t.Errorf("DTW(a, empty) = %g, want +Inf", d)
	}
	if d, err := dist.ED(empty, empty, geo.Euclidean); err != nil || d != 0 {
		t.Errorf("ED(empty, empty) = %g, %v, want 0, nil", d, err)
	}
	if got := dist.EDR(empty, goldenA, geo.Euclidean, 1); got != len(goldenA) {
		t.Errorf("EDR(empty, a) = %d, want %d", got, len(goldenA))
	}
	if got := dist.LCSS(empty, goldenA, geo.Euclidean, 1); got != 0 {
		t.Errorf("LCSS(empty, a) = %d, want 0", got)
	}
	if got := dist.LCSSDistance(empty, empty, geo.Euclidean, 1); got != 0 {
		t.Errorf("LCSSDistance(empty, empty) = %g, want 0", got)
	}
	if got := dist.LCSSDistance(empty, goldenA, geo.Euclidean, 1); got != 1 {
		t.Errorf("LCSSDistance(empty, a) = %g, want 1", got)
	}
	if m := dist.DFDMatrix(empty, goldenA, geo.Euclidean); m != nil {
		t.Errorf("DFDMatrix with an empty input = %v, want nil", m)
	}
}

func TestSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		a := randWalk(r, 2+r.Intn(12), 0, 0)
		b := randWalk(r, 2+r.Intn(12), r.Float64()*3, r.Float64()*3)
		eps := 0.5 + r.Float64()*2
		if x, y := dist.DFD(a, b, geo.Euclidean), dist.DFD(b, a, geo.Euclidean); x != y {
			t.Fatalf("DFD asymmetric: %g vs %g", x, y)
		}
		if x, y := dist.DTW(a, b, geo.Euclidean), dist.DTW(b, a, geo.Euclidean); x != y {
			t.Fatalf("DTW asymmetric: %g vs %g", x, y)
		}
		if x, y := dist.EDR(a, b, geo.Euclidean, eps), dist.EDR(b, a, geo.Euclidean, eps); x != y {
			t.Fatalf("EDR asymmetric: %d vs %d", x, y)
		}
		if x, y := dist.LCSS(a, b, geo.Euclidean, eps), dist.LCSS(b, a, geo.Euclidean, eps); x != y {
			t.Fatalf("LCSS asymmetric: %d vs %d", x, y)
		}
	}
}

// TestDFDEndpointLowerBound pins the endpoint rule every pruning filter
// relies on: any coupling pairs first with first and last with last, so
// DFD >= max of those two ground distances.
func TestDFDEndpointLowerBound(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 100; trial++ {
		a := randWalk(r, 2+r.Intn(15), 0, 0)
		b := randWalk(r, 2+r.Intn(15), r.Float64()*4, r.Float64()*4)
		d := dist.DFD(a, b, geo.Euclidean)
		lb := math.Max(geo.Euclidean(a[0], b[0]), geo.Euclidean(a[len(a)-1], b[len(b)-1]))
		if d < lb-1e-12 {
			t.Fatalf("DFD %g below endpoint bound %g", d, lb)
		}
	}
}

// TestDFDAgreesWithDecisionProcedure cross-checks the exact distance
// against the early-abandoning decision DP: the decision at eps must
// equal DFD <= eps (the equivalence every decision caller relies on; the
// wider eps sweeps live in kernel_test.go).
func TestDFDAgreesWithDecisionProcedure(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		a := randWalk(r, 3+r.Intn(12), 0, 0)
		b := randWalk(r, 3+r.Intn(12), r.Float64()*4, r.Float64()*4)
		d := dist.DFD(a, b, geo.Euclidean)
		for _, eps := range []float64{d * 0.5, d, d + 1e-9, d * 1.5} {
			want := d <= eps
			if got := dist.DFDDecision(a, b, geo.Euclidean, eps); got != want {
				t.Fatalf("DFDDecision(eps=%g) = %v, DFD = %g wants %v", eps, got, d, want)
			}
		}
	}
}

// TestMeasureRelations checks the sanity inequalities tying the measures
// together: the bottleneck never exceeds the sum (DFD <= DTW), the sum
// over any coupling of at most n+m-1 pairs is bounded by the bottleneck
// (DTW <= (n+m-1)·DFD), EDR respects its Levenshtein range, and LCSS
// never exceeds the shorter length.
func TestMeasureRelations(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for trial := 0; trial < 100; trial++ {
		n, m := 2+r.Intn(15), 2+r.Intn(15)
		a := randWalk(r, n, 0, 0)
		b := randWalk(r, m, r.Float64()*3, r.Float64()*3)
		eps := 0.5 + r.Float64()*2

		dfd := dist.DFD(a, b, geo.Euclidean)
		dtw := dist.DTW(a, b, geo.Euclidean)
		if dfd > dtw+1e-12 {
			t.Fatalf("DFD %g > DTW %g", dfd, dtw)
		}
		if dtw > float64(n+m-1)*dfd+1e-9 {
			t.Fatalf("DTW %g > (n+m-1)·DFD = %g", dtw, float64(n+m-1)*dfd)
		}

		edr := dist.EDR(a, b, geo.Euclidean, eps)
		if edr < abs(n-m) || edr > max(n, m) {
			t.Fatalf("EDR %d outside [|n-m|, max(n,m)] = [%d, %d]", edr, abs(n-m), max(n, m))
		}

		lcss := dist.LCSS(a, b, geo.Euclidean, eps)
		if lcss < 0 || lcss > min(n, m) {
			t.Fatalf("LCSS %d outside [0, min(n,m)] = [0, %d]", lcss, min(n, m))
		}
		// An alignment with k edits eps-matches at least max(n,m)-k pairs,
		// and those pairs form a common subsequence, so EDR >= max(n,m)-LCSS.
		if edr < max(n, m)-lcss {
			t.Fatalf("EDR %d < max(n,m) - LCSS = %d", edr, max(n, m)-lcss)
		}

		ld := dist.LCSSDistance(a, b, geo.Euclidean, eps)
		if ld < 0 || ld > 1 {
			t.Fatalf("LCSSDistance %g outside [0,1]", ld)
		}
	}
}

// TestDFDMatrixPrefixes checks that every cell of the full table is the
// DFD of the corresponding prefixes, making the matrix form a drop-in
// oracle for the rolling-rows implementation.
func TestDFDMatrixPrefixes(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	a := randWalk(r, 8, 0, 0)
	b := randWalk(r, 6, 1, 1)
	dp := dist.DFDMatrix(a, b, geo.Euclidean)
	for i := range dp {
		for j := range dp[i] {
			want := dist.DFD(a[:i+1], b[:j+1], geo.Euclidean)
			if math.Abs(dp[i][j]-want) > 1e-12 {
				t.Fatalf("dp[%d][%d] = %g, want prefix DFD %g", i, j, dp[i][j], want)
			}
		}
	}
}

// TestDFDFromGridMatches checks the grid form against the point form on
// the same inputs, the contract internal/bounds and internal/group rely
// on when they window a shared distance matrix.
func TestDFDFromGridMatches(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	for trial := 0; trial < 50; trial++ {
		a := randWalk(r, 2+r.Intn(10), 0, 0)
		b := randWalk(r, 2+r.Intn(10), r.Float64()*2, r.Float64()*2)
		g := make([][]float64, len(a))
		for i := range g {
			g[i] = make([]float64, len(b))
			for j := range g[i] {
				g[i][j] = geo.Euclidean(a[i], b[j])
			}
		}
		if got, want := dist.DFDFromGrid(g), dist.DFD(a, b, geo.Euclidean); got != want {
			t.Fatalf("DFDFromGrid = %g, DFD = %g", got, want)
		}
	}
	if got := dist.DFDFromGrid(nil); got != 0 {
		t.Errorf("DFDFromGrid(nil) = %g, want 0", got)
	}
	// A grid with rows but no columns is one-sided-empty, matching
	// DFD(a, empty) = +Inf.
	if got := dist.DFDFromGrid([][]float64{{}}); !math.IsInf(got, 1) {
		t.Errorf("DFDFromGrid of a zero-width grid = %g, want +Inf", got)
	}
}

// TestHaversineGround runs the measures under the geographic ground
// distance to pin the unit contract: results are meters.
func TestHaversineGround(t *testing.T) {
	// Two parallel east-west tracks ~111 m apart (0.001° of latitude).
	a := make([]geo.Point, 5)
	b := make([]geo.Point, 5)
	for i := range a {
		a[i] = geo.Point{Lat: 40, Lng: 116 + float64(i)*0.001}
		b[i] = geo.Point{Lat: 40.001, Lng: 116 + float64(i)*0.001}
	}
	sep := geo.Haversine(a[0], b[0])
	d := dist.DFD(a, b, geo.Haversine)
	if math.Abs(d-sep) > 1e-6 {
		t.Errorf("DFD of parallel tracks = %g m, want separation %g m", d, sep)
	}
	ed, err := dist.ED(a, b, geo.Haversine)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ed-sep) > 1e-6 {
		t.Errorf("ED of parallel tracks = %g m, want %g m", ed, sep)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
