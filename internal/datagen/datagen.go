// Package datagen synthesizes the three trajectory workloads of the
// paper's evaluation (§6.1) — GeoLife (pedestrians, Beijing), Truck
// (concrete trucks, Athens) and Wild-Baboon (olive baboons, Mpala, Kenya).
//
// The real datasets are not redistributable with this repository, so each
// generator reproduces the *characteristics that drive the algorithms'
// behaviour* (see DESIGN.md §2): repeated noisy routes (the motifs),
// dataset-specific sampling regimes including the non-uniform rates and
// dropouts the paper highlights, and realistic speeds and geographic
// extents. Generators are deterministic per seed. Real GeoLife .plt files
// can still be loaded through internal/trajio and fed to the same
// algorithms and harness.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

// Config parameterizes a generator run.
type Config struct {
	// Seed makes the output deterministic; equal configs produce equal
	// trajectories.
	Seed int64
	// N is the exact number of points returned.
	N int
}

// Name identifies one of the three synthesized datasets.
type Name string

const (
	GeoLifeName Name = "geolife"
	TruckName   Name = "truck"
	BaboonName  Name = "baboon"
)

// Names lists the datasets in the paper's presentation order.
func Names() []Name { return []Name{GeoLifeName, TruckName, BaboonName} }

// Dataset dispatches by name.
func Dataset(name Name, cfg Config) (*traj.Trajectory, error) {
	switch name {
	case GeoLifeName:
		return GeoLife(cfg), nil
	case TruckName:
		return Truck(cfg), nil
	case BaboonName:
		return Baboon(cfg), nil
	}
	return nil, fmt.Errorf("datagen: unknown dataset %q", name)
}

// Pair returns two independent trajectories of the same dataset that share
// route geography (so cross-trajectory motifs exist), for the
// two-trajectory experiments (Figure 21).
func Pair(name Name, cfg Config) (*traj.Trajectory, *traj.Trajectory, error) {
	a, err := Dataset(name, cfg)
	if err != nil {
		return nil, nil, err
	}
	cfg2 := cfg
	cfg2.Seed = cfg.Seed*2654435761 + 1 // distinct but deterministic
	b, err := Dataset(name, cfg2)
	if err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// builder accumulates samples and enforces the exact-N contract.
type builder struct {
	pts   []geo.Point
	times []time.Time
	now   time.Time
	n     int
}

func newBuilder(n int, start time.Time) *builder {
	return &builder{
		pts:   make([]geo.Point, 0, n),
		times: make([]time.Time, 0, n),
		now:   start,
		n:     n,
	}
}

func (b *builder) full() bool { return len(b.pts) >= b.n }

func (b *builder) add(p geo.Point, dt time.Duration) {
	if b.full() {
		return
	}
	b.now = b.now.Add(dt)
	b.pts = append(b.pts, p)
	b.times = append(b.times, b.now)
}

func (b *builder) trajectory() *traj.Trajectory {
	t, err := traj.New(b.pts[:b.n], b.times[:b.n])
	if err != nil {
		panic(fmt.Sprintf("datagen: generator produced invalid trajectory: %v", err))
	}
	return t
}

// jitter returns a Gaussian GPS error in meters.
func jitter(r *rand.Rand, sigma float64) (float64, float64) {
	return r.NormFloat64() * sigma, r.NormFloat64() * sigma
}

// walkLeg emits samples while moving from the current position toward
// dst at the given speed, with per-sample GPS noise, irregular sampling
// intervals in [minGap, maxGap] seconds, and a dropout probability that
// swallows stretches of samples (GeoLife's missing-sample pathology).
func walkLeg(b *builder, r *rand.Rand, cur geo.Point, dst geo.Point,
	speed, noise float64, minGap, maxGap float64, dropout float64) geo.Point {
	for !b.full() {
		remaining := geo.Haversine(cur, dst)
		if remaining < speed*maxGap {
			cur = dst
			break
		}
		gap := minGap + r.Float64()*(maxGap-minGap)
		step := speed * gap * (0.8 + 0.4*r.Float64())
		brg := geo.Bearing(cur, dst) + r.NormFloat64()*8
		cur = geo.Destination(cur, brg, step)
		if r.Float64() < dropout {
			// GPS blackout: advance time, emit nothing.
			b.now = b.now.Add(time.Duration(gap*float64(10+r.Intn(50))) * time.Second)
			continue
		}
		ex, ny := jitter(r, noise)
		b.add(geo.Offset(cur, ex, ny), time.Duration(gap*float64(time.Second)))
	}
	return cur
}

// GeoLife synthesizes a pedestrian's multi-day trajectory around Beijing:
// a habitual home-office commute route re-walked every day (the motif the
// paper's Figure 1 discovers between two mornings), with midday wandering,
// GPS-logger noise, strongly non-uniform sampling rates and dropouts.
func GeoLife(cfg Config) *traj.Trajectory {
	r := rand.New(rand.NewSource(cfg.Seed))
	home := geo.Point{Lat: 39.9042, Lng: 116.4074}
	// A fixed commute corridor of waypoints (per seed).
	waypoints := []geo.Point{home}
	cur := home
	for k := 0; k < 6; k++ {
		cur = geo.Offset(cur, 150+r.Float64()*250, (r.Float64()-0.3)*200)
		waypoints = append(waypoints, cur)
	}
	office := waypoints[len(waypoints)-1]

	b := newBuilder(cfg.N, time.Date(2009, 4, 10, 7, 33, 0, 0, time.UTC))
	day := 0
	for !b.full() {
		// Morning commute: home -> office along the corridor.
		pos := home
		for _, w := range waypoints[1:] {
			pos = walkLeg(b, r, pos, w, 1.4, 3.5, 1, 6, 0.02)
		}
		// Midday wandering near the office (no repeated structure).
		for k := 0; k < 8 && !b.full(); k++ {
			dst := geo.Offset(office, (r.Float64()-0.5)*600, (r.Float64()-0.5)*600)
			pos = walkLeg(b, r, pos, dst, 1.3, 4, 2, 20, 0.05)
		}
		// Evening commute back along the same corridor (reversed).
		for k := len(waypoints) - 2; k >= 0; k-- {
			pos = walkLeg(b, r, pos, waypoints[k], 1.5, 3.5, 1, 6, 0.02)
		}
		// Overnight gap; a very long recording day may already have run
		// past the next morning, so never move time backwards.
		day++
		next := time.Date(2009, 4, 10+day, 7, 30+r.Intn(10), 0, 0, time.UTC)
		if !next.After(b.now) {
			next = b.now.Add(8 * time.Hour)
		}
		b.now = next
	}
	return b.trajectory()
}

// Truck synthesizes a concrete truck's delivery log in the Athens
// metropolitan area: repeated depot -> construction-site -> depot loops
// over a small set of sites, driven on L-shaped street paths at vehicle
// speeds with coarse commercial-tracker sampling (~30 s).
func Truck(cfg Config) *traj.Trajectory {
	r := rand.New(rand.NewSource(cfg.Seed))
	depot := geo.Point{Lat: 37.9838, Lng: 23.7275}
	sites := make([]geo.Point, 4)
	for k := range sites {
		sites[k] = geo.Offset(depot, (r.Float64()-0.5)*8000, (r.Float64()-0.5)*8000)
	}

	b := newBuilder(cfg.N, time.Date(2002, 8, 9, 6, 0, 0, 0, time.UTC))
	drive := func(pos, dst geo.Point) geo.Point {
		// Manhattan-style: first east-west, then north-south, mimicking a
		// street grid so different trips over the same leg re-trace it.
		mid := geo.Point{Lat: pos.Lat, Lng: dst.Lng}
		pos = walkLeg(b, r, pos, mid, 9+3*r.Float64(), 8, 20, 40, 0.01)
		return walkLeg(b, r, pos, dst, 9+3*r.Float64(), 8, 20, 40, 0.01)
	}
	pos := depot
	for !b.full() {
		site := sites[r.Intn(len(sites))]
		pos = drive(pos, site)
		// Unload: stationary samples with engine-on tracker pings.
		for k := 0; k < 3+r.Intn(4) && !b.full(); k++ {
			ex, ny := jitter(r, 4)
			b.add(geo.Offset(pos, ex, ny), time.Duration(30+r.Intn(30))*time.Second)
		}
		pos = drive(pos, depot)
	}
	return b.trajectory()
}

// Baboon synthesizes a wild olive baboon's movement at Mpala Research
// Centre: a 1 Hz collar (dense, uniform sampling — the opposite regime
// from GeoLife) recording correlated-random-walk foraging with habitual
// corridor loops back to the sleep tree, which re-traces paths and plants
// motifs.
func Baboon(cfg Config) *traj.Trajectory {
	r := rand.New(rand.NewSource(cfg.Seed))
	sleepTree := geo.Point{Lat: 0.2921, Lng: 36.8990}
	// A habitual corridor: fixed waypoints re-walked on every return.
	corridor := []geo.Point{sleepTree}
	cur := sleepTree
	for k := 0; k < 4; k++ {
		cur = geo.Offset(cur, 40+r.Float64()*60, 30+r.Float64()*50)
		corridor = append(corridor, cur)
	}

	b := newBuilder(cfg.N, time.Date(2012, 8, 1, 6, 0, 0, 0, time.UTC))
	pos := sleepTree
	heading := r.Float64() * 360
	for !b.full() {
		// Foraging bout: correlated random walk at 1 Hz.
		bout := 120 + r.Intn(240)
		for k := 0; k < bout && !b.full(); k++ {
			heading += r.NormFloat64() * 15
			speed := math.Abs(r.NormFloat64()) * 0.8 // 0-~2 m/s
			pos = geo.Destination(pos, heading, speed)
			ex, ny := jitter(r, 0.5)
			b.add(geo.Offset(pos, ex, ny), time.Second)
		}
		// Habitual corridor traverse (out or back, alternating),
		// re-tracing the same waypoints — the motif source.
		if r.Intn(2) == 0 {
			for _, w := range corridor {
				pos = walkLeg(b, r, pos, w, 1.2, 0.8, 1, 1, 0)
			}
		} else {
			for k := len(corridor) - 1; k >= 0; k-- {
				pos = walkLeg(b, r, pos, corridor[k], 1.2, 0.8, 1, 1, 0)
			}
		}
	}
	return b.trajectory()
}
