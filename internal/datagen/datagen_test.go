package datagen

import (
	"math"
	"testing"

	"trajmotif/internal/core"
	"trajmotif/internal/geo"
	"trajmotif/internal/group"
)

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		a, err := Dataset(name, Config{Seed: 7, N: 500})
		if err != nil {
			t.Fatal(err)
		}
		b, _ := Dataset(name, Config{Seed: 7, N: 500})
		for k := range a.Points {
			if a.Points[k] != b.Points[k] || !a.Times[k].Equal(b.Times[k]) {
				t.Fatalf("%s: not deterministic at %d", name, k)
			}
		}
		c, _ := Dataset(name, Config{Seed: 8, N: 500})
		same := true
		for k := range a.Points {
			if a.Points[k] != c.Points[k] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical output", name)
		}
	}
}

func TestExactLengthAndValidity(t *testing.T) {
	for _, name := range Names() {
		for _, n := range []int{50, 333, 1200} {
			tr, err := Dataset(name, Config{Seed: 1, N: n})
			if err != nil {
				t.Fatal(err)
			}
			if tr.Len() != n {
				t.Fatalf("%s N=%d: got %d points", name, n, tr.Len())
			}
			if len(tr.Times) != n {
				t.Fatalf("%s: missing timestamps", name)
			}
			for k := 1; k < n; k++ {
				if tr.Times[k].Before(tr.Times[k-1]) {
					t.Fatalf("%s: time went backwards at %d", name, k)
				}
			}
		}
	}
}

func TestUnknownDataset(t *testing.T) {
	if _, err := Dataset("nope", Config{N: 10}); err == nil {
		t.Error("unknown dataset should error")
	}
}

// TestSamplingRegimes verifies the dataset-specific sampling claims:
// GeoLife is irregular with dropouts, Baboon is dense 1 Hz.
func TestSamplingRegimes(t *testing.T) {
	gl := GeoLife(Config{Seed: 3, N: 2000})
	st, ok := gl.Sampling()
	if !ok {
		t.Fatal("geolife must be timed")
	}
	if !st.Irregular {
		t.Error("geolife sampling should be irregular")
	}
	if st.DropoutsOve == 0 {
		t.Error("geolife should contain dropout gaps")
	}

	bb := Baboon(Config{Seed: 3, N: 2000})
	bst, _ := bb.Sampling()
	if bst.MeanGap.Seconds() < 0.9 || bst.MeanGap.Seconds() > 1.1 {
		t.Errorf("baboon mean gap = %v, want ~1s", bst.MeanGap)
	}
}

// TestRealisticSpeeds sanity-checks movement rates per dataset.
func TestRealisticSpeeds(t *testing.T) {
	cases := []struct {
		name     Name
		maxSpeed float64 // m/s tolerated between consecutive samples
	}{
		{GeoLifeName, 15}, // walking + GPS noise spikes
		{TruckName, 40},   // urban driving
		{BaboonName, 10},  // primate on foot
	}
	for _, c := range cases {
		tr, _ := Dataset(c.name, Config{Seed: 5, N: 1500})
		exceed := 0
		for k := 1; k < tr.Len(); k++ {
			dt := tr.Times[k].Sub(tr.Times[k-1]).Seconds()
			if dt <= 0 {
				continue
			}
			v := geo.Haversine(tr.Points[k-1], tr.Points[k]) / dt
			if v > c.maxSpeed {
				exceed++
			}
		}
		if frac := float64(exceed) / float64(tr.Len()); frac > 0.02 {
			t.Errorf("%s: %.1f%% of steps exceed %g m/s", c.name, frac*100, c.maxSpeed)
		}
	}
}

// TestGeneratorsPlantDiscoverableMotifs runs actual motif discovery on
// each dataset: the repeated-route structure must yield a motif whose DFD
// is small relative to the trajectory's spatial extent.
func TestGeneratorsPlantDiscoverableMotifs(t *testing.T) {
	for _, name := range Names() {
		tr, _ := Dataset(name, Config{Seed: 11, N: 400})
		xi := 20
		res, err := group.GTM(tr, xi, 16, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sw, ne := tr.BoundingBox()
		extent := geo.Haversine(sw, ne)
		if res.Distance > extent/10 {
			t.Errorf("%s: motif DFD %.1f m not small vs extent %.1f m",
				name, res.Distance, extent)
		}
		if res.A.Steps() <= xi || res.B.Steps() <= xi {
			t.Errorf("%s: motif legs too short: %v %v", name, res.A, res.B)
		}
	}
}

func TestPair(t *testing.T) {
	a, b, err := Pair(TruckName, Config{Seed: 2, N: 300})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 300 || b.Len() != 300 {
		t.Fatal("pair lengths wrong")
	}
	identical := true
	for k := range a.Points {
		if a.Points[k] != b.Points[k] {
			identical = false
			break
		}
	}
	if identical {
		t.Error("pair members must differ")
	}
	// Cross-trajectory motifs must exist and be discoverable: the two
	// trucks share depot and sites.
	res, err := core.BTMCross(a, b, 15, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.Distance, 1) {
		t.Error("no cross motif found")
	}
	if _, _, err := Pair("nope", Config{N: 10}); err == nil {
		t.Error("unknown pair dataset should error")
	}
}
