package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"trajmotif/internal/datagen"
	"trajmotif/internal/dist"
	"trajmotif/internal/geo"
	"trajmotif/internal/traj"
)

func TestWindows(t *testing.T) {
	ws := Windows(10, 4, 3)
	want := []traj.Span{{Start: 0, End: 3}, {Start: 3, End: 6}, {Start: 6, End: 9}}
	if len(ws) != len(want) {
		t.Fatalf("got %v", ws)
	}
	for k := range want {
		if ws[k] != want[k] {
			t.Errorf("window %d = %v, want %v", k, ws[k], want[k])
		}
	}
	if Windows(10, 1, 2) != nil || Windows(10, 4, 0) != nil {
		t.Error("degenerate parameters should yield nil")
	}
	if got := Windows(3, 4, 1); got != nil {
		t.Errorf("window longer than input should yield nil, got %v", got)
	}
}

func TestSubtrajectoriesValidation(t *testing.T) {
	tr := traj.FromPoints([]geo.Point{{Lat: 1, Lng: 1}, {Lat: 2, Lng: 2}, {Lat: 3, Lng: 3}})
	if _, err := Subtrajectories(tr, 10, 1, nil); err == nil {
		t.Error("window longer than trajectory should error")
	}
	if _, err := Subtrajectories(tr, 1, 1, nil); err == nil {
		t.Error("window of 1 should error")
	}
	if _, err := Subtrajectories(tr, 2, -1, nil); err == nil {
		t.Error("negative radius should error")
	}
	if _, err := Subtrajectories(nil, 2, 1, nil); err == nil {
		t.Error("nil trajectory should error")
	}
}

// TestClusterMembershipIsSound verifies the leader invariant: every member
// window is within eps of its cluster's representative (exact DFD check).
func TestClusterMembershipIsSound(t *testing.T) {
	tr := datagen.Baboon(datagen.Config{Seed: 13, N: 600})
	eps := 25.0
	window := 30
	clusters, err := Subtrajectories(tr, window, eps, &Options{MinSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) == 0 {
		t.Fatal("no clusters found")
	}
	covered := 0
	for _, c := range clusters {
		rep := tr.SubSpan(c.Representative)
		for _, m := range c.Members {
			d := dist.DFD(tr.SubSpan(m), rep, geo.Haversine)
			if d > eps+1e-6 {
				t.Fatalf("member %v at DFD %.2f > eps %.2f from rep %v", m, d, eps, c.Representative)
			}
			covered++
		}
	}
	// Every window is assigned to exactly one cluster with MinSize 1.
	if want := len(Windows(tr.Len(), window, window/2)); covered != want {
		t.Errorf("covered %d windows, want %d", covered, want)
	}
}

// TestClusteringFindsRepeatedCorridor plants a re-walked corridor and
// expects its windows to congregate in one cluster.
func TestClusteringFindsRepeatedCorridor(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	corridor := make([]geo.Point, 40)
	for k := range corridor {
		corridor[k] = geo.Offset(geo.Point{Lat: 10, Lng: 10}, float64(k)*20, float64(k%7)*8)
	}
	noisyCopy := func(jm float64) []geo.Point {
		out := make([]geo.Point, len(corridor))
		for k, p := range corridor {
			out[k] = geo.Offset(p, r.Float64()*jm, r.Float64()*jm)
		}
		return out
	}
	wander := func(n int, cx, cy float64) []geo.Point {
		out := make([]geo.Point, n)
		for k := range out {
			out[k] = geo.Offset(geo.Point{Lat: 10, Lng: 10}, cx+r.Float64()*3000, cy+r.Float64()*3000)
		}
		return out
	}
	var pts []geo.Point
	pts = append(pts, noisyCopy(5)...)
	pts = append(pts, wander(40, 20000, -15000)...)
	pts = append(pts, noisyCopy(5)...)
	pts = append(pts, wander(40, -20000, 25000)...)
	pts = append(pts, noisyCopy(5)...)
	tr := traj.FromPoints(pts)

	clusters, err := Subtrajectories(tr, 40, 30, &Options{Stride: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) == 0 {
		t.Fatal("no clusters")
	}
	top := clusters[0]
	if top.Size() != 3 {
		t.Fatalf("top cluster has %d members, want the 3 corridor copies (clusters: %d)", top.Size(), len(clusters))
	}
	// Corridor copies start at 0, 80 and 160 (each block is 40 points).
	for _, m := range top.Members {
		if m.Start%80 != 0 || m.Start > 160 {
			t.Errorf("member %v is not a corridor copy", m)
		}
	}
}

func TestClustersSortedBySize(t *testing.T) {
	tr := datagen.GeoLife(datagen.Config{Seed: 15, N: 500})
	clusters, err := Subtrajectories(tr, 25, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(clusters); k++ {
		if clusters[k].Size() > clusters[k-1].Size() {
			t.Errorf("clusters not sorted by size at %d", k)
		}
	}
	// MinSize default of 2 excludes singletons.
	for _, c := range clusters {
		if c.Size() < 2 {
			t.Errorf("singleton cluster leaked: %+v", c)
		}
	}
}

// TestEndpointDistsSupplierParity: clustering with a memo supplier is
// byte-identical to clustering without one, and a supplier that
// declines (ok=false) falls back to direct evaluation rather than
// changing the answer.
func TestEndpointDistsSupplierParity(t *testing.T) {
	tr := datagen.Baboon(datagen.Config{Seed: 16, N: 400})
	base, err := Subtrajectories(tr, 12, 900, nil)
	if err != nil {
		t.Fatal(err)
	}
	memoCalls := 0
	memo, err := Subtrajectories(tr, 12, 900, &Options{
		EndpointDists: func(i, j int) (float64, bool) {
			memoCalls++
			return geo.Haversine(tr.Points[i], tr.Points[j]), true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(memo, base) {
		t.Fatalf("memoized clustering diverged:\n got %+v\nwant %+v", memo, base)
	}
	if memoCalls == 0 {
		t.Fatal("supplier never consulted")
	}
	declined, err := Subtrajectories(tr, 12, 900, &Options{
		EndpointDists: func(i, j int) (float64, bool) { return 0, false },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(declined, base) {
		t.Fatal("declining supplier changed the clustering")
	}
}
