// Package cluster implements subtrajectory clustering under the discrete
// Fréchet distance — the second future-work operation named in the
// paper's §7 and the application domain of its references [3, 12]
// (commuting-pattern detection, GPU subtrajectory clustering).
//
// The algorithm is leader (sequential) clustering over sliding windows:
// the trajectory is cut into windows of L points with stride s; each
// window joins the first existing cluster whose representative lies
// within DFD radius eps (decided by the early-abandoning procedure from
// internal/join), or founds a new cluster. Leader clustering is a single
// pass, deterministic, and — because every membership test is a true DFD
// decision — every reported cluster is a set of subtrajectories pairwise
// within 2·eps of each other (triangle inequality through the
// representative; DFD is a metric).
package cluster

import (
	"fmt"
	"sort"

	"trajmotif/internal/geo"
	"trajmotif/internal/join"
	"trajmotif/internal/traj"
)

// Options tunes the clustering.
type Options struct {
	// Dist is the ground distance; nil selects haversine.
	Dist geo.DistanceFunc
	// Stride between window starts; 0 defaults to half the window.
	Stride int
	// MinSize drops clusters with fewer members from the output; 0
	// defaults to 2 (singletons are not patterns).
	MinSize int
	// EndpointDists optionally memoizes the endpoint ground distances
	// the membership tests evaluate (point indexes into the subject
	// trajectory). A supplier returning ok=false — or a nil field —
	// falls back to direct evaluation. Suppliers must return the exact
	// float64 direct evaluation produces (store.PointDists does:
	// HaversinePrepared is bit-identical to Haversine), so memoized and
	// unmemoized clusterings are byte-identical.
	EndpointDists func(i, j int) (float64, bool)
}

func (o *Options) dist() geo.DistanceFunc {
	if o == nil || o.Dist == nil {
		return geo.Haversine
	}
	return o.Dist
}

// Cluster is a group of subtrajectory windows within eps of the
// representative.
type Cluster struct {
	// Representative is the founding window's span.
	Representative traj.Span
	// Members are the spans assigned to this cluster, including the
	// representative, in discovery order.
	Members []traj.Span
}

// Size returns the member count.
func (c Cluster) Size() int { return len(c.Members) }

// Windows enumerates the sliding-window spans used by Subtrajectories.
func Windows(n, window, stride int) []traj.Span {
	if window < 2 || stride < 1 {
		return nil
	}
	var out []traj.Span
	for s := 0; s+window-1 < n; s += stride {
		out = append(out, traj.Span{Start: s, End: s + window - 1})
	}
	return out
}

// Subtrajectories clusters the sliding windows of t. Windows of length
// window points are tested against cluster representatives under DFD
// radius eps. Clusters are returned largest first; ties broken by the
// representative's position.
func Subtrajectories(t *traj.Trajectory, window int, eps float64, opt *Options) ([]Cluster, error) {
	if t == nil || t.Len() < window {
		return nil, fmt.Errorf("cluster: trajectory shorter than window %d", window)
	}
	if window < 2 {
		return nil, fmt.Errorf("cluster: window must be at least 2 points, got %d", window)
	}
	if eps < 0 {
		return nil, fmt.Errorf("cluster: negative radius %g", eps)
	}
	stride := window / 2
	minSize := 2
	if opt != nil {
		if opt.Stride > 0 {
			stride = opt.Stride
		}
		if opt.MinSize > 0 {
			minSize = opt.MinSize
		}
	}
	df := opt.dist()
	// Every membership test starts with two endpoint distances between
	// points of t; under haversine their cos(lat) factors are hoisted
	// into one table (HaversinePrepared is bit-identical to Haversine).
	var cos []float64
	if geo.IsHaversine(df) {
		cos = geo.CosLats(t.Points)
	}
	endp := func(i, j int) float64 {
		if opt != nil && opt.EndpointDists != nil {
			if d, ok := opt.EndpointDists(i, j); ok {
				return d
			}
		}
		if cos != nil {
			return geo.HaversinePrepared(t.Points[i], t.Points[j], cos[i], cos[j])
		}
		return df(t.Points[i], t.Points[j])
	}

	var clusters []Cluster
	for _, w := range Windows(t.Len(), window, stride) {
		pts := t.SubSpan(w)
		placed := false
		for k := range clusters {
			rep := t.SubSpan(clusters[k].Representative)
			// Cheap endpoint rejection before the DP decision.
			r := clusters[k].Representative
			if endp(w.Start, r.Start) > eps || endp(w.End, r.End) > eps {
				continue
			}
			if join.DFDWithin(pts, rep, df, eps) {
				clusters[k].Members = append(clusters[k].Members, w)
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, Cluster{Representative: w, Members: []traj.Span{w}})
		}
	}

	var out []Cluster
	for _, c := range clusters {
		if c.Size() >= minSize {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Size() != out[b].Size() {
			return out[a].Size() > out[b].Size()
		}
		return out[a].Representative.Start < out[b].Representative.Start
	})
	return out, nil
}
