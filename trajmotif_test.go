package trajmotif

import (
	"math"
	"path/filepath"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	tr, err := GenerateDataset(GeoLife, DatasetConfig{Seed: 1, N: 300})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discover(tr, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance <= 0 || math.IsInf(res.Distance, 1) {
		t.Fatalf("implausible motif distance %g", res.Distance)
	}
	// All algorithm entry points must agree.
	btm, err := BTM(tr, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	star, err := GTMStar(tr, 20, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Distance-btm.Distance) > 1e-9 || math.Abs(res.Distance-star.Distance) > 1e-9 {
		t.Fatalf("facade algorithms disagree: GTM %g BTM %g GTM* %g",
			res.Distance, btm.Distance, star.Distance)
	}
	// The reported pair's DFD must equal the reported distance.
	d := DFD(tr.SubSpan(res.A), tr.SubSpan(res.B), nil)
	if math.Abs(d-res.Distance) > 1e-9 {
		t.Fatalf("pair DFD %g != result %g", d, res.Distance)
	}
}

func TestFacadeBetween(t *testing.T) {
	a, b, err := GenerateDatasetPair(Truck, DatasetConfig{Seed: 2, N: 200})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DiscoverBetween(a, b, 15, nil)
	if err != nil {
		t.Fatal(err)
	}
	brute, err := BruteDPBetween(a, b, 15, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Distance-brute.Distance) > 1e-9 {
		t.Fatalf("between: GTM %g != BruteDP %g", res.Distance, brute.Distance)
	}
	if _, err := GTMBetween(a, b, 15, 8, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := GTMStarBetween(a, b, 15, 8, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := BTMBetween(a, b, 15, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeIO(t *testing.T) {
	tr, _ := GenerateDataset(Baboon, DatasetConfig{Seed: 3, N: 60})
	path := filepath.Join(t.TempDir(), "x.csv")
	if err := WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 60 {
		t.Fatalf("round trip lost points: %d", back.Len())
	}
}

func TestFacadeConstructorsAndErrors(t *testing.T) {
	if _, err := NewTrajectory(nil); err == nil {
		t.Error("empty trajectory should error")
	}
	pts := []Point{{Lat: 1, Lng: 1}, {Lat: 1.1, Lng: 1.1}, {Lat: 1.2, Lng: 1.2}}
	tr, err := NewTrajectory(pts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Discover(tr, 100, nil); err != ErrTooShort {
		t.Errorf("want ErrTooShort, got %v", err)
	}
	if _, err := BruteDP(tr, 100, nil); err != ErrTooShort {
		t.Errorf("want ErrTooShort, got %v", err)
	}
}

func TestFacadeMeasures(t *testing.T) {
	// Two parallel east-west tracks ~111 m apart (0.001° of latitude).
	a := make([]Point, 6)
	b := make([]Point, 6)
	for i := range a {
		a[i] = Point{Lat: 40, Lng: 116 + float64(i)*0.001}
		b[i] = Point{Lat: 40.001, Lng: 116 + float64(i)*0.001}
	}
	sep := Haversine(a[0], b[0])

	if d := DFD(a, b, nil); math.Abs(d-sep) > 1e-6 {
		t.Errorf("DFD = %g, want separation %g", d, sep)
	}
	if d := DTW(a, b, nil); math.Abs(d-float64(len(a))*sep) > 1e-6 {
		t.Errorf("DTW = %g, want %g (separation summed per pair)", d, float64(len(a))*sep)
	}
	d, err := ED(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-sep) > 1e-6 {
		t.Errorf("ED = %g, want %g", d, sep)
	}
	if _, err := ED(a, b[:3], nil); err == nil {
		t.Error("ED must error on a length mismatch")
	}
	// With eps above the separation everything matches; below, nothing.
	if got := LCSS(a, b, nil, sep+1); got != len(a) {
		t.Errorf("LCSS with generous eps = %d, want %d", got, len(a))
	}
	if got := LCSSDistance(a, b, nil, sep/2); got != 1 {
		t.Errorf("LCSSDistance with tight eps = %g, want 1", got)
	}
	if got := EDR(a, b, nil, sep+1); got != 0 {
		t.Errorf("EDR with generous eps = %d, want 0", got)
	}
	if got := EDR(a, b, nil, sep/2); got != len(a) {
		t.Errorf("EDR with tight eps = %d, want %d (all substitutions)", got, len(a))
	}
}

func TestSymbolicFacade(t *testing.T) {
	// Straight dense line: encodes to VVV..., which repeats.
	pts := make([]Point, 40)
	for k := range pts {
		pts[k] = Point{Lat: 10 + float64(k)*0.001, Lng: 20}
	}
	tr, _ := NewTrajectory(pts)
	pattern, a, b, ok := SymbolicDiscover(tr, 4)
	if !ok || len(pattern) == 0 {
		t.Fatal("expected symbolic motif on repetitive encoding")
	}
	if !a.Valid(tr.Len()) || !b.Valid(tr.Len()) {
		t.Errorf("invalid spans %v %v", a, b)
	}
}
