package trajmotif

// One benchmark per table/figure of the paper (see DESIGN.md's
// per-experiment index), plus ablation benches for the design choices the
// paper motivates. The full sweep tables are produced by cmd/motifbench;
// these benchmarks time the core computation of each experiment at a
// fixed representative size so regressions surface in `go test -bench`.

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"trajmotif/internal/bounds"
	"trajmotif/internal/core"
	"trajmotif/internal/datagen"
	"trajmotif/internal/dist"
	"trajmotif/internal/dmatrix"
	"trajmotif/internal/geo"
	"trajmotif/internal/group"
	"trajmotif/internal/knn"
	"trajmotif/internal/symbolic"
	"trajmotif/internal/traj"
)

const (
	benchN  = 400
	benchXi = 16
)

func benchTraj(b *testing.B, name datagen.Name) *traj.Trajectory {
	b.Helper()
	t, err := datagen.Dataset(name, datagen.Config{Seed: 42, N: benchN})
	if err != nil {
		b.Fatal(err)
	}
	return t
}

func sink(b *testing.B, res *core.Result, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if math.IsInf(res.Distance, 1) {
		b.Fatal("no motif found")
	}
}

// BenchmarkTable1Measures times each similarity measure at the same
// length, exhibiting the O(l) vs O(l^2) cost column of Table 1.
func BenchmarkTable1Measures(b *testing.B) {
	t := benchTraj(b, datagen.GeoLifeName)
	x, y := t.Points[:128], t.Points[128:256]
	b.Run("ED", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dist.ED(x, y, geo.Haversine); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DTW", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dist.DTW(x, y, geo.Haversine)
		}
	})
	b.Run("LCSS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dist.LCSS(x, y, geo.Haversine, 50)
		}
	})
	b.Run("EDR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dist.EDR(x, y, geo.Haversine, 50)
		}
	})
	b.Run("DFD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dist.DFD(x, y, geo.Haversine)
		}
	})
}

// BenchmarkFigure2EDvsDFD times DFD motif discovery on the pedestrian
// workload underlying Figure 2.
func BenchmarkFigure2EDvsDFD(b *testing.B) {
	t := benchTraj(b, datagen.GeoLifeName)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := group.GTM(t, benchXi, 16, nil)
		if err != nil {
			b.Fatal(err)
		}
		sink(b, &res.Result, nil)
	}
}

// BenchmarkFigure3DTWvsDFD times the DTW/DFD comparison on the
// non-uniformly sampled curves of Figure 3.
func BenchmarkFigure3DTWvsDFD(b *testing.B) {
	n := 60
	sa := make([]geo.Point, n)
	for i := range sa {
		sa[i] = geo.Point{Lng: float64(i), Lat: math.Sin(float64(i) / 8)}
	}
	sc := make([]geo.Point, 0, 260)
	for i := 0; i < 250; i++ {
		x := float64(i) * 6.0 / 250
		sc = append(sc, geo.Point{Lng: x, Lat: math.Sin(x/8) + 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.DTW(sa, sc, geo.Euclidean)
		dist.DFD(sa, sc, geo.Euclidean)
	}
}

// BenchmarkFigure4Symbolic times the symbolic pipeline of Figure 4.
func BenchmarkFigure4Symbolic(b *testing.B) {
	t := benchTraj(b, datagen.TruckName)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		symbolic.Discover(t, 8)
	}
}

// BenchmarkTable3BoundCost compares the per-call cost of tight versus
// relaxed bound machinery (Table 3).
func BenchmarkTable3BoundCost(b *testing.B) {
	t := benchTraj(b, datagen.GeoLifeName)
	g := dmatrix.ComputeSelf(t.Points, geo.Haversine)
	tight := bounds.NewTight(g, benchXi, true)
	rb := bounds.NewRelaxed(g, bounds.PointParams(benchXi, true))
	i, j := benchN/4, benchN/4+benchXi+10
	b.Run("tight-cross", func(b *testing.B) {
		for k := 0; k < b.N; k++ {
			tight.StartCross(i, j)
		}
	})
	b.Run("tight-band", func(b *testing.B) {
		for k := 0; k < b.N; k++ {
			tight.RowBand(i, j)
		}
	})
	b.Run("relaxed-precompute-total", func(b *testing.B) {
		for k := 0; k < b.N; k++ {
			bounds.NewRelaxed(g, bounds.PointParams(benchXi, true))
		}
	})
	b.Run("relaxed-query", func(b *testing.B) {
		for k := 0; k < b.N; k++ {
			rb.SubsetLB(g.At(i, j), i, j)
		}
	})
}

// BenchmarkFigure13TightVsRelaxed compares full BTM runs under tight and
// relaxed bounds (Figure 13; n varies in cmd/motifbench).
func BenchmarkFigure13TightVsRelaxed(b *testing.B) {
	t := benchTraj(b, datagen.GeoLifeName).Clip(200)
	b.Run("tight", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.BTM(t, 8, &core.Options{Bounds: core.BoundsTight})
			sink(b, res, err)
		}
	})
	b.Run("relaxed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.BTM(t, 8, nil)
			sink(b, res, err)
		}
	})
}

// BenchmarkFigure14TightVsRelaxedXi repeats the comparison at a larger ξ
// (Figure 14's sweep dimension).
func BenchmarkFigure14TightVsRelaxedXi(b *testing.B) {
	t := benchTraj(b, datagen.GeoLifeName).Clip(200)
	for _, xi := range []int{8, 16} {
		b.Run(map[int]string{8: "xi8-tight", 16: "xi16-tight"}[xi], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.BTM(t, xi, &core.Options{Bounds: core.BoundsTight})
				sink(b, res, err)
			}
		})
		b.Run(map[int]string{8: "xi8-relaxed", 16: "xi16-relaxed"}[xi], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.BTM(t, xi, nil)
				sink(b, res, err)
			}
		})
	}
}

// BenchmarkFigure15Breakdown times BTM with the pruning-attribution pass
// enabled (Figure 15's accounting).
func BenchmarkFigure15Breakdown(b *testing.B) {
	t := benchTraj(b, datagen.GeoLifeName)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.BTM(t, benchXi, &core.Options{CollectBreakdown: true})
		sink(b, res, err)
	}
}

// BenchmarkFigure16BoundVariants times the cumulative bound
// configurations (Figure 16).
func BenchmarkFigure16BoundVariants(b *testing.B) {
	t := benchTraj(b, datagen.GeoLifeName)
	for _, v := range []struct {
		name string
		set  core.BoundSet
	}{
		{"cell", core.BoundsCellOnly},
		{"cell+cross", core.BoundsCellCross},
		{"cell+cross+band", core.BoundsRelaxed},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.BTM(t, benchXi, &core.Options{Bounds: v.set})
				sink(b, res, err)
			}
		})
	}
}

// BenchmarkFigure17GroupSize sweeps GTM's initial τ (Figure 17).
func BenchmarkFigure17GroupSize(b *testing.B) {
	t := benchTraj(b, datagen.GeoLifeName)
	for _, tau := range []int{8, 16, 32, 64, 128} {
		b.Run(map[int]string{8: "tau8", 16: "tau16", 32: "tau32", 64: "tau64", 128: "tau128"}[tau], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := group.GTM(t, benchXi, tau, nil)
				if err != nil {
					b.Fatal(err)
				}
				sink(b, &res.Result, nil)
			}
		})
	}
}

// BenchmarkFigure18ResponseTime compares the four methods on each
// dataset (Figure 18). BruteDP runs at this size; larger sweeps truncate
// it in cmd/motifbench.
func BenchmarkFigure18ResponseTime(b *testing.B) {
	for _, name := range datagen.Names() {
		t := benchTraj(b, name)
		b.Run(string(name)+"/BruteDP", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.BruteDP(t.Clip(150), 6, nil)
				sink(b, res, err)
			}
		})
		b.Run(string(name)+"/BTM", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.BTM(t, benchXi, nil)
				sink(b, res, err)
			}
		})
		b.Run(string(name)+"/GTM", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := group.GTM(t, benchXi, 32, nil)
				if err != nil {
					b.Fatal(err)
				}
				sink(b, &res.Result, nil)
			}
		})
		b.Run(string(name)+"/GTMStar", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := group.GTMStar(t, benchXi, 32, nil)
				if err != nil {
					b.Fatal(err)
				}
				sink(b, &res.Result, nil)
			}
		})
	}
}

// BenchmarkFigure19Space reports each method's principal memory as a
// benchmark metric (Figure 19).
func BenchmarkFigure19Space(b *testing.B) {
	t := benchTraj(b, datagen.GeoLifeName)
	b.Run("BTM", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			res, err := core.BTM(t, benchXi, nil)
			if err != nil {
				b.Fatal(err)
			}
			bytes = res.Stats.PeakBytes
		}
		b.ReportMetric(float64(bytes), "peak-bytes")
	})
	b.Run("GTM", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			res, err := group.GTM(t, benchXi, 32, nil)
			if err != nil {
				b.Fatal(err)
			}
			bytes = res.Stats.PeakBytes
		}
		b.ReportMetric(float64(bytes), "peak-bytes")
	})
	b.Run("GTMStar", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			res, err := group.GTMStar(t, benchXi, 32, nil)
			if err != nil {
				b.Fatal(err)
			}
			bytes = res.Stats.PeakBytes
		}
		b.ReportMetric(float64(bytes), "peak-bytes")
	})
}

// BenchmarkFigure20MinLength sweeps ξ (Figure 20).
func BenchmarkFigure20MinLength(b *testing.B) {
	t := benchTraj(b, datagen.GeoLifeName)
	for _, xi := range []int{8, 16, 24, 32} {
		b.Run(map[int]string{8: "xi8", 16: "xi16", 24: "xi24", 32: "xi32"}[xi], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := group.GTM(t, xi, 32, nil)
				if err != nil {
					b.Fatal(err)
				}
				sink(b, &res.Result, nil)
			}
		})
	}
}

// BenchmarkFigure21CrossTrajectory times the two-trajectory variant
// (Figure 21).
func BenchmarkFigure21CrossTrajectory(b *testing.B) {
	for _, name := range datagen.Names() {
		a, u, err := datagen.Pair(name, datagen.Config{Seed: 42, N: benchN})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(string(name)+"/BTM", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.BTMCross(a, u, benchXi, nil)
				sink(b, res, err)
			}
		})
		b.Run(string(name)+"/GTM", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := group.GTMCross(a, u, benchXi, 32, nil)
				if err != nil {
					b.Fatal(err)
				}
				sink(b, &res.Result, nil)
			}
		})
	}
}

// --- Ablation benches (DESIGN.md §6) ---

// BenchmarkAblationSearchOrder isolates the value of processing candidate
// subsets in ascending-LB order (§4.4 "prioritizing search order").
func BenchmarkAblationSearchOrder(b *testing.B) {
	t := benchTraj(b, datagen.GeoLifeName)
	b.Run("sorted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.BTM(t, benchXi, nil)
			sink(b, res, err)
		}
	})
	b.Run("unsorted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.BTM(t, benchXi, &core.Options{Unsorted: true})
			sink(b, res, err)
		}
	})
}

// BenchmarkAblationEndCross isolates the within-subset end-cross cap
// (Alg. 2 lines 12-13).
func BenchmarkAblationEndCross(b *testing.B) {
	t := benchTraj(b, datagen.GeoLifeName)
	b.Run("with-endcross", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.BTM(t, benchXi, nil)
			sink(b, res, err)
		}
	})
	b.Run("without-endcross", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.BTM(t, benchXi, &core.Options{DisableEndCross: true})
			sink(b, res, err)
		}
	})
}

// BenchmarkAblationMultiLevel contrasts GTM's multi-level halving with
// GTM*'s single grouping pass on the same τ.
func BenchmarkAblationMultiLevel(b *testing.B) {
	t := benchTraj(b, datagen.GeoLifeName)
	b.Run("multi-level", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := group.GTM(t, benchXi, 32, nil)
			if err != nil {
				b.Fatal(err)
			}
			sink(b, &res.Result, nil)
		}
	})
	b.Run("single-level", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := group.GTMStar(t, benchXi, 32, nil)
			if err != nil {
				b.Fatal(err)
			}
			sink(b, &res.Result, nil)
		}
	})
}

// BenchmarkAblationEarlyAbandon isolates the kernel-level early
// abandoning of subset DPs against the best-so-far bound (ROADMAP:
// "Early-abandoning DFD inside motif search"), on the two drivers where
// hopeless subsets actually reach the DP: the BruteDP baseline and
// unsorted BTM. DP cells expanded are reported as a metric so the
// reduction is visible alongside the time.
func BenchmarkAblationEarlyAbandon(b *testing.B) {
	t := benchTraj(b, datagen.GeoLifeName)
	clipped := t.Clip(120)
	run := func(b *testing.B, f func() *core.Result) {
		var cells int64
		for i := 0; i < b.N; i++ {
			cells = f().Stats.DPCells
		}
		b.ReportMetric(float64(cells), "dp-cells")
	}
	b.Run("brutedp-abandon", func(b *testing.B) {
		run(b, func() *core.Result {
			res, err := core.BruteDP(clipped, 6, nil)
			sink(b, res, err)
			return res
		})
	})
	b.Run("brutedp-full", func(b *testing.B) {
		run(b, func() *core.Result {
			res, err := core.BruteDP(clipped, 6, &core.Options{DisableEarlyAbandon: true})
			sink(b, res, err)
			return res
		})
	})
	b.Run("btm-unsorted-abandon", func(b *testing.B) {
		run(b, func() *core.Result {
			res, err := core.BTM(t, benchXi, &core.Options{Unsorted: true})
			sink(b, res, err)
			return res
		})
	})
	b.Run("btm-unsorted-full", func(b *testing.B) {
		run(b, func() *core.Result {
			res, err := core.BTM(t, benchXi, &core.Options{Unsorted: true, DisableEarlyAbandon: true})
			sink(b, res, err)
			return res
		})
	})
}

// BenchmarkParallelBTM measures the block-synchronous parallel subset
// sweep at a size where the search dominates (n >= 1000): workers = 1
// against the full machine. Results — including pruning counters — are
// byte-identical across the two runs (TestParallelDeterminism); only
// wall-clock changes.
func BenchmarkParallelBTM(b *testing.B) {
	t, err := datagen.Dataset(datagen.GeoLifeName, datagen.Config{Seed: 42, N: 1000})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.BTM(t, 20, &core.Options{Workers: w})
				sink(b, res, err)
			}
		})
	}
}

// BenchmarkParallelGTM is the GTM counterpart: grid build, level scans,
// group-pair interval DFDs and the point-level sweep all shard across
// the same worker pool.
func BenchmarkParallelGTM(b *testing.B) {
	t, err := datagen.Dataset(datagen.GeoLifeName, datagen.Config{Seed: 42, N: 1000})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := group.GTM(t, 20, 32, &core.Options{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				sink(b, &res.Result, nil)
			}
		})
	}
}

// BenchmarkKernelCapped measures the fused capped kernel against the
// plain exact kernel at the same length: the cap is the kind of
// best-so-far bound k-NN holds, so the capped run abandons within a few
// rows.
func BenchmarkKernelCapped(b *testing.B) {
	t := benchTraj(b, datagen.GeoLifeName)
	x, y := t.Points[:200], t.Points[200:400]
	exact := dist.DFD(x, y, geo.Haversine)
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dist.DFD(x, y, geo.Haversine)
		}
	})
	b.Run("capped-tight", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dist.DFDCapped(x, y, geo.Haversine, exact/4)
		}
	})
	b.Run("decision", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dist.DFDDecision(x, y, geo.Haversine, exact/4)
		}
	})
}

// BenchmarkAblationDFDSpace compares the linear-space DFD inner loop with
// the full-matrix form (§5.5, Idea ii).
func BenchmarkAblationDFDSpace(b *testing.B) {
	t := benchTraj(b, datagen.GeoLifeName)
	x, y := t.Points[:200], t.Points[200:400]
	b.Run("linear-space", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dist.DFD(x, y, geo.Haversine)
		}
	})
	b.Run("full-matrix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dp := dist.DFDMatrix(x, y, geo.Haversine)
			_ = dp[len(x)-1][len(y)-1]
		}
	})
}

// BenchmarkExtensionTopK measures top-3 discovery relative to single-motif
// BTM (the k rounds share grid and bounds).
func BenchmarkExtensionTopK(b *testing.B) {
	t := benchTraj(b, datagen.BaboonName)
	b.Run("top1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.TopK(t, benchXi, 1, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("top3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.TopK(t, benchXi, 3, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtensionApproximate measures the pruning payoff of the (1+ε)
// guarantee.
func BenchmarkExtensionApproximate(b *testing.B) {
	t := benchTraj(b, datagen.TruckName)
	for _, eps := range []float64{0, 0.25, 1.0} {
		name := map[float64]string{0: "exact", 0.25: "eps0.25", 1.0: "eps1.0"}[eps]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.BTM(t, benchXi, &core.Options{Epsilon: eps})
				sink(b, res, err)
			}
		})
	}
}

// BenchmarkExtensionKNN measures k-NN search over a fleet with lower-bound
// pruning versus the brute-force scan.
func BenchmarkExtensionKNN(b *testing.B) {
	var fleet []*traj.Trajectory
	for seed := int64(1); seed <= 20; seed++ {
		tr, err := datagen.Dataset(datagen.TruckName, datagen.Config{Seed: seed, N: 150})
		if err != nil {
			b.Fatal(err)
		}
		fleet = append(fleet, tr)
	}
	query, _ := datagen.Dataset(datagen.TruckName, datagen.Config{Seed: 99, N: 150})
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := knn.Nearest(query, fleet, 3, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bruteforce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, tr := range fleet {
				dist.DFD(query.Points, tr.Points, geo.Haversine)
			}
		}
	})
}
