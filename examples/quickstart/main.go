// Quickstart: generate a small pedestrian trajectory, discover its motif
// (the most similar pair of non-overlapping subtrajectories under the
// discrete Fréchet distance), and print where and when it happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"trajmotif"
)

func main() {
	// A synthetic GeoLife-style trajectory: three days of a pedestrian's
	// commute with GPS noise, irregular sampling and dropouts.
	t, err := trajmotif.GenerateDataset(trajmotif.GeoLife, trajmotif.DatasetConfig{Seed: 7, N: 800})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trajectory: %d points", t.Len())
	if st, ok := t.Sampling(); ok {
		fmt.Printf(", sampling %v..%v (irregular=%v)", st.MinGap, st.MaxGap, st.Irregular)
	}
	fmt.Println()

	// ξ = 40: each motif leg must span more than 40 movement steps.
	res, err := trajmotif.Discover(t, 40, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("motif DFD: %.1f m\n", res.Distance)
	for _, leg := range []struct {
		name string
		span trajmotif.Span
	}{{"first leg ", res.A}, {"second leg", res.B}} {
		fmt.Printf("%s: samples %d..%d", leg.name, leg.span.Start, leg.span.End)
		if first, last, ok := t.TimeRange(leg.span); ok {
			fmt.Printf("  (%s -> %s)", first.Format("Mon 15:04:05"), last.Format("15:04:05"))
		}
		fmt.Println()
	}
	fmt.Printf("search: %d candidate subsets, %.1f%% pruned without a DFD computation\n",
		res.Stats.Subsets, 100*res.Stats.PruneRatio())
	fmt.Println("(the two legs are the same commute walked on different days)")
}
