// Commute analysis (the paper's Figures 1-2 scenario): discover a
// pedestrian's motif with DFD, compare it against the pair a plain
// Euclidean (lockstep) selector would pick, and show why DFD's choice
// matches human interpretation.
//
//	go run ./examples/commute
package main

import (
	"fmt"
	"log"
	"math"

	"trajmotif"
)

func main() {
	t, err := trajmotif.GenerateDataset(trajmotif.GeoLife, trajmotif.DatasetConfig{Seed: 21, N: 600})
	if err != nil {
		log.Fatal(err)
	}
	xi := 24

	// DFD motif: the pair of subtrajectories with the most similar
	// movement pattern.
	res, err := trajmotif.Discover(t, xi, nil)
	if err != nil {
		log.Fatal(err)
	}

	// ED "motif": best pair of equal-length windows by mean pointwise
	// distance — spatial proximity only, no movement-pattern awareness.
	win := xi + 2
	bestED := math.Inf(1)
	var edA, edB trajmotif.Span
	for i := 0; i+win-1 < t.Len(); i += 2 {
		for j := i + win; j+win-1 < t.Len(); j += 2 {
			var sum float64
			for k := 0; k < win; k++ {
				sum += trajmotif.Haversine(t.Points[i+k], t.Points[j+k])
			}
			if mean := sum / float64(win); mean < bestED {
				bestED = mean
				edA = trajmotif.Span{Start: i, End: i + win - 1}
				edB = trajmotif.Span{Start: j, End: j + win - 1}
			}
		}
	}
	edPairDFD := trajmotif.DFD(t.SubSpan(edA), t.SubSpan(edB), nil)

	fmt.Println("selector  pair                    ED(m)    DFD(m)")
	fmt.Printf("ED        %v/%v   %8.2f  %8.2f\n", edA, edB, bestED, edPairDFD)
	fmt.Printf("DFD       %v/%v        -  %8.2f\n", res.A, res.B, res.Distance)
	fmt.Println()
	fmt.Printf("the ED pair sits close in space but couples badly as a walk (DFD %.1fx larger);\n",
		edPairDFD/res.Distance)
	fmt.Println("the DFD motif is the same commute corridor re-walked — Figure 2's observation.")

	if first, last, ok := t.TimeRange(res.A); ok {
		fmt.Printf("leg A walked %s -> %s\n", first.Format("2006-01-02 15:04"), last.Format("15:04"))
	}
	if first, last, ok := t.TimeRange(res.B); ok {
		fmt.Printf("leg B walked %s -> %s\n", first.Format("2006-01-02 15:04"), last.Format("15:04"))
	}
}
