// Pattern mining beyond the single best motif (the paper's §7 future-work
// directions as working features): top-k disjoint motifs, (1+ε)-
// approximate discovery, subtrajectory clustering, and a similarity join
// over a small fleet — all on the wildlife workload.
//
//	go run ./examples/patterns
package main

import (
	"fmt"
	"log"
	"time"

	"trajmotif"
)

func main() {
	t, err := trajmotif.GenerateDataset(trajmotif.Baboon, trajmotif.DatasetConfig{Seed: 31, N: 700})
	if err != nil {
		log.Fatal(err)
	}
	xi := 25

	// 1. Top-k: the three best mutually disjoint motifs.
	fmt.Println("-- top-3 disjoint motifs --")
	motifs, err := trajmotif.TopK(t, xi, 3, nil)
	if err != nil {
		log.Fatal(err)
	}
	for rank, m := range motifs {
		fmt.Printf("#%d  DFD %6.1f m  %v / %v\n", rank+1, m.Distance, m.A, m.B)
	}

	// 2. Approximate discovery: trade a bounded slack for speed.
	fmt.Println("\n-- exact vs (1+ε)-approximate --")
	for _, eps := range []float64{0, 0.5} {
		start := time.Now()
		res, err := trajmotif.BTM(t, xi, &trajmotif.Options{Epsilon: eps})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ε=%.1f: DFD %.1f m, %d subsets expanded, %v\n",
			eps, res.Distance, res.Stats.SubsetsProcessed,
			time.Since(start).Round(time.Millisecond))
	}

	// 3. Subtrajectory clustering: habitual corridors as clusters.
	fmt.Println("\n-- subtrajectory clusters (window 30, radius 25 m) --")
	clusters, err := trajmotif.ClusterSubtrajectories(t, 30, 25, nil)
	if err != nil {
		log.Fatal(err)
	}
	for k, c := range clusters {
		if k == 3 {
			fmt.Printf("... and %d more clusters\n", len(clusters)-3)
			break
		}
		fmt.Printf("cluster %d: %d traverses of corridor %v\n", k+1, c.Size(), c.Representative)
	}

	// 4. Similarity join across a small troop of collars.
	fmt.Println("\n-- similarity join over 4 collar tracks (eps 500 m) --")
	var troop []*trajmotif.Trajectory
	for seed := int64(31); seed < 35; seed++ {
		tt, err := trajmotif.GenerateDataset(trajmotif.Baboon, trajmotif.DatasetConfig{Seed: seed, N: 300})
		if err != nil {
			log.Fatal(err)
		}
		troop = append(troop, tt)
	}
	pairs, st, err := trajmotif.SimilarityJoin(troop, 500, &trajmotif.JoinOptions{Exact: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pairs {
		fmt.Printf("tracks %d and %d within DFD %.0f m\n", p.I, p.J, p.Distance)
	}
	fmt.Printf("(%d candidate pairs: %d endpoint-pruned, %d box-pruned, %d DP-rejected, %d joined)\n",
		st.Pairs, st.EndpointPruned, st.BoxPruned, st.DecisionRejected, st.Reported)
}
