// Sampling robustness (the paper's Figure 3 and Table 1): demonstrate on
// a wildlife trajectory that DFD's ranking of similar subtrajectories
// survives non-uniform resampling while DTW's score is badly distorted,
// which is why the paper adopts DFD for real GPS data.
//
//	go run ./examples/sampling
package main

import (
	"fmt"
	"log"

	"trajmotif"
	"trajmotif/internal/dist"
	"trajmotif/internal/geo"
)

func main() {
	// A baboon's 1 Hz collar track: dense and uniform.
	t, err := trajmotif.GenerateDataset(trajmotif.Baboon, trajmotif.DatasetConfig{Seed: 5, N: 500})
	if err != nil {
		log.Fatal(err)
	}

	// Discover the motif first: its two legs are a genuinely re-walked
	// corridor, giving us a guaranteed true match to degrade.
	res, err := trajmotif.Discover(t, 25, nil)
	if err != nil {
		log.Fatal(err)
	}
	ref := t.SubSpan(res.A)
	trueMatchFull := t.SubSpan(res.B)
	fmt.Printf("motif: DFD %.1f m between %v and %v\n", res.Distance, res.A, res.B)

	// Degrade the second leg's sampling: keep every sample early on, then
	// only every 6th — the non-uniform rate of a failing GPS logger.
	var trueMatch []geo.Point
	for k, p := range trueMatchFull {
		if k < 10 || k%6 == 0 || k == len(trueMatchFull)-1 {
			trueMatch = append(trueMatch, p)
		}
	}

	// A decoy: the window of the same length whose start lies farthest
	// from the reference leg's start.
	win := res.A.Len()
	bestStart, bestDist := 0, 0.0
	for s := 0; s+win <= t.Len(); s++ {
		if d := trajmotif.Haversine(t.Points[s], ref[0]); d > bestDist {
			bestDist, bestStart = d, s
		}
	}
	other := t.Points[bestStart : bestStart+win]

	dfdTrue := dist.DFD(ref, trueMatch, geo.Haversine)
	dfdFull := dist.DFD(ref, trueMatchFull, geo.Haversine)
	dfdOther := dist.DFD(ref, other, geo.Haversine)
	dtwTrue := dist.DTW(ref, trueMatch, geo.Haversine)
	dtwFull := dist.DTW(ref, trueMatchFull, geo.Haversine)

	fmt.Println()
	fmt.Println("candidate                     DTW(m, summed)   DFD(m, bottleneck)")
	fmt.Printf("matching corridor, 1 Hz       %14.1f   %18.1f\n", dtwFull, dfdFull)
	fmt.Printf("matching corridor, degraded   %14.1f   %18.1f\n", dtwTrue, dfdTrue)
	fmt.Printf("farthest same-length window   %14s   %18.1f\n", "-", dfdOther)
	fmt.Println()

	fmt.Printf("degrading the sampling moved DFD by %.1f m but DTW by %.1f m:\n",
		abs(dfdTrue-dfdFull), abs(dtwTrue-dtwFull))
	fmt.Println("DTW sums matched-pair distances, so the sampling pattern dominates its score;")
	fmt.Println("DFD is a bottleneck measure and barely notices (Table 1, Figure 3).")
	if dfdTrue < dfdOther {
		fmt.Println("DFD still ranks the degraded true corridor far ahead of the decoy.")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
