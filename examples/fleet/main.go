// Fleet analysis (the paper's two-trajectory variant, Figure 21): two
// concrete trucks serve the same depot and construction sites; discover
// the pair of subtrajectories — one from each truck — with the most
// similar driving pattern, e.g. a shared delivery leg.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"time"

	"trajmotif"
)

func main() {
	truckA, truckB, err := trajmotif.GenerateDatasetPair(trajmotif.Truck,
		trajmotif.DatasetConfig{Seed: 99, N: 700})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("truck A: %d points, truck B: %d points (Athens metropolitan area)\n",
		truckA.Len(), truckB.Len())

	xi := 30
	start := time.Now()
	res, err := trajmotif.DiscoverBetween(truckA, truckB, xi, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared-route motif: DFD %.1f m, found in %v\n",
		res.Distance, time.Since(start).Round(time.Millisecond))
	fmt.Printf("truck A leg: samples %d..%d\n", res.A.Start, res.A.End)
	fmt.Printf("truck B leg: samples %d..%d\n", res.B.Start, res.B.End)

	// Compare against BTM (no grouping): identical answer, more work.
	btm, err := trajmotif.BTMBetween(truckA, truckB, xi, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BTM agrees: %.1f m; GTM expanded %d candidate subsets vs BTM's %d\n",
		btm.Distance, res.Stats.SubsetsProcessed, btm.Stats.SubsetsProcessed)

	// Operational use: flag how much of each route is shared corridor.
	fracA := float64(res.A.Len()) / float64(truckA.Len())
	fracB := float64(res.B.Len()) / float64(truckB.Len())
	fmt.Printf("shared corridor covers %.1f%% of truck A's log and %.1f%% of truck B's\n",
		100*fracA, 100*fracB)
}
