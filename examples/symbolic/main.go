// Symbolic pitfall (the paper's Figure 4): the symbolic motif-discovery
// approach maps trajectories to movement-pattern strings (V/H/L/R) and
// matches substrings — so the same street pattern driven in Beijing and
// in Shenzhen "matches" although the routes are ~1800 km apart. DFD-based
// discovery reports the true spatial distance.
//
//	go run ./examples/symbolic
package main

import (
	"fmt"
	"log"

	"trajmotif"
	"trajmotif/internal/geo"
	"trajmotif/internal/symbolic"
	"trajmotif/internal/traj"
)

// drive lays out the same R-V-L-H street pattern from a city center.
func drive(center trajmotif.Point) *trajmotif.Trajectory {
	legs := [][2]float64{
		{0, 400}, {400, 0}, // north, then east  -> R
		{0, 400}, {0, 400}, // straight north    -> V
		{0, 400}, {-400, 0}, // north, then west -> L
		{-400, 0}, {-400, 0}, // straight west   -> H
	}
	pts := []geo.Point{center}
	cur := center
	for _, leg := range legs {
		for k := 1; k <= 3; k++ {
			pts = append(pts, geo.Offset(cur, leg[0]*float64(k)/3, leg[1]*float64(k)/3))
		}
		cur = geo.Offset(cur, leg[0], leg[1])
	}
	return traj.FromPoints(pts)
}

func main() {
	beijing := drive(trajmotif.Point{Lat: 39.9042, Lng: 116.4074})
	shenzhen := drive(trajmotif.Point{Lat: 22.5431, Lng: 114.0579})

	sa, sb, same := symbolic.SameString(beijing, shenzhen, 6)
	fmt.Printf("Beijing route encodes to:  %s\n", sa)
	fmt.Printf("Shenzhen route encodes to: %s\n", sb)
	fmt.Printf("symbolic approach calls them a match: %v\n", same)

	d := trajmotif.DFD(beijing.Points, shenzhen.Points, nil)
	fmt.Printf("actual discrete Fréchet distance: %.0f km\n", d/1000)
	fmt.Println()

	// Within a single trajectory the symbolic pipeline does find repeated
	// patterns — but ranked by string, not by geography.
	combined := append(append([]geo.Point{}, beijing.Points...), shenzhen.Points...)
	ct := traj.FromPoints(combined)
	if pattern, a, b, ok := trajmotif.SymbolicDiscover(ct, 6); ok {
		symDFD := trajmotif.DFD(ct.SubSpan(a), ct.SubSpan(b), nil)
		fmt.Printf("symbolic motif on the concatenation: pattern %q at %v / %v\n", pattern, a, b)
		fmt.Printf("...whose true DFD is %.0f km — a spurious motif.\n", symDFD/1000)
	}

	res, err := trajmotif.BTM(ct, 8, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DFD motif on the same input: %.1f m at %v / %v — genuinely nearby subtrajectories.\n",
		res.Distance, res.A, res.B)
}
