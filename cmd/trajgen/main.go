// Command trajgen synthesizes evaluation workloads — the GeoLife-, Truck-
// and Wild-Baboon-style trajectories of the paper's §6.1 — and writes them
// as GeoLife .plt or CSV files for use with motiffind or external tools.
//
// Usage:
//
//	trajgen -dataset geolife -n 5000 -seed 7 -out walk.plt
//	trajgen -dataset truck -n 2000 -pair -out fleet.csv   # fleet.csv + fleet_2.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"trajmotif"
)

func main() {
	name := flag.String("dataset", "geolife", "dataset: geolife, truck, baboon")
	n := flag.Int("n", 5000, "number of points")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output file (.plt or .csv); required")
	pair := flag.Bool("pair", false, "also write a second, geography-sharing trajectory (suffix _2)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "trajgen: -out is required")
		flag.PrintDefaults()
		os.Exit(2)
	}
	cfg := trajmotif.DatasetConfig{Seed: *seed, N: *n}
	ds := trajmotif.DatasetName(*name)

	if *pair {
		a, b, err := trajmotif.GenerateDatasetPair(ds, cfg)
		fatal(err)
		fatal(trajmotif.WriteFile(*out, a))
		second := secondPath(*out)
		fatal(trajmotif.WriteFile(second, b))
		fmt.Printf("wrote %s and %s (%d points each, %s)\n", *out, second, *n, *name)
		return
	}
	t, err := trajmotif.GenerateDataset(ds, cfg)
	fatal(err)
	fatal(trajmotif.WriteFile(*out, t))
	fmt.Printf("wrote %s (%d points, %s)\n", *out, *n, *name)
}

func secondPath(path string) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "_2" + ext
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "trajgen: %v\n", err)
		os.Exit(1)
	}
}
