package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"trajmotif"
)

// restartProc is one run of the motifserve binary for the restart smoke
// test: the process, its base URL, and the stdout scanner (kept so the
// shutdown lines can be read after SIGTERM).
type restartProc struct {
	cmd  *exec.Cmd
	base string
	sc   *bufio.Scanner
}

// startMotifserve launches bin with args, waits for the listen line
// (skipping the restore line a warm boot prints first) and for /healthz.
func startMotifserve(t *testing.T, bin string, args ...string) *restartProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	addr := ""
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, "listening on") {
			addr = line[strings.LastIndex(line, " ")+1:]
			break
		}
	}
	if addr == "" {
		t.Fatalf("no listen line: %v", sc.Err())
	}
	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became healthy: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	return &restartProc{cmd: cmd, base: base, sc: sc}
}

// stop SIGTERMs the process, drains stdout and waits for a clean exit,
// returning the post-signal output (drain/snapshot/stop lines).
func (p *restartProc) stop(t *testing.T) string {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	for p.sc.Scan() {
		out.WriteString(p.sc.Text() + "\n")
	}
	if err := p.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM exit: %v (output: %s)", err, out.String())
	}
	return out.String()
}

func (p *restartProc) post(t *testing.T, path string, body, out any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(p.base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("POST %s: decode: %v", path, err)
	}
}

func (p *restartProc) get(t *testing.T, path string, out any) {
	t.Helper()
	resp, err := http.Get(p.base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
}

// TestRestartSmokeBinary is the end-to-end restart drill behind `make
// restart-smoke`: run the real binary with a persistent artifact tier
// and registry snapshotting, upload + discover, SIGTERM, restart against
// the same directory, and prove the warm process answers the same
// discover byte-for-byte from disk — registry restored without
// re-upload, zero grids rebuilt, every artifact promoted from the disk
// tier. Runs with -shards 2 so the drill covers the sharded coordinator
// path too.
func TestRestartSmokeBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs a binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "motifserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}

	artDir := filepath.Join(t.TempDir(), "artifacts")
	args := []string{
		"-addr", "127.0.0.1:0", "-workers", "1",
		"-artifact-dir", artDir, "-snapshot-on-shutdown", "-shards", "2",
	}

	type motif struct {
		A, B struct {
			Start int `json:"start"`
			End   int `json:"end"`
		}
		Distance float64 `json:"distance"`
		Stats    struct {
			DPCells          int64 `json:"dpCells"`
			SubsetsProcessed int64 `json:"subsetsProcessed"`
		} `json:"stats"`
	}
	type stats struct {
		Trajectories int   `json:"trajectories"`
		Built        int64 `json:"built"`
		Reused       int64 `json:"reused"`
		DiskWrites   int64 `json:"diskWrites"`
		DiskReads    int64 `json:"diskReads"`
		DiskErrors   int64 `json:"diskErrors"`
		Shards       int   `json:"shards"`
	}

	// Cold run: upload, discover, shut down with a snapshot.
	p1 := startMotifserve(t, bin, args...)
	tr, err := trajmotif.GenerateDataset(trajmotif.GeoLife, trajmotif.DatasetConfig{Seed: 42, N: 300})
	if err != nil {
		t.Fatal(err)
	}
	points := make([][2]float64, tr.Len())
	for k, p := range tr.Points {
		points[k] = [2]float64{p.Lat, p.Lng}
	}
	var up struct {
		ID string `json:"id"`
	}
	p1.post(t, "/trajectories", map[string]any{"points": points}, &up)

	req := map[string]any{"id": up.ID, "xi": 10}
	var cold motif
	p1.post(t, "/discover", req, &cold)
	var coldStats stats
	p1.get(t, "/stats", &coldStats)
	if coldStats.DiskWrites == 0 {
		t.Fatalf("cold run spilled nothing to disk: %+v", coldStats)
	}
	if coldStats.Shards != 2 {
		t.Fatalf("shards = %d, want 2", coldStats.Shards)
	}
	out := p1.stop(t)
	if !strings.Contains(out, "motifserve snapshotted 1 trajectories") {
		t.Fatalf("shutdown output missing snapshot line: %s", out)
	}

	// Warm run: same directory, no re-upload.
	p2 := startMotifserve(t, bin, args...)
	var warmBoot stats
	p2.get(t, "/stats", &warmBoot)
	if warmBoot.Trajectories != 1 {
		t.Fatalf("restart restored %d trajectories, want 1", warmBoot.Trajectories)
	}
	var warm motif
	p2.post(t, "/discover", req, &warm)
	var warmStats stats
	p2.get(t, "/stats", &warmStats)

	if warm != cold {
		t.Errorf("warm /discover differs from cold: %+v vs %+v", warm, cold)
	}
	if warmStats.Built != 0 {
		t.Errorf("warm /discover rebuilt %d artifacts, want 0", warmStats.Built)
	}
	if warmStats.DiskReads == 0 {
		t.Error("warm /discover promoted nothing from disk")
	}
	if warmStats.Reused == 0 {
		t.Error("warm /discover reused no artifacts")
	}
	if warmStats.DiskErrors != 0 {
		t.Errorf("disk tier reported %d errors", warmStats.DiskErrors)
	}
	t.Logf("restart-smoke: motif %.2fm; warm run built %d, reused %d, diskReads %d",
		warm.Distance, warmStats.Built, warmStats.Reused, warmStats.DiskReads)
}
