package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"trajmotif"
)

// TestServeSmokeBinary is the end-to-end smoke test behind `make
// serve-smoke`: build the real motifserve binary, start it on a free
// port, upload a generated trajectory, and assert that the second
// identical /discover request reports the reuse (gridRebuildsAvoided)
// while the server-wide artifact build counter stays flat — zero new
// grids.
func TestServeSmokeBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs a binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "motifserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})

	// The binary prints "motifserve listening on <addr>" once bound.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no listen line: %v", sc.Err())
	}
	line := sc.Text()
	addr := line[strings.LastIndex(line, " ")+1:]
	base := "http://" + addr

	post := func(path string, body, out any) {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var e struct {
				Error string `json:"error"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&e)
			t.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, e.Error)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", path, err)
		}
	}
	get := func(path string, out any) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}

	// Wait for /healthz (the listen line already implies readiness, but be
	// robust against a slow first accept).
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became healthy: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Upload a generated trajectory.
	tr, err := trajmotif.GenerateDataset(trajmotif.GeoLife, trajmotif.DatasetConfig{Seed: 42, N: 300})
	if err != nil {
		t.Fatal(err)
	}
	points := make([][2]float64, tr.Len())
	for k, p := range tr.Points {
		points[k] = [2]float64{p.Lat, p.Lng}
	}
	var up struct {
		ID string `json:"id"`
		N  int    `json:"n"`
	}
	post("/trajectories", map[string]any{"points": points}, &up)
	if up.N != tr.Len() {
		t.Fatalf("upload echoed %d points", up.N)
	}

	type motif struct {
		A, B struct {
			Start int `json:"start"`
			End   int `json:"end"`
		}
		Distance float64 `json:"distance"`
		Stats    struct {
			GridRebuildsAvoided int64 `json:"gridRebuildsAvoided"`
			DPCells             int64 `json:"dpCells"`
		} `json:"stats"`
	}
	type stats struct {
		Built  int64 `json:"built"`
		Reused int64 `json:"reused"`
	}

	req := map[string]any{"id": up.ID, "xi": 10}
	var first motif
	post("/discover", req, &first)
	var afterFirst stats
	get("/stats", &afterFirst)

	var second motif
	post("/discover", req, &second)
	var afterSecond stats
	get("/stats", &afterSecond)

	if second.Stats.GridRebuildsAvoided == 0 {
		t.Error("second /discover reported no grid reuse")
	}
	if afterSecond.Built != afterFirst.Built {
		t.Errorf("second /discover built %d new artifacts, want 0", afterSecond.Built-afterFirst.Built)
	}
	if afterSecond.Reused <= afterFirst.Reused {
		t.Errorf("reuse counter did not advance: %d -> %d", afterFirst.Reused, afterSecond.Reused)
	}
	if first.Distance != second.Distance || first.A != second.A || first.B != second.B ||
		first.Stats.DPCells != second.Stats.DPCells {
		t.Errorf("cached /discover differs: %+v vs %+v", first, second)
	}
	fmt.Printf("serve-smoke: motif %.2fm, second request avoided %d rebuilds (store built %d, reused %d)\n",
		second.Distance, second.Stats.GridRebuildsAvoided, afterSecond.Built, afterSecond.Reused)

	// The binary exposes Prometheus text metrics that reflect the
	// traffic above.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var sb bytes.Buffer
	if _, err := sb.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	metricsText := sb.String()
	for _, want := range []string{
		`motifserve_requests_total{endpoint="/discover",code="200"} 2`,
		"motifserve_trajectories 1",
		"# TYPE motifserve_request_duration_seconds histogram",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServeGracefulShutdown builds the binary, signals it with SIGTERM
// and asserts the drain path runs to a clean exit.
func TestServeGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs a binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "motifserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-shutdown-grace", "5s")
	var out bytes.Buffer
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no listen line: %v", sc.Err())
	}
	line := sc.Text()
	addr := line[strings.LastIndex(line, " ")+1:]

	// Make sure the server accepts before signalling.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became healthy: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for sc.Scan() {
		out.WriteString(sc.Text() + "\n")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM exit: %v (output: %s)", err, out.String())
	}
	for _, want := range []string{"motifserve draining", "motifserve stopped"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("shutdown output missing %q: %s", want, out.String())
		}
	}
}
