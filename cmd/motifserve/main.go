// Command motifserve runs the long-running motif server: a JSON-over-
// HTTP front end for motif discovery, top-k, k-NN, similarity join and
// clustering, backed by a trajectory store that memoizes ground-distance
// grids and bound tables so repeated queries skip precomputation.
//
// Usage:
//
//	motifserve -addr :8080
//	motifserve -addr 127.0.0.1:0 -cache-bytes 1073741824 -workers 4
//	motifserve -max-trajectories 10000 -traj-ttl 1h -max-concurrent 8
//	motifserve -artifact-dir /var/lib/motifserve -snapshot-on-shutdown -shards 4
//
// Endpoints (all JSON; see the README's "Serve mode" section):
//
//	POST /trajectories  {"points": [[lat,lng],...], "times": [unix...]}
//	POST /discover      {"id": "...", "xi": 100}
//	POST /discover/pairs, /topk, /knn, /join, /cluster
//	GET  /healthz, /stats, /metrics
//
// The listen line "motifserve listening on <host:port>" is printed once
// the socket is bound, so wrappers can pass port 0 and scrape the
// assigned port. SIGINT/SIGTERM drain in-flight requests for up to
// -shutdown-grace before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"trajmotif"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	cacheBytes := flag.Int64("cache-bytes", trajmotif.DefaultCacheBytes, "artifact cache budget in bytes (negative disables caching)")
	workers := flag.Int("workers", 0, "default within-search workers for requests that don't specify one; 0 = GOMAXPROCS")
	maxBody := flag.Int64("max-body-bytes", 0, "request body cap in bytes; 0 = 64 MiB default, negative disables the cap")
	maxTraj := flag.Int("max-trajectories", 0, "registry capacity; least-recently-used trajectories are evicted beyond it (0 = unbounded)")
	trajTTL := flag.Duration("traj-ttl", 0, "idle trajectory lifetime; expired entries are evicted on the next registry access (0 = no expiry)")
	maxConc := flag.Int("max-concurrent", 0, "global cap on in-flight search workers; 0 = GOMAXPROCS, negative disables admission control")
	maxQueued := flag.Int("max-queued", 0, "search requests allowed to wait for admission; 0 = 4x capacity (floor 16), negative disables queueing")
	queueWait := flag.Duration("queue-wait", 0, "longest a queued search waits before 429; 0 = 5s default, negative rejects immediately when no slot is free")
	artifactDir := flag.String("artifact-dir", "", "directory for the persistent artifact tier; evicted grids spill to disk and warm restarts promote them back (empty disables)")
	snapshotOnShutdown := flag.Bool("snapshot-on-shutdown", false, "write the trajectory registry to <artifact-dir>/registry.snap on graceful shutdown and restore it at boot (requires -artifact-dir)")
	shards := flag.Int("shards", 1, "in-process store shards; trajectories hash-partition across them and results stay byte-identical to 1 shard")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout")
	readTimeout := flag.Duration("read-timeout", 2*time.Minute, "http.Server ReadTimeout (covers large bulk uploads)")
	writeTimeout := flag.Duration("write-timeout", 5*time.Minute, "http.Server WriteTimeout (covers cold full-corpus joins)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
	shutdownGrace := flag.Duration("shutdown-grace", 15*time.Second, "how long SIGINT/SIGTERM waits for in-flight requests before forcing exit")
	flag.Parse()

	// Fail fast on an unusable artifact directory: the store itself
	// degrades gracefully (counting diskErrors), but an operator who
	// asked for persistence wants a hard error at boot, not silent
	// RAM-only serving.
	if *artifactDir != "" {
		if err := os.MkdirAll(*artifactDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "motifserve: -artifact-dir: %v\n", err)
			os.Exit(1)
		}
		probe, err := os.CreateTemp(*artifactDir, ".probe-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "motifserve: -artifact-dir not writable: %v\n", err)
			os.Exit(1)
		}
		probe.Close()
		os.Remove(probe.Name())
	}
	if *snapshotOnShutdown && *artifactDir == "" {
		fmt.Fprintln(os.Stderr, "motifserve: -snapshot-on-shutdown requires -artifact-dir")
		os.Exit(1)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "motifserve: -shards must be >= 1, got %d\n", *shards)
		os.Exit(1)
	}

	stOpt := &trajmotif.StoreOptions{
		CacheBytes:      *cacheBytes,
		MaxTrajectories: *maxTraj,
		TrajectoryTTL:   *trajTTL,
		ArtifactDir:     *artifactDir,
	}
	var backend trajmotif.ServeBackend
	if *shards > 1 {
		sh, err := trajmotif.NewShardedStore(*shards, stOpt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "motifserve: %v\n", err)
			os.Exit(1)
		}
		backend = sh
	} else {
		backend = trajmotif.NewStore(stOpt)
	}

	snapPath := ""
	if *artifactDir != "" {
		snapPath = filepath.Join(*artifactDir, "registry.snap")
		if n, err := backend.(snapshotter).Restore(snapPath); err != nil {
			fmt.Fprintf(os.Stderr, "motifserve: restore %s: %v\n", snapPath, err)
			os.Exit(1)
		} else if n > 0 {
			fmt.Printf("motifserve restored %d trajectories from %s\n", n, snapPath)
		}
	}

	srv := trajmotif.NewServerWith(backend, &trajmotif.ServerOptions{
		Workers:               *workers,
		MaxBodyBytes:          *maxBody,
		MaxConcurrentSearches: *maxConc,
		MaxQueuedSearches:     *maxQueued,
		QueueWait:             *queueWait,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "motifserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("motifserve listening on %s\n", ln.Addr())

	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "motifserve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills immediately
		fmt.Println("motifserve draining")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "motifserve: shutdown: %v\n", err)
			os.Exit(1)
		}
		if *snapshotOnShutdown {
			if n, err := backend.(snapshotter).Snapshot(snapPath); err != nil {
				fmt.Fprintf(os.Stderr, "motifserve: snapshot %s: %v\n", snapPath, err)
				os.Exit(1)
			} else {
				fmt.Printf("motifserve snapshotted %d trajectories to %s\n", n, snapPath)
			}
		}
		fmt.Println("motifserve stopped")
	}
}

// snapshotter is the registry persistence surface shared by *Store and
// *ShardedStore (both always implement it; the assertion documents the
// dependency rather than guarding a real failure path).
type snapshotter interface {
	Snapshot(path string) (int, error)
	Restore(path string) (int, error)
}
