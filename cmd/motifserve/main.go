// Command motifserve runs the long-running motif server: a JSON-over-
// HTTP front end for motif discovery, top-k, k-NN, similarity join and
// clustering, backed by a trajectory store that memoizes ground-distance
// grids and bound tables so repeated queries skip precomputation.
//
// Usage:
//
//	motifserve -addr :8080
//	motifserve -addr 127.0.0.1:0 -cache-bytes 1073741824 -workers 4
//
// Endpoints (all JSON; see the README's "Serve mode" section):
//
//	POST /trajectories  {"points": [[lat,lng],...], "times": [unix...]}
//	POST /discover      {"id": "...", "xi": 100}
//	POST /discover/pairs, /topk, /knn, /join, /cluster
//	GET  /healthz, /stats
//
// The listen line "motifserve listening on <host:port>" is printed once
// the socket is bound, so wrappers can pass port 0 and scrape the
// assigned port.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"trajmotif"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	cacheBytes := flag.Int64("cache-bytes", trajmotif.DefaultCacheBytes, "artifact cache budget in bytes (negative disables caching)")
	workers := flag.Int("workers", 0, "default within-search workers for requests that don't specify one; 0 = GOMAXPROCS")
	maxBody := flag.Int64("max-body-bytes", 0, "request body cap in bytes; 0 = 64 MiB default, negative disables the cap")
	flag.Parse()

	st := trajmotif.NewStore(&trajmotif.StoreOptions{CacheBytes: *cacheBytes})
	srv := trajmotif.NewServer(st, &trajmotif.ServerOptions{Workers: *workers, MaxBodyBytes: *maxBody})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "motifserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("motifserve listening on %s\n", ln.Addr())
	if err := http.Serve(ln, srv); err != nil {
		fmt.Fprintf(os.Stderr, "motifserve: %v\n", err)
		os.Exit(1)
	}
}
