package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadSmokeBinary is the end-to-end harness behind `make
// load-smoke`: build the real motifload binary and run it self-hosted
// (which also builds the server stack into the binary), asserting a
// clean exit and the invariant summary. The binary itself enforces the
// hardening invariants — zero 5xx, bounded registry, LRU churn
// observed, /metrics parseable — so a non-zero exit is the failure.
func TestLoadSmokeBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs a binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "motifload")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}

	cmd := exec.Command(bin, "-n", "300", "-c", "6", "-seed", "3")
	var out, errOut bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errOut
	if err := cmd.Run(); err != nil {
		t.Fatalf("motifload failed: %v\nstdout: %s\nstderr: %s", err, out.String(), errOut.String())
	}
	text := out.String()
	for _, want := range []string{"motifload self-hosting", "evictedLRU=", "motifload ok"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	t.Logf("\n%s", text)
}
