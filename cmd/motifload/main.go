// Command motifload replays a mixed read/write workload against a
// motifserve endpoint and fails (exit 1) if any production-hardening
// invariant breaks: a 5xx response, a transport error, an unparseable
// /metrics exposition, a per-endpoint latency percentile above its
// ceiling (-max-p50/-max-p95/-max-p99; p99 defaults to 10s), or — when
// the registry cap is known — a registry that outgrew it.
//
// Usage:
//
//	motifload -addr http://127.0.0.1:8080 -n 400 -c 8
//	motifload -n 400 -c 8            # no -addr: self-hosts a capped server
//
// Without -addr the command starts an in-process motifserve with a
// deliberately tight registry cap and admission limit, so the run
// exercises eviction and load-shedding end to end; in that mode it
// additionally requires that LRU eviction actually happened. This is
// the `make load-smoke` entry point.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"trajmotif"
	"trajmotif/internal/loadgen"
)

func main() {
	addr := flag.String("addr", "", "server base URL (e.g. http://127.0.0.1:8080); empty self-hosts a capped in-process server")
	n := flag.Int("n", 400, "total requests across all workers")
	c := flag.Int("c", 8, "concurrent client workers")
	seed := flag.Int64("seed", 1, "workload seed (same seed = same op sequence)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	maxTraj := flag.Int("max-trajectories", 24, "self-host mode: registry cap to prove bounded (0 = unbounded; ignored with -addr)")
	maxConc := flag.Int("max-concurrent", 2, "self-host mode: admission capacity (ignored with -addr)")
	maxP50 := flag.Duration("max-p50", 0, "per-endpoint p50 latency ceiling (0 disables)")
	maxP95 := flag.Duration("max-p95", 0, "per-endpoint p95 latency ceiling (0 disables)")
	maxP99 := flag.Duration("max-p99", 10*time.Second, "per-endpoint p99 latency ceiling (0 disables)")
	flag.Parse()

	base := *addr
	knownCap := 0
	selfHosted := base == ""
	if selfHosted {
		st := trajmotif.NewStore(&trajmotif.StoreOptions{MaxTrajectories: *maxTraj})
		srv := trajmotif.NewServer(st, &trajmotif.ServerOptions{
			Workers:               1,
			MaxConcurrentSearches: *maxConc,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "motifload: %v\n", err)
			os.Exit(1)
		}
		go func() { _ = http.Serve(ln, srv) }()
		base = "http://" + ln.Addr().String()
		knownCap = *maxTraj
		fmt.Printf("motifload self-hosting on %s (max-trajectories %d, max-concurrent %d)\n",
			base, *maxTraj, *maxConc)
	}

	rep, err := loadgen.Run(loadgen.Config{
		BaseURL:     base,
		Concurrency: *c,
		Requests:    *n,
		Seed:        *seed,
		Timeout:     *timeout,
		MaxP50:      *maxP50,
		MaxP95:      *maxP95,
		MaxP99:      *maxP99,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "motifload: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(rep)

	if err := rep.Check(knownCap); err != nil {
		fmt.Fprintf(os.Stderr, "motifload: invariant violated: %v\n", err)
		os.Exit(1)
	}
	if selfHosted && knownCap > 0 && rep.EvictedLRU == 0 {
		fmt.Fprintln(os.Stderr, "motifload: invariant violated: capped self-hosted run saw no LRU evictions")
		os.Exit(1)
	}
	fmt.Println("motifload ok")
}
