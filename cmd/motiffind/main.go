// Command motiffind discovers the motif — the most similar pair of
// non-overlapping subtrajectories under the discrete Fréchet distance —
// in one trajectory file, or between two.
//
// Usage:
//
//	motiffind -xi 100 walk.plt
//	motiffind -xi 100 -algo btm day1.csv day2.csv
//	motiffind -xi 50 -algo gtmstar -tau 64 -stats big.plt
//	motiffind -xi 100 -workers 8 big.plt   # shard the search over 8 cores
//	motiffind -xi 100 -algo gtm,btm,brutedp -cache -stats walk.plt
//	motiffind -xi 20 -corpus /data/geolife  # every trajectory under a dir
//	motiffind -xi 20 -corpus /data/geolife -pairs -max-dist 500
//
// -corpus streams a whole directory tree (.plt, .csv, .ndjson) through
// GTM discovery with bounded memory: trajectories are read one at a time
// and released as soon as their search finishes, so corpora far larger
// than RAM work. Unreadable files are reported and skipped.
//
// -pairs switches corpus mode to cross-trajectory discovery: every
// unordered pair (or each trajectory against the -window preceding it)
// is searched for the best shared motif. -max-dist keeps only pairs
// whose motif is within the given meters and lets the spatial MBR
// prefilter skip pairs provably out of range before any search runs —
// output is identical either way, only the work changes.
//
// -algo accepts a comma-separated list; with -cache the queries share one
// artifact store, so every algorithm after the first reuses the ground-
// distance grid and bound tables instead of recomputing them (visible in
// -stats as "grids reused").
//
// -float32 halves ground-distance grid memory by storing grids in
// float32; results are then float32-exact (deterministic, within one
// part in 2^24 of the float64 answer) instead of float64-exact.
//
// Input files may be GeoLife .plt or CSV ("lat,lng[,unix]").
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"trajmotif"
)

func main() {
	xi := flag.Int("xi", 100, "minimum motif length ξ (each leg spans > ξ steps)")
	algo := flag.String("algo", "gtm", "algorithm, or comma-separated list: brutedp, btm, gtm, gtmstar")
	tau := flag.Int("tau", trajmotif.DefaultTau, "initial group size for gtm/gtmstar")
	stats := flag.Bool("stats", false, "print search statistics")
	topk := flag.Int("k", 1, "report the k best mutually disjoint motifs (single trajectory, k>1 uses the BTM engine)")
	epsilon := flag.Float64("epsilon", 0, "approximation slack: result within (1+ε) of optimal; 0 is exact")
	workers := flag.Int("workers", 0, "parallel workers within the search; 0 = GOMAXPROCS (results are identical for any count). With -corpus it bounds concurrent single-worker trajectory searches instead (total concurrency; 1 = serial)")
	cache := flag.Bool("cache", false, "share one artifact store across this invocation's queries (several -algo entries, or -k rounds), reusing grids instead of rebuilding them")
	f32 := flag.Bool("float32", false, "store ground-distance grids in float32: half the grid memory, results float32-exact instead of float64-exact")
	geoOut := flag.String("geojson", "", "write the trajectory with highlighted motif legs to this GeoJSON file")
	corpus := flag.String("corpus", "", "discover motifs in every trajectory under this directory (streamed; replaces the positional file arguments)")
	pairs := flag.Bool("pairs", false, "with -corpus: discover cross-trajectory motifs over unordered pairs instead of per-trajectory motifs")
	window := flag.Int("window", 0, "with -pairs: pair each trajectory only with the window-1 preceding it (0 pairs everything)")
	maxDist := flag.Float64("max-dist", 0, "with -pairs: report only pairs whose motif DFD is within this many meters, pruning provably out-of-range pairs via the spatial MBR index (0 disables)")
	flag.Parse()

	args := flag.Args()
	if *corpus != "" {
		if len(args) != 0 {
			fmt.Fprintln(os.Stderr, "motiffind: -corpus replaces the positional file arguments")
			os.Exit(2)
		}
		// Corpus mode is GTM-per-trajectory only; reject flags it would
		// otherwise silently ignore rather than let the user believe a
		// different algorithm or cache configuration ran.
		if *algo != "gtm" || *topk > 1 || *epsilon != 0 || *cache || *f32 || *geoOut != "" {
			fmt.Fprintln(os.Stderr, "motiffind: -corpus supports only -xi, -tau, -workers and -stats (not -algo, -k, -epsilon, -cache, -float32, -geojson)")
			os.Exit(2)
		}
		if *pairs {
			runCorpusPairs(*corpus, *xi, *tau, *window, *workers, *maxDist, *stats)
		} else {
			if *window != 0 || *maxDist != 0 {
				fmt.Fprintln(os.Stderr, "motiffind: -window and -max-dist require -pairs")
				os.Exit(2)
			}
			runCorpus(*corpus, *xi, *tau, *workers, *stats)
		}
		return
	}
	if *pairs || *window != 0 || *maxDist != 0 {
		fmt.Fprintln(os.Stderr, "motiffind: -pairs, -window and -max-dist require -corpus")
		os.Exit(2)
	}
	if len(args) < 1 || len(args) > 2 {
		fmt.Fprintln(os.Stderr, "usage: motiffind [flags] trajectory.(plt|csv) [second.(plt|csv)]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	t, err := trajmotif.ReadFile(args[0])
	fatal(err)
	var u *trajmotif.Trajectory
	if len(args) == 2 {
		u, err = trajmotif.ReadFile(args[1])
		fatal(err)
	}

	opt := &trajmotif.Options{Epsilon: *epsilon, Workers: *workers, Float32Grids: *f32}
	if *cache {
		opt.Artifacts = trajmotif.NewStore(nil)
	}

	if *topk > 1 {
		var results []trajmotif.Result
		start := time.Now()
		if u == nil {
			results, err = trajmotif.TopK(t, *xi, *topk, opt)
		} else {
			results, err = trajmotif.TopKBetween(t, u, *xi, *topk, opt)
		}
		fatal(err)
		for rank, res := range results {
			fmt.Printf("#%d  DFD %.2f m  legs %v / %v\n", rank+1, res.Distance, res.A, res.B)
		}
		fmt.Printf("found %d disjoint motifs in %v\n", len(results), time.Since(start).Round(time.Millisecond))
		return
	}

	algos := strings.Split(*algo, ",")
	var last *trajmotif.Result
	for _, name := range algos {
		res := runAlgo(strings.TrimSpace(name), t, u, *xi, *tau, opt, *stats, len(algos) > 1)
		last = res
	}

	if *geoOut != "" && u == nil && last != nil {
		f, err := os.Create(*geoOut)
		fatal(err)
		fatal(trajmotif.WriteGeoJSON(f, t, last))
		fatal(f.Close())
		fmt.Printf("wrote %s (view it in any GeoJSON map tool)\n", *geoOut)
	}
}

// runCorpus streams a directory through batch discovery. -workers sizes
// the across-trajectory pool (each search stays single-worker), so it
// bounds total concurrency, and at most a pool's worth of trajectories
// is ever resident.
func runCorpus(dir string, xi, tau, workers int, stats bool) {
	src, err := trajmotif.OpenCorpus(dir, nil)
	fatal(err)
	start := time.Now()
	items, err := trajmotif.DiscoverStream(src, xi, &trajmotif.BatchOptions{
		Tau:     tau,
		Workers: workers,
	})
	fatal(err)
	paths := src.Paths()
	found := 0
	for _, it := range items {
		if it.Err != nil {
			fmt.Printf("%s: %v\n", paths[it.Index], it.Err)
			continue
		}
		found++
		fmt.Printf("%s: DFD %.2f m, legs %v / %v", paths[it.Index], it.Result.Distance, it.Result.A, it.Result.B)
		if stats {
			s := it.Result.Stats
			fmt.Printf("  (n=%d, DP cells %d, pruned %.2f%%)", s.N, s.DPCells, 100*s.PruneRatio())
		}
		fmt.Println()
	}
	for _, fe := range src.Errs() {
		fmt.Fprintf(os.Stderr, "motiffind: skipped %v\n", fe)
	}
	fmt.Printf("%d/%d trajectories with motifs in %v (%d read errors)\n",
		found, len(items), time.Since(start).Round(time.Millisecond), len(src.Errs()))
}

// runCorpusPairs streams a directory through all-pairs cross-trajectory
// discovery. A positive maxDist turns on the spatial MBR prefilter:
// pairs whose boxes are provably farther apart than the cutoff are
// skipped before any DP runs, with identical output to the full sweep.
func runCorpusPairs(dir string, xi, tau, window, workers int, maxDist float64, stats bool) {
	src, err := trajmotif.OpenCorpus(dir, nil)
	fatal(err)
	var ixs trajmotif.BatchIndexStats
	opt := &trajmotif.BatchOptions{
		Tau:         tau,
		Workers:     workers,
		MaxDistance: maxDist,
		IndexStats:  &ixs,
	}
	if maxDist > 0 {
		opt.SpatialPrefilter = true
	}
	start := time.Now()
	items, err := trajmotif.DiscoverAllPairsStream(src, xi, window, opt)
	fatal(err)
	paths := src.Paths()
	found := 0
	for _, it := range items {
		if it.Err != nil {
			fmt.Printf("%s <> %s: %v\n", paths[it.I], paths[it.J], it.Err)
			continue
		}
		found++
		fmt.Printf("%s <> %s: DFD %.2f m, legs %v / %v", paths[it.I], paths[it.J],
			it.Result.Distance, it.Result.A, it.Result.B)
		if stats {
			s := it.Result.Stats
			fmt.Printf("  (DP cells %d, pruned %.2f%%)", s.DPCells, 100*s.PruneRatio())
		}
		fmt.Println()
	}
	for _, fe := range src.Errs() {
		fmt.Fprintf(os.Stderr, "motiffind: skipped %v\n", fe)
	}
	fmt.Printf("%d/%d pairs with motifs in %v (%d read errors)\n",
		found, len(items), time.Since(start).Round(time.Millisecond), len(src.Errs()))
	if maxDist > 0 {
		fmt.Printf("spatial prefilter: %d/%d pairs pruned before search\n", ixs.Pruned, ixs.Consulted)
	}
}

// runAlgo executes one algorithm of the -algo list and prints its report.
func runAlgo(algo string, t, u *trajmotif.Trajectory, xi, tau int, opt *trajmotif.Options, stats, multi bool) *trajmotif.Result {
	start := time.Now()
	var res *trajmotif.Result
	var err error
	switch algo {
	case "brutedp":
		if u == nil {
			res, err = trajmotif.BruteDP(t, xi, opt)
		} else {
			res, err = trajmotif.BruteDPBetween(t, u, xi, opt)
		}
	case "btm":
		if u == nil {
			res, err = trajmotif.BTM(t, xi, opt)
		} else {
			res, err = trajmotif.BTMBetween(t, u, xi, opt)
		}
	case "gtm", "gtmstar":
		var gr *trajmotif.GroupResult
		switch {
		case algo == "gtm" && u == nil:
			gr, err = trajmotif.GTM(t, xi, tau, opt)
		case algo == "gtm":
			gr, err = trajmotif.GTMBetween(t, u, xi, tau, opt)
		case u == nil:
			gr, err = trajmotif.GTMStar(t, xi, tau, opt)
		default:
			gr, err = trajmotif.GTMStarBetween(t, u, xi, tau, opt)
		}
		if gr != nil {
			res = &gr.Result
		}
	default:
		fmt.Fprintf(os.Stderr, "motiffind: unknown algorithm %q\n", algo)
		os.Exit(2)
	}
	fatal(err)
	elapsed := time.Since(start)

	if multi {
		fmt.Printf("--- %s ---\n", algo)
	}
	fmt.Printf("motif distance: %.2f m (discrete Fréchet)\n", res.Distance)
	describeLeg("leg A", t, res.A)
	if u == nil {
		describeLeg("leg B", t, res.B)
	} else {
		describeLeg("leg B", u, res.B)
	}
	fmt.Printf("found in %v with %s\n", elapsed.Round(time.Millisecond), algo)
	if stats {
		s := res.Stats
		fmt.Printf("candidate subsets: %d, processed: %d (pruned %.2f%%), abandoned mid-DP: %d, DP cells: %d, grids reused: %d, ~%.1f MB\n",
			s.Subsets, s.SubsetsProcessed, 100*s.PruneRatio(), s.SubsetsAbandoned, s.DPCells,
			s.GridRebuildsAvoided, float64(s.PeakBytes)/(1<<20))
	}
	return res
}

func describeLeg(label string, t *trajmotif.Trajectory, sp trajmotif.Span) {
	fmt.Printf("%s: points %d..%d (%d samples)", label, sp.Start, sp.End, sp.Len())
	if first, last, ok := t.TimeRange(sp); ok {
		fmt.Printf(", %s -> %s", first.Format("2006-01-02 15:04:05"), last.Format("15:04:05"))
	}
	fmt.Println()
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "motiffind: %v\n", err)
		os.Exit(1)
	}
}
