// Command motifbench regenerates the paper's evaluation artifacts (every
// table and figure of §6, plus the motivating demonstrations of §1-2) as
// text tables.
//
// Usage:
//
//	motifbench [-exp all|T1|F2|F3|F4|T3|F13..F21|C1] [-scale small|full]
//	           [-seed N] [-brute-budget 15s] [-workers N] [-list]
//	motifbench -exp C1 -corpus /data/geolife   # stream a real corpus dir
//	motifbench -json BENCH.json                # machine-readable counters
//	motifbench -json BENCH.json -cpuprofile cpu.out -memprofile mem.out
//
// -float32 stores ground-distance grids in float32 (half the memory,
// float32-exact results); -projected=false turns the -json join's
// projected decision kernel off and measures the haversine oracle alone.
// -cpuprofile/-memprofile write pprof profiles of the run (`make
// profile` wraps this).
//
// Every timing experiment cross-checks that all algorithms return the same
// optimal motif distance, so a full run doubles as an end-to-end exactness
// test of the implementation.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"trajmotif"
	"trajmotif/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (T1, F2, F3, F4, T3, F13..F21) or 'all'")
	scale := flag.String("scale", "small", "experiment sizing: 'small' (minutes) or 'full' (paper sizes, hours)")
	seed := flag.Int64("seed", 42, "workload generator seed")
	budget := flag.Duration("brute-budget", 15*time.Second, "per-run BruteDP budget before truncation")
	workers := flag.Int("workers", 0, "parallel workers within each timed search; 0 = GOMAXPROCS (results are identical for any count). For the C1 corpus experiment it bounds concurrent single-worker searches instead, so 1 is a serial run")
	cache := flag.Bool("cache", false, "share one artifact store across every run: repeated workloads reuse grids and bound tables (results unchanged; cold-start timings become cache-hit timings)")
	corpus := flag.String("corpus", "", "trajectory corpus directory for experiment C1 (.plt/.csv/.mcsv/.ndjson/.jsonl, streamed in bounded memory)")
	corpusXi := flag.Int("corpus-xi", 0, "minimum motif length for -corpus runs; 0 selects the default (8)")
	jsonOut := flag.String("json", "", "run the fixed deterministic workload and write a machine-readable counter report to this file instead of tables (CI diffs it against the checked-in BENCH_*.json baseline)")
	f32 := flag.Bool("float32", false, "store ground-distance grids in float32: half the grid memory, results float32-exact instead of float64-exact")
	projected := flag.Bool("projected", true, "route the -json join through the projected decision kernel, cross-checked in-run against the haversine oracle; =false measures the oracle alone")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file (inspect with go tool pprof)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-4s %-10s %s\n", e.ID, e.Paper, e.Title)
		}
		return
	}

	cfg := bench.Config{
		Scale:        bench.Scale(*scale),
		Seed:         *seed,
		BruteBudget:  *budget,
		Workers:      *workers,
		CorpusDir:    *corpus,
		CorpusXi:     *corpusXi,
		Float32Grids: *f32,
		Projected:    *projected,
	}
	if *cache {
		cfg.Artifacts = trajmotif.NewStore(nil)
	}
	if cfg.Scale != bench.ScaleSmall && cfg.Scale != bench.ScaleFull {
		fmt.Fprintf(os.Stderr, "motifbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	run := func() error {
		if *jsonOut == "" {
			return bench.Run(*exp, cfg, os.Stdout)
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		err = bench.RunJSON(cfg, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "motifbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "motifbench: %v\n", err)
			os.Exit(1)
		}
	}
	runErr := run()
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		runtime.GC() // flush unreachable grids so the profile shows live bytes
		f, err := os.Create(*memprofile)
		if err == nil {
			err = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "motifbench: %v\n", err)
			os.Exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "motifbench: %v\n", runErr)
		os.Exit(1)
	}
}
