package trajmotif

// Facade-level tests for the extension APIs: preprocessing, top-k,
// approximate discovery, similarity join, clustering, k-NN and GeoJSON.

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestFacadePreprocessing(t *testing.T) {
	tr, err := GenerateDataset(GeoLife, DatasetConfig{Seed: 41, N: 600})
	if err != nil {
		t.Fatal(err)
	}
	clean := RemoveSpeedSpikes(tr, 15, nil)
	if clean.Len() > tr.Len() {
		t.Error("spike filter added points")
	}
	simp := Simplify(clean, 5, nil)
	if simp.Len() >= clean.Len() {
		t.Error("simplify had no effect on noisy GPS data")
	}
	segs := SplitOnGaps(clean, 30*time.Minute, 20)
	if len(segs) == 0 {
		t.Error("gap splitting returned nothing")
	}
	// GeoLife days include office dwells; generous thresholds find some.
	if sps := StayPoints(tr, 120, 3*time.Minute, nil); len(sps) == 0 {
		t.Log("no stay points at these thresholds (acceptable, generator-dependent)")
	}
}

func TestFacadeTopKAndApprox(t *testing.T) {
	tr, err := GenerateDataset(Baboon, DatasetConfig{Seed: 42, N: 400})
	if err != nil {
		t.Fatal(err)
	}
	motifs, err := TopK(tr, 15, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(motifs) == 0 {
		t.Fatal("no motifs")
	}
	exact, err := BTM(tr, 15, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(motifs[0].Distance-exact.Distance) > 1e-9 {
		t.Errorf("top-1 %g != exact %g", motifs[0].Distance, exact.Distance)
	}
	approx, err := BTM(tr, 15, &Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if approx.Distance > exact.Distance*1.3+1e-9 {
		t.Errorf("approximation bound violated: %g vs %g", approx.Distance, exact.Distance)
	}

	a, b, _ := GenerateDatasetPair(Truck, DatasetConfig{Seed: 42, N: 200})
	cross, err := TopKBetween(a, b, 10, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cross) == 0 {
		t.Error("no cross motifs")
	}
}

func TestFacadeJoinAndKNN(t *testing.T) {
	var fleet []*Trajectory
	for seed := int64(1); seed <= 5; seed++ {
		tr, err := GenerateDataset(Truck, DatasetConfig{Seed: seed, N: 150})
		if err != nil {
			t.Fatal(err)
		}
		fleet = append(fleet, tr)
	}
	pairs, st, err := SimilarityJoin(fleet, 15000, &JoinOptions{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != 10 {
		t.Errorf("join considered %d pairs, want 10", st.Pairs)
	}
	for _, p := range pairs {
		if p.Distance > 15000 {
			t.Errorf("pair (%d,%d) beyond radius: %g", p.I, p.J, p.Distance)
		}
	}

	query, _ := GenerateDataset(Truck, DatasetConfig{Seed: 77, N: 150})
	nbrs, _, err := NearestTrajectories(query, fleet, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 2 || nbrs[0].Distance > nbrs[1].Distance {
		t.Errorf("knn results malformed: %+v", nbrs)
	}
	// DFDWithin agrees with the reported distances.
	if !DFDWithin(query.Points, fleet[nbrs[0].Index].Points, nil, nbrs[0].Distance+1) {
		t.Error("DFDWithin contradicts knn distance")
	}
	if DFDWithin(query.Points, fleet[nbrs[0].Index].Points, nil, nbrs[0].Distance/2) &&
		nbrs[0].Distance > 1 {
		t.Error("DFDWithin accepted half the true distance")
	}
}

func TestFacadeClusterAndGeoJSON(t *testing.T) {
	tr, err := GenerateDataset(Baboon, DatasetConfig{Seed: 43, N: 500})
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := ClusterSubtrajectories(tr, 30, 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) == 0 {
		t.Error("no clusters on a corridor-looping baboon")
	}

	res, err := Discover(tr, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGeoJSON(&buf, tr, &res.Result); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FeatureCollection") {
		t.Error("GeoJSON export malformed")
	}
}

// TestFacadeStreaming exercises the streaming ingestion surface end to
// end: a corpus directory written through the facade writers, streamed
// back via OpenCorpus, and discovered with results identical to the
// slurp-based batch call.
func TestFacadeStreaming(t *testing.T) {
	dir := t.TempDir()
	var want []*Trajectory
	for seed := int64(1); seed <= 3; seed++ {
		tr, err := GenerateDataset(Truck, DatasetConfig{Seed: seed, N: 60})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, tr)
	}
	if err := WriteFile(filepath.Join(dir, "a.plt"), want[0]); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(filepath.Join(dir, "b.csv"), want[1]); err != nil {
		t.Fatal(err)
	}
	nd, err := os.Create(filepath.Join(dir, "c.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteNDJSON(nd, want[2]); err != nil {
		t.Fatal(err)
	}
	if err := nd.Close(); err != nil {
		t.Fatal(err)
	}

	src, err := OpenCorpus(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := DiscoverStream(src, 4, &BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if errs := src.Errs(); len(errs) != 0 {
		t.Fatalf("corpus errors: %v", errs)
	}
	if len(streamed) != 3 {
		t.Fatalf("streamed %d trajectories, want 3", len(streamed))
	}

	// Slurp the same files in the same (sorted) order and compare the
	// discoveries; file round trips quantize coordinates, so reload
	// rather than reusing the originals.
	var slurped []*Trajectory
	for _, p := range src.Files() {
		var tr *Trajectory
		if strings.HasSuffix(p, ".ndjson") {
			f, err := os.Open(p)
			if err != nil {
				t.Fatal(err)
			}
			tr, err = NewNDJSONScanner(f).Next()
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
		} else {
			var err error
			if tr, err = ReadFile(p); err != nil {
				t.Fatal(err)
			}
		}
		slurped = append(slurped, tr)
	}
	batchItems, err := DiscoverBatch(slurped, 4, &BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for k := range streamed {
		if streamed[k].Err != nil || batchItems[k].Err != nil {
			t.Fatalf("item %d errored: stream %v, batch %v", k, streamed[k].Err, batchItems[k].Err)
		}
		s, b := streamed[k].Result, batchItems[k].Result
		if s.Distance != b.Distance || s.A != b.A || s.B != b.B {
			t.Errorf("item %d: streamed motif (%v %v %.6f) != slurped (%v %v %.6f)",
				k, s.A, s.B, s.Distance, b.A, b.B, b.Distance)
		}
	}
}
