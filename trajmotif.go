// Package trajmotif discovers motifs in spatial trajectories using the
// discrete Fréchet distance (DFD), reproducing Tang, Yiu, Mouratidis and
// Wang, "Efficient Motif Discovery in Spatial Trajectories Using Discrete
// Fréchet Distance", EDBT 2017.
//
// A motif is the pair of most similar non-overlapping subtrajectories —
// within one trajectory (Problem 1) or between two trajectories — where
// similarity is the DFD, the "dog-man" bottleneck distance that tolerates
// non-uniform sampling rates and local time shifting. Each subtrajectory
// leg must span strictly more than ξ (MinLength) movement steps.
//
// Four exact algorithms are exposed, trading preprocessing for pruning:
//
//   - BruteDP   — the O(n⁴) dynamic-programming baseline (Algorithm 1)
//   - BTM       — bounding-based discovery with relaxed O(1) lower bounds
//     and best-first subset ordering (Algorithm 2)
//   - GTM       — grouping-based multi-level pruning on top of BTM
//     (Algorithm 3); the fastest configuration in the paper
//   - GTMStar   — the space-efficient GTM variant computing ground
//     distances on the fly in O(max((n/τ)², n)) memory (§5.5)
//
// All four return identical optimal distances; they differ only in time
// and space. Every search is parallel within itself: Options.Workers
// (default GOMAXPROCS) shards the candidate sweep across cores under one
// shared best-so-far bound, and any worker count returns byte-identical
// results — spans, distance bits, and effort counters. Collections
// parallelize across trajectories instead via DiscoverBatch (see the
// README's "Concurrency model" for the split).
//
// The simplest entry point is Discover:
//
//	t, _ := trajmotif.ReadFile("walk.plt")
//	res, _ := trajmotif.Discover(t, 100, nil)
//	fmt.Println(res.A, res.B, res.Distance) // spans + DFD in meters
package trajmotif

import (
	"io"

	"trajmotif/internal/batch"
	"trajmotif/internal/cluster"
	"trajmotif/internal/core"
	"trajmotif/internal/datagen"
	"trajmotif/internal/dist"
	"trajmotif/internal/geo"
	"trajmotif/internal/geojson"
	"trajmotif/internal/group"
	"trajmotif/internal/join"
	"trajmotif/internal/knn"
	"trajmotif/internal/prep"
	"trajmotif/internal/serve"
	"trajmotif/internal/shard"
	"trajmotif/internal/spatial"
	"trajmotif/internal/store"
	"trajmotif/internal/symbolic"
	"trajmotif/internal/traj"
	"trajmotif/internal/trajio"
)

// Re-exported core types. See the internal packages for full method sets.
type (
	// Point is a latitude/longitude position in degrees.
	Point = geo.Point
	// DistanceFunc is a ground distance between two points in meters.
	DistanceFunc = geo.DistanceFunc
	// Trajectory is a sequence of points with optional ascending timestamps.
	Trajectory = traj.Trajectory
	// Span identifies a subtrajectory S[Start..End], inclusive.
	Span = traj.Span
	// Options tunes the search (ground distance, bound set, ablations).
	Options = core.Options
	// Result is a discovered motif: two spans, their DFD, and statistics.
	Result = core.Result
	// GroupResult extends Result with grouping-phase statistics.
	GroupResult = group.Result
	// Stats reports search effort (pruning counters, DP cells, memory).
	Stats = core.Stats
)

// Ground distances.
var (
	// Haversine is the great-circle distance (the paper's default dG).
	Haversine = geo.Haversine
	// Euclidean treats coordinates as planar meters.
	Euclidean DistanceFunc = geo.Euclidean
)

// ErrTooShort is returned when no feasible motif exists for the inputs.
var ErrTooShort = core.ErrTooShort

// NewTrajectory validates and wraps a point sequence (see traj.New).
func NewTrajectory(points []Point) (*Trajectory, error) {
	return traj.New(points, nil)
}

// DefaultTau is the initial group size used by Discover; τ=32 is the
// paper's default, shown in §6.2.3 to be robust across datasets.
const DefaultTau = 32

// Discover finds the motif within trajectory t using the paper's best
// configuration (GTM with τ = DefaultTau). minLength is ξ: each motif leg
// must span strictly more than ξ steps. opt may be nil for defaults
// (haversine ground distance, relaxed bounds).
func Discover(t *Trajectory, minLength int, opt *Options) (*GroupResult, error) {
	return group.GTM(t, minLength, DefaultTau, opt)
}

// DiscoverBetween finds the motif between two trajectories (the §3
// problem variant without the ordering constraint).
func DiscoverBetween(t, u *Trajectory, minLength int, opt *Options) (*GroupResult, error) {
	return group.GTMCross(t, u, minLength, DefaultTau, opt)
}

// BruteDP runs the Algorithm 1 baseline on a single trajectory.
func BruteDP(t *Trajectory, minLength int, opt *Options) (*Result, error) {
	return core.BruteDP(t, minLength, opt)
}

// BruteDPBetween runs the baseline across two trajectories.
func BruteDPBetween(t, u *Trajectory, minLength int, opt *Options) (*Result, error) {
	return core.BruteDPCross(t, u, minLength, opt)
}

// BTM runs the bounding-based Algorithm 2 on a single trajectory.
func BTM(t *Trajectory, minLength int, opt *Options) (*Result, error) {
	return core.BTM(t, minLength, opt)
}

// BTMBetween runs Algorithm 2 across two trajectories.
func BTMBetween(t, u *Trajectory, minLength int, opt *Options) (*Result, error) {
	return core.BTMCross(t, u, minLength, opt)
}

// GTM runs the grouping-based Algorithm 3 with initial group size tau.
func GTM(t *Trajectory, minLength, tau int, opt *Options) (*GroupResult, error) {
	return group.GTM(t, minLength, tau, opt)
}

// GTMBetween runs Algorithm 3 across two trajectories.
func GTMBetween(t, u *Trajectory, minLength, tau int, opt *Options) (*GroupResult, error) {
	return group.GTMCross(t, u, minLength, tau, opt)
}

// GTMStar runs the space-efficient GTM variant (§5.5).
func GTMStar(t *Trajectory, minLength, tau int, opt *Options) (*GroupResult, error) {
	return group.GTMStar(t, minLength, tau, opt)
}

// GTMStarBetween runs GTM* across two trajectories.
func GTMStarBetween(t, u *Trajectory, minLength, tau int, opt *Options) (*GroupResult, error) {
	return group.GTMStarCross(t, u, minLength, tau, opt)
}

// ground resolves the facade's nil-DistanceFunc default to Haversine.
func ground(df DistanceFunc) DistanceFunc {
	if df == nil {
		return geo.Haversine
	}
	return df
}

// DFD returns the discrete Fréchet distance between two point sequences
// under df (nil selects Haversine).
func DFD(a, b []Point, df DistanceFunc) float64 {
	return dist.DFD(a, b, ground(df))
}

// DFDCapped computes the DFD with early abandoning: it returns the exact
// distance with exceeded == false, or stops as soon as it can prove the
// distance is at least cap and returns a lower bound (itself >= cap) with
// exceeded == true. A +Inf cap is exactly DFD. This is the kernel the
// motif searchers and k-NN use to kill hopeless candidates after a few DP
// rows.
func DFDCapped(a, b []Point, df DistanceFunc, cap float64) (d float64, exceeded bool) {
	return dist.DFDCapped(a, b, ground(df), cap)
}

// DFDDecision decides DFD(a, b) <= eps without computing the distance,
// abandoning as soon as no coupling within eps can continue. For finite
// eps it agrees exactly with DFD(a, b, df) <= eps.
func DFDDecision(a, b []Point, df DistanceFunc, eps float64) bool {
	return dist.DFDDecision(a, b, ground(df), eps)
}

// DTW returns the dynamic time warping distance between two point
// sequences under df (nil selects Haversine). It is provided for
// comparison; unlike DFD it is inflated by oversampled segments (the
// paper's Table 1 and Figure 3).
func DTW(a, b []Point, df DistanceFunc) float64 {
	return dist.DTW(a, b, ground(df))
}

// ED returns the lock-step mean pointwise distance between two
// equal-length sequences under df (nil selects Haversine), erroring on a
// length mismatch.
func ED(a, b []Point, df DistanceFunc) (float64, error) {
	return dist.ED(a, b, ground(df))
}

// EDR returns the edit distance on real sequences: the minimal number of
// insertions, deletions and substitutions, where points within eps of
// each other (under df; nil selects Haversine) match for free.
func EDR(a, b []Point, df DistanceFunc, eps float64) int {
	return dist.EDR(a, b, ground(df), eps)
}

// LCSS returns the length of the longest common subsequence of a and b,
// where points within eps of each other (under df; nil selects
// Haversine) are considered equal. Larger is more similar.
func LCSS(a, b []Point, df DistanceFunc, eps float64) int {
	return dist.LCSS(a, b, ground(df), eps)
}

// LCSSDistance returns the normalized LCSS dissimilarity
// 1 − LCSS/min(len(a), len(b)), in [0, 1].
func LCSSDistance(a, b []Point, df DistanceFunc, eps float64) float64 {
	return dist.LCSSDistance(a, b, ground(df), eps)
}

// ReadFile loads a trajectory from a GeoLife .plt or CSV file.
func ReadFile(path string) (*Trajectory, error) { return trajio.ReadFile(path) }

// WriteFile saves a trajectory to a .plt or CSV file by extension.
func WriteFile(path string, t *Trajectory) error { return trajio.WriteFile(path, t) }

// Synthetic dataset generation (see internal/datagen for the modelling
// rationale; the generators stand in for the paper's three real datasets).
type (
	// DatasetConfig seeds and sizes a synthetic dataset.
	DatasetConfig = datagen.Config
	// DatasetName selects one of the three synthesized workloads.
	DatasetName = datagen.Name
)

// Dataset names matching the paper's evaluation datasets (§6.1).
const (
	GeoLife = datagen.GeoLifeName
	Truck   = datagen.TruckName
	Baboon  = datagen.BaboonName
)

// GenerateDataset synthesizes one of the evaluation workloads.
func GenerateDataset(name DatasetName, cfg DatasetConfig) (*Trajectory, error) {
	return datagen.Dataset(name, cfg)
}

// GenerateDatasetPair synthesizes two trajectories sharing route
// geography, for the two-trajectory problem variant.
func GenerateDatasetPair(name DatasetName, cfg DatasetConfig) (*Trajectory, *Trajectory, error) {
	return datagen.Pair(name, cfg)
}

// TopK returns up to k mutually disjoint motifs of t in ascending
// distance order (an extension of Problem 1; see internal/core/topk.go).
func TopK(t *Trajectory, minLength, k int, opt *Options) ([]Result, error) {
	return core.TopK(t, minLength, k, opt)
}

// TopKBetween returns up to k disjoint motifs between two trajectories.
func TopKBetween(t, u *Trajectory, minLength, k int, opt *Options) ([]Result, error) {
	return core.TopKCross(t, u, minLength, k, opt)
}

// Similarity join and clustering — the paper's §7 future-work operations,
// built on the same DFD bounding machinery.
type (
	// JoinPair is one result of a trajectory similarity join.
	JoinPair = join.Pair
	// JoinOptions tunes SimilarityJoin.
	JoinOptions = join.Options
	// JoinStats reports the join's filter-cascade effectiveness.
	JoinStats = join.Stats
	// ClusterOptions tunes ClusterSubtrajectories.
	ClusterOptions = cluster.Options
	// SubtrajectoryCluster is a group of windows within the radius of a
	// representative subtrajectory.
	SubtrajectoryCluster = cluster.Cluster
)

// SimilarityJoin reports every pair of trajectories within DFD eps, using
// an endpoint/bounding-box/decision filter cascade.
func SimilarityJoin(ts []*Trajectory, eps float64, opt *JoinOptions) ([]JoinPair, JoinStats, error) {
	return join.Join(ts, eps, opt)
}

// DFDWithin decides DFD(a, b) <= eps with early abandoning, without
// computing the full distance.
func DFDWithin(a, b []Point, df DistanceFunc, eps float64) bool {
	return join.DFDWithin(a, b, ground(df), eps)
}

// ClusterSubtrajectories groups sliding windows of t into clusters whose
// members are within DFD eps of a representative window.
func ClusterSubtrajectories(t *Trajectory, window int, eps float64, opt *ClusterOptions) ([]SubtrajectoryCluster, error) {
	return cluster.Subtrajectories(t, window, eps, opt)
}

// Batch processing over trajectory collections (see internal/batch): the
// fleet fans out over a bounded worker pool, and each search returns
// results identical to a standalone run. Within-search parallelism
// defaults to 1 inside a batch (BatchOptions.SearchWorkers raises it).
type (
	// BatchItem is one trajectory's outcome in a batch discovery.
	BatchItem = batch.Item
	// BatchPairItem is one pair's outcome in an all-pairs discovery.
	BatchPairItem = batch.PairItem
	// BatchOptions tunes worker count, τ and per-search options.
	BatchOptions = batch.Options
	// BatchIndexStats receives the spatial prefilter's effort counters
	// from a streaming all-pairs run (BatchOptions.IndexStats).
	BatchIndexStats = batch.IndexStats
)

// DiscoverBatch runs motif discovery on every trajectory concurrently.
func DiscoverBatch(ts []*Trajectory, minLength int, opt *BatchOptions) ([]BatchItem, error) {
	return batch.Discover(ts, minLength, opt)
}

// DiscoverAllPairs runs two-trajectory discovery on every unordered pair.
func DiscoverAllPairs(ts []*Trajectory, minLength int, opt *BatchOptions) ([]BatchPairItem, error) {
	return batch.DiscoverAllPairs(ts, minLength, opt)
}

// Streaming ingestion (see internal/trajio's stream layer): iterator-
// style trajectory sources that never materialize a whole corpus, and
// the batch entry points that consume them in bounded memory. Streaming
// results are byte-identical to the slurp-based calls.
type (
	// TrajectoryScanner yields trajectories one at a time; Next returns
	// io.EOF after the last one.
	TrajectoryScanner = trajio.Scanner
	// CorpusSource streams every trajectory under a directory tree in
	// deterministic order, one open file at a time, capturing per-file
	// errors instead of aborting.
	CorpusSource = trajio.DirSource
	// CorpusOptions configures OpenCorpus (glob filters, fail-fast).
	CorpusOptions = trajio.DirOptions
	// CorpusFileError is one captured per-file failure of a corpus scan.
	CorpusFileError = trajio.FileError
	// RecordError is a recoverable per-record failure of a multi-record
	// stream (NDJSON); the stream continues past it.
	RecordError = trajio.RecordError
)

// OpenCorpus opens a directory tree of trajectory files (.plt, .csv,
// .mcsv, .ndjson/.jsonl, filtered by opt.Glob) as a streaming source.
// opt may be nil for defaults.
func OpenCorpus(dir string, opt *CorpusOptions) (*CorpusSource, error) {
	return trajio.OpenDir(dir, opt)
}

// NewCSVScanner streams one single-trajectory CSV, identically to ReadFile.
func NewCSVScanner(r io.Reader) TrajectoryScanner { return trajio.NewCSVScanner(r) }

// NewPLTScanner streams one GeoLife .plt file, identically to ReadFile.
func NewPLTScanner(r io.Reader) TrajectoryScanner { return trajio.NewPLTScanner(r) }

// NewMultiCSVScanner streams a multi-trajectory CSV: "lat,lng[,unix]"
// blocks separated by blank lines, each with an optional header.
func NewMultiCSVScanner(r io.Reader) TrajectoryScanner { return trajio.NewMultiCSVScanner(r) }

// NewNDJSONScanner streams newline-delimited JSON trajectory records —
// the motif server's bulk-upload format — decoding one record at a time.
func NewNDJSONScanner(r io.Reader) TrajectoryScanner { return trajio.NewNDJSONScanner(r) }

// WriteNDJSON appends trajectories to w in the NDJSON record format.
func WriteNDJSON(w io.Writer, ts ...*Trajectory) error { return trajio.WriteNDJSON(w, ts...) }

// DiscoverStream runs motif discovery on every trajectory a scanner
// yields, keeping at most a worker-pool's worth of trajectories resident;
// items are identical to DiscoverBatch over the materialized slice.
func DiscoverStream(src TrajectoryScanner, minLength int, opt *BatchOptions) ([]BatchItem, error) {
	return batch.DiscoverStream(src, minLength, opt)
}

// DiscoverAllPairsStream runs two-trajectory discovery over a stream,
// pairing each trajectory with the window-1 preceding it (window <= 0
// retains everything and equals DiscoverAllPairs).
func DiscoverAllPairsStream(src TrajectoryScanner, minLength, window int, opt *BatchOptions) ([]BatchPairItem, error) {
	return batch.DiscoverAllPairsStream(src, minLength, window, opt)
}

// Preprocessing for raw GPS data (see internal/prep).
type (
	// StayPoint is a detected dwell region.
	StayPoint = prep.StayPoint
)

// RemoveSpeedSpikes drops GPS samples implying impossible speeds.
var RemoveSpeedSpikes = prep.RemoveSpeedSpikes

// Simplify reduces a trajectory with Douglas-Peucker at the given
// tolerance in meters.
var Simplify = prep.Simplify

// StayPoints detects dwell regions of at least the given radius/duration.
var StayPoints = prep.StayPoints

// SplitOnGaps cuts a timed trajectory at recording gaps.
var SplitOnGaps = prep.SplitOnGaps

// Nearest-trajectory search (see internal/knn).
type (
	// Neighbor is one k-NN search result.
	Neighbor = knn.Neighbor
	// KNNOptions tunes NearestTrajectories.
	KNNOptions = knn.Options
	// KNNStats reports k-NN pruning effectiveness.
	KNNStats = knn.Stats
)

// NearestTrajectories returns the k dataset trajectories most similar to
// query under DFD, with lower-bound pruning and early-abandoning DFD.
func NearestTrajectories(query *Trajectory, dataset []*Trajectory, k int, opt *KNNOptions) ([]Neighbor, KNNStats, error) {
	return knn.Nearest(query, dataset, k, opt)
}

// Spatial indexing (see internal/spatial): a uniform-grid index over
// trajectory MBRs whose MinDist lower-bounds the ground distance — and
// therefore the DFD — between any points of two trajectories. Passing an
// index via KNNOptions.Index or JoinOptions.Index prunes candidates
// sub-linearly while returning results and effort statistics
// byte-identical to the linear scan (the README's "Spatial indexing"
// section states the soundness argument).
type (
	// MBR is a minimum bounding rectangle in degrees, possibly spanning
	// the antimeridian.
	MBR = spatial.MBR
	// SpatialIndex is the uniform-grid MBR index consulted by the k-NN,
	// join and batch retrieval paths.
	SpatialIndex = spatial.Index
	// SpatialIndexOptions configures a SpatialIndex (ground distance,
	// cell size, overflow threshold).
	SpatialIndexOptions = spatial.IndexOptions
)

// BoundMBR folds a point sequence into its minimum bounding rectangle.
func BoundMBR(points []Point) MBR { return spatial.Bound(points) }

// NewSpatialIndex creates an empty index; opt may be nil for defaults
// (haversine ground distance, DefaultCell degree cells).
func NewSpatialIndex(opt *SpatialIndexOptions) *SpatialIndex { return spatial.NewIndex(opt) }

// BuildSpatialIndex indexes a dataset slice by position, keyed the way
// NearestTrajectories and SimilarityJoin expect. df may be nil for
// haversine and must match the Dist the search runs with.
func BuildSpatialIndex(ts []*Trajectory, df DistanceFunc) (*SpatialIndex, error) {
	return spatial.BuildIndex(ts, df)
}

// Serve mode (see internal/store and internal/serve): a long-running
// trajectory store memoizing search artifacts — self-distance grids,
// bound tables, per-pair cross grids — under an LRU byte budget, and the
// HTTP server fronting it. Any search routed through a Store via
// Options.Artifacts skips grid construction when the artifacts are
// cached; results stay byte-identical to uncached calls.
type (
	// Store is the content-addressed trajectory store with the memoizing
	// artifact cache. It implements the Options.Artifacts interface.
	Store = store.Store
	// StoreOptions configures a Store (ground distance, cache budget).
	StoreOptions = store.Options
	// StoreStats snapshots a store's registry and cache counters.
	StoreStats = store.Stats
	// TrajectoryID is a stored trajectory's content hash.
	TrajectoryID = store.ID
	// Server is the JSON-over-HTTP motif server (an http.Handler).
	Server = serve.Server
	// ServerOptions configures a Server.
	ServerOptions = serve.Options
	// ArtifactSource supplies precomputed grids and bound tables to a
	// search (Options.Artifacts); *Store is the memoizing implementation.
	ArtifactSource = core.ArtifactSource
	// ShardedStore hash-partitions trajectories across N in-process
	// Store shards behind the same retrieval surface, scatter-gathering
	// registry operations and merging stats; results and effort counters
	// are byte-identical to a single Store at any shard count.
	ShardedStore = shard.Coordinator
	// ServeBackend is the store surface a Server fronts; both *Store and
	// *ShardedStore implement it.
	ServeBackend = serve.Backend
)

// DefaultCacheBytes is the default artifact-cache budget of a Store.
const DefaultCacheBytes = store.DefaultCacheBytes

// NewStore creates a trajectory store; opt may be nil for defaults
// (haversine ground distance, DefaultCacheBytes budget).
func NewStore(opt *StoreOptions) *Store { return store.New(opt) }

// NewShardedStore partitions trajectories across n store shards, each
// configured from opt with the cache budget and registry capacity split
// evenly (and ArtifactDir, when set, given a shard-<i> subdirectory).
// opt may be nil for defaults; n must be >= 1.
func NewShardedStore(n int, opt *StoreOptions) (*ShardedStore, error) { return shard.New(n, opt) }

// NewServer builds the motif server around a store; opt may be nil.
// Serve it with net/http: http.ListenAndServe(addr, srv).
func NewServer(st *Store, opt *ServerOptions) *Server { return serve.New(st, opt) }

// NewServerWith builds the motif server around any ServeBackend — a
// *Store or a *ShardedStore. opt may be nil.
func NewServerWith(b ServeBackend, opt *ServerOptions) *Server { return serve.New(b, opt) }

// WriteGeoJSON exports the trajectory with the motif's two legs
// highlighted, viewable in any GeoJSON map tool (the paper's Figure 1(b)
// rendering).
func WriteGeoJSON(w io.Writer, t *Trajectory, res *Result) error {
	return geojson.WriteMotif(w, t, res.A, res.B, res.Distance)
}

// SymbolicDiscover runs the symbolic baseline of the paper's Figure 4
// (movement-pattern strings + longest repeated substring). It exists to
// demonstrate the failure mode motivating DFD-based discovery; see
// examples/symbolic.
func SymbolicDiscover(t *Trajectory, fragLen int) (pattern string, a, b Span, ok bool) {
	m, ok := symbolic.Discover(t, fragLen)
	if !ok {
		return "", Span{}, Span{}, false
	}
	return m.Pattern, m.Span(m.First, t.Len()), m.Span(m.Second, t.Len()), true
}
