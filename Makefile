GO ?= go
FUZZTIME ?= 10s
# Minimum total statement coverage for `make cover`. Raise it when new
# suites land; never lower it to paper over a regression.
COVER_MIN ?= 73.0

# Pinned external linters (versions live in tools/versions.mk).
# LINT_EXTERNAL: auto = run them when they can be fetched/built, skip
# with a notice otherwise (offline dev); require = fail when they cannot
# run (CI); off = never run them.
include tools/versions.mk
LINT_EXTERNAL ?= auto
TOOLSBIN := $(CURDIR)/tools/bin

.PHONY: build test bench bench-smoke fmt fmt-check vet race fuzz serve-smoke restart-smoke load-smoke cover profile lint motiflint tools-test lint-external

build:
	$(GO) build ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz runs of every fuzz target (go test drives one target per
# invocation). Override the budget with FUZZTIME=30s make fuzz.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDFDKernel$$' -fuzztime $(FUZZTIME) ./internal/dist
	$(GO) test -run '^$$' -fuzz '^FuzzReadCSV$$' -fuzztime $(FUZZTIME) ./internal/trajio
	$(GO) test -run '^$$' -fuzz '^FuzzReadPLT$$' -fuzztime $(FUZZTIME) ./internal/trajio
	$(GO) test -run '^$$' -fuzz '^FuzzScanner$$' -fuzztime $(FUZZTIME) ./internal/trajio
	$(GO) test -run '^$$' -fuzz '^FuzzSpatialIndex$$' -fuzztime $(FUZZTIME) ./internal/spatial
	$(GO) test -run '^$$' -fuzz '^FuzzProjectedDecision$$' -fuzztime $(FUZZTIME) ./internal/dist

# Coverage profile over the -short suite (the corpus parity and streaming
# tests all run under -short), with the per-function summary's total line
# printed for CI logs and gated against COVER_MIN. The full profile lands
# in cover.out for `go tool cover -html=cover.out`.
cover:
	$(GO) test -short -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -n 1
	@$(GO) tool cover -func=cover.out | tail -n 1 | \
		awk -v min=$(COVER_MIN) '{ pct = $$NF + 0; if (pct < min) { \
			printf "coverage %.1f%% below the %.1f%% gate\n", pct, min; exit 1 } \
			else printf "coverage %.1f%% >= %.1f%% gate\n", pct, min }'
	@echo "note: the motiflint analyzer suites live in the tools module and run via 'make tools-test' (outside this profile and the COVER_MIN gate)"

# End-to-end serve-mode smoke: build the motifserve binary, start it on a
# free port, upload a generated trajectory, and assert the second
# identical /discover request rebuilds zero grids.
serve-smoke:
	$(GO) test -run '^TestServeSmokeBinary$$' -count=1 -v ./cmd/motifserve

# End-to-end restart drill: run motifserve with -artifact-dir and
# -snapshot-on-shutdown (sharded), upload + discover, SIGTERM, restart
# against the same directory, and assert the warm process answers the
# same discover from the disk tier — registry restored, zero grids
# rebuilt, diskReads > 0 on /stats.
restart-smoke:
	$(GO) test -run '^TestRestartSmokeBinary$$' -count=1 -v ./cmd/motifserve

# End-to-end load smoke: build the motifload binary and replay a mixed
# concurrent read/write workload against a self-hosted capped server.
# The binary exits non-zero on any hardening violation — a 5xx, an
# unbounded registry, no LRU churn, or an unparseable /metrics scrape.
load-smoke:
	$(GO) test -run '^TestLoadSmokeBinary$$' -count=1 -v ./cmd/motifload

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Profile the fixed deterministic -json workload: CPU and heap profiles
# land in /tmp for `go tool pprof /tmp/motifbench.{cpu,mem}.out`.
profile:
	$(GO) run ./cmd/motifbench -json /tmp/motifbench.json \
		-cpuprofile /tmp/motifbench.cpu.out -memprofile /tmp/motifbench.mem.out
	@echo "profiles: /tmp/motifbench.cpu.out /tmp/motifbench.mem.out (go tool pprof)"

# One iteration of every benchmark in every package — catches bit-rot in
# bench-only code paths (including the parallel workers=N variants)
# without paying for a statistically meaningful run. The -json emitter
# runs too, so the machine-readable path cannot rot between BENCH_*.json
# regenerations.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
	$(GO) run ./cmd/motifbench -json /tmp/motifbench.json

fmt:
	gofmt -l -w .

fmt-check:
	@out="$$(gofmt -l .)"; test -z "$$out" || { echo "gofmt needed on:"; echo "$$out"; exit 1; }

vet:
	$(GO) vet ./...

# Static analysis, in order: formatting diff, go vet, the motiflint
# invariant suite over the whole tree, the analyzer fixture tests, and
# the pinned external linters. CI runs this with LINT_EXTERNAL=require.
lint: fmt-check vet motiflint tools-test lint-external

# The repo's invariant multichecker (tools/internal/analysis): lockcheck,
# statsmerge, determinism, preparedgate, httperr. Exits non-zero on any
# finding; see DESIGN.md §5 for what each analyzer enforces and the
# //lint:ignore escape hatch.
motiflint:
	cd tools && $(GO) run ./cmd/motiflint -dir .. ./...

# The analysistest suites for the five analyzers (plain go test in the
# nested tools module; no third-party deps).
tools-test:
	cd tools && $(GO) test ./...

# staticcheck + govulncheck at the versions pinned in tools/versions.mk.
# `go install pkg@version` cleanly separates "tool unavailable" (offline:
# skip under auto, fail under require) from "tool reported findings"
# (always fail).
lint-external:
ifneq ($(LINT_EXTERNAL),off)
	@if GOBIN=$(TOOLSBIN) $(GO) install $(STATICCHECK_PKG)@$(STATICCHECK_VERSION) >/dev/null 2>&1; then \
		echo ">> staticcheck $(STATICCHECK_VERSION)"; $(TOOLSBIN)/staticcheck ./...; \
	elif [ "$(LINT_EXTERNAL)" = "require" ]; then \
		echo "lint-external: cannot build staticcheck $(STATICCHECK_VERSION)" >&2; exit 1; \
	else \
		echo "lint-external: staticcheck unavailable (offline?); skipping — set LINT_EXTERNAL=require to fail instead"; \
	fi
	@if GOBIN=$(TOOLSBIN) $(GO) install $(GOVULNCHECK_PKG)@$(GOVULNCHECK_VERSION) >/dev/null 2>&1; then \
		echo ">> govulncheck $(GOVULNCHECK_VERSION)"; $(TOOLSBIN)/govulncheck ./...; \
	elif [ "$(LINT_EXTERNAL)" = "require" ]; then \
		echo "lint-external: cannot build govulncheck $(GOVULNCHECK_VERSION)" >&2; exit 1; \
	else \
		echo "lint-external: govulncheck unavailable (offline?); skipping — set LINT_EXTERNAL=require to fail instead"; \
	fi
else
	@echo "lint-external: disabled (LINT_EXTERNAL=off)"
endif
