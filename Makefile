GO ?= go

.PHONY: build test bench fmt vet

build:
	$(GO) build ./...

test: vet
	$(GO) test ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...
