GO ?= go
FUZZTIME ?= 10s
# Minimum total statement coverage for `make cover`. Raise it when new
# suites land; never lower it to paper over a regression.
COVER_MIN ?= 73.0

.PHONY: build test bench bench-smoke fmt vet race fuzz serve-smoke load-smoke cover profile

build:
	$(GO) build ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz runs of every fuzz target (go test drives one target per
# invocation). Override the budget with FUZZTIME=30s make fuzz.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDFDKernel$$' -fuzztime $(FUZZTIME) ./internal/dist
	$(GO) test -run '^$$' -fuzz '^FuzzReadCSV$$' -fuzztime $(FUZZTIME) ./internal/trajio
	$(GO) test -run '^$$' -fuzz '^FuzzReadPLT$$' -fuzztime $(FUZZTIME) ./internal/trajio
	$(GO) test -run '^$$' -fuzz '^FuzzScanner$$' -fuzztime $(FUZZTIME) ./internal/trajio
	$(GO) test -run '^$$' -fuzz '^FuzzSpatialIndex$$' -fuzztime $(FUZZTIME) ./internal/spatial
	$(GO) test -run '^$$' -fuzz '^FuzzProjectedDecision$$' -fuzztime $(FUZZTIME) ./internal/dist

# Coverage profile over the -short suite (the corpus parity and streaming
# tests all run under -short), with the per-function summary's total line
# printed for CI logs and gated against COVER_MIN. The full profile lands
# in cover.out for `go tool cover -html=cover.out`.
cover:
	$(GO) test -short -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -n 1
	@$(GO) tool cover -func=cover.out | tail -n 1 | \
		awk -v min=$(COVER_MIN) '{ pct = $$NF + 0; if (pct < min) { \
			printf "coverage %.1f%% below the %.1f%% gate\n", pct, min; exit 1 } \
			else printf "coverage %.1f%% >= %.1f%% gate\n", pct, min }'

# End-to-end serve-mode smoke: build the motifserve binary, start it on a
# free port, upload a generated trajectory, and assert the second
# identical /discover request rebuilds zero grids.
serve-smoke:
	$(GO) test -run '^TestServeSmokeBinary$$' -count=1 -v ./cmd/motifserve

# End-to-end load smoke: build the motifload binary and replay a mixed
# concurrent read/write workload against a self-hosted capped server.
# The binary exits non-zero on any hardening violation — a 5xx, an
# unbounded registry, no LRU churn, or an unparseable /metrics scrape.
load-smoke:
	$(GO) test -run '^TestLoadSmokeBinary$$' -count=1 -v ./cmd/motifload

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Profile the fixed deterministic -json workload: CPU and heap profiles
# land in /tmp for `go tool pprof /tmp/motifbench.{cpu,mem}.out`.
profile:
	$(GO) run ./cmd/motifbench -json /tmp/motifbench.json \
		-cpuprofile /tmp/motifbench.cpu.out -memprofile /tmp/motifbench.mem.out
	@echo "profiles: /tmp/motifbench.cpu.out /tmp/motifbench.mem.out (go tool pprof)"

# One iteration of every benchmark in every package — catches bit-rot in
# bench-only code paths (including the parallel workers=N variants)
# without paying for a statistically meaningful run. The -json emitter
# runs too, so the machine-readable path cannot rot between BENCH_*.json
# regenerations.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
	$(GO) run ./cmd/motifbench -json /tmp/motifbench.json

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...
