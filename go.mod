module trajmotif

go 1.24
