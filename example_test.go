package trajmotif_test

import (
	"fmt"
	"log"

	"trajmotif"
)

// ExampleDiscover finds the motif of a synthetic pedestrian trajectory —
// the same commute walked on different days.
func ExampleDiscover() {
	t, err := trajmotif.GenerateDataset(trajmotif.GeoLife, trajmotif.DatasetConfig{Seed: 7, N: 800})
	if err != nil {
		log.Fatal(err)
	}
	res, err := trajmotif.Discover(t, 40, nil)
	if err != nil {
		log.Fatal(err)
	}
	// This workload has two bit-exact-tied witnesses; the search reports
	// the one earliest in the canonical (LB, start-cell) feed order, for
	// every worker count.
	fmt.Printf("legs %v and %v, DFD %.1f m\n", res.A, res.B, res.Distance)
	// Output: legs [30..71] and [748..790], DFD 10.9 m
}

// ExampleDFD computes the discrete Fréchet distance between two short
// planar tracks.
func ExampleDFD() {
	a := []trajmotif.Point{{Lat: 0, Lng: 0}, {Lat: 0, Lng: 1}, {Lat: 0, Lng: 2}}
	b := []trajmotif.Point{{Lat: 1, Lng: 0}, {Lat: 1, Lng: 1}, {Lat: 1, Lng: 2}}
	fmt.Printf("%.1f\n", trajmotif.DFD(a, b, trajmotif.Euclidean))
	// Output: 1.0
}

// ExampleTopK lists the three best mutually disjoint motifs.
func ExampleTopK() {
	t, err := trajmotif.GenerateDataset(trajmotif.Baboon, trajmotif.DatasetConfig{Seed: 31, N: 500})
	if err != nil {
		log.Fatal(err)
	}
	motifs, err := trajmotif.TopK(t, 20, 3, nil)
	if err != nil {
		log.Fatal(err)
	}
	for rank, m := range motifs {
		fmt.Printf("#%d spans %v / %v\n", rank+1, m.A.Len(), m.B.Len())
	}
	fmt.Println(len(motifs), "motifs")
}

// ExampleSimilarityJoin pairs up fleet trajectories within a DFD radius.
func ExampleSimilarityJoin() {
	var fleet []*trajmotif.Trajectory
	for seed := int64(1); seed <= 3; seed++ {
		t, err := trajmotif.GenerateDataset(trajmotif.Truck, trajmotif.DatasetConfig{Seed: seed, N: 100})
		if err != nil {
			log.Fatal(err)
		}
		fleet = append(fleet, t)
	}
	pairs, _, err := trajmotif.SimilarityJoin(fleet, 50000, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pairs within 50 km DFD:", len(pairs))
	// Output: pairs within 50 km DFD: 3
}
