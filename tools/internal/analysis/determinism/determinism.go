// Package determinism guards the repo's central contract — byte-identical
// results and effort counters across worker counts, cache states, and
// fast-path gates — in the result-producing packages (core, join, knn,
// group, batch, cluster):
//
//   - math/rand (and v2) may not be imported at all;
//   - ranging over a map is flagged unless a sort call follows later in
//     the same function (collect-then-sort), or the loop binds neither
//     key nor value (pure counting);
//   - time.Now is flagged except in functions that record wall time into
//     a time.Duration field of a *Stats struct (the allowlisted
//     Precompute/Search timing pattern).
//
// Escape hatch: //lint:ignore determinism <reason>.
package determinism

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"trajmotif/tools/internal/analysis/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "determinism",
	Doc:  "no unsorted map iteration, math/rand, or untracked wall-clock reads in result-producing packages",
	Run:  run,
}

var scopedPackages = map[string]bool{
	"core": true, "join": true, "knn": true, "group": true, "batch": true, "cluster": true,
}

func run(pass *lint.Pass) error {
	if !scopedPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s: result-producing packages must be deterministic", path)
			}
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	wallTimeOK := recordsStatsDuration(pass, fd)

	// Collect sort-call positions first so a map range can look forward.
	var sortPositions []int
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := lint.CalleeObj(pass.Info, call); obj != nil && isSortCall(obj) {
			sortPositions = append(sortPositions, int(call.Pos()))
		}
		return true
	})
	sortedAfter := func(pos int) bool {
		for _, p := range sortPositions {
			if p > pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.RangeStmt:
			tv, ok := pass.Info.Types[node.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if node.Key == nil && node.Value == nil {
				return true // pure counting: order cannot leak
			}
			if !sortedAfter(int(node.Pos())) {
				pass.Reportf(node.Pos(), "map iteration order is nondeterministic: collect and sort afterwards, or annotate with //lint:ignore determinism <reason>")
			}
		case *ast.CallExpr:
			obj := lint.CalleeObj(pass.Info, node)
			if obj != nil && lint.IsPkgFunc(obj, "time", "Now") && !wallTimeOK {
				pass.Reportf(node.Pos(), "time.Now outside a Stats wall-time recorder: wall clock must not influence results or counters")
			}
		}
		return true
	})
}

// recordsStatsDuration reports whether fd assigns to a time.Duration
// field of a *Stats-named struct — the sanctioned wall-time pattern
// (st.Precompute = time.Since(start)).
func recordsStatsDuration(pass *lint.Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			selection, ok := pass.Info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				continue
			}
			recv := lint.Named(selection.Recv())
			if recv == nil || !strings.HasSuffix(recv.Obj().Name(), "Stats") {
				continue
			}
			if lint.IsNamed(selection.Obj().Type(), "time", "Duration") {
				found = true
			}
		}
		return true
	})
	return found
}

func isSortCall(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}
