package determinism_test

import (
	"testing"

	"trajmotif/tools/internal/analysis/analysistest"
	"trajmotif/tools/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "testdata", "core", "util")
}
