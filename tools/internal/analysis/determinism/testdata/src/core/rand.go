package core

import _ "math/rand" // want `import of math/rand: result-producing packages must be deterministic`
