package core

import (
	"sort"
	"time"
)

// Stats carries the allowlisted wall-time fields.
type Stats struct {
	Precompute time.Duration
	Search     time.Duration
}

// The seeded violation: map order escapes into the result.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order is nondeterministic`
		out = append(out, k)
	}
	return out
}

// Collect-then-sort is the sanctioned shape.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// A bare `for range` binds nothing, so order cannot leak.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Wall time may only flow into a Stats duration field.
func timed(st *Stats, m []int) int {
	start := time.Now()
	total := 0
	for _, v := range m {
		total += v
	}
	st.Search = time.Since(start)
	return total
}

// time.Now anywhere else is flagged.
func naked() int64 {
	return time.Now().UnixNano() // want `time\.Now outside a Stats wall-time recorder`
}

// Order-independent folds may be annotated instead of restructured.
func escape(m map[string]int) int {
	total := 0
	//lint:ignore determinism summing is commutative; order cannot leak
	for _, v := range m {
		total += v
	}
	return total
}
