// Package util is not a result-producing package, so the determinism
// rules do not apply here.
package util

import "time"

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func Now() time.Time { return time.Now() }
