package statsmerge_test

import (
	"testing"

	"trajmotif/tools/internal/analysis/analysistest"
	"trajmotif/tools/internal/analysis/statsmerge"
)

func TestStatsmerge(t *testing.T) {
	analysistest.Run(t, statsmerge.Analyzer, "testdata", "core", "serve")
}
