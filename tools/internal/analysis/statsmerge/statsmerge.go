// Package statsmerge enforces that effort-counter structs stay exhaustive
// end to end. Two checks:
//
//  1. merge functions — a func/method whose name starts with merge/Merge/
//     fold/Fold and whose receiver or a parameter is a *Stats-named struct
//     must mention every exported field of that struct, or list the
//     intentionally unmerged ones in a
//     //statsmerge:exempt Field1 Field2 -- <reason>
//     directive on the function. A per-worker counter added to core.Stats
//     but forgotten in mergeEffort silently breaks worker-count
//     determinism; this check turns that into a lint failure. Exempt
//     names are validated against the struct, so a renamed field cannot
//     leave a stale exemption behind.
//
//  2. renderers — in a package named serve, a function that reads one
//     field of a *Stats struct from core/store/join/knn/batch must read
//     them all (or consume the whole struct value, e.g. embed it in a
//     response literal). This keeps /stats and /metrics exhaustive when a
//     counter is added.
package statsmerge

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"trajmotif/tools/internal/analysis/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "statsmerge",
	Doc:  "Stats merge functions and serve renderers must cover every exported counter field",
	Run:  run,
}

// statsPackages are the package names whose *Stats structs the renderer
// check tracks.
var statsPackages = map[string]bool{
	"core": true, "store": true, "join": true, "knn": true, "batch": true,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMergeFunc(pass, file, fd)
			if pass.Pkg.Name() == "serve" {
				checkRenderer(pass, fd)
			}
		}
	}
	return nil
}

// statsStruct returns the named *Stats struct a merge function operates
// on: the receiver if it qualifies, else the first qualifying parameter.
func statsStruct(pass *lint.Pass, fd *ast.FuncDecl) *types.Named {
	var cands []*ast.Field
	if fd.Recv != nil {
		cands = append(cands, fd.Recv.List...)
	}
	if fd.Type.Params != nil {
		cands = append(cands, fd.Type.Params.List...)
	}
	for _, f := range cands {
		t := pass.Info.Types[f.Type].Type
		if t == nil {
			continue
		}
		n := lint.Named(t)
		if n == nil || !strings.HasSuffix(n.Obj().Name(), "Stats") {
			continue
		}
		if lint.StructOf(n) != nil {
			return n
		}
	}
	return nil
}

func isMergeName(name string) bool {
	for _, p := range []string{"merge", "Merge", "fold", "Fold"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func checkMergeFunc(pass *lint.Pass, file *ast.File, fd *ast.FuncDecl) {
	if !isMergeName(fd.Name.Name) {
		return
	}
	n := statsStruct(pass, fd)
	if n == nil {
		return
	}
	s := lint.StructOf(n)
	fields := lint.ExportedFields(s)
	if len(fields) == 0 {
		return
	}

	exempt := exemptFields(pass, file, fd)
	// Validate exempt names against the struct so renames can't strand a
	// stale exemption.
	known := make(map[string]bool, len(fields))
	for _, f := range fields {
		known[f.Name()] = true
	}
	for name, pos := range exempt {
		if !known[name] {
			pass.Reportf(pos, "//statsmerge:exempt names %s, which is not an exported field of %s.%s",
				name, n.Obj().Pkg().Name(), n.Obj().Name())
		}
	}

	referenced := fieldRefs(pass, fd.Body, fields)
	var missing []string
	for _, f := range fields {
		if _, ok := exempt[f.Name()]; ok {
			continue
		}
		if !referenced[f.Name()] {
			missing = append(missing, f.Name())
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(fd.Name.Pos(), "%s does not merge %s.%s field(s) %s: fold them or list them in a //statsmerge:exempt directive",
			fd.Name.Name, n.Obj().Pkg().Name(), n.Obj().Name(), strings.Join(missing, ", "))
	}
}

// exemptFields parses //statsmerge:exempt directives attached to fd (doc
// comment or any comment inside its body) into field name -> position.
// A directive must end with `-- <reason>`; one without a reason is
// reported and ignored.
func exemptFields(pass *lint.Pass, file *ast.File, fd *ast.FuncDecl) map[string]token.Pos {
	const prefix = "//statsmerge:exempt"
	out := make(map[string]token.Pos)
	scan := func(cg *ast.CommentGroup) {
		if cg == nil {
			return
		}
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, prefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, prefix)
			names, reason, found := strings.Cut(rest, "--")
			if !found || strings.TrimSpace(reason) == "" {
				pass.Reportf(c.Pos(), "//statsmerge:exempt directive needs a reason: //statsmerge:exempt Field... -- <why>")
				continue
			}
			for _, name := range strings.Fields(names) {
				out[name] = c.Pos()
			}
		}
	}
	scan(fd.Doc)
	for _, cg := range file.Comments {
		if cg.Pos() >= fd.Pos() && cg.End() <= fd.End() {
			scan(cg)
		}
	}
	return out
}

// fieldRefs reports which of fields are mentioned (selector or composite
// literal key) anywhere under node.
func fieldRefs(pass *lint.Pass, node ast.Node, fields []*types.Var) map[string]bool {
	want := make(map[types.Object]string, len(fields))
	for _, f := range fields {
		want[f] = f.Name()
	}
	out := make(map[string]bool)
	ast.Inspect(node, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if name, ok := want[pass.Info.Uses[id]]; ok {
			out[name] = true
		}
		return true
	})
	return out
}

// checkRenderer enforces read-one-read-all for tracked Stats structs.
func checkRenderer(pass *lint.Pass, fd *ast.FuncDecl) {
	type usage struct {
		refs  map[string]bool
		whole bool
	}
	used := make(map[*types.Named]*usage)
	get := func(n *types.Named) *usage {
		u := used[n]
		if u == nil {
			u = &usage{refs: make(map[string]bool)}
			used[n] = u
		}
		return u
	}
	tracked := func(t types.Type) *types.Named {
		n := lint.Named(t)
		if n == nil || n.Obj().Pkg() == nil {
			return nil
		}
		if !statsPackages[n.Obj().Pkg().Name()] || !strings.HasSuffix(n.Obj().Name(), "Stats") {
			return nil
		}
		if lint.StructOf(n) == nil {
			return nil
		}
		return n
	}
	// wholeUse marks expressions whose full value flows onward — into a
	// composite literal, a call argument, or the right side of an
	// assignment/return. Call results are excluded: `st := x.Stats()`
	// produces the value, it does not consume it.
	wholeUse := func(e ast.Expr) {
		e = ast.Unparen(e)
		if _, isCall := e.(*ast.CallExpr); isCall {
			return
		}
		if u, ok := e.(*ast.UnaryExpr); ok {
			e = ast.Unparen(u.X)
		}
		tv, ok := pass.Info.Types[e]
		if !ok {
			return
		}
		if n := tracked(tv.Type); n != nil {
			get(n).whole = true
		}
	}

	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
				if named := tracked(sel.Recv()); named != nil {
					get(named).refs[n.Sel.Name] = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					wholeUse(kv.Value)
				} else {
					wholeUse(elt)
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				wholeUse(arg)
			}
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				wholeUse(r)
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				wholeUse(r)
			}
		}
		return true
	})

	type finding struct {
		named   *types.Named
		missing []string
	}
	var findings []finding
	for n, u := range used {
		if u.whole || len(u.refs) == 0 {
			continue
		}
		var missing []string
		for _, f := range lint.ExportedFields(lint.StructOf(n)) {
			if !u.refs[f.Name()] {
				missing = append(missing, f.Name())
			}
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			findings = append(findings, finding{n, missing})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		return findings[i].named.Obj().Pkg().Name()+findings[i].named.Obj().Name() <
			findings[j].named.Obj().Pkg().Name()+findings[j].named.Obj().Name()
	})
	for _, f := range findings {
		pass.Reportf(fd.Name.Pos(), "%s renders %s.%s but omits field(s) %s: render every exported counter or pass the whole struct",
			fd.Name.Name, f.named.Obj().Pkg().Name(), f.named.Obj().Name(), strings.Join(f.missing, ", "))
	}
}
