package serve

import "core"

// Reading every exported field satisfies the renderer check.
func renderAll(st core.Stats) map[string]int64 {
	return map[string]int64{"a": st.A, "b": st.B}
}

// The seeded violation: a renderer that silently drops a counter.
func renderSome(st core.Stats) int64 { // want `renderSome renders core\.Stats but omits field\(s\) B`
	return st.A
}

type payload struct {
	S core.Stats
}

// Passing the whole struct onward delegates the exhaustiveness duty to
// the consumer (e.g. embedding the struct in a JSON response).
func wrap(st core.Stats) payload {
	if st.A > 0 {
		return payload{S: st}
	}
	return payload{S: st}
}

func produce() core.Stats { return core.Stats{} }

// A call RESULT is production, not consumption: binding it does not
// count as a whole-struct use, so partial reads are still caught.
func consume() int64 { // want `consume renders core\.Stats but omits field\(s\) B`
	st := produce()
	return st.A
}

// The escape hatch, for renderers that are intentionally partial.
//
//lint:ignore statsmerge this view is intentionally a summary
func summary(st core.Stats) int64 {
	return st.A
}
