package core

// Stats mimics the repo's effort-counter structs: the merge check keys on
// the *Stats name suffix and covers only exported fields.
type Stats struct {
	A      int64
	B      int64
	hidden int64
}

// Complete fold: every exported field appears.
func (st *Stats) mergeAll(o *Stats) {
	st.A += o.A
	st.B += o.B
	st.hidden += o.hidden
}

// The seeded violation: a field missing from the fold.
func (st *Stats) mergeSome(o *Stats) { // want `mergeSome does not merge core\.Stats field\(s\) B`
	st.A += o.A
}

// An exempt directive with a reason documents coordinator-owned fields.
//
//statsmerge:exempt B -- owned by the coordinator, set once per search
func (st *Stats) mergeExempt(o *Stats) {
	st.A += o.A
}

// Exempt names are validated, so renames cannot strand a stale directive.
//
//statsmerge:exempt Bogus -- stale name // want `names Bogus, which is not an exported field of core\.Stats`
func (st *Stats) mergeBogus(o *Stats) {
	st.A += o.A
	st.B += o.B
}

// A directive without a reason is rejected and does not exempt anything.
//
//statsmerge:exempt B // want `directive needs a reason`
func (st *Stats) mergeNoReason(o *Stats) { // want `mergeNoReason does not merge core\.Stats field\(s\) B`
	st.A += o.A
}

// The generic escape hatch works on merge functions too.
//
//lint:ignore statsmerge partial fold is intentional in this fixture
func (st *Stats) mergePartial(o *Stats) {
	st.A += o.A
}

// Merge-named functions not touching a Stats struct are out of scope.
func mergeInts(a, b []int) []int {
	return append(a, b...)
}
