// Package lint is a deliberately small, dependency-free stand-in for the
// golang.org/x/tools/go/analysis framework. The build environment for this
// repository is fully offline (the module cache carries no third-party
// modules), so motiflint's analyzers are written against this package
// instead: the same Analyzer/Pass/Diagnostic shape, a `go list`-backed
// loader (see load.go), and a `//lint:ignore <analyzer> <reason>`
// suppression directive compatible with staticcheck's.
//
// The API is intentionally a subset — enough to express motiflint's five
// invariant checks and their fixture tests — so that a future migration to
// the real x/tools framework is a mechanical rename.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass is one application of an analyzer to one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Run applies one analyzer to one loaded package and returns its findings
// after //lint:ignore suppression, sorted by position. Malformed ignore
// directives are themselves reported (analyzer name "motiflint") so a typo
// cannot silently disable a check.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	dirs, bad := ignoreDirectives(pkg)
	out := make([]Diagnostic, 0, len(pass.diags))
	for _, d := range pass.diags {
		if !suppressed(dirs, a.Name, d.Pos) {
			out = append(out, d)
		}
	}
	out = append(out, bad...)
	sortDiagnostics(out)
	return out, nil
}

// RunAll applies every analyzer to every package, deduplicating the
// malformed-directive diagnostics that Run emits per analyzer.
func RunAll(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var out []Diagnostic
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := Run(a, pkg)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", pkg.Path, err)
			}
			for _, d := range diags {
				key := d.String()
				if !seen[key] {
					seen[key] = true
					out = append(out, d)
				}
			}
		}
	}
	sortDiagnostics(out)
	return out, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// ignoreDirective is one parsed //lint:ignore comment. It suppresses the
// named analyzers on its own source line (trailing comment) and on the
// line immediately below it (comment-above style).
type ignoreDirective struct {
	file      string
	line      int
	analyzers []string
}

const ignorePrefix = "//lint:ignore"

// ignoreDirectives scans every comment in the package for
// //lint:ignore directives. A directive must name at least one analyzer
// (comma-separated) and give a non-empty reason; anything else is
// reported as a diagnostic rather than silently dropped.
func ignoreDirectives(pkg *Package) ([]ignoreDirective, []Diagnostic) {
	var dirs []ignoreDirective
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Message:  "malformed //lint:ignore directive: want //lint:ignore <analyzer>[,<analyzer>] <reason>",
						Analyzer: "motiflint",
					})
					continue
				}
				dirs = append(dirs, ignoreDirective{
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: strings.Split(fields[0], ","),
				})
			}
		}
	}
	return dirs, bad
}

func suppressed(dirs []ignoreDirective, analyzer string, pos token.Position) bool {
	for _, d := range dirs {
		if d.file != pos.Filename {
			continue
		}
		if pos.Line != d.line && pos.Line != d.line+1 {
			continue
		}
		for _, name := range d.analyzers {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}
