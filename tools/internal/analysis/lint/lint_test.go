package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// TestIgnoreDirectives exercises the suppression machinery directly:
// comment-above and trailing //lint:ignore forms suppress, a directive
// without a reason is itself a diagnostic, and unrelated lines still
// report.
func TestIgnoreDirectives(t *testing.T) {
	const src = `package p

func f() {
	a := 1
	//lint:ignore dummy externally synchronized
	b := 2
	//lint:ignore dummy
	c := 3
	d := 4 //lint:ignore dummy trailing form
	_, _, _, _ = a, b, c, d
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	tpkg, err := (&types.Config{}).Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	dummy := &Analyzer{
		Name: "dummy",
		Doc:  "reports every short variable declaration",
		Run: func(p *Pass) error {
			ast.Inspect(p.Files[0], func(n ast.Node) bool {
				if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
					p.Reportf(as.Pos(), "assignment")
				}
				return true
			})
			return nil
		},
	}
	diags, err := Run(dummy, &Package{Path: "p", Name: "p", Fset: fset, Files: []*ast.File{file}, Types: tpkg, Info: info})
	if err != nil {
		t.Fatal(err)
	}

	type want struct {
		line     int
		analyzer string
	}
	wants := []want{
		{4, "dummy"},     // no directive
		{7, "motiflint"}, // malformed: reason missing
		{8, "dummy"},     // the malformed directive must not suppress
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d diagnostics %v, want %d", len(diags), diags, len(wants))
	}
	for i, w := range wants {
		if diags[i].Pos.Line != w.line || diags[i].Analyzer != w.analyzer {
			t.Errorf("diag %d = %s at line %d (%s), want line %d (%s)",
				i, diags[i].Message, diags[i].Pos.Line, diags[i].Analyzer, w.line, w.analyzer)
		}
	}
}
