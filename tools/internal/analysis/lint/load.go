package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one parsed and type-checked package, ready for analysis.
type Package struct {
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// ListEntry is the subset of `go list -json` output the loader consumes.
type ListEntry struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
}

// GoList runs `go list` in dir with the given arguments and decodes the
// JSON stream it prints.
func GoList(dir string, args ...string) ([]ListEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var entries []ListEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e ListEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Load type-checks the packages matching patterns (relative to dir) and
// returns them ready for analysis. It works fully offline: dependencies —
// standard library and intra-module alike — are consumed as compiled
// export data produced by `go list -export`, and only the matched
// packages themselves are parsed from source.
func Load(dir string, patterns []string) ([]*Package, error) {
	targets, err := GoList(dir, append([]string{"-json=ImportPath,Name,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	deps, err := GoList(dir, append([]string{"-deps", "-export", "-json=ImportPath,Export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, d := range deps {
		if d.Export != "" {
			exports[d.ImportPath] = d.Export
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Name:  t.Name,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
