package lint

import (
	"go/ast"
	"go/types"
)

// CalleeObj resolves the object a call expression invokes — a function,
// method, or builtin — or nil when the callee is not a named object
// (a function literal, a conversion, an indexed function value).
func CalleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		// Package-qualified call: pkg.Fn.
		return info.Uses[fn.Sel]
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			return info.Uses[id]
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			return info.Uses[id]
		}
	}
	return nil
}

// Named unwraps pointers and aliases down to a named type, or nil.
func Named(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// IsNamed reports whether t (through pointers/aliases) is the named type
// typeName defined in a package whose *name* is pkgName. Matching by
// package name rather than import path lets fixture packages in testdata
// stand in for the real internal/geo, internal/core, etc.
func IsNamed(t types.Type, pkgName, typeName string) bool {
	n := Named(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == pkgName && n.Obj().Name() == typeName
}

// IsPkgFunc reports whether obj is the package-level function pkgName.funcName,
// again matching the defining package by name, not path.
func IsPkgFunc(obj types.Object, pkgName, funcName string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Name() == pkgName && fn.Name() == funcName
}

// RootIdent returns the leftmost identifier of a selector chain
// (s.mu.Lock -> s; s.mu -> s; x -> x), or nil for non-ident roots.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ExportedFields returns the exported field objects of a struct type, in
// declaration order.
func ExportedFields(s *types.Struct) []*types.Var {
	var out []*types.Var
	for i := 0; i < s.NumFields(); i++ {
		if f := s.Field(i); f.Exported() && !f.Embedded() {
			out = append(out, f)
		}
	}
	return out
}

// StructOf returns the struct underlying t (through pointers/aliases/named),
// or nil.
func StructOf(t types.Type) *types.Struct {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if n, ok := t.(*types.Named); ok {
		t = n.Underlying()
	}
	s, _ := t.(*types.Struct)
	return s
}
