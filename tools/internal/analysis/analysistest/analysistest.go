// Package analysistest runs a lint.Analyzer over fixture packages under
// testdata/src and checks its findings against `// want "regexp"`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest with
// only the standard library.
//
// Fixture layout: testdata/src/<pkg>/<file>.go, where <pkg> is both the
// directory and the import path fixture files use for each other — a
// fixture package named geo at testdata/src/geo can stand in for the
// real internal/geo, because the analyzers match packages by name, not
// import path. Standard-library imports resolve through the host
// toolchain's compiled export data, so fixtures may use sync, net/http,
// time, etc. freely.
//
// A `// want "re"` comment expects one diagnostic on its line whose
// message matches the regexp; several string literals expect several
// diagnostics. Lines without a want comment must produce no diagnostic.
// //lint:ignore directives in fixtures are honored, which is how the
// escape hatch itself is tested.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"trajmotif/tools/internal/analysis/lint"
)

// Run applies a to every fixture package in pkgPaths (dependencies
// first: a package may only import ones listed before it, plus the
// standard library) and diffs the diagnostics against want comments.
func Run(t *testing.T, a *lint.Analyzer, testdata string, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()

	type fixture struct {
		path  string
		files []*ast.File
	}
	local := make(map[string]bool, len(pkgPaths))
	for _, p := range pkgPaths {
		local[p] = true
	}
	var fixtures []fixture
	external := make(map[string]bool)
	for _, p := range pkgPaths {
		dir := filepath.Join(testdata, "src", p)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading fixture dir: %v", err)
		}
		fx := fixture{path: p}
		for _, e := range entries {
			if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parsing fixture: %v", err)
			}
			fx.files = append(fx.files, f)
			for _, imp := range f.Imports {
				if path, err := strconv.Unquote(imp.Path.Value); err == nil && !local[path] {
					external[path] = true
				}
			}
		}
		if len(fx.files) == 0 {
			t.Fatalf("fixture package %s has no Go files", p)
		}
		fixtures = append(fixtures, fx)
	}

	imp := &fixtureImporter{
		local: make(map[string]*types.Package),
		std:   stdImporter(t, fset, external),
	}

	for _, fx := range fixtures {
		info := lint.NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(fx.path, fset, fx.files, info)
		if err != nil {
			t.Fatalf("type-checking fixture %s: %v", fx.path, err)
		}
		imp.local[fx.path] = tpkg

		pkg := &lint.Package{
			Path:  fx.path,
			Name:  tpkg.Name(),
			Fset:  fset,
			Files: fx.files,
			Types: tpkg,
			Info:  info,
		}
		diags, err := lint.Run(a, pkg)
		if err != nil {
			t.Fatalf("running %s on fixture %s: %v", a.Name, fx.path, err)
		}
		checkWants(t, fset, fx.files, diags)
	}
}

// fixtureImporter resolves fixture-local packages by path and everything
// else through the gc export-data importer.
type fixtureImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.local[path]; ok {
		return p, nil
	}
	return fi.std.Import(path)
}

// stdImporter builds a gc export-data importer for the external (standard
// library) imports the fixtures use, via `go list -deps -export`.
func stdImporter(t *testing.T, fset *token.FileSet, paths map[string]bool) types.Importer {
	t.Helper()
	exports := make(map[string]string)
	if len(paths) > 0 {
		args := []string{"-deps", "-export", "-json=ImportPath,Export"}
		for p := range paths {
			args = append(args, p)
		}
		sort.Strings(args[3:])
		entries, err := lint.GoList(".", args...)
		if err != nil {
			t.Fatalf("resolving fixture std imports: %v", err)
		}
		for _, e := range entries {
			if e.Export != "" {
				exports[e.ImportPath] = e.Export
			}
		}
	}
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// wantRe extracts the string literals of a want comment.
var wantRe = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)

// checkWants diffs diagnostics against `// want` comments, both grouped
// by (file, line).
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, pats, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants[k] = append(wants[k], re)
				}
				_ = text
			}
		}
	}

	got := make(map[key][]lint.Diagnostic)
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		got[k] = append(got[k], d)
	}

	for k, res := range wants {
		ds := got[k]
		if len(ds) != len(res) {
			t.Errorf("%s:%d: got %d diagnostic(s), want %d: %v", k.file, k.line, len(ds), len(res), ds)
			continue
		}
		used := make([]bool, len(ds))
		for _, re := range res {
			matched := false
			for i, d := range ds {
				if !used[i] && re.MatchString(d.Message) {
					used[i] = true
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s:%d: no diagnostic matching %q; got %v", k.file, k.line, re, ds)
			}
		}
	}
	for k, ds := range got {
		if _, ok := wants[k]; !ok {
			for _, d := range ds {
				t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, d.Message)
			}
		}
	}
}

// parseWant splits a `// want "re" ...` comment into its regexps.
func parseWant(comment string) (string, []string, bool) {
	const marker = "// want "
	i := -1
	for j := 0; j+len(marker) <= len(comment); j++ {
		if comment[j:j+len(marker)] == marker {
			i = j
			break
		}
	}
	if i < 0 {
		return "", nil, false
	}
	rest := comment[i+len(marker):]
	var pats []string
	for _, lit := range wantRe.FindAllString(rest, -1) {
		if lit[0] == '`' {
			pats = append(pats, lit[1:len(lit)-1])
		} else if s, err := strconv.Unquote(lit); err == nil {
			pats = append(pats, s)
		}
	}
	return rest, pats, len(pats) > 0
}
